# Tier-1 gate (ROADMAP.md): build + tests.
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier-1+ gate: vet + race detector + fixed-seed chaos/torture smokes +
# the WAL fsync-path benchmark.
.PHONY: verify
verify:
	sh scripts/verify.sh

.PHONY: bench
bench:
	go test -bench=. -benchmem ./...
