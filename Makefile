# Tier-1 gate (ROADMAP.md): build + tests.
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier-1+ gate: vet + race detector + fixed-seed chaos/torture smokes +
# the WAL fsync-path benchmark.
.PHONY: verify
verify:
	sh scripts/verify.sh

.PHONY: bench
bench:
	go test -bench=. -benchmem ./...

# Table 2 wall-clock at 1 worker vs all CPUs, with the cross-check that both
# runs produced identical verdicts and schema counts. Writes BENCH_schema.json.
.PHONY: bench-baseline
bench-baseline:
	go run ./cmd/holistic bench -out BENCH_schema.json

# Observability smoke: regenerate the fast Table 2 block with tracing and a
# metric report enabled, then validate both artifacts with obscheck.
.PHONY: trace-smoke
trace-smoke:
	rm -rf .trace-smoke && mkdir -p .trace-smoke
	go run ./cmd/holistic table2 -skip-naive -j 2 \
		-trace .trace-smoke/table2.jsonl -report .trace-smoke/table2.json
	go run ./cmd/obscheck -trace .trace-smoke/table2.jsonl .trace-smoke/table2.json
	rm -rf .trace-smoke
