# Tier-1 gate (ROADMAP.md): build + tests.
.PHONY: test
test:
	go build ./...
	go test ./...

# Tier-1+ gate: gofmt + vet + race detector + fixed-seed chaos/torture
# smokes + the service smoke leg + the WAL fsync-path benchmark.
.PHONY: verify
verify:
	sh scripts/verify.sh

# Formatting and static checks only (the fast subset of verify).
.PHONY: lint
lint:
	@UNFORMATTED=$$(gofmt -l .); \
	if [ -n "$$UNFORMATTED" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$UNFORMATTED"; \
		exit 1; \
	fi
	go vet ./...

.PHONY: bench
bench:
	go test -bench=. -benchmem ./...

# Table 2 wall-clock at 1 worker vs all CPUs, with the cross-check that both
# runs produced identical verdicts and schema counts, plus the service
# cold-vs-warm benchmark, the cluster scaling curve that pushes the naive
# automaton past its single-box 100k-schema budget, and the simulator-scale
# sweep (event-bus native drain at 100..2000 replicas under seeded chaos).
# Writes BENCH_schema.json, BENCH_service.json, BENCH_cluster.json and
# BENCH_sim.json. The cluster leg solves >100k naive schemas for real, so it
# dominates the wall clock (tens of minutes on one CPU); trim with e.g.
# CLUSTERBENCH_FLAGS='-truncate 4000'. The sim leg's 2000-replica full-mesh
# row is the next heaviest (~4 minutes); trim with e.g.
# SIMBENCH_FLAGS='-bench-sizes 100,500'.
.PHONY: bench-baseline
bench-baseline:
	go run ./cmd/holistic bench -out BENCH_schema.json
	go run ./cmd/holistic loadgen -queue-jobs 100000 -out BENCH_service.json
	go run ./cmd/holistic clusterbench $(CLUSTERBENCH_FLAGS) -out BENCH_cluster.json
	go run ./cmd/dbftsim -bench-sim $(SIMBENCH_FLAGS) -bench-out BENCH_sim.json

# Observability smoke: regenerate the fast Table 2 block with tracing and a
# metric report enabled, then validate both artifacts with obscheck.
.PHONY: trace-smoke
trace-smoke:
	rm -rf .trace-smoke && mkdir -p .trace-smoke
	go run ./cmd/holistic table2 -skip-naive -j 2 \
		-trace .trace-smoke/table2.jsonl -report .trace-smoke/table2.json
	go run ./cmd/obscheck -trace .trace-smoke/table2.jsonl .trace-smoke/table2.json
	rm -rf .trace-smoke
