package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// obsFlags bundles the observability flags of the campaign modes: -trace
// (JSONL per-seed events), -report (metric snapshot), -pprof and -progress.
type obsFlags struct {
	trace    *string
	report   *string
	pprof    *string
	progress *time.Duration
}

func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		trace:    fs.String("trace", "", "write a JSONL event trace to this file (one event per seed)"),
		report:   fs.String("report", "", "write the campaign metric snapshot as JSON to this file"),
		pprof:    fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)"),
		progress: fs.Duration("progress", 0, "print a progress line at this interval (0 = off)"),
	}
}

// open validates every requested output up front, before any seeds run.
func (o *obsFlags) open(tool string) (*obs.Sink, error) {
	sink, err := obs.OpenSink(obs.SinkOptions{
		Tool:       tool,
		TracePath:  *o.trace,
		ReportPath: *o.report,
		PprofAddr:  *o.pprof,
	})
	if err != nil {
		return nil, err
	}
	if addr := sink.PprofAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "dbftsim: pprof listening on http://%s/debug/pprof/\n", addr)
	}
	return sink, nil
}

// startProgress begins the periodic seeds/s status line (no-op at interval
// 0). The returned stop func is idempotent.
func (o *obsFlags) startProgress(total int, stop func() bool) func() {
	if *o.progress <= 0 {
		return func() {}
	}
	run := obs.Default.Counter("faults", "seeds_run")
	cur := obs.Default.Gauge("faults", "current_seed")
	base := run.Load()
	start := time.Now()
	return obs.StartProgress(os.Stderr, *o.progress, func() string {
		return obs.RateLine("seeds", run.Load()-base, int64(total), time.Since(start)) +
			fmt.Sprintf(" (seed %d)", cur.Load())
	}, stop)
}

// campaignReport builds the -report payload of a campaign: the deterministic
// aggregate (identical at any -j for the same completed seed prefix) plus
// the observational envelope.
func campaignReport(tool, kind string, runs, decided, violations int,
	events map[faults.EventKind]int, workers int, interrupted bool) *obs.Report {
	cm := &obs.CampaignMetrics{Kind: kind, Runs: runs, Decided: decided, Violations: violations}
	if len(events) > 0 {
		cm.Events = make(map[string]int, len(events))
		for k, n := range events {
			cm.Events[string(k)] = n
		}
	}
	rep := &obs.Report{Tool: tool, Deterministic: obs.Deterministic{Campaign: cm}}
	rep.Observational.Workers = workers
	rep.Observational.Interrupted = interrupted
	rep.Observational.Registry = obs.Default.Snapshot()
	return rep
}
