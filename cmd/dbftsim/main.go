// Command dbftsim runs an executable consensus protocol front-end on the
// simulated asynchronous network, with configurable Byzantine strategies and
// schedulers. The -protocol selector picks the front-end: dbft (the default —
// Algorithm 1 over the Fig. 1 bv-broadcast) or sba (the SBA*-style binary
// reduction). It also replays the Appendix B non-termination execution
// (-lemma7, dbft-only), runs randomized fault-injection campaigns (-chaos),
// runs storage-fault torture campaigns over the durable WAL-backed replicas
// (-torture, dbft-only) and replays single chaos scenarios (-plan).
//
// Usage examples:
//
//	dbftsim -n 4 -t 1 -inputs 0,1,1 -byz liar -sched fair
//	dbftsim -n 7 -t 2 -inputs 0,1,0,1,1 -byz equivocator,silent -sched random -seed 7
//	dbftsim -protocol sba -n 4 -t 1 -inputs 0,1,1 -byz liar -sched random
//	dbftsim -lemma7 -rounds 12
//	dbftsim -chaos -chaos-seeds 200 -n 4 -t 1 -seed 1
//	dbftsim -chaos -protocol sba -chaos-seeds 200 -n 4 -t 1 -seed 1
//	dbftsim -torture -torture-seeds 200 -n 4 -t 1 -seed 1
//	dbftsim -plan '{"protocol":"sba","n":4,"t":1,...}'   (or -plan @scenario.json)
//
// The campaign modes accept the observability flags -trace out.jsonl (one
// JSONL event per seed), -report out.json (campaign metric snapshot),
// -pprof addr and -progress 2s; an interrupted campaign still flushes a
// valid partial report and exits non-zero.
//
// SIGINT/SIGTERM interrupt a campaign gracefully: the current seed finishes,
// partial results are printed, and the resume seed is reported. A second
// signal force-exits.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"repro/internal/dbft"
	"repro/internal/fairness"
	"repro/internal/faults"
	"repro/internal/network"
	"repro/internal/sba"
	"repro/internal/vcache"
)

// watchInterrupt converts SIGINT/SIGTERM into a cooperative stop flag the
// campaign engines poll between seeds. The first signal requests a graceful
// wind-down (finish the current seed, print partial results and the resume
// seed); a second signal force-exits for runs that are stuck mid-seed.
func watchInterrupt() func() bool {
	var stopped atomic.Bool
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-ch
		stopped.Store(true)
		fmt.Fprintln(os.Stderr, "dbftsim: interrupted; finishing current seed (signal again to force-exit)")
		<-ch
		os.Exit(130)
	}()
	return stopped.Load
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dbftsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dbftsim", flag.ContinueOnError)
	protocol := fs.String("protocol", "dbft", "protocol front-end: dbft or sba (single runs, -chaos and -plan)")
	n := fs.Int("n", 4, "total number of processes")
	t := fs.Int("t", 1, "tolerated Byzantine processes")
	inputs := fs.String("inputs", "0,1,1", "comma-separated binary inputs of the correct processes")
	byz := fs.String("byz", "silent", "comma-separated Byzantine strategies: silent, equivocator, liar")
	sched := fs.String("sched", "fair", "scheduler: fair, random, fifo")
	seed := fs.Int64("seed", 1, "random seed")
	maxRounds := fs.Int("rounds", 12, "round cap")
	maxSteps := fs.Int("steps", 500000, "delivery budget")
	lemma7 := fs.Bool("lemma7", false, "replay the Appendix B non-termination execution")
	printTrace := fs.Int("print-trace", 0, "print the first N message deliveries and a delivery summary")
	chaos := fs.Bool("chaos", false, "run a randomized fault-injection campaign (uses -n, -t, -seed, -rounds, -steps, -tick)")
	chaosSeeds := fs.Int("chaos-seeds", 200, "number of seeds in the -chaos campaign")
	tick := fs.Int("tick", 25, "retransmission tick interval in steps (-chaos, -torture and -plan)")
	chaosV := fs.Bool("chaos-v", false, "print one line per -chaos run")
	torture := fs.Bool("torture", false, "run a storage-fault torture campaign over durable replicas (uses -n, -t, -seed, -rounds, -tick)")
	tortureSeeds := fs.Int("torture-seeds", 200, "number of seeds in the -torture campaign")
	tortureV := fs.Bool("torture-v", false, "print one line per -torture run")
	plan := fs.String("plan", "", "replay one chaos scenario: inline JSON or @file")
	fingerprint := fs.Bool("fingerprint", false, "with -plan: print the outcome's replay fingerprint (byte-identity checks)")
	backend := fs.String("backend", "bus", "single-run simulator backend: bus (default) or flat (legacy shim)")
	benchSim := fs.Bool("bench-sim", false, "run the simulator-scale benchmark and write BENCH_sim.json (see -bench-* flags)")
	benchSizes := fs.String("bench-sizes", "100,500,1000,2000", "comma-separated replica counts for -bench-sim")
	benchOut := fs.String("bench-out", "BENCH_sim.json", "output file for -bench-sim")
	benchSteps := fs.Int("bench-steps", 40000, "window budget per -bench-sim run")
	benchCap := fs.Int("bench-cap", 4096, "per-peer ingress queue cap for -bench-sim")
	benchBatch := fs.Int("bench-batch", 8, "per-peer deliveries per window for -bench-sim")
	benchParts := fs.Int("bench-partitions", 1, "drain partitions for -bench-sim (fingerprints are partition-independent)")
	benchGossip := fs.Bool("bench-gossip", true, "include kadcast-gossip topology rows (sizes <= 512) in -bench-sim")
	benchGossipLarge := fs.Int("bench-gossip-large", 768, "gossip-only large-n row for -bench-sim: a replica count run only on the kadcast topology, past the full-mesh gossip cap (0 = off)")
	benchProf := fs.String("bench-cpuprofile", "", "write a CPU profile of the -bench-sim sweep to this file")
	workers := fs.Int("j", runtime.NumCPU(), "campaign worker count for -chaos and -torture (results are deterministic at any count)")
	version := fs.Bool("version", false, "print the verification engine version and exit")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *version {
		fmt.Printf("dbftsim engine %s\n", vcache.EngineVersion)
		return nil
	}
	if !faults.Protocols[*protocol] {
		return fmt.Errorf("unknown protocol %q (known protocols: %s)", *protocol, faults.KnownProtocols)
	}
	isSBA := *protocol == "sba"
	if *lemma7 {
		if isSBA {
			return fmt.Errorf("-lemma7 replays a dbft-specific execution; it does not accept -protocol sba")
		}
		return runLemma7(*maxRounds)
	}
	if *plan != "" {
		return runPlan(*plan, *protocol, *fingerprint)
	}
	if *benchSim {
		if isSBA {
			return fmt.Errorf("-bench-sim drives the dbft front-end; it does not accept -protocol sba")
		}
		return runBenchSim(benchSimConfig{
			sizes:       *benchSizes,
			out:         *benchOut,
			steps:       *benchSteps,
			queueCap:    *benchCap,
			batch:       *benchBatch,
			partitions:  *benchParts,
			gossip:      *benchGossip,
			gossipLarge: *benchGossipLarge,
			seed:        *seed,
			tick:        *tick,
			cpuprofile:  *benchProf,
		})
	}
	if *chaos {
		return runChaos(*protocol, *chaosSeeds, *seed, *n, *t, *maxRounds, *maxSteps, *tick, *workers, *chaosV, of)
	}
	if *torture {
		if isSBA {
			return fmt.Errorf("-torture exercises durable WAL replicas, which are dbft-only; it does not accept -protocol sba")
		}
		return runTorture(*tortureSeeds, *seed, *n, *t, *maxRounds, *tick, *workers, *tortureV, of)
	}

	ins, err := parseInputs(*inputs)
	if err != nil {
		return err
	}
	strategies := strings.Split(*byz, ",")
	if len(ins)+len(strategies) != *n {
		return fmt.Errorf("%d inputs + %d byzantine strategies != n = %d", len(ins), len(strategies), *n)
	}
	if isSBA {
		return runSingleSBA(ins, strategies, *n, *t, *maxRounds, *maxSteps, *tick, *seed, *sched, *backend)
	}

	cfg := dbft.Config{N: *n, T: *t, MaxRounds: *maxRounds}
	all := dbft.AllIDs(*n)
	correct, err := dbft.Processes(cfg, ins, all)
	if err != nil {
		return err
	}
	byzSet := map[network.ProcID]bool{}
	procs := make([]network.Process, 0, *n)
	for _, p := range correct {
		procs = append(procs, p)
	}
	for i, strat := range strategies {
		id := network.ProcID(len(ins) + i)
		byzSet[id] = true
		switch strings.TrimSpace(strat) {
		case "silent":
			procs = append(procs, &dbft.Silent{Id: id})
		case "equivocator":
			procs = append(procs, &dbft.Equivocator{Id: id, All: all,
				ZeroSide: func(p network.ProcID) bool { return int(p) < len(ins)/2 }})
		case "liar":
			// One seeded PRNG per liar — never shared between processes or
			// with the scheduler (a shared instance is a data race under the
			// bus's parallel drain mode and couples unrelated coin streams).
			procs = append(procs, &dbft.RandomLiar{Id: id, All: all,
				Rng: rand.New(rand.NewSource(*seed + 1 + 1_000_003*int64(id)))})
		default:
			return fmt.Errorf("unknown strategy %q", strat)
		}
	}

	var scheduler network.Scheduler
	switch *sched {
	case "fair":
		scheduler = fairness.Scheduler{Byzantine: byzSet}
	case "random":
		scheduler = network.RandomScheduler{Rng: rand.New(rand.NewSource(*seed + 2))}
	case "fifo":
		scheduler = network.FIFOScheduler{}
	default:
		return fmt.Errorf("unknown scheduler %q", *sched)
	}

	var opts network.Options
	switch *backend {
	case "", "bus":
	case "flat":
		opts.Backend = network.BackendFlat
	default:
		return fmt.Errorf("unknown backend %q (want bus or flat)", *backend)
	}
	sys, err := network.NewSystemOpts(procs, scheduler, opts)
	if err != nil {
		return err
	}
	sys.RecordTrace = *printTrace > 0
	steps, done, err := fairness.RunToDecision(sys, correct, *maxSteps)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d t=%d f=%d scheduler=%s steps=%d\n", *n, *t, len(strategies), *sched, steps)
	if *printTrace > 0 {
		fmt.Print(network.FormatTrace(sys.Trace, *printTrace))
		fmt.Println(network.SummarizeTrace(sys.Trace).Format())
	}
	fmt.Print(dbft.Describe(correct))
	if done {
		if err := dbft.Agreement(correct); err != nil {
			fmt.Println("AGREEMENT VIOLATED:", err)
		} else {
			fmt.Println("agreement: ok")
		}
		if err := dbft.Validity(correct, ins); err != nil {
			fmt.Println("VALIDITY VIOLATED:", err)
		} else {
			fmt.Println("validity: ok")
		}
		if g := fairness.FirstGoodRound(correct, *maxRounds); g >= 0 {
			fmt.Printf("fairness witness: round %d was %d-good\n", g, g%2)
		}
	} else {
		fmt.Println("no decision within the step budget")
	}
	return nil
}

// runSingleSBA runs one sba-reduction execution through the fault-injection
// plane with an empty fault plan — the sba analogue of the dbft single-run
// path, sharing the scenario machinery (scheduler wiring, retransmission
// ticks, seeded per-liar PRNGs) with -chaos and -plan.
func runSingleSBA(ins []int, strategies []string, n, t, maxRounds, maxSteps, tick int, seed int64, sched, backend string) error {
	byz := make([]string, 0, len(strategies))
	for _, s := range strategies {
		byz = append(byz, strings.TrimSpace(s))
	}
	sc := faults.Scenario{
		Protocol:  "sba",
		N:         n,
		T:         t,
		MaxRounds: maxRounds,
		MaxSteps:  maxSteps,
		Tick:      tick,
		Inputs:    ins,
		Byz:       byz,
		Sched:     sched,
		Plan:      faults.Plan{Seed: seed},
	}
	if backend != "" && backend != "bus" {
		sc.Sim = &faults.SimOptions{Backend: backend}
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	out := sc.Run()
	if out.Err != nil {
		return out.Err
	}
	fmt.Printf("protocol=sba n=%d t=%d f=%d scheduler=%s steps=%d\n", n, t, len(byz), sched, out.Steps)
	fmt.Print(sba.Describe(out.SBAParticipating))
	if out.Decided {
		if out.AgreementErr != nil {
			fmt.Println("AGREEMENT VIOLATED:", out.AgreementErr)
		} else {
			fmt.Println("agreement: ok")
		}
		if out.ValidityErr != nil {
			fmt.Println("VALIDITY VIOLATED:", out.ValidityErr)
		} else {
			fmt.Println("validity: ok")
		}
	} else {
		fmt.Println("no decision within the step budget")
	}
	return nil
}

func parseInputs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || (v != 0 && v != 1) {
			return nil, fmt.Errorf("invalid input %q (want 0 or 1)", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// runChaos executes a randomized fault-injection campaign and exits non-zero
// on any safety/termination violation, printing each violation's seed and
// replayable scenario JSON. An interrupt also exits non-zero, after flushing
// a partial report covering the completed seed prefix.
func runChaos(protocol string, runs int, baseSeed int64, n, t, maxRounds, maxSteps, tick, workers int, verbose bool, of *obsFlags) error {
	sink, err := of.open("dbftsim chaos")
	if err != nil {
		return err
	}
	defer sink.Close()
	c := faults.Campaign{
		Protocol: protocol,
		Runs:     runs,
		BaseSeed: baseSeed,
		N:        n,
		T:        t,

		MaxRounds: maxRounds,
		MaxSteps:  maxSteps,
		Tick:      tick,

		Stop:    watchInterrupt(),
		Workers: workers,
		Trace:   sink.Tracer,
	}
	if verbose {
		c.Verbose = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	stopProgress := of.startProgress(runs, c.Stop)
	res := c.Run()
	stopProgress()
	rep := campaignReport("dbftsim chaos", "chaos", res.Runs, res.Decided,
		len(res.Violations), res.Events, workers, res.Interrupted)
	if err := sink.Flush(rep); err != nil {
		return err
	}
	fmt.Println(res.String())
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Println(v.String())
		}
		return fmt.Errorf("%d violations in %d runs", len(res.Violations), res.Runs)
	}
	if res.Interrupted {
		return fmt.Errorf("chaos campaign interrupted after %d/%d seeds; resume with -seed %d", res.Runs, runs, res.NextSeed)
	}
	return nil
}

// runTorture executes a storage-fault torture campaign: every seed runs the
// consensus over durable WAL-backed replicas while the injector kills,
// tears, bit-flips and fsync-lies at the storage layer, then asserts
// Agreement/Validity, post-recovery consistency and byte-identical replay.
// Exits non-zero on any violation, printing each one's replayable seed and
// scenario JSON.
func runTorture(runs int, baseSeed int64, n, t, maxRounds, tick, workers int, verbose bool, of *obsFlags) error {
	sink, err := of.open("dbftsim torture")
	if err != nil {
		return err
	}
	defer sink.Close()
	c := faults.TortureCampaign{
		Runs:     runs,
		BaseSeed: baseSeed,
		N:        n,
		T:        t,

		MaxRounds: maxRounds,
		Tick:      tick,

		Stop:    watchInterrupt(),
		Workers: workers,
		Trace:   sink.Tracer,
	}
	if verbose {
		c.Verbose = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	stopProgress := of.startProgress(runs, c.Stop)
	res := c.Run()
	stopProgress()
	rep := campaignReport("dbftsim torture", "torture", res.Runs, res.Decided,
		len(res.Violations), res.Events, workers, res.Interrupted)
	if err := sink.Flush(rep); err != nil {
		return err
	}
	fmt.Println(res.String())
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Println(v.String())
		}
		return fmt.Errorf("%d violations in %d runs", len(res.Violations), res.Runs)
	}
	if res.Interrupted {
		return fmt.Errorf("torture campaign interrupted after %d/%d seeds; resume with -seed %d", res.Runs, runs, res.NextSeed)
	}
	return nil
}

// runPlan replays a single chaos scenario (inline JSON or @file) and prints
// the outcome, the per-process states and the fault log. With fingerprint
// set it also prints the outcome's replay digest, the currency of the
// flat-vs-bus and partition-independence byte-identity checks. A scenario
// without a protocol field inherits the -protocol selector; one with a
// protocol field must agree with a non-default selector.
func runPlan(spec, protocol string, fingerprint bool) error {
	if strings.HasPrefix(spec, "@") {
		b, err := os.ReadFile(spec[1:])
		if err != nil {
			return err
		}
		spec = string(b)
	}
	sc, err := faults.ParseScenario(spec)
	if err != nil {
		return err
	}
	if sc.Protocol == "" && protocol != "dbft" {
		sc.Protocol = protocol
		if err := sc.Validate(); err != nil {
			return err
		}
	} else if protocol != "dbft" && sc.Protocol != protocol {
		return fmt.Errorf("-protocol %s contradicts the scenario's protocol %q (known protocols: %s)",
			protocol, sc.Protocol, faults.KnownProtocols)
	}
	out := sc.Run()
	if out.Err != nil {
		return out.Err
	}
	if fingerprint {
		fmt.Printf("fingerprint: %s\n", sc.Fingerprint(&out))
	}
	fair := "unfair"
	if sc.Plan.FairDelivery() {
		fair = "fair"
	}
	fmt.Printf("scenario: protocol=%s n=%d t=%d seed=%d plan=%s steps=%d decided=%v\n",
		protoName(sc.Protocol), sc.N, sc.T, sc.Plan.Seed, fair, out.Steps, out.Decided)
	if sc.Protocol == "sba" {
		fmt.Print(sba.Describe(out.SBAProcs))
	} else {
		fmt.Print(dbft.Describe(out.Procs))
	}
	if out.AgreementErr != nil {
		fmt.Println("AGREEMENT VIOLATED:", out.AgreementErr)
	} else {
		fmt.Println("agreement: ok")
	}
	if out.ValidityErr != nil {
		fmt.Println("VALIDITY VIOLATED:", out.ValidityErr)
	} else {
		fmt.Println("validity: ok")
	}
	counts := faults.CountEvents(out.Events)
	fmt.Printf("faults: %d drops, %d dups, %d delays, %d lost, %d crashes, %d recoveries\n",
		counts[faults.EvDrop], counts[faults.EvDuplicate], counts[faults.EvDelay],
		counts[faults.EvLost], counts[faults.EvCrash], counts[faults.EvRecover])
	if sc.Durable {
		fmt.Printf("storage: %d kills, %d torn, %d flips, %d nosync, %d replays; %d replay-checks passed\n",
			counts[faults.EvKill], counts[faults.EvTorn], counts[faults.EvFlip],
			counts[faults.EvNoSync], counts[faults.EvReplay], out.ReplayChecked)
		for _, id := range out.Quarantined {
			fmt.Printf("quarantined: p%d (%s)\n", id, out.QuarantineReasons[id])
		}
		for _, e := range out.ReplayErrs {
			fmt.Println("REPLAY MISMATCH:", e)
		}
	}
	fmt.Print(faults.FormatEvents(out.Events, 20))
	return nil
}

func protoName(p string) string {
	if p == "" {
		return "dbft"
	}
	return p
}

func runLemma7(rounds int) error {
	results, err := dbft.RunLemma7(rounds)
	if err != nil {
		return err
	}
	fmt.Println("Appendix B (Lemma 7): without fairness, Algorithm 1 never terminates.")
	fmt.Println("n=4, t=1, one Byzantine process; correct estimates after each round:")
	for _, r := range results {
		fmt.Printf("  round %2d (parity %d): estimates %v\n", r.Round, r.Round%2, r.Estimates)
	}
	fmt.Printf("after %d rounds no process has decided; the estimate multiset cycles with period 2\n", rounds)
	return nil
}
