package main

import (
	"os"
	"testing"
)

func TestRunScenarios(t *testing.T) {
	stdout := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() { os.Stdout = stdout }()

	good := [][]string{
		{"-n", "4", "-t", "1", "-inputs", "0,1,1", "-byz", "silent", "-sched", "fair"},
		{"-n", "4", "-t", "1", "-inputs", "1,1,1", "-byz", "liar", "-sched", "random", "-seed", "7"},
		{"-n", "4", "-t", "1", "-inputs", "0,0,1", "-byz", "equivocator", "-sched", "fifo", "-print-trace", "3"},
		{"-lemma7", "-rounds", "6"},
		{"-chaos", "-chaos-seeds", "10", "-seed", "1", "-n", "4", "-t", "1"},
		{"-plan", `{"n":4,"t":1,"max_rounds":12,"max_steps":120000,"tick":25,` +
			`"inputs":[0,1,1],"byz":["silent"],"plan":{"seed":9,"drops":[{"prob":0.3,"budget":1}]}}`},
	}
	for _, args := range good {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}

	bad := [][]string{
		{"-inputs", "0,2,1"},                            // non-binary input
		{"-n", "4", "-inputs", "0,1", "-byz", "silent"}, // count mismatch
		{"-byz", "teleport"},                            // unknown strategy
		{"-sched", "sorcery"},                           // unknown scheduler
		{"-plan", "{not json"},                          // malformed scenario
		{"-plan", "@/nonexistent/scenario.json"},        // missing replay file
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
