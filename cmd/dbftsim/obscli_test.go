package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestObsFailurePaths asserts fail-fast validation of the campaign
// observability flags: bad destinations and a bound pprof port fail before
// any seed runs, with a one-line diagnostic, and a failed startup removes
// the report skeleton.
func TestObsFailurePaths(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "no-such-dir", "out")

	bad := [][]string{
		{"-chaos", "-chaos-seeds", "5", "-report", missing},
		{"-chaos", "-chaos-seeds", "5", "-trace", missing},
		{"-torture", "-torture-seeds", "5", "-report", missing},
	}
	for _, args := range bad {
		err := run(args)
		if err == nil {
			t.Errorf("run(%v): expected error", args)
			continue
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("run(%v): diagnostic spans multiple lines: %q", args, err)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	report := filepath.Join(dir, "report.json")
	if err := run([]string{"-chaos", "-chaos-seeds", "5", "-report", report, "-pprof", ln.Addr().String()}); err == nil {
		t.Fatal("expected error for an already-bound pprof address")
	}
	if _, serr := os.Stat(report); !os.IsNotExist(serr) {
		t.Errorf("report skeleton survived a failed startup (stat err %v)", serr)
	}
}

// TestChaosInterruptFlushesPartialReport interrupts a long campaign with a
// real SIGINT and asserts the wind-down contract: non-zero exit with a
// one-line diagnostic, and a flushed, valid partial report (never a
// zero-byte or skeleton JSON) with the interrupted flag set.
//
// Note: exactly one SIGINT may be sent per test binary — every run() call
// registers a persistent handler that force-exits on its second signal.
func TestChaosInterruptFlushesPartialReport(t *testing.T) {
	stdout := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() { os.Stdout = stdout }()

	report := filepath.Join(t.TempDir(), "chaos.json")
	go func() {
		time.Sleep(300 * time.Millisecond)
		syscall.Kill(os.Getpid(), syscall.SIGINT)
	}()
	runErr := run([]string{"-chaos", "-chaos-seeds", "50000", "-seed", "1",
		"-n", "4", "-t", "1", "-j", "2", "-report", report})
	if runErr == nil {
		t.Fatal("expected non-zero exit after an interrupt")
	}
	if strings.Contains(runErr.Error(), "\n") {
		t.Errorf("diagnostic spans multiple lines: %q", runErr)
	}
	if !strings.Contains(runErr.Error(), "interrupted") {
		t.Errorf("diagnostic does not mention the interrupt: %q", runErr)
	}

	fi, err := os.Stat(report)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("zero-byte report after interrupt")
	}
	rep, err := obs.ReadReport(report)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Error("report is still the startup skeleton")
	}
	if err := rep.Validate(); err != nil {
		t.Errorf("partial report does not validate: %v", err)
	}
	if !rep.Observational.Interrupted {
		t.Error("interrupted flag unset")
	}
	cm := rep.Deterministic.Campaign
	if cm == nil {
		t.Fatal("no campaign aggregate in the report")
	}
	if cm.Runs <= 0 || cm.Runs >= 50000 {
		t.Errorf("campaign runs = %d, want a completed prefix of the 50000 seeds", cm.Runs)
	}
}
