// Simulator-scale benchmark (-bench-sim): drives seeded chaos scenarios
// through the event bus's native drain mode at increasing replica counts and
// records throughput and peak heap in BENCH_sim.json. The point of the
// artifact is the memory curve: per-peer queue caps keep the in-flight set
// bounded at any n, so thousands of replicas fit where the flat loop's
// unbounded multiset would not.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/network"
	"repro/internal/vcache"
)

type benchSimConfig struct {
	sizes       string
	out         string
	steps       int
	queueCap    int
	batch       int
	partitions  int
	gossip      bool
	gossipLarge int
	seed        int64
	tick        int
	cpuprofile  string
}

type benchSimRow struct {
	N          int              `json:"n"`
	T          int              `json:"t"`
	Topology   string           `json:"topology"`
	Decided    bool             `json:"decided"`
	Windows    int              `json:"windows"`
	WallMS     float64          `json:"wall_ms"`
	Deliveries int64            `json:"deliveries"`
	MsgsPerSec float64          `json:"msgs_per_sec"`
	StepsPerS  float64          `json:"windows_per_sec"`
	PeakHeapMB float64          `json:"peak_heap_mb"`
	Stalled    int              `json:"stalled_peers"`
	Bus        network.BusStats `json:"bus"`
}

type benchSimReport struct {
	Schema     string        `json:"schema"`
	Engine     string        `json:"engine"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Seed       int64         `json:"seed"`
	WindowCap  int           `json:"window_budget"`
	QueueCap   int           `json:"queue_cap"`
	Batch      int           `json:"batch"`
	Partitions int           `json:"partitions"`
	Rows       []benchSimRow `json:"rows"`
}

// benchScenario builds the seeded chaos scenario for one bench row: native
// drain mode, bounded queues, dupemap on, stall detection armed, and a mild
// fair fault mix (bounded drops, some delays) so retransmission and the
// replay filter both do real work.
func benchScenario(n int, topo string, cfg benchSimConfig) faults.Scenario {
	rng := rand.New(rand.NewSource(cfg.seed + int64(n)))
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = rng.Intn(2)
	}
	return faults.Scenario{
		N:         n,
		T:         (n - 1) / 3,
		MaxRounds: 12,
		MaxSteps:  cfg.steps,
		Tick:      cfg.tick,
		Inputs:    inputs,
		Sched:     "native",
		Sim: &faults.SimOptions{
			QueueCap:   cfg.queueCap,
			Dupemap:    true,
			StallK:     512,
			Topology:   topo,
			Batch:      cfg.batch,
			Partitions: cfg.partitions,
		},
		Plan: faults.Plan{
			Seed:       cfg.seed + int64(n),
			Drops:      []faults.DropRule{{Prob: 0.05, Budget: 1}},
			DelayProb:  0.05,
			DelaySteps: 16,
		},
	}
}

// peakHeapSampler polls runtime.ReadMemStats and keeps the high-water
// HeapAlloc mark (the loadgen idiom). Stop it, then read the peak.
func peakHeapSampler() (stop func() uint64) {
	var peak atomic.Uint64
	done := make(chan struct{})
	var wg sync.WaitGroup
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			cur := peak.Load()
			if ms.HeapAlloc <= cur || peak.CompareAndSwap(cur, ms.HeapAlloc) {
				return
			}
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	return func() uint64 {
		close(done)
		wg.Wait()
		sample()
		return peak.Load()
	}
}

func runBenchSim(cfg benchSimConfig) error {
	var sizes []int
	for _, part := range strings.Split(cfg.sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 4 {
			return fmt.Errorf("bad -bench-sizes entry %q (want integers >= 4)", part)
		}
		sizes = append(sizes, v)
	}

	if cfg.cpuprofile != "" {
		f, err := os.Create(cfg.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep := benchSimReport{
		Schema:     "sim-bench/v1",
		Engine:     vcache.EngineVersion,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       cfg.seed,
		WindowCap:  cfg.steps,
		QueueCap:   cfg.queueCap,
		Batch:      cfg.batch,
		Partitions: cfg.partitions,
	}

	run := func(n int, topo string) error {
		sc := benchScenario(n, topo, cfg)
		if err := sc.Validate(); err != nil {
			return err
		}
		runtime.GC()
		stop := peakHeapSampler()
		start := time.Now()
		out := sc.Run()
		wall := time.Since(start)
		peak := stop()
		if out.Err != nil {
			return fmt.Errorf("bench n=%d topology=%s: %w", n, topo, out.Err)
		}
		row := benchSimRow{
			N:          n,
			T:          sc.T,
			Topology:   topoName(topo),
			Decided:    out.Decided,
			Windows:    out.Steps,
			WallMS:     float64(wall.Microseconds()) / 1000,
			Deliveries: out.Bus.Delivered,
			MsgsPerSec: float64(out.Bus.Delivered) / wall.Seconds(),
			StepsPerS:  float64(out.Steps) / wall.Seconds(),
			PeakHeapMB: float64(peak) / (1 << 20),
			Stalled:    len(out.Stalled),
			Bus:        out.Bus,
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("bench-sim n=%d topology=%s decided=%v windows=%d wall=%.1fms delivered=%d (%.0f msgs/s) peak_heap=%.1fMB cap_drops=%d filtered=%d relayed=%d stalled=%d\n",
			n, row.Topology, row.Decided, row.Windows, row.WallMS, row.Deliveries,
			row.MsgsPerSec, row.PeakHeapMB, row.Bus.CapDrops, row.Bus.Filtered, row.Bus.Relayed, row.Stalled)
		return nil
	}

	for _, n := range sizes {
		if err := run(n, "full"); err != nil {
			return err
		}
	}
	if cfg.gossip {
		for _, n := range sizes {
			if n <= 512 {
				if err := run(n, "gossip"); err != nil {
					return err
				}
			}
		}
		// The gossip-only large-n row: full mesh at this size would swamp the
		// window budget with O(n^2) links, but kadcast relays keep per-peer
		// fan-out logarithmic, so the topology scales past the <= 512 cap the
		// paired rows stop at. Run only when no paired row covers the size.
		if cfg.gossipLarge > 512 {
			already := false
			for _, n := range sizes {
				if n == cfg.gossipLarge {
					already = true
				}
			}
			if !already {
				if err := run(cfg.gossipLarge, "gossip"); err != nil {
					return err
				}
			}
		}
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench-sim: wrote %s (%d rows)\n", cfg.out, len(rep.Rows))
	return nil
}

func topoName(t string) string {
	if t == "" {
		return "full"
	}
	return t
}
