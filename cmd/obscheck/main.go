// Command obscheck validates observability artifacts produced by the
// holistic and dbftsim CLIs, and asserts the determinism contract between
// two reports of the same run at different worker counts.
//
// Usage:
//
//	obscheck report.json                     validate one report
//	obscheck r1.json r8.json                 validate both and require their
//	                                         deterministic sections to be
//	                                         byte-identical
//	obscheck -trace t.jsonl [reports...]     also validate a JSONL trace
//
// scripts/verify.sh runs the two-report form against `holistic table2
// -j 1` vs `-j 8`: everything under the reports' "deterministic" key must
// be byte-identical, while the "observational" sections are allowed — and
// expected — to differ.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("obscheck", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "validate this JSONL trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if *tracePath == "" && len(paths) == 0 {
		return fmt.Errorf("nothing to check: pass report files and/or -trace")
	}
	if len(paths) > 2 {
		return fmt.Errorf("at most two reports (got %d): the second is compared against the first", len(paths))
	}

	if *tracePath != "" {
		events, err := checkTrace(*tracePath)
		if err != nil {
			return err
		}
		fmt.Printf("obscheck: %s: %d events, valid\n", *tracePath, events)
	}

	var det [][]byte
	for _, p := range paths {
		rep, err := obs.ReadReport(p)
		if err != nil {
			return err
		}
		if err := rep.Validate(); err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		d, err := rep.DeterministicJSON()
		if err != nil {
			return err
		}
		det = append(det, d)
		fmt.Printf("obscheck: %s: valid (%s, %d query rows, campaign=%v)\n",
			p, rep.Tool, len(rep.Deterministic.Queries), rep.Deterministic.Campaign != nil)
	}
	if len(det) == 2 {
		if !bytes.Equal(det[0], det[1]) {
			return fmt.Errorf("deterministic sections differ between %s and %s:\n--- %s\n%s\n--- %s\n%s",
				paths[0], paths[1], paths[0], det[0], paths[1], det[1])
		}
		fmt.Printf("obscheck: deterministic sections are byte-identical (%d bytes)\n", len(det[0]))
	}
	return nil
}

// checkTrace validates a JSONL trace: every line must decode into an
// obs.Event with a non-empty kind, and the file must end with the
// "trace_end" trailer (proof the writer flushed the whole ring).
func checkTrace(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	n := 0
	last := ""
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return n, fmt.Errorf("%s line %d: %w", path, n+1, err)
		}
		if ev.Kind == "" {
			return n, fmt.Errorf("%s line %d: event has no kind", path, n+1)
		}
		n++
		last = ev.Kind
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("%s: empty trace", path)
	}
	if last != "trace_end" {
		return n, fmt.Errorf("%s: missing trace_end trailer (last event kind %q)", path, last)
	}
	return n, nil
}
