package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestObsFailurePaths asserts the fail-fast contract of the observability
// flags: a bad -trace or -report destination, or an already-bound -pprof
// port, must fail before any verification work, with a one-line diagnostic.
func TestObsFailurePaths(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "no-such-dir", "out")

	bad := [][]string{
		{"table2", "-skip-naive", "-report", missing},
		{"table2", "-skip-naive", "-trace", missing},
		{"verify", "-model", "strb", "-report", missing},
		{"pipeline", "-trace", missing},
		{"bench", "-report", missing},
	}
	for _, args := range bad {
		err := run(args)
		if err == nil {
			t.Errorf("run(%v): expected error", args)
			continue
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("run(%v): diagnostic spans multiple lines: %q", args, err)
		}
	}
}

// TestObsPprofPortBound asserts that a -pprof address that is already bound
// fails fast and removes the report skeleton written moments earlier — a
// run that never started must leave no artifact behind.
func TestObsPprofPortBound(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	report := filepath.Join(t.TempDir(), "report.json")
	runErr := run([]string{"table2", "-skip-naive", "-report", report, "-pprof", ln.Addr().String()})
	if runErr == nil {
		t.Fatal("expected error for an already-bound pprof address")
	}
	if strings.Contains(runErr.Error(), "\n") {
		t.Errorf("diagnostic spans multiple lines: %q", runErr)
	}
	if _, serr := os.Stat(report); !os.IsNotExist(serr) {
		t.Errorf("report skeleton survived a failed startup (stat err %v)", serr)
	}
}

// TestTable2ReportContents runs the fast Table 2 block with -report and
// asserts the acceptance shape: one deterministic row per query with schema
// counts, and one observational timing row per query with the per-phase
// (encode/solve/fold) breakdown.
func TestTable2ReportContents(t *testing.T) {
	stdout := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() { os.Stdout = stdout }()

	path := filepath.Join(t.TempDir(), "table2.json")
	if err := run([]string{"table2", "-skip-naive", "-j", "2", "-report", path}); err != nil {
		t.Fatal(err)
	}
	rep, err := obs.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Deterministic.Queries) == 0 {
		t.Fatal("no query rows in the report")
	}
	if len(rep.Observational.Timings) != len(rep.Deterministic.Queries) {
		t.Fatalf("%d timing rows for %d query rows",
			len(rep.Observational.Timings), len(rep.Deterministic.Queries))
	}
	for _, q := range rep.Deterministic.Queries {
		if q.Outcome != "budget" && q.Schemas == 0 {
			t.Errorf("%s/%s: no schema count", q.Model, q.Query)
		}
	}
	solved := false
	for _, tm := range rep.Observational.Timings {
		if tm.ElapsedNS <= 0 {
			t.Errorf("%s/%s: no elapsed time", tm.Model, tm.Query)
		}
		if tm.SolveNS > 0 {
			solved = true
		}
	}
	if !solved {
		t.Error("no timing row has a solve phase > 0")
	}
	if rep.Observational.Workers != 2 {
		t.Errorf("workers = %d, want 2", rep.Observational.Workers)
	}
}
