// Command holistic is the verification CLI: it runs the paper's holistic
// pipeline, checks individual properties of the three threshold automata,
// regenerates Table 2, produces the Section 6 counterexample, emits the
// automata as Graphviz figures, and compiles/checks ByMC-style property
// files.
//
// Usage:
//
//	holistic pipeline                 run the full two-phase verification
//	holistic verify  [flags]          check properties of one model
//	holistic table2  [flags]          regenerate Table 2
//	holistic ce                       generate the n<=3t counterexample
//	holistic dot     [flags]          print a model as Graphviz DOT
//	holistic spec    [flags]          compile & check a property file
//	holistic specs                    list bundled specs with canonical hashes
//	holistic bench   [flags]          Table 2 wall-clock at 1 vs N workers
//	holistic queue   [flags]          enqueue jobs into a daemon's durable queue and watch them
//	holistic cluster [flags]          coordinate full-mode verification across worker daemons
//	holistic work    [flags]          solve cluster shards for a coordinator
//
// Verification subcommands accept -j <workers> (default: the number of CPUs);
// verdicts, schema counts and counterexamples are deterministic at any -j.
//
// SIGINT/SIGTERM interrupt a verification gracefully: running checks wind
// down with Budget outcomes and the finished verdicts are still printed. A
// second signal force-exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ltl"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/ta"
	"repro/internal/taformat"
	"repro/internal/vcache"
)

// watchInterrupt converts SIGINT/SIGTERM into the cooperative stop flag the
// verification engines poll at schema-enumeration nodes and SMT case splits.
// The first signal requests a graceful wind-down (interrupted checks report
// Budget, finished verdicts survive); a second signal force-exits.
func watchInterrupt() func() bool {
	var stopped atomic.Bool
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-ch
		stopped.Store(true)
		fmt.Fprintln(os.Stderr, "holistic: interrupted; winding down checks (signal again to force-exit)")
		<-ch
		os.Exit(130)
	}()
	return stopped.Load
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "holistic:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "pipeline":
		return cmdPipeline(args[1:])
	case "verify":
		return cmdVerify(args[1:])
	case "table2":
		return cmdTable2(args[1:])
	case "ce":
		return cmdCE(args[1:])
	case "dot":
		return cmdDot(args[1:])
	case "spec":
		return cmdSpec(args[1:])
	case "export":
		return cmdExport(args[1:])
	case "specs":
		return cmdSpecs(args[1:])
	case "bench":
		return cmdBench(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "loadgen":
		return cmdLoadgen(args[1:])
	case "queue":
		return cmdQueue(args[1:])
	case "cluster":
		return cmdCluster(args[1:])
	case "work":
		return cmdWork(args[1:])
	case "clusterbench":
		return cmdClusterBench(args[1:])
	case "version", "-version", "--version":
		// The engine version is part of every cache key: entries written by
		// one version are invisible to every other.
		fmt.Printf("holistic engine %s\n", vcache.EngineVersion)
		return nil
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: holistic <subcommand> [flags]

subcommands:
  pipeline   run the full two-phase holistic verification (Theorem 6)
  verify     check properties of one model (-model bv|naive|simplified)
  table2     regenerate the paper's Table 2
  ce         generate the disagreement counterexample for n <= 3t
  dot        print a model as Graphviz DOT (-model ...)
  spec       compile and check a ByMC-style property file (-model ..., -file ...)
  export     print a model in the textual automaton format (-model ...)
  specs      list the bundled specs with canonical hashes and query counts
  bench      compare Table 2 wall-clock at 1 worker vs -j workers (-out file.json)
  serve      run the verification HTTP daemon (-addr, -cache-dir, ...)
  loadgen    drive a service with a request mix, write BENCH_service.json
  queue      client for a daemon's durable job queue (-enqueue, -job, -dead, -wait-idle)
  cluster    run the fault-tolerant coordination plane (full mode, lease-based shards)
  work       run one shard-solving worker daemon against a cluster coordinator
  clusterbench  1..N worker scaling curve on the naive automaton, write BENCH_cluster.json
  version    print the engine version embedded in every cache key

most subcommands accept -ta <file.ta> to load a user-supplied automaton
instead of a bundled model, and -j <workers> to set the worker budget
(results are deterministic at any worker count).

verification subcommands accept -cache <dir> to reuse verdicts from the
content-addressed result cache (cached counterexamples are re-certified by
replay before they are trusted); verify also accepts -remote <url> to send
the request to a running "holistic serve" daemon instead of solving locally.

verification subcommands also accept the observability flags:
  -trace out.jsonl    JSONL span/event trace (ring-buffered)
  -report out.json    metric snapshot (deterministic + observational sections)
  -pprof addr         serve net/http/pprof while the run is live
  -progress 2s        periodic progress line on stderr
`)
}

// modelByName resolves a bundled model through the same registry the serving
// plane uses, so local and remote verifications of a name run identical
// query sets.
func modelByName(name string) (*ta.TA, []spec.Query, error) {
	return service.BuiltinModel(name)
}

// openCacheFlag opens the -cache directory (empty = caching off). Corrupt
// entries are logged to stderr and re-verified.
func openCacheFlag(dir string) (*vcache.Cache, error) {
	if dir == "" {
		return nil, nil
	}
	return vcache.Open(vcache.Options{Dir: dir, Logf: func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}})
}

func parseMode(s string) (schema.Mode, error) {
	switch s {
	case "staged", "":
		return schema.Staged, nil
	case "full":
		return schema.FullEnumeration, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want staged or full)", s)
	}
}

func cmdPipeline(args []string) error {
	fs := flag.NewFlagSet("pipeline", flag.ContinueOnError)
	mode := fs.String("mode", "staged", "schema mode: staged or full")
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON certificate")
	workers := fs.Int("j", runtime.NumCPU(), "total worker budget (verdicts are deterministic at any count)")
	cacheDir := fs.String("cache", "", "reuse verdicts from this result-cache directory")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	cache, err := openCacheFlag(*cacheDir)
	if err != nil {
		return err
	}
	sink, err := of.open("holistic pipeline")
	if err != nil {
		return err
	}
	defer sink.Close()
	stop := watchInterrupt()
	stopProgress := of.startProgress(stop)
	rep, err := core.HolisticVerification(core.Options{Mode: m, Stop: stop, Parallel: *workers, Trace: sink.Tracer, Cache: cache})
	stopProgress()
	if err != nil {
		return err
	}
	interrupted := stop()
	obsRep := &obs.Report{Tool: "holistic pipeline"}
	for _, res := range rep.Inner.Results {
		addResultMetrics(obsRep, rep.Inner.Model, res)
	}
	for _, res := range rep.Outer.Results {
		addResultMetrics(obsRep, rep.Outer.Model, res)
	}
	finalizeReport(obsRep, *workers, interrupted)
	if err := sink.Flush(obsRep); err != nil {
		return err
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "holistic: pipeline interrupted; partial verdicts below (interrupted checks report budget)")
	}
	if *asJSON {
		data, err := rep.MarshalIndent()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(rep.Format())
	}
	if !rep.Verified() {
		return fmt.Errorf("verification incomplete")
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	model := fs.String("model", "bv", "model: bv, naive or simplified")
	taFile := fs.String("ta", "", "load the automaton from a .ta file instead of a bundled model")
	specFile := fs.String("spec", "", "property file to check (required with -ta)")
	mode := fs.String("mode", "staged", "schema mode: staged or full")
	prop := fs.String("prop", "", "check only this property (default: all)")
	stats := fs.Bool("stats", false, "print SMT effort statistics per property")
	timeout := fs.Duration("timeout", 0, "per-property timeout (0 = none)")
	workers := fs.Int("j", runtime.NumCPU(), "schema-enumeration workers (verdicts are deterministic at any count)")
	cacheDir := fs.String("cache", "", "reuse verdicts from this result-cache directory")
	remote := fs.String("remote", "", "send the request to this running service base URL instead of solving locally")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remote != "" {
		return runRemoteVerify(*remote, *model, *taFile, *specFile, *prop, *mode, *timeout, *stats, of)
	}
	var a *ta.TA
	var queries []spec.Query
	var err error
	if *taFile != "" {
		a, err = loadTA(*taFile)
		if err != nil {
			return err
		}
		if *specFile == "" {
			return fmt.Errorf("-ta requires -spec with the properties to check")
		}
		data, rerr := os.ReadFile(*specFile)
		if rerr != nil {
			return rerr
		}
		pf, perr := ltl.ParseFile(string(data))
		if perr != nil {
			return perr
		}
		queries, err = ltl.CompileFile(pf, a)
	} else {
		a, queries, err = modelByName(*model)
	}
	if err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	cache, err := openCacheFlag(*cacheDir)
	if err != nil {
		return err
	}
	sink, err := of.open("holistic verify")
	if err != nil {
		return err
	}
	defer sink.Close()
	stop := watchInterrupt()
	stopProgress := of.startProgress(stop)
	defer stopProgress()
	engine, err := schema.New(a, schema.Options{Mode: m, Timeout: *timeout, Stop: stop, Workers: *workers, Trace: sink.Tracer})
	if err != nil {
		return err
	}
	modelName := *model
	if *taFile != "" {
		modelName = a.Name
	}
	obsRep := &obs.Report{Tool: "holistic verify"}
	found := false
	for i := range queries {
		if *prop != "" && queries[i].Name != *prop {
			continue
		}
		if stop() {
			fmt.Fprintln(os.Stderr, "holistic: interrupted; remaining properties skipped")
			break
		}
		found = true
		res, hit, err := core.CachedCheck(cache, engine, &queries[i])
		if err != nil {
			return err
		}
		addResultMetrics(obsRep, modelName, res)
		marker := ""
		if hit {
			marker = " [cached]"
		}
		fmt.Printf("%-16s %-16s %8d schemas  avg len %6.1f  %v%s\n",
			res.Query, res.Outcome, res.Schemas, res.AvgLen, res.Elapsed.Round(time.Millisecond), marker)
		if *stats {
			fmt.Printf("    smt: %d LP checks, %d pivots, %d rebuilds, %d B&B nodes, %d case splits\n",
				res.Solver.LPChecks, res.Solver.Pivots, res.Solver.Rebuilds, res.Solver.BBNodes, res.Solver.CaseSplit)
		}
		if res.CE != nil {
			fmt.Println(res.CE.Format())
		}
	}
	stopProgress()
	if !found {
		return fmt.Errorf("no property %q in model %s", *prop, *model)
	}
	finalizeReport(obsRep, *workers, stop())
	if err := sink.Flush(obsRep); err != nil {
		return err
	}
	if stop() {
		return fmt.Errorf("verify interrupted; completed verdicts were reported")
	}
	return nil
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ContinueOnError)
	skipNaive := fs.Bool("skip-naive", false, "skip the naive-consensus block")
	naiveTimeout := fs.Duration("naive-timeout", 30*time.Second, "budget for the naive block")
	workers := fs.Int("j", runtime.NumCPU(), "schema-enumeration workers per row (counts are deterministic at any -j)")
	cacheDir := fs.String("cache", "", "reuse verdicts from this result-cache directory")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cache, err := openCacheFlag(*cacheDir)
	if err != nil {
		return err
	}
	sink, err := of.open("holistic table2")
	if err != nil {
		return err
	}
	defer sink.Close()
	stop := watchInterrupt()
	stopProgress := of.startProgress(stop)
	rows, err := core.Table2(core.Table2Options{SkipNaive: *skipNaive, NaiveTimeout: *naiveTimeout, Stop: stop, Workers: *workers, Trace: sink.Tracer, Cache: cache})
	stopProgress()
	if err != nil {
		return err
	}
	interrupted := stop()
	rep := reportFromRows("holistic table2", rows)
	finalizeReport(rep, *workers, interrupted)
	if err := sink.Flush(rep); err != nil {
		return err
	}
	fmt.Print(core.FormatTable2(rows))
	if interrupted {
		return fmt.Errorf("table2 interrupted; completed rows were reported, interrupted rows show timeout/budget")
	}
	return nil
}

func cmdCE(args []string) error {
	fs := flag.NewFlagSet("ce", flag.ContinueOnError)
	workers := fs.Int("j", runtime.NumCPU(), "schema-enumeration workers (the counterexample is deterministic at any count)")
	cacheDir := fs.String("cache", "", "reuse verdicts from this result-cache directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cache, err := openCacheFlag(*cacheDir)
	if err != nil {
		return err
	}
	res, err := core.GenerateInv1Counterexample(core.Options{Stop: watchInterrupt(), Parallel: *workers, Cache: cache})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s in %v\n", res.Query, res.Outcome, res.Elapsed.Round(time.Millisecond))
	if res.CE == nil {
		return fmt.Errorf("expected a counterexample")
	}
	fmt.Println("disagreement execution (certified by replay):")
	fmt.Print(res.CE.Format())
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ContinueOnError)
	model := fs.String("model", "bv", "model: bv, naive or simplified")
	taFile := fs.String("ta", "", "load the automaton from a .ta file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var a *ta.TA
	var err error
	if *taFile != "" {
		a, err = loadTA(*taFile)
	} else {
		a, _, err = modelByName(*model)
	}
	if err != nil {
		return err
	}
	return a.WriteDOT(os.Stdout)
}

func cmdSpec(args []string) error {
	fs := flag.NewFlagSet("spec", flag.ContinueOnError)
	model := fs.String("model", "bv", "model: bv, naive or simplified")
	file := fs.String("file", "", "property file (default: the bundled spec for the model)")
	mode := fs.String("mode", "staged", "schema mode")
	workers := fs.Int("j", runtime.NumCPU(), "schema-enumeration workers (verdicts are deterministic at any count)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, _, err := modelByName(*model)
	if err != nil {
		return err
	}
	src := ""
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		src = string(data)
	case strings.HasPrefix(*model, "bv"):
		src = ltl.BVBroadcastSpec
	case *model == "simplified":
		src = ltl.SimplifiedConsensusSpec
	case *model == "strb":
		src = ltl.STRBSpec
	default:
		return fmt.Errorf("no bundled spec for model %s; pass -file", *model)
	}
	pf, err := ltl.ParseFile(src)
	if err != nil {
		return err
	}
	queries, err := ltl.CompileFile(pf, a)
	if err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	stop := watchInterrupt()
	engine, err := schema.New(a, schema.Options{Mode: m, Stop: stop, Workers: *workers})
	if err != nil {
		return err
	}
	for i := range queries {
		if stop() {
			fmt.Fprintln(os.Stderr, "holistic: interrupted; remaining properties skipped")
			break
		}
		res, err := engine.Check(&queries[i])
		if err != nil {
			return err
		}
		fmt.Printf("%-24s %-16s %8d schemas  %v\n",
			res.Query, res.Outcome, res.Schemas, res.Elapsed.Round(time.Millisecond))
	}
	return nil
}

// loadTA reads an automaton from a .ta description file.
func loadTA(path string) (*ta.TA, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return taformat.Parse(string(data))
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	model := fs.String("model", "bv", "model: bv, naive, simplified, strb, bosco or sba")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, _, err := modelByName(*model)
	if err != nil {
		return err
	}
	return taformat.Write(os.Stdout, a)
}

// bundledSpecs maps every builtin model name to its shipped spec file under
// specs/ (the artifact `holistic export` regenerates and the golden-hash
// test pins).
var bundledSpecs = []struct{ model, file string }{
	{"bv", "bvbroadcast.ta"},
	{"naive", "naive.ta"},
	{"simplified", "simplified.ta"},
	{"strb", "strb.ta"},
	{"bosco", "bosco.ta"},
	{"sba", "sba.ta"},
}

// cmdSpecs lists the bundled specs with their sizes, query counts and
// canonical vcache hashes — the identities under which verdicts are cached.
// The hashes must match testdata/golden_hashes.txt in internal/vcache; a
// mismatch at an unchanged engine version means the canonical serialization
// drifted.
func cmdSpecs(args []string) error {
	fs := flag.NewFlagSet("specs", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("engine %s\n", vcache.EngineVersion)
	fmt.Printf("%-12s %-16s %5s %6s %8s  %s\n", "MODEL", "SPEC", "LOCS", "RULES", "QUERIES", "HASH")
	for _, s := range bundledSpecs {
		a, queries, err := modelByName(s.model)
		if err != nil {
			return err
		}
		size := a.Size()
		fmt.Printf("%-12s %-16s %5d %6d %8d  %s\n",
			s.model, s.file, size.Locations, size.Rules, len(queries), vcache.TAHash(a))
	}
	return nil
}
