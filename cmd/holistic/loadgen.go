package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/queue"
	"repro/internal/service"
	"repro/internal/vcache"
)

// loadgenResult is the BENCH_service.json schema: cold vs warm latency for
// the same request set, the warm-phase cache hit ratio, and the shed rate.
// All latency figures are observational (hardware- and load-dependent); the
// verdict-identity guarantees are what the service tests pin.
type loadgenResult struct {
	Engine         string  `json:"engine_version"`
	Requests       int     `json:"unique_requests"`
	WarmPasses     int     `json:"warm_passes"`
	Concurrency    int     `json:"concurrency"`
	ColdMedianMS   float64 `json:"cold_median_ms"`
	ColdP95MS      float64 `json:"cold_p95_ms"`
	WarmMedianMS   float64 `json:"warm_median_ms"`
	WarmP95MS      float64 `json:"warm_p95_ms"`
	MedianSpeedup  float64 `json:"median_speedup"`
	HeavyRequest   string  `json:"heavy_request"`
	HeavyColdMS    float64 `json:"heavy_cold_ms"`
	HeavyWarmMS    float64 `json:"heavy_warm_median_ms"`
	HeavySpeedup   float64 `json:"heavy_speedup"`
	WarmHitRatio   float64 `json:"warm_hit_ratio"`
	ShedRate       float64 `json:"shed_rate"`
	TotalRequests  int     `json:"total_requests"`
	TotalSheds     int     `json:"total_sheds"`
	TotalElapsedMS float64 `json:"total_elapsed_ms"`

	// Queue is the durable-backlog benchmark section (present with
	// -queue-jobs > 0). All its latency figures are observational.
	Queue *queueBenchResult `json:"queue,omitempty"`
}

// queueBenchResult measures the durable queue under a deep backlog: every job
// is enqueued before the consumers start, so the enqueue-to-verdict ("e2e")
// percentiles are dominated by queue wait, not verification — which is the
// point: they bound what a client sees when it lands behind the whole
// backlog. Ack latency is what a client pays for a durable (fsync-backed)
// 202; drain throughput is jobs retired per second once consumers run.
type queueBenchResult struct {
	Jobs             int     `json:"jobs"`
	Tenants          int     `json:"tenants"`
	Consumers        int     `json:"consumers"`
	AckMedianMS      float64 `json:"ack_median_ms"`
	AckP95MS         float64 `json:"ack_p95_ms"`
	AckP99MS         float64 `json:"ack_p99_ms"`
	EnqueueElapsedMS float64 `json:"enqueue_elapsed_ms"`
	EnqueuePerSec    float64 `json:"enqueue_per_sec"`
	PeakDepth        int     `json:"peak_depth"`
	E2EMedianMS      float64 `json:"e2e_median_ms"`
	E2EP95MS         float64 `json:"e2e_p95_ms"`
	E2EP99MS         float64 `json:"e2e_p99_ms"`
	DrainElapsedMS   float64 `json:"drain_elapsed_ms"`
	DrainPerSec      float64 `json:"drain_per_sec"`
	PeakHeapMB       float64 `json:"peak_heap_mb"`
	Done             int64   `json:"done"`
	Dead             int64   `json:"dead"`
	Note             string  `json:"note"`
}

// cmdLoadgen drives a verification service with a deterministic request mix
// and writes BENCH_service.json. With -url it targets a running daemon;
// without, it starts an in-process server (cache in a temp dir) so the
// benchmark is self-contained.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	url := fs.String("url", "", "target service base URL (empty = start an in-process server)")
	mix := fs.String("models", "simplified,strb,bv", "comma-separated bundled models in the request mix")
	passes := fs.Int("passes", 3, "warm passes over the request set after the cold pass")
	conc := fs.Int("c", 8, "client concurrency during warm passes")
	out := fs.String("out", "BENCH_service.json", "output file")
	minSpeedup := fs.Float64("min-speedup", 0, "fail unless median cold/warm speedup reaches this (0 = record only)")
	cacheDir := fs.String("cache-dir", "", "cache directory for the in-process server (default: a temp dir)")
	workers := fs.Int("j", runtime.NumCPU(), "workers for the in-process server")
	queueJobs := fs.Int("queue-jobs", 0, "durable-backlog benchmark: enqueue this many jobs before consumers start (0 = skip)")
	queueTenants := fs.Int("queue-tenants", 4, "tenants the backlog jobs round-robin over")
	queueConsumers := fs.Int("queue-consumers", 2, "consumers draining the benchmark backlog")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queueJobs > 0 && *url != "" {
		return fmt.Errorf("-queue-jobs needs the in-process server (it pauses and resumes the consumers); drop -url")
	}

	base := *url
	var srv *service.Server
	var qb *queueBench
	if base == "" {
		dir := *cacheDir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "holistic-loadgen-cache-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
		}
		cache, err := vcache.Open(vcache.Options{Dir: dir})
		if err != nil {
			return err
		}
		cfg := service.Config{Cache: cache, Workers: *workers}
		if *queueJobs > 0 {
			queueDir, err := os.MkdirTemp("", "holistic-loadgen-queue-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(queueDir)
			qb = newQueueBench()
			cfg.QueueDir = queueDir
			cfg.QueueConsumers = *queueConsumers
			cfg.QueuePaused = true // backlog first, drain afterwards
			cfg.QueueOnTerminal = qb.onTerminal
		}
		srv = service.New(cfg)
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := service.HardenServer(&http.Server{Handler: srv.Handler()})
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "holistic: loadgen driving in-process server at %s\n", base)
	}

	// One request per (model, property): deterministic order, no randomness
	// needed for a cold-vs-warm comparison.
	var reqs []service.VerifyRequest
	for _, m := range strings.Split(*mix, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		_, queries, err := service.BuiltinModel(m)
		if err != nil {
			return err
		}
		for i := range queries {
			reqs = append(reqs, service.VerifyRequest{Model: m, Prop: queries[i].Name})
		}
	}
	if len(reqs) == 0 {
		return fmt.Errorf("empty request mix")
	}

	start := time.Now()
	// Every fired request honors Retry-After with jittered exponential
	// backoff before giving up; shedCount tallies each 429 the server
	// actually returned (retried or final) so the shed-rate statistic still
	// reflects server-side load shedding.
	var shedCount atomic.Int64
	client := &service.HTTPClient{
		MaxAttempts: 4,
		OnRetry:     func(status int, _ time.Duration) { shedCount.Add(1) },
	}
	var sheds int
	// Cold pass: sequential, so each latency is an isolated solve. Track
	// per-request latencies too: the heaviest request is where the cache
	// speedup is meaningful (on trivial rows HTTP overhead dominates).
	coldMS := make([]float64, 0, len(reqs))
	coldByReq := make([]float64, len(reqs))
	for i := range reqs {
		ms, _, shed, err := fireOne(client, base, &reqs[i])
		if err != nil {
			return err
		}
		coldByReq[i] = ms
		if shed {
			sheds++
			continue
		}
		coldMS = append(coldMS, ms)
	}

	// Warm passes: concurrent, hitting the cache (or the singleflight when
	// two clients collide on a key).
	var mu sync.Mutex
	warmMS := make([]float64, 0, len(reqs)**passes)
	warmByReq := make([][]float64, len(reqs))
	warmHits, warmTotal := 0, 0
	sem := make(chan struct{}, max(1, *conc))
	var wg sync.WaitGroup
	var firstErr error
	for p := 0; p < *passes; p++ {
		for i := range reqs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				ms, hit, shed, err := fireOne(client, base, &reqs[i])
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				if shed {
					sheds++
					return
				}
				warmTotal++
				warmMS = append(warmMS, ms)
				warmByReq[i] = append(warmByReq[i], ms)
				if hit {
					warmHits++
				}
			}(i)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	res := loadgenResult{
		Engine:         vcache.EngineVersion,
		Requests:       len(reqs),
		WarmPasses:     *passes,
		Concurrency:    *conc,
		ColdMedianMS:   percentile(coldMS, 50),
		ColdP95MS:      percentile(coldMS, 95),
		WarmMedianMS:   percentile(warmMS, 50),
		WarmP95MS:      percentile(warmMS, 95),
		WarmHitRatio:   ratio(warmHits, warmTotal),
		ShedRate:       ratio(int(shedCount.Load())+sheds, len(coldMS)+warmTotal+int(shedCount.Load())+sheds),
		TotalRequests:  len(coldMS) + warmTotal + sheds,
		TotalSheds:     int(shedCount.Load()) + sheds,
		TotalElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	}
	if res.WarmMedianMS > 0 {
		res.MedianSpeedup = res.ColdMedianMS / res.WarmMedianMS
	}
	heavy := 0
	for i := range coldByReq {
		if coldByReq[i] > coldByReq[heavy] {
			heavy = i
		}
	}
	res.HeavyRequest = reqs[heavy].Model + "/" + reqs[heavy].Prop
	res.HeavyColdMS = coldByReq[heavy]
	res.HeavyWarmMS = percentile(warmByReq[heavy], 50)
	if res.HeavyWarmMS > 0 {
		res.HeavySpeedup = res.HeavyColdMS / res.HeavyWarmMS
	}
	if qb != nil {
		q, err := qb.run(srv, client, base, *queueJobs, *queueTenants, *queueConsumers, *conc)
		if err != nil {
			return err
		}
		res.Queue = q
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: %d unique requests, cold median %.2fms, warm median %.2fms, heavy %s %.2fms -> %.2fms (%.1fx), hit ratio %.2f, shed rate %.3f -> %s\n",
		res.Requests, res.ColdMedianMS, res.WarmMedianMS,
		res.HeavyRequest, res.HeavyColdMS, res.HeavyWarmMS, res.HeavySpeedup,
		res.WarmHitRatio, res.ShedRate, *out)
	if *minSpeedup > 0 && res.HeavySpeedup < *minSpeedup {
		return fmt.Errorf("heavy-request warm speedup %.1fx below required %.1fx (%s: %.2fms cold, %.2fms warm)",
			res.HeavySpeedup, *minSpeedup, res.HeavyRequest, res.HeavyColdMS, res.HeavyWarmMS)
	}
	return nil
}

// fireOne sends one request through the retrying client and reports
// (latency ms, all-rows-cached, shed). The latency includes any backoff the
// client spent riding out 429s — that wait is real user-visible latency. A
// request still shed after the whole retry budget counts as shed, not as an
// error.
func fireOne(client *service.HTTPClient, base string, req *service.VerifyRequest) (float64, bool, bool, error) {
	t0 := time.Now()
	var resp service.VerifyResponse
	status, err := client.PostJSON(context.Background(), base+"/v1/verify", req, &resp)
	ms := float64(time.Since(t0).Microseconds()) / 1e3
	if status == http.StatusTooManyRequests {
		return ms, false, true, nil
	}
	if err != nil {
		return 0, false, false, fmt.Errorf("%s/%s: %w", req.Model, req.Prop, err)
	}
	hit := len(resp.Results) > 0
	for _, r := range resp.Results {
		if !r.Cached {
			hit = false
		}
	}
	return ms, hit, false, nil
}

// queueBench threads enqueue timestamps through the server's OnTerminal hook
// so enqueue-to-verdict latency needs no polling.
type queueBench struct {
	mu  sync.Mutex
	enq map[string]time.Time
	e2e []float64
}

func newQueueBench() *queueBench {
	return &queueBench{enq: make(map[string]time.Time)}
}

func (b *queueBench) onTerminal(j queue.Job, st queue.State) {
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if t0, ok := b.enq[j.ID]; ok {
		b.e2e = append(b.e2e, float64(now.Sub(t0).Microseconds())/1e3)
		delete(b.enq, j.ID)
	}
}

// run executes the backlog benchmark: enqueue every job while consumers are
// paused (acks are still fsync-backed), record the peak accumulated state,
// then resume and drain. A heap sampler runs throughout — the headline claim
// is that a six-figure backlog holds steady memory, not that it is fast.
func (b *queueBench) run(srv *service.Server, client *service.HTTPClient, base string, jobs, tenants, consumers, conc int) (*queueBenchResult, error) {
	q := srv.Queue()
	if q == nil {
		return nil, fmt.Errorf("queue benchmark: the in-process server came up without its queue")
	}
	if tenants < 1 {
		tenants = 1
	}
	fmt.Fprintf(os.Stderr, "holistic: loadgen enqueueing %d-job backlog (%d tenants, consumers paused)...\n", jobs, tenants)

	var peakHeap atomic.Uint64
	samplerStop := make(chan struct{})
	var samplerOnce sync.Once
	stopSampler := func() { samplerOnce.Do(func() { close(samplerStop) }) }
	defer stopSampler()
	go func() {
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-samplerStop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				for {
					cur := peakHeap.Load()
					if ms.HeapAlloc <= cur || peakHeap.CompareAndSwap(cur, ms.HeapAlloc) {
						break
					}
				}
			}
		}
	}()

	ackMS := make([]float64, 0, jobs)
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, max(1, conc))
	var wg sync.WaitGroup
	enqStart := time.Now()
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			req := service.EnqueueRequest{
				// Identical verification per job (unique by tag): after the
				// first drain populates the cache, every later job is a cache
				// hit, so the measurement isolates the queue, not the solver.
				VerifyRequest: service.VerifyRequest{Model: "simplified", Prop: "Inv1_0"},
				Tenant:        fmt.Sprintf("tenant-%d", i%tenants),
				Tag:           fmt.Sprintf("backlog-%d", i),
				Force:         true,
			}
			t0 := time.Now()
			var out service.EnqueueResponse
			_, err := client.PostJSON(context.Background(), base+"/v1/enqueue", &req, &out)
			ms := float64(time.Since(t0).Microseconds()) / 1e3
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("enqueue %d: %w", i, err)
				}
				return
			}
			ackMS = append(ackMS, ms)
			b.mu.Lock()
			b.enq[out.ID] = t0
			b.mu.Unlock()
		}(i)
	}
	wg.Wait()
	enqElapsed := time.Since(enqStart)
	if firstErr != nil {
		return nil, firstErr
	}
	peakDepth := q.Status().Depth

	fmt.Fprintf(os.Stderr, "holistic: loadgen backlog at depth %d; resuming %d consumer(s)...\n", peakDepth, consumers)
	drainStart := time.Now()
	q.Resume()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Hour)
	defer cancel()
	if err := q.WaitIdle(ctx); err != nil {
		return nil, fmt.Errorf("draining the benchmark backlog: %w", err)
	}
	drainElapsed := time.Since(drainStart)
	stopSampler()

	st := q.Status()
	b.mu.Lock()
	e2e := append([]float64(nil), b.e2e...)
	b.mu.Unlock()
	res := &queueBenchResult{
		Jobs: jobs, Tenants: tenants, Consumers: consumers,
		AckMedianMS:      percentile(ackMS, 50),
		AckP95MS:         percentile(ackMS, 95),
		AckP99MS:         percentile(ackMS, 99),
		EnqueueElapsedMS: float64(enqElapsed.Microseconds()) / 1e3,
		PeakDepth:        peakDepth,
		E2EMedianMS:      percentile(e2e, 50),
		E2EP95MS:         percentile(e2e, 95),
		E2EP99MS:         percentile(e2e, 99),
		DrainElapsedMS:   float64(drainElapsed.Microseconds()) / 1e3,
		PeakHeapMB:       float64(peakHeap.Load()) / (1 << 20),
		Done:             st.Done,
		Dead:             st.Dead,
		Note:             "backlog fully accumulated before consumers start; e2e latency is queue wait + one (mostly cache-hit) verification",
	}
	if s := enqElapsed.Seconds(); s > 0 {
		res.EnqueuePerSec = float64(len(ackMS)) / s
	}
	if s := drainElapsed.Seconds(); s > 0 {
		res.DrainPerSec = float64(len(e2e)) / s
	}
	fmt.Fprintf(os.Stderr, "holistic: loadgen backlog drained: %d done, %d dead in %.1fs (%.0f jobs/s, peak heap %.1f MiB)\n",
		st.Done, st.Dead, drainElapsed.Seconds(), res.DrainPerSec, res.PeakHeapMB)
	return res, nil
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
