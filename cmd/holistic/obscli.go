package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/vcache"
)

// obsFlags bundles the observability flags shared by the verification
// subcommands: -trace (JSONL event trace), -report (full metric snapshot),
// -pprof (net/http/pprof server) and -progress (periodic status line).
type obsFlags struct {
	trace    *string
	report   *string
	pprof    *string
	progress *time.Duration
}

func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		trace:    fs.String("trace", "", "write a JSONL event trace to this file"),
		report:   fs.String("report", "", "write the metric snapshot as JSON to this file"),
		pprof:    fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)"),
		progress: fs.Duration("progress", 0, "print a progress line at this interval (0 = off)"),
	}
}

// open validates every requested output up front — a bad path or an
// already-bound pprof port fails here, before any verification time is
// spent. The caller owns the sink: Close always, Flush on every exit path
// that has results (interrupts included).
func (o *obsFlags) open(tool string) (*obs.Sink, error) {
	sink, err := obs.OpenSink(obs.SinkOptions{
		Tool:       tool,
		TracePath:  *o.trace,
		ReportPath: *o.report,
		PprofAddr:  *o.pprof,
	})
	if err != nil {
		return nil, err
	}
	if addr := sink.PprofAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "holistic: pprof listening on http://%s/debug/pprof/\n", addr)
	}
	return sink, nil
}

// startProgress begins the periodic schemas/s status line (no-op at
// interval 0). The returned stop func is idempotent.
func (o *obsFlags) startProgress(stop func() bool) func() {
	if *o.progress <= 0 {
		return func() {}
	}
	solved := obs.Default.Counter("schema", "schemas_solved")
	start := time.Now()
	return obs.StartProgress(os.Stderr, *o.progress, func() string {
		return obs.RateLine("schemas", solved.Load(), 0, time.Since(start))
	}, stop)
}

// addQueryMetrics appends one check result to the report: the deterministic
// row (with Budget rows' volatile fields zeroed — a timeout or interrupt
// cuts the enumeration at a nondeterministic point) and the observational
// per-phase timing row, which keeps the full values.
func addQueryMetrics(rep *obs.Report, model, query, mode string, outcome spec.Outcome,
	schemas int, avgLen float64, solver smt.Stats, elapsed time.Duration, ph schema.PhaseTimings) {
	qm := obs.QueryMetrics{
		Model:   model,
		Query:   query,
		Mode:    mode,
		Outcome: vcache.OutcomeLabel(outcome),
		Schemas: schemas,
		AvgLen:  avgLen,
		Solver: obs.SolverMetrics{
			LPChecks:   int64(solver.LPChecks),
			Pivots:     int64(solver.Pivots),
			Rebuilds:   int64(solver.Rebuilds),
			BBNodes:    int64(solver.BBNodes),
			CaseSplits: int64(solver.CaseSplit),
		},
	}
	if outcome == spec.Budget {
		qm.Schemas, qm.AvgLen, qm.Solver = 0, 0, obs.SolverMetrics{}
	}
	rep.Deterministic.Queries = append(rep.Deterministic.Queries, qm)
	rep.Observational.Timings = append(rep.Observational.Timings, obs.QueryTimings{
		Model:     model,
		Query:     query,
		ElapsedNS: elapsed.Nanoseconds(),
		EncodeNS:  ph.Encode.Nanoseconds(),
		SolveNS:   ph.Solve.Nanoseconds(),
		FoldNS:    ph.Fold.Nanoseconds(),
	})
}

// addResultMetrics is addQueryMetrics for a schema.Result.
func addResultMetrics(rep *obs.Report, model string, res schema.Result) {
	addQueryMetrics(rep, model, res.Query, res.Mode.String(), res.Outcome,
		res.Schemas, res.AvgLen, res.Solver, res.Elapsed, res.Phases)
}

// reportFromRows builds the -report payload from Table 2 rows.
func reportFromRows(tool string, rows []core.Table2Row) *obs.Report {
	rep := &obs.Report{Tool: tool}
	for _, r := range rows {
		addQueryMetrics(rep, r.TA, r.Property, r.Mode.String(), r.Outcome,
			r.Schemas, r.AvgLen, r.Solver, r.Elapsed, r.Phases)
	}
	return rep
}

// finalizeReport stamps the observational envelope: the worker count, the
// interrupt flag, and the raw process-wide instrument snapshot.
func finalizeReport(rep *obs.Report, workers int, interrupted bool) {
	rep.Observational.Workers = workers
	rep.Observational.Interrupted = interrupted
	rep.Observational.Registry = obs.Default.Snapshot()
}
