package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/spec"
)

// benchRun is one Table 2 regeneration at a fixed worker count.
type benchRun struct {
	Workers int        `json:"workers"`
	TotalNS int64      `json:"total_ns"`
	Rows    []benchRow `json:"rows"`
}

// benchRow is one Table 2 row with its wall clock.
type benchRow struct {
	TA        string `json:"ta"`
	Property  string `json:"property"`
	Outcome   string `json:"outcome"`
	Schemas   int    `json:"schemas"`
	ElapsedNS int64  `json:"elapsed_ns"`
}

// benchPrefix is the full-mode prefix-solve throughput point: a deep
// preorder prefix of the simplified-consensus Inv1 guard-context tree solved
// at a single worker — the canonical walk of the incremental prefix-sharing
// solver, and the per-schema cost the cluster plane pays per shard.
type benchPrefix struct {
	TA            string  `json:"ta"`
	Property      string  `json:"property"`
	Contexts      int     `json:"contexts"`
	Workers       int     `json:"workers"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	SchemasPerSec float64 `json:"schemas_per_sec"`
}

// benchReport is the BENCH_schema.json payload: the same Table 2 block run
// sequentially and with the full worker budget, plus the cross-check that the
// two runs produced identical verdicts and schema counts, plus the full-mode
// prefix-solve throughput point.
type benchReport struct {
	GeneratedAt string      `json:"generated_at"`
	CPUs        int         `json:"cpus"`
	Sequential  benchRun    `json:"sequential"`
	Parallel    benchRun    `json:"parallel"`
	Speedup     float64     `json:"speedup"`
	PrefixSolve benchPrefix `json:"prefix_solve"`
	Identical   bool        `json:"identical"`
	Mismatches  []string    `json:"mismatches,omitempty"`
}

// benchPrefixSolve times one single-worker SolveRange pass over the first
// n contexts of the simplified-consensus Inv1_0 tree in full mode (the tree
// structurally exceeds the whole-check budget, so prefix solving is where
// that workload's per-schema cost lives).
func benchPrefixSolve(n int, stop func() bool) (benchPrefix, error) {
	const model, prop = "simplified", "Inv1_0"
	pt := benchPrefix{TA: model, Property: prop, Workers: 1}
	a, qs, err := modelByName(model)
	if err != nil {
		return pt, err
	}
	var q *spec.Query
	for i := range qs {
		if qs[i].Name == prop {
			q = &qs[i]
		}
	}
	if q == nil {
		return pt, fmt.Errorf("bench: model %s has no property %s", model, prop)
	}
	eng, err := schema.New(a, schema.Options{Mode: schema.FullEnumeration, Stop: stop})
	if err != nil {
		return pt, err
	}
	plan, err := eng.PlanFull(q)
	if err != nil {
		return pt, err
	}
	ctxs, _ := plan.EnumeratePrefix(n, stop)
	pt.Contexts = len(ctxs)
	start := time.Now()
	recs, interrupted, err := plan.SolveRange(ctxs, 0, 1, stop)
	elapsed := time.Since(start)
	if err != nil {
		return pt, err
	}
	if interrupted {
		return pt, fmt.Errorf("bench: prefix solve interrupted")
	}
	for i := range recs {
		if !recs[i].Done {
			return pt, fmt.Errorf("bench: prefix record %d not solved", i)
		}
	}
	pt.ElapsedNS = elapsed.Nanoseconds()
	if elapsed > 0 {
		pt.SchemasPerSec = float64(len(ctxs)) / elapsed.Seconds()
	}
	return pt, nil
}

func benchTable2(workers int, skipNaive bool, naiveTimeout time.Duration, stop func() bool, tr *obs.Tracer) (benchRun, []core.Table2Row, error) {
	start := time.Now()
	rows, err := core.Table2(core.Table2Options{
		SkipNaive:    skipNaive,
		NaiveTimeout: naiveTimeout,
		Stop:         stop,
		Workers:      workers,
		Trace:        tr,
	})
	if err != nil {
		return benchRun{}, nil, err
	}
	run := benchRun{Workers: workers, TotalNS: time.Since(start).Nanoseconds()}
	for _, r := range rows {
		run.Rows = append(run.Rows, benchRow{
			TA: r.TA, Property: r.Property, Outcome: r.Outcome.String(),
			Schemas: r.Schemas, ElapsedNS: r.Elapsed.Nanoseconds(),
		})
	}
	return run, rows, nil
}

// crossCheck compares the two runs row by row: same properties in the same
// order, same verdicts, same schema counts. Rows whose outcome is Budget are
// compared on outcome only — a timeout cuts the enumeration at a
// wall-clock-dependent point, so the partial count is not deterministic.
func crossCheck(seq, par benchRun) []string {
	var bad []string
	if len(seq.Rows) != len(par.Rows) {
		return []string{fmt.Sprintf("row count: %d sequential vs %d parallel", len(seq.Rows), len(par.Rows))}
	}
	for i := range seq.Rows {
		s, p := seq.Rows[i], par.Rows[i]
		if s.TA != p.TA || s.Property != p.Property {
			bad = append(bad, fmt.Sprintf("row %d: %s/%s vs %s/%s", i, s.TA, s.Property, p.TA, p.Property))
			continue
		}
		if s.Outcome != p.Outcome {
			bad = append(bad, fmt.Sprintf("%s/%s: outcome %s vs %s", s.TA, s.Property, s.Outcome, p.Outcome))
		}
		if s.Outcome != spec.Budget.String() && s.Schemas != p.Schemas {
			bad = append(bad, fmt.Sprintf("%s/%s: %d schemas vs %d", s.TA, s.Property, s.Schemas, p.Schemas))
		}
	}
	return bad
}

// cmdBench regenerates Table 2 twice — once with a single worker, once with
// the full budget — cross-checks that the verdicts and schema counts are
// byte-identical, and writes the timings as JSON (the paper's Table 2
// wall-clock column, at both worker counts).
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	workers := fs.Int("j", runtime.NumCPU(), "parallel worker count to compare against 1")
	out := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	skipNaive := fs.Bool("skip-naive", true, "skip the naive-consensus block (its rows time out by design)")
	naiveTimeout := fs.Duration("naive-timeout", 30*time.Second, "budget for the naive block when enabled")
	prefix := fs.Int("prefix", 1000, "context count for the full-mode prefix-solve throughput point")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sink, err := of.open("holistic bench")
	if err != nil {
		return err
	}
	defer sink.Close()
	stop := watchInterrupt()
	stopProgress := of.startProgress(stop)
	defer stopProgress()

	fmt.Fprintf(os.Stderr, "bench: table2 with 1 worker...\n")
	seq, _, err := benchTable2(1, *skipNaive, *naiveTimeout, stop, sink.Tracer)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: table2 with %d workers...\n", *workers)
	par, parRows, err := benchTable2(*workers, *skipNaive, *naiveTimeout, stop, sink.Tracer)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: full-mode prefix solve (%d contexts, 1 worker)...\n", *prefix)
	pfx, err := benchPrefixSolve(*prefix, stop)
	if err != nil {
		return err
	}
	stopProgress()
	if stop() {
		return fmt.Errorf("bench interrupted; timings would be meaningless")
	}

	rep := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		CPUs:        runtime.NumCPU(),
		Sequential:  seq,
		Parallel:    par,
		PrefixSolve: pfx,
		Mismatches:  crossCheck(seq, par),
	}
	rep.Identical = len(rep.Mismatches) == 0
	if par.TotalNS > 0 {
		rep.Speedup = float64(seq.TotalNS) / float64(par.TotalNS)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("bench: %s (speedup %.2fx at %d workers, prefix solve %.0f schemas/s, identical=%v)\n",
			*out, rep.Speedup, *workers, rep.PrefixSolve.SchemasPerSec, rep.Identical)
	} else {
		os.Stdout.Write(data)
	}
	// The -report payload covers the parallel run: its deterministic section
	// is byte-identical to the sequential one (that is what crossCheck just
	// proved row by row), so one copy suffices.
	obsRep := reportFromRows("holistic bench", parRows)
	finalizeReport(obsRep, *workers, false)
	if err := sink.Flush(obsRep); err != nil {
		return err
	}
	if !rep.Identical {
		return fmt.Errorf("worker counts disagreed: %v", rep.Mismatches)
	}
	return nil
}
