package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/ltl"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/taformat"
	"repro/internal/vcache"
)

// clusterPayloads expands the cluster CLI's model/ta/spec/prop flags into one
// JobPayload per property, resolving the query list locally first so the
// submission order (and hence the printed row order) matches `holistic
// verify`.
func clusterPayloads(model, taFile, specFile, prop string, maxSchemas, truncate int) ([]cluster.JobPayload, error) {
	base := cluster.JobPayload{MaxSchemas: maxSchemas, Truncate: truncate}
	switch {
	case taFile != "":
		if specFile == "" {
			return nil, fmt.Errorf("-ta requires -spec with the properties to check")
		}
		taText, err := os.ReadFile(taFile)
		if err != nil {
			return nil, err
		}
		specText, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		base.TA, base.Spec = string(taText), string(specText)
	default:
		base.Model = model
	}
	names, err := clusterQueryNames(&base)
	if err != nil {
		return nil, err
	}
	var payloads []cluster.JobPayload
	for _, name := range names {
		if prop != "" && name != prop {
			continue
		}
		p := base
		p.Prop = name
		payloads = append(payloads, p)
	}
	if len(payloads) == 0 {
		return nil, fmt.Errorf("no property %q in the selected model", prop)
	}
	return payloads, nil
}

// clusterQueryNames lists the property names a payload's model/spec defines.
func clusterQueryNames(base *cluster.JobPayload) ([]string, error) {
	if base.Model != "" {
		_, queries, err := service.BuiltinModel(base.Model)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(queries))
		for i := range queries {
			names[i] = queries[i].Name
		}
		return names, nil
	}
	// Inline ta/spec: compile once locally to list the properties — the same
	// parse the coordinator and every worker will repeat from the payload.
	a, err := taformat.Parse(base.TA)
	if err != nil {
		return nil, err
	}
	pf, err := ltl.ParseFile(base.Spec)
	if err != nil {
		return nil, err
	}
	queries, err := ltl.CompileFile(pf, a)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(queries))
	for i := range queries {
		names[i] = queries[i].Name
	}
	return names, nil
}

// stopContext cancels the returned context as soon as the cooperative stop
// flag trips (the CLI's signal handler owns the flag).
func stopContext(stop func() bool) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for !stop() {
			select {
			case <-ctx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
		}
		cancel()
	}()
	return ctx, cancel
}

// cmdCluster runs the fault-tolerant coordination plane in-process: it
// serves the cluster API for `holistic work` daemons, submits one job per
// property, and prints verify-style rows as verdicts land. With no workers
// attached it still finishes — the degradation ladder drains every shard
// locally — and with -journal a killed coordinator resumes on restart.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	model := fs.String("model", "bv", "model: bv, naive, simplified, strb or bosco")
	taFile := fs.String("ta", "", "load the automaton from a .ta file instead of a bundled model")
	specFile := fs.String("spec", "", "property file to check (required with -ta)")
	prop := fs.String("prop", "", "check only this property (default: all)")
	addr := fs.String("addr", "127.0.0.1:9091", "coordination API listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	journalDir := fs.String("journal", "", "WAL-journal directory; a restarted coordinator resumes from it")
	shardSize := fs.Int("shard", 64, "contexts per shard")
	lease := fs.Duration("lease", 3*time.Second, "shard lease TTL (heartbeats extend it; silence reissues the shard)")
	maxAttempts := fs.Int("max-attempts", 5, "remote issues per shard before it is only solved locally")
	maxSchemas := fs.Int("max-schemas", 0, "schema enumeration budget (0 = the paper's 100k cutoff)")
	truncate := fs.Int("truncate", 0, "solve only the first N preorder schemas (a Sat still refutes; a clean prefix reports budget-exceeded)")
	idleLocal := fs.Duration("idle-local", 0, "worker-pool silence before the coordinator drains shards itself (0 = 2x lease)")
	local := fs.Int("local", runtime.NumCPU(), "solver threads for locally drained shards")
	stats := fs.Bool("stats", false, "print shard/reissue statistics per property")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	payloads, err := clusterPayloads(*model, *taFile, *specFile, *prop, *maxSchemas, *truncate)
	if err != nil {
		return err
	}
	sink, err := of.open("holistic cluster")
	if err != nil {
		return err
	}
	defer sink.Close()
	stop := watchInterrupt()

	coord, err := cluster.New(cluster.Config{
		LeaseTTL:       *lease,
		MaxAttempts:    *maxAttempts,
		ShardSize:      *shardSize,
		JournalDir:     *journalDir,
		LocalWorkers:   *local,
		IdleLocalAfter: *idleLocal,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "holistic: "+format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := service.HardenServer(&http.Server{Handler: coord.Handler()})
	go hs.Serve(ln)
	defer hs.Close()
	bound := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "holistic: cluster coordinator listening on http://%s\n", bound)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}

	ids := make([]string, len(payloads))
	for i := range payloads {
		id, err := coord.Submit(payloads[i])
		if err != nil {
			return err
		}
		ids[i] = id
	}

	ctx, cancel := stopContext(stop)
	defer cancel()
	modelName := *model
	obsRep := &obs.Report{Tool: "holistic cluster"}
	for i, id := range ids {
		res, err := coord.Wait(ctx, id)
		if err != nil {
			if stop() {
				return fmt.Errorf("cluster interrupted; completed verdicts were reported")
			}
			return err
		}
		if *taFile != "" && i == 0 {
			if st, ok := coord.StatusOf(id); ok {
				modelName = st.Model
			}
		}
		addResultMetrics(obsRep, modelName, res)
		fmt.Printf("%-16s %-16s %8d schemas  avg len %6.1f  %v\n",
			res.Query, res.Outcome, res.Schemas, res.AvgLen, res.Elapsed.Round(time.Millisecond))
		if *stats {
			if st, ok := coord.StatusOf(id); ok {
				fmt.Printf("    cluster: %d shards (%d done, %d cancelled), %d reissues\n",
					st.ShardsTotal, st.ShardsDone, st.ShardsCancelled, st.Reissues)
			}
		}
		if res.CE != nil {
			fmt.Println(res.CE.Format())
		}
	}
	finalizeReport(obsRep, *local, stop())
	if err := sink.Flush(obsRep); err != nil {
		return err
	}
	return nil
}

// cmdWork runs one shard-solving worker daemon against a coordinator started
// with `holistic cluster`. Workers are stateless: kill -9 one mid-shard and
// the lease expires, the shard reissues, and the surviving pool (or the
// coordinator itself) finishes with a byte-identical verdict.
func cmdWork(args []string) error {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "http://127.0.0.1:9091", "coordinator base URL")
	workers := fs.Int("j", runtime.NumCPU(), "solver threads per shard")
	id := fs.String("id", "", "worker ID in leases and journal records (default: derived from the PID)")
	poll := fs.Duration("poll", 200*time.Millisecond, "claim-poll interval when no work is available")
	quiet := fs.Bool("quiet", false, "suppress per-shard progress lines")
	cacheDir := fs.String("cache", "", "persist solved shards here by content hash; a restarted worker answers reissues from disk")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		*id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	stop := watchInterrupt()
	ctx, cancel := stopContext(stop)
	defer cancel()
	w := &cluster.Worker{
		Coordinator:  strings.TrimRight(*coordinator, "/"),
		ID:           *id,
		Workers:      *workers,
		PollInterval: *poll,
		Stop:         stop,
		CacheDir:     *cacheDir,
	}
	if !*quiet {
		w.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "holistic: "+format+"\n", a...)
		}
	}
	fmt.Fprintf(os.Stderr, "holistic: worker %s solving for %s (j=%d)\n", *id, w.Coordinator, *workers)
	if err := w.Run(ctx); err != nil && !stop() {
		return err
	}
	fmt.Fprintf(os.Stderr, "holistic: worker %s stopped (%d shards solved)\n", *id, w.ShardsSolved.Load())
	return nil
}

// clusterBenchPoint is one worker count on the scaling curve.
type clusterBenchPoint struct {
	Workers       int     `json:"workers"`
	Truncate      int     `json:"truncate"`
	SchemasSolved int     `json:"schemas_solved"`
	Outcome       string  `json:"outcome"`
	Schemas       int     `json:"schemas"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	SchemasPerSec float64 `json:"schemas_per_sec"`
	Speedup       float64 `json:"speedup"`
}

// clusterBenchReport is the BENCH_cluster.json payload: the single-box
// give-up point for the naive automaton, the cluster scaling curve at a
// calibration prefix, and the headline run that pushes the enumeration well
// past the single-box budget.
type clusterBenchReport struct {
	EngineVersion string `json:"engine_version"`
	GeneratedAt   string `json:"generated_at"`
	CPUs          int    `json:"cpus"`
	Model         string `json:"model"`
	Prop          string `json:"prop"`

	// Budget is the schema cutoff a plain full-mode run refuses to cross;
	// SingleBox is that refusal (outcome budget-exceeded after enumerating
	// Budget+1 schemas and solving none of them).
	Budget           int    `json:"budget"`
	SingleBoxOutcome string `json:"single_box_outcome"`
	SingleBoxSchemas int    `json:"single_box_schemas"`

	// Curve measures cluster throughput at 1..N workers on CurveTruncate
	// schemas; identical rows across worker counts are re-asserted per point.
	Curve []clusterBenchPoint `json:"curve"`

	// Headline is the past-the-budget run: TotalSchemasSolved counts every
	// schema actually solved by the bench, curve points included.
	Headline           clusterBenchPoint `json:"headline"`
	TotalSchemasSolved int               `json:"total_schemas_solved"`
	Identical          bool              `json:"identical"`
	Mismatches         []string          `json:"mismatches,omitempty"`
}

// runClusterPoint boots a fresh coordinator + W in-process workers over a
// real TCP listener, runs one truncated job, and returns the measured point
// plus the result for cross-checking.
func runClusterPoint(payload cluster.JobPayload, workers, solverThreads, shardSize int, stop func() bool) (clusterBenchPoint, schema.Result, error) {
	pt := clusterBenchPoint{Workers: workers, Truncate: payload.Truncate}
	coord, err := cluster.New(cluster.Config{
		ShardSize:      shardSize,
		LocalWorkers:   1,
		IdleLocalAfter: time.Hour, // the pool never empties; measure the workers
	})
	if err != nil {
		return pt, schema.Result{}, err
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, schema.Result{}, err
	}
	hs := service.HardenServer(&http.Server{Handler: coord.Handler()})
	go hs.Serve(ln)
	defer hs.Close()

	ctx, cancel := stopContext(stop)
	defer cancel()
	for i := 0; i < workers; i++ {
		w := &cluster.Worker{
			Coordinator:  "http://" + ln.Addr().String(),
			ID:           fmt.Sprintf("bench-%d", i),
			Workers:      solverThreads,
			PollInterval: 5 * time.Millisecond,
			Stop:         stop,
		}
		go w.Run(ctx)
	}

	start := time.Now()
	id, err := coord.Submit(payload)
	if err != nil {
		return pt, schema.Result{}, err
	}
	res, err := coord.Wait(ctx, id)
	elapsed := time.Since(start)
	if err != nil {
		return pt, schema.Result{}, err
	}
	solved := payload.Truncate
	if res.Outcome == spec.Violated {
		solved = res.Schemas
	}
	pt.SchemasSolved = solved
	pt.Outcome = res.Outcome.String()
	pt.Schemas = res.Schemas
	pt.ElapsedNS = elapsed.Nanoseconds()
	if elapsed > 0 {
		pt.SchemasPerSec = float64(solved) / elapsed.Seconds()
	}
	return pt, res, nil
}

// cmdClusterBench measures the distributed plane and writes
// BENCH_cluster.json. The naive automaton is the point: a single box gives
// up at the 100k-schema structural cutoff without solving anything, while
// the cluster's truncated-prefix mode shards the same preorder and actually
// solves its way past that budget, with a 1→N worker scaling curve along the
// way. Verdict rows are asserted identical at every worker count.
func cmdClusterBench(args []string) error {
	fs := flag.NewFlagSet("clusterbench", flag.ContinueOnError)
	model := fs.String("model", "naive", "model to push past its budget")
	prop := fs.String("prop", "Inv2_0", "property to check")
	headline := fs.Int("truncate", 110_000, "headline prefix length (past the 100k single-box budget)")
	curveTruncate := fs.Int("curve-truncate", 2048, "calibration prefix length for the scaling curve")
	curve := fs.String("curve", "1,2,4", "comma-separated worker counts for the scaling curve")
	solverThreads := fs.Int("j", 1, "solver threads per in-process worker")
	shardSize := fs.Int("shard", 256, "contexts per shard")
	out := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var workerCounts []int
	for _, part := range strings.Split(*curve, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -curve element %q", part)
		}
		workerCounts = append(workerCounts, n)
	}
	stop := watchInterrupt()

	// The single-box refusal: full mode with the default budget enumerates
	// budget+1 schemas, solves none, reports budget-exceeded immediately.
	a, queries, err := modelByName(*model)
	if err != nil {
		return err
	}
	var query *spec.Query
	for i := range queries {
		if queries[i].Name == *prop {
			query = &queries[i]
		}
	}
	if query == nil {
		return fmt.Errorf("no property %q in model %s", *prop, *model)
	}
	eng, err := schema.New(a, schema.Options{Mode: schema.FullEnumeration, Stop: stop})
	if err != nil {
		return err
	}
	single, err := eng.Check(query)
	if err != nil {
		return err
	}
	rep := clusterBenchReport{
		EngineVersion:    vcache.EngineVersion,
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
		CPUs:             runtime.NumCPU(),
		Model:            *model,
		Prop:             *prop,
		Budget:           100_000,
		SingleBoxOutcome: single.Outcome.String(),
		SingleBoxSchemas: single.Schemas,
	}
	fmt.Fprintf(os.Stderr, "clusterbench: single box: %s after %d schemas\n", single.Outcome, single.Schemas)

	var baseline float64
	var refRow *obs.QueryMetrics
	for _, w := range workerCounts {
		fmt.Fprintf(os.Stderr, "clusterbench: curve point: %d workers on %d schemas...\n", w, *curveTruncate)
		pt, res, err := runClusterPoint(cluster.JobPayload{Model: *model, Prop: *prop, Truncate: *curveTruncate},
			w, *solverThreads, *shardSize, stop)
		if err != nil {
			return err
		}
		if stop() {
			return fmt.Errorf("clusterbench interrupted; timings would be meaningless")
		}
		if baseline == 0 {
			baseline = float64(pt.ElapsedNS)
		}
		if pt.ElapsedNS > 0 {
			pt.Speedup = baseline / float64(pt.ElapsedNS)
		}
		row := cluster.DeterministicRow(*model, res)
		if refRow == nil {
			refRow = &row
		} else if diff := diffRows(*refRow, row); diff != "" {
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf("workers=%d: %s", w, diff))
		}
		rep.Curve = append(rep.Curve, pt)
		rep.TotalSchemasSolved += pt.SchemasSolved
		fmt.Fprintf(os.Stderr, "clusterbench: %d workers: %.0f schemas/s (speedup %.2fx)\n", w, pt.SchemasPerSec, pt.Speedup)
	}

	maxW := workerCounts[len(workerCounts)-1]
	fmt.Fprintf(os.Stderr, "clusterbench: headline: %d workers on %d schemas (past the %d budget)...\n",
		maxW, *headline, rep.Budget)
	hp, _, err := runClusterPoint(cluster.JobPayload{Model: *model, Prop: *prop, Truncate: *headline},
		maxW, *solverThreads, *shardSize, stop)
	if err != nil {
		return err
	}
	if stop() {
		return fmt.Errorf("clusterbench interrupted; timings would be meaningless")
	}
	if baseline > 0 && hp.ElapsedNS > 0 {
		// Speedup vs the 1-worker curve rate extrapolated to the headline size.
		curveRate := rep.Curve[0].SchemasPerSec
		if curveRate > 0 {
			hp.Speedup = hp.SchemasPerSec / curveRate
		}
	}
	rep.Headline = hp
	rep.TotalSchemasSolved += hp.SchemasSolved
	rep.Identical = len(rep.Mismatches) == 0

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("clusterbench: %s (%d schemas solved, budget %d, identical=%v)\n",
			*out, rep.TotalSchemasSolved, rep.Budget, rep.Identical)
	} else {
		os.Stdout.Write(data)
	}
	if !rep.Identical {
		return fmt.Errorf("worker counts disagreed: %v", rep.Mismatches)
	}
	return nil
}

// diffRows compares two deterministic report rows.
func diffRows(want, got obs.QueryMetrics) string {
	w, _ := json.Marshal(want)
	g, _ := json.Marshal(got)
	if string(w) != string(g) {
		return fmt.Sprintf("row %s != %s", g, w)
	}
	return ""
}
