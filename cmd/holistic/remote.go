package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// runRemoteVerify sends one verification request to a `holistic serve`
// daemon and renders the response exactly like a local run: same row
// format (plus a " [cached]" marker on warm verdicts) and an obs report
// whose deterministic section is byte-identical to the local one's — the
// server computes the deterministic fields, the client copies them
// verbatim.
func runRemoteVerify(baseURL, model, taFile, specFile, prop, mode string,
	timeout time.Duration, stats bool, of *obsFlags) error {
	req := service.VerifyRequest{Prop: prop, Mode: mode, TimeoutMS: timeout.Milliseconds()}
	if taFile != "" {
		taData, err := os.ReadFile(taFile)
		if err != nil {
			return err
		}
		if specFile == "" {
			return fmt.Errorf("-ta requires -spec with the properties to check")
		}
		specData, err := os.ReadFile(specFile)
		if err != nil {
			return err
		}
		req.TA, req.Spec = string(taData), string(specData)
	} else {
		req.Model = model
	}

	sink, err := of.open("holistic verify")
	if err != nil {
		return err
	}
	defer sink.Close()

	// The shared client rides out 429s with Retry-After-aware jittered
	// backoff before giving up; connection failures to an explicit -remote
	// target surface immediately (no RetryTransport — a user-pointed URL
	// that refuses connections is most likely a typo, not a restart).
	client := &service.HTTPClient{
		Logf: func(format string, a ...any) { fmt.Fprintf(os.Stderr, "holistic: "+format+"\n", a...) },
	}
	var resp service.VerifyResponse
	if status, err := client.PostJSON(context.Background(), baseURL+"/v1/verify", &req, &resp); err != nil {
		if status == 0 {
			return fmt.Errorf("reaching %s: %w", baseURL, err)
		}
		return err
	}

	obsRep := &obs.Report{Tool: "holistic verify"}
	for _, r := range resp.Results {
		obsRep.Deterministic.Queries = append(obsRep.Deterministic.Queries, obs.QueryMetrics{
			Model: r.Model, Query: r.Query, Mode: r.Mode, Outcome: r.Outcome,
			Schemas: r.Schemas, AvgLen: r.AvgLen, Solver: r.Solver,
		})
		obsRep.Observational.Timings = append(obsRep.Observational.Timings, obs.QueryTimings{
			Model: r.Model, Query: r.Query, ElapsedNS: r.ElapsedNS,
		})
		marker := ""
		if r.Cached {
			marker = " [cached]"
		}
		fmt.Printf("%-16s %-16s %8d schemas  avg len %6.1f  %v%s\n",
			r.Query, r.Outcome, r.Schemas, r.AvgLen,
			time.Duration(r.ElapsedNS).Round(time.Millisecond), marker)
		if stats {
			fmt.Printf("    smt: %d LP checks, %d pivots, %d rebuilds, %d B&B nodes, %d case splits\n",
				r.Solver.LPChecks, r.Solver.Pivots, r.Solver.Rebuilds, r.Solver.BBNodes, r.Solver.CaseSplits)
		}
		if r.CEText != "" {
			fmt.Println(r.CEText)
		}
	}
	finalizeReport(obsRep, 0, false)
	return sink.Flush(obsRep)
}
