package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunSubcommands smoke-tests the CLI plumbing end to end (output goes to
// stdout; the assertions are on the error results).
func TestRunSubcommands(t *testing.T) {
	dir := t.TempDir()
	stdout := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() { os.Stdout = stdout }()

	good := [][]string{
		{"help"},
		{"verify", "-model", "strb"},
		{"verify", "-model", "bv", "-prop", "BV-Just0", "-mode", "full", "-stats"},
		{"dot", "-model", "simplified"},
		{"export", "-model", "naive"},
		{"spec", "-model", "strb"},
		{"ce"},
		{"table2", "-skip-naive"},
	}
	for _, args := range good {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}

	bad := [][]string{
		nil,
		{"frobnicate"},
		{"verify", "-model", "nope"},
		{"verify", "-model", "bv", "-prop", "NoSuchProperty"},
		{"verify", "-model", "bv", "-mode", "warp"},
		{"verify", "-ta", filepath.Join(dir, "missing.ta"), "-spec", "x"},
		{"dot", "-model", "nope"},
		{"spec", "-model", "naive"}, // no bundled spec for the naive model
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

// TestRunFileWorkflow exercises export -> verify -ta/-spec on temp files.
func TestRunFileWorkflow(t *testing.T) {
	dir := t.TempDir()
	taPath := filepath.Join(dir, "strb.ta")
	specPath := filepath.Join(dir, "strb.ltl")

	// Redirect stdout into the .ta file for the export call.
	orig := os.Stdout
	f, err := os.Create(taPath)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	exportErr := run([]string{"export", "-model", "strb"})
	os.Stdout = orig
	if cerr := f.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if exportErr != nil {
		t.Fatal(exportErr)
	}

	if err := os.WriteFile(specPath, []byte(
		"unforgeability: [](locV1 == 0) -> [](locAC == 0);\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() { os.Stdout = orig }()
	if err := run([]string{"verify", "-ta", taPath, "-spec", specPath}); err != nil {
		t.Errorf("file workflow: %v", err)
	}
	// -ta without -spec must be rejected.
	if err := run([]string{"verify", "-ta", taPath}); err == nil {
		t.Error("-ta without -spec should error")
	}
}
