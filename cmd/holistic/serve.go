package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/vcache"
)

// cmdServe runs the verification HTTP daemon: the batch checker behind
// POST /v1/verify, backed by the content-addressed result cache, with
// singleflight dedup, bounded admission, and a graceful SIGTERM drain that
// flushes the obs report exactly like the batch CLIs do. With -queue-dir it
// also runs the durable ingestion plane (POST /v1/enqueue): acks are
// fsync-backed, a killed daemon replays its unfinished backlog on restart,
// and poison jobs land in the dead-letter log instead of wedging consumers.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8123", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory (empty = no cache)")
	cacheEntries := fs.Int("cache-entries", 256, "in-memory LRU entries above the on-disk store")
	workers := fs.Int("j", runtime.NumCPU(), "schema-enumeration workers per engine run")
	queue := fs.Int("queue", 64, "admitted-request bound; beyond it requests shed with 429")
	maxConcurrent := fs.Int("max-concurrent", 2, "engine runs in flight; admitted requests queue on this")
	deadline := fs.Duration("deadline", 0, "per-request verification deadline (0 = none)")
	queueDir := fs.String("queue-dir", "", "durable WAL-backed job queue directory; enables POST /v1/enqueue (empty = queue off)")
	queueConsumers := fs.Int("queue-consumers", 2, "queue consumer goroutines draining the backlog")
	queueDepth := fs.Int("queue-depth", 0, "total backlog cap across tenants (0 = queue default)")
	queueTenantDepth := fs.Int("queue-tenant-depth", 0, "per-tenant backlog cap (0 = the total cap)")
	queueWeights := fs.String("queue-weights", "", "per-tenant dequeue weights, e.g. alpha=3,beta=1 (unlisted tenants weigh 1)")
	queueAttempts := fs.Int("queue-attempts", 0, "attempts before a failing job is dead-lettered (0 = queue default)")
	queueFailProp := fs.String("queue-fail-prop", "", "fault injection: queued jobs for this property fail (smoke tests drive dead-lettering with it)")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	weights, err := parseTenantWeights(*queueWeights)
	if err != nil {
		return err
	}

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	var cache *vcache.Cache
	if *cacheDir != "" {
		cache, err = vcache.Open(vcache.Options{Dir: *cacheDir, MemEntries: *cacheEntries, Logf: logf})
		if err != nil {
			return err
		}
	}
	sink, err := of.open("holistic serve")
	if err != nil {
		return err
	}
	defer sink.Close()

	var draining atomic.Bool
	srv := service.New(service.Config{
		Cache:              cache,
		Workers:            *workers,
		MaxQueue:           *queue,
		MaxConcurrent:      *maxConcurrent,
		RequestTimeout:     *deadline,
		Stop:               draining.Load,
		Logf:               logf,
		QueueDir:           *queueDir,
		QueueConsumers:     *queueConsumers,
		QueueMaxDepth:      *queueDepth,
		QueueTenantDepth:   *queueTenantDepth,
		QueueTenantWeights: weights,
		QueueMaxAttempts:   *queueAttempts,
		QueueFailProp:      *queueFailProp,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	hs := service.HardenServer(&http.Server{Handler: srv.Handler()})
	logf("holistic: serving on http://%s (engine %s, cache %s)",
		ln.Addr(), vcache.EngineVersion, cacheDesc(*cacheDir))

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		// Graceful drain: refuse new work (admission sees Stop), let
		// in-flight requests finish, then flush the report. A second signal
		// force-exits.
		draining.Store(true)
		logf("holistic: %v received; draining in-flight requests (signal again to force-exit)", s)
		go func() {
			<-sig
			os.Exit(130)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logf("holistic: drain timed out: %v", err)
		}
	}
	// Queue close after the HTTP drain: running jobs requeue via the Stop
	// hook, outcomes are journaled and the log compacts, so the next
	// incarnation replays exactly the unfinished set.
	if err := srv.Close(); err != nil {
		logf("holistic: queue close: %v", err)
	}
	rep := srv.Report("holistic serve", *workers, false)
	if len(rep.Deterministic.Queries) == 0 {
		// A daemon that served nothing has no deterministic payload to
		// report; flushing a skeleton would fail obs validation downstream.
		logf("holistic: served no verifications; skipping report flush")
		return nil
	}
	return sink.Flush(rep)
}

func cacheDesc(dir string) string {
	if dir == "" {
		return "off"
	}
	return dir
}

// parseTenantWeights parses the -queue-weights form "alpha=3,beta=1" into the
// fair-dequeue weight map. Empty input means every tenant weighs 1.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if !ok || strings.TrimSpace(name) == "" || err != nil || w < 1 {
			return nil, fmt.Errorf("bad -queue-weights element %q (want tenant=positive-integer)", part)
		}
		weights[strings.TrimSpace(name)] = w
	}
	return weights, nil
}
