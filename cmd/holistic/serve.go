package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/vcache"
)

// cmdServe runs the verification HTTP daemon: the batch checker behind
// POST /v1/verify, backed by the content-addressed result cache, with
// singleflight dedup, bounded admission, and a graceful SIGTERM drain that
// flushes the obs report exactly like the batch CLIs do.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8123", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	cacheDir := fs.String("cache-dir", "", "content-addressed result cache directory (empty = no cache)")
	cacheEntries := fs.Int("cache-entries", 256, "in-memory LRU entries above the on-disk store")
	workers := fs.Int("j", runtime.NumCPU(), "schema-enumeration workers per engine run")
	queue := fs.Int("queue", 64, "admitted-request bound; beyond it requests shed with 429")
	maxConcurrent := fs.Int("max-concurrent", 2, "engine runs in flight; admitted requests queue on this")
	deadline := fs.Duration("deadline", 0, "per-request verification deadline (0 = none)")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	var cache *vcache.Cache
	if *cacheDir != "" {
		var err error
		cache, err = vcache.Open(vcache.Options{Dir: *cacheDir, MemEntries: *cacheEntries, Logf: logf})
		if err != nil {
			return err
		}
	}
	sink, err := of.open("holistic serve")
	if err != nil {
		return err
	}
	defer sink.Close()

	var draining atomic.Bool
	srv := service.New(service.Config{
		Cache:          cache,
		Workers:        *workers,
		MaxQueue:       *queue,
		MaxConcurrent:  *maxConcurrent,
		RequestTimeout: *deadline,
		Stop:           draining.Load,
		Logf:           logf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	hs := service.HardenServer(&http.Server{Handler: srv.Handler()})
	logf("holistic: serving on http://%s (engine %s, cache %s)",
		ln.Addr(), vcache.EngineVersion, cacheDesc(*cacheDir))

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		// Graceful drain: refuse new work (admission sees Stop), let
		// in-flight requests finish, then flush the report. A second signal
		// force-exits.
		draining.Store(true)
		logf("holistic: %v received; draining in-flight requests (signal again to force-exit)", s)
		go func() {
			<-sig
			os.Exit(130)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logf("holistic: drain timed out: %v", err)
		}
	}
	rep := srv.Report("holistic serve", *workers, false)
	if len(rep.Deterministic.Queries) == 0 {
		// A daemon that served nothing has no deterministic payload to
		// report; flushing a skeleton would fail obs validation downstream.
		logf("holistic: served no verifications; skipping report flush")
		return nil
	}
	return sink.Flush(rep)
}

func cacheDesc(dir string) string {
	if dir == "" {
		return "off"
	}
	return dir
}
