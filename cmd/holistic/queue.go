package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/service"
)

// cmdQueue is the client side of the durable ingestion plane: it talks to a
// daemon started with `holistic serve -queue-dir`. The default action prints
// /v1/queue/status; -enqueue submits a job, -job polls one to a terminal
// state, -dead lists the quarantined jobs.
func cmdQueue(args []string) error {
	fs := flag.NewFlagSet("queue", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8123", "service base URL")
	enqueue := fs.Bool("enqueue", false, "enqueue one verification job (-model/-prop/-mode/-tenant/-tag/-force)")
	model := fs.String("model", "bv", "model for -enqueue: bv, naive or simplified")
	prop := fs.String("prop", "", "property for -enqueue (empty = all properties of the model)")
	mode := fs.String("mode", "", "schema mode for -enqueue: staged (default) or full")
	tenant := fs.String("tenant", "", "tenant the job is billed to (default: \"default\")")
	tag := fs.String("tag", "", "distinguishing tag: identical requests with different tags are distinct jobs")
	force := fs.Bool("force", false, "skip the pre-enqueue cache short-circuit; always mint a real job")
	jobID := fs.String("job", "", "poll this job ID to a terminal state and print its verdicts")
	dead := fs.Bool("dead", false, "list the dead-letter log")
	waitIdle := fs.Bool("wait-idle", false, "with -status: poll until the backlog is fully drained")
	poll := fs.Duration("poll", 250*time.Millisecond, "poll interval for -job and -wait-idle")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall budget for -job and -wait-idle polling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimRight(*url, "/")
	client := &service.HTTPClient{RetryTransport: false}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch {
	case *enqueue:
		return queueEnqueue(ctx, client, base, service.EnqueueRequest{
			VerifyRequest: service.VerifyRequest{Model: *model, Prop: *prop, Mode: *mode},
			Tenant:        *tenant, Tag: *tag, Force: *force,
		}, *poll)
	case *jobID != "":
		out, err := queuePollJob(ctx, client, base, *jobID, *poll)
		if err != nil {
			return err
		}
		printQueueJob(out)
		if out.State == "dead" {
			return fmt.Errorf("job %s was dead-lettered: %s", out.ID, out.Reason)
		}
		return nil
	case *dead:
		var out struct {
			Dead []json.RawMessage `json:"dead"`
		}
		if _, err := client.GetJSON(ctx, base+"/v1/queue/dead", &out); err != nil {
			return err
		}
		for _, dl := range out.Dead {
			fmt.Println(string(dl))
		}
		fmt.Fprintf(os.Stderr, "holistic: %d dead-lettered job(s)\n", len(out.Dead))
		return nil
	default:
		return queueStatus(ctx, client, base, *waitIdle, *poll)
	}
}

// queueEnqueue submits one job and reports how it was accepted: short-
// circuited from the cache, served through the degraded synchronous path, or
// durably acked with a job ID.
func queueEnqueue(ctx context.Context, client *service.HTTPClient, base string, req service.EnqueueRequest, poll time.Duration) error {
	var out service.EnqueueResponse
	status, err := client.PostJSON(ctx, base+"/v1/enqueue", &req, &out)
	if err != nil {
		return err
	}
	switch {
	case out.Degraded != "":
		fmt.Fprintf(os.Stderr, "holistic: served synchronously, queue degraded: %s\n", out.Degraded)
		printQueueJob(out)
	case status == http.StatusOK && out.ID == "":
		fmt.Fprintln(os.Stderr, "holistic: every verdict was already cached; no job spent")
		printQueueJob(out)
	default:
		dup := ""
		if out.Duplicate {
			dup = " (duplicate of an existing job)"
		}
		fmt.Printf("enqueued %s state=%s%s\n", out.ID, out.State, dup)
	}
	return nil
}

// queuePollJob polls one job until done or dead.
func queuePollJob(ctx context.Context, client *service.HTTPClient, base, id string, poll time.Duration) (service.EnqueueResponse, error) {
	for {
		var out service.EnqueueResponse
		if _, err := client.GetJSON(ctx, base+"/v1/queue/jobs/"+id, &out); err != nil {
			return out, err
		}
		if out.State == "done" || out.State == "dead" {
			return out, nil
		}
		select {
		case <-ctx.Done():
			return out, fmt.Errorf("job %s still %s: %w", id, out.State, ctx.Err())
		case <-time.After(poll):
		}
	}
}

// printQueueJob renders a terminal job the way `holistic verify` prints rows.
func printQueueJob(out service.EnqueueResponse) {
	if out.Results == nil {
		return
	}
	for _, r := range out.Results.Results {
		marker := ""
		if r.Cached {
			marker = " [cached]"
		}
		fmt.Printf("%-16s %-16s %8d schemas  avg len %6.1f%s\n",
			r.Query, r.Outcome, r.Schemas, r.AvgLen, marker)
		if r.CEText != "" {
			fmt.Print(r.CEText)
		}
	}
}

// queueStatus prints /v1/queue/status once, or keeps polling until the
// backlog drains when waitIdle is set.
func queueStatus(ctx context.Context, client *service.HTTPClient, base string, waitIdle bool, poll time.Duration) error {
	for {
		var st struct {
			Enabled   bool   `json:"enabled"`
			Degraded  string `json:"degraded"`
			Consumers int    `json:"consumers"`
			Queue     struct {
				Depth     int            `json:"depth"`
				Inflight  int            `json:"inflight"`
				Waiting   int            `json:"retry_waiting"`
				Enqueued  int64          `json:"enqueued"`
				Done      int64          `json:"done"`
				Dead      int64          `json:"dead"`
				Retries   int64          `json:"retries"`
				PerTenant map[string]int `json:"per_tenant"`
			} `json:"queue"`
		}
		if _, err := client.GetJSON(ctx, base+"/v1/queue/status", &st); err != nil {
			return err
		}
		if !st.Enabled {
			fmt.Printf("queue disabled (%s)\n", st.Degraded)
			return nil
		}
		fmt.Printf("queue: depth=%d inflight=%d waiting=%d consumers=%d enqueued=%d done=%d dead=%d retries=%d",
			st.Queue.Depth, st.Queue.Inflight, st.Queue.Waiting, st.Consumers,
			st.Queue.Enqueued, st.Queue.Done, st.Queue.Dead, st.Queue.Retries)
		if st.Degraded != "" {
			fmt.Printf(" degraded=%q", st.Degraded)
		}
		fmt.Println()
		for tn, n := range st.Queue.PerTenant {
			fmt.Printf("  tenant %-16s %d unfinished\n", tn, n)
		}
		if !waitIdle || (st.Queue.Depth == 0 && st.Queue.Inflight == 0 && st.Queue.Waiting == 0) {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("backlog never drained: %w", ctx.Err())
		case <-time.After(poll):
		}
	}
}
