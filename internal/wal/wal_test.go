package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func openMem(t *testing.T, fs *MemFS, o Options) (*Log, *Recovery) {
	t.Helper()
	o.FS = fs
	if o.Dir == "" {
		o.Dir = "p0"
	}
	l, rec, err := Open(o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func appendAll(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatalf("Append(%q): %v", r, err)
		}
	}
}

func payloads(recs [][]byte) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r)
	}
	return out
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, rec := openMem(t, fs, Options{})
	if rec.NextIndex != 1 || rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh log recovery = %+v", rec)
	}
	appendAll(t, l, "a", "b", "c")
	l.Close()

	_, rec2 := openMem(t, fs, Options{})
	if got := payloads(rec2.Records); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("recovered %v", got)
	}
	if rec2.NextIndex != 4 || rec2.TornBytes != 0 {
		t.Fatalf("recovery = %+v", rec2)
	}
}

func TestSegmentRotationAndContinuity(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{SegmentBytes: 32})
	var want []string
	for i := 0; i < 20; i++ {
		r := fmt.Sprintf("record-%02d", i)
		want = append(want, r)
		appendAll(t, l, r)
	}
	if n := len(fs.Names()); n < 3 {
		t.Fatalf("expected multiple segments, got files %v", fs.Names())
	}
	_, rec := openMem(t, fs, Options{SegmentBytes: 32})
	got := payloads(rec.Records)
	if len(got) != len(want) {
		t.Fatalf("recovered %d of %d records", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSnapshotCompaction(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{SegmentBytes: 32})
	appendAll(t, l, "a", "b", "c", "d")
	if err := l.SaveSnapshot([]byte("state@4")); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	appendAll(t, l, "e", "f")

	_, rec := openMem(t, fs, Options{SegmentBytes: 32})
	if string(rec.Snapshot) != "state@4" || rec.SnapshotIndex != 4 {
		t.Fatalf("snapshot = %q @%d", rec.Snapshot, rec.SnapshotIndex)
	}
	if got := payloads(rec.Records); len(got) != 2 || got[0] != "e" || got[1] != "f" {
		t.Fatalf("post-snapshot records %v", got)
	}
	if rec.NextIndex != 7 {
		t.Fatalf("NextIndex = %d, want 7", rec.NextIndex)
	}
	// Compaction actually removed the pre-snapshot segments.
	for _, name := range fs.Names() {
		if kind, idx, ok := parseName(name[len("p0/"):]); ok && kind == "seg" && idx < 5 {
			t.Fatalf("segment %s survived compaction", name)
		}
	}
}

func TestSecondSnapshotReplacesFirst(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	appendAll(t, l, "a", "b")
	if err := l.SaveSnapshot([]byte("s1")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "c")
	if err := l.SaveSnapshot([]byte("s2")); err != nil {
		t.Fatal(err)
	}
	_, rec := openMem(t, fs, Options{})
	if string(rec.Snapshot) != "s2" || rec.SnapshotIndex != 3 || len(rec.Records) != 0 {
		t.Fatalf("recovery = snapshot %q @%d + %d records", rec.Snapshot, rec.SnapshotIndex, len(rec.Records))
	}
	if n := len(fs.Names()); n != 1 {
		t.Fatalf("expected only the newest snapshot on disk, got %v", fs.Names())
	}
}

// TestTornTailTruncated: a crash mid-append leaves a partial frame at the
// durable tail; recovery truncates exactly that record and keeps the rest.
func TestTornTailTruncated(t *testing.T) {
	full := frame([]byte("cccc"))
	for cut := 1; cut < len(full); cut++ {
		fs := NewMemFS()
		l, _ := openMem(t, fs, Options{})
		appendAll(t, l, "aaaa", "bbbb")
		l.Close()
		// A crash mid-append left `cut` bytes of record 3 on disk.
		f := fs.file("p0/" + fs.namesIn(t, "p0")[0])
		f.data = append(f.data, full[:cut]...)
		f.synced = len(f.data)

		_, rec, err := Open(Options{FS: fs, Dir: "p0"})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if got := payloads(rec.Records); len(got) != 2 || got[0] != "aaaa" || got[1] != "bbbb" {
			t.Fatalf("cut=%d: recovered %v", cut, got)
		}
		if rec.TornBytes != cut {
			t.Fatalf("cut=%d: TornBytes = %d", cut, rec.TornBytes)
		}
		if rec.NextIndex != 3 {
			t.Fatalf("cut=%d: NextIndex = %d", cut, rec.NextIndex)
		}
	}
}

// namesIn lists the file names under dir (test helper on MemFS).
func (m *MemFS) namesIn(t *testing.T, dir string) []string {
	t.Helper()
	names, err := m.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestAppendAfterTornTailStaysRecoverable: recovery after a torn tail starts
// a fresh segment; a later recovery must accept the torn old segment plus
// the continuation by index continuity.
func TestAppendAfterTornTailStaysRecoverable(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	appendAll(t, l, "aaaa", "bbbb")
	seg := "p0/" + fs.namesIn(t, "p0")[0]
	f := fs.file(seg)
	f.data = append(f.data, frame([]byte("cccc"))[:5]...) // torn record 3
	f.synced = len(f.data)

	l2, rec, err := Open(Options{FS: fs, Dir: "p0"})
	if err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	if rec.NextIndex != 3 {
		t.Fatalf("NextIndex = %d", rec.NextIndex)
	}
	if err := l2.Append([]byte("c2")); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	_, rec2, err := Open(Options{FS: fs, Dir: "p0"})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if got := payloads(rec2.Records); len(got) != 3 || got[2] != "c2" {
		t.Fatalf("recovered %v", got)
	}
}

// TestTornFirstFrameSegmentIsReplaced: when the tear eats the very first
// frame of a segment, recovery accepts zero records from it and the next
// append reuses the same segment index. The rotate path must replace the
// torn file rather than append after the garbage.
func TestTornFirstFrameSegmentIsReplaced(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	appendAll(t, l, "aaaa", "bbbb")
	// Simulate a crash that tore record 3 at the start of a fresh segment:
	// an artifact file at seg index 3 holding half a frame.
	torn := "p0/" + segBase(3)
	f := fs.file(torn)
	f.data = frame([]byte("cccc"))[:5]
	f.synced = len(f.data)

	l2, rec, err := Open(Options{FS: fs, Dir: "p0", SegmentBytes: 16})
	if err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	if rec.NextIndex != 3 {
		t.Fatalf("NextIndex = %d", rec.NextIndex)
	}
	// SegmentBytes 16 forces rotation onto the torn file's index.
	appendAll(t, l2, "c2", "d2")
	// Compaction after the replacement: the replaced segment must be tracked
	// exactly once, or the second Remove of its name breaks the log.
	if err := l2.SaveSnapshot([]byte("snap")); err != nil {
		t.Fatalf("SaveSnapshot after torn-segment replacement: %v", err)
	}
	appendAll(t, l2, "e2")
	l2.Close()

	_, rec2, err := Open(Options{FS: fs, Dir: "p0", SegmentBytes: 16})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if string(rec2.Snapshot) != "snap" || rec2.SnapshotIndex != 4 {
		t.Fatalf("snapshot = %q at %d", rec2.Snapshot, rec2.SnapshotIndex)
	}
	if got := payloads(rec2.Records); len(got) != 1 || got[0] != "e2" {
		t.Fatalf("recovered %v", got)
	}
}

// segBase mirrors segName's base for test fixtures.
func segBase(first int) string {
	return fmt.Sprintf("seg-%016d.wseg", first)
}

// TestFlippedByteDetected: every single-byte flip in the durable image must
// be detected — recovery either reports corruption or truncates the tail; it
// never accepts a frame containing the flipped byte.
func TestFlippedByteDetected(t *testing.T) {
	base := NewMemFS()
	l, _ := openMem(t, base, Options{})
	appendAll(t, l, "aaaa", "bbbb", "cccc")
	seg := "p0/" + base.namesIn(t, "p0")[0]
	size := len(base.file(seg).data)

	for off := 0; off < size; off++ {
		fs := NewMemFS()
		src := base.file(seg)
		dst := fs.file(seg)
		dst.data = append([]byte(nil), src.data...)
		dst.synced = len(dst.data)
		if !fs.CorruptByte(seg, off, 0x40) {
			t.Fatalf("offset %d missing", off)
		}
		_, rec, err := Open(Options{FS: fs, Dir: "p0"})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("off=%d: unexpected error class: %v", off, err)
			}
			continue // detected as corruption: quarantine
		}
		// Recovery succeeded: the flip must be outside every accepted range.
		for _, r := range rec.Accepted[seg] {
			if off >= r[0] && off < r[1] {
				t.Fatalf("off=%d: flip inside accepted range %v — silent acceptance", off, r)
			}
		}
	}
}

// TestMissingMiddleSegmentIsCorrupt: losing a whole middle segment is a gap,
// never a torn tail.
func TestMissingMiddleSegmentIsCorrupt(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{SegmentBytes: 24})
	for i := 0; i < 12; i++ {
		appendAll(t, l, fmt.Sprintf("record-%02d", i))
	}
	names := fs.namesIn(t, "p0")
	if len(names) < 3 {
		t.Fatalf("want ≥3 segments, got %v", names)
	}
	if err := fs.Remove("p0/" + names[1]); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(Options{FS: fs, Dir: "p0"})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing middle segment: err = %v, want ErrCorrupt", err)
	}
}

// TestUnsyncedTailLostOnCrash: with SyncNever the whole unsynced suffix
// vanishes at a crash — the amnesia regime — but the log stays structurally
// recoverable (shorter, not corrupt).
func TestUnsyncedTailLostOnCrash(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{Sync: SyncNever})
	appendAll(t, l, "a", "b")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "c", "d")
	fs.Crash(nil)

	_, rec, err := Open(Options{FS: fs, Dir: "p0"})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	if got := payloads(rec.Records); len(got) != 2 || got[1] != "b" {
		t.Fatalf("recovered %v, want the synced prefix only", got)
	}
}

// TestCrashDuringCompactionRecovers: SaveSnapshot syncs the snapshot before
// removing segments, so a crash at any intermediate point leaves a
// recoverable log.
func TestCrashDuringCompactionRecovers(t *testing.T) {
	// Crash after the snapshot is durable but before segments are removed:
	// both exist; recovery prefers the snapshot and skips covered segments.
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	appendAll(t, l, "a", "b")
	if err := l.SaveSnapshot([]byte("s1")); err != nil {
		t.Fatal(err)
	}
	// Resurrect a stale covered segment alongside the snapshot.
	stale := fs.file(segName("p0", 1))
	stale.data = append(stale.data, frame([]byte("a"))...)
	stale.data = append(stale.data, frame([]byte("b"))...)
	stale.synced = len(stale.data)

	_, rec, err := Open(Options{FS: fs, Dir: "p0"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if string(rec.Snapshot) != "s1" || len(rec.Records) != 0 || rec.NextIndex != 3 {
		t.Fatalf("recovery = %+v", rec)
	}

	// Crash mid-snapshot-write (torn snapshot): fall back to the records.
	fs2 := NewMemFS()
	l2, _ := openMem(t, fs2, Options{})
	appendAll(t, l2, "a", "b")
	snap := fs2.file(snapName("p0", 2))
	snap.data = frame([]byte("s1"))[:5]
	snap.synced = len(snap.data)
	_, rec2, err := Open(Options{FS: fs2, Dir: "p0"})
	if err != nil {
		t.Fatalf("Open with torn snapshot: %v", err)
	}
	if rec2.Snapshot != nil || len(rec2.Records) != 2 {
		t.Fatalf("torn snapshot recovery = %+v", rec2)
	}
}

// TestCorruptSnapshotQuarantines: a complete snapshot frame with a bad
// checksum is rot, not a crash artifact.
func TestCorruptSnapshotQuarantines(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	appendAll(t, l, "a", "b")
	if err := l.SaveSnapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	name := snapName("p0", 2)
	if !fs.CorruptByte(name, frameHeader+1, 0x01) {
		t.Fatal("corrupt failed")
	}
	_, _, err := Open(Options{FS: fs, Dir: "p0"})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: err = %v, want ErrCorrupt", err)
	}
}

// TestRandomizedCrashRecoveryNeverCorrupts: a seeded generative torture of
// the log alone — random appends, snapshots, reopens and clean crashes (all
// synced appends) must always recover exactly the acked record suffix.
func TestRandomizedCrashRecoveryNeverCorrupts(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fs := NewMemFS()
		var acked []string // all records ever acked, 1-based
		snapAt := 0        // records covered by the durable snapshot

		l, _ := openMem(t, fs, Options{SegmentBytes: 64})
		for op := 0; op < 60; op++ {
			switch rng.Intn(5) {
			case 0, 1, 2:
				recd := fmt.Sprintf("s%d-r%d-%d", seed, op, rng.Intn(1000))
				if err := l.Append([]byte(recd)); err != nil {
					t.Fatalf("seed %d: append: %v", seed, err)
				}
				acked = append(acked, recd)
			case 3:
				if err := l.SaveSnapshot([]byte(fmt.Sprintf("snap@%d", len(acked)))); err != nil {
					t.Fatalf("seed %d: snapshot: %v", seed, err)
				}
				snapAt = len(acked)
			case 4:
				fs.Crash(nil) // clean crash: synced appends survive
				var rec *Recovery
				l, rec = openMem(t, fs, Options{SegmentBytes: 64})
				if rec.SnapshotIndex != snapAt {
					t.Fatalf("seed %d: snapshot index %d, want %d", seed, rec.SnapshotIndex, snapAt)
				}
				got := payloads(rec.Records)
				want := acked[snapAt:]
				if len(got) != len(want) {
					t.Fatalf("seed %d: recovered %d records, want %d", seed, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d: record %d = %q, want %q", seed, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestBrokenLogRefusesFurtherWrites(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	appendAll(t, l, "a")
	l.broken = errors.New("simulated device failure")
	if err := l.Append([]byte("b")); err == nil {
		t.Fatal("append after failure succeeded")
	}
	if err := l.SaveSnapshot([]byte("s")); err == nil {
		t.Fatal("snapshot after failure succeeded")
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "x", "y")
	if err := l.SaveSnapshot([]byte("s")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "z")
	l.Close()
	_, rec, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != "s" || len(rec.Records) != 1 || string(rec.Records[0]) != "z" {
		t.Fatalf("osfs recovery = %+v", rec)
	}
}

// BenchmarkWALAppend tracks the fsync-path cost per record (MemFS isolates
// the log's own overhead; see BenchmarkWALAppendDisk for the real-disk
// number).
func BenchmarkWALAppend(b *testing.B) {
	l, _, err := Open(Options{FS: NewMemFS(), Dir: "p0", SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	rec := bytes.Repeat([]byte("x"), 128)
	b.SetBytes(int64(len(rec) + frameHeader))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendDisk measures the true fsync-per-append discipline on
// the real filesystem.
func BenchmarkWALAppendDisk(b *testing.B) {
	l, _, err := Open(Options{Dir: b.TempDir(), SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	rec := bytes.Repeat([]byte("x"), 128)
	b.SetBytes(int64(len(rec) + frameHeader))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	l.Close()
}

// TestRotationSyncsOutgoingSegment: a group-commit user (SyncNever + explicit
// Sync) must not lose records that were appended before a rotation. Sync()
// only reaches the active file, so rotate() has to flush the outgoing
// segment — otherwise a crash tears the *middle* of the log, which the
// torn-tail rule rightly refuses to repair.
func TestRotationSyncsOutgoingSegment(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{Sync: SyncNever, SegmentBytes: 32})
	// Each framed record is 8+10 bytes, so every other append rotates.
	var want []string
	for i := 0; i < 9; i++ {
		r := fmt.Sprintf("record-%03d", i)
		want = append(want, r)
		appendAll(t, l, r)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	fs.Crash(nil)

	_, rec := openMem(t, fs, Options{Sync: SyncNever, SegmentBytes: 32})
	got := payloads(rec.Records)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFrameRecordRoundTrip(t *testing.T) {
	payload := []byte("shard-result")
	data := FrameRecord(payload)
	back, err := ParseRecord(data)
	if err != nil || !bytes.Equal(back, payload) {
		t.Fatalf("round trip: %q err=%v", back, err)
	}
	if _, err := ParseRecord(data[:len(data)-1]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: err=%v, want ErrCorrupt", err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0x40
	if _, err := ParseRecord(flipped); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip: err=%v, want ErrCorrupt", err)
	}
	if _, err := ParseRecord(append(append([]byte(nil), data...), data...)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("two records: err=%v, want ErrCorrupt", err)
	}
	if _, err := ParseRecord(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty: err=%v, want ErrCorrupt", err)
	}
}
