package wal

import "repro/internal/obs"

// Observational-only counters (see internal/obs). An atomic add is orders
// of magnitude below the cost of the write/fsync it sits next to, so these
// stay on even in benchmarks.
var (
	obsAppends   = obs.Default.Counter("wal", "appends")
	obsFsyncs    = obs.Default.Counter("wal", "fsyncs")
	obsRotations = obs.Default.Counter("wal", "rotations")
)
