// Package wal provides the durability layer of the replicated ledger: an
// append-only, length-prefixed, CRC32C-checksummed write-ahead log with
// configurable fsync discipline, segment rotation and snapshot+truncate
// compaction. It is the piece PR 1's crash-recovery argument assumed but
// never exercised: dbft.Snapshot documents that synchronous persistence is a
// *safety* requirement (a replica recovering stale state can equivocate
// against its own pre-crash messages), and this package is where that
// persistence actually happens — on a filesystem, behind an FS interface, so
// that storage faults (kill-at-write-point, torn tails, flipped bytes,
// missing fsync) can be injected deterministically by internal/faults and
// recovery can be tortured rather than asserted.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the append handle the log writes through. Sync is the fsync
// boundary: bytes written but not yet synced may be lost — wholly or
// partially (a torn tail) — by a crash.
type File interface {
	io.Writer
	// Sync flushes written bytes to stable storage.
	Sync() error
	io.Closer
}

// FS abstracts the filesystem the log lives on. The production
// implementation is OSFS; tests and the fault plane use MemFS (optionally
// wrapped by a fault injector) so that every crash, tear and bit flip is
// seeded and replayable.
type FS interface {
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// ReadFile returns the full durable content of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names (not paths) in dir, sorted. A missing
	// directory is an empty listing, not an error.
	ReadDir(dir string) ([]string, error)
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// MemFS is a deterministic in-memory filesystem with explicit durability
// semantics: each file tracks a synced prefix (on "disk") and an unsynced
// tail (in the "page cache"). Crash discards the unsynced tails — the model
// under which fsync discipline is testable at all. MemFS is not
// concurrency-safe; the simulator is single-threaded by design.
type MemFS struct {
	files map[string]*memFile
}

type memFile struct {
	data   []byte
	synced int
}

// NewMemFS builds an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: map[string]*memFile{}} }

func (m *MemFS) file(name string) *memFile {
	f, ok := m.files[name]
	if !ok {
		f = &memFile{}
		m.files[name] = f
	}
	return f
}

type memHandle struct {
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	if h.closed {
		return 0, fmt.Errorf("wal: write to closed file")
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	if h.closed {
		return fmt.Errorf("wal: sync of closed file")
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error { h.closed = true; return nil }

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	return &memHandle{f: m.file(name)}, nil
}

// ReadFile implements FS. It returns everything written, synced or not: an
// un-crashed machine serves reads from the page cache.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	f, ok := m.files[name]
	if !ok {
		return nil, os.ErrNotExist
	}
	return append([]byte(nil), f.data...), nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	var names []string
	prefix := dir + string(filepath.Separator)
	for name := range m.files {
		if filepath.Dir(name) == dir {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	if _, ok := m.files[name]; !ok {
		return os.ErrNotExist
	}
	delete(m.files, name)
	return nil
}

// MkdirAll implements FS (directories are implicit).
func (m *MemFS) MkdirAll(string) error { return nil }

// Crash models a machine crash: every file's unsynced tail is discarded.
// keep, when non-nil, may preserve a prefix of a file's unsynced tail
// (partially flushed page cache — the torn-write knob the fault injector
// turns); it returns how many unsynced bytes survive, clamped to [0, tail].
func (m *MemFS) Crash(keep func(name string, unsyncedTail int) int) {
	for name, f := range m.files {
		tail := len(f.data) - f.synced
		if tail <= 0 {
			continue
		}
		extra := 0
		if keep != nil {
			extra = keep(name, tail)
			if extra < 0 {
				extra = 0
			}
			if extra > tail {
				extra = tail
			}
		}
		f.data = f.data[:f.synced+extra]
		f.synced = len(f.data)
	}
}

// ForceSync marks a file's full content durable (the fault injector uses it
// to commit a torn prefix to "disk").
func (m *MemFS) ForceSync(name string) {
	if f, ok := m.files[name]; ok {
		f.synced = len(f.data)
	}
}

// CorruptByte XORs the byte at off in name with mask (mask 0 is promoted to
// 0xFF so the byte always changes) and reports whether the offset existed —
// the bit-rot primitive of the storage fault plane.
func (m *MemFS) CorruptByte(name string, off int, mask byte) bool {
	f, ok := m.files[name]
	if !ok || off < 0 || off >= len(f.data) {
		return false
	}
	if mask == 0 {
		mask = 0xFF
	}
	f.data[off] ^= mask
	return true
}

// Size returns the durable (synced) size of name, or -1 if absent.
func (m *MemFS) Size(name string) int {
	f, ok := m.files[name]
	if !ok {
		return -1
	}
	return f.synced
}

// Names lists every file, sorted.
func (m *MemFS) Names() []string {
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
