package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Record frame: a 4-byte little-endian payload length, a 4-byte CRC32C
// (Castagnoli) of the payload, then the payload. The frame is what makes
// every storage fault *detectable*: a torn tail fails to parse, a flipped
// byte fails the checksum, and recovery never silently accepts either.
const frameHeader = 8

// MaxRecord bounds one record's payload. A parsed length beyond it cannot
// come from a legitimate append, so it is classified as corruption rather
// than a torn tail.
const MaxRecord = 1 << 24

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a log that cannot be recovered by the torn-tail rule:
// a checksum mismatch or structural damage *before* the durable tail. A
// replica holding such a log must be quarantined — its persisted state can
// no longer be trusted — and re-seeded by state transfer.
var ErrCorrupt = errors.New("wal: corrupt log")

// SyncMode is the fsync discipline.
type SyncMode int

const (
	// SyncEachAppend fsyncs after every record — the synchronous-persistence
	// regime dbft.Snapshot requires for crash-recovery safety (default).
	SyncEachAppend SyncMode = iota
	// SyncNever leaves syncing to the caller (or to nobody: the unsafe
	// regime the torture harness budgets as Byzantine).
	SyncNever
)

// Options configures a Log.
type Options struct {
	// FS is the filesystem (default OSFS).
	FS FS
	// Dir holds the log's segment and snapshot files.
	Dir string
	// SegmentBytes rotates the active segment once it reaches this size
	// (default 64 KiB).
	SegmentBytes int
	// Sync selects the fsync discipline (default SyncEachAppend).
	Sync SyncMode
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 10
	}
	return o
}

// Recovery reports what Open reconstructed from disk.
type Recovery struct {
	// SnapshotIndex is the record index the snapshot covers (0 = none).
	SnapshotIndex int
	// Snapshot is the snapshot payload, when present.
	Snapshot []byte
	// Records are the payloads with indices SnapshotIndex+1 .. NextIndex-1.
	Records [][]byte
	// NextIndex is the index the next Append receives (records are 1-based).
	NextIndex int
	// TornBytes counts bytes discarded by the torn-tail truncation rule
	// (crash artifacts at the durable tail, including a torn trailing
	// snapshot file).
	TornBytes int
	// Accepted maps each file read during recovery to the [start,end) byte
	// ranges of the frames recovery actually trusted. The torture oracle
	// checks injected bit flips against these ranges: a flip inside an
	// accepted range would mean a checksum was silently bypassed.
	Accepted map[string][][2]int
}

// Log is an append-only segmented record log.
type Log struct {
	opts Options

	nextIndex int
	segments  []segMeta
	snapIndex int // highest durable snapshot index

	cur      File
	curCount int
	curSize  int
	hasSnap  bool
	broken   error
}

type segMeta struct {
	name  string
	first int
	count int
}

func segName(dir string, first int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016d.wseg", first))
}

func snapName(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.wsnap", index))
}

func parseName(name string) (kind string, index int, ok bool) {
	var n int
	if c, err := fmt.Sscanf(name, "seg-%d.wseg", &n); err == nil && c == 1 {
		return "seg", n, true
	}
	if c, err := fmt.Sscanf(name, "snap-%d.wsnap", &n); err == nil && c == 1 {
		return "snap", n, true
	}
	return "", 0, false
}

// frame renders one record.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeader:], payload)
	return buf
}

// FrameRecord renders payload as one standalone CRC-framed record — the
// WAL's on-disk framing (length prefix + Castagnoli checksum) for callers
// that want torn/corrupt detection on single-record side files without a
// full Log.
func FrameRecord(payload []byte) []byte { return frame(payload) }

// ParseRecord decodes a file produced by FrameRecord. Anything other than
// exactly one intact record — truncation, checksum mismatch, trailing bytes
// — reports an error wrapping ErrCorrupt.
func ParseRecord(data []byte) ([]byte, error) {
	payloads, _, _, torn, err := parseFrames(data)
	if err != nil {
		return nil, err
	}
	if torn || len(payloads) != 1 {
		return nil, fmt.Errorf("%w: expected exactly 1 intact record, got %d (torn=%v)", ErrCorrupt, len(payloads), torn)
	}
	return payloads[0], nil
}

// parseFrames walks data record by record. It returns the payloads, their
// frame byte ranges, and how the walk ended: clean EOF, a torn tail
// (truncated header or payload at EOF — the discardable crash artifact), or
// corruption (impossible length or checksum mismatch with the full frame
// present).
func parseFrames(data []byte) (payloads [][]byte, ranges [][2]int, consumed int, torn bool, err error) {
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < frameHeader {
			return payloads, ranges, off, true, nil
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if length > MaxRecord {
			return payloads, ranges, off, false, fmt.Errorf("%w: impossible record length %d at offset %d", ErrCorrupt, length, off)
		}
		if off+frameHeader+length > len(data) {
			return payloads, ranges, off, true, nil
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+frameHeader : off+frameHeader+length]
		if crc32.Checksum(payload, castagnoli) != want {
			return payloads, ranges, off, false, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		ranges = append(ranges, [2]int{off, off + frameHeader + length})
		off += frameHeader + length
	}
	return payloads, ranges, off, false, nil
}

// Open recovers the log in dir and returns a Log positioned to append after
// the last durable record. Unrecoverable damage yields an error wrapping
// ErrCorrupt; the torn-tail rule (truncate the unparseable durable tail of
// the *last* segment) is applied silently and reported in the Recovery.
func Open(opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: no directory")
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, nil, err
	}
	names, err := opts.FS.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	var segFirsts, snapIndices []int
	for _, name := range names {
		kind, idx, ok := parseName(name)
		if !ok {
			continue
		}
		switch kind {
		case "seg":
			segFirsts = append(segFirsts, idx)
		case "snap":
			snapIndices = append(snapIndices, idx)
		}
	}
	sort.Ints(segFirsts)
	sort.Ints(snapIndices)

	rec := &Recovery{Accepted: map[string][][2]int{}}

	// Newest intact snapshot wins. A torn trailing snapshot is a crash
	// artifact of SaveSnapshot (which syncs the snapshot before removing
	// anything) and is discarded; a checksum mismatch is rot.
	for i := len(snapIndices) - 1; i >= 0; i-- {
		name := snapName(opts.Dir, snapIndices[i])
		data, err := opts.FS.ReadFile(name)
		if err != nil {
			return nil, nil, err
		}
		payloads, ranges, consumed, torn, perr := parseFrames(data)
		if perr != nil {
			return nil, nil, fmt.Errorf("snapshot %s: %w", name, perr)
		}
		if torn && len(payloads) == 0 {
			rec.TornBytes += len(data) - consumed
			continue
		}
		if len(payloads) != 1 || torn {
			return nil, nil, fmt.Errorf("%w: snapshot %s has %d records (torn=%v)", ErrCorrupt, name, len(payloads), torn)
		}
		rec.SnapshotIndex = snapIndices[i]
		rec.Snapshot = payloads[0]
		rec.Accepted[name] = ranges
		break
	}

	l := &Log{opts: opts, snapIndex: rec.SnapshotIndex, hasSnap: rec.Snapshot != nil}
	next := rec.SnapshotIndex + 1
	for _, first := range segFirsts {
		name := segName(opts.Dir, first)
		data, err := opts.FS.ReadFile(name)
		if err != nil {
			return nil, nil, err
		}
		payloads, ranges, consumed, torn, perr := parseFrames(data)
		if perr != nil {
			return nil, nil, fmt.Errorf("segment %s: %w", name, perr)
		}
		if torn {
			rec.TornBytes += len(data) - consumed
		}
		l.segments = append(l.segments, segMeta{name: name, first: first, count: len(payloads)})
		if first+len(payloads)-1 < next-1 {
			// Entirely covered by the snapshot: compaction leftovers, kept
			// only so the next SaveSnapshot removes the file.
			continue
		}
		if first > next {
			// A gap: records next..first-1 were durable once (a newer
			// segment exists) but are gone now. A torn tail is only ever the
			// single in-flight record, so this is damage, not a crash.
			return nil, nil, fmt.Errorf("%w: missing records %d..%d before %s", ErrCorrupt, next, first-1, name)
		}
		for k, p := range payloads {
			idx := first + k
			if idx < next {
				continue // covered by the snapshot
			}
			rec.Records = append(rec.Records, p)
			rec.Accepted[name] = append(rec.Accepted[name], ranges[k])
			next++
		}
	}
	rec.NextIndex = next
	l.nextIndex = next
	return l, rec, nil
}

// rotate closes the active segment and starts a new one at nextIndex.
func (l *Log) rotate() error {
	if l.cur != nil {
		// Unsynced appends may only ever live in the active segment's tail:
		// Sync() reaches just the current file, so anything left unsynced in
		// a rotated-away segment could never be made durable again — and a
		// crash would tear the *middle* of the log (unrecoverable damage
		// under the torn-tail rule), not its end. Sync before letting go.
		if err := l.cur.Sync(); err != nil {
			return err
		}
		obsFsyncs.Inc()
		if err := l.cur.Close(); err != nil {
			return err
		}
	}
	name := segName(l.opts.Dir, l.nextIndex)
	// Anything already at that name is a torn artifact: a crash tore the
	// segment's very first frame, so recovery accepted zero records from it
	// and nextIndex still points here. Appending after the torn bytes would
	// corrupt the log; replace the file instead.
	if err := l.opts.FS.Remove(name); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	// Recovery tracks the torn artifact in l.segments (so compaction would
	// delete the file); now that this rotation owns the name, drop the stale
	// entry or SaveSnapshot would remove it twice. It can only be last:
	// segments are index-ordered and the artifact sits at nextIndex.
	if n := len(l.segments); n > 0 && l.segments[n-1].name == name {
		l.segments = l.segments[:n-1]
	}
	f, err := l.opts.FS.OpenAppend(name)
	if err != nil {
		return err
	}
	l.cur, l.curCount, l.curSize = f, 0, 0
	l.segments = append(l.segments, segMeta{name: name, first: l.nextIndex})
	obsRotations.Inc()
	return nil
}

// Append writes one record, honoring the fsync discipline and rotating
// segments. After any write error the log refuses further appends: a replica
// whose persistence failed mid-record must crash, not continue on top of an
// indeterminate tail.
func (l *Log) Append(payload []byte) error {
	if l.broken != nil {
		return l.broken
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	if l.cur == nil || l.curSize >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			l.broken = err
			return err
		}
	}
	buf := frame(payload)
	if _, err := l.cur.Write(buf); err != nil {
		l.broken = err
		return err
	}
	l.curSize += len(buf)
	l.curCount++
	l.segments[len(l.segments)-1].count = l.curCount
	if l.opts.Sync == SyncEachAppend {
		if err := l.cur.Sync(); err != nil {
			l.broken = err
			return err
		}
		obsFsyncs.Inc()
	}
	l.nextIndex++
	obsAppends.Inc()
	return nil
}

// Sync flushes the active segment (for SyncNever callers picking their own
// boundaries).
func (l *Log) Sync() error {
	if l.broken != nil {
		return l.broken
	}
	if l.cur == nil {
		return nil
	}
	if err := l.cur.Sync(); err != nil {
		l.broken = err
		return err
	}
	obsFsyncs.Inc()
	return nil
}

// NextIndex returns the index the next Append will get.
func (l *Log) NextIndex() int { return l.nextIndex }

// SnapshotIndex returns the record index covered by the newest snapshot.
func (l *Log) SnapshotIndex() int { return l.snapIndex }

// SaveSnapshot compacts the log: it durably writes state as a snapshot
// covering every record appended so far, then removes all segments and older
// snapshots. The snapshot is synced *before* anything is removed, so a crash
// anywhere in between leaves a recoverable log (at worst with leftover
// files, which recovery skips).
func (l *Log) SaveSnapshot(state []byte) error {
	if l.broken != nil {
		return l.broken
	}
	index := l.nextIndex - 1
	if l.hasSnap && index == l.snapIndex {
		return nil // nothing appended since the last snapshot
	}
	name := snapName(l.opts.Dir, index)
	// Anything already at this name is a torn artifact of an interrupted
	// SaveSnapshot (an intact snapshot at this index would have been chosen
	// by recovery); clear it so the new frame starts at offset 0.
	if err := l.opts.FS.Remove(name); err != nil && !errors.Is(err, os.ErrNotExist) {
		l.broken = err
		return err
	}
	f, err := l.opts.FS.OpenAppend(name)
	if err != nil {
		l.broken = err
		return err
	}
	if _, err := f.Write(frame(state)); err != nil {
		f.Close()
		l.broken = err
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		l.broken = err
		return err
	}
	if err := f.Close(); err != nil {
		l.broken = err
		return err
	}

	// The snapshot is durable: everything older is garbage.
	if l.cur != nil {
		if err := l.cur.Close(); err != nil {
			l.broken = err
			return err
		}
		l.cur = nil
	}
	for _, seg := range l.segments {
		if err := l.opts.FS.Remove(seg.name); err != nil {
			l.broken = err
			return err
		}
	}
	l.segments = nil
	if l.hasSnap && l.snapIndex != index {
		if err := l.opts.FS.Remove(snapName(l.opts.Dir, l.snapIndex)); err != nil && !errors.Is(err, os.ErrNotExist) {
			l.broken = err
			return err
		}
	}
	l.snapIndex, l.hasSnap = index, true
	return nil
}

// Close releases the active segment.
func (l *Log) Close() error {
	if l.cur == nil {
		return nil
	}
	err := l.cur.Close()
	l.cur = nil
	return err
}
