package schema

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/models"
	"repro/internal/spec"
	"repro/internal/ta"
)

// checkStrategy runs one full-mode check with the solve strategy pinned.
func checkStrategy(t *testing.T, a *ta.TA, q spec.Query, workers, maxSchemas int, fresh bool) Result {
	t.Helper()
	e, err := New(a, Options{Mode: FullEnumeration, Workers: workers,
		MaxSchemas: maxSchemas, freshSolves: fresh})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Check(&q)
	if err != nil {
		t.Fatalf("check %s (fresh=%v): %v", q.Name, fresh, err)
	}
	return res
}

// sameVerdict asserts two results agree on every strategy-independent field:
// outcome, schema count, average length and counterexample. Solver stats are
// deliberately excluded — the incremental walker's canonical-walk attribution
// is a different (internally deterministic) accounting than the fresh
// per-schema one.
func sameVerdict(t *testing.T, name string, base, got Result) {
	t.Helper()
	if got.Outcome != base.Outcome {
		t.Errorf("%s: outcome %v, want %v", name, got.Outcome, base.Outcome)
		return
	}
	if got.Schemas != base.Schemas {
		t.Errorf("%s: %d schemas, want %d", name, got.Schemas, base.Schemas)
	}
	if got.AvgLen != base.AvgLen {
		t.Errorf("%s: avg len %v, want %v", name, got.AvgLen, base.AvgLen)
	}
	if (got.CE == nil) != (base.CE == nil) {
		t.Errorf("%s: CE presence %v, want %v", name, got.CE != nil, base.CE != nil)
		return
	}
	if got.CE != nil {
		if !reflect.DeepEqual(got.CE.Params, base.CE.Params) {
			t.Errorf("%s: CE params %v, want %v", name, got.CE.Params, base.CE.Params)
		}
		if !reflect.DeepEqual(got.CE.Schema, base.CE.Schema) {
			t.Errorf("%s: CE schema %v, want %v", name, got.CE.Schema, base.CE.Schema)
		}
	}
}

// TestIncrementalVsFreshSchemaBV cross-validates the incremental
// prefix-sharing walker against from-scratch per-schema solves on every
// bundled bv-broadcast property, plus the violated no-premise variant (the
// counterexample-selection path). The strategies must be observationally
// indistinguishable at any worker count.
func TestIncrementalVsFreshSchemaBV(t *testing.T) {
	a := models.BVBroadcast()
	qs, err := models.BVQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	delivered, err := a.LocSetByName("C0", "CB0", "C01")
	if err != nil {
		t.Fatal(err)
	}
	qs = append(qs, spec.Query{
		Name:          "BV-Just0-no-premise",
		Kind:          spec.Safety,
		VisitNonempty: []ta.LocSet{delivered},
	})
	for _, q := range qs {
		base := checkStrategy(t, a, q, 1, 0, true)
		for _, workers := range []int{1, 2, 8} {
			got := checkStrategy(t, a, q, workers, 0, false)
			sameVerdict(t, fmt.Sprintf("%s workers=%d", q.Name, workers), base, got)
		}
	}
}

// TestIncrementalVsFreshSchemaRandom repeats the strategy cross-validation
// on ~50 random rising-guard automata with random visit queries.
func TestIncrementalVsFreshSchemaRandom(t *testing.T) {
	want, floor := 50, 30
	if testing.Short() {
		want, floor = 12, 8
	}
	trials := 0
	for seed := int64(2000); trials < want && seed < 2300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, err := randomTA(rng, fmt.Sprintf("inc%d", seed))
		if err != nil {
			continue
		}
		q := spec.Query{Name: "visit", Kind: spec.Safety}
		for k := 0; k <= rng.Intn(2); k++ {
			set := ta.LocSet{}
			for j := 0; j <= rng.Intn(2); j++ {
				set[ta.LocID(rng.Intn(len(a.Locations)))] = true
			}
			q.VisitNonempty = append(q.VisitNonempty, set)
		}
		if err := q.Validate(a); err != nil {
			continue
		}
		trials++
		base := checkStrategy(t, a, q, 1, 0, true)
		sameVerdict(t, a.Name, base, checkStrategy(t, a, q, 1, 0, false))
	}
	if trials < floor {
		t.Fatalf("only %d valid random automata generated", trials)
	}
}

// TestIncrementalVsFreshPrefixRecords compares the two strategies at the
// per-index record level on the cluster workload: a deep preorder prefix of
// the simplified consensus Inv1 tree, solved via SolveRange. Status, slot
// count and counterexample of every record must match; only the Stats
// accounting may differ between strategies.
func TestIncrementalVsFreshPrefixRecords(t *testing.T) {
	a := models.SimplifiedConsensus()
	qs, err := models.SimplifiedQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	var q *spec.Query
	for i := range qs {
		if qs[i].Name == "Inv1_0" {
			q = &qs[i]
		}
	}
	if q == nil {
		t.Fatal("no Inv1_0 query")
	}

	solve := func(fresh bool, workers int) []IndexRecord {
		e, err := New(a, Options{Mode: FullEnumeration, freshSolves: fresh})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := e.PlanFull(q)
		if err != nil {
			t.Fatal(err)
		}
		ctxs, _ := plan.EnumeratePrefix(150, nil)
		recs, interrupted, err := plan.SolveRange(ctxs, 0, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if interrupted {
			t.Fatal("interrupted")
		}
		return recs
	}

	base := solve(true, 1)
	for _, workers := range []int{1, 4} {
		got := solve(false, workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got), len(base))
		}
		for i := range got {
			if got[i].Done != base[i].Done || got[i].Status != base[i].Status || got[i].Slots != base[i].Slots {
				t.Errorf("workers=%d record %d: done=%v status=%v slots=%d, want done=%v status=%v slots=%d",
					workers, i, got[i].Done, got[i].Status, got[i].Slots,
					base[i].Done, base[i].Status, base[i].Slots)
			}
			if (got[i].CE == nil) != (base[i].CE == nil) {
				t.Errorf("workers=%d record %d: CE presence %v, want %v",
					workers, i, got[i].CE != nil, base[i].CE != nil)
			}
		}
	}
}

// jeroslowGuard builds the classic branch-and-bound worst case as a guard
// over n fresh non-shared symbols: 2*(x1+...+xn) = n with each xi in [0,1].
// Integer-infeasible for odd n (the left side is even), but every rational
// vertex is half-integral, so the search must branch its way through an
// exponential tree to prove it — node-hungry AND slow, the shape that used
// to ride straight through Stop and the deadline.
func jeroslowGuard(t *testing.T, tab *expr.Table, n int) (expr.Constraint, []expr.Constraint) {
	t.Helper()
	l := expr.NewLin(int64(-n))
	var bounds []expr.Constraint
	for i := 0; i < n; i++ {
		s := tab.Intern(fmt.Sprintf("jeroslow%d", i))
		if err := l.AddTerm(s, 2); err != nil {
			t.Fatal(err)
		}
		b, err := expr.Le(expr.Var(s), expr.NewLin(1))
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, b)
	}
	return expr.Constraint{L: l, Op: expr.EQ}, bounds
}

// TestGuardInitiallyTrueHonorsLimits is the regression for the analysis-phase
// deadline bypass: guardInitiallyTrue used to call the raw CheckInteger,
// which ignores both the check deadline and the engine's Stop hook, so a
// guard with a slow branch-and-bound search kept the analysis running
// through SIGINT and -timeout. The routed version winds down and answers
// with the conservative "possibly true".
func TestGuardInitiallyTrueHonorsLimits(t *testing.T) {
	a := models.BVBroadcast()

	// Unlimited, on an instance small enough to decide: definitively false.
	e, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, bounds := jeroslowGuard(t, a.Table, 11)
	it, err := e.guardInitiallyTrue(g, bounds, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if it {
		t.Fatal("odd Jeroslow instance is integer-infeasible, want initially-true = false")
	}

	// An already-expired deadline must abort the search before it decides,
	// yielding the conservative true — promptly, not after the node budget.
	start := time.Now()
	it, err = e.guardInitiallyTrue(g, bounds, time.Now().Add(-time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !it {
		t.Error("expired deadline: want conservative initially-true = true")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("expired deadline honored only after %v", d)
	}

	// A pre-fired Stop hook aborts the same way.
	es, err := New(a, Options{Stop: func() bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	it, err = es.guardInitiallyTrue(g, bounds, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !it {
		t.Error("pre-fired Stop: want conservative initially-true = true")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("pre-fired Stop honored only after %v", d)
	}
}
