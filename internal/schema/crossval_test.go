package schema

import (
	"math/rand"
	"testing"

	"repro/internal/counter"
	"repro/internal/models"
	"repro/internal/spec"
	"repro/internal/ta"
)

// TestCrossValidationRandomQueries is the strongest soundness test of the
// whole verification stack: random queries over the bv-broadcast automaton
// are decided by (a) the staged engine, (b) full enumeration and (c) the
// explicit-state checker for several fixed parameter instances, and the
// verdicts must be consistent:
//
//   - the two parameterized engines must agree exactly;
//   - "holds" is a universal statement, so every explicit instance must
//     also report holds;
//   - "violated" comes with a replay-certified counterexample at specific
//     parameters; the explicit checker at those parameters must confirm the
//     violation (when it fits the explicit checker's reach).
func TestCrossValidationRandomQueries(t *testing.T) {
	a := models.BVBroadcast()
	oneRound := a.OneRound()
	rng := rand.New(rand.NewSource(20220410))

	staged := newEngine(t, a, Staged)
	full := newEngine(t, a, FullEnumeration)

	instances := [][3]int64{{4, 1, 1}, {4, 1, 0}, {5, 1, 1}}

	// predClose turns a random set into a predecessor-closed one.
	predClose := func(s ta.LocSet) ta.LocSet {
		out := make(ta.LocSet, len(s))
		for l := range s {
			out[l] = true
		}
		for changed := true; changed; {
			changed = false
			for _, r := range oneRound.Rules {
				if r.SelfLoop() || r.RoundSwitch {
					continue
				}
				if out[r.To] && !out[r.From] {
					out[r.From] = true
					changed = true
				}
			}
		}
		return out
	}
	randSet := func(maxSize int) ta.LocSet {
		s := make(ta.LocSet)
		n := 1 + rng.Intn(maxSize)
		for i := 0; i < n; i++ {
			s[ta.LocID(rng.Intn(len(a.Locations)))] = true
		}
		return s
	}

	const trials = 40
	for trial := 0; trial < trials; trial++ {
		q := spec.Query{Name: "random", Kind: spec.Safety}
		// Optional premise: V0 and/or V1 empty initially.
		if rng.Intn(3) == 0 {
			q.InitEmpty = append(q.InitEmpty, a.MustLoc("V0"))
		}
		if rng.Intn(4) == 0 {
			q.InitEmpty = append(q.InitEmpty, a.MustLoc("V1"))
		}
		// 1-2 visit witnesses.
		for i := 0; i <= rng.Intn(2); i++ {
			q.VisitNonempty = append(q.VisitNonempty, randSet(3))
		}
		// Half the queries are liveness with a pred-closed goal violation.
		if rng.Intn(2) == 0 {
			q.Kind = spec.Liveness
			q.FinalNonempty = []ta.LocSet{predClose(randSet(2))}
			q.Justice = oneRound.DefaultJustice()
		}
		if err := q.Validate(oneRound); err != nil {
			continue // some random combinations are structurally invalid
		}

		rs, err := staged.Check(&q)
		if err != nil {
			t.Fatalf("trial %d: staged: %v", trial, err)
		}
		rf, err := full.Check(&q)
		if err != nil {
			t.Fatalf("trial %d: full: %v", trial, err)
		}
		if rs.Outcome != rf.Outcome {
			t.Errorf("trial %d: staged=%v full=%v for query %+v", trial, rs.Outcome, rf.Outcome, q)
			continue
		}

		switch rs.Outcome {
		case spec.Holds:
			for _, inst := range instances {
				sys, err := counter.NewSystem(oneRound, counter.ParamsFor(oneRound, inst[0], inst[1], inst[2]))
				if err != nil {
					t.Fatal(err)
				}
				res, err := counter.CheckQueryExplicit(sys, &q, 0)
				if err != nil {
					t.Fatal(err)
				}
				if res.Outcome != spec.Holds {
					t.Errorf("trial %d: parameterized holds but explicit n=%d t=%d f=%d says %v\nquery: %+v\nwitness: %s",
						trial, inst[0], inst[1], inst[2], res.Outcome, q, sys.String(res.Witness))
				}
			}
		case spec.Violated:
			ce := rs.CE
			if ce == nil {
				t.Errorf("trial %d: violated without counterexample", trial)
				continue
			}
			n := ce.Params[a.Params[0]]
			tt := ce.Params[a.Params[1]]
			f := ce.Params[a.Params[2]]
			if n > 9 {
				continue // too large for explicit confirmation
			}
			sys, err := counter.NewSystem(oneRound, counter.ParamsFor(oneRound, n, tt, f))
			if err != nil {
				t.Fatal(err)
			}
			res, err := counter.CheckQueryExplicit(sys, &q, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome != spec.Violated {
				t.Errorf("trial %d: counterexample at n=%d t=%d f=%d but explicit says %v\nquery: %+v\nce:\n%s",
					trial, n, tt, f, res.Outcome, q, ce.Format())
			}
		default:
			t.Errorf("trial %d: unexpected outcome %v", trial, rs.Outcome)
		}
	}
}

// TestCrossValidationSimplifiedInstances repeats the holds-direction check
// on the simplified consensus automaton: every property the parameterized
// engine verifies must hold explicitly for small instances — including
// liveness with the gadget justice.
func TestCrossValidationSimplifiedInstances(t *testing.T) {
	a := models.SimplifiedConsensus()
	oneRound := a.OneRound()
	qs, err := models.SimplifiedQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	engine := newEngine(t, a, Staged)
	for _, q := range qs {
		res := check(t, engine, q)
		if res.Outcome != spec.Holds {
			t.Errorf("%s: %v", q.Name, res.Outcome)
			continue
		}
		for _, inst := range [][3]int64{{4, 1, 1}, {4, 1, 0}} {
			sys, err := counter.NewSystem(oneRound, counter.ParamsFor(oneRound, inst[0], inst[1], inst[2]))
			if err != nil {
				t.Fatal(err)
			}
			eres, err := counter.CheckQueryExplicit(sys, &q, 0)
			if err != nil {
				t.Fatal(err)
			}
			if eres.Outcome != spec.Holds {
				t.Errorf("%s: parameterized holds, explicit n=%d t=%d f=%d says %v",
					q.Name, inst[0], inst[1], inst[2], eres.Outcome)
			}
		}
	}
}
