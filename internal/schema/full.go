package schema

import (
	"time"

	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/ta"
)

// checkFull enumerates schemas as ordered subsets of the rule-gating guard
// alphabet — the original POPL'17 scheme that ByMC runs. Every schema fixes
// the order in which guards unlock; between unlock points all enabled rules
// fire accelerated factors in topological order.
//
// Because the number of ordered subsets grows super-exponentially with the
// alphabet, the enumeration is preceded by a structural counting pass with
// the MaxSchemas cutoff: exceeding it reports spec.Budget, reproducing the
// fate of the naive consensus automaton in Table 2 (>100,000 schemas,
// >24h) without burning the time.
func (e *Engine) checkFull(q *spec.Query, res *Result, start time.Time) error {
	an, err := e.analyze(q)
	if err != nil {
		return err
	}

	// The enumeration alphabet: guards that gate at least one rule.
	gatingSet := make(map[int]bool)
	for i := range an.rules {
		for _, gi := range an.ruleGuards[i] {
			gatingSet[gi] = true
		}
	}
	var alphabet []int
	for gi := range an.guards {
		if gatingSet[gi] {
			alphabet = append(alphabet, gi)
		}
	}

	// Phase 1: structural count with cutoff.
	count := e.countSchemas(an, alphabet)
	res.Schemas = count
	if count > e.opts.MaxSchemas {
		res.Outcome = spec.Budget
		return nil
	}

	// Phase 2: enumerate, encode and solve every schema.
	w := &fullWalk{e: e, an: an, alphabet: alphabet, start: start}
	err = w.walk(nil, make(map[int]bool))
	if err != nil {
		return err
	}
	res.Schemas = w.solved
	if w.solved > 0 {
		res.AvgLen = float64(w.totalLen) / float64(w.solved)
	}
	res.Solver = w.stats
	switch {
	case w.ce != nil:
		res.Outcome = spec.Violated
		res.CE = w.ce
	case w.timedOut || w.unknown:
		res.Outcome = spec.Budget
	default:
		res.Outcome = spec.Holds
	}
	return nil
}

type fullWalk struct {
	e        *Engine
	an       *analysis
	alphabet []int
	start    time.Time

	solved   int
	totalLen int
	ce       *Counterexample
	timedOut bool
	unknown  bool
	stats    smt.Stats
}

// walk visits every ordered subset of the alphabet reachable under the
// unlockability relation, solving the schema at each node (including the
// empty one). It stops early on a counterexample or timeout.
func (w *fullWalk) walk(ctx []int, unlocked map[int]bool) error {
	if w.ce != nil || w.timedOut {
		return nil
	}
	if w.e.opts.Timeout > 0 && time.Since(w.start) > w.e.opts.Timeout {
		w.timedOut = true
		return nil
	}
	if w.e.opts.Stop != nil && w.e.opts.Stop() {
		w.timedOut = true // interrupted: same Budget outcome as a timeout
		return nil
	}

	st, ce, slots, stats, err := w.e.solveSchema(w.an, ctx)
	if err != nil {
		return err
	}
	w.solved++
	w.totalLen += slots
	w.stats.LPChecks += stats.LPChecks
	w.stats.Pivots += stats.Pivots
	w.stats.Rebuilds += stats.Rebuilds
	w.stats.BBNodes += stats.BBNodes
	w.stats.CaseSplit += stats.CaseSplit
	switch st {
	case smt.Sat:
		w.ce = ce
		return nil
	case smt.Unknown:
		w.unknown = true
	}

	for _, gi := range w.alphabet {
		if unlocked[gi] {
			continue
		}
		if !w.e.unlockable(w.an, unlocked, gi) {
			continue
		}
		unlocked[gi] = true
		err := w.walk(append(ctx, gi), unlocked)
		delete(unlocked, gi)
		if err != nil {
			return err
		}
		if w.ce != nil || w.timedOut {
			return nil
		}
	}
	return nil
}

// countSchemas counts the nodes of the enumeration tree, stopping once the
// count exceeds MaxSchemas.
func (e *Engine) countSchemas(an *analysis, alphabet []int) int {
	limit := e.opts.MaxSchemas
	count := 0
	var rec func(unlocked map[int]bool)
	rec = func(unlocked map[int]bool) {
		count++
		if count > limit {
			return
		}
		for _, gi := range alphabet {
			if unlocked[gi] || !e.unlockable(an, unlocked, gi) {
				continue
			}
			unlocked[gi] = true
			rec(unlocked)
			delete(unlocked, gi)
			if count > limit {
				return
			}
		}
	}
	rec(make(map[int]bool))
	return count
}

// reachUnder computes the locations reachable from the initial locations via
// rules whose guard conjuncts are all unlocked.
func (e *Engine) reachUnder(an *analysis, unlocked map[int]bool) map[ta.LocID]bool {
	reach := make(map[ta.LocID]bool, len(e.ta.Locations))
	for _, l := range an.initLocs {
		reach[l] = true
	}
	for changed := true; changed; {
		changed = false
		for i, ri := range an.rules {
			r := e.ta.Rules[ri]
			if !reach[r.From] || reach[r.To] {
				continue
			}
			ok := true
			for _, gi := range an.ruleGuards[i] {
				if !unlocked[gi] {
					ok = false
					break
				}
			}
			if ok {
				reach[r.To] = true
				changed = true
			}
		}
	}
	return reach
}

// unlockable reports whether the guard could become true next, given the
// currently unlocked set: it is satisfiable with zero increments, or some
// rule whose guards are unlocked increments one of its variables. Like
// ByMC's enumeration, this prunes only by guard dependency, not by location
// reachability — reachability pruning would shrink the naive automaton's
// schema count below the explosion the paper reports (it is still applied
// to the *encoding* of each schema, where it is a pure optimization).
func (e *Engine) unlockable(an *analysis, unlocked map[int]bool, gi int) bool {
	g := an.guards[gi]
	if g.initiallyTrue {
		return true
	}
	for i, ri := range an.rules {
		r := e.ta.Rules[ri]
		enabled := true
		for _, gj := range an.ruleGuards[i] {
			if !unlocked[gj] {
				enabled = false
				break
			}
		}
		if !enabled {
			continue
		}
		for _, v := range g.vars {
			if d, ok := r.Update[v]; ok && d > 0 {
				return true
			}
		}
	}
	return false
}

// solveSchema encodes and solves the schema for one ordered guard context.
func (e *Engine) solveSchema(an *analysis, ctx []int) (smt.Status, *Counterexample, int, smt.Stats, error) {
	enc, err := e.newEncoding(an)
	if err != nil {
		return 0, nil, 0, smt.Stats{}, err
	}
	unlocked := make(map[int]bool, len(ctx))

	addSegment := func() error {
		reach := e.reachUnder(an, unlocked)
		for i, ri := range an.rules {
			r := e.ta.Rules[ri]
			if !reach[r.From] {
				continue
			}
			ok := true
			for _, gi := range an.ruleGuards[i] {
				if !unlocked[gi] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if err := enc.addSlot(ri, false); err != nil {
				return err
			}
		}
		return nil
	}

	if err := addSegment(); err != nil {
		return 0, nil, 0, smt.Stats{}, err
	}
	for _, gi := range ctx {
		// The guard becomes true at this boundary (its increments happened
		// in the preceding segments).
		if err := enc.assertGuardNow(an.guards[gi].c); err != nil {
			return 0, nil, 0, smt.Stats{}, err
		}
		unlocked[gi] = true
		if err := addSegment(); err != nil {
			return 0, nil, 0, smt.Stats{}, err
		}
	}
	if err := enc.assertQueryConditions(); err != nil {
		return 0, nil, 0, smt.Stats{}, err
	}
	st, ce, err := enc.solve()
	return st, ce, len(enc.slots), enc.solver.Stats, err
}
