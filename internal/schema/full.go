package schema

import (
	"time"

	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/ta"
)

// checkFull enumerates schemas as ordered subsets of the rule-gating guard
// alphabet — the original POPL'17 scheme that ByMC runs. Every schema fixes
// the order in which guards unlock; between unlock points all enabled rules
// fire accelerated factors in topological order.
//
// Because the number of ordered subsets grows super-exponentially with the
// alphabet, the enumeration carries the MaxSchemas cutoff: exceeding it
// reports spec.Budget, reproducing the fate of the naive consensus automaton
// in Table 2 (>100,000 schemas, >24h) without burning the time.
//
// The check runs in two phases sharing one traversal budget:
//
//  1. a structural pass materializes every schema context in preorder
//     (no solving — the cutoff fires here, fast, for exploding automata);
//  2. the contexts are solved from an ordered work queue by opts.Workers
//     concurrent solvers (see parallel.go), each with its own encoder and
//     SMT state, cancelling early on the first counterexample.
//
// The result is deterministic regardless of the worker count: the same
// outcome, the same schema count, and the preorder-least (equivalently,
// lexicographically-least by alphabet position) counterexample context.
func (e *Engine) checkFull(q *spec.Query, res *Result, start time.Time) error {
	var deadline time.Time
	if e.opts.Timeout > 0 {
		deadline = start.Add(e.opts.Timeout)
	}
	an, err := e.analyze(q, deadline)
	if err != nil {
		return err
	}

	enumStart := time.Now()
	ctxs, enum := e.enumerateContexts(an)
	res.Phases.Encode = time.Since(enumStart)
	if enum.exceeded {
		// Structural budget: same count the sequential counting pass used to
		// report (it stopped at exactly limit+1 nodes).
		res.Outcome = spec.Budget
		res.Schemas = e.opts.MaxSchemas + 1
		return nil
	}
	if enum.interrupted {
		res.Outcome = spec.Budget
		res.Schemas = len(ctxs)
		return nil
	}

	out, err := e.solveContexts(an, ctxs, deadline)
	if err != nil {
		return err
	}
	res.Phases.Add(out.phases)
	res.Schemas = out.solved
	if out.solved > 0 {
		res.AvgLen = float64(out.totalLen) / float64(out.solved)
	}
	res.Solver = out.stats
	switch {
	case out.ce != nil:
		res.Outcome = spec.Violated
		res.CE = out.ce
	case out.timedOut || out.unknown:
		res.Outcome = spec.Budget
	default:
		res.Outcome = spec.Holds
	}
	return nil
}

// reachUnder computes the locations reachable from the initial locations via
// rules whose guard conjuncts are all unlocked.
func (e *Engine) reachUnder(an *analysis, unlocked map[int]bool) map[ta.LocID]bool {
	reach := make(map[ta.LocID]bool, len(e.ta.Locations))
	for _, l := range an.initLocs {
		reach[l] = true
	}
	for changed := true; changed; {
		changed = false
		for i, ri := range an.rules {
			r := e.ta.Rules[ri]
			if !reach[r.From] || reach[r.To] {
				continue
			}
			ok := true
			for _, gi := range an.ruleGuards[i] {
				if !unlocked[gi] {
					ok = false
					break
				}
			}
			if ok {
				reach[r.To] = true
				changed = true
			}
		}
	}
	return reach
}

// unlockable reports whether the guard could become true next, given the
// currently unlocked set: it is satisfiable with zero increments, or some
// rule whose guards are unlocked increments one of its variables. Like
// ByMC's enumeration, this prunes only by guard dependency, not by location
// reachability — reachability pruning would shrink the naive automaton's
// schema count below the explosion the paper reports (it is still applied
// to the *encoding* of each schema, where it is a pure optimization).
func (e *Engine) unlockable(an *analysis, unlocked map[int]bool, gi int) bool {
	g := an.guards[gi]
	if g.initiallyTrue {
		return true
	}
	for i, ri := range an.rules {
		r := e.ta.Rules[ri]
		enabled := true
		for _, gj := range an.ruleGuards[i] {
			if !unlocked[gj] {
				enabled = false
				break
			}
		}
		if !enabled {
			continue
		}
		for _, v := range g.vars {
			if d, ok := r.Update[v]; ok && d > 0 {
				return true
			}
		}
	}
	return false
}

// solveSchema encodes and solves the schema for one ordered guard context.
// The deadline (zero = none) is threaded into the SMT limits so that a long
// branch-and-bound solve honors the engine timeout mid-solve instead of only
// being checked between schemas. idx is the preorder index (trace labeling
// only); acc receives the encode/solve wall-clock split.
func (e *Engine) solveSchema(an *analysis, ctx []int, idx int, deadline time.Time, acc *phaseAcc) (smt.Status, *Counterexample, int, smt.Stats, error) {
	encStart := time.Now()
	enc, err := e.newEncoding(an)
	if err != nil {
		return 0, nil, 0, smt.Stats{}, err
	}
	enc.deadline = deadline
	unlocked := make(map[int]bool, len(ctx))

	if err := enc.addSegment(unlocked); err != nil {
		return 0, nil, 0, smt.Stats{}, err
	}
	for _, gi := range ctx {
		// The guard becomes true at this boundary (its increments happened
		// in the preceding segments).
		if err := enc.assertGuardNow(an.guards[gi].c); err != nil {
			return 0, nil, 0, smt.Stats{}, err
		}
		unlocked[gi] = true
		if err := enc.addSegment(unlocked); err != nil {
			return 0, nil, 0, smt.Stats{}, err
		}
	}
	if err := enc.assertQueryConditions(); err != nil {
		return 0, nil, 0, smt.Stats{}, err
	}
	encodeDur := time.Since(encStart)
	acc.encode.Add(encodeDur.Nanoseconds())

	solveStart := time.Now()
	st, ce, err := enc.solve()
	solveDur := time.Since(solveStart)
	acc.solve.Add(solveDur.Nanoseconds())
	e.opts.Trace.Emit("schema", "solve", map[string]int64{
		"index":     int64(idx),
		"slots":     int64(len(enc.slots)),
		"status":    int64(st),
		"encode_ns": encodeDur.Nanoseconds(),
		"solve_ns":  solveDur.Nanoseconds(),
		"bb_nodes":  int64(enc.solver.Stats.BBNodes),
	})
	if ce != nil {
		for _, gi := range ctx {
			ce.Schema = append(ce.Schema, an.guards[gi].key)
		}
	}
	return st, ce, len(enc.slots), enc.solver.Stats, err
}
