package schema

import (
	"sort"
	"time"

	"repro/internal/counter"

	"repro/internal/expr"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/ta"
)

// guardInfo is one entry of the guard alphabet: a deduplicated nontrivial
// rising guard constraint appearing on the automaton's progress rules.
type guardInfo struct {
	key  string
	c    expr.Constraint
	vars []expr.Sym // shared variables with positive coefficients
	// initiallyTrue reports whether the guard can hold with all shared
	// variables at zero under the resilience condition.
	initiallyTrue bool
	// level is the unlock stage computed by the dependency fixpoint
	// (0 = can be true initially, k = unlockable after k waves of rules).
	level int
}

// analysis precomputes, per query, everything the enumerators need: the
// effective rule set (progress rules minus those entering GlobalEmpty
// locations), the guard alphabet, dependency levels and per-level location
// reachability.
type analysis struct {
	q          *spec.Query
	rules      []int   // effective progress rules, topologically ordered
	ruleGuards [][]int // per rules index: alphabet indices of its guard conjuncts
	guards     []*guardInfo
	guardIdx   map[string]int
	// alphabet is the full-enumeration alphabet: the guards that gate at
	// least one rule, in interning order. The walk iterates it in this fixed
	// order, which defines the preorder the parallel enumeration preserves.
	alphabet   []int
	resilience []expr.Constraint
	initLocs   []ta.LocID // initial locations minus Init/GlobalEmpty

	// reachByLevel[k] = locations reachable using rules whose guards have
	// level <= k. The last entry is the fixpoint.
	reachByLevel []map[ta.LocID]bool
	// ruleLevel[i] = max level over the rule's guard conjuncts (0 for
	// trivially-guarded rules), or -1 if the rule can never fire.
	ruleLevel map[int]int
	maxLevel  int
	// backwardGuards counts gating guards that can be unlocked by a rule at
	// depth >= some rule they gate: only these force a pass boundary in the
	// staged schema (see staged.go).
	backwardGuards int
	gatingGuards   int
}

// analyze runs the structural pass for one query. The deadline (zero = none)
// bounds the guard-satisfiability solves the pass itself performs, so a
// pathological guard cannot make the analysis phase outlive the engine
// timeout or ignore a cooperative interrupt.
func (e *Engine) analyze(q *spec.Query, deadline time.Time) (*analysis, error) {
	a := e.ta
	an := &analysis{q: q, guardIdx: make(map[string]int), ruleLevel: make(map[int]int)}

	an.resilience = a.Resilience
	if q.RelaxResilience != nil {
		an.resilience = q.RelaxResilience
	}

	globalEmpty := make(map[ta.LocID]bool)
	for _, l := range q.GlobalEmpty {
		globalEmpty[l] = true
	}
	emptyInit := make(map[ta.LocID]bool)
	for _, l := range q.InitEmpty {
		emptyInit[l] = true
	}
	for _, l := range a.InitialLocs() {
		if !globalEmpty[l] && !emptyInit[l] {
			an.initLocs = append(an.initLocs, l)
		}
	}

	sorted, err := counter.SortedRules(a)
	if err != nil {
		return nil, err
	}
	for _, ri := range sorted {
		r := a.Rules[ri]
		if globalEmpty[r.To] {
			continue // firing would violate the □-emptiness premise
		}
		an.rules = append(an.rules, ri)
	}

	// Build the guard alphabet: rule guards plus (for liveness) the justice
	// trigger constraints, so that contexts determine their truth.
	intern := func(c expr.Constraint) (int, error) {
		key := c.String(a.Table)
		if gi, ok := an.guardIdx[key]; ok {
			return gi, nil
		}
		gi := len(an.guards)
		info := &guardInfo{key: key, c: c}
		for s, coeff := range c.L.Coeffs {
			if coeff > 0 && isShared(a, s) {
				info.vars = append(info.vars, s)
			}
		}
		sort.Slice(info.vars, func(i, j int) bool { return info.vars[i] < info.vars[j] })
		it, err := e.guardInitiallyTrue(c, an.resilience, deadline)
		if err != nil {
			return 0, err
		}
		info.initiallyTrue = it
		an.guards = append(an.guards, info)
		an.guardIdx[key] = gi
		return gi, nil
	}

	an.ruleGuards = make([][]int, len(an.rules))
	for i, ri := range an.rules {
		for _, g := range a.Rules[ri].Guard {
			gi, err := intern(g)
			if err != nil {
				return nil, err
			}
			an.ruleGuards[i] = append(an.ruleGuards[i], gi)
		}
	}
	if q.Kind == spec.Liveness {
		for _, j := range q.Justice {
			for _, trig := range j.Trigger {
				if _, err := intern(trig); err != nil {
					return nil, err
				}
			}
		}
	}

	gating := make(map[int]bool)
	for i := range an.rules {
		for _, gi := range an.ruleGuards[i] {
			gating[gi] = true
		}
	}
	for gi := range an.guards {
		if gating[gi] {
			an.alphabet = append(an.alphabet, gi)
		}
	}

	if err := an.computeLevels(a); err != nil {
		return nil, err
	}
	if err := an.computeBackwardGuards(a); err != nil {
		return nil, err
	}
	return an, nil
}

// computeBackwardGuards classifies every live gating guard as forward or
// backward. A guard is *forward* when every rule that can increment one of
// its variables sits strictly shallower in the progress DAG than every rule
// it gates: then, within a single topological pass, the unlocking increments
// always precede the gated firings, so the guard's unlock never requires a
// new pass. A *backward* guard (some incrementer at depth >= some gated
// rule) forces at most one pass boundary — it unlocks only once.
func (an *analysis) computeBackwardGuards(a *ta.TA) error {
	depth, err := a.Depth()
	if err != nil {
		return err
	}
	gatedMinDepth := make(map[int]int)
	for i, ri := range an.rules {
		if an.ruleLevel[i] < 0 {
			continue
		}
		d := depth[a.Rules[ri].From]
		for _, gi := range an.ruleGuards[i] {
			if cur, ok := gatedMinDepth[gi]; !ok || d < cur {
				gatedMinDepth[gi] = d
			}
		}
	}
	an.gatingGuards = len(gatedMinDepth)
	for gi, minDepth := range gatedMinDepth {
		// Note: initiallyTrue guards are NOT exempt — initial truth is an
		// existential check over parameters, so for other parameter
		// valuations the guard may still unlock backward and need its pass.
		backward := false
		for i, ri := range an.rules {
			if an.ruleLevel[i] < 0 || backward {
				continue
			}
			r := a.Rules[ri]
			for _, v := range an.guards[gi].vars {
				if d, ok := r.Update[v]; ok && d > 0 && depth[r.From] >= minDepth {
					backward = true
					break
				}
			}
		}
		if backward {
			an.backwardGuards++
		}
	}
	return nil
}

func isShared(a *ta.TA, s expr.Sym) bool {
	for _, sh := range a.Shared {
		if sh == s {
			return true
		}
	}
	return false
}

// guardInitiallyTrue checks whether the guard can hold before any rule fires
// (all shared variables zero), under the resilience condition. The solve is
// routed through CheckIntegerLimits with the engine's Stop hook and the
// check deadline: the raw CheckInteger it used to call bypassed both, so a
// guard whose branch-and-bound search was slow (not merely node-hungry) kept
// the analysis phase running through SIGINT and -timeout.
func (e *Engine) guardInitiallyTrue(g expr.Constraint, resilience []expr.Constraint, deadline time.Time) (bool, error) {
	zeroed := g.Clone()
	for _, s := range e.ta.Shared {
		if err := zeroed.L.Substitute(s, expr.NewLin(0)); err != nil {
			return false, err
		}
	}
	solver := smt.NewSolver(e.ta.Table)
	solver.AssertAll(resilience)
	solver.Assert(zeroed)
	st, _, err := solver.CheckIntegerLimits(smt.ClauseLimits{
		MaxBBNodes: 1 << 14,
		Deadline:   deadline,
		Stop:       e.opts.Stop,
	})
	if err != nil {
		return false, err
	}
	// Unknown (budget exhausted) must be treated as "possibly true":
	// initiallyTrue only ever ADDS unlockability and schedule slots, so the
	// conservative answer keeps the checker sound.
	return st != smt.Unsat, nil
}

// computeLevels runs the dependency fixpoint: wave k+1 unlocks every guard
// whose positive shared variables can be incremented by a rule that is
// available at wave k (guard unlocked, source reachable). It also records
// the reachable location set per wave.
func (an *analysis) computeLevels(a *ta.TA) error {
	unlocked := make([]bool, len(an.guards))
	for gi, g := range an.guards {
		if g.initiallyTrue || len(g.vars) == 0 {
			unlocked[gi] = true
			g.level = 0
		}
	}

	reach := make(map[ta.LocID]bool)
	for _, l := range an.initLocs {
		reach[l] = true
	}

	ruleAvailable := func(i int) bool {
		if !reach[a.Rules[an.rules[i]].From] {
			return false
		}
		for _, gi := range an.ruleGuards[i] {
			if !unlocked[gi] {
				return false
			}
		}
		return true
	}

	// Close reachability under currently available rules.
	closeReach := func() {
		for changed := true; changed; {
			changed = false
			for i, ri := range an.rules {
				r := a.Rules[ri]
				if reach[r.From] && !reach[r.To] && ruleAvailable(i) {
					reach[r.To] = true
					changed = true
				}
			}
		}
	}

	level := 0
	closeReach()
	an.reachByLevel = append(an.reachByLevel, copyReach(reach))

	for {
		// Which shared variables can currently be incremented?
		incrementable := make(map[expr.Sym]bool)
		for i, ri := range an.rules {
			if !ruleAvailable(i) {
				continue
			}
			for s, d := range a.Rules[ri].Update {
				if d > 0 {
					incrementable[s] = true
				}
			}
		}
		changed := false
		for gi, g := range an.guards {
			if unlocked[gi] {
				continue
			}
			for _, v := range g.vars {
				if incrementable[v] {
					unlocked[gi] = true
					g.level = level + 1
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
		level++
		closeReach()
		an.reachByLevel = append(an.reachByLevel, copyReach(reach))
	}
	an.maxLevel = level

	for i := range an.rules {
		lv := 0
		dead := false
		for _, gi := range an.ruleGuards[i] {
			if !unlocked[gi] {
				dead = true
				break
			}
			if an.guards[gi].level > lv {
				lv = an.guards[gi].level
			}
		}
		if dead || !reach[a.Rules[an.rules[i]].From] {
			an.ruleLevel[i] = -1
		} else {
			an.ruleLevel[i] = lv
		}
	}
	return nil
}

func copyReach(m map[ta.LocID]bool) map[ta.LocID]bool {
	out := make(map[ta.LocID]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// reachAt returns the reachability set for a wave, clamped to the fixpoint.
func (an *analysis) reachAt(level int) map[ta.LocID]bool {
	if level >= len(an.reachByLevel) {
		return an.reachByLevel[len(an.reachByLevel)-1]
	}
	if level < 0 {
		level = 0
	}
	return an.reachByLevel[level]
}
