package schema

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/models"
	"repro/internal/spec"
)

// TestSTRBParameterized verifies the Srikanth-Toueg reliable broadcast — the
// original threshold-automata benchmark [33] — with both engines, for all
// parameters. This is the fourth protocol the checker handles, beyond the
// paper's three automata.
func TestSTRBParameterized(t *testing.T) {
	a := models.STReliableBroadcast()
	qs, err := models.STRBQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Staged, FullEnumeration} {
		e := newEngine(t, a, mode)
		for _, q := range qs {
			res := check(t, e, q)
			if res.Outcome != spec.Holds {
				msg := ""
				if res.CE != nil {
					msg = "\n" + res.CE.Format()
				}
				t.Errorf("mode %v %s: %v, want holds%s", mode, q.Name, res.Outcome, msg)
			}
		}
	}
}

// TestSTRBUnforgeabilityNeedsEchoThreshold reproduces the classic threshold
// bug: lowering the echo trigger from t+1 received messages to a single one
// lets the f Byzantine processes bootstrap an echo cascade out of nothing —
// the checker produces the forged-acceptance counterexample, which requires
// Byzantine help (f >= 1).
func TestSTRBUnforgeabilityNeedsEchoThreshold(t *testing.T) {
	a := models.STReliableBroadcast()
	eSym, err := a.SharedByName("e")
	if err != nil {
		t.Fatal(err)
	}
	// Guard for r2 becomes e >= 1-f: a process echoes upon ONE received
	// echo, which f >= 1 Byzantine echoes satisfy for free.
	weak := expr.Var(eSym)
	if err := weak.AddTerm(a.Params[2], 1); err != nil {
		t.Fatal(err)
	}
	if err := weak.AddConst(-1); err != nil {
		t.Fatal(err)
	}
	mutant := withGuard(t, a, "r2", expr.GEZero(weak))

	base, err := models.STRBQueries(mutant)
	if err != nil {
		t.Fatal(err)
	}
	var q spec.Query
	for _, cand := range base {
		if cand.Name == "Unforgeability" {
			q = cand
		}
	}
	e := newEngine(t, mutant, Staged)
	res := check(t, e, q)
	if res.Outcome != spec.Violated {
		t.Fatalf("Unforgeability with echo threshold 1: %v, want violated", res.Outcome)
	}
	if f := res.CE.Params[mutant.Params[2]]; f == 0 {
		t.Errorf("forgery without Byzantine processes (f=0) should be impossible")
	}
	// The original threshold is exactly tight: the intact automaton holds
	// (TestSTRBParameterized), and even the mutant is safe when f = 0 —
	// confirm via the explicit checker.
	if got := res.CE.Params[mutant.Params[0]]; got <= 0 {
		t.Errorf("implausible counterexample n=%d", got)
	}
}
