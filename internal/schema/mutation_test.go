package schema

import (
	"testing"

	"repro/internal/counter"
	"repro/internal/expr"
	"repro/internal/models"
	"repro/internal/spec"
	"repro/internal/ta"
)

// These tests mutate the paper's models and require the checker to notice:
// negative coverage proving that "holds" verdicts are not vacuous.

// withoutRule returns a copy of the automaton with the named rule removed.
func withoutRule(t *testing.T, a *ta.TA, name string) *ta.TA {
	t.Helper()
	out := *a
	out.Rules = nil
	found := false
	for _, r := range a.Rules {
		if r.Name == name {
			found = true
			continue
		}
		out.Rules = append(out.Rules, r)
	}
	if !found {
		t.Fatalf("no rule %s in %s", name, a.Name)
	}
	return &out
}

// withGuard returns a copy with the named rule's guard replaced.
func withGuard(t *testing.T, a *ta.TA, name string, guard expr.Constraint) *ta.TA {
	t.Helper()
	out := *a
	out.Rules = append([]ta.Rule(nil), a.Rules...)
	for i, r := range out.Rules {
		if r.Name == name {
			out.Rules[i].Guard = []expr.Constraint{guard}
			return &out
		}
	}
	t.Fatalf("no rule %s in %s", name, a.Name)
	return nil
}

// TestMutantNoEchoBreaksObligation removes the echo rule r5 (B1 -> B01 on
// t+1 zeros): without the echo amplification, t+1 correct initial zeros no
// longer guarantee delivery of 0 — BV-Obligation must fail with a certified
// counterexample, and the explicit checker must confirm it.
func TestMutantNoEchoBreaksObligation(t *testing.T) {
	a := withoutRule(t, models.BVBroadcast(), "r5")
	qs, err := models.BVQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	var obl spec.Query
	for _, q := range qs {
		if q.Name == "BV-Obl0" {
			obl = q
		}
	}
	// Justice must match the mutated rule set.
	obl.Justice = a.OneRound().DefaultJustice()

	e := newEngine(t, a, Staged)
	res := check(t, e, obl)
	if res.Outcome != spec.Violated {
		t.Fatalf("BV-Obl0 on echo-less mutant: %v, want violated", res.Outcome)
	}
	// Confirm explicitly at the counterexample's parameters.
	n := res.CE.Params[a.Params[0]]
	tt := res.CE.Params[a.Params[1]]
	f := res.CE.Params[a.Params[2]]
	if n <= 12 {
		sys, err := counter.NewSystem(a.OneRound(), counter.ParamsFor(a, n, tt, f))
		if err != nil {
			t.Fatal(err)
		}
		eres, err := counter.CheckQueryExplicit(sys, &obl, 0)
		if err != nil {
			t.Fatal(err)
		}
		if eres.Outcome != spec.Violated {
			t.Errorf("explicit checker disagrees: %v", eres.Outcome)
		}
	}
}

// TestMutantWeakAuxThresholdBreaksAgreement weakens the aux quorum of the
// simplified automaton's decision rule s8 (M1 -> D1) from n-t-f to 1:
// deciding on a single aux message lets two camps decide differently, so
// Inv1_0 must be violated even under n > 3t.
func TestMutantWeakAuxThresholdBreaksAgreement(t *testing.T) {
	orig := models.SimplifiedConsensus()
	a1, err := orig.SharedByName("a1")
	if err != nil {
		t.Fatal(err)
	}
	weak := expr.Var(a1)
	if err := weak.AddConst(-1); err != nil {
		t.Fatal(err)
	}
	mutant := withGuard(t, orig, "s8", expr.GEZero(weak)) // a1 >= 1

	qs, err := models.SimplifiedQueries(mutant)
	if err != nil {
		t.Fatal(err)
	}
	var inv spec.Query
	for _, q := range qs {
		if q.Name == "Inv1_0" {
			inv = q
		}
	}
	e := newEngine(t, mutant, Staged)
	res := check(t, e, inv)
	if res.Outcome != spec.Violated {
		t.Fatalf("Inv1_0 on weak-quorum mutant: %v, want violated", res.Outcome)
	}
	n := res.CE.Params[mutant.Params[0]]
	tt := res.CE.Params[mutant.Params[1]]
	if n <= 3*tt {
		t.Errorf("mutant counterexample should exist under proper resilience, got n=%d t=%d", n, tt)
	}
}

// TestMutantMissingDecisionBreaksTermination removes s5x (M0x -> D0) — in
// the even half, qualifiers {0} can then only progress via M01x — together
// with the fairness assumption that covered it (aux0x: "M0x drains once the
// aux quorum is reached", which no rule can honor anymore). A run in which
// every process holds estimate 0 in the even half then stalls in M0x
// forever: SRoundTerm must fail.
//
// Notably, removing ONLY the rule leaves the query verified: the stale
// justice assumption declares the stuck configuration unfair, a vacuity the
// companion check below pins down.
func TestMutantMissingDecisionBreaksTermination(t *testing.T) {
	mutant := withoutRule(t, models.SimplifiedConsensus(), "s5x")
	qs, err := models.SimplifiedQueries(mutant)
	if err != nil {
		t.Fatal(err)
	}
	var srt spec.Query
	for _, q := range qs {
		if q.Name == "SRoundTerm" {
			srt = q
		}
	}

	// With the stale aux0x justice still promised, the checker (soundly)
	// reports holds: the assumption excludes the stuck run.
	e := newEngine(t, mutant, Staged)
	res := check(t, e, srt)
	if res.Outcome != spec.Holds {
		t.Fatalf("SRoundTerm with stale justice: %v, want holds (vacuously)", res.Outcome)
	}

	// Dropping the unfulfillable assumption exposes the bug.
	var honest []ta.Justice
	for _, j := range srt.Justice {
		if j.Name == "aux0x" {
			continue
		}
		honest = append(honest, j)
	}
	srt.Justice = honest
	res = check(t, e, srt)
	if res.Outcome != spec.Violated {
		t.Fatalf("SRoundTerm on decision-less mutant: %v, want violated", res.Outcome)
	}
}

// TestMutantsDoNotBreakUnrelatedProperties: sanity — the mutations above
// must not flip properties they do not touch (no over-sensitivity).
func TestMutantsDoNotBreakUnrelatedProperties(t *testing.T) {
	// Removing the echo rule must keep BV-Justification intact.
	a := withoutRule(t, models.BVBroadcast(), "r5")
	qs, err := models.BVQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, a, Staged)
	for _, q := range qs {
		if q.Name != "BV-Just0" && q.Name != "BV-Just1" {
			continue
		}
		q.Justice = nil // safety queries carry no justice
		res := check(t, e, q)
		if res.Outcome != spec.Holds {
			t.Errorf("%s on echo-less mutant: %v, want holds", q.Name, res.Outcome)
		}
	}
}
