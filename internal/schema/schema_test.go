package schema

import (
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/spec"
	"repro/internal/ta"
)

func newEngine(t *testing.T, a *ta.TA, mode Mode) *Engine {
	t.Helper()
	e, err := New(a, Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func check(t *testing.T, e *Engine, q spec.Query) Result {
	t.Helper()
	res, err := e.Check(&q)
	if err != nil {
		t.Fatalf("check %s: %v", q.Name, err)
	}
	return res
}

// TestBVPropertiesStaged verifies all bv-broadcast properties for ALL
// parameters with the staged engine.
func TestBVPropertiesStaged(t *testing.T) {
	a := models.BVBroadcast()
	qs, err := models.BVQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, a, Staged)
	for _, q := range qs {
		res := check(t, e, q)
		if res.Outcome != spec.Holds {
			msg := ""
			if res.CE != nil {
				msg = "\n" + res.CE.Format()
			}
			t.Errorf("%s: %v, want holds%s", q.Name, res.Outcome, msg)
		}
	}
}

// TestBVPropertiesFull verifies the same properties with full schema
// enumeration, the mode whose schema counts Table 2 reports.
func TestBVPropertiesFull(t *testing.T) {
	a := models.BVBroadcast()
	qs, err := models.BVQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, a, FullEnumeration)
	for _, q := range qs {
		res := check(t, e, q)
		if res.Outcome != spec.Holds {
			msg := ""
			if res.CE != nil {
				msg = "\n" + res.CE.Format()
			}
			t.Errorf("%s: %v, want holds%s", q.Name, res.Outcome, msg)
		}
		// 4 guards: at most sum_k P(4,k) = 65 ordered subsets; premises that
		// empty an initial location prune the unlockable alphabet further.
		if res.Schemas < 2 || res.Schemas > 65 {
			t.Errorf("%s: schemas = %d, expected 2..65", q.Name, res.Schemas)
		}
	}
}

// TestBVJustViolatedWithoutPremise drops the κ[V0]=0 premise from
// BV-Justification: delivering 0 is then trivially possible and the checker
// must produce a certified counterexample.
func TestBVJustViolatedWithoutPremise(t *testing.T) {
	a := models.BVBroadcast()
	delivered, err := a.LocSetByName("C0", "CB0", "C01")
	if err != nil {
		t.Fatal(err)
	}
	q := spec.Query{
		Name:          "BV-Just0-no-premise",
		Kind:          spec.Safety,
		VisitNonempty: []ta.LocSet{delivered},
	}
	for _, mode := range []Mode{Staged, FullEnumeration} {
		e := newEngine(t, a, mode)
		res := check(t, e, q)
		if res.Outcome != spec.Violated {
			t.Errorf("mode %v: %v, want violated", mode, res.Outcome)
			continue
		}
		if res.CE == nil {
			t.Fatalf("mode %v: violated without counterexample", mode)
		}
		// The counterexample was already replayed and certified internally;
		// sanity-check its parameters satisfy resilience.
		n := res.CE.Params[a.Params[0]]
		tt := res.CE.Params[a.Params[1]]
		if n <= 3*tt {
			t.Errorf("mode %v: counterexample violates n>3t: n=%d t=%d", mode, n, tt)
		}
	}
}

// TestBVTermViolatedWithoutJustice drops all fairness: staying in the
// initial locations forever is then a legitimate execution.
func TestBVTermViolatedWithoutJustice(t *testing.T) {
	a := models.BVBroadcast()
	undelivered, err := a.LocSetByName("V0", "V1", "B0", "B1", "B01")
	if err != nil {
		t.Fatal(err)
	}
	q := spec.Query{
		Name:          "BV-Term-no-justice",
		Kind:          spec.Liveness,
		FinalNonempty: []ta.LocSet{undelivered},
	}
	for _, mode := range []Mode{Staged, FullEnumeration} {
		e := newEngine(t, a, mode)
		res := check(t, e, q)
		if res.Outcome != spec.Violated {
			t.Errorf("mode %v: %v, want violated", mode, res.Outcome)
		}
	}
}

// TestSimplifiedPropertiesStaged verifies, for all parameters, every
// property of Section 5 on the simplified consensus automaton — the paper's
// headline result.
func TestSimplifiedPropertiesStaged(t *testing.T) {
	a := models.SimplifiedConsensus()
	qs, err := models.SimplifiedQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, a, Staged)
	for _, q := range qs {
		res := check(t, e, q)
		if res.Outcome != spec.Holds {
			msg := ""
			if res.CE != nil {
				msg = "\n" + res.CE.Format()
			}
			t.Errorf("%s: %v, want holds%s", q.Name, res.Outcome, msg)
		}
		t.Logf("%s: %v in %v (%d splits, len %.0f)", q.Name, res.Outcome, res.Elapsed, res.Schemas, res.AvgLen)
	}
}

// TestInv1CounterexampleWithoutResilience reproduces the Section 6
// experiment: relaxing n > 3t to n > 2t yields a certified disagreement
// counterexample.
func TestInv1CounterexampleWithoutResilience(t *testing.T) {
	a := models.SimplifiedConsensus()
	q, err := models.Inv1CounterexampleQuery(a)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, a, Staged)
	res := check(t, e, q)
	if res.Outcome != spec.Violated {
		t.Fatalf("outcome = %v, want violated", res.Outcome)
	}
	n := res.CE.Params[a.Params[0]]
	tt := res.CE.Params[a.Params[1]]
	if n > 3*tt {
		t.Errorf("counterexample should need n <= 3t, got n=%d t=%d", n, tt)
	}
	out := res.CE.Format()
	if !strings.Contains(out, "D0") {
		t.Errorf("counterexample does not reach D0:\n%s", out)
	}
}

// TestSRoundTermNeedsBVFairness removes the BV-Obligation and BV-Uniformity
// justice requirements: the gadget then under-approximates the bv-broadcast
// guarantees and termination of the superround fails, as the paper's
// Appendix F discussion predicts.
func TestSRoundTermNeedsBVFairness(t *testing.T) {
	a := models.SimplifiedConsensus()
	qs, err := models.SimplifiedQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	var q spec.Query
	for _, cand := range qs {
		if cand.Name == "SRoundTerm" {
			q = cand
		}
	}
	var weaker []ta.Justice
	for _, j := range q.Justice {
		if strings.HasPrefix(j.Name, "bv_obl") || strings.HasPrefix(j.Name, "bv_unif") {
			continue
		}
		weaker = append(weaker, j)
	}
	q.Name = "SRoundTerm-weak-justice"
	q.Justice = weaker

	e := newEngine(t, a, Staged)
	res := check(t, e, q)
	if res.Outcome != spec.Violated {
		t.Fatalf("outcome = %v, want violated (gadget fairness is necessary)", res.Outcome)
	}
}

// TestNaiveFullEnumerationExplodes reproduces the Table 2 result for the
// naive automaton: the schema count exceeds the 100,000 cutoff and the
// check reports budget exhaustion — this is the explosion that motivates
// the holistic decomposition.
func TestNaiveFullEnumerationExplodes(t *testing.T) {
	a := models.NaiveConsensus()
	qs, err := models.NaiveQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, a, FullEnumeration)
	for _, q := range qs {
		res := check(t, e, q)
		if res.Outcome != spec.Budget {
			t.Errorf("%s: %v, want budget-exceeded", q.Name, res.Outcome)
		}
		if res.Schemas <= 100_000 {
			t.Errorf("%s: schemas = %d, want > 100,000", q.Name, res.Schemas)
		}
	}
}

// TestFullAndStagedAgree cross-validates the two engines on the bv automaton
// including mutated (violated) variants.
func TestFullAndStagedAgree(t *testing.T) {
	a := models.BVBroadcast()
	qs, err := models.BVQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	// Add a violated mutant: BV-Obl with an impossible goal (the initial
	// locations cannot all stay occupied... they can: drop justice).
	full := newEngine(t, a, FullEnumeration)
	staged := newEngine(t, a, Staged)
	for _, q := range qs {
		rf := check(t, full, q)
		rs := check(t, staged, q)
		if rf.Outcome != rs.Outcome {
			t.Errorf("%s: full=%v staged=%v", q.Name, rf.Outcome, rs.Outcome)
		}
	}
}
