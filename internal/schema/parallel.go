package schema

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/smt"
)

// This file implements the parallel full-enumeration machinery: a fused
// structural pass that materializes the ordered-guard-context tree in
// preorder (with the MaxSchemas cutoff), and an ordered work queue that
// shards the materialized schemas across a pool of solvers.
//
// Determinism argument. The structural pass always produces the same context
// list: the tree is fixed by the analysis, the frontier split preserves
// preorder (a subtree task is replaced by its root node followed by its
// child subtrees in alphabet order), and per-task outputs are concatenated
// in task order, so the global list is the DFS preorder of the sequential
// walk. The solve phase claims indices from a monotonically increasing
// counter, so when a counterexample is found at index i every index j < i
// has already been claimed; the join waits for those solves and reports the
// MINIMUM Sat index — the preorder-least, i.e. lexicographically-least (by
// alphabet position, prefix-first) counterexample context. Aggregates
// (schema count, average length, solver stats) are folded over exactly the
// prefix [0, minSat] from per-index records, never from racing worker
// totals, so they are byte-identical to a workers=1 run. Work performed
// beyond the winning index by in-flight workers is discarded.

// enumTask is one work item of the structural pass: either a single node
// (its context only) or a whole subtree rooted at the context.
type enumTask struct {
	ctx      []int
	unlocked map[int]bool
	subtree  bool
	out      [][]int
}

// enumOutcome reports how the structural pass ended.
type enumOutcome struct {
	exceeded    bool // tree has more than MaxSchemas nodes
	interrupted bool // opts.Stop fired mid-enumeration
}

// enumerateContexts materializes every schema context of the enumeration
// tree in preorder, stopping as soon as the node count exceeds MaxSchemas.
// With Workers > 1 the tree is split into subtree tasks (keyed by the first
// unlocked guards) that a worker pool drains; a skewed tree cannot idle
// workers because tasks are split well below the worker count granularity
// and claimed from a shared queue.
func (e *Engine) enumerateContexts(an *analysis) ([][]int, enumOutcome) {
	workers := e.opts.Workers
	if workers < 1 {
		workers = 1
	}
	tasks := e.splitFrontier(an, workers)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	limit := e.opts.MaxSchemas

	var total atomic.Int64
	var next atomic.Int64
	var exceeded, interrupted atomic.Bool
	run := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= len(tasks) || exceeded.Load() || interrupted.Load() {
				return
			}
			e.enumTaskRun(an, tasks[i], limit, &total, &exceeded, &interrupted)
		}
	}
	if workers == 1 {
		run()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				run()
			}()
		}
		wg.Wait()
	}
	if exceeded.Load() {
		return nil, enumOutcome{exceeded: true}
	}
	var ctxs [][]int
	for _, t := range tasks {
		ctxs = append(ctxs, t.out...)
	}
	return ctxs, enumOutcome{interrupted: interrupted.Load()}
}

// splitFrontier decomposes the context tree into tasks in global preorder.
// Splitting a subtree yields its root as a node task followed by one subtree
// task per first unlocked guard (in alphabet order); repeating breadth-first
// until there are comfortably more tasks than workers keeps skewed subtrees
// from serializing the pass.
func (e *Engine) splitFrontier(an *analysis, workers int) []*enumTask {
	tasks := []*enumTask{{unlocked: make(map[int]bool), subtree: true}}
	if workers <= 1 {
		return tasks
	}
	target := 16 * workers
	for depth := 0; depth < 8 && len(tasks) < target; depth++ {
		split := false
		next := make([]*enumTask, 0, len(tasks))
		for _, t := range tasks {
			if !t.subtree || len(next) >= target {
				next = append(next, t)
				continue
			}
			var children []int
			for _, gi := range an.alphabet {
				if !t.unlocked[gi] && e.unlockable(an, t.unlocked, gi) {
					children = append(children, gi)
				}
			}
			next = append(next, &enumTask{ctx: t.ctx, unlocked: t.unlocked})
			for _, gi := range children {
				ctx := make([]int, len(t.ctx)+1)
				copy(ctx, t.ctx)
				ctx[len(t.ctx)] = gi
				unlocked := make(map[int]bool, len(t.unlocked)+1)
				for k := range t.unlocked {
					unlocked[k] = true
				}
				unlocked[gi] = true
				next = append(next, &enumTask{ctx: ctx, unlocked: unlocked, subtree: true})
			}
			if len(children) > 0 {
				split = true
				obsTreeSplits.Inc()
			}
		}
		tasks = next
		if !split {
			break
		}
	}
	return tasks
}

// enumTaskRun expands one task, appending the visited contexts to t.out in
// DFS preorder. Every emitted context is a fresh slice: branches must never
// share a backing array with their siblings (the sequential walk used to
// pass append(ctx, gi) down, which aliases the parent's array across
// iterations — latent sequentially, a data race and output corruption once
// contexts outlive the visit, as they do here).
func (e *Engine) enumTaskRun(an *analysis, t *enumTask, limit int, total *atomic.Int64, exceeded, interrupted *atomic.Bool) {
	emit := func(ctx []int) bool {
		if total.Add(1) > int64(limit) {
			exceeded.Store(true)
			return false
		}
		obsSchemasEnumerated.Inc()
		t.out = append(t.out, ctx)
		return true
	}
	if !emit(t.ctx) {
		return
	}
	if !t.subtree {
		return
	}
	visited := 0
	var rec func(ctx []int, unlocked map[int]bool) bool
	rec = func(ctx []int, unlocked map[int]bool) bool {
		for _, gi := range an.alphabet {
			if unlocked[gi] || !e.unlockable(an, unlocked, gi) {
				continue
			}
			visited++
			if visited&255 == 0 {
				if exceeded.Load() || interrupted.Load() {
					return false
				}
				if e.opts.Stop != nil && e.opts.Stop() {
					interrupted.Store(true)
					return false
				}
			}
			child := make([]int, len(ctx)+1)
			copy(child, ctx)
			child[len(ctx)] = gi
			if !emit(child) {
				return false
			}
			unlocked[gi] = true
			ok := rec(child, unlocked)
			delete(unlocked, gi)
			if !ok {
				return false
			}
		}
		return true
	}
	rec(t.ctx, t.unlocked)
}

// solveRec is the per-schema record of the solve phase; keeping results by
// preorder index (rather than racing shared accumulators) is what makes the
// join deterministic.
type solveRec struct {
	done   bool
	status smt.Status
	slots  int
	stats  smt.Stats
	ce     *Counterexample
	err    error
}

// fullOutcome aggregates the solve phase for checkFull.
type fullOutcome struct {
	solved   int
	totalLen int
	stats    smt.Stats
	ce       *Counterexample
	timedOut bool
	unknown  bool
	phases   PhaseTimings
}

// phaseAcc accumulates per-schema encode/solve durations across workers.
// Being summed from racing atomic adds, the totals are observational only.
type phaseAcc struct {
	encode atomic.Int64
	solve  atomic.Int64
}

// claimPollStride is how many queue claims elapse between Deadline/Stop
// consultations in the solve loop. Claims are far coarser than SMT search
// events, and the deadline is also threaded into every solve's ClauseLimits
// (where it is polled on the smt stride), so a small stride here suffices:
// each worker polls on its first claim — an expired deadline stops a fresh
// worker immediately — then every claimPollStride-th.
const claimPollStride = 16

// solveChunkSize picks how many contiguous preorder indices a worker claims
// at once. Contiguity is what feeds the incremental cursor: within a chunk
// (and across a lone worker's consecutive chunks) every move to the next
// index is a real preorder step, so only chunk boundaries under contention
// pay prefix replay. Smaller chunks balance better and waste less work past
// an early Sat; the clamp keeps both effects bounded. Records do not depend
// on the chunk size — it only shifts which cursor solves which index.
func solveChunkSize(n, workers int) int {
	if workers <= 1 {
		return n
	}
	c := n / (workers * 8)
	if c < 1 {
		return 1
	}
	if c > 32 {
		return 32
	}
	return c
}

// solveQueue is the shared solve loop behind solveContexts and SolveRange:
// workers claim contiguous chunks of ctxs (global preorder indices
// base+i) and discharge them, each worker through its own long-lived
// incremental cursor (or fresh per-schema encodings under freshSolves).
// The first Sat cancels indices beyond it; stop and deadline cancel
// everything (reported as true). Errors land in recs[i].err with all later
// work cancelled; the caller scans for the preorder-least one.
func (e *Engine) solveQueue(an *analysis, ctxs [][]int, base, workers int, deadline time.Time, stop func() bool, recs []solveRec, acc *phaseAcc) bool {
	chunk := int64(solveChunkSize(len(ctxs), workers))
	var next atomic.Int64
	var minSat, minErr atomic.Int64
	minSat.Store(math.MaxInt64)
	minErr.Store(math.MaxInt64)
	var stopped atomic.Bool

	casMin := func(a *atomic.Int64, v int64) {
		for {
			cur := a.Load()
			if v >= cur || a.CompareAndSwap(cur, v) {
				return
			}
		}
	}

	run := func() {
		claims := 0
		var cur *fullCursor
		for {
			lo := next.Add(chunk) - chunk
			if lo >= int64(len(ctxs)) {
				return
			}
			hi := lo + chunk
			if hi > int64(len(ctxs)) {
				hi = int64(len(ctxs))
			}
			for i := int(lo); i < int(hi); i++ {
				if stopped.Load() || minErr.Load() < math.MaxInt64 {
					return
				}
				if int64(i) > minSat.Load() {
					// minSat only decreases: every index this worker would
					// reach next is even larger, so nothing is left to do.
					return
				}
				obsQueueDepth.Set(int64(len(ctxs) - i))
				claims++
				if claims%claimPollStride == 1 || claimPollStride == 1 {
					// Strided: polling time.Now() on every claim shows up
					// when schemas are tiny. Expiry mid-solve is still
					// caught by the smt-level strided poll.
					obsDeadlinePolls.Inc()
					if stop != nil && stop() {
						stopped.Store(true)
						return
					}
					if !deadline.IsZero() && time.Now().After(deadline) {
						stopped.Store(true)
						return
					}
				}
				var st smt.Status
				var ce *Counterexample
				var slots int
				var stats smt.Stats
				var err error
				if e.opts.freshSolves {
					st, ce, slots, stats, err = e.solveSchema(an, ctxs[i], base+i, deadline, acc)
				} else {
					if cur == nil {
						cur, err = e.newFullCursor(an, deadline)
					}
					if err == nil {
						st, ce, slots, stats, err = cur.solveAt(ctxs[i], base+i, acc)
					}
				}
				if err != nil {
					recs[i].err = err
					casMin(&minErr, int64(i))
					return
				}
				obsSchemasSolved.Inc()
				recs[i] = solveRec{done: true, status: st, slots: slots, stats: stats, ce: ce}
				if st == smt.Sat {
					casMin(&minSat, int64(i))
				}
			}
		}
	}
	if workers <= 1 {
		run()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				run()
			}()
		}
		wg.Wait()
	}
	return stopped.Load()
}

// solveContexts discharges the materialized schemas with opts.Workers
// concurrent solvers, each walking its claimed chunks with one incremental
// cursor. The first Sat cancels all later work; deadline and Stop cancel
// everything.
func (e *Engine) solveContexts(an *analysis, ctxs [][]int, deadline time.Time) (fullOutcome, error) {
	workers := e.opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(ctxs) {
		workers = len(ctxs)
	}
	recs := make([]solveRec, len(ctxs))
	var acc phaseAcc
	timedOut := e.solveQueue(an, ctxs, 0, workers, deadline, e.opts.Stop, recs, &acc)

	for i := range recs {
		if recs[i].err != nil {
			// Deterministic error reporting: the preorder-least failing
			// schema among those encountered.
			return fullOutcome{}, recs[i].err
		}
	}

	foldStart := time.Now()
	var out fullOutcome
	fold := func(i int) {
		out.solved++
		out.totalLen += recs[i].slots
		out.stats.Add(recs[i].stats)
		if recs[i].status == smt.Unknown {
			out.unknown = true
		}
	}
	finish := func() fullOutcome {
		fd := time.Since(foldStart)
		obsFoldNS.Observe(fd.Nanoseconds())
		out.phases = PhaseTimings{
			Encode: time.Duration(acc.encode.Load()),
			Solve:  time.Duration(acc.solve.Load()),
			Fold:   fd,
		}
		return out
	}

	minSat := int64(math.MaxInt64)
	for i := range recs {
		if recs[i].done && recs[i].status == smt.Sat {
			minSat = int64(i)
			break
		}
	}
	if ms := minSat; ms < math.MaxInt64 {
		// All indices below the winner were claimed before it; unless a
		// timeout raced in and skipped some, they completed, and the verdict
		// covers exactly the prefix a sequential walk would have solved.
		complete := true
		for i := int64(0); i <= ms; i++ {
			if !recs[i].done {
				complete = false
				break
			}
		}
		if complete {
			for i := int64(0); i <= ms; i++ {
				fold(int(i))
			}
			out.ce = recs[ms].ce
			return finish(), nil
		}
	}
	for i := range recs {
		if recs[i].done {
			fold(i)
		}
	}
	if ms := minSat; ms < math.MaxInt64 {
		// A timeout raced in and skipped indices below the winner, so the
		// prefix aggregates are incomplete — but the counterexample itself is
		// real (it is replayed and certified downstream). The old code
		// dropped it here and reported Budget; surfacing the violation is
		// strictly more informative, and the Budget-style caveat on the
		// aggregates is preserved by timedOut.
		out.ce = recs[ms].ce
	}
	out.timedOut = timedOut
	return finish(), nil
}
