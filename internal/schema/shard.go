package schema

import (
	"fmt"
	"time"

	"repro/internal/smt"
	"repro/internal/spec"
)

// This file is the shard-solving API of full enumeration: the exported
// surface the distributed verification cluster (internal/cluster) builds on.
// A FullPlan separates the three phases that checkFull fuses — analysis,
// context enumeration, and per-index solving — so a coordinator can
// materialize the preorder context list once, hand contiguous index ranges
// to remote workers as content-addressed work units, and fold the per-index
// records back into a Result that is byte-identical to a single-box run:
// same outcome, schema count, average length, solver statistics, and
// lexicographically-least counterexample (see parallel.go for why per-index
// records make the join worker-count- and placement-independent).

// FullPlan is the analyzed, not-yet-enumerated full-mode check of one query.
type FullPlan struct {
	e  *Engine
	an *analysis
	q  *spec.Query
}

// PlanFull validates the query and runs the structural analysis, returning a
// plan whose contexts can be enumerated and solved in independent ranges.
// The engine must be in FullEnumeration mode.
func (e *Engine) PlanFull(q *spec.Query) (*FullPlan, error) {
	if e.opts.Mode != FullEnumeration {
		return nil, fmt.Errorf("schema: PlanFull requires FullEnumeration mode, engine is %v", e.opts.Mode)
	}
	if err := q.Validate(e.ta); err != nil {
		return nil, err
	}
	var deadline time.Time
	if e.opts.Timeout > 0 {
		deadline = time.Now().Add(e.opts.Timeout)
	}
	an, err := e.analyze(q, deadline)
	if err != nil {
		return nil, err
	}
	return &FullPlan{e: e, an: an, q: q}, nil
}

// MaxSchemas reports the engine's resolved enumeration cutoff, so a caller
// that hits the exceeded case can reproduce the single-box "cutoff+1" Budget
// schema count without re-deriving the default.
func (p *FullPlan) MaxSchemas() int { return p.e.opts.MaxSchemas }

// AlphabetKeys returns the guard alphabet in its fixed enumeration order.
// The keys fingerprint the analysis: two processes whose alphabets match
// index-for-index agree on what every serialized context means, so workers
// verify this before trusting a coordinator's guard-index sequences.
func (p *FullPlan) AlphabetKeys() []string {
	keys := make([]string, len(p.an.alphabet))
	for i, gi := range p.an.alphabet {
		keys[i] = p.an.guards[gi].key
	}
	return keys
}

// Enumerate materializes every schema context in preorder, honoring the
// engine's MaxSchemas cutoff and Workers budget exactly like a direct Check.
func (p *FullPlan) Enumerate() (ctxs [][]int, exceeded, interrupted bool) {
	ctxs, out := p.e.enumerateContexts(p.an)
	return ctxs, out.exceeded, out.interrupted
}

// EnumeratePrefix materializes the first limit contexts of the preorder
// sequentially, reporting whether the tree was truncated (has more nodes).
// Unlike Enumerate, exceeding the limit keeps the prefix instead of
// discarding everything — the cluster bench uses this to push a
// budget-exceeding automaton's solve phase past its structural cutoff. The
// sequential walk is what makes the kept prefix deterministic: the parallel
// enumeration only decides *whether* the cutoff fired, not which nodes came
// first.
func (p *FullPlan) EnumeratePrefix(limit int, stop func() bool) (ctxs [][]int, truncated bool) {
	if limit <= 0 {
		return nil, true
	}
	an := p.an
	emit := func(ctx []int) bool {
		if len(ctxs) >= limit {
			truncated = true
			return false
		}
		obsSchemasEnumerated.Inc()
		ctxs = append(ctxs, ctx)
		return true
	}
	if !emit([]int{}) {
		return ctxs, truncated
	}
	visited := 0
	unlocked := make(map[int]bool)
	var rec func(ctx []int) bool
	rec = func(ctx []int) bool {
		for _, gi := range an.alphabet {
			if unlocked[gi] || !p.e.unlockable(an, unlocked, gi) {
				continue
			}
			visited++
			if visited&255 == 0 && stop != nil && stop() {
				return false
			}
			child := make([]int, len(ctx)+1)
			copy(child, ctx)
			child[len(ctx)] = gi
			if !emit(child) {
				return false
			}
			unlocked[gi] = true
			ok := rec(child)
			delete(unlocked, gi)
			if !ok {
				return false
			}
		}
		return true
	}
	rec([]int{})
	return ctxs, truncated
}

// ValidContexts reports whether every context is a sequence of in-range
// alphabet indices — the structural sanity check a worker runs on a shard
// before solving (a deeper mismatch is caught by the AlphabetKeys
// fingerprint).
func (p *FullPlan) ValidContexts(ctxs [][]int) error {
	n := len(p.an.alphabet)
	for i, ctx := range ctxs {
		for _, gi := range ctx {
			if gi < 0 || gi >= n {
				return fmt.Errorf("schema: context %d has guard index %d outside alphabet of %d", i, gi, n)
			}
		}
	}
	return nil
}

// IndexRecord is the deterministic per-schema solve record: everything the
// prefix fold needs, independent of which process produced it.
type IndexRecord struct {
	// Done distinguishes a solved index from one skipped by an early exit
	// (an in-range Sat cancels later work) or an interrupt.
	Done   bool
	Status smt.Status
	Slots  int
	Stats  smt.Stats
	// CE is the certified counterexample when Status == smt.Sat.
	CE *Counterexample
}

// SolveRange solves ctxs (preorder indices base..base+len-1) with the given
// worker count, early-exiting after the range's first Sat exactly like the
// single-box solve phase: every index below the winner is solved, indices
// beyond it may be skipped (their records stay !Done). A Stop hook aborts
// with interrupted=true and a partial record set. Per-index records are
// deterministic regardless of workers — each incremental cursor re-derives
// exactly the symbol ids and simplex states a fresh walk to the context
// would, and solver work is charged by the canonical-walk attribution rule
// (see incremental.go) — so two processes solving the same range produce
// equal records.
func (p *FullPlan) SolveRange(ctxs [][]int, base, workers int, stop func() bool) (recs []IndexRecord, interrupted bool, err error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(ctxs) {
		workers = len(ctxs)
	}
	recs = make([]IndexRecord, len(ctxs))
	if len(ctxs) == 0 {
		return recs, false, nil
	}

	srecs := make([]solveRec, len(ctxs))
	var acc phaseAcc
	stopped := p.e.solveQueue(p.an, ctxs, base, workers, time.Time{}, stop, srecs, &acc)
	for i := range srecs {
		if srecs[i].err != nil {
			// Deterministic error reporting: the preorder-least failing
			// schema among those encountered.
			return nil, false, srecs[i].err
		}
		if srecs[i].done {
			recs[i] = IndexRecord{Done: true, Status: srecs[i].status,
				Slots: srecs[i].slots, Stats: srecs[i].stats, CE: srecs[i].ce}
		}
	}
	return recs, stopped, nil
}

// FoldRecords joins complete per-index records into the Result a single-box
// full-enumeration run over the same preorder produces. The records must
// cover the deterministic prefix: every index up to and including the first
// Sat (or all indices when no Sat exists) must be Done, or an error is
// returned — an incomplete prefix means the caller's bookkeeping lost a
// shard, and folding it anyway would fabricate a nondeterministic verdict.
func FoldRecords(query string, recs []IndexRecord) (Result, error) {
	res := Result{Query: query, Mode: FullEnumeration}
	minSat := -1
	for i := range recs {
		if recs[i].Done && recs[i].Status == smt.Sat {
			minSat = i
			break
		}
	}
	totalLen := 0
	unknown := false
	fold := func(i int) {
		res.Schemas++
		totalLen += recs[i].Slots
		res.Solver.Add(recs[i].Stats)
		if recs[i].Status == smt.Unknown {
			unknown = true
		}
	}
	if minSat >= 0 {
		for i := 0; i <= minSat; i++ {
			if !recs[i].Done {
				return Result{}, fmt.Errorf("schema: fold prefix incomplete at index %d (Sat at %d)", i, minSat)
			}
			fold(i)
		}
		if recs[minSat].CE == nil {
			return Result{}, fmt.Errorf("schema: Sat record at index %d carries no counterexample", minSat)
		}
		res.Outcome = spec.Violated
		res.CE = recs[minSat].CE
	} else {
		for i := range recs {
			if !recs[i].Done {
				return Result{}, fmt.Errorf("schema: fold incomplete at index %d with no Sat", i)
			}
			fold(i)
		}
		if unknown {
			res.Outcome = spec.Budget
		} else {
			res.Outcome = spec.Holds
		}
	}
	if res.Schemas > 0 {
		res.AvgLen = float64(totalLen) / float64(res.Schemas)
	}
	return res, nil
}

// FoldTruncatedRecords joins records of a truncated preorder prefix (see
// EnumeratePrefix). A Sat inside the prefix is a real certified violation
// and folds exactly like FoldRecords; otherwise the verdict is Budget with
// the same "limit+1" schema count a single-box run reports when its
// structural cutoff fires at len(recs) — solving a prefix can refute but
// never prove, so holds/unknown both stay Budget with the volatile fields
// zeroed.
func FoldTruncatedRecords(query string, recs []IndexRecord) (Result, error) {
	for i := range recs {
		if recs[i].Done && recs[i].Status == smt.Sat {
			return FoldRecords(query, recs[:i+1])
		}
	}
	for i := range recs {
		if !recs[i].Done {
			return Result{}, fmt.Errorf("schema: truncated fold incomplete at index %d", i)
		}
	}
	return Result{
		Query:   query,
		Mode:    FullEnumeration,
		Outcome: spec.Budget,
		Schemas: len(recs) + 1,
	}, nil
}
