package schema

import (
	"testing"

	"repro/internal/models"
	"repro/internal/spec"
)

// TestStatsMergeParallel is the focused audit of the Result stats merge
// under parallel enumeration: every verdict-relevant field — Outcome,
// Schemas, AvgLen, and each smt.Stats component — must be identical between
// a sequential and an 8-worker run. Observational fields (Elapsed, Phases)
// are deliberately excluded: they are wall-clock and scheduling dependent.
// The internal-consistency assertions pin the two easy merge mistakes:
// rebuild double-counting (each schema solves on a fresh encoding, so the
// aggregate must show at least one rebuild per schema but not wildly more
// LP checks than rebuilds would imply) and AvgLen computed from a racing
// counter rather than the post-fold schema count.
func TestStatsMergeParallel(t *testing.T) {
	a := models.BVBroadcast()
	qs, err := models.BVQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		seq := fullCheckAt(t, a, q, 1, 0)
		par := fullCheckAt(t, a, q, 8, 0)

		if par.Outcome != seq.Outcome {
			t.Errorf("%s: outcome %v vs %v", q.Name, par.Outcome, seq.Outcome)
			continue
		}
		if par.Schemas != seq.Schemas {
			t.Errorf("%s: schemas %d vs %d", q.Name, par.Schemas, seq.Schemas)
		}
		if par.AvgLen != seq.AvgLen {
			t.Errorf("%s: avg len %v vs %v", q.Name, par.AvgLen, seq.AvgLen)
		}
		// Compare every solver counter by name so a future Stats field is
		// caught by the exhaustive struct equality below going stale.
		if par.Solver.LPChecks != seq.Solver.LPChecks ||
			par.Solver.Pivots != seq.Solver.Pivots ||
			par.Solver.Rebuilds != seq.Solver.Rebuilds ||
			par.Solver.BBNodes != seq.Solver.BBNodes ||
			par.Solver.CaseSplit != seq.Solver.CaseSplit {
			t.Errorf("%s: solver stats %+v vs %+v", q.Name, par.Solver, seq.Solver)
		}
		if par.Solver != seq.Solver {
			t.Errorf("%s: solver stats structs differ: %+v vs %+v", q.Name, par.Solver, seq.Solver)
		}

		// Internal consistency of the folded aggregate (both runs).
		for _, r := range []Result{seq, par} {
			if r.Outcome == spec.Budget {
				continue
			}
			if r.Schemas > 0 && r.AvgLen <= 0 {
				t.Errorf("%s: %d schemas but avg len %v", q.Name, r.Schemas, r.AvgLen)
			}
			// The incremental walker's canonical attribution charges the base
			// tableau build (the only unconditional from-scratch rebuild) to
			// preorder index 0. Schemas under a rationally-infeasible guard
			// level resolve with zero charged LP checks, so the only solid
			// floors are: at least one rebuild and one LP check in total (the
			// base build), and never more rebuilds than checks. Double-folding
			// a record would break the parallel==sequential equality above;
			// folding zero records breaks these floors.
			if r.Schemas > 0 && (r.Solver.Rebuilds < 1 || r.Solver.LPChecks < 1) {
				t.Errorf("%s: %d rebuilds / %d LP checks for %d schemas, want >= 1 each (base build)",
					q.Name, r.Solver.Rebuilds, r.Solver.LPChecks, r.Schemas)
			}
			if r.Solver.LPChecks < r.Solver.Rebuilds {
				t.Errorf("%s: %d LP checks < %d rebuilds", q.Name, r.Solver.LPChecks, r.Solver.Rebuilds)
			}
		}
	}
}
