package schema

import (
	"testing"

	"repro/internal/models"
	"repro/internal/spec"
)

// TestStatsMergeParallel is the focused audit of the Result stats merge
// under parallel enumeration: every verdict-relevant field — Outcome,
// Schemas, AvgLen, and each smt.Stats component — must be identical between
// a sequential and an 8-worker run. Observational fields (Elapsed, Phases)
// are deliberately excluded: they are wall-clock and scheduling dependent.
// The internal-consistency assertions pin the two easy merge mistakes:
// rebuild double-counting (each schema solves on a fresh encoding, so the
// aggregate must show at least one rebuild per schema but not wildly more
// LP checks than rebuilds would imply) and AvgLen computed from a racing
// counter rather than the post-fold schema count.
func TestStatsMergeParallel(t *testing.T) {
	a := models.BVBroadcast()
	qs, err := models.BVQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		seq := fullCheckAt(t, a, q, 1, 0)
		par := fullCheckAt(t, a, q, 8, 0)

		if par.Outcome != seq.Outcome {
			t.Errorf("%s: outcome %v vs %v", q.Name, par.Outcome, seq.Outcome)
			continue
		}
		if par.Schemas != seq.Schemas {
			t.Errorf("%s: schemas %d vs %d", q.Name, par.Schemas, seq.Schemas)
		}
		if par.AvgLen != seq.AvgLen {
			t.Errorf("%s: avg len %v vs %v", q.Name, par.AvgLen, seq.AvgLen)
		}
		// Compare every solver counter by name so a future Stats field is
		// caught by the exhaustive struct equality below going stale.
		if par.Solver.LPChecks != seq.Solver.LPChecks ||
			par.Solver.Pivots != seq.Solver.Pivots ||
			par.Solver.Rebuilds != seq.Solver.Rebuilds ||
			par.Solver.BBNodes != seq.Solver.BBNodes ||
			par.Solver.CaseSplit != seq.Solver.CaseSplit {
			t.Errorf("%s: solver stats %+v vs %+v", q.Name, par.Solver, seq.Solver)
		}
		if par.Solver != seq.Solver {
			t.Errorf("%s: solver stats structs differ: %+v vs %+v", q.Name, par.Solver, seq.Solver)
		}

		// Internal consistency of the folded aggregate (both runs).
		for _, r := range []Result{seq, par} {
			if r.Outcome == spec.Budget {
				continue
			}
			if r.Schemas > 0 && r.AvgLen <= 0 {
				t.Errorf("%s: %d schemas but avg len %v", q.Name, r.Schemas, r.AvgLen)
			}
			// Every schema is solved on a fresh encoding whose first LP check
			// is a from-scratch build, so a correctly folded aggregate has at
			// least one rebuild — and at least one LP check — per schema.
			// Double-folding a record would break the parallel==sequential
			// equality above; folding zero records breaks this floor.
			if r.Schemas > 0 && r.Solver.Rebuilds < r.Schemas {
				t.Errorf("%s: %d rebuilds for %d schemas, want >= one per schema", q.Name, r.Solver.Rebuilds, r.Schemas)
			}
			if r.Solver.LPChecks < r.Solver.Rebuilds {
				t.Errorf("%s: %d LP checks < %d rebuilds", q.Name, r.Solver.LPChecks, r.Solver.Rebuilds)
			}
		}
	}
}
