// Package schema implements the parameterized model checker of the paper:
// the stand-in for ByMC. It decides spec.Query counterexample problems over
// threshold automata for ALL parameter valuations admitted by the resilience
// condition, using the schema method of Konnov et al. (POPL'17) that the
// paper runs:
//
//   - all guards are rising, so along any execution the set of unlocked
//     guards only grows; a *schema* fixes the order in which guards unlock
//     and slices the execution into segments with a constant guard context;
//   - within a segment every enabled rule fires a nonnegative accelerated
//     factor, in topological order of the (DAG) automaton, which realizes
//     any interleaving;
//   - each schema becomes a quantifier-free linear-integer-arithmetic
//     query over parameters, initial counters and acceleration factors,
//     discharged by internal/smt.
//
// Two modes are provided. FullEnumeration enumerates ordered subsets of the
// guard alphabet (the original POPL'17 scheme — exact, but the schema count
// explodes with the number of guards: the fate of the naive automaton in
// Table 2). Staged builds a single dependency-staged schema and discharges
// guard obligations and justice requirements by model-guided lazy case
// splitting (the Para2-style optimization that makes the simplified
// automaton check in seconds).
//
// Every counterexample is replayed on the concrete counter system
// (internal/counter) and re-certified against the query before being
// reported.
package schema

import (
	"fmt"
	"time"

	"repro/internal/counter"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/ta"
)

// Mode selects the schema enumeration strategy.
type Mode int

const (
	// FullEnumeration enumerates ordered guard subsets (exact, explodes).
	FullEnumeration Mode = iota + 1
	// Staged uses one dependency-staged schema with lazy case splitting.
	Staged
)

func (m Mode) String() string {
	switch m {
	case FullEnumeration:
		return "full"
	case Staged:
		return "staged"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures an Engine.
type Options struct {
	Mode Mode
	// MaxSchemas bounds full enumeration (0 = 100,000, the paper's cutoff).
	MaxSchemas int
	// MaxSplits bounds lazy case splitting per schema (0 = 65,536).
	MaxSplits int
	// Timeout bounds one Check call (0 = no timeout).
	Timeout time.Duration
	// Stop, when set, is polled inside the schema enumeration and the SMT
	// case-splitting and branch-and-bound searches; a true return aborts the
	// check with a Budget outcome. This is the cooperative-interrupt hook: a
	// signal handler flips a flag, the engine winds down at the next poll
	// and partial results survive.
	Stop func() bool
	// Workers sets the number of concurrent schema solvers used by full
	// enumeration (0 or 1 = sequential). Schemas are independent LIA
	// queries, so the enumeration tree is embarrassingly parallel; results
	// are deterministic regardless of the worker count — same outcome, same
	// schema count, and the lexicographically-least counterexample context
	// (see parallel.go for the argument).
	Workers int
	// ExtraPasses adds safety-margin passes to staged schemas (default 1).
	ExtraPasses int
	// Trace, when non-nil, receives structured span events: one "query"
	// span per Check, one "schema" event per discharged schema with encode
	// and solve durations. Purely observational — a nil tracer costs one
	// pointer check per emission point and tracing never affects verdicts.
	Trace *obs.Tracer

	// freshSolves disables the incremental prefix-sharing walker and encodes
	// every full-mode schema from scratch (the pre-incremental strategy).
	// Unexported on purpose: it exists for in-package cross-validation tests
	// and benchmarks only, and being invisible to vcache.ConfigOf it can
	// never leak strategy-relative solver statistics into cache keys.
	freshSolves bool
}

// Result reports the verdict for one query.
type Result struct {
	Query   string
	Mode    Mode
	Outcome spec.Outcome
	// Schemas counts enumerated schemas (FullEnumeration) or explored case
	// splits (Staged) — the "# schemas" column of Table 2.
	Schemas int
	// AvgLen is the average schema length in rule slots — the "avg length"
	// column of Table 2.
	AvgLen  float64
	Elapsed time.Duration
	// CE is the certified counterexample when Outcome == Violated.
	CE *Counterexample
	// Solver aggregates the SMT effort behind the verdict (LP runs, simplex
	// pivots, warm-start rebuilds, branch-and-bound nodes, case splits).
	Solver smt.Stats
	// Phases breaks the check into encode/solve/fold wall-clock time. The
	// values are observational: with Workers > 1 the encode and solve
	// components sum concurrent work across workers and vary run to run, so
	// they must never feed a verdict or a deterministic report field.
	Phases PhaseTimings
}

// PhaseTimings is the per-phase wall-clock breakdown of one check: Encode
// covers schema construction (enumeration plus constraint emission), Solve
// the SMT searches, Fold the deterministic prefix join.
type PhaseTimings struct {
	Encode time.Duration
	Solve  time.Duration
	Fold   time.Duration
}

// Add accumulates another check's phase breakdown into t.
func (t *PhaseTimings) Add(o PhaseTimings) {
	t.Encode += o.Encode
	t.Solve += o.Solve
	t.Fold += o.Fold
}

// Counterexample is a concrete violating execution.
type Counterexample struct {
	Params map[expr.Sym]int64
	Run    counter.Run
	System *counter.System
	// Schema, for full-enumeration counterexamples, is the ordered guard
	// context (guard keys in unlock order) of the schema that produced the
	// violation — deterministically the lexicographically-least violating
	// context. Staged-mode counterexamples leave it nil.
	Schema []string
}

// Format renders the counterexample for humans.
func (ce *Counterexample) Format() string {
	a := ce.System.TA
	s := fmt.Sprintf("parameters:")
	for _, p := range a.Params {
		s += fmt.Sprintf(" %s=%d", a.Table.Name(p), ce.Params[p])
	}
	return s + "\n" + ce.System.Format(ce.Run)
}

// Engine checks queries against one automaton. Check is safe for
// concurrent use: parallel property checks only share the automaton, whose
// symbol table is concurrency-safe and read-only during checks — every
// encoding interns its fresh variables into a private snapshot (see
// newEncoding), which is also what makes solver effort statistics
// deterministic under parallel enumeration.
type Engine struct {
	ta   *ta.TA // one-round
	opts Options

	baseSyms int // symbol-table length at construction: the snapshot prefix
}

// New builds an engine for the automaton (round-switch rules are stripped
// via OneRound automatically).
func New(a *ta.TA, opts Options) (*Engine, error) {
	oneRound := a.OneRound()
	if err := oneRound.Validate(); err != nil {
		return nil, err
	}
	if _, err := oneRound.TopoOrder(); err != nil {
		return nil, err
	}
	if opts.Mode == 0 {
		opts.Mode = Staged
	}
	if opts.MaxSchemas <= 0 {
		opts.MaxSchemas = 100_000
	}
	if opts.MaxSplits <= 0 {
		opts.MaxSplits = 1 << 16
	}
	if opts.ExtraPasses <= 0 {
		// Negative margins would undercut the staged soundness bound.
		opts.ExtraPasses = 1
	}
	return &Engine{ta: oneRound, opts: opts, baseSyms: oneRound.Table.Len()}, nil
}

// TA returns the (one-round) automaton the engine checks.
func (e *Engine) TA() *ta.TA { return e.ta }

// Opts returns the engine's resolved options (defaults applied by New).
// The result cache derives its keys from the verdict-relevant fields, so
// two engines with the same resolved options are interchangeable.
func (e *Engine) Opts() Options { return e.opts }

// Check decides the query.
func (e *Engine) Check(q *spec.Query) (Result, error) {
	start := time.Now()
	if err := q.Validate(e.ta); err != nil {
		return Result{}, err
	}
	res := Result{Query: q.Name, Mode: e.opts.Mode}
	endSpan := e.opts.Trace.Start("query", q.Name)
	var err error
	switch e.opts.Mode {
	case FullEnumeration:
		err = e.checkFull(q, &res, start)
	case Staged:
		err = e.checkStaged(q, &res, start)
	default:
		err = fmt.Errorf("schema: unknown mode %v", e.opts.Mode)
	}
	res.Elapsed = time.Since(start)
	endSpan(map[string]int64{
		"outcome":  int64(res.Outcome),
		"schemas":  int64(res.Schemas),
		"solve_ns": int64(res.Phases.Solve),
	})
	if err != nil {
		return Result{}, err
	}
	return res, nil
}
