package schema

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/expr"
	"repro/internal/spec"
	"repro/internal/ta"
)

// certify re-checks every condition of the query against a concrete replayed
// trace, independently of the SMT encoding.
func certify(sys *counter.System, q *spec.Query, trace []counter.Config) error {
	if len(trace) == 0 {
		return fmt.Errorf("empty trace")
	}
	a := sys.TA
	final := trace[len(trace)-1]

	valAt := func(c counter.Config) func(expr.Sym) int64 {
		return func(s expr.Sym) int64 {
			for i, sh := range a.Shared {
				if sh == s {
					return c.V[i]
				}
			}
			return sys.Params[s]
		}
	}

	for _, l := range q.InitEmpty {
		if trace[0].K[l] != 0 {
			return fmt.Errorf("InitEmpty violated at %s", a.Locations[l].Name)
		}
	}
	for _, l := range q.GlobalEmpty {
		for i, c := range trace {
			if c.K[l] != 0 {
				return fmt.Errorf("GlobalEmpty violated at %s (frame %d)", a.Locations[l].Name, i)
			}
		}
	}
	for _, set := range q.VisitNonempty {
		visited := false
		for _, c := range trace {
			if counter.SumLocs(c, set) > 0 {
				visited = true
				break
			}
		}
		if !visited {
			return fmt.Errorf("visit witness %s never satisfied", set.String(a))
		}
	}
	for _, c := range q.FinalShared {
		ok, err := c.Holds(valAt(final))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("final shared condition %s violated", c.String(a.Table))
		}
	}
	for _, set := range q.FinalNonempty {
		if counter.SumLocs(final, set) == 0 {
			return fmt.Errorf("final nonemptiness of %s violated", set.String(a))
		}
	}
	if q.Kind == spec.Liveness {
		val := valAt(final)
		for _, j := range q.Justice {
			triggered := true
			for _, t := range j.Trigger {
				ok, err := t.Holds(val)
				if err != nil {
					return err
				}
				if !ok {
					triggered = false
					break
				}
			}
			if triggered && final.K[j.Loc] > 0 {
				return fmt.Errorf("final configuration is not justice-stable: %s triggered but %s nonempty",
					j.Name, a.Locations[j.Loc].Name)
			}
		}
	}
	return nil
}

// Certify replays a counterexample run on the concrete counter system of the
// (one-round) automaton and re-checks every condition of the query against
// the trace, exactly as the engine does before reporting a violation. The
// result cache runs it on every cached Violated entry before trusting it: a
// corrupted or stale counterexample fails the replay and the entry is
// treated as a miss — a wrong verdict can never be served from disk.
func Certify(a *ta.TA, q *spec.Query, params map[expr.Sym]int64, run counter.Run) (*counter.System, error) {
	sysTA := a
	if q.RelaxResilience != nil {
		sysTA = a.WithResilience(q.RelaxResilience)
	}
	sys, err := counter.NewSystem(sysTA, params)
	if err != nil {
		return nil, err
	}
	trace, err := sys.Replay(run)
	if err != nil {
		return nil, err
	}
	if err := certify(sys, q, trace); err != nil {
		return nil, err
	}
	return sys, nil
}
