package schema

import (
	"testing"

	"repro/internal/counter"
	"repro/internal/models"
	"repro/internal/spec"
)

// TestBoscoClassicResults checks BOSCO's resilience trichotomy with the
// parameterized engine:
//
//   - Lemma 1 holds for all n > 3t (a fast decision forces everyone onto the
//     same value);
//   - weakly one-step termination holds for n > 5t with f = 0;
//   - strongly one-step termination holds for n > 7t with any f <= t;
//   - in the gap (n > 5t, f free), the adopt-instead-of-decide
//     counterexample exists, and its parameters land in 5t < n <= 7t with
//     f >= 1.
func TestBoscoClassicResults(t *testing.T) {
	a := models.Bosco()
	qs, err := models.BoscoQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, a, Staged)

	want := map[string]spec.Outcome{
		"Lemma1_0":        spec.Holds,
		"Lemma1_1":        spec.Holds,
		"WeaklyOneStep":   spec.Holds,
		"StronglyOneStep": spec.Holds,
		"OneStepGap":      spec.Violated,
	}
	for _, q := range qs {
		res := check(t, e, q)
		if res.Outcome != want[q.Name] {
			msg := ""
			if res.CE != nil {
				msg = "\n" + res.CE.Format()
			}
			t.Errorf("%s: %v, want %v%s", q.Name, res.Outcome, want[q.Name], msg)
			continue
		}
		if q.Name == "OneStepGap" {
			n := res.CE.Params[a.Params[0]]
			tt := res.CE.Params[a.Params[1]]
			f := res.CE.Params[a.Params[2]]
			if n <= 5*tt || n > 7*tt {
				t.Errorf("gap counterexample at n=%d t=%d, want 5t < n <= 7t", n, tt)
			}
			if f < 1 {
				t.Errorf("gap counterexample needs Byzantine votes, got f=%d", f)
			}
		}
	}
}

// TestBoscoExplicitCrossValidation confirms the parameterized verdicts by
// exhaustive enumeration at concrete parameters in each regime.
func TestBoscoExplicitCrossValidation(t *testing.T) {
	a := models.Bosco()
	qs, err := models.BoscoQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]spec.Query{}
	for _, q := range qs {
		byName[q.Name] = q
	}

	cases := []struct {
		query   string
		n, t, f int64
		want    spec.Outcome
	}{
		{"Lemma1_0", 4, 1, 1, spec.Holds},
		{"Lemma1_0", 7, 2, 2, spec.Holds},
		{"WeaklyOneStep", 6, 1, 0, spec.Holds},
		{"StronglyOneStep", 8, 1, 1, spec.Holds},
		{"OneStepGap", 6, 1, 1, spec.Violated},
		{"OneStepGap", 7, 1, 1, spec.Violated},
		{"OneStepGap", 8, 1, 1, spec.Holds}, // n > 7t: no gap at this instance
	}
	for _, c := range cases {
		q := byName[c.query]
		sys := a
		if q.RelaxResilience != nil {
			sys = a.WithResilience(q.RelaxResilience)
		}
		csys, err := counter.NewSystem(sys, counter.ParamsFor(a, c.n, c.t, c.f))
		if err != nil {
			t.Fatalf("%s n=%d t=%d f=%d: %v", c.query, c.n, c.t, c.f, err)
		}
		res, err := counter.CheckQueryExplicit(csys, &q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != c.want {
			t.Errorf("%s n=%d t=%d f=%d: explicit %v, want %v", c.query, c.n, c.t, c.f, res.Outcome, c.want)
		}
	}
}
