package schema

import (
	"math"
	"math/big"
	"sort"
	"time"

	"repro/internal/expr"
	"repro/internal/smt"
)

// This file implements the incremental full-mode solver: one long-lived
// encoding+solver per worker walks its shard of the guard-context tree in
// preorder, pushing a scope before asserting a guard segment's delta
// constraints and popping when backtracking to a sibling, so schemas reuse
// the simplex state of their shared prefix instead of re-encoding and
// re-phase-one-ing it from scratch (solver.Push snapshots the tableau
// lazily, so an untouched prefix basis is never copied).
//
// Determinism. A schema's record must be byte-identical at any worker count
// and chunking, so everything that feeds a record is made a function of the
// context path alone:
//
//   - symbol ids: pop truncates the encoding's private symbol table, so a
//     cursor descending to context c interns exactly the ids a fresh walk
//     to c would (ids order simplex pivoting via Bland's rule);
//   - tableau state: the basis entering a level is produced by the same
//     deterministic pivot sequence from the same parent basis, whether the
//     parent was just replayed or has been held since the previous index;
//   - charged stats: see solveAt — each schema is charged the solver work
//     its visit adds in the canonical workers=1 walk (the push of its final
//     guard level plus its query solve; the root also absorbs the base
//     check), and chunk-boundary prefix replays are deliberately uncharged.

// fullCursor is one worker's stateful walk of the guard-context tree.
type fullCursor struct {
	e        *Engine
	an       *analysis
	enc      *encoding
	path     []int        // guard indices currently pushed, in order
	unlocked map[int]bool // set view of path
	baseDone bool         // base-segment warm check performed
	// unsatDepth is len(path) at the level whose rational check came back
	// Unsat, or -1. The level constraints are a subset of every descendant
	// schema's constraint set, so the whole subtree is Unsat: deeper levels
	// skip their checks and solveAt returns Unsat without a query solve —
	// the dominant saving on trees whose guard prefixes are mostly
	// infeasible (a fresh strategy re-proves that infeasibility from
	// scratch once per schema).
	unsatDepth int
}

// newFullCursor builds the shared base of every schema: the resilience and
// initial-distribution constraints plus the level-0 segment.
func (e *Engine) newFullCursor(an *analysis, deadline time.Time) (*fullCursor, error) {
	enc, err := e.newEncoding(an)
	if err != nil {
		return nil, err
	}
	enc.deadline = deadline
	cur := &fullCursor{e: e, an: an, enc: enc, unlocked: make(map[int]bool), unsatDepth: -1}
	if err := enc.addSegment(cur.unlocked); err != nil {
		return nil, err
	}
	return cur, nil
}

func commonPrefixLen(a, b []int) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

func (cur *fullCursor) popLevel() {
	gi := cur.path[len(cur.path)-1]
	cur.path = cur.path[:len(cur.path)-1]
	delete(cur.unlocked, gi)
	cur.enc.pop()
	if cur.unsatDepth > len(cur.path) {
		cur.unsatDepth = -1 // the Unsat-detecting level was popped
	}
}

// pushLevel opens one guard segment: the guard becomes true at this
// boundary (its increments happened in the preceding segments), then every
// rule enabled under the grown unlocked set fires an accelerated factor.
func (cur *fullCursor) pushLevel(gi int) error {
	enc := cur.enc
	enc.push()
	cur.path = append(cur.path, gi)
	cur.unlocked[gi] = true
	if err := enc.assertGuardNow(cur.an.guards[gi].c); err != nil {
		return err
	}
	if err := enc.addSegment(cur.unlocked); err != nil {
		return err
	}
	obsLevelPushes.Inc()
	if cur.unsatDepth >= 0 {
		// An ancestor level is already rationally infeasible; the segment is
		// still encoded (slot counts feed the deterministic records) but no
		// solver work can change the verdict down here.
		return nil
	}
	// Pin a warm basis at this level. solver.Pop restores the lp snapshot
	// taken at the matching Push, so any warming done inside a query scope
	// never escapes it; without this check every schema in the subtree
	// would re-solve the whole prefix from the base tableau. An Unsat
	// answer condemns the subtree (see unsatDepth).
	st, rm, err := enc.solver.CheckRational()
	if err != nil {
		return err
	}
	if st == smt.Unsat {
		cur.unsatDepth = len(cur.path)
		obsUnsatLevels.Inc()
		return nil
	}
	if st == smt.Sat {
		return cur.probeBounds(rm)
	}
	return nil
}

// maxBoundProbes caps the per-level probing: only the first fractional
// variables (in symbol order) of the level's relaxed model are probed.
// Probing is speculative work — two probes capture the variables the
// branch-and-bound searches below would split on first while keeping the
// level push cheap.
const maxBoundProbes = 2

// probeBounds reuses branch-and-bound bounds across the sibling schemas of
// a subtree: for a variable x with fractional relaxed value v, rationally
// refuting x <= floor(v) proves that every integer point of the level
// polytope has x >= floor(v)+1, so that cut is asserted at the level scope
// and the whole subtree inherits the tightened relaxation the first
// branch-and-bound below would otherwise re-derive per schema (dually for
// the upper side). The cut removes only non-integer points, so integer
// verdicts are unchanged. Probe order and count are fixed by symbol order,
// keeping the resulting solver state a function of the context path.
func (cur *fullCursor) probeBounds(rm smt.RatModel) error {
	var fracs []expr.Sym
	for s, v := range rm {
		if !v.IsInt() {
			fracs = append(fracs, s)
		}
	}
	if len(fracs) == 0 {
		return nil
	}
	sort.Slice(fracs, func(i, j int) bool { return fracs[i] < fracs[j] })
	if len(fracs) > maxBoundProbes {
		fracs = fracs[:maxBoundProbes]
	}
	sv := cur.enc.solver
	for _, s := range fracs {
		// Denominators are positive, so Div (Euclidean) is the floor.
		f := new(big.Int).Div(rm[s].Num(), rm[s].Denom())
		if !f.IsInt64() || f.Int64() == math.MaxInt64 {
			continue // cut coefficients would overflow; skip, never guess
		}
		floor := f.Int64()
		le, err := expr.Le(expr.Var(s), expr.NewLin(floor))
		if err != nil {
			return err
		}
		ge, err := expr.Ge(expr.Var(s), expr.NewLin(floor+1))
		if err != nil {
			return err
		}
		down, err := cur.probe(le)
		if err != nil {
			return err
		}
		if down == smt.Unsat {
			sv.Assert(ge)
			obsBoundCuts.Inc()
			continue
		}
		up, err := cur.probe(ge)
		if err != nil {
			return err
		}
		if up == smt.Unsat {
			sv.Assert(le)
			obsBoundCuts.Inc()
		}
	}
	return nil
}

// probe checks the constraint's rational feasibility in a scratch scope.
func (cur *fullCursor) probe(c expr.Constraint) (smt.Status, error) {
	sv := cur.enc.solver
	sv.Push()
	sv.Assert(c)
	st, _, err := sv.CheckRational()
	sv.Pop()
	return st, err
}

// solveAt seeks the cursor to ctx (preorder index idx) and discharges the
// schema's query conditions inside a scratch scope, leaving the level state
// warm for the next index. The returned stats are the deterministic
// per-schema charge: the work this schema's visit adds in the canonical
// workers=1 preorder walk. Concretely, that is the query-scope solve plus
// the push of the schema's final guard level (preorder visits every node by
// pushing exactly its last guard), plus — for index 0 only — the one-time
// base-segment check. Prefix levels re-pushed because this cursor started
// mid-preorder were already charged to ancestor indices by the canonical
// walk, so they are tracked by obsLevelReplays and excluded, which is what
// keeps records byte-identical at any worker count.
func (cur *fullCursor) solveAt(ctx []int, idx int, acc *phaseAcc) (smt.Status, *Counterexample, int, smt.Stats, error) {
	enc := cur.enc
	var charged smt.Stats
	encStart := time.Now()

	if !cur.baseDone {
		before := enc.solver.Stats
		if _, _, err := enc.solver.CheckRational(); err != nil {
			return 0, nil, 0, smt.Stats{}, err
		}
		cur.baseDone = true
		if idx == 0 {
			charged.Add(enc.solver.Stats.Diff(before))
		}
	}

	p := commonPrefixLen(cur.path, ctx)
	for len(cur.path) > p {
		cur.popLevel()
	}
	for li := p; li < len(ctx); li++ {
		last := li == len(ctx)-1
		var before smt.Stats
		if last {
			before = enc.solver.Stats
		} else {
			obsLevelReplays.Inc()
		}
		if err := cur.pushLevel(ctx[li]); err != nil {
			return 0, nil, 0, smt.Stats{}, err
		}
		if last {
			charged.Add(enc.solver.Stats.Diff(before))
		}
	}
	slots := len(enc.slots)

	if cur.unsatDepth >= 0 {
		// The guard prefix is rationally infeasible, so the schema — its
		// constraints are a superset — is Unsat with no further solver work.
		// Deterministic at any worker count: whichever cursor reaches this
		// context pushes the same levels, detects Unsat at the same depth
		// (the check runs at the shallowest Unsat level only), and charges
		// this schema exactly the work of its own final-level push.
		encodeDur := time.Since(encStart)
		acc.encode.Add(encodeDur.Nanoseconds())
		cur.e.opts.Trace.Emit("schema", "solve", map[string]int64{
			"index":     int64(idx),
			"slots":     int64(slots),
			"status":    int64(smt.Unsat),
			"encode_ns": encodeDur.Nanoseconds(),
			"solve_ns":  0,
			"bb_nodes":  int64(charged.BBNodes),
		})
		return smt.Unsat, nil, slots, charged, nil
	}

	enc.push()
	before := enc.solver.Stats
	err := enc.assertQueryConditions()
	encodeDur := time.Since(encStart)
	acc.encode.Add(encodeDur.Nanoseconds())

	var st smt.Status
	var ce *Counterexample
	solveStart := time.Now()
	if err == nil {
		st, ce, err = enc.solve()
	}
	solveDur := time.Since(solveStart)
	acc.solve.Add(solveDur.Nanoseconds())
	enc.pop()
	if err != nil {
		return 0, nil, 0, smt.Stats{}, err
	}
	charged.Add(enc.solver.Stats.Diff(before))

	cur.e.opts.Trace.Emit("schema", "solve", map[string]int64{
		"index":     int64(idx),
		"slots":     int64(slots),
		"status":    int64(st),
		"encode_ns": encodeDur.Nanoseconds(),
		"solve_ns":  solveDur.Nanoseconds(),
		"bb_nodes":  int64(charged.BBNodes),
	})
	if ce != nil {
		for _, gi := range ctx {
			ce.Schema = append(ce.Schema, cur.an.guards[gi].key)
		}
	}
	return st, ce, slots, charged, nil
}
