package schema

import "repro/internal/obs"

// Observational-only instrumentation (see internal/obs): racing global
// counters and gauges, never folded into verdicts or deterministic report
// fields — those come from the per-index record fold in parallel.go.
var (
	// obsSchemasEnumerated counts contexts materialized by the structural
	// pass; obsSchemasSolved counts contexts actually discharged (the two
	// diverge when a counterexample cancels in-flight work).
	obsSchemasEnumerated = obs.Default.Counter("schema", "schemas_enumerated")
	obsSchemasSolved     = obs.Default.Counter("schema", "schemas_solved")
	// obsTreeSplits counts frontier-split events of the parallel structural
	// pass (subtree tasks fissioned for load balance).
	obsTreeSplits = obs.Default.Counter("schema", "tree_splits")
	// obsDeadlinePolls counts Deadline/Stop consultations of the solve
	// queue's claim loop (strided; the per-node SMT polls are counted
	// separately under the smt subsystem).
	obsDeadlinePolls = obs.Default.Counter("schema", "deadline_polls")
	// obsQueueDepth tracks the schemas still unclaimed in the solve queue.
	obsQueueDepth = obs.Default.Gauge("schema", "queue_depth")
	// obsFoldNS records the duration of each deterministic prefix fold.
	obsFoldNS = obs.Default.Histogram("schema", "fold_ns")
	// obsLevelPushes counts guard segments pushed by incremental cursors;
	// obsLevelReplays counts the subset re-pushed only to rebuild a prefix a
	// sibling cursor already had (chunk-boundary replay — pure overhead, so
	// the ratio replays/pushes measures how much sharing the chunking loses).
	obsLevelPushes  = obs.Default.Counter("schema", "level_pushes")
	obsLevelReplays = obs.Default.Counter("schema", "level_replays")
	// obsBoundCuts counts integer-entailed bound cuts asserted at a level
	// after a rational probe refuted one side of a fractional variable.
	obsBoundCuts = obs.Default.Counter("schema", "bound_cuts")
	// obsUnsatLevels counts levels whose rational check condemned their
	// whole subtree (every descendant schema resolved without solver work).
	obsUnsatLevels = obs.Default.Counter("schema", "unsat_levels")
)
