package schema

import (
	"time"

	"repro/internal/smt"
	"repro/internal/spec"
)

// checkStaged builds a single dependency-staged schema and discharges it
// with lazy case splitting (the Para2-style optimization).
//
// The schema has P passes, where P = (number of rule-gating guards that can
// unlock after the start) + 1 + ExtraPasses. Every execution of a rising-
// guard DAG automaton has at most that many unlock phases; within a phase
// any interleaving reorders into one topological pass with accelerated
// factors. Guard truth is not fixed by the schema: each firing carries the
// clause "factor = 0 OR guard holds here", so a single schema covers every
// unlock order.
func (e *Engine) checkStaged(q *spec.Query, res *Result, start time.Time) error {
	encStart := time.Now()
	var deadline time.Time
	if e.opts.Timeout > 0 {
		deadline = start.Add(e.opts.Timeout)
	}
	an, err := e.analyze(q, deadline)
	if err != nil {
		return err
	}
	enc, err := e.newEncoding(an)
	if err != nil {
		return err
	}
	enc.deadline = deadline

	// Pass count: one topological pass per *backward* guard unlock plus the
	// base pass (forward unlocks happen within a pass: the incrementing
	// firings precede the gated ones in topological order), capped by the
	// classic guards+1 bound, plus a safety margin cross-validated against
	// the explicit-state checker and the full-enumeration mode.
	passes := an.backwardGuards + 1
	if cap := an.gatingGuards + 1; passes > cap {
		passes = cap
	}
	passes += e.opts.ExtraPasses

	reach := an.reachAt(len(an.reachByLevel)) // fixpoint reachability
	for p := 0; p < passes; p++ {
		for i, ri := range an.rules {
			if an.ruleLevel[i] < 0 {
				continue // guard can never unlock
			}
			if !reach[e.ta.Rules[ri].From] {
				continue
			}
			if err := enc.addSlot(ri, true); err != nil {
				return err
			}
		}
	}
	if err := enc.assertQueryConditions(); err != nil {
		return err
	}
	res.Phases.Encode = time.Since(encStart)

	solveStart := time.Now()
	st, ce, err := enc.solve()
	res.Phases.Solve = time.Since(solveStart)
	if err != nil {
		return err
	}
	e.opts.Trace.Emit("schema", "staged", map[string]int64{
		"slots":    int64(len(enc.slots)),
		"status":   int64(st),
		"solve_ns": res.Phases.Solve.Nanoseconds(),
	})
	res.Schemas = enc.solver.Stats.CaseSplit
	res.AvgLen = float64(len(enc.slots))
	res.Solver = enc.solver.Stats
	switch st {
	case smt.Sat:
		res.Outcome = spec.Violated
		res.CE = ce
	case smt.Unsat:
		res.Outcome = spec.Holds
	default:
		res.Outcome = spec.Budget
	}
	return nil
}
