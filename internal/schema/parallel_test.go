package schema

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/spec"
	"repro/internal/ta"
)

// refEnumerate is an independent reference implementation of the ordered
// guard-context enumeration: plain recursive DFS over the alphabet with an
// explicit copy at every emit. The production enumerator (tasked, sharded,
// cancellable) must produce exactly this list in exactly this order.
func refEnumerate(e *Engine, an *analysis, limit int) ([][]int, bool) {
	var out [][]int
	exceeded := false
	var rec func(ctx []int, unlocked map[int]bool)
	rec = func(ctx []int, unlocked map[int]bool) {
		if exceeded {
			return
		}
		if len(out) >= limit {
			exceeded = true
			return
		}
		out = append(out, append([]int(nil), ctx...))
		for _, gi := range an.alphabet {
			if unlocked[gi] || !e.unlockable(an, unlocked, gi) {
				continue
			}
			child := append(append([]int(nil), ctx...), gi)
			unlocked[gi] = true
			rec(child, unlocked)
			delete(unlocked, gi)
			if exceeded {
				return
			}
		}
	}
	rec(nil, map[int]bool{})
	return out, exceeded
}

func ctxKey(ctx []int) string { return fmt.Sprint(ctx) }

// TestEnumerateContextsMatchesReference checks the materialized context list
// against the reference enumerator at several worker counts: same contexts,
// same preorder, no duplicates. This is also the regression test for the
// context-aliasing bug: the old walk passed append(ctx, gi) down the
// recursion, so sibling branches could share (and clobber) a backing array;
// corrupt contexts show up here as order/content mismatches.
func TestEnumerateContextsMatchesReference(t *testing.T) {
	automata := []*ta.TA{models.BVBroadcast(), models.SimplifiedConsensus()}
	rng := rand.New(rand.NewSource(42))
	for seed := int64(0); len(automata) < 8 && seed < 50; seed++ {
		a, err := randomTA(rng, fmt.Sprintf("enum%d", seed))
		if err != nil {
			continue
		}
		automata = append(automata, a)
	}
	for _, a := range automata {
		qs := []spec.Query{{Name: "visit", Kind: spec.Safety,
			VisitNonempty: []ta.LocSet{{ta.LocID(0): true}}}}
		for _, q := range qs {
			if err := q.Validate(a); err != nil {
				continue
			}
			for _, workers := range []int{1, 2, 8} {
				e, err := New(a, Options{Mode: FullEnumeration, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				an, err := e.analyze(&q, time.Time{})
				if err != nil {
					t.Fatal(err)
				}
				want, wantExceeded := refEnumerate(e, an, e.opts.MaxSchemas)
				got, outcome := e.enumerateContexts(an)
				if outcome.exceeded != wantExceeded {
					t.Fatalf("%s workers=%d: exceeded=%v, reference says %v",
						a.Name, workers, outcome.exceeded, wantExceeded)
				}
				if wantExceeded {
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("%s workers=%d: %d contexts, reference has %d",
						a.Name, workers, len(got), len(want))
				}
				seen := map[string]bool{}
				for i := range got {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("%s workers=%d: context %d = %v, reference %v",
							a.Name, workers, i, got[i], want[i])
					}
					k := ctxKey(got[i])
					if seen[k] {
						t.Fatalf("%s workers=%d: duplicate context %v", a.Name, workers, got[i])
					}
					seen[k] = true
				}
			}
		}
	}
}

func fullCheckAt(t *testing.T, a *ta.TA, q spec.Query, workers, maxSchemas int) Result {
	t.Helper()
	e, err := New(a, Options{Mode: FullEnumeration, Workers: workers, MaxSchemas: maxSchemas})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Check(&q)
	if err != nil {
		t.Fatalf("check %s at %d workers: %v", q.Name, workers, err)
	}
	return res
}

// sameResult asserts the two runs are observably identical: verdict, schema
// count, average length, solver effort, and (for violations) the
// counterexample's parameters and schema context.
func sameResult(t *testing.T, name string, workers int, base, got Result) {
	t.Helper()
	if got.Outcome != base.Outcome {
		t.Errorf("%s workers=%d: outcome %v, want %v", name, workers, got.Outcome, base.Outcome)
		return
	}
	if got.Schemas != base.Schemas {
		t.Errorf("%s workers=%d: %d schemas, want %d", name, workers, got.Schemas, base.Schemas)
	}
	if got.AvgLen != base.AvgLen {
		t.Errorf("%s workers=%d: avg len %v, want %v", name, workers, got.AvgLen, base.AvgLen)
	}
	if got.Solver != base.Solver {
		t.Errorf("%s workers=%d: solver stats %+v, want %+v", name, workers, got.Solver, base.Solver)
	}
	if (got.CE == nil) != (base.CE == nil) {
		t.Errorf("%s workers=%d: CE presence %v, want %v", name, workers, got.CE != nil, base.CE != nil)
		return
	}
	if got.CE != nil {
		if !reflect.DeepEqual(got.CE.Params, base.CE.Params) {
			t.Errorf("%s workers=%d: CE params %v, want %v", name, workers, got.CE.Params, base.CE.Params)
		}
		if !reflect.DeepEqual(got.CE.Schema, base.CE.Schema) {
			t.Errorf("%s workers=%d: CE schema %v, want %v", name, workers, got.CE.Schema, base.CE.Schema)
		}
	}
}

// TestParallelDeterminismBV runs every bv-broadcast property (all Holds —
// the full-prefix fold) at 1, 2 and 8 workers and requires byte-identical
// results.
func TestParallelDeterminismBV(t *testing.T) {
	a := models.BVBroadcast()
	qs, err := models.BVQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		base := fullCheckAt(t, a, q, 1, 0)
		for _, workers := range []int{2, 8} {
			sameResult(t, q.Name, workers, base, fullCheckAt(t, a, q, workers, 0))
		}
	}
}

// TestParallelDeterminismViolated exercises the early-cancellation path: a
// violated query must report the same (lexicographically-least) schema
// context and the same counterexample at any worker count.
func TestParallelDeterminismViolated(t *testing.T) {
	a := models.BVBroadcast()
	delivered, err := a.LocSetByName("C0", "CB0", "C01")
	if err != nil {
		t.Fatal(err)
	}
	q := spec.Query{
		Name:          "BV-Just0-no-premise",
		Kind:          spec.Safety,
		VisitNonempty: []ta.LocSet{delivered},
	}
	base := fullCheckAt(t, a, q, 1, 0)
	if base.Outcome != spec.Violated {
		t.Fatalf("outcome %v, want violated", base.Outcome)
	}
	if base.CE == nil || base.CE.Schema == nil {
		t.Fatalf("violated full-mode result must carry the schema context, got %+v", base.CE)
	}
	for _, workers := range []int{2, 8} {
		sameResult(t, q.Name, workers, base, fullCheckAt(t, a, q, workers, 0))
	}
}

// TestParallelDeterminismBudget checks the structural-cutoff path: the naive
// automaton exceeds a small schema budget with the same reported count at any
// worker count.
func TestParallelDeterminismBudget(t *testing.T) {
	a := models.NaiveConsensus()
	qs, err := models.NaiveQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	const limit = 1000
	base := fullCheckAt(t, a, q, 1, limit)
	if base.Outcome != spec.Budget {
		t.Fatalf("outcome %v, want budget", base.Outcome)
	}
	if base.Schemas != limit+1 {
		t.Fatalf("schemas = %d, want %d", base.Schemas, limit+1)
	}
	for _, workers := range []int{2, 8} {
		sameResult(t, q.Name, workers, base, fullCheckAt(t, a, q, workers, limit))
	}
}

// TestParallelDeterminismRandom cross-validates the parallel and sequential
// full enumeration on ~50 random automata with random visit queries.
func TestParallelDeterminismRandom(t *testing.T) {
	trials := 0
	for seed := int64(1000); trials < 50 && seed < 1300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, err := randomTA(rng, fmt.Sprintf("par%d", seed))
		if err != nil {
			continue
		}
		q := spec.Query{Name: "visit", Kind: spec.Safety}
		for k := 0; k <= rng.Intn(2); k++ {
			set := ta.LocSet{}
			for j := 0; j <= rng.Intn(2); j++ {
				set[ta.LocID(rng.Intn(len(a.Locations)))] = true
			}
			q.VisitNonempty = append(q.VisitNonempty, set)
		}
		if err := q.Validate(a); err != nil {
			continue
		}
		trials++
		base := fullCheckAt(t, a, q, 1, 0)
		for _, workers := range []int{2, 8} {
			sameResult(t, a.Name, workers, base, fullCheckAt(t, a, q, workers, 0))
		}
	}
	if trials < 30 {
		t.Fatalf("only %d valid random automata generated", trials)
	}
}

// TestParallelStop checks that a pre-fired Stop winds a full-mode check down
// with a Budget outcome at any worker count instead of hanging or solving.
func TestParallelStop(t *testing.T) {
	a := models.BVBroadcast()
	qs, err := models.BVQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		e, err := New(a, Options{Mode: FullEnumeration, Workers: workers,
			Stop: func() bool { return true }})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Check(&qs[0])
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != spec.Budget {
			t.Errorf("workers=%d: outcome %v, want budget under Stop", workers, res.Outcome)
		}
	}
}
