package schema

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/counter"
	"repro/internal/expr"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/ta"
)

// slot is one accelerated rule firing of a schema.
type slot struct {
	ruleIdx int      // index into e.ta.Rules
	delta   expr.Sym // acceleration factor (>= 0)
}

// encoding translates a schema into a linear-integer-arithmetic problem.
// Location counters and shared variables are kept as symbolic linear
// expressions over the base symbols (parameters, initial counters,
// acceleration factors), so each firing adds only sparse constraints.
type encoding struct {
	e        *Engine
	an       *analysis
	tab      *expr.Table // private snapshot: fresh symbols interned here
	solver   *smt.Solver
	deadline time.Time

	kappa    []expr.Lin // symbolic counter per location
	shared   map[expr.Sym]expr.Lin
	slots    []slot
	initVars map[ta.LocID]expr.Sym

	// lazy-guard bookkeeping: the shared-variable snapshot before each slot,
	// and which slots carry which guard conjuncts.
	snapshots  []map[expr.Sym]expr.Lin
	lazyGuards []pendingGuard

	goalClauses    []smt.Clause
	justiceClauses []smt.Clause

	// marks is the scope stack for push/pop: the incremental full-mode
	// walker opens one scope per guard segment (and one per query solve) so
	// a sibling schema restores the shared prefix instead of re-encoding it.
	marks []encMark
}

// encMark records everything pop must restore alongside the solver scope:
// the private symbol-table length (so re-descending re-interns identical
// ids — ids feed simplex pivot order, see expr.Table.Truncate), the slice
// lengths, and the symbolic counter state. kappa entries and shared values
// are replaced (never mutated in place) by addSlot, so shallow copies pin
// the frame.
type encMark struct {
	syms       int
	slots      int
	lazyGuards int
	goals      int
	justice    int
	kappa      []expr.Lin
	shared     map[expr.Sym]expr.Lin
}

type pendingGuard struct {
	slotIdx int
	key     string
	g       expr.Constraint
}

// push opens a scope: a solver Push plus a mark of all encoder-side state.
// The matching pop restores the encoding to this exact point — including the
// private symbol table, so a later descent re-interns the same names at the
// same ids (simplex pivot order depends on ids, and per-schema determinism
// depends on pivot order).
func (enc *encoding) push() {
	enc.solver.Push()
	enc.marks = append(enc.marks, encMark{
		syms:       enc.tab.Len(),
		slots:      len(enc.slots),
		lazyGuards: len(enc.lazyGuards),
		goals:      len(enc.goalClauses),
		justice:    len(enc.justiceClauses),
		kappa:      append([]expr.Lin(nil), enc.kappa...),
		shared:     enc.snapshotShared(),
	})
}

// pop closes the innermost scope opened by push.
func (enc *encoding) pop() {
	if len(enc.marks) == 0 {
		return
	}
	m := enc.marks[len(enc.marks)-1]
	enc.marks = enc.marks[:len(enc.marks)-1]
	enc.solver.Pop()
	enc.tab.Truncate(m.syms)
	enc.slots = enc.slots[:m.slots]
	enc.snapshots = enc.snapshots[:m.slots]
	enc.lazyGuards = enc.lazyGuards[:m.lazyGuards]
	enc.goalClauses = enc.goalClauses[:m.goals]
	enc.justiceClauses = enc.justiceClauses[:m.justice]
	enc.kappa = m.kappa
	enc.shared = m.shared
}

// addSegment appends one accelerated slot (eager guards) per rule whose
// source location is reachable and whose guard conjuncts are all unlocked —
// one topological segment of a full-mode schema.
func (enc *encoding) addSegment(unlocked map[int]bool) error {
	e := enc.e
	reach := e.reachUnder(enc.an, unlocked)
	for i, ri := range enc.an.rules {
		r := e.ta.Rules[ri]
		if !reach[r.From] {
			continue
		}
		ok := true
		for _, gi := range enc.an.ruleGuards[i] {
			if !unlocked[gi] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if err := enc.addSlot(ri, false); err != nil {
			return err
		}
	}
	return nil
}

// newEncoding sets up the base constraints: resilience, the initial
// distribution of the n-f correct processes over the admissible initial
// locations, and zeroed shared variables.
func (e *Engine) newEncoding(an *analysis) (*encoding, error) {
	// Fresh encoding variables live in a private snapshot of the automaton's
	// table: every encoding of the same schema then assigns them identical
	// symbol ids no matter how many encoders run concurrently, and the shared
	// table stays read-only during checks.
	tab := e.ta.Table.Snapshot(e.baseSyms)
	enc := &encoding{
		e:        e,
		an:       an,
		tab:      tab,
		solver:   smt.NewSolver(tab),
		shared:   make(map[expr.Sym]expr.Lin, len(e.ta.Shared)),
		initVars: make(map[ta.LocID]expr.Sym, len(an.initLocs)),
	}
	enc.solver.AssertAll(an.resilience)

	enc.kappa = make([]expr.Lin, len(e.ta.Locations))
	sum := expr.Lin{}
	for _, l := range an.initLocs {
		x := tab.Intern(fmt.Sprintf("$x.%s", e.ta.Locations[l].Name))
		enc.initVars[l] = x
		enc.kappa[l] = expr.Var(x)
		if err := sum.AddTerm(x, 1); err != nil {
			return nil, err
		}
	}
	// Σ initial counters == n - f.
	eq, err := expr.Eq(sum, e.ta.CorrectCount)
	if err != nil {
		return nil, err
	}
	enc.solver.Assert(eq)

	for _, s := range e.ta.Shared {
		enc.shared[s] = expr.Lin{}
	}
	return enc, nil
}

// at substitutes a shared-variable snapshot into a constraint over shared
// variables and parameters.
func at(c expr.Constraint, snapshot map[expr.Sym]expr.Lin) (expr.Constraint, error) {
	out := c.Clone()
	for s, val := range snapshot {
		if err := out.L.Substitute(s, val); err != nil {
			return expr.Constraint{}, err
		}
	}
	return out, nil
}

// atNow substitutes the current symbolic shared-variable values.
func (enc *encoding) atNow(c expr.Constraint) (expr.Constraint, error) {
	return at(c, enc.shared)
}

func (enc *encoding) snapshotShared() map[expr.Sym]expr.Lin {
	snap := make(map[expr.Sym]expr.Lin, len(enc.shared))
	for s, l := range enc.shared {
		snap[s] = l // Lins are treated as immutable once stored
	}
	return snap
}

// addSlot appends an accelerated firing of the rule. When lazyGuard is set,
// each guard conjunct later contributes the clause "factor = 0 OR conjunct
// holds here" (built in finalizeClauses, so that guard assertions can carry
// their rising-monotonicity implications); otherwise the caller is
// responsible for guard truth (full mode asserts guards at context
// boundaries).
func (enc *encoding) addSlot(ruleIdx int, lazyGuard bool) error {
	e := enc.e
	r := e.ta.Rules[ruleIdx]
	d := enc.tab.Intern(fmt.Sprintf("$d%d.%s", len(enc.slots), r.Name))

	// κ[from] >= δ at this frame.
	avail := enc.kappa[r.From].Clone()
	if err := avail.AddTerm(d, -1); err != nil {
		return err
	}
	enc.solver.Assert(expr.GEZero(avail))

	slotIdx := len(enc.slots)
	enc.snapshots = append(enc.snapshots, enc.snapshotShared())
	if lazyGuard {
		for _, g := range r.Guard {
			enc.lazyGuards = append(enc.lazyGuards, pendingGuard{
				slotIdx: slotIdx,
				key:     g.String(e.ta.Table),
				g:       g,
			})
		}
	}

	// Apply the symbolic update.
	from := enc.kappa[r.From].Clone()
	if err := from.AddTerm(d, -1); err != nil {
		return err
	}
	enc.kappa[r.From] = from
	to := enc.kappa[r.To].Clone()
	if err := to.AddTerm(d, 1); err != nil {
		return err
	}
	enc.kappa[r.To] = to
	for s, inc := range r.Update {
		v := enc.shared[s].Clone()
		if err := v.AddTerm(d, inc); err != nil {
			return err
		}
		enc.shared[s] = v
	}
	enc.slots = append(enc.slots, slot{ruleIdx: ruleIdx, delta: d})
	return nil
}

// assertGuardNow asserts that the guard holds at the current frame (full
// mode context boundaries).
func (enc *encoding) assertGuardNow(g expr.Constraint) error {
	now, err := enc.atNow(g)
	if err != nil {
		return err
	}
	enc.solver.Assert(now)
	return nil
}

// assertQueryConditions adds the query's witness and final-state conditions.
// Call after all slots have been added.
func (enc *encoding) assertQueryConditions() error {
	e := enc.e
	q := enc.an.q

	// InitEmpty: initial counter is zero (locations without an initial
	// counter variable are zero by construction).
	for _, l := range q.InitEmpty {
		if x, ok := enc.initVars[l]; ok {
			enc.solver.Assert(expr.EQZero(expr.Var(x)))
		}
	}
	// GlobalEmpty locations had their incoming rules removed by the
	// analysis; it remains to pin any initial processes to zero.
	for _, l := range q.GlobalEmpty {
		if x, ok := enc.initVars[l]; ok {
			enc.solver.Assert(expr.EQZero(expr.Var(x)))
		}
	}

	// Visit witnesses: initial occupancy of the set plus total inflow from
	// outside is at least one.
	for _, set := range q.VisitNonempty {
		flow := expr.Lin{}
		for l := range set {
			if x, ok := enc.initVars[l]; ok {
				if err := flow.AddTerm(x, 1); err != nil {
					return err
				}
			}
		}
		for _, sl := range enc.slots {
			r := e.ta.Rules[sl.ruleIdx]
			if set[r.To] && !set[r.From] {
				if err := flow.AddTerm(sl.delta, 1); err != nil {
					return err
				}
			}
		}
		if err := flow.AddConst(-1); err != nil {
			return err
		}
		enc.solver.Assert(expr.GEZero(flow))
	}

	// Final shared-variable thresholds.
	for _, c := range q.FinalShared {
		now, err := enc.atNow(c)
		if err != nil {
			return err
		}
		enc.solver.Assert(now)
	}

	// Final nonemptiness of (predecessor-closed) goal sets: asserted as a
	// linear constraint for relaxation tightness AND as a clause so the
	// case split branches on *which* location stays occupied first.
	for _, set := range q.FinalNonempty {
		sum := expr.Lin{}
		var locs []ta.LocID
		for l := range set {
			locs = append(locs, l)
		}
		sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
		var clause smt.Clause
		for _, l := range locs {
			if err := sum.Add(enc.kappa[l]); err != nil {
				return err
			}
			nonzero := enc.kappa[l].Clone()
			if err := nonzero.AddConst(-1); err != nil {
				return err
			}
			clause = append(clause, smt.Lit{C: expr.GEZero(nonzero)})
		}
		if err := sum.AddConst(-1); err != nil {
			return err
		}
		enc.solver.Assert(expr.GEZero(sum))
		if len(clause) > 1 {
			enc.goalClauses = append(enc.goalClauses, clause)
		}
	}

	// Justice: the stuttering extension from the final configuration must be
	// fair — for each requirement, either some trigger conjunct is (and
	// stays) false, or the location has drained.
	if q.Kind == spec.Liveness {
		for _, j := range q.Justice {
			clause := smt.Clause{}
			for _, trig := range j.Trigger {
				now, err := enc.atNow(trig)
				if err != nil {
					return err
				}
				neg, err := now.Negate()
				if err != nil {
					return err
				}
				clause = append(clause, smt.Lit{C: neg})
			}
			clause = append(clause, smt.Lit{C: expr.EQZero(enc.kappa[j.Loc].Clone())})
			enc.justiceClauses = append(enc.justiceClauses, clause)
		}
	}
	return nil
}

// finalizeClauses assembles the clause list: goal clauses first (they shape
// the search), then justice, then the per-firing guard obligations. Each
// guard literal carries implied assertions: a rising guard true at one frame
// is true at every later frame where the same guard is consulted (including
// the final frame), which collapses the per-pass branching.
func (enc *encoding) finalizeClauses() ([]smt.Clause, error) {
	clauses := make([]smt.Clause, 0, len(enc.goalClauses)+len(enc.justiceClauses)+len(enc.lazyGuards))
	clauses = append(clauses, enc.goalClauses...)
	clauses = append(clauses, enc.justiceClauses...)

	// Later frames per guard key, in slot order.
	laterFrames := make(map[string][]int)
	for _, pg := range enc.lazyGuards {
		laterFrames[pg.key] = append(laterFrames[pg.key], pg.slotIdx)
	}

	for _, pg := range enc.lazyGuards {
		sl := enc.slots[pg.slotIdx]
		dZero := expr.GEZero(expr.Term(sl.delta, -1))

		now, err := at(pg.g, enc.snapshots[pg.slotIdx])
		if err != nil {
			return nil, err
		}
		var implied []expr.Constraint
		for _, j := range laterFrames[pg.key] {
			if j <= pg.slotIdx {
				continue
			}
			later, err := at(pg.g, enc.snapshots[j])
			if err != nil {
				return nil, err
			}
			implied = append(implied, later)
		}
		// ... and at the final frame (helps justice clauses that share the
		// guard as a trigger).
		end, err := enc.atNow(pg.g)
		if err != nil {
			return nil, err
		}
		implied = append(implied, end)

		clauses = append(clauses, smt.Clause{
			{C: dZero},
			{C: now, Implied: implied},
		})
	}
	return clauses, nil
}

// solve runs the lazy-clause search and, on Sat, extracts and certifies a
// concrete counterexample.
func (enc *encoding) solve() (smt.Status, *Counterexample, error) {
	clauses, err := enc.finalizeClauses()
	if err != nil {
		return 0, nil, err
	}
	limits := smt.ClauseLimits{
		MaxSplits: enc.e.opts.MaxSplits,
		Stop:      enc.e.opts.Stop,
		Deadline:  enc.deadline, // zero = none; honored down in branch-and-bound
	}
	st, model, err := enc.solver.CheckClauses(clauses, limits)
	if err != nil {
		return 0, nil, err
	}
	if st != smt.Sat {
		return st, nil, nil
	}
	ce, err := enc.extract(model)
	if err != nil {
		return 0, nil, err
	}
	return smt.Sat, ce, nil
}

// extract materializes the SMT model into a counter-system run, replays it,
// and re-certifies every query condition on the concrete trace. A
// counterexample that fails certification indicates an encoder bug and is
// reported as an error, never returned to the caller.
func (enc *encoding) extract(m smt.Model) (*Counterexample, error) {
	e := enc.e
	a := e.ta

	params := make(map[expr.Sym]int64, len(a.Params))
	for _, p := range a.Params {
		params[p] = m.Value(p)
	}
	sysTA := a
	if enc.an.q.RelaxResilience != nil {
		sysTA = a.WithResilience(enc.an.q.RelaxResilience)
	}
	sys, err := counter.NewSystem(sysTA, params)
	if err != nil {
		return nil, fmt.Errorf("schema: extracted parameters invalid: %w", err)
	}

	init := counter.Config{K: make([]int64, len(a.Locations)), V: make([]int64, len(a.Shared))}
	for l, x := range enc.initVars {
		init.K[l] = m.Value(x)
	}
	run := counter.Run{Init: init}
	for _, sl := range enc.slots {
		if f := m.Value(sl.delta); f > 0 {
			run.Steps = append(run.Steps, counter.Step{Rule: sl.ruleIdx, Factor: f})
		}
	}

	trace, err := sys.Replay(run)
	if err != nil {
		return nil, fmt.Errorf("schema: counterexample does not replay: %w\n%s", err, sys.Format(run))
	}
	if err := certify(sys, enc.an.q, trace); err != nil {
		return nil, fmt.Errorf("schema: counterexample fails certification: %w\n%s", err, sys.Format(run))
	}
	return &Counterexample{Params: params, Run: run, System: sys}, nil
}
