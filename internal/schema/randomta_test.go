package schema

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/counter"
	"repro/internal/expr"
	"repro/internal/spec"
	"repro/internal/ta"
)

// randomTA generates a random rising-guard DAG automaton: a handful of
// locations in topological order, forward edges with random threshold
// guards over two shared variables, and random unit increments. This pushes
// the checkers onto structures well outside the paper's three models.
func randomTA(rng *rand.Rand, name string) (*ta.TA, error) {
	b := ta.NewBuilder(name)
	x := b.Shared("x")
	y := b.Shared("y")
	shared := []expr.Sym{x, y}

	nLocs := 4 + rng.Intn(4)
	locs := make([]ta.LocID, nLocs)
	for i := range locs {
		var opts []ta.LocOpt
		if i < 2 {
			opts = append(opts, ta.Initial())
		}
		locs[i] = b.Loc(fmt.Sprintf("L%d", i), opts...)
	}

	thresholds := []expr.Lin{
		b.Lin(1),
		b.Lin(1, ta.LinTerm{Coeff: 1, Sym: b.T()}, ta.LinTerm{Coeff: -1, Sym: b.F()}),
		b.Lin(1, ta.LinTerm{Coeff: 2, Sym: b.T()}, ta.LinTerm{Coeff: -1, Sym: b.F()}),
		b.Lin(0, ta.LinTerm{Coeff: 1, Sym: b.N()}, ta.LinTerm{Coeff: -1, Sym: b.T()}, ta.LinTerm{Coeff: -1, Sym: b.F()}),
	}

	nRules := nLocs + rng.Intn(2*nLocs)
	for r := 0; r < nRules; r++ {
		from := rng.Intn(nLocs - 1)
		to := from + 1 + rng.Intn(nLocs-from-1) // forward edge: DAG by construction
		var opts []ta.RuleOpt
		if rng.Intn(3) > 0 { // guarded with prob 2/3
			v := shared[rng.Intn(2)]
			th := thresholds[rng.Intn(len(thresholds))]
			opts = append(opts, ta.Guarded(b.GeThreshold(v, th)))
		}
		if rng.Intn(2) == 0 {
			opts = append(opts, ta.Inc(shared[rng.Intn(2)]))
		}
		b.Rule(fmt.Sprintf("r%d", r), locs[from], locs[to], opts...)
	}
	return b.Build()
}

// TestRandomAutomataCrossValidation generates random automata and random
// visit queries and requires the staged engine, full enumeration and the
// explicit-state checker to agree — the generalization of the model-specific
// cross-validation to arbitrary rising-guard DAG systems.
func TestRandomAutomataCrossValidation(t *testing.T) {
	instances := [][3]int64{{4, 1, 1}, {4, 1, 0}, {7, 2, 1}}
	if testing.Short() {
		instances = instances[:2]
	}
	trials := 0
	for seed := int64(0); trials < 30 && seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, err := randomTA(rng, fmt.Sprintf("rand%d", seed))
		if err != nil {
			continue // some random automata are structurally invalid; skip
		}
		trials++

		// A random visit query over 1-2 random target sets.
		q := spec.Query{Name: "visit", Kind: spec.Safety}
		for k := 0; k <= rng.Intn(2); k++ {
			set := ta.LocSet{}
			for j := 0; j <= rng.Intn(2); j++ {
				set[ta.LocID(rng.Intn(len(a.Locations)))] = true
			}
			q.VisitNonempty = append(q.VisitNonempty, set)
		}
		if err := q.Validate(a); err != nil {
			continue
		}

		staged := newEngine(t, a, Staged)
		full := newEngine(t, a, FullEnumeration)
		rs, err := staged.Check(&q)
		if err != nil {
			t.Fatalf("seed %d staged: %v", seed, err)
		}
		rf, err := full.Check(&q)
		if err != nil {
			t.Fatalf("seed %d full: %v", seed, err)
		}
		if rs.Outcome != rf.Outcome {
			t.Errorf("seed %d: staged=%v full=%v", seed, rs.Outcome, rf.Outcome)
			continue
		}
		switch rs.Outcome {
		case spec.Holds:
			for _, inst := range instances {
				sys, err := counter.NewSystem(a, counter.ParamsFor(a, inst[0], inst[1], inst[2]))
				if err != nil {
					t.Fatal(err)
				}
				res, err := counter.CheckQueryExplicit(sys, &q, 0)
				if err != nil {
					t.Fatal(err)
				}
				if res.Outcome != spec.Holds {
					t.Errorf("seed %d: parameterized holds, explicit n=%d says %v (query %+v)",
						seed, inst[0], res.Outcome, q)
				}
			}
		case spec.Violated:
			ce := rs.CE
			n, tt, f := ce.Params[a.Params[0]], ce.Params[a.Params[1]], ce.Params[a.Params[2]]
			if n > 10 {
				continue
			}
			sys, err := counter.NewSystem(a, counter.ParamsFor(a, n, tt, f))
			if err != nil {
				t.Fatal(err)
			}
			res, err := counter.CheckQueryExplicit(sys, &q, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome != spec.Violated {
				t.Errorf("seed %d: CE at n=%d t=%d f=%d but explicit says %v\n%s",
					seed, n, tt, f, res.Outcome, ce.Format())
			}
		}
	}
	if trials < 20 {
		t.Fatalf("only %d valid random automata generated", trials)
	}
}

// TestRandomAutomataLiveness repeats the exercise for liveness queries under
// default justice: goal = the sources drained (always predecessor-closed
// sets are chosen by closing under predecessors).
func TestRandomAutomataLiveness(t *testing.T) {
	trials := 0
	for seed := int64(300); trials < 20 && seed < 500; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, err := randomTA(rng, fmt.Sprintf("randlive%d", seed))
		if err != nil {
			continue
		}
		// Goal: a random pred-closed set stays nonempty forever.
		set := ta.LocSet{ta.LocID(rng.Intn(len(a.Locations))): true}
		for changed := true; changed; {
			changed = false
			for _, r := range a.Rules {
				if r.SelfLoop() || r.RoundSwitch {
					continue
				}
				if set[r.To] && !set[r.From] {
					set[r.From] = true
					changed = true
				}
			}
		}
		q := spec.Query{
			Name:          "live",
			Kind:          spec.Liveness,
			FinalNonempty: []ta.LocSet{set},
			Justice:       a.DefaultJustice(),
		}
		if err := q.Validate(a); err != nil {
			continue
		}
		trials++

		staged := newEngine(t, a, Staged)
		rs, err := staged.Check(&q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Cross-check against the explicit justice-stable search.
		sys, err := counter.NewSystem(a, counter.ParamsFor(a, 4, 1, 1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := counter.CheckQueryExplicit(sys, &q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Outcome == spec.Holds && res.Outcome != spec.Holds {
			t.Errorf("seed %d: parameterized holds but explicit n=4 says %v", seed, res.Outcome)
		}
		if rs.Outcome == spec.Violated {
			n := rs.CE.Params[a.Params[0]]
			if n == 4 && rs.CE.Params[a.Params[1]] == 1 && rs.CE.Params[a.Params[2]] == 1 &&
				res.Outcome != spec.Violated {
				t.Errorf("seed %d: CE at n=4,t=1,f=1 but explicit disagrees", seed)
			}
		}
	}
	if trials < 10 {
		t.Fatalf("only %d valid random liveness trials", trials)
	}
}
