package schema

import (
	"testing"

	"repro/internal/models"
	"repro/internal/spec"
)

// benchPrefixSolve measures full-mode solve throughput on the workload the
// incremental walker exists for: a deep preorder prefix of the simplified
// consensus automaton's Inv1 tree (the tree structurally exceeds MaxSchemas,
// so whole-tree checks never reach the solve phase — prefix solving, as the
// cluster bench drives it, is where per-schema cost is paid). workers=1 is
// the canonical walk: every index is one Push away from its predecessor, so
// this is the purest measure of prefix sharing vs from-scratch encoding.
func benchPrefixSolve(b *testing.B, fresh bool) {
	b.Helper()
	a := models.SimplifiedConsensus()
	qs, err := models.SimplifiedQueries(a)
	if err != nil {
		b.Fatal(err)
	}
	var q *spec.Query
	for i := range qs {
		if qs[i].Name == "Inv1_0" {
			q = &qs[i]
		}
	}
	if q == nil {
		b.Fatal("no Inv1_0 query")
	}
	e, err := New(a, Options{Mode: FullEnumeration, freshSolves: fresh})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := e.PlanFull(q)
	if err != nil {
		b.Fatal(err)
	}
	const prefix = 150
	ctxs, _ := plan.EnumeratePrefix(prefix, nil)
	if len(ctxs) != prefix {
		b.Fatalf("prefix has %d contexts, want %d", len(ctxs), prefix)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, interrupted, err := plan.SolveRange(ctxs, 0, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		if interrupted {
			b.Fatal("interrupted")
		}
		for j := range recs {
			if !recs[j].Done {
				b.Fatalf("record %d not done", j)
			}
		}
	}
	b.ReportMetric(float64(len(ctxs))*float64(b.N)/b.Elapsed().Seconds(), "schemas/s")
}

// BenchmarkPrefixSolveIncrementalVsFresh is the incremental-vs-fresh
// ablation: identical verdicts (asserted by TestIncrementalVsFreshSchema*),
// different strategies. The incremental walker's bar is >= 3x fresh
// throughput on this workload.
func BenchmarkPrefixSolveIncrementalVsFresh(b *testing.B) {
	b.Run("incremental", func(b *testing.B) { benchPrefixSolve(b, false) })
	b.Run("fresh", func(b *testing.B) { benchPrefixSolve(b, true) })
}
