package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/fairness"
	"repro/internal/network"
	"repro/internal/sba"
)

// runSBA executes a Protocol: "sba" scenario — the SBA* binary-reduction
// counterpart of the dbft body of Scenario.Run. The fault plane (injector,
// schedulers, partitions, crash windows with in-memory snapshots,
// retransmission) is shared; only the protocol stack differs. Durable WALs
// and storage faults are dbft-only and rejected by Validate, so the durable
// branches of the dbft path have no counterpart here.
func (sc Scenario) runSBA(out *Outcome) {
	cfg := sba.Config{N: sc.N, T: sc.T, MaxRounds: sc.MaxRounds}
	all := sba.AllIDs(sc.N)
	correct, err := sba.Processes(cfg, sc.Inputs, all)
	if err != nil {
		out.Err = fmt.Errorf("faults: scenario %s: %w", sc.Encode(), err)
		return
	}
	byzSet := map[network.ProcID]bool{}
	procs := make([]network.Process, 0, sc.N)
	for _, p := range correct {
		procs = append(procs, p)
	}
	// Same per-process PRNG discipline as the dbft path: liar randomness is
	// derived from the seed and the id, never shared across processes.
	for i, strat := range sc.Byz {
		id := network.ProcID(len(sc.Inputs) + i)
		byzSet[id] = true
		switch strat {
		case "silent":
			procs = append(procs, &sba.Silent{Id: id})
		case "equivocator":
			procs = append(procs, &sba.Equivocator{Id: id, All: all,
				ZeroSide: func(p network.ProcID) bool { return int(p) < sc.N/2 }})
		case "liar":
			procs = append(procs, &sba.RandomLiar{Id: id, All: all,
				Rng: rand.New(rand.NewSource(sc.Plan.Seed + 1 + 1_000_003*int64(id)))})
		default:
			out.Err = fmt.Errorf("faults: scenario %s: unknown byzantine strategy %q", sc.Encode(), strat)
			return
		}
	}
	if len(sc.Inputs)+len(sc.Byz) != sc.N {
		out.Err = fmt.Errorf("faults: scenario %s: %d inputs + %d byzantine != n=%d",
			sc.Encode(), len(sc.Inputs), len(sc.Byz), sc.N)
		return
	}

	var inner network.Scheduler
	switch sc.Sched {
	case "", "random":
		inner = network.RandomScheduler{Rng: rand.New(rand.NewSource(sc.Plan.Seed + 2))}
	case "fifo":
		inner = network.FIFOScheduler{}
	case "fair":
		inner = fairness.Scheduler{Byzantine: byzSet}
	case "native":
		inner = network.FIFOScheduler{}
	default:
		out.Err = fmt.Errorf("faults: scenario %s: unknown scheduler %q", sc.Encode(), sc.Sched)
		return
	}

	inj := NewInjector(sc.Plan, inner)
	netOpts, err := sc.networkOptions()
	if err != nil {
		out.Err = fmt.Errorf("faults: scenario %s: %w", sc.Encode(), err)
		return
	}
	sys, err := network.NewSystemOpts(inj.Wrap(procs), inj, netOpts)
	if err != nil {
		out.Err = fmt.Errorf("faults: scenario %s: %w", sc.Encode(), err)
		return
	}
	inj.Install(sys)
	sys.TickInterval = sc.Tick

	stopped := map[network.ProcID]bool{}
	for _, id := range sc.Plan.CrashStops() {
		stopped[id] = true
	}
	participating := make([]*sba.Process, 0, len(correct))
	for _, p := range correct {
		if !stopped[p.ID()] {
			participating = append(participating, p)
		}
	}
	cleanDecided := func() bool {
		for _, p := range participating {
			if _, _, ok := p.Decided(); !ok {
				return false
			}
		}
		return true
	}

	steps, err := sys.Run(sc.MaxSteps, cleanDecided)
	out.Steps = steps
	out.SBAProcs = correct
	out.SBAParticipating = participating
	out.Events = inj.Log
	out.Bus = sys.BusStats()
	out.Stalled = sys.Stalled()
	if err != nil {
		out.Err = fmt.Errorf("faults: scenario %s: %w", sc.Encode(), err)
		return
	}
	out.Decided = cleanDecided()
	// Safety invariants over every correct process, including crash-stopped
	// ones: whatever they reduced to before dying must agree.
	out.AgreementErr = sba.Agreement(correct)
	out.ValidityErr = sba.Validity(correct, sc.Inputs)
}
