package faults

import (
	"strings"
	"testing"

	"repro/internal/network"
)

const validScenarioJSON = `{
	"n": 4, "t": 1, "max_rounds": 12, "max_steps": 100000, "tick": 25,
	"inputs": [1, 0, 1],
	"byz": ["liar"],
	"sched": "random",
	"durable": true,
	"plan": {"seed": 7, "storage": [{"proc": 0, "append": 3, "kind": "kill", "recover": 50}]}
}`

func TestParseScenarioValid(t *testing.T) {
	sc, err := ParseScenario(validScenarioJSON)
	if err != nil {
		t.Fatal(err)
	}
	if sc.N != 4 || !sc.Durable || len(sc.Plan.Storage) != 1 {
		t.Fatalf("parsed = %+v", sc)
	}
}

func TestParseScenarioSyntaxErrorHasLineCol(t *testing.T) {
	_, err := ParseScenario("{\n\"n\": 4,\n\"t\": }")
	if err == nil {
		t.Fatal("syntax error accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("diagnostic lacks the line number: %v", err)
	}
}

func TestParseScenarioUnknownFieldRejected(t *testing.T) {
	_, err := ParseScenario(`{"n": 4, "t": 1, "inputs": [0,1,0], "byz": ["liar"], "wibble": 3, "plan": {"seed": 1}}`)
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !strings.Contains(err.Error(), "wibble") {
		t.Fatalf("diagnostic lacks the field name: %v", err)
	}
}

func TestParseScenarioTypeErrorNamesField(t *testing.T) {
	_, err := ParseScenario("{\n\"n\": \"four\"\n}")
	if err == nil {
		t.Fatal("type mismatch accepted")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "n") {
		t.Fatalf("diagnostic lacks line/field: %v", err)
	}
}

func TestParseScenarioTrailingDataRejected(t *testing.T) {
	_, err := ParseScenario(validScenarioJSON + ` {"more": 1}`)
	if err == nil {
		t.Fatal("trailing data accepted")
	}
	if !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("diagnostic: %v", err)
	}
}

func TestValidateFieldPaths(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string // substring of the diagnostic: the field path
	}{
		{"resilience", func(sc *Scenario) { sc.T = 2 }, "n > 3t"},
		{"bad input", func(sc *Scenario) { sc.Inputs[1] = 2 }, "inputs[1]"},
		{"bad strategy", func(sc *Scenario) { sc.Byz[0] = "saboteur" }, "byz[0]"},
		{"count mismatch", func(sc *Scenario) { sc.Inputs = sc.Inputs[:2] }, "2 inputs"},
		{"bad sched", func(sc *Scenario) { sc.Sched = "chaotic" }, "sched"},
		{"drop prob", func(sc *Scenario) { sc.Plan.Drops = []DropRule{{Prob: 1.5, Budget: 1}} }, "plan.drops[0].prob"},
		{"drop kind", func(sc *Scenario) { sc.Plan.Drops = []DropRule{{Kind: "ZAP", Prob: 0.5, Budget: 1}} }, "plan.drops[0].kind"},
		{"delay steps", func(sc *Scenario) { sc.Plan.DelayProb = 0.3 }, "plan.delay_steps"},
		{"partition group", func(sc *Scenario) {
			sc.Plan.Partitions = []Partition{{Start: 1, Heal: 9, GroupA: []network.ProcID{9}}}
		}, "plan.partitions[0].group_a[0]"},
		{"crash proc", func(sc *Scenario) { sc.Plan.Crashes = []Crash{{Proc: 3, At: 5, Recover: 9}} }, "plan.crashes[0].proc"},
		{"crash window", func(sc *Scenario) { sc.Plan.Crashes = []Crash{{Proc: 1, At: 9, Recover: 5}} }, "plan.crashes[0].recover"},
		{"storage needs durable", func(sc *Scenario) { sc.Durable = false }, "durable"},
		{"storage proc", func(sc *Scenario) { sc.Plan.Storage[0].Proc = 5 }, "plan.storage[0].proc"},
		{"storage kind", func(sc *Scenario) { sc.Plan.Storage[0].Kind = "melt" }, "plan.storage[0].kind"},
		{"storage append", func(sc *Scenario) { sc.Plan.Storage[0].Append = 0 }, "plan.storage[0].append"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := ParseScenario(validScenarioJSON)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(&sc)
			err = sc.Validate()
			if err == nil {
				t.Fatal("invalid scenario accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("diagnostic %q lacks %q", err, tc.want)
			}
		})
	}
}
