package faults

import (
	"sync"
	"sync/atomic"
)

// runIndexed runs fn for every index in [0, runs) across a pool of workers
// (workers <= 1 = sequential), polling stop before each run. Indices are
// claimed from a monotonically increasing counter, so when stop fires every
// index below the first unstarted one has been claimed; runs that were
// in flight finish normally. It returns the results of the longest
// contiguous completed prefix, the index of the first run NOT included
// (== runs when everything completed), and whether the sweep was cut short.
//
// Aggregating only the contiguous prefix keeps parallel campaigns
// deterministic and resume-exact: the fold visits seeds in order, and a
// rerun starting from the returned index covers exactly the runs that were
// not aggregated — completed-but-past-the-gap work is discarded rather than
// double-counted after a resume.
func runIndexed[T any](runs, workers int, stop func() bool, fn func(i int) T) ([]T, int, bool) {
	if runs < 0 {
		runs = 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > runs {
		workers = runs
	}
	out := make([]T, runs)
	done := make([]bool, runs) // each slot written by its claiming worker only
	var next atomic.Int64
	var stopped atomic.Bool
	work := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= runs || stopped.Load() {
				return
			}
			if stop != nil && stop() {
				stopped.Store(true)
				return
			}
			out[i] = fn(i)
			done[i] = true
		}
	}
	if workers <= 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}
	n := 0
	for n < runs && done[n] {
		n++
	}
	return out[:n], n, n < runs
}
