package faults

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/dbft"
	"repro/internal/network"
	"repro/internal/sba"
)

// SimOptions select the simulator backend and event-bus behavior for a
// scenario. The zero value (or a nil pointer) is the default event bus with
// flat-loop-identical semantics; "flat" selects the legacy in-flight slice,
// kept as the compatibility shim the byte-identity tests replay against.
// The queue, dupemap, stall and topology knobs engage the bus's bounded
// plumbing; Batch/Partitions/ScanLimit only apply under Sched "native".
type SimOptions struct {
	Backend    string `json:"backend,omitempty"` // "", "bus" (default) or "flat"
	QueueCap   int    `json:"queue_cap,omitempty"`
	EgressCap  int    `json:"egress_cap,omitempty"`
	Dupemap    bool   `json:"dupemap,omitempty"`
	DupemapCap int    `json:"dupemap_cap,omitempty"`
	StallK     int    `json:"stall_k,omitempty"`
	Topology   string `json:"topology,omitempty"` // "", "full" or "gossip"
	Batch      int    `json:"batch,omitempty"`
	Partitions int    `json:"partitions,omitempty"`
	ScanLimit  int    `json:"scan_limit,omitempty"`
}

// networkOptions lowers the scenario's sim block into network.Options.
func (sc Scenario) networkOptions() (network.Options, error) {
	var opts network.Options
	sim := sc.Sim
	if sim == nil {
		sim = &SimOptions{}
	}
	switch sim.Backend {
	case "", "bus":
	case "flat":
		opts.Backend = network.BackendFlat
	default:
		return opts, fmt.Errorf("unknown sim backend %q", sim.Backend)
	}
	opts.Bus = network.BusOptions{
		QueueCap:   sim.QueueCap,
		EgressCap:  sim.EgressCap,
		Dupemap:    sim.Dupemap,
		DupemapCap: sim.DupemapCap,
		StallK:     sim.StallK,
	}
	switch sim.Topology {
	case "", "full":
	case "gossip":
		topo, err := network.NewKadcast(sc.N)
		if err != nil {
			return opts, err
		}
		opts.Bus.Topology = topo
	default:
		return opts, fmt.Errorf("unknown sim topology %q", sim.Topology)
	}
	if sc.Sched == "native" {
		opts.Native = &network.NativeOptions{
			Batch:      sim.Batch,
			Partitions: sim.Partitions,
			ScanLimit:  sim.ScanLimit,
		}
	}
	return opts, nil
}

// canonicalEvents reports whether the fingerprint must canonicalize (sort)
// the fault-event log. True for every native-mode run — with Partitions > 1
// worker interleaving scrambles the order in which worker-side events
// (EvLost, EvCrash, EvRecover) are appended, so the digest covers the event
// multiset, not the order. Sorting at Partitions <= 1 too keeps a native
// run's fingerprint comparable across partition counts: the delivery
// semantics (and hence the multiset) are partition-independent by
// construction.
func (sc Scenario) canonicalEvents() bool {
	return sc.Sched == "native"
}

// Fingerprint digests everything replay-relevant about an outcome: step
// count, the decided predicate, every correct process's canonical state
// snapshot, the fault-event log, and the durable-run verdict fields. Two
// runs of one seeded scenario — on any backend whose semantics promise
// byte-identical replay (flat loop vs. compat bus, or native mode at any
// partition count) — must produce equal fingerprints.
func (sc Scenario) Fingerprint(out *Outcome) string {
	h := sha256.New()
	fmt.Fprintf(h, "steps=%d decided=%v err=%v agreement=%v validity=%v\n",
		out.Steps, out.Decided, out.Err != nil, out.AgreementErr, out.ValidityErr)
	// Exactly one of the protocol process slices is populated; dbft digests
	// are byte-for-byte what they were before the sba front-end existed.
	for _, p := range out.Procs {
		fmt.Fprintf(h, "p%d:", p.ID())
		h.Write(dbft.EncodeSnapshot(p.Snapshot()))
		h.Write([]byte{'\n'})
	}
	for _, p := range out.SBAProcs {
		fmt.Fprintf(h, "p%d:", p.ID())
		h.Write(sba.EncodeSnapshot(p.Snapshot()))
		h.Write([]byte{'\n'})
	}
	events := out.Events
	if sc.canonicalEvents() {
		events = append([]Event(nil), events...)
		sort.SliceStable(events, func(i, j int) bool { return events[i].String() < events[j].String() })
	}
	for _, e := range events {
		fmt.Fprintf(h, "%s\n", e.String())
	}
	for _, q := range out.Quarantined {
		fmt.Fprintf(h, "quarantined=%d:%s\n", q, out.QuarantineReasons[q])
	}
	for _, s := range out.Contradictions {
		fmt.Fprintf(h, "contradiction=%s\n", s)
	}
	for _, s := range out.SilentCorruptions {
		fmt.Fprintf(h, "silent=%s\n", s)
	}
	for _, s := range out.ReplayErrs {
		fmt.Fprintf(h, "replayerr=%s\n", s)
	}
	fmt.Fprintf(h, "replaychecked=%d\n", out.ReplayChecked)
	return hex.EncodeToString(h.Sum(nil))
}
