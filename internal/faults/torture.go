package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/network"
	"repro/internal/obs"
)

// TortureCampaign drives seeded kill/corrupt/restart schedules against
// durable replicas: every scenario is Durable, every correct replica logs to
// a fault-injectable WAL, and each run layers storage faults (clean kills and
// torn tails freely; amnesia-capable flips and lying fsyncs only within the
// fault budget t) on top of the usual network chaos. The assertions are the
// acceptance bar of the durability layer: Agreement and Validity always hold
// over clean replicas, recovered replicas never contradict their pre-crash
// messages, corrupted logs are always detected (never silently accepted),
// and every clean replica's live state equals a fresh replay of its log.
type TortureCampaign struct {
	Runs     int
	BaseSeed int64
	N        int
	T        int

	MaxRounds int // default 12
	MaxSteps  int // default 120_000
	Tick      int // default 25

	// Verbose, when set, receives one line per run.
	Verbose func(format string, args ...any)
	// Stop, when set, is polled between runs; a true return ends the
	// campaign early with partial results (the signal-handling hook).
	Stop func() bool
	// Workers runs seeds concurrently (0 or 1 = sequential). Results are
	// folded in seed order over the contiguous completed prefix, so the
	// aggregate — and the NextSeed resume point — is the same at any worker
	// count. Verbose lines may interleave.
	Workers int

	// Trace, when non-nil, receives one "torture" event per executed seed
	// (steps, decided, failed). Observational only.
	Trace *obs.Tracer

	// Sim, when non-nil, selects the network backend for every generated
	// scenario (bus options, topology, native drain tuning). Durable runs
	// require Partitions <= 1; Validate enforces this.
	Sim *SimOptions
}

// TortureResult aggregates a torture campaign.
type TortureResult struct {
	Runs        int
	Decided     int
	Quarantines int
	// ReplayChecks counts clean replicas whose live state was verified
	// byte-identical to a fresh replay of their WAL.
	ReplayChecks int
	Events       map[EventKind]int
	Violations   []Violation
	// Interrupted is set when Stop ended the campaign early; NextSeed is
	// where a resumed campaign should continue.
	Interrupted bool
	NextSeed    int64
}

func (r TortureResult) String() string {
	s := fmt.Sprintf("torture: %d runs, %d decided, %d violations; %d kills, %d torn, %d flips, %d nosync, %d replays, %d quarantines, %d replay-checks",
		r.Runs, r.Decided, len(r.Violations),
		r.Events[EvKill], r.Events[EvTorn], r.Events[EvFlip], r.Events[EvNoSync],
		r.Events[EvReplay], r.Quarantines, r.ReplayChecks)
	if r.Interrupted {
		s += fmt.Sprintf(" (interrupted; resume from seed %d)", r.NextSeed)
	}
	return s
}

func (c TortureCampaign) maxRounds() int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return 12
}

func (c TortureCampaign) maxSteps() int {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	return 120_000
}

func (c TortureCampaign) tick() int {
	if c.Tick > 0 {
		return c.Tick
	}
	return 25
}

// RandomScenario derives one replayable durable scenario: light network
// chaos, step-scheduled crash-recovery windows (which now recover from
// disk), one to three clean write-point kills, and — within the remaining
// fault budget — one amnesia-capable fault. The budget rule mirrors the
// paper's resilience bound: Byzantine processes, crash-stops and
// amnesia-capable replicas together never exceed t.
func (c TortureCampaign) RandomScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		N:         c.N,
		T:         c.T,
		MaxRounds: c.maxRounds(),
		MaxSteps:  c.maxSteps(),
		Tick:      c.tick(),
		Sched:     "random",
		Durable:   true,
		Sim:       c.Sim,
		Plan:      Plan{Seed: seed},
	}

	budget := c.T
	nByz := 0
	if budget > 0 && rng.Intn(3) == 0 {
		nByz = 1
		budget--
	}
	strategies := []string{"silent", "equivocator", "liar"}
	for i := 0; i < nByz; i++ {
		sc.Byz = append(sc.Byz, strategies[rng.Intn(len(strategies))])
	}
	nCorrect := c.N - nByz
	sc.Inputs = make([]int, nCorrect)
	for i := range sc.Inputs {
		sc.Inputs[i] = rng.Intn(2)
	}

	// Light network chaos so recovery happens under loss and reordering,
	// always fair (bounded budgets) — the termination assertion stays live.
	if rng.Intn(3) == 0 {
		sc.Plan.Drops = []DropRule{{Prob: 0.05 + 0.15*rng.Float64(), Budget: 1}}
	}
	if rng.Intn(3) == 0 {
		sc.Plan.DupProb = 0.1 + 0.2*rng.Float64()
		sc.Plan.DupBudget = 1
	}
	if rng.Intn(3) == 0 {
		sc.Plan.DelayProb = 0.1 + 0.2*rng.Float64()
		sc.Plan.DelaySteps = 20 + rng.Intn(100)
	}
	// Step-scheduled crash-recovery window: with Durable set this is the
	// tentpole path — reboot from the WAL, not from injector memory. Quiet
	// durable runs decide within a few hundred steps, so windows are early
	// and short enough to land inside the execution.
	if rng.Intn(2) == 0 {
		at := 1 + rng.Intn(300)
		sc.Plan.Crashes = append(sc.Plan.Crashes, Crash{
			Proc:    network.ProcID(rng.Intn(nCorrect)),
			At:      at,
			Recover: at + 30 + rng.Intn(300),
		})
	}

	// Clean write-point kills: free, any number of replicas, because
	// persist-before-release keeps their recovery inside the correct-process
	// envelope.
	kills := 1 + rng.Intn(3)
	for i := 0; i < kills; i++ {
		kind := StoreKill
		if rng.Intn(2) == 0 {
			kind = StoreTorn
		}
		sc.Plan.Storage = append(sc.Plan.Storage, StorageFault{
			Proc:    network.ProcID(rng.Intn(nCorrect)),
			Append:  1 + rng.Intn(30),
			Kind:    kind,
			Recover: 5 + rng.Intn(200),
		})
	}
	// One amnesia-capable fault within the remaining budget: bit rot or a
	// lying fsync. Its replica is Byzantine-equivalent from that point on.
	if budget > 0 && rng.Intn(2) == 0 {
		kind := StoreFlip
		if rng.Intn(2) == 0 {
			kind = StoreNoSync
		}
		// Short down-windows: a risky replica is excluded from the decided
		// predicate, so only an early recovery exercises the detection and
		// re-join paths before the clean replicas finish.
		sc.Plan.Storage = append(sc.Plan.Storage, StorageFault{
			Proc:      network.ProcID(rng.Intn(nCorrect)),
			Append:    1 + rng.Intn(20),
			Kind:      kind,
			Recover:   5 + rng.Intn(60),
			KillAfter: 1 + rng.Intn(5),
		})
	}
	return sc
}

// Run executes the campaign. Every violation carries its replayable seed and
// scenario JSON; Stop ends it early with partial results. With Workers > 1
// seeds execute concurrently; the fold over results still happens in seed
// order (see runIndexed), so the aggregate is deterministic.
func (c TortureCampaign) Run() TortureResult {
	type tortureRun struct {
		sc  Scenario
		out Outcome
	}
	recs, nextIdx, interrupted := runIndexed(c.Runs, c.Workers, c.Stop, func(i int) tortureRun {
		seed := c.BaseSeed + int64(i)
		obsCurrentSeed.Set(seed)
		sc := c.RandomScenario(seed)
		out := sc.Run()
		obsSeedsRun.Inc()
		traceSeed(c.Trace, "torture", seed, &out)
		if c.Verbose != nil {
			c.Verbose("seed %d: steps=%d decided=%v quarantined=%v replayChecked=%d faults=%v",
				seed, out.Steps, out.Decided, out.Quarantined, out.ReplayChecked, CountEvents(out.Events))
		}
		return tortureRun{sc: sc, out: out}
	})

	res := TortureResult{Events: map[EventKind]int{}}
	for i, r := range recs {
		seed := c.BaseSeed + int64(i)
		out := r.out
		res.Runs++
		if out.Decided {
			res.Decided++
		}
		res.Quarantines += len(out.Quarantined)
		res.ReplayChecks += out.ReplayChecked
		for k, n := range CountEvents(out.Events) {
			res.Events[k] += n
		}
		fail := func(reason string) {
			obsSeedsFailed.Inc()
			res.Violations = append(res.Violations, Violation{Seed: seed, Scenario: r.sc, Reason: reason})
		}
		switch {
		case out.Err != nil:
			fail(fmt.Sprintf("run error: %v", out.Err))
		default:
			if out.AgreementErr != nil {
				fail(fmt.Sprintf("agreement: %v", out.AgreementErr))
			}
			if out.ValidityErr != nil {
				fail(fmt.Sprintf("validity: %v", out.ValidityErr))
			}
			for _, s := range out.Contradictions {
				fail(fmt.Sprintf("equivocation after recovery: %s", s))
			}
			for _, s := range out.SilentCorruptions {
				fail(fmt.Sprintf("silent corruption: %s", s))
			}
			for _, s := range out.ReplayErrs {
				fail(fmt.Sprintf("replay divergence: %s", s))
			}
			if r.sc.Plan.FairDelivery() && !out.Decided {
				fail(fmt.Sprintf("termination: fair durable plan undecided after %d steps", out.Steps))
			}
		}
	}
	if interrupted {
		res.Interrupted = true
		res.NextSeed = c.BaseSeed + int64(nextIdx)
	}
	return res
}
