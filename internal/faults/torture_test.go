package faults

import (
	"fmt"
	"testing"
)

// TestTortureCampaign is the acceptance gate of the durability layer: at
// least 200 seeded kill/corrupt/restart schedules with zero violations —
// Agreement, Validity, no post-recovery equivocation, no silently accepted
// corruption, and byte-identical WAL replays throughout.
func TestTortureCampaign(t *testing.T) {
	runs := 250
	if testing.Short() {
		runs = 40
	}
	c := TortureCampaign{Runs: runs, BaseSeed: 6000, N: 4, T: 1}
	res := c.Run()
	if res.Runs != runs {
		t.Fatalf("ran %d of %d", res.Runs, runs)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
	if t.Failed() {
		t.FailNow()
	}
	// The campaign must actually exercise every failure mode, not pass
	// vacuously.
	for _, k := range []EventKind{EvKill, EvTorn, EvReplay, EvRecover} {
		if res.Events[k] == 0 {
			t.Errorf("no %s events across %d runs", k, runs)
		}
	}
	if !testing.Short() {
		for _, k := range []EventKind{EvFlip, EvNoSync} {
			if res.Events[k] == 0 {
				t.Errorf("no %s events across %d runs", k, runs)
			}
		}
		if res.Quarantines == 0 {
			t.Error("no quarantine across the campaign: corruption detection path untested")
		}
	}
	if res.ReplayChecks == 0 {
		t.Error("no byte-identical replay check ever ran")
	}
	if res.Decided < res.Runs*9/10 {
		t.Errorf("only %d/%d runs decided", res.Decided, res.Runs)
	}
	t.Logf("%s", res)
}

// TestTortureStop: the Stop hook ends the campaign between runs with
// partial results and a resumable seed.
func TestTortureStop(t *testing.T) {
	n := 0
	c := TortureCampaign{
		Runs: 50, BaseSeed: 100, N: 4, T: 1,
		Stop: func() bool { n++; return n > 3 },
	}
	res := c.Run()
	if !res.Interrupted {
		t.Fatal("campaign was not interrupted")
	}
	if res.Runs != 3 {
		t.Fatalf("expected 3 completed runs, got %d", res.Runs)
	}
	if res.NextSeed != 103 {
		t.Fatalf("resume seed = %d, want 103", res.NextSeed)
	}
}

// TestTortureScenarioReplayable: a torture scenario replays bit-identically
// from its JSON — the property every violation report relies on.
func TestTortureScenarioReplayable(t *testing.T) {
	c := TortureCampaign{N: 4, T: 1}
	for seed := int64(0); seed < 10; seed++ {
		sc := c.RandomScenario(6000 + seed)
		back, err := ParseScenario(sc.Encode())
		if err != nil {
			t.Fatal(err)
		}
		a, b := sc.Run(), back.Run()
		if fmt.Sprint(a.Steps, a.Decided, len(a.Events)) != fmt.Sprint(b.Steps, b.Decided, len(b.Events)) {
			t.Fatalf("seed %d: replay diverged: %d/%v/%d vs %d/%v/%d", seed,
				a.Steps, a.Decided, len(a.Events), b.Steps, b.Decided, len(b.Events))
		}
	}
}
