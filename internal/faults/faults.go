// Package faults is the fault-injection plane for the DBFT simulator. The
// paper (Section 2) assumes an asynchronous but *reliable* network: every
// sent message is eventually delivered, processes never crash, links never
// partition. This package relaxes each of those assumptions executably —
// message drops, duplication, reordering delays, link partitions with
// scheduled healing, crash-stop and crash-recovery — so that the safety
// results (schedule- and fault-independent) and the liveness results
// (requiring eventual delivery, the fairness precondition of Theorem 6) can
// be stress-tested under exactly the fault mixes the proofs distinguish.
//
// A FaultPlan is a deterministic, seeded, serializable description of the
// faults; an Injector interposes the plan on a network.System via the two
// hooks the simulator exposes: the send tap (drop/duplicate/delay outgoing
// copies) and the scheduler (hold partitioned or delayed copies, advancing
// simulated time with network.Tick when everything is held). Crash faults
// wrap processes: deliveries into a crash window are consumed and lost, and
// on recovery a snapshot-capable process reboots from its synchronously
// persisted state (see dbft.Snapshot for why persistence must be
// synchronous).
//
// Per-fault budgets make unfairness a choice rather than an accident: a
// drop rule with a nonnegative budget drops at most that many copies of any
// one logical message, so with retransmission enabled eventual delivery
// holds *by construction* and Termination remains provable; a negative
// budget (or a never-healing partition) is deliberately unfair and is the
// fault-plane analogue of the Lemma 7 adversary.
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/dbft"
	"repro/internal/network"
	"repro/internal/sba"
)

// DropRule describes one class of message loss.
type DropRule struct {
	// Kind restricts the rule to one message kind ("" = any).
	Kind network.MsgKind `json:"kind,omitempty"`
	// ParityBV restricts the rule to BV messages carrying their round's
	// parity value — the messages whose timely delivery makes a round good
	// (Definition 2). Dropping them unboundedly starves fairness exactly the
	// way the Lemma 7 schedule does.
	ParityBV bool `json:"parity_bv,omitempty"`
	// Prob is the per-copy drop probability (1 = always).
	Prob float64 `json:"prob"`
	// Budget caps how many copies of any one logical message the rule may
	// drop; a negative budget is unbounded (unfair).
	Budget int `json:"budget"`
}

func (r DropRule) matches(m network.Message) bool {
	if r.Kind != "" && m.Kind != r.Kind {
		return false
	}
	if r.ParityBV && (m.Kind != network.MsgBV || m.Value != m.Round%2) {
		return false
	}
	return true
}

// Partition is a scheduled link cut between GroupA and its complement.
// Crossing messages are held in flight (not lost) and become deliverable
// again once the cut heals — reliable links, temporarily severed.
type Partition struct {
	Start int `json:"start"`
	// Heal is the first step at which the cut is gone; negative = never
	// (unfair).
	Heal   int              `json:"heal"`
	GroupA []network.ProcID `json:"group_a"`
}

func (p Partition) activeAt(step int) bool {
	return step >= p.Start && (p.Heal < 0 || step < p.Heal)
}

func (p Partition) cuts(from, to network.ProcID) bool {
	inA := func(id network.ProcID) bool {
		for _, a := range p.GroupA {
			if a == id {
				return true
			}
		}
		return false
	}
	return inA(from) != inA(to)
}

// Crash takes a process down at step At. A nonnegative Recover step brings
// it back (crash-recovery: state reboots from the synchronously persisted
// snapshot, deliveries during the window are lost); a negative Recover is
// crash-stop, which counts against the fault budget t.
type Crash struct {
	Proc    network.ProcID `json:"proc"`
	At      int            `json:"at"`
	Recover int            `json:"recover"`
}

func (c Crash) downAt(step int) bool {
	return step >= c.At && (c.Recover < 0 || step < c.Recover)
}

// Plan is a complete, seeded, serializable fault campaign for one run. The
// zero plan injects nothing.
type Plan struct {
	// Seed drives every coin the injector flips; identical plans yield
	// identical executions, which is what makes violations replayable.
	Seed int64 `json:"seed"`

	Drops []DropRule `json:"drops,omitempty"`

	// DupProb duplicates an outgoing copy with this probability, at most
	// DupBudget extra copies per logical message (0 = 1).
	DupProb   float64 `json:"dup_prob,omitempty"`
	DupBudget int     `json:"dup_budget,omitempty"`

	// DelayProb holds an enqueued copy for DelaySteps extra steps before it
	// becomes deliverable — bounded reordering.
	DelayProb  float64 `json:"delay_prob,omitempty"`
	DelaySteps int     `json:"delay_steps,omitempty"`

	Partitions []Partition `json:"partitions,omitempty"`
	Crashes    []Crash     `json:"crashes,omitempty"`

	// Storage schedules write-point storage faults (kill, torn, flip,
	// nosync) against durable replicas' WALs; it only has effect in a
	// durable scenario (see Scenario.Durable and storage.go).
	Storage []StorageFault `json:"storage,omitempty"`
}

// FairDelivery reports whether the plan preserves eventual delivery by
// construction: every drop budget is bounded and every partition heals.
// (Duplication and finite delays never threaten it; crash windows lose
// deliveries but retransmission re-sends them, and crash-stop processes
// count against the fault budget rather than against link fairness.)
// Termination is asserted exactly for fair plans; unfair plans are the
// executable Lemma 7 regime.
func (p Plan) FairDelivery() bool {
	for _, d := range p.Drops {
		if d.Budget < 0 {
			return false
		}
	}
	for _, pt := range p.Partitions {
		if pt.Heal < 0 {
			return false
		}
	}
	return true
}

// CrashStops returns the processes the plan takes down forever; they count
// against the tolerated fault budget t.
func (p Plan) CrashStops() []network.ProcID {
	var out []network.ProcID
	for _, c := range p.Crashes {
		if c.Recover < 0 {
			out = append(out, c.Proc)
		}
	}
	for _, f := range p.Storage {
		if f.Recover < 0 {
			out = append(out, f.Proc)
		}
	}
	return out
}

// Encode renders the plan as compact JSON (the replayable form printed on
// violations).
func (p Plan) Encode() string {
	b, err := json.Marshal(p)
	if err != nil {
		return fmt.Sprintf("faults: unencodable plan: %v", err)
	}
	return string(b)
}

// ParsePlan decodes a plan from its JSON form.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if err := json.Unmarshal([]byte(s), &p); err != nil {
		return Plan{}, fmt.Errorf("faults: bad plan: %w", err)
	}
	return p, nil
}

// UnfairParityDrop is the scripted unfair plan: it drops every copy of
// every parity-valued BV message, unboundedly. No round can ever become
// good, so — like the Lemma 7 schedule — correct processes keep exchanging
// rounds (or starve) without ever deciding, while Agreement and Validity
// hold vacuously.
func UnfairParityDrop(seed int64) Plan {
	return Plan{
		Seed:  seed,
		Drops: []DropRule{{ParityBV: true, Prob: 1, Budget: -1}},
	}
}

// EventKind labels one fault-log entry.
type EventKind string

// Fault-log event kinds.
const (
	EvDrop      EventKind = "drop"    // copy removed on the send path
	EvDuplicate EventKind = "dup"     // extra copy enqueued
	EvDelay     EventKind = "delay"   // copy held for DelaySteps
	EvLost      EventKind = "lost"    // delivery consumed by a crash window
	EvCrash     EventKind = "crash"   // process observed down
	EvRecover   EventKind = "recover" // process rebooted from its snapshot

	// Storage fault events (durable scenarios).
	EvKill       EventKind = "kill"       // killed mid-append
	EvTorn       EventKind = "torn"       // killed with a guaranteed torn frame
	EvFlip       EventKind = "flip"       // killed, then one durable byte flipped
	EvNoSync     EventKind = "nosync"     // killed after a stretch of lying fsyncs
	EvReplay     EventKind = "replay"     // state rebuilt from the WAL
	EvQuarantine EventKind = "quarantine" // WAL unrecoverable; replica retired
)

// Event is one structured fault-log entry. Step is the network.System step
// counter, the shared clock that interleaves this log with the delivery
// trace of network/trace.
type Event struct {
	Step int
	Kind EventKind
	Proc network.ProcID  // crash/recover/lost subject
	Msg  network.Message // affected message, when applicable
}

func (e Event) String() string {
	switch e.Kind {
	case EvCrash, EvRecover, EvKill, EvTorn, EvFlip, EvNoSync, EvReplay, EvQuarantine:
		return fmt.Sprintf("step %4d  %-7s p%d", e.Step, e.Kind, e.Proc)
	case EvLost:
		return fmt.Sprintf("step %4d  %-7s p%d <- %s", e.Step, e.Kind, e.Proc, e.Msg)
	default:
		return fmt.Sprintf("step %4d  %-7s %s", e.Step, e.Kind, e.Msg)
	}
}

// FormatEvents renders the fault log; limit > 0 truncates.
func FormatEvents(events []Event, limit int) string {
	var b strings.Builder
	shown := len(events)
	if limit > 0 && limit < shown {
		shown = limit
	}
	for i := 0; i < shown; i++ {
		fmt.Fprintf(&b, "%s\n", events[i])
	}
	if shown < len(events) {
		fmt.Fprintf(&b, "      ... %d more fault events\n", len(events)-shown)
	}
	return b.String()
}

// CountEvents tallies the log by kind.
func CountEvents(events []Event) map[EventKind]int {
	out := map[EventKind]int{}
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}

// Injector executes a Plan against one network.System. It is the system's
// Scheduler (holding partitioned/delayed copies, ticking when everything is
// held) and its SendTap (dropping, duplicating, delaying), and it wraps
// processes to realize crash windows. All randomness comes from the plan
// seed; the injector is fully deterministic.
type Injector struct {
	Plan  Plan
	Log   []Event
	inner network.Scheduler
	rng   *rand.Rand

	// mu guards Log. In the bus's native drain mode crash-window events
	// (EvLost, EvCrash, EvRecover) are logged from parallel drain workers;
	// everything else stays on the coordinator goroutine. Parallel runs
	// canonicalize event order before fingerprinting (see Fingerprint).
	mu sync.Mutex

	step       int
	seq        int64
	dropCount  map[string]int // rule-scoped per-key drop tally
	dupCount   map[string]int
	delayUntil map[int64]int // seq -> first deliverable step

	// Durable-scenario state (see storage.go). stores maps each durable
	// replica to its WAL; storageDown holds replicas killed at a write point
	// until the given step; quarantined replicas are down forever with the
	// recorded reason. risky marks replicas whose scheduled storage faults
	// can erase released history — they are budgeted like Byzantine
	// processes and excluded from the clean-replica assertions.
	stores      map[network.ProcID]*replicaStore
	storageDown map[network.ProcID]int
	quarantined map[network.ProcID]string
	risky       map[network.ProcID]bool

	// auxSeen backs the equivocation oracle: first released AUX content per
	// (clean replica, instance, round). Contradictions collects conflicts —
	// a recovered replica contradicting its own pre-crash messages.
	auxSeen        map[string]string
	Contradictions []string
	// SilentCorruptions collects flip-oracle hits: corrupted frames that
	// recovery accepted without a checksum error.
	SilentCorruptions []string
}

// NewInjector builds an injector that defers delivery ordering among
// eligible messages to the inner scheduler.
func NewInjector(plan Plan, inner network.Scheduler) *Injector {
	return &Injector{
		Plan:        plan,
		inner:       inner,
		rng:         rand.New(rand.NewSource(plan.Seed)),
		dropCount:   map[string]int{},
		dupCount:    map[string]int{},
		delayUntil:  map[int64]int{},
		stores:      map[network.ProcID]*replicaStore{},
		storageDown: map[network.ProcID]int{},
		quarantined: map[network.ProcID]string{},
		risky:       map[network.ProcID]bool{},
		auxSeen:     map[string]string{},
	}
}

// AttachStore gives a replica a durable WAL; its crash hook reports storage
// kills back to the injector. Risky-fault replicas are remembered so the
// safety assertions can budget them as Byzantine-equivalent.
func (inj *Injector) AttachStore(id network.ProcID, st *replicaStore) {
	inj.stores[id] = st
	st.fs.onCrash = func(f StorageFault) { inj.storageCrash(id, f) }
	for _, f := range st.fs.faults {
		if f.Risky() {
			inj.risky[id] = true
		}
	}
}

// Risky reports whether a replica's scheduled storage faults can cause
// amnesia (it is excluded from the clean-replica assertions).
func (inj *Injector) Risky(id network.ProcID) bool { return inj.risky[id] }

// storageCrash records a write-point kill: the event, and the down window.
func (inj *Injector) storageCrash(id network.ProcID, f StorageFault) {
	kind := EvKill
	switch f.Kind {
	case StoreTorn:
		kind = EvTorn
	case StoreFlip:
		kind = EvFlip
	case StoreNoSync:
		kind = EvNoSync
	}
	inj.log(kind, id, network.Message{})
	if f.Recover < 0 {
		inj.storageDown[id] = forever
	} else {
		inj.storageDown[id] = inj.step + f.Recover
	}
}

// forever is a down-until step no run reaches.
const forever = int(^uint(0) >> 1)

// quarantineProc retires a replica whose WAL is unrecoverable: detected
// corruption is a crash-stop, never silent acceptance.
func (inj *Injector) quarantineProc(id network.ProcID, reason string) {
	inj.quarantined[id] = reason
	inj.storageDown[id] = forever
	inj.log(EvQuarantine, id, network.Message{})
}

// IsQuarantined reports whether the replica has been retired.
func (inj *Injector) IsQuarantined(id network.ProcID) bool {
	_, ok := inj.quarantined[id]
	return ok
}

// Quarantined lists retired replicas in id order.
func (inj *Injector) Quarantined() []network.ProcID {
	var out []network.ProcID
	for id := range inj.quarantined {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// recordRelease is the equivocation oracle tap on every message a clean
// durable replica releases. A correct process sends at most one AUX per
// (instance, round), always with the same contestant set; two different
// contents mean a recovered replica contradicted its pre-crash self.
func (inj *Injector) recordRelease(id network.ProcID, m network.Message) {
	if m.Kind != network.MsgAux || inj.risky[id] {
		return
	}
	key := fmt.Sprintf("p%d i%d r%d", id, m.Instance, m.Round)
	content := fmt.Sprintf("%v", m.Set)
	if prev, ok := inj.auxSeen[key]; ok {
		if prev != content {
			inj.Contradictions = append(inj.Contradictions,
				fmt.Sprintf("%s: aux %s contradicts earlier aux %s", key, content, prev))
		}
		return
	}
	inj.auxSeen[key] = content
}

// Install points the system's send path at the injector. The injector must
// also be the system's scheduler (pass it to network.NewSystem). On a
// native-mode system the injector additionally threads through the bus's
// tap points instead of the scheduler: delays become per-copy notBefore
// stamps (HoldTap), partitions are checked at dequeue (CutTap), and the
// injector clock follows the window clock (StepTap).
func (inj *Injector) Install(sys *network.System) {
	sys.SendTap = inj.SendTap
	if sys.NativeMode() {
		sys.HoldTap = inj.holdTap
		sys.CutTap = inj.cut
		sys.StepTap = inj.observeStep
	}
}

// holdTap implements the native-mode delay plane: the delay SendTap chose
// for this copy is consumed here and becomes the entry's notBefore step.
// (The compat path leaves delayUntil to Next instead.)
func (inj *Injector) holdTap(m network.Message) int {
	if until, ok := inj.delayUntil[m.Seq]; ok {
		delete(inj.delayUntil, m.Seq)
		return until
	}
	return 0
}

// keyString is the logical-message identity (content minus the per-copy Seq
// tag) usable as a map key despite the Set slice field.
func keyString(m network.Message) string {
	return fmt.Sprintf("%d>%d %s r%d v%d i%d p%d %q %v",
		m.From, m.To, m.Kind, m.Round, m.Value, m.Instance, m.Proposer, m.Payload, m.Set)
}

func (inj *Injector) log(kind EventKind, proc network.ProcID, m network.Message) {
	inj.mu.Lock()
	inj.Log = append(inj.Log, Event{Step: inj.step, Kind: kind, Proc: proc, Msg: m})
	inj.mu.Unlock()
}

func (inj *Injector) stamp(m network.Message) network.Message {
	inj.seq++
	m.Seq = inj.seq
	return m
}

// SendTap implements the network.System send hook.
func (inj *Injector) SendTap(m network.Message) []network.Message {
	key := keyString(m)
	for i, rule := range inj.Plan.Drops {
		if !rule.matches(m) {
			continue
		}
		ruleKey := fmt.Sprintf("%d|%s", i, key)
		if rule.Budget >= 0 && inj.dropCount[ruleKey] >= rule.Budget {
			continue
		}
		if rule.Prob < 1 && inj.rng.Float64() >= rule.Prob {
			continue
		}
		inj.dropCount[ruleKey]++
		inj.log(EvDrop, m.To, m)
		return nil
	}

	out := []network.Message{inj.stamp(m)}
	if inj.Plan.DupProb > 0 && inj.rng.Float64() < inj.Plan.DupProb {
		budget := inj.Plan.DupBudget
		if budget <= 0 {
			budget = 1
		}
		if inj.dupCount[key] < budget {
			inj.dupCount[key]++
			d := inj.stamp(m)
			inj.log(EvDuplicate, m.To, d)
			out = append(out, d)
		}
	}
	if inj.Plan.DelayProb > 0 && inj.Plan.DelaySteps > 0 {
		for _, c := range out {
			if inj.rng.Float64() < inj.Plan.DelayProb {
				inj.delayUntil[c.Seq] = inj.step + inj.Plan.DelaySteps
				inj.log(EvDelay, c.To, c)
			}
		}
	}
	return out
}

// observeStep advances the injector clock. The scheduler's Next does this on
// every delivery, but a fully drained network (every correct replica down at
// once) bypasses the scheduler entirely — only ticks still flow. Without this
// hook the clock freezes and no recovery window can ever expire.
func (inj *Injector) observeStep(step int) {
	if step > inj.step {
		inj.step = step
	}
}

// Next implements network.Scheduler: it exposes only the currently
// deliverable copies to the inner scheduler and maps its choice back. When
// every in-flight copy is held (partition or delay) it returns network.Tick
// so simulated time keeps passing until a cut heals or a delay expires.
func (inj *Injector) Next(inflight []network.Message, step int) int {
	inj.step = step
	eligible := make([]int, 0, len(inflight))
	for i, m := range inflight {
		if until, ok := inj.delayUntil[m.Seq]; ok && step < until {
			continue
		}
		if inj.cut(m.From, m.To, step) {
			continue
		}
		eligible = append(eligible, i)
	}
	if len(eligible) == 0 {
		return network.Tick
	}
	sub := make([]network.Message, len(eligible))
	for i, idx := range eligible {
		sub[i] = inflight[idx]
	}
	j := inj.inner.Next(sub, step)
	if j < 0 || j >= len(eligible) {
		return network.Tick
	}
	idx := eligible[j]
	delete(inj.delayUntil, inflight[idx].Seq)
	return idx
}

func (inj *Injector) cut(from, to network.ProcID, step int) bool {
	for _, p := range inj.Plan.Partitions {
		if p.activeAt(step) && p.cuts(from, to) {
			return true
		}
	}
	return false
}

// downNow reports whether the plan has the process crashed at the current
// step.
func (inj *Injector) downNow(id network.ProcID) bool {
	for _, c := range inj.Plan.Crashes {
		if c.Proc == id && c.downAt(inj.step) {
			return true
		}
	}
	if until, ok := inj.storageDown[id]; ok && inj.step < until {
		return true
	}
	return false
}

// snapshotter is the crash-recovery contract for dbft processes: processes
// that persist their state survive a crash window with only the window's
// deliveries lost. The durable WAL plane (replicaStore) is typed against it.
// Processes without a snapshot contract are paused-with-memory instead (the
// crash degrades to an omission fault for them).
type snapshotter interface {
	Snapshot() *dbft.Snapshot
	Restore(*dbft.Snapshot)
}

// sbaSnapshotter is the same contract for sba processes. The volatile
// crash-recovery path is generalized over both via capture/restore closures
// (see Wrap); the durable WAL plane stays dbft-only.
type sbaSnapshotter interface {
	Snapshot() *sba.Snapshot
	Restore(*sba.Snapshot)
}

// Wrap interposes crash handling on every process. The returned slice is
// what the network.System must be built from. Processes with an attached
// replicaStore persist to (and recover from) their WAL; the rest keep the
// in-memory snapshot regime of the non-durable plane.
func (inj *Injector) Wrap(procs []network.Process) []network.Process {
	out := make([]network.Process, len(procs))
	for i, p := range procs {
		w := &wrapProc{inner: p, inj: inj}
		switch s := p.(type) {
		case snapshotter:
			w.capture = func() any { return s.Snapshot() }
			w.restore = func(v any) { s.Restore(v.(*dbft.Snapshot)) }
			if st := inj.stores[p.ID()]; st != nil {
				st.rec = s
				w.store = st
			}
		case sbaSnapshotter:
			w.capture = func() any { return s.Snapshot() }
			w.restore = func(v any) { s.Restore(v.(*sba.Snapshot)) }
		}
		// The in-memory snapshot regime is only consumed by revive() after a
		// scheduled crash window on the non-durable path (storage faults and
		// quarantine only ever down replicas that recover from their WAL).
		// Snapshotting is a deep copy of the whole round state — O(n) map
		// entries per delivery — so skip it entirely for replicas the plan
		// can never crash; at thousands of replicas it would otherwise
		// dominate the run.
		if w.store == nil {
			for _, c := range inj.Plan.Crashes {
				if c.Proc == p.ID() {
					w.volatileCrash = true
					break
				}
			}
		}
		out[i] = w
	}
	return out
}

// wrapProc realizes crash windows around one process: while down, incoming
// deliveries and ticks are consumed and lost; on the first event after the
// window it reboots — from its WAL when durable, from the last in-memory
// snapshot otherwise — and rejoins.
type wrapProc struct {
	inner network.Process
	inj   *Injector
	store *replicaStore

	// capture and restore realize the in-memory snapshot regime generically
	// over the protocol front-ends (dbft and sba snapshots have different
	// types; the closures erase that). Nil for processes without a snapshot
	// contract.
	capture func() any
	restore func(any)

	started bool
	down    bool
	// volatileCrash marks replicas the plan crashes on the non-durable path —
	// the only consumers of the per-delivery in-memory snapshot below.
	volatileCrash bool
	snap          any
}

var _ network.Process = (*wrapProc)(nil)
var _ network.Ticker = (*wrapProc)(nil)

func (w *wrapProc) ID() network.ProcID { return w.inner.ID() }

func (w *wrapProc) Start(send network.Sender) {
	if w.observeDown() {
		return
	}
	if w.store != nil {
		w.startDurable(send)
		return
	}
	w.started = true
	w.inner.Start(send)
	w.persist()
}

// startDurable runs Start under persist-before-release: the post-Start state
// becomes the WAL's base snapshot before any of Start's sends go out.
func (w *wrapProc) startDurable(send network.Sender) {
	var buf []network.Message
	w.inner.Start(func(m network.Message) { buf = append(buf, m) })
	if err := w.store.begin(); err != nil {
		w.storageFailure(err)
		return
	}
	w.started = true
	w.release(buf, send)
}

func (w *wrapProc) Deliver(m network.Message, send network.Sender) {
	if w.observeDown() {
		w.inj.log(EvLost, w.ID(), m)
		return
	}
	if !w.revive(send) {
		w.inj.log(EvLost, w.ID(), m)
		return
	}
	if w.store != nil {
		// Persist-before-release: buffer the handler's sends, append the
		// delivered message to the WAL, and only then let the sends out. A
		// kill during the append loses only state nobody else has seen, so
		// clean-crash recovery can never equivocate.
		var buf []network.Message
		w.inner.Deliver(m, func(out network.Message) { buf = append(buf, out) })
		if err := w.store.appendMsg(m); err != nil {
			w.storageFailure(err)
			w.inj.log(EvLost, w.ID(), m)
			return
		}
		w.release(buf, send)
		return
	}
	w.inner.Deliver(m, send)
	w.persist()
}

func (w *wrapProc) OnTick(step int, send network.Sender) {
	w.inj.observeStep(step)
	if w.observeDown() {
		return
	}
	if !w.revive(send) {
		return
	}
	t, ok := w.inner.(network.Ticker)
	if !ok {
		return
	}
	if w.store != nil {
		// Retransmissions re-send already-persisted outbox state; no new
		// persistence is needed, but the equivocation oracle still taps them.
		t.OnTick(step, func(m network.Message) {
			w.inj.recordRelease(w.ID(), m)
			send(m)
		})
		return
	}
	t.OnTick(step, send)
}

// release lets buffered handler output onto the wire, tapping the
// equivocation oracle on the way.
func (w *wrapProc) release(buf []network.Message, send network.Sender) {
	for _, m := range buf {
		w.inj.recordRelease(w.ID(), m)
		send(m)
	}
}

// storageFailure handles an error from the durable path: a kill point means
// the replica is down (the injector already knows); anything else means the
// log itself failed and the replica is retired.
func (w *wrapProc) storageFailure(err error) {
	w.down = true
	w.store.dirty = true
	if !errors.Is(err, ErrKilled) {
		w.inj.quarantineProc(w.ID(), err.Error())
	}
}

// observeDown checks the crash schedule, logging the down transition once.
func (w *wrapProc) observeDown() bool {
	if !w.inj.downNow(w.ID()) {
		return false
	}
	if !w.down {
		w.down = true
		w.inj.log(EvCrash, w.ID(), network.Message{})
	}
	return true
}

// revive performs the reboot on the first event after a crash window and
// reports whether the replica is up. Durable replicas rebuild state from
// disk — base snapshot plus re-delivery of the logged suffix — and an
// unrecoverable log quarantines instead of reviving. A process that crashed
// before its Start finally starts.
func (w *wrapProc) revive(send network.Sender) bool {
	if w.down {
		if w.store != nil {
			if !w.restoreFromDisk() {
				return false
			}
			w.down = false
			w.inj.log(EvRecover, w.ID(), network.Message{})
		} else {
			w.down = false
			w.inj.log(EvRecover, w.ID(), network.Message{})
			if w.restore != nil && w.snap != nil {
				w.restore(w.snap)
			}
		}
	}
	if !w.started {
		if w.store != nil {
			w.startDurable(send)
		} else {
			w.started = true
			w.inner.Start(send)
			w.persist()
		}
	}
	return !w.down
}

// restoreFromDisk is crash-consistent recovery: reopen the WAL (torn tails
// truncate, checksum failures quarantine), Restore the base snapshot, and
// re-Deliver the logged messages with a no-op sender — their sends already
// left pre-crash, and the rebuilt outbox retransmits on its own clock.
func (w *wrapProc) restoreFromDisk() bool {
	ds, err := w.store.recoverDisk()
	if err != nil {
		w.inj.quarantineProc(w.ID(), err.Error())
		return false
	}
	w.inj.SilentCorruptions = append(w.inj.SilentCorruptions, w.store.takeSilent()...)
	if ds.fresh {
		if w.started {
			// Durable state gone after messages were released: rejoining
			// from scratch could equivocate, so retire the replica (the
			// ledger layer catches it up by state transfer instead).
			w.inj.quarantineProc(w.ID(), fmt.Sprintf("p%d: wal empty after start (total disk loss)", w.ID()))
			return false
		}
		return true // never started: the Start path below boots it fresh
	}
	w.store.rec.Restore(ds.snap)
	nop := func(network.Message) {}
	for _, m := range ds.msgs {
		w.inner.Deliver(m, nop)
	}
	w.store.dirty = false
	w.inj.log(EvReplay, w.ID(), network.Message{})
	return true
}

// persist is the synchronous stable write after every handler run — the
// persistence regime under which a recovered replica can never equivocate
// against its pre-crash messages (see dbft.Snapshot). Durable replicas
// persist through their WAL instead (startDurable / Deliver).
func (w *wrapProc) persist() {
	if w.capture != nil && w.volatileCrash {
		w.snap = w.capture()
	}
}
