package faults

import (
	"strings"
	"testing"

	"repro/internal/dbft"
	"repro/internal/fairness"
	"repro/internal/network"
)

// echoProc counts deliveries; used to probe the injector mechanics without
// the consensus stack.
type echoProc struct {
	id       network.ProcID
	got      []network.Message
	gotSteps []int
	sys      *network.System
}

func (p *echoProc) ID() network.ProcID        { return p.id }
func (p *echoProc) Start(send network.Sender) {}
func (p *echoProc) Deliver(m network.Message, send network.Sender) {
	p.got = append(p.got, m)
	if p.sys != nil {
		p.gotSteps = append(p.gotSteps, p.sys.Steps)
	}
}

func TestDropBudgetBoundsLoss(t *testing.T) {
	// A rule with budget 2 may eat at most two copies of the same logical
	// message, no matter how often it is retransmitted.
	plan := Plan{Seed: 1, Drops: []DropRule{{Prob: 1, Budget: 2}}}
	inj := NewInjector(plan, network.FIFOScheduler{})
	recv := &echoProc{id: 1}
	sender := &echoProc{id: 0}
	sys, err := network.NewSystem(inj.Wrap([]network.Process{sender, recv}), inj)
	if err != nil {
		t.Fatal(err)
	}
	inj.Install(sys)

	m := network.Message{From: 0, To: 1, Kind: network.MsgBV, Value: 1}
	for i := 0; i < 5; i++ {
		sys.Inject(m)
	}
	if _, err := sys.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	if len(recv.got) != 3 {
		t.Fatalf("budget 2 with 5 sends: want 3 deliveries, got %d (log:\n%s)",
			len(recv.got), FormatEvents(inj.Log, 0))
	}
	if n := CountEvents(inj.Log)[EvDrop]; n != 2 {
		t.Fatalf("want 2 drop events, got %d", n)
	}
}

func TestUnboundedDropIsUnfair(t *testing.T) {
	fair := Plan{Drops: []DropRule{{Prob: 0.5, Budget: 3}}, Partitions: []Partition{{Start: 1, Heal: 10}}}
	if !fair.FairDelivery() {
		t.Error("bounded drops + healing partition should be fair")
	}
	for _, p := range []Plan{
		{Drops: []DropRule{{Prob: 1, Budget: -1}}},
		{Partitions: []Partition{{Start: 1, Heal: -1}}},
		UnfairParityDrop(7),
	} {
		if p.FairDelivery() {
			t.Errorf("plan %s should be unfair", p.Encode())
		}
	}
}

func TestPartitionHoldsThenHeals(t *testing.T) {
	// A cut between {0} and {1} holds the message; the injector ticks time
	// forward until the heal step, after which delivery happens.
	plan := Plan{Seed: 1, Partitions: []Partition{{Start: 0, Heal: 40, GroupA: []network.ProcID{0}}}}
	inj := NewInjector(plan, network.FIFOScheduler{})
	recv := &echoProc{id: 1}
	sender := &echoProc{id: 0}
	sys, err := network.NewSystem(inj.Wrap([]network.Process{sender, recv}), inj)
	if err != nil {
		t.Fatal(err)
	}
	inj.Install(sys)
	recv.sys = sys
	sys.Inject(network.Message{From: 0, To: 1, Kind: network.MsgBV, Value: 1})
	if _, err := sys.Run(100, func() bool { return len(recv.got) == 1 }); err != nil {
		t.Fatal(err)
	}
	if len(recv.got) != 1 {
		t.Fatal("message never delivered after heal")
	}
	if got := recv.gotSteps[0]; got < 40 {
		t.Fatalf("delivered at step %d, before the heal step 40", got)
	}
}

func TestPlanRoundTrip(t *testing.T) {
	p := Plan{
		Seed:       42,
		Drops:      []DropRule{{Kind: network.MsgBV, ParityBV: true, Prob: 0.5, Budget: 2}},
		DupProb:    0.25,
		DupBudget:  2,
		DelayProb:  0.1,
		DelaySteps: 50,
		Partitions: []Partition{{Start: 10, Heal: 99, GroupA: []network.ProcID{0, 2}}},
		Crashes:    []Crash{{Proc: 1, At: 5, Recover: 80}, {Proc: 2, At: 7, Recover: -1}},
	}
	q, err := ParsePlan(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if q.Encode() != p.Encode() {
		t.Fatalf("round trip mismatch:\n%s\n%s", p.Encode(), q.Encode())
	}
	if got := q.CrashStops(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("crash stops: got %v", got)
	}
}

// consensusScenario is a helper building a 4-process, 1-fault scenario with
// the given plan.
func consensusScenario(plan Plan, inputs []int, byz []string, sched string, maxSteps int) Scenario {
	return Scenario{
		N: 4, T: 1, MaxRounds: 12, MaxSteps: maxSteps, Tick: 25,
		Inputs: inputs, Byz: byz, Sched: sched, Plan: plan,
	}
}

func TestConsensusSurvivesLossyLinks(t *testing.T) {
	// Bounded loss + duplication + delay, no Byzantine process: every fair
	// plan must reach a decision thanks to retransmission, with safety
	// intact.
	plan := Plan{
		Seed:       3,
		Drops:      []DropRule{{Prob: 0.3, Budget: 2}},
		DupProb:    0.2,
		DupBudget:  2,
		DelayProb:  0.3,
		DelaySteps: 60,
	}
	sc := consensusScenario(plan, []int{0, 1, 1, 0}, nil, "random", 120_000)
	out := sc.Run()
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if !out.Decided {
		t.Fatalf("seed %d: no decision after %d steps under a fair plan\nfaults: %v",
			plan.Seed, out.Steps, CountEvents(out.Events))
	}
	if out.AgreementErr != nil || out.ValidityErr != nil {
		t.Fatalf("seed %d: safety violated: %v %v", plan.Seed, out.AgreementErr, out.ValidityErr)
	}
}

func TestCrashRecoveryRejoins(t *testing.T) {
	// Replica 0 crashes early and recovers much later: it must reboot from
	// its snapshot, catch up via peer retransmission, and still decide.
	plan := Plan{Seed: 5, Crashes: []Crash{{Proc: 0, At: 10, Recover: 2000}}}
	sc := consensusScenario(plan, []int{1, 0, 1, 0}, nil, "random", 200_000)
	out := sc.Run()
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	counts := CountEvents(out.Events)
	if counts[EvCrash] == 0 || counts[EvRecover] == 0 {
		t.Fatalf("crash window never exercised: %v", counts)
	}
	if counts[EvLost] == 0 {
		t.Fatalf("expected deliveries lost during the crash window: %v", counts)
	}
	if !out.Decided {
		t.Fatalf("recovered replica prevented decision (steps=%d, faults=%v)", out.Steps, counts)
	}
	if out.AgreementErr != nil || out.ValidityErr != nil {
		t.Fatalf("safety violated across crash-recovery: %v %v", out.AgreementErr, out.ValidityErr)
	}
}

func TestCrashStopWithinBudgetStillDecides(t *testing.T) {
	// One crash-stop consumes the whole fault budget (t=1): the three
	// survivors must still decide.
	plan := Plan{Seed: 8, Crashes: []Crash{{Proc: 2, At: 15, Recover: -1}}}
	sc := consensusScenario(plan, []int{1, 1, 0, 0}, nil, "random", 200_000)
	out := sc.Run()
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if len(out.Participating) != 3 {
		t.Fatalf("want 3 participating processes, got %d", len(out.Participating))
	}
	if !out.Decided {
		t.Fatalf("survivors failed to decide after %d steps", out.Steps)
	}
	if out.AgreementErr != nil || out.ValidityErr != nil {
		t.Fatalf("safety violated: %v %v", out.AgreementErr, out.ValidityErr)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	// Drive a process through part of a consensus, snapshot it, keep
	// mutating the original, restore into the copy: the restored state must
	// match the snapshot point, and replaying the same messages must be
	// idempotent.
	cfg := dbft.Config{N: 4, T: 1, MaxRounds: 8}
	all := dbft.AllIDs(4)
	p, err := dbft.NewProcess(0, 1, cfg, all)
	if err != nil {
		t.Fatal(err)
	}
	var sent []network.Message
	send := func(m network.Message) { sent = append(sent, m) }
	p.Start(send)
	msgs := []network.Message{
		{From: 1, To: 0, Round: 0, Kind: network.MsgBV, Value: 1},
		{From: 2, To: 0, Round: 0, Kind: network.MsgBV, Value: 1},
		{From: 3, To: 0, Round: 0, Kind: network.MsgBV, Value: 1},
	}
	for _, m := range msgs {
		p.Deliver(m, send)
	}
	snap := p.Snapshot()
	preRound, preEst := p.Round(), p.Estimate()

	// Mutate past the snapshot point.
	p.Deliver(network.Message{From: 1, To: 0, Round: 0, Kind: network.MsgAux, Set: []int{1}}, send)
	p.Restore(snap)
	if p.Round() != preRound || p.Estimate() != preEst {
		t.Fatalf("restore: round/est = %d/%d, want %d/%d", p.Round(), p.Estimate(), preRound, preEst)
	}
	// Replaying already-seen messages must not change state (idempotence).
	before := dbft.Describe([]*dbft.Process{p})
	for _, m := range msgs {
		p.Deliver(m, send)
	}
	if after := dbft.Describe([]*dbft.Process{p}); after != before {
		t.Fatalf("replay after restore changed state:\n%s\nvs\n%s", before, after)
	}
}

func TestUnfairPlanLivelocksLikeLemma7(t *testing.T) {
	// The scripted unfair plan drops every parity-valued BV copy forever:
	// no round can become good, so — as in Lemma 7 — no correct process
	// ever decides, while Agreement and Validity hold vacuously.
	plan := UnfairParityDrop(11)
	sc := consensusScenario(plan, []int{0, 1, 1}, []string{"silent"}, "random", 50_000)
	out := sc.Run()
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Decided {
		t.Fatalf("unfair plan terminated — it must livelock (plan %s)", plan.Encode())
	}
	if out.AgreementErr != nil || out.ValidityErr != nil {
		t.Fatalf("safety must hold even without termination: %v %v", out.AgreementErr, out.ValidityErr)
	}
	if n := CountEvents(out.Events)[EvDrop]; n == 0 {
		t.Fatal("the unfair plan never dropped anything")
	}
	// The fairness witness of Definition 2/3 must be absent: that is what
	// forecloses Theorem 6.
	if g := fairness.FirstGoodRound(out.Procs, sc.MaxRounds); g >= 0 {
		t.Fatalf("unfair plan produced a good round %d", g)
	}
}

func TestScenarioReplayIsDeterministic(t *testing.T) {
	c := Campaign{Runs: 1, BaseSeed: 77, N: 4, T: 1}
	sc := c.RandomScenario(77)
	enc := sc.Encode()
	sc2, err := ParseScenario(enc)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sc.Run(), sc2.Run()
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.Steps != b.Steps || a.Decided != b.Decided || len(a.Events) != len(b.Events) {
		t.Fatalf("replay diverged: steps %d/%d decided %v/%v events %d/%d",
			a.Steps, b.Steps, a.Decided, b.Decided, len(a.Events), len(b.Events))
	}
	if al, bl := FormatEvents(a.Events, 0), FormatEvents(b.Events, 0); al != bl {
		t.Fatalf("fault log diverged:\n%s\nvs\n%s", al, bl)
	}
}

// panicProc blows up on its first delivery.
type panicProc struct{ id network.ProcID }

func (p *panicProc) ID() network.ProcID                             { return p.id }
func (p *panicProc) Start(send network.Sender)                      {}
func (p *panicProc) Deliver(m network.Message, send network.Sender) { panic("boom") }

func TestRunConvertsPanicsToErrors(t *testing.T) {
	sys, err := network.NewSystem([]network.Process{
		&echoProc{id: 0}, &panicProc{id: 1},
	}, network.FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Inject(network.Message{From: 0, To: 1, Kind: network.MsgBV})
	if _, err := sys.Run(10, nil); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("want panic converted to error, got %v", err)
	}
}

func TestCampaignSurvivesPanickingRun(t *testing.T) {
	// A scenario whose stack panics must surface as a violation carrying
	// the replayable scenario, not crash the campaign. Exercised via a
	// direct Scenario.Run with an invalid configuration path.
	sc := Scenario{N: 4, T: 1, MaxRounds: 8, MaxSteps: 100, Tick: 10,
		Inputs: []int{0, 1}, Byz: []string{"nonsense", "silent"}, Plan: Plan{Seed: 1}}
	out := sc.Run()
	if out.Err == nil || !strings.Contains(out.Err.Error(), "nonsense") {
		t.Fatalf("want strategy error, got %v", out.Err)
	}
	if !strings.Contains(out.Err.Error(), `"n":4`) {
		t.Fatalf("error must carry the replayable scenario, got %v", out.Err)
	}
}
