package faults

import "testing"

// TestChaosCampaign200Seeds is the acceptance campaign: 200 seeded random
// fault mixes (drops, duplicates, delays, partitions, crash-recovery,
// crash-stop, Byzantine strategies) over n=4, t=1. Agreement and Validity
// must hold in every run; Termination must hold in every run whose plan
// guarantees eventual delivery. Any violation fails with the seed and the
// replayable scenario JSON.
func TestChaosCampaign200Seeds(t *testing.T) {
	c := Campaign{Runs: 200, BaseSeed: 1, N: 4, T: 1}
	res := c.Run()
	t.Log(res.String())
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
	if res.Runs != 200 {
		t.Fatalf("campaign ran %d of 200 seeds", res.Runs)
	}
	// The campaign must actually have exercised the fault plane: every
	// major fault class should appear across 200 runs.
	for _, kind := range []EventKind{EvDrop, EvDuplicate, EvDelay, EvCrash, EvRecover, EvLost} {
		if res.Events[kind] == 0 {
			t.Errorf("200-seed campaign never produced a %q event", kind)
		}
	}
	if res.FairRuns == 0 {
		t.Error("campaign generated no fair plans — termination was never tested")
	}
}

// TestChaosCampaignLargerSystem spot-checks n=7, t=2 with a smaller seed
// count (each run is bigger).
func TestChaosCampaignLargerSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := Campaign{Runs: 15, BaseSeed: 900, N: 7, T: 2}
	res := c.Run()
	t.Log(res.String())
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}
