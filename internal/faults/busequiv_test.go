package faults

import (
	"testing"
)

// The byte-identity contract of the event-bus rearchitecture: for any seeded
// scenario the bus (the default backend) must replay exactly what the legacy
// flat in-flight slice produced — same step count, same per-process state,
// same fault-event log — because the arrival-ordered merge of the per-peer
// queues *is* the flat slice, entry for entry. These tests pin that contract
// across the chaos campaign generator, the durable torture generator and the
// scripted Lemma-7 livelock plan, and pin native drain mode's determinism
// across worker partition counts.

func runFingerprint(t *testing.T, sc Scenario) (string, Outcome) {
	t.Helper()
	if err := sc.Validate(); err != nil {
		t.Fatalf("scenario invalid: %v\n%s", err, sc.Encode())
	}
	out := sc.Run()
	if out.Err != nil {
		t.Fatalf("run error: %v", out.Err)
	}
	return sc.Fingerprint(&out), out
}

func withBackend(sc Scenario, backend string) Scenario {
	sim := SimOptions{}
	if sc.Sim != nil {
		sim = *sc.Sim
	}
	sim.Backend = backend
	sc.Sim = &sim
	return sc
}

// TestChaosCampaignFingerprintsBusVsFlat replays the randomized chaos
// generator seed for seed on both backends and requires bit-identical
// fingerprints — the 200-seed regression net for the rearchitecture.
func TestChaosCampaignFingerprintsBusVsFlat(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 30
	}
	c := Campaign{N: 4, T: 1, MaxSteps: 30_000}
	for i := 0; i < seeds; i++ {
		seed := int64(9000 + i)
		sc := c.RandomScenario(seed)
		flatFP, flatOut := runFingerprint(t, withBackend(sc, "flat"))
		busFP, busOut := runFingerprint(t, withBackend(sc, "bus"))
		if flatFP != busFP {
			t.Fatalf("seed %d: fingerprints diverge\n flat %s (steps=%d decided=%v)\n bus  %s (steps=%d decided=%v)\n replay: %s",
				seed, flatFP, flatOut.Steps, flatOut.Decided, busFP, busOut.Steps, busOut.Decided, sc.Encode())
		}
		if busOut.Bus.Delivered == 0 && busOut.Steps > 0 && flatOut.Steps > 0 {
			t.Fatalf("seed %d: bus counted no deliveries over %d steps", seed, busOut.Steps)
		}
	}
}

// TestTortureFingerprintsBusVsFlat does the same over the durable torture
// generator: WAL recovery, storage faults and the replay oracle must all
// behave identically on the bus.
func TestTortureFingerprintsBusVsFlat(t *testing.T) {
	runs := 25
	if testing.Short() {
		runs = 6
	}
	c := TortureCampaign{N: 4, T: 1, MaxSteps: 30_000}
	for i := 0; i < runs; i++ {
		seed := int64(4400 + i)
		sc := c.RandomScenario(seed)
		flatFP, _ := runFingerprint(t, withBackend(sc, "flat"))
		busFP, busOut := runFingerprint(t, withBackend(sc, "bus"))
		if flatFP != busFP {
			t.Fatalf("seed %d: durable fingerprints diverge\n flat %s\n bus  %s\n replay: %s",
				seed, flatFP, busFP, sc.Encode())
		}
		if len(busOut.SilentCorruptions) != 0 || len(busOut.Contradictions) != 0 {
			t.Fatalf("seed %d: durability oracle hits on the bus: %v %v",
				seed, busOut.SilentCorruptions, busOut.Contradictions)
		}
	}
}

// TestLivelockFingerprintBusVsFlat pins the Lemma-7 analogue: the scripted
// unfair parity-drop plan livelocks identically on both backends — same
// (undecided) outcome, same 50k-step fault log, same process states.
func TestLivelockFingerprintBusVsFlat(t *testing.T) {
	sc := Scenario{
		N: 4, T: 1, MaxRounds: 12, MaxSteps: 50_000, Tick: 25,
		Inputs: []int{0, 1, 1}, Byz: []string{"silent"}, Sched: "random",
		Plan: UnfairParityDrop(11),
	}
	flatFP, flatOut := runFingerprint(t, withBackend(sc, "flat"))
	busFP, busOut := runFingerprint(t, withBackend(sc, "bus"))
	if flatOut.Decided || busOut.Decided {
		t.Fatalf("unfair plan decided (flat=%v bus=%v) — livelock expected", flatOut.Decided, busOut.Decided)
	}
	if flatFP != busFP {
		t.Fatalf("livelock fingerprints diverge:\n flat %s\n bus  %s", flatFP, busFP)
	}
}

// TestNativeFingerprintIndependentOfPartitions is the regression test for the
// shared-PRNG race: two RandomLiar processes drain on different goroutines
// when Partitions > 1, so under the old one-*rand.Rand-for-all-liars layout
// this test both tripped -race and fingerprint-diverged between partition
// counts. With per-liar seeded PRNGs the run is a pure function of the seed
// at any worker count.
func TestNativeFingerprintIndependentOfPartitions(t *testing.T) {
	base := Scenario{
		N: 7, T: 2, MaxRounds: 12, MaxSteps: 40_000, Tick: 25,
		Inputs: []int{0, 1, 1, 0, 1}, Byz: []string{"liar", "liar"}, Sched: "native",
		Sim:  &SimOptions{Batch: 4, Dupemap: true, StallK: 2000},
		Plan: Plan{Seed: 77, Drops: []DropRule{{Prob: 0.2, Budget: 1}}, DelayProb: 0.2, DelaySteps: 40},
	}
	parallel := base
	{
		sim := *base.Sim
		sim.Partitions = 4
		parallel.Sim = &sim
	}
	// Native fingerprints canonicalize the fault-event log (worker
	// interleaving scrambles append order, the multiset is what's invariant),
	// so the two digests are directly comparable.
	seqFP, seqOut := runFingerprint(t, base)
	parFP, parOut := runFingerprint(t, parallel)
	if seqFP != parFP {
		t.Fatalf("native fingerprints depend on partition count:\n p1 %s (steps=%d decided=%v)\n p4 %s (steps=%d decided=%v)",
			seqFP, seqOut.Steps, seqOut.Decided, parFP, parOut.Steps, parOut.Decided)
	}
	if seqOut.Decided != parOut.Decided || seqOut.Steps != parOut.Steps {
		t.Fatalf("outcomes diverge: p1 steps=%d decided=%v, p4 steps=%d decided=%v",
			seqOut.Steps, seqOut.Decided, parOut.Steps, parOut.Decided)
	}
}

// TestNativeGossipConsensusDecides drives the full DBFT stack through the
// sparse kadcast topology: messages relay through intermediate peers' bounded
// queues, the dupemap absorbs retransmission replays, and consensus still
// terminates with safety intact.
func TestNativeGossipConsensusDecides(t *testing.T) {
	sc := Scenario{
		N: 8, T: 2, MaxRounds: 12, MaxSteps: 40_000, Tick: 25,
		Inputs: []int{0, 1, 1, 0, 1, 0}, Byz: []string{"silent", "equivocator"}, Sched: "native",
		Sim:  &SimOptions{Topology: "gossip", Dupemap: true, QueueCap: 4096, Batch: 8, StallK: 4000},
		Plan: Plan{Seed: 5},
	}
	_, out := runFingerprint(t, sc)
	if !out.Decided {
		t.Fatalf("gossip consensus undecided after %d windows (bus %+v, stalled %v)",
			out.Steps, out.Bus, out.Stalled)
	}
	if out.AgreementErr != nil || out.ValidityErr != nil {
		t.Fatalf("safety violated over gossip: %v %v", out.AgreementErr, out.ValidityErr)
	}
	if out.Bus.Relayed == 0 {
		t.Fatal("gossip run relayed nothing — topology not engaged")
	}
	if len(out.Stalled) != 0 {
		t.Fatalf("stall detector left peers flagged at decision: %v", out.Stalled)
	}
}

// TestNativeConsensusWithBoundedQueuesDecides: tight per-peer caps drop
// bursts, but tick-driven retransmission recovers everything — the bounded
// heap configuration the 2,000-replica bench runs is live, not a lucky
// accident of oversized queues.
func TestNativeConsensusWithBoundedQueuesDecides(t *testing.T) {
	sc := Scenario{
		N: 7, T: 2, MaxRounds: 12, MaxSteps: 40_000, Tick: 20,
		Inputs: []int{0, 1, 1, 0, 1}, Byz: []string{"liar", "silent"}, Sched: "native",
		Sim:  &SimOptions{QueueCap: 8, Dupemap: true, Batch: 2, StallK: 4000},
		Plan: Plan{Seed: 13},
	}
	_, out := runFingerprint(t, sc)
	if !out.Decided {
		t.Fatalf("bounded-queue consensus undecided after %d windows (bus %+v)", out.Steps, out.Bus)
	}
	if out.AgreementErr != nil || out.ValidityErr != nil {
		t.Fatalf("safety violated: %v %v", out.AgreementErr, out.ValidityErr)
	}
	if out.Bus.PeakDepth > 8 {
		t.Fatalf("peak queue depth %d exceeds the cap 8", out.Bus.PeakDepth)
	}
}
