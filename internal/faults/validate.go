// Scenario input validation: fail fast on malformed or inconsistent
// scenario JSON with a diagnostic that names the offending line (syntax) or
// field path (semantics), instead of running a garbage campaign or panicking
// deep inside the simulator.

package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/network"
)

// parseScenarioStrict decodes scenario JSON rejecting unknown fields and
// trailing input, annotating syntax and type errors with line:column.
func parseScenarioStrict(s string) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader([]byte(s)))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, annotateJSONError(s, err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		off := dec.InputOffset()
		line, col := lineCol(s, off)
		return Scenario{}, fmt.Errorf("faults: bad scenario at line %d col %d: trailing data after the scenario object", line, col)
	}
	return sc, nil
}

func annotateJSONError(s string, err error) error {
	switch e := err.(type) {
	case *json.SyntaxError:
		line, col := lineCol(s, e.Offset)
		return fmt.Errorf("faults: bad scenario at line %d col %d: %v", line, col, e)
	case *json.UnmarshalTypeError:
		line, col := lineCol(s, e.Offset)
		field := e.Field
		if field == "" {
			field = "(top level)"
		}
		return fmt.Errorf("faults: bad scenario at line %d col %d: field %s: cannot decode %s into %s", line, col, field, e.Value, e.Type)
	default:
		return fmt.Errorf("faults: bad scenario: %w", err)
	}
}

func lineCol(s string, off int64) (line, col int) {
	line, col = 1, 1
	if off > int64(len(s)) {
		off = int64(len(s))
	}
	for i := int64(0); i < off; i++ {
		if s[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// Protocols is the accepted protocol vocabulary ("" defaults to dbft). The
// CLI protocol selector validates against the same set.
var Protocols = map[string]bool{"": true, "dbft": true, "sba": true}

// KnownProtocols lists the selectable protocol front-ends for error text.
const KnownProtocols = "dbft, sba"

// byzStrategies is the accepted Byzantine strategy vocabulary.
var byzStrategies = map[string]bool{"silent": true, "equivocator": true, "liar": true}

// schedulers is the accepted scheduler vocabulary ("" defaults to random).
var schedulers = map[string]bool{"": true, "random": true, "fifo": true, "fair": true, "native": true}

// simBackends and simTopologies are the accepted sim-block vocabularies.
var (
	simBackends   = map[string]bool{"": true, "bus": true, "flat": true}
	simTopologies = map[string]bool{"": true, "full": true, "gossip": true}
)

// Validate checks the scenario for internal consistency before a run. Every
// error names the offending field with its path (e.g. plan.storage[1].kind)
// so a hand-written scenario file can be fixed without reading the source.
func (sc Scenario) Validate() error {
	var errs []string
	bad := func(path, format string, args ...any) {
		errs = append(errs, path+": "+fmt.Sprintf(format, args...))
	}

	if !Protocols[sc.Protocol] {
		bad("protocol", "unknown protocol %q (known protocols: %s)", sc.Protocol, KnownProtocols)
	}
	isSBA := sc.Protocol == "sba"
	if isSBA {
		if sc.Durable {
			bad("durable", "durable WAL replicas are dbft-only; protocol \"sba\" uses in-memory crash-recovery snapshots")
		}
		if len(sc.Plan.Storage) > 0 {
			bad("plan.storage", "storage faults are dbft-only (they require durable WALs)")
		}
	}
	if sc.N <= 0 {
		bad("n", "must be positive, got %d", sc.N)
	}
	if sc.T < 0 {
		bad("t", "must be nonnegative, got %d", sc.T)
	}
	if sc.N > 0 && sc.T > 0 && sc.N <= 3*sc.T {
		bad("t", "resilience requires n > 3t, got n=%d t=%d", sc.N, sc.T)
	}
	if sc.MaxRounds < 0 {
		bad("max_rounds", "must be nonnegative, got %d", sc.MaxRounds)
	}
	if sc.MaxSteps < 0 {
		bad("max_steps", "must be nonnegative, got %d", sc.MaxSteps)
	}
	if sc.Tick < 0 {
		bad("tick", "must be nonnegative, got %d", sc.Tick)
	}
	if len(sc.Inputs) == 0 {
		bad("inputs", "at least one correct process is required")
	}
	for i, v := range sc.Inputs {
		if v != 0 && v != 1 {
			bad(fmt.Sprintf("inputs[%d]", i), "binary consensus input must be 0 or 1, got %d", v)
		}
	}
	for i, s := range sc.Byz {
		if !byzStrategies[s] {
			bad(fmt.Sprintf("byz[%d]", i), "unknown strategy %q (want silent, equivocator or liar)", s)
		}
	}
	if sc.N > 0 && len(sc.Inputs)+len(sc.Byz) != sc.N {
		bad("inputs", "%d inputs + %d byzantine strategies != n = %d", len(sc.Inputs), len(sc.Byz), sc.N)
	}
	if len(sc.Byz) > sc.T {
		bad("byz", "%d byzantine processes exceed t = %d", len(sc.Byz), sc.T)
	}
	if !schedulers[sc.Sched] {
		bad("sched", "unknown scheduler %q (want random, fifo, fair or native)", sc.Sched)
	}
	if sim := sc.Sim; sim != nil {
		if !simBackends[sim.Backend] {
			bad("sim.backend", "unknown backend %q (want bus or flat)", sim.Backend)
		}
		if !simTopologies[sim.Topology] {
			bad("sim.topology", "unknown topology %q (want full or gossip)", sim.Topology)
		}
		for _, f := range []struct {
			name string
			v    int
		}{
			{"sim.queue_cap", sim.QueueCap},
			{"sim.egress_cap", sim.EgressCap},
			{"sim.dupemap_cap", sim.DupemapCap},
			{"sim.stall_k", sim.StallK},
			{"sim.batch", sim.Batch},
			{"sim.partitions", sim.Partitions},
			{"sim.scan_limit", sim.ScanLimit},
		} {
			if f.v < 0 {
				bad(f.name, "must be nonnegative, got %d", f.v)
			}
		}
		if sim.Backend == "flat" {
			if sc.Sched == "native" {
				bad("sim.backend", "native drain mode requires the bus backend")
			}
			if sim.QueueCap != 0 || sim.EgressCap != 0 || sim.Dupemap || sim.DupemapCap != 0 ||
				sim.StallK != 0 || (sim.Topology != "" && sim.Topology != "full") {
				bad("sim.backend", "the flat shim supports no bus options (queue caps, dupemap, stall detection, topology)")
			}
		}
		if sim.Topology == "gossip" && sc.Sched != "native" {
			bad("sim.topology", "gossip relays through peer queues and requires sched \"native\"")
		}
		if sc.Sched != "native" && (sim.Batch != 0 || sim.Partitions > 1 || sim.ScanLimit != 0) {
			bad("sim.batch", "batch/partitions/scan_limit only apply under sched \"native\"")
		}
		if sim.Partitions > 1 && sc.Durable {
			bad("sim.partitions", "durable scenarios require partitions <= 1 (the WAL oracle state is not partition-safe)")
		}
	}

	nCorrect := len(sc.Inputs)
	correctProc := func(path string, id network.ProcID) {
		if int(id) < 0 || int(id) >= nCorrect {
			bad(path, "process %d is not a correct process (correct ids are 0..%d)", id, nCorrect-1)
		}
	}

	for i, d := range sc.Plan.Drops {
		path := fmt.Sprintf("plan.drops[%d]", i)
		if d.Prob < 0 || d.Prob > 1 {
			bad(path+".prob", "probability must be in [0,1], got %v", d.Prob)
		}
		// The drop-kind vocabulary is protocol-aware: dbft exchanges BV and
		// AUX, the sba reduction exchanges VOTE and CAND.
		if isSBA {
			switch d.Kind {
			case "", network.MsgVote, network.MsgCand:
			default:
				bad(path+".kind", "unknown message kind %q for protocol \"sba\" (want VOTE or CAND)", d.Kind)
			}
			if d.ParityBV {
				bad(path+".parity_bv", "parity-BV drops are dbft-only")
			}
		} else {
			switch d.Kind {
			case "", network.MsgBV, network.MsgAux:
			default:
				bad(path+".kind", "unknown message kind %q (want BV or AUX)", d.Kind)
			}
		}
	}
	if sc.Plan.DupProb < 0 || sc.Plan.DupProb > 1 {
		bad("plan.dup_prob", "probability must be in [0,1], got %v", sc.Plan.DupProb)
	}
	if sc.Plan.DelayProb < 0 || sc.Plan.DelayProb > 1 {
		bad("plan.delay_prob", "probability must be in [0,1], got %v", sc.Plan.DelayProb)
	}
	if sc.Plan.DelayProb > 0 && sc.Plan.DelaySteps <= 0 {
		bad("plan.delay_steps", "must be positive when delay_prob is set, got %d", sc.Plan.DelaySteps)
	}
	for i, p := range sc.Plan.Partitions {
		path := fmt.Sprintf("plan.partitions[%d]", i)
		if p.Start < 0 {
			bad(path+".start", "must be nonnegative, got %d", p.Start)
		}
		if p.Heal >= 0 && p.Heal <= p.Start {
			bad(path+".heal", "heal step %d is not after start %d (use a negative heal for a permanent cut)", p.Heal, p.Start)
		}
		if len(p.GroupA) == 0 {
			bad(path+".group_a", "empty group cuts nothing")
		}
		for j, id := range p.GroupA {
			if int(id) < 0 || int(id) >= sc.N {
				bad(fmt.Sprintf("%s.group_a[%d]", path, j), "process %d out of range (n = %d)", id, sc.N)
			}
		}
	}
	for i, c := range sc.Plan.Crashes {
		path := fmt.Sprintf("plan.crashes[%d]", i)
		correctProc(path+".proc", c.Proc)
		if c.At < 0 {
			bad(path+".at", "must be nonnegative, got %d", c.At)
		}
		if c.Recover >= 0 && c.Recover <= c.At {
			bad(path+".recover", "recovery step %d is not after the crash at %d (use a negative recover for crash-stop)", c.Recover, c.At)
		}
	}
	for i, f := range sc.Plan.Storage {
		path := fmt.Sprintf("plan.storage[%d]", i)
		if !sc.Durable {
			bad(path, "storage faults require \"durable\": true")
		}
		correctProc(path+".proc", f.Proc)
		if !StorageKinds[f.Kind] {
			bad(path+".kind", "unknown storage fault kind %q (want kill, torn, flip or nosync)", f.Kind)
		}
		if f.Append < 1 {
			bad(path+".append", "write-point ordinal must be >= 1, got %d", f.Append)
		}
		if f.KillAfter < 0 {
			bad(path+".kill_after", "must be nonnegative, got %d", f.KillAfter)
		}
	}

	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("faults: invalid scenario:\n  %s", strings.Join(errs, "\n  "))
}
