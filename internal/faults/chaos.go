package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime/debug"

	"repro/internal/dbft"
	"repro/internal/fairness"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sba"
)

// Scenario is one fully replayable chaos run: the consensus parameters, the
// correct inputs, the Byzantine strategies, the scheduler, and the fault
// plan. Everything an execution depends on is in here (all randomness is
// derived from Plan.Seed), so the JSON form printed on a violation replays
// the exact failing execution.
type Scenario struct {
	// Protocol selects the executable protocol front-end: "dbft" (default,
	// also "") or "sba" — the SBA* binary reduction of internal/sba.
	Protocol  string   `json:"protocol,omitempty"`
	N         int      `json:"n"`
	T         int      `json:"t"`
	MaxRounds int      `json:"max_rounds"`
	MaxSteps  int      `json:"max_steps"`
	Tick      int      `json:"tick"`            // network tick interval (retransmission clock)
	Inputs    []int    `json:"inputs"`          // correct-process inputs, ids 0..len-1
	Byz       []string `json:"byz,omitempty"`   // strategies for ids len(Inputs)..n-1
	Sched     string   `json:"sched,omitempty"` // random (default), fifo, fair, native
	// Durable gives every correct replica a write-ahead log on a
	// fault-injectable filesystem: crashes recover from disk, not from the
	// injector's memory, and Plan.Storage faults become live.
	Durable bool `json:"durable,omitempty"`
	// Sim selects the simulator backend and event-bus options (nil = the
	// default bus with flat-identical semantics). Sched "native" switches to
	// the bus's window-drain mode, the scale path for thousands of replicas.
	Sim  *SimOptions `json:"sim,omitempty"`
	Plan Plan        `json:"plan"`
}

// Encode renders the scenario as compact JSON.
func (sc Scenario) Encode() string {
	b, err := json.Marshal(sc)
	if err != nil {
		return fmt.Sprintf("faults: unencodable scenario: %v", err)
	}
	return string(b)
}

// ParseScenario decodes a scenario from its JSON form. Decoding is strict —
// unknown fields, type mismatches and trailing data fail with a line:column
// diagnostic — and the decoded scenario is validated for internal
// consistency (see Validate), so a bad replay input fails fast instead of
// running a garbage campaign.
func ParseScenario(s string) (Scenario, error) {
	sc, err := parseScenarioStrict(s)
	if err != nil {
		return Scenario{}, err
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// Outcome is the result of one scenario execution.
type Outcome struct {
	Steps   int
	Decided bool // every participating correct process decided
	// Participating excludes crash-stopped processes (they count as faults);
	// Procs holds every correct process for invariant checks. Exactly one of
	// the dbft and sba pairs is populated, per Scenario.Protocol.
	Procs            []*dbft.Process
	Participating    []*dbft.Process
	SBAProcs         []*sba.Process
	SBAParticipating []*sba.Process
	AgreementErr     error
	ValidityErr      error
	Err              error // run/panic error, already annotated with the scenario
	Events           []Event

	// Bus is the event-bus counter snapshot (zero on the flat backend);
	// Stalled lists peers the stall detector left flagged at run end.
	Bus     network.BusStats
	Stalled []network.ProcID

	// Durable-run results. Quarantined lists replicas retired because their
	// WAL was unrecoverable; Contradictions and SilentCorruptions are
	// oracle hits that must stay empty for a sound durability layer;
	// ReplayErrs are clean replicas whose live state differed from a fresh
	// replay of their log; ReplayChecked counts replicas that passed it.
	Quarantined       []network.ProcID
	QuarantineReasons map[network.ProcID]string
	Contradictions    []string
	SilentCorruptions []string
	ReplayErrs        []string
	ReplayChecked     int
}

// Run executes the scenario. Any panic in the protocol stack or harness is
// converted into an error carrying the replayable scenario JSON — a chaos
// campaign must survive a misbehaving run, not die with it.
func (sc Scenario) Run() (out Outcome) {
	defer func() {
		if r := recover(); r != nil {
			out.Err = fmt.Errorf("faults: panic in scenario %s: %v\n%s", sc.Encode(), r, debug.Stack())
		}
	}()
	if sc.Protocol == "sba" {
		sc.runSBA(&out)
		return out
	}

	cfg := dbft.Config{N: sc.N, T: sc.T, MaxRounds: sc.MaxRounds}
	all := dbft.AllIDs(sc.N)
	correct, err := dbft.Processes(cfg, sc.Inputs, all)
	if err != nil {
		out.Err = fmt.Errorf("faults: scenario %s: %w", sc.Encode(), err)
		return out
	}
	byzSet := map[network.ProcID]bool{}
	procs := make([]network.Process, 0, sc.N)
	for _, p := range correct {
		procs = append(procs, p)
	}
	// Byzantine randomness is decoupled from the injector's coins so the
	// fault stream is stable across strategy changes — and derived per
	// process, never shared: in the bus's native drain mode liar processes
	// on different partitions run on different goroutines, so one shared
	// *rand.Rand would be both a data race and a determinism leak.
	for i, strat := range sc.Byz {
		id := network.ProcID(len(sc.Inputs) + i)
		byzSet[id] = true
		switch strat {
		case "silent":
			procs = append(procs, &dbft.Silent{Id: id})
		case "equivocator":
			procs = append(procs, &dbft.Equivocator{Id: id, All: all,
				ZeroSide: func(p network.ProcID) bool { return int(p) < sc.N/2 }})
		case "liar":
			procs = append(procs, &dbft.RandomLiar{Id: id, All: all,
				Rng: rand.New(rand.NewSource(sc.Plan.Seed + 1 + 1_000_003*int64(id)))})
		default:
			out.Err = fmt.Errorf("faults: scenario %s: unknown byzantine strategy %q", sc.Encode(), strat)
			return out
		}
	}
	if len(sc.Inputs)+len(sc.Byz) != sc.N {
		out.Err = fmt.Errorf("faults: scenario %s: %d inputs + %d byzantine != n=%d",
			sc.Encode(), len(sc.Inputs), len(sc.Byz), sc.N)
		return out
	}

	var inner network.Scheduler
	switch sc.Sched {
	case "", "random":
		inner = network.RandomScheduler{Rng: rand.New(rand.NewSource(sc.Plan.Seed + 2))}
	case "fifo":
		inner = network.FIFOScheduler{}
	case "fair":
		inner = fairness.Scheduler{Byzantine: byzSet}
	case "native":
		// Window-drain mode: the bus drains queues directly and never
		// consults a scheduler; FIFO here only satisfies the constructor.
		inner = network.FIFOScheduler{}
	default:
		out.Err = fmt.Errorf("faults: scenario %s: unknown scheduler %q", sc.Encode(), sc.Sched)
		return out
	}

	inj := NewInjector(sc.Plan, inner)
	if sc.Durable {
		for _, p := range correct {
			inj.AttachStore(p.ID(), newReplicaStore(p.ID(), cfg, all,
				sc.Plan.storageFor(p.ID()), sc.Plan.Seed*1_000_003+int64(p.ID())+11))
		}
	}
	netOpts, err := sc.networkOptions()
	if err != nil {
		out.Err = fmt.Errorf("faults: scenario %s: %w", sc.Encode(), err)
		return out
	}
	sys, err := network.NewSystemOpts(inj.Wrap(procs), inj, netOpts)
	if err != nil {
		out.Err = fmt.Errorf("faults: scenario %s: %w", sc.Encode(), err)
		return out
	}
	inj.Install(sys)
	sys.TickInterval = sc.Tick

	// Crash-stopped processes are faults: termination is owed only to the
	// others.
	stopped := map[network.ProcID]bool{}
	for _, id := range sc.Plan.CrashStops() {
		stopped[id] = true
	}
	participating := make([]*dbft.Process, 0, len(correct))
	for _, p := range correct {
		if !stopped[p.ID()] {
			participating = append(participating, p)
		}
	}

	// Termination is owed to the clean participants: risky-storage replicas
	// are Byzantine-equivalent and quarantined replicas are crash-stops, so
	// neither blocks the decided predicate.
	cleanDecided := func() bool {
		for _, p := range participating {
			if inj.Risky(p.ID()) || inj.IsQuarantined(p.ID()) {
				continue
			}
			if _, _, ok := p.Decided(); !ok {
				return false
			}
		}
		return true
	}

	steps, err := sys.Run(sc.MaxSteps, cleanDecided)
	out.Steps = steps
	out.Procs = correct
	out.Participating = participating
	out.Events = inj.Log
	out.Bus = sys.BusStats()
	out.Stalled = sys.Stalled()
	if err != nil {
		out.Err = fmt.Errorf("faults: scenario %s: %w", sc.Encode(), err)
		return out
	}
	out.Decided = cleanDecided()
	// Safety invariants are checked over every correct process, including
	// crash-stopped ones: whatever they decided before dying must agree.
	// Risky-storage replicas are the exception — amnesia makes them
	// Byzantine-equivalent, and the fault budget already accounts for them.
	safetySet := correct
	if sc.Durable {
		safetySet = make([]*dbft.Process, 0, len(correct))
		for _, p := range correct {
			if !inj.Risky(p.ID()) {
				safetySet = append(safetySet, p)
			}
		}
	}
	out.AgreementErr = dbft.Agreement(safetySet)
	out.ValidityErr = dbft.Validity(safetySet, sc.Inputs)
	if sc.Durable {
		sc.checkDurable(inj, &out)
	}
	return out
}

// checkDurable runs the post-run durability oracles: quarantine accounting,
// the equivocation and flip oracles accumulated during the run, and the
// byte-identical replay check — every clean, up-to-date replica's live state
// must equal a fresh rebuild from nothing but its log.
func (sc Scenario) checkDurable(inj *Injector, out *Outcome) {
	out.Quarantined = inj.Quarantined()
	out.QuarantineReasons = inj.quarantined
	out.Contradictions = inj.Contradictions
	out.SilentCorruptions = inj.SilentCorruptions
	for _, p := range out.Procs {
		st := inj.stores[p.ID()]
		if st == nil || st.log == nil || st.dirty ||
			inj.Risky(p.ID()) || inj.IsQuarantined(p.ID()) || inj.downNow(p.ID()) {
			continue
		}
		fp, err := st.replayFingerprint()
		if err != nil {
			out.ReplayErrs = append(out.ReplayErrs, fmt.Sprintf("p%d: replay: %v", p.ID(), err))
			continue
		}
		if !bytes.Equal(fp, dbft.EncodeSnapshot(p.Snapshot())) {
			out.ReplayErrs = append(out.ReplayErrs,
				fmt.Sprintf("p%d: recovered state differs from fresh replay of its log", p.ID()))
			continue
		}
		out.ReplayChecked++
	}
}

// Campaign drives randomized fault mixes across many seeds, asserting the
// paper's trichotomy executably: Agreement and Validity must hold under
// *every* fault mix with f <= t; Termination must hold whenever the plan
// guarantees eventual delivery (fair plans, with retransmission enabled);
// unfair plans are exempt from the termination obligation.
type Campaign struct {
	Runs     int
	BaseSeed int64
	N        int
	T        int

	// Protocol selects the executable front-end for every generated
	// scenario: "" or "dbft" (default), or "sba".
	Protocol string

	MaxRounds int // default 12
	MaxSteps  int // default 120_000
	Tick      int // default 25

	// Verbose, when set, receives one line per run.
	Verbose func(format string, args ...any)

	// Stop, when set, is polled between seeds; a true return ends the
	// campaign early with Interrupted set and NextSeed pointing at the first
	// seed not run (signal handlers use it for graceful shutdown).
	Stop func() bool

	// Workers runs up to this many seeds concurrently (0 or 1 =
	// sequential). Seeds are independent simulations; results are folded in
	// seed order over the contiguous completed prefix, so the aggregate —
	// and the resume seed after an interrupt — is identical to a sequential
	// campaign. Verbose lines may interleave across seeds.
	Workers int

	// Trace, when non-nil, receives one "chaos" event per executed seed
	// (steps, decided, failed). Observational only.
	Trace *obs.Tracer

	// Sim, when non-nil, is attached to every generated scenario — the
	// hook for running a whole campaign on a specific simulator backend
	// (flat shim vs. bus) or bus configuration.
	Sim *SimOptions
}

// Violation is one failed assertion, carrying everything needed to replay
// it.
type Violation struct {
	Seed     int64
	Scenario Scenario
	Reason   string
}

func (v Violation) String() string {
	return fmt.Sprintf("seed %d: %s\n  replay: %s", v.Seed, v.Reason, v.Scenario.Encode())
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Runs       int
	FairRuns   int
	UnfairRuns int
	Decided    int
	Events     map[EventKind]int
	Violations []Violation

	// Interrupted is set when Stop ended the campaign early; NextSeed is the
	// first seed that did not run, so a rerun with -seed NextSeed resumes.
	Interrupted bool
	NextSeed    int64
}

func (r CampaignResult) String() string {
	s := fmt.Sprintf("chaos: %d runs (%d fair, %d unfair), %d decided, %d violations; faults: %d drops, %d dups, %d delays, %d lost, %d crashes, %d recoveries",
		r.Runs, r.FairRuns, r.UnfairRuns, r.Decided, len(r.Violations),
		r.Events[EvDrop], r.Events[EvDuplicate], r.Events[EvDelay],
		r.Events[EvLost], r.Events[EvCrash], r.Events[EvRecover])
	if r.Interrupted {
		s += fmt.Sprintf(" (interrupted; resume from seed %d)", r.NextSeed)
	}
	return s
}

// RandomScenario derives a random-but-replayable scenario for one seed: a
// random fault mix (drops, duplicates, delays, a healing partition,
// crash-recovery and crash-stop windows) with the fault budget f <= t
// respected by construction.
func (c Campaign) RandomScenario(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Protocol:  c.Protocol,
		N:         c.N,
		T:         c.T,
		MaxRounds: c.maxRounds(),
		MaxSteps:  c.maxSteps(),
		Tick:      c.tick(),
		Sched:     "random",
		Sim:       c.Sim,
		Plan:      Plan{Seed: seed},
	}

	// Fault budget: Byzantine processes and crash-stops together stay <= t.
	budget := c.T
	nByz := 0
	if budget > 0 && rng.Intn(2) == 0 {
		nByz = 1 + rng.Intn(budget)
		budget -= nByz
	}
	strategies := []string{"silent", "equivocator", "liar"}
	for i := 0; i < nByz; i++ {
		sc.Byz = append(sc.Byz, strategies[rng.Intn(len(strategies))])
	}
	nCorrect := c.N - nByz
	sc.Inputs = make([]int, nCorrect)
	for i := range sc.Inputs {
		sc.Inputs[i] = rng.Intn(2)
	}

	// Lossy-but-fair links: bounded per-message drop budget, so eventual
	// delivery survives by construction given retransmission.
	if rng.Intn(4) > 0 {
		sc.Plan.Drops = []DropRule{{
			Prob:   0.1 + 0.3*rng.Float64(),
			Budget: 1 + rng.Intn(2),
		}}
	}
	if rng.Intn(2) == 0 {
		sc.Plan.DupProb = 0.1 + 0.2*rng.Float64()
		sc.Plan.DupBudget = 1 + rng.Intn(2)
	}
	if rng.Intn(2) == 0 {
		sc.Plan.DelayProb = 0.1 + 0.3*rng.Float64()
		sc.Plan.DelaySteps = 20 + rng.Intn(150)
	}
	// Windowed faults must land where the consensus actually executes:
	// decisions for the sizes we campaign over arrive within a couple of
	// thousand steps, so windows scheduled beyond that would never fire.
	const horizon = 2000
	if rng.Intn(2) == 0 {
		start := 1 + rng.Intn(horizon/2)
		size := 1 + rng.Intn(c.N-1)
		group := make([]network.ProcID, 0, size)
		for _, id := range rng.Perm(c.N)[:size] {
			group = append(group, network.ProcID(id))
		}
		sc.Plan.Partitions = []Partition{{
			Start:  start,
			Heal:   start + 100 + rng.Intn(horizon/2),
			GroupA: group,
		}}
	}
	// Crash-recovery window on a random correct replica (does not consume
	// fault budget: it is correct, just amnesiac-but-persistent).
	if rng.Intn(2) == 0 {
		at := 1 + rng.Intn(horizon/2)
		sc.Plan.Crashes = append(sc.Plan.Crashes, Crash{
			Proc:    network.ProcID(rng.Intn(nCorrect)),
			At:      at,
			Recover: at + 100 + rng.Intn(horizon/4),
		})
	}
	// Crash-stop within the remaining fault budget, on a correct replica
	// not already crash-recovering.
	if budget > 0 && rng.Intn(3) == 0 {
		used := map[network.ProcID]bool{}
		for _, cr := range sc.Plan.Crashes {
			used[cr.Proc] = true
		}
		var candidates []network.ProcID
		for i := 0; i < nCorrect; i++ {
			if !used[network.ProcID(i)] {
				candidates = append(candidates, network.ProcID(i))
			}
		}
		if len(candidates) > 0 {
			sc.Plan.Crashes = append(sc.Plan.Crashes, Crash{
				Proc:    candidates[rng.Intn(len(candidates))],
				At:      1 + rng.Intn(horizon),
				Recover: -1,
			})
		}
	}
	return sc
}

func (c Campaign) maxRounds() int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return 12
}

func (c Campaign) maxSteps() int {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	return 120_000
}

func (c Campaign) tick() int {
	if c.Tick > 0 {
		return c.Tick
	}
	return 25
}

// Run executes the campaign. It never panics and never aborts early: every
// seed runs, every violation is collected with its replayable scenario.
// With Workers > 1 seeds execute concurrently; the fold over results still
// happens in seed order (see runIndexed), so the aggregate is deterministic.
func (c Campaign) Run() CampaignResult {
	type chaosRun struct {
		sc  Scenario
		out Outcome
	}
	recs, nextIdx, interrupted := runIndexed(c.Runs, c.Workers, c.Stop, func(i int) chaosRun {
		seed := c.BaseSeed + int64(i)
		obsCurrentSeed.Set(seed)
		sc := c.RandomScenario(seed)
		out := sc.Run()
		obsSeedsRun.Inc()
		traceSeed(c.Trace, "chaos", seed, &out)
		if c.Verbose != nil {
			c.Verbose("seed %d: steps=%d decided=%v fair=%v faults=%v",
				seed, out.Steps, out.Decided, sc.Plan.FairDelivery(), CountEvents(out.Events))
		}
		return chaosRun{sc: sc, out: out}
	})

	res := CampaignResult{Events: map[EventKind]int{}}
	for i, r := range recs {
		seed := c.BaseSeed + int64(i)
		out := r.out
		res.Runs++
		fair := r.sc.Plan.FairDelivery()
		if fair {
			res.FairRuns++
		} else {
			res.UnfairRuns++
		}
		if out.Decided {
			res.Decided++
		}
		for k, n := range CountEvents(out.Events) {
			res.Events[k] += n
		}
		fail := func(reason string) {
			obsSeedsFailed.Inc()
			res.Violations = append(res.Violations, Violation{Seed: seed, Scenario: r.sc, Reason: reason})
		}
		switch {
		case out.Err != nil:
			fail(fmt.Sprintf("run error: %v", out.Err))
		default:
			if out.AgreementErr != nil {
				fail(fmt.Sprintf("agreement: %v", out.AgreementErr))
			}
			if out.ValidityErr != nil {
				fail(fmt.Sprintf("validity: %v", out.ValidityErr))
			}
			if fair && !out.Decided {
				fail(fmt.Sprintf("termination: fair plan undecided after %d steps", out.Steps))
			}
		}
	}
	if interrupted {
		res.Interrupted = true
		res.NextSeed = c.BaseSeed + int64(nextIdx)
	}
	return res
}
