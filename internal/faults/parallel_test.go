package faults

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// TestRunIndexedComplete: without a stop, every worker count yields the full
// result set in index order.
func TestRunIndexedComplete(t *testing.T) {
	const runs = 37
	for _, workers := range []int{1, 4, 8, 64} {
		out, next, interrupted := runIndexed(runs, workers, nil, func(i int) int { return i * i })
		if interrupted {
			t.Fatalf("workers=%d: interrupted without a stop", workers)
		}
		if next != runs {
			t.Fatalf("workers=%d: next=%d, want %d", workers, next, runs)
		}
		if len(out) != runs {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(out), runs)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunIndexedStop: a stop that fires mid-sweep yields a contiguous prefix
// whose values are all correct, and a resume point that covers the rest.
func TestRunIndexedStop(t *testing.T) {
	const runs = 100
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		stop := func() bool { return calls.Add(1) > 20 }
		out, next, interrupted := runIndexed(runs, workers, stop, func(i int) int { return i + 1 })
		if !interrupted {
			t.Fatalf("workers=%d: stop fired but not interrupted", workers)
		}
		if next != len(out) {
			t.Fatalf("workers=%d: next=%d but prefix has %d results", workers, next, len(out))
		}
		if next >= runs {
			t.Fatalf("workers=%d: next=%d, want < %d", workers, next, runs)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, v, i+1)
			}
		}
	}
}

// TestRunIndexedEmpty: zero (and negative) runs are a clean no-op.
func TestRunIndexedEmpty(t *testing.T) {
	for _, runs := range []int{0, -3} {
		out, next, interrupted := runIndexed(runs, 4, nil, func(i int) int { return i })
		if len(out) != 0 || next != 0 || interrupted {
			t.Fatalf("runs=%d: out=%v next=%d interrupted=%v", runs, out, next, interrupted)
		}
	}
}

// TestCampaignWorkersDeterministic: the chaos campaign aggregate is identical
// at any worker count — same counts, same events, same violations.
func TestCampaignWorkersDeterministic(t *testing.T) {
	base := Campaign{Runs: 12, BaseSeed: 77, N: 4, T: 1, MaxRounds: 8, MaxSteps: 60_000}
	seq := base
	seq.Workers = 1
	want := seq.Run()
	for _, workers := range []int{2, 8} {
		c := base
		c.Workers = workers
		got := c.Run()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: result %+v, want %+v", workers, got, want)
		}
	}
}

// TestTortureWorkersDeterministic: same for the storage-fault torture
// campaign over durable replicas.
func TestTortureWorkersDeterministic(t *testing.T) {
	base := TortureCampaign{Runs: 6, BaseSeed: 5, N: 4, T: 1, MaxRounds: 8}
	seq := base
	seq.Workers = 1
	want := seq.Run()
	for _, workers := range []int{2, 8} {
		c := base
		c.Workers = workers
		got := c.Run()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: result %+v, want %+v", workers, got, want)
		}
	}
}
