package faults

// This file is the storage half of the fault plane: the tentpole of the
// durability work. Each durable replica owns a wal.Log on a private in-memory
// filesystem, and a faultFS interposed between the log and that filesystem
// realizes the four storage failure modes the recovery code must survive —
// kill-at-write-point, torn tail, flipped byte, lying fsync. Every failure is
// driven by the plan seed, so a torture run that trips an assertion replays
// exactly from its scenario JSON.
//
// The safety argument the torture harness leans on is the persist-before-
// release discipline implemented in wrapProc: a delivery's outgoing messages
// are buffered, the delivered message is appended to the WAL, and only then
// are the sends released. A crash during the append therefore loses only
// state the rest of the system never saw, so a replica recovered from a clean
// kill or torn tail is still a correct process and Agreement/Validity are
// asserted over it. Faults that can erase *released* history — a lying fsync
// or a bit flip that forces truncation — make the replica Byzantine-
// equivalent (it may contradict its own pre-crash messages), so the torture
// generator budgets those replicas against t exactly like Byzantine
// processes, and detected-unrecoverable logs quarantine the replica (silent
// forever, a crash-stop).

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"

	"repro/internal/dbft"
	"repro/internal/network"
	"repro/internal/wal"
)

// Storage fault kinds.
const (
	// StoreKill crashes the replica during a record append; the frame tears
	// at a seeded cut (possibly 0 or the whole frame).
	StoreKill = "kill"
	// StoreTorn is a kill with a guaranteed mid-frame tear, pinning the
	// torn-tail truncation path.
	StoreTorn = "torn"
	// StoreFlip crashes the replica at an append and flips one durable byte
	// while it is down — bit rot the checksums must catch.
	StoreFlip = "flip"
	// StoreNoSync makes fsync silently lie from this append on; a crash a few
	// appends later reveals the lost suffix (amnesia).
	StoreNoSync = "nosync"
)

// StorageFault schedules one storage failure on one replica's WAL.
type StorageFault struct {
	Proc network.ProcID `json:"proc"`
	// Append is the 1-based ordinal of the record append that triggers the
	// fault (counted over the replica's whole lifetime).
	Append int    `json:"append"`
	Kind   string `json:"kind"`
	// Recover is how many steps the replica stays down after the crash;
	// negative means it never restarts and counts against t like crash-stop.
	Recover int `json:"recover"`
	// KillAfter (nosync only) is how many further appends the lying fsync
	// survives before the revealing crash; default 3.
	KillAfter int `json:"kill_after,omitempty"`
}

// Risky reports whether the fault can erase released history (amnesia) or
// remove the replica permanently — either way the replica must be budgeted
// against t.
func (f StorageFault) Risky() bool {
	return f.Kind == StoreFlip || f.Kind == StoreNoSync || f.Recover < 0
}

// StorageKinds is the set of valid StorageFault kinds.
var StorageKinds = map[string]bool{StoreKill: true, StoreTorn: true, StoreFlip: true, StoreNoSync: true}

// ErrKilled is the error a write returns when a kill point fires: the
// process is gone mid-append.
var ErrKilled = errors.New("faults: storage kill point")

// storageFor filters the plan's storage faults down to one replica, in plan
// order.
func (p Plan) storageFor(id network.ProcID) []StorageFault {
	var out []StorageFault
	for _, f := range p.Storage {
		if f.Proc == id {
			out = append(out, f)
		}
	}
	return out
}

// faultFS implements wal.FS over a MemFS, firing the scheduled storage
// faults at record-append write points. Only segment writes count as append
// ordinals; snapshot writes pass through (their crash-safety is the WAL's own
// compaction protocol, exercised separately).
type faultFS struct {
	mem    *wal.MemFS
	rng    *rand.Rand
	dir    string
	faults []StorageFault
	fired  []bool

	appends       int
	syncOff       bool
	syncKillAt    int // append ordinal of the nosync-revealing crash (0 = none)
	syncKillFault StorageFault

	// flipped records every injected bit-flip offset per file (base name) —
	// the oracle input for detecting silently accepted corruption.
	flipped map[string][]int

	// onCrash tells the injector the replica just died at a write point.
	onCrash func(f StorageFault)
}

func (f *faultFS) isSeg(name string) bool {
	return strings.HasPrefix(filepath.Base(name), "seg-")
}

// crash models the machine dying now: unsynced page cache is dropped and the
// lying-fsync state resets (a rebooted kernel syncs honestly again).
func (f *faultFS) crash(fault StorageFault) {
	f.mem.Crash(nil)
	f.syncOff = false
	f.syncKillAt = 0
	if f.onCrash != nil {
		f.onCrash(fault)
	}
}

// flip corrupts one seeded durable byte in one seeded file of the log dir.
func (f *faultFS) flip() {
	var names []string
	for _, n := range f.mem.Names() {
		if strings.HasPrefix(n, f.dir+string(filepath.Separator)) && f.mem.Size(n) > 0 {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return
	}
	name := names[f.rng.Intn(len(names))]
	off := f.rng.Intn(f.mem.Size(name))
	if f.mem.CorruptByte(name, off, 0) {
		base := filepath.Base(name)
		f.flipped[base] = append(f.flipped[base], off)
	}
}

// take returns the unfired fault scheduled for the current append ordinal.
func (f *faultFS) take() *StorageFault {
	for i := range f.faults {
		if !f.fired[i] && f.faults[i].Append == f.appends {
			f.fired[i] = true
			return &f.faults[i]
		}
	}
	return nil
}

// OpenAppend implements wal.FS.
func (f *faultFS) OpenAppend(name string) (wal.File, error) {
	h, err := f.mem.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, name: name, inner: h}, nil
}

// ReadFile implements wal.FS.
func (f *faultFS) ReadFile(name string) ([]byte, error) { return f.mem.ReadFile(name) }

// ReadDir implements wal.FS.
func (f *faultFS) ReadDir(dir string) ([]string, error) { return f.mem.ReadDir(dir) }

// Remove implements wal.FS.
func (f *faultFS) Remove(name string) error { return f.mem.Remove(name) }

// MkdirAll implements wal.FS.
func (f *faultFS) MkdirAll(dir string) error { return f.mem.MkdirAll(dir) }

type faultHandle struct {
	fs    *faultFS
	name  string
	inner wal.File
}

func (h *faultHandle) Write(p []byte) (int, error) {
	fs := h.fs
	if !fs.isSeg(h.name) {
		return h.inner.Write(p)
	}
	fs.appends++
	if fs.syncKillAt != 0 && fs.appends >= fs.syncKillAt {
		// The nosync-revealing crash: this write and every unsynced byte
		// before it evaporate.
		h.inner.Write(p)
		fs.crash(fs.syncKillFault)
		return 0, ErrKilled
	}
	fault := fs.take()
	if fault == nil {
		return h.inner.Write(p)
	}
	switch fault.Kind {
	case StoreKill, StoreTorn:
		lo, hi := 0, len(p)
		if fault.Kind == StoreTorn && len(p) >= 2 {
			lo, hi = 1, len(p)-1 // guaranteed mid-frame tear
		}
		cut := lo
		if hi > lo {
			cut = lo + fs.rng.Intn(hi-lo+1)
		}
		h.inner.Write(p[:cut])
		// The torn prefix reached the platter before the power died.
		fs.mem.ForceSync(h.name)
		fs.crash(*fault)
		return 0, ErrKilled
	case StoreNoSync:
		fs.syncOff = true
		ka := fault.KillAfter
		if ka <= 0 {
			ka = 3
		}
		fs.syncKillAt = fs.appends + ka
		fs.syncKillFault = *fault
		return h.inner.Write(p)
	case StoreFlip:
		if _, err := h.inner.Write(p); err != nil {
			return 0, err
		}
		h.inner.Sync()
		fs.crash(*fault)
		fs.flip()
		return 0, ErrKilled
	}
	return h.inner.Write(p)
}

func (h *faultHandle) Sync() error {
	if h.fs.syncOff {
		return nil // the lying fsync: reports success, persists nothing
	}
	return h.inner.Sync()
}

func (h *faultHandle) Close() error { return h.inner.Close() }

// walSegBytes keeps torture-run segments small so rotation and multi-segment
// recovery are exercised constantly, not only at scale.
const walSegBytes = 1024

// walCompactEvery is the snapshot+truncate cadence in records.
const walCompactEvery = 8

// replicaStore is one replica's durable state: a wal.Log of delivered
// messages over a base snapshot, on a fault-injected in-memory filesystem.
// Recovery = Restore(base snapshot) + re-Deliver of the logged suffix.
type replicaStore struct {
	id  network.ProcID
	cfg dbft.Config
	all []network.ProcID
	fs  *faultFS
	dir string

	log          *wal.Log
	rec          snapshotter
	sinceCompact int

	// dirty means the replica's in-memory state has diverged from disk (a
	// kill interrupted a persist and no recovery has run since).
	dirty bool
	// silent accumulates flip-oracle hits: corrupted frames recovery trusted.
	silent []string
}

func newReplicaStore(id network.ProcID, cfg dbft.Config, all []network.ProcID, faults []StorageFault, seed int64) *replicaStore {
	dir := "wal"
	return &replicaStore{
		id:  id,
		cfg: cfg,
		all: all,
		dir: dir,
		fs: &faultFS{
			mem:     wal.NewMemFS(),
			rng:     rand.New(rand.NewSource(seed)),
			dir:     dir,
			faults:  faults,
			fired:   make([]bool, len(faults)),
			flipped: map[string][]int{},
		},
	}
}

func (s *replicaStore) open() (*wal.Recovery, error) {
	if s.log != nil {
		s.log.Close()
		s.log = nil
	}
	l, rec, err := wal.Open(wal.Options{FS: s.fs, Dir: s.dir, SegmentBytes: walSegBytes, Sync: wal.SyncEachAppend})
	if err != nil {
		return nil, err
	}
	s.log = l
	s.sinceCompact = 0
	return rec, nil
}

// begin opens the log and persists the post-Start state as the base
// snapshot — before any of Start's sends are released.
func (s *replicaStore) begin() error {
	if _, err := s.open(); err != nil {
		return err
	}
	return s.log.SaveSnapshot(dbft.EncodeSnapshot(s.rec.Snapshot()))
}

// appendMsg persists one delivered message, compacting on cadence. An
// ErrKilled return means the replica died at the write point (the injector
// has already been told); any other error is unrecoverable.
func (s *replicaStore) appendMsg(m network.Message) error {
	if err := s.log.Append(dbft.EncodeMessage(m)); err != nil {
		return err
	}
	s.sinceCompact++
	if s.sinceCompact >= walCompactEvery {
		if err := s.log.SaveSnapshot(dbft.EncodeSnapshot(s.rec.Snapshot())); err != nil {
			return err
		}
		s.sinceCompact = 0
	}
	return nil
}

// diskState is what recovery reconstructed: a decoded base snapshot plus the
// message suffix to re-deliver, or fresh (nothing durable at all).
type diskState struct {
	snap  *dbft.Snapshot
	msgs  []network.Message
	fresh bool
}

// recoverDisk reopens the log and decodes the durable state. Errors wrap
// corruption the checksums caught — the caller quarantines.
func (s *replicaStore) recoverDisk() (*diskState, error) {
	rec, err := s.open()
	if err != nil {
		return nil, err
	}
	s.checkSilent(rec)
	if rec.Snapshot == nil && len(rec.Records) == 0 {
		return &diskState{fresh: true}, nil
	}
	if rec.Snapshot == nil {
		return nil, fmt.Errorf("faults: p%d: wal has records but no base snapshot", s.id)
	}
	return decodeDiskState(rec)
}

func decodeDiskState(rec *wal.Recovery) (*diskState, error) {
	snap, err := dbft.DecodeSnapshot(rec.Snapshot)
	if err != nil {
		return nil, err
	}
	ds := &diskState{snap: snap, msgs: make([]network.Message, 0, len(rec.Records))}
	for _, r := range rec.Records {
		m, err := dbft.DecodeMessage(r)
		if err != nil {
			return nil, err
		}
		ds.msgs = append(ds.msgs, m)
	}
	return ds, nil
}

// checkSilent is the flip oracle: an injected flip offset inside a byte
// range recovery accepted means a checksum was silently bypassed.
func (s *replicaStore) checkSilent(rec *wal.Recovery) {
	for name, offs := range s.fs.flipped {
		for _, off := range offs {
			for _, r := range rec.Accepted[name] {
				if off >= r[0] && off < r[1] {
					s.silent = append(s.silent,
						fmt.Sprintf("p%d: flipped byte %s+%d inside accepted frame [%d,%d)", s.id, name, off, r[0], r[1]))
				}
			}
		}
	}
}

func (s *replicaStore) takeSilent() []string {
	out := s.silent
	s.silent = nil
	return out
}

// replayFingerprint rebuilds the replica's state from nothing but the
// durable log — a fresh process, the base snapshot, the record suffix — and
// returns its canonical encoding. For a clean replica this must equal the
// live state's encoding byte for byte.
func (s *replicaStore) replayFingerprint() ([]byte, error) {
	l, rec, err := wal.Open(wal.Options{FS: s.fs, Dir: s.dir, SegmentBytes: walSegBytes, Sync: wal.SyncEachAppend})
	if err != nil {
		return nil, err
	}
	l.Close()
	if rec.Snapshot == nil {
		return nil, fmt.Errorf("faults: p%d: replay: no base snapshot", s.id)
	}
	ds, err := decodeDiskState(rec)
	if err != nil {
		return nil, err
	}
	p, err := dbft.NewProcess(s.id, 0, s.cfg, s.all)
	if err != nil {
		return nil, err
	}
	p.Restore(ds.snap)
	nop := func(network.Message) {}
	for _, m := range ds.msgs {
		p.Deliver(m, nop)
	}
	return dbft.EncodeSnapshot(p.Snapshot()), nil
}
