package faults

import (
	"strings"
	"testing"
)

// durableScenario is a quiet durable baseline: 4 replicas, no network
// faults, storage faults supplied by the caller.
func durableScenario(seed int64, storage []StorageFault) Scenario {
	return Scenario{
		N: 4, T: 1, MaxRounds: 12, MaxSteps: 120_000, Tick: 25,
		Inputs:  []int{1, 0, 1, 0},
		Sched:   "random",
		Durable: true,
		Plan:    Plan{Seed: seed, Storage: storage},
	}
}

func assertCleanRun(t *testing.T, out Outcome) {
	t.Helper()
	if out.Err != nil {
		t.Fatalf("run error: %v", out.Err)
	}
	if out.AgreementErr != nil {
		t.Errorf("agreement: %v", out.AgreementErr)
	}
	if out.ValidityErr != nil {
		t.Errorf("validity: %v", out.ValidityErr)
	}
	if len(out.Contradictions) > 0 {
		t.Errorf("contradictions: %v", out.Contradictions)
	}
	if len(out.SilentCorruptions) > 0 {
		t.Errorf("silent corruptions: %v", out.SilentCorruptions)
	}
	if len(out.ReplayErrs) > 0 {
		t.Errorf("replay errors: %v", out.ReplayErrs)
	}
}

// TestDurableBaselineDecides: durable persistence alone (no faults) must not
// change the protocol outcome, and every replica must pass the
// byte-identical replay check.
func TestDurableBaselineDecides(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		out := durableScenario(seed, nil).Run()
		assertCleanRun(t, out)
		if !out.Decided {
			t.Fatalf("seed %d: durable baseline did not decide (%d steps)", seed, out.Steps)
		}
		if out.ReplayChecked != 4 {
			t.Errorf("seed %d: replay-checked %d of 4 replicas", seed, out.ReplayChecked)
		}
	}
}

// TestCleanKillRecoversFromDisk: a mid-append kill loses only the unreleased
// delivery; the replica replays its WAL, rejoins, and the run still decides
// with full safety.
func TestCleanKillRecoversFromDisk(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		out := durableScenario(seed, []StorageFault{
			{Proc: 0, Append: 5, Kind: StoreKill, Recover: 200},
			{Proc: 1, Append: 9, Kind: StoreTorn, Recover: 150},
		}).Run()
		assertCleanRun(t, out)
		if !out.Decided {
			t.Fatalf("seed %d: not decided after clean kills (%d steps)", seed, out.Steps)
		}
		if len(out.Quarantined) > 0 {
			t.Fatalf("seed %d: clean kills must never quarantine, got %v", seed, out.Quarantined)
		}
		n := CountEvents(out.Events)
		if n[EvKill] == 0 || n[EvTorn] == 0 {
			t.Fatalf("seed %d: kill/torn faults did not fire: %v", seed, n)
		}
		if n[EvReplay] == 0 {
			t.Fatalf("seed %d: no disk replay happened: %v", seed, n)
		}
	}
}

// TestCrashWindowRecoversFromDisk: the PR-1 step-scheduled crash window,
// under Durable, must reboot from the WAL (EvReplay), not from injector
// memory — and stay safe.
func TestCrashWindowRecoversFromDisk(t *testing.T) {
	sc := durableScenario(7, nil)
	sc.Plan.Crashes = []Crash{{Proc: 2, At: 40, Recover: 400}}
	out := sc.Run()
	assertCleanRun(t, out)
	if !out.Decided {
		t.Fatalf("not decided (%d steps)", out.Steps)
	}
	n := CountEvents(out.Events)
	if n[EvCrash] == 0 || n[EvReplay] == 0 {
		t.Fatalf("expected crash + disk replay, got %v", n)
	}
}

// TestFlipNeverSilentlyAccepted: across many seeds, a bit flip either
// quarantines the replica (checksum caught it) or lands outside every
// accepted frame — silent acceptance is the one forbidden outcome.
func TestFlipNeverSilentlyAccepted(t *testing.T) {
	flips, quarantines := 0, 0
	for seed := int64(1); seed <= 40; seed++ {
		out := durableScenario(seed, []StorageFault{
			{Proc: 0, Append: 1 + int(seed)%20, Kind: StoreFlip, Recover: 5},
		}).Run()
		if out.Err != nil {
			t.Fatalf("seed %d: run error: %v", seed, out.Err)
		}
		if len(out.SilentCorruptions) > 0 {
			t.Fatalf("seed %d: silent corruption: %v", seed, out.SilentCorruptions)
		}
		if out.AgreementErr != nil || out.ValidityErr != nil {
			t.Fatalf("seed %d: safety: %v %v", seed, out.AgreementErr, out.ValidityErr)
		}
		n := CountEvents(out.Events)
		flips += n[EvFlip]
		quarantines += n[EvQuarantine]
	}
	if flips == 0 {
		t.Fatal("no flip fault ever fired")
	}
	if quarantines == 0 {
		t.Fatal("no flip was ever caught by a checksum (suspicious: corruption should usually be detected)")
	}
}

// TestNoSyncAmnesiaStaysSafe: a lying fsync erases released history; the
// replica is Byzantine-equivalent but the rest of the system must still
// agree and decide.
func TestNoSyncAmnesiaStaysSafe(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		out := durableScenario(seed, []StorageFault{
			{Proc: 0, Append: 4, Kind: StoreNoSync, Recover: 10, KillAfter: 3},
		}).Run()
		if out.Err != nil {
			t.Fatalf("seed %d: run error: %v", seed, out.Err)
		}
		if out.AgreementErr != nil || out.ValidityErr != nil {
			t.Fatalf("seed %d: safety among clean replicas: %v %v", seed, out.AgreementErr, out.ValidityErr)
		}
		if !out.Decided {
			t.Fatalf("seed %d: clean replicas did not decide (%d steps)", seed, out.Steps)
		}
	}
}

// TestStorageFaultNeverRecovers: Recover < 0 keeps the replica down forever;
// it must be treated like a crash-stop (excluded from termination) and the
// run must still decide.
func TestStorageFaultNeverRecovers(t *testing.T) {
	out := durableScenario(3, []StorageFault{
		{Proc: 0, Append: 3, Kind: StoreKill, Recover: -1},
	}).Run()
	if out.Err != nil {
		t.Fatalf("run error: %v", out.Err)
	}
	if out.AgreementErr != nil || out.ValidityErr != nil {
		t.Fatalf("safety: %v %v", out.AgreementErr, out.ValidityErr)
	}
	if !out.Decided {
		t.Fatalf("remaining replicas did not decide (%d steps)", out.Steps)
	}
}

// TestScenarioStorageJSONRoundTrip: storage faults survive the
// encode/parse replay loop.
func TestScenarioStorageJSONRoundTrip(t *testing.T) {
	sc := durableScenario(42, []StorageFault{
		{Proc: 1, Append: 7, Kind: StoreNoSync, Recover: 90, KillAfter: 2},
	})
	enc := sc.Encode()
	if !strings.Contains(enc, `"durable":true`) || !strings.Contains(enc, `"nosync"`) {
		t.Fatalf("encoding lost durable/storage fields: %s", enc)
	}
	back, err := ParseScenario(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Encode() != enc {
		t.Fatalf("round trip changed scenario:\n %s\n %s", enc, back.Encode())
	}
}
