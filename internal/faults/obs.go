package faults

import "repro/internal/obs"

// Observational-only instrumentation (see internal/obs). Campaign verdicts
// and aggregates come from the seed-ordered prefix fold in parallel.go,
// never from these racing counters.
var (
	// obsSeedsRun counts scenario executions across all campaigns;
	// obsSeedsFailed counts the ones folded as violations.
	obsSeedsRun    = obs.Default.Counter("faults", "seeds_run")
	obsSeedsFailed = obs.Default.Counter("faults", "seeds_failed")
	// obsCurrentSeed holds the most recently started seed — what a progress
	// line or a post-mortem snapshot reports as "where the campaign was".
	obsCurrentSeed = obs.Default.Gauge("faults", "current_seed")
)

// traceSeed emits one per-seed trace event (nil tracer = no-op).
func traceSeed(tr *obs.Tracer, kind string, seed int64, out *Outcome) {
	if tr == nil {
		return
	}
	decided := int64(0)
	if out.Decided {
		decided = 1
	}
	failed := int64(0)
	if out.Err != nil || out.AgreementErr != nil || out.ValidityErr != nil {
		failed = 1
	}
	tr.Emit(kind, "seed", map[string]int64{
		"seed":    seed,
		"steps":   int64(out.Steps),
		"decided": decided,
		"failed":  failed,
	})
}
