package faults

import (
	"strings"
	"testing"
)

// TestSBACampaignTrichotomy runs the randomized chaos campaign over the sba
// front-end: agreement and validity must hold under every fault mix with
// f <= t, and fair plans must terminate — the same executable trichotomy the
// dbft campaign asserts.
func TestSBACampaignTrichotomy(t *testing.T) {
	c := Campaign{Protocol: "sba", Runs: 60, BaseSeed: 7000, N: 4, T: 1}
	res := c.Run()
	if len(res.Violations) != 0 {
		for _, v := range res.Violations {
			t.Errorf("%s", v)
		}
	}
	if res.Decided == 0 {
		t.Error("no run decided; campaign is not exercising the protocol")
	}
}

// TestSBACampaignLargerSystem repeats the trichotomy at n=7, t=2.
func TestSBACampaignLargerSystem(t *testing.T) {
	c := Campaign{Protocol: "sba", Runs: 25, BaseSeed: 7100, N: 7, T: 2}
	res := c.Run()
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestSBAFingerprintFlatVsBus: a seeded sba scenario must produce
// byte-identical fingerprints on the flat shim and the default bus backend.
func TestSBAFingerprintFlatVsBus(t *testing.T) {
	c := Campaign{Protocol: "sba", N: 4, T: 1}
	for seed := int64(7200); seed < 7215; seed++ {
		sc := c.RandomScenario(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: generated scenario invalid: %v", seed, err)
		}
		busOut := sc.Run()
		busFP := sc.Fingerprint(&busOut)

		flat := sc
		flat.Sim = &SimOptions{Backend: "flat"}
		flatOut := flat.Run()
		flatFP := flat.Fingerprint(&flatOut)

		if busOut.Err != nil || flatOut.Err != nil {
			t.Fatalf("seed %d: bus err=%v flat err=%v", seed, busOut.Err, flatOut.Err)
		}
		if busFP != flatFP {
			t.Errorf("seed %d: fingerprint mismatch\n bus:  %s\n flat: %s", seed, busFP, flatFP)
		}
	}
}

// TestSBAFingerprintWorkerIndependence: campaign aggregates and per-seed
// fingerprints must not depend on the worker count.
func TestSBAFingerprintWorkerIndependence(t *testing.T) {
	fps := func(workers int) []string {
		c := Campaign{Protocol: "sba", N: 4, T: 1, Workers: workers}
		var out []string
		for seed := int64(7300); seed < 7320; seed++ {
			sc := c.RandomScenario(seed)
			o := sc.Run()
			if o.Err != nil {
				t.Fatalf("seed %d: %v", seed, o.Err)
			}
			out = append(out, sc.Fingerprint(&o))
		}
		return out
	}
	a, b := fps(1), fps(8)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("seed %d: fingerprint differs across worker counts", 7300+i)
		}
	}
}

// TestSBAScenarioCrashRecovery: the generalized volatile snapshot path must
// bring an sba replica back with its pre-crash state (and the run must still
// decide and agree).
func TestSBAScenarioCrashRecovery(t *testing.T) {
	sc := Scenario{
		Protocol:  "sba",
		N:         4,
		T:         1,
		MaxRounds: 12,
		MaxSteps:  120000,
		Tick:      25,
		Inputs:    []int{1, 0, 1},
		Byz:       []string{"silent"},
		Sched:     "random",
		Plan: Plan{
			Seed:    42,
			Crashes: []Crash{{Proc: 0, At: 40, Recover: 400}},
		},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	out := sc.Run()
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.AgreementErr != nil || out.ValidityErr != nil {
		t.Fatalf("agreement=%v validity=%v", out.AgreementErr, out.ValidityErr)
	}
	if !out.Decided {
		t.Fatalf("crash-recovery run undecided after %d steps", out.Steps)
	}
	counts := CountEvents(out.Events)
	if counts[EvCrash] == 0 || counts[EvRecover] == 0 {
		t.Errorf("crash window did not fire: %v", counts)
	}
}

// TestSBAValidateRejections: the sba front-end rejects dbft-only scenario
// features with field-specific errors.
func TestSBAValidateRejections(t *testing.T) {
	base := Scenario{
		Protocol: "sba", N: 4, T: 1, MaxRounds: 8, MaxSteps: 1000, Tick: 25,
		Inputs: []int{0, 1, 1, 0},
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"durable", func(sc *Scenario) { sc.Durable = true }, "dbft-only"},
		{"storage", func(sc *Scenario) {
			sc.Durable = true
			sc.Plan.Storage = []StorageFault{{Proc: 0, Kind: StoreKill, Append: 1}}
		}, "storage faults are dbft-only"},
		{"parity_bv", func(sc *Scenario) {
			sc.Plan.Drops = []DropRule{{ParityBV: true, Prob: 1, Budget: -1}}
		}, "parity-BV drops are dbft-only"},
		{"bv_kind", func(sc *Scenario) {
			sc.Plan.Drops = []DropRule{{Kind: "BV", Prob: 0.5, Budget: 1}}
		}, "want VOTE or CAND"},
		{"bad_protocol", func(sc *Scenario) { sc.Protocol = "pbft" }, "known protocols: dbft, sba"},
	}
	for _, tc := range cases {
		sc := base
		tc.mut(&sc)
		err := sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
	// VOTE/CAND drop kinds are accepted for sba.
	sc := base
	sc.Plan.Drops = []DropRule{{Kind: "VOTE", Prob: 0.5, Budget: 1}, {Kind: "CAND", Prob: 0.5, Budget: 1}}
	if err := sc.Validate(); err != nil {
		t.Errorf("VOTE/CAND drops should validate for sba: %v", err)
	}
}
