// Package queue is the durable ingestion plane of the verification stack: a
// WAL-backed persistent job queue feeding a pool of consumers, built so that
// overload defers work instead of losing it (the service plane's 429 path
// sheds; this plane queues) and so that a crash loses nothing that was ever
// acknowledged.
//
// Durability contract. An Enqueue returns only after the job's journal
// record is fsynced (group commit: concurrent enqueues share one fsync, so
// the fsync rate is bounded by disk latency, not request rate). Completion
// records are write-behind — re-running a completed verification job is
// harmless because results are content-addressed in vcache — so a crash can
// re-run finished jobs but can never lose accepted ones. Recovery replays
// the journal (internal/wal's CRC-framed segments with torn-tail truncation)
// and re-queues exactly the jobs with no durable terminal record.
//
// Failure handling. A handler error counts an attempt; attempts retry with
// capped jittered exponential backoff until MaxAttempts, then the job is
// quarantined to a dead-letter log (its own fsync-per-append WAL) with the
// failure reason. A handler can short-circuit both ways: Permanent(err)
// dead-letters immediately (poison input — retrying cannot fix it) and
// ErrRequeue re-queues without an attempt (shutdown interrupted the run).
//
// Fairness. Dequeue is smooth weighted round-robin across tenants, with a
// per-tenant depth cap (one tenant can neither starve nor flood the rest)
// and a global cap bounding memory.
package queue

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/wal"
)

// Errors the queue returns (callers map the cap errors onto 429s).
var (
	ErrClosed     = errors.New("queue: closed")
	ErrKilled     = errors.New("queue: killed")
	ErrQueueFull  = errors.New("queue: backlog at global depth cap")
	ErrTenantFull = errors.New("queue: tenant at depth cap")
)

// ErrRequeue, returned by a Handler, puts the job back on the queue after a
// short delay without counting an attempt — the graceful-shutdown escape
// hatch: a handler whose run was cut off by a drain must neither terminalize
// its partial result nor burn a retry.
var ErrRequeue = errors.New("queue: requeue without penalty")

// PermanentError marks a handler failure no retry can fix; the queue
// dead-letters the job immediately instead of burning MaxAttempts on it.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }

func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err so the job is dead-lettered without retries.
func Permanent(err error) error { return &PermanentError{Err: err} }

// State is a job's lifecycle position.
type State int

const (
	// StatePending: accepted, durable, waiting for a consumer.
	StatePending State = iota + 1
	// StateRunning: leased to a consumer.
	StateRunning
	// StateWaiting: failed, sitting out a retry backoff.
	StateWaiting
	// StateDone: terminal success.
	StateDone
	// StateDead: terminal failure, quarantined in the dead-letter log.
	StateDead
)

// String renders the state for status payloads.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateWaiting:
		return "retry-waiting"
	case StateDone:
		return "done"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateDead }

// Job is one queued unit of work. The payload is opaque to the queue; the
// service plane stores its enqueue request JSON there.
type Job struct {
	ID      string
	Tenant  string
	Payload []byte
	// Attempts counts prior failed runs (0 on the first run). Restored from
	// the journal on recovery, so a flaky job does not get a fresh budget
	// just because the daemon restarted (minus any attempt records the crash
	// tore off the unsynced tail — the error is always toward more retries,
	// never toward losing the job).
	Attempts int

	state   State
	seq     int64 // acceptance order, for snapshot round-trips
	leaseAt time.Time
}

// DeadLetter is one quarantined job as recorded in the dead-letter log.
type DeadLetter struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Payload  []byte `json:"payload,omitempty"`
	Reason   string `json:"reason"`
	Attempts int    `json:"attempts"`
}

// JobID derives the content-addressed job ID: identical (tenant, payload)
// submissions collapse onto one job, which is what makes duplicate enqueues
// (client retries after a lost ack) idempotent.
func JobID(tenant string, payload []byte) string {
	h := sha256.New()
	h.Write([]byte("queue-job\x00"))
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}

// Status is a point-in-time queue snapshot.
type Status struct {
	// Depth counts accepted jobs awaiting execution (queued + retry-waiting).
	Depth    int `json:"depth"`
	Inflight int `json:"inflight"`
	Waiting  int `json:"retry_waiting"`
	// Counters are process-lifetime (terminal counts include journal replay).
	Enqueued int64 `json:"enqueued"`
	Done     int64 `json:"done"`
	Dead     int64 `json:"dead"`
	Retries  int64 `json:"retries"`
	Deduped  int64 `json:"deduped"`
	Rejected int64 `json:"rejected"`
	// PerTenant maps tenant name to unfinished jobs (queued+running+waiting).
	PerTenant map[string]int `json:"per_tenant,omitempty"`
	// OldestLeaseMS is the age of the longest-running in-flight job.
	OldestLeaseMS int64  `json:"oldest_lease_ms,omitempty"`
	Broken        string `json:"broken,omitempty"`
}

// Config tunes a Queue.
type Config struct {
	// Dir holds the journal (Dir/journal) and dead-letter log (Dir/dead).
	Dir string
	// FS is the filesystem (default OSFS; tests crash a MemFS).
	FS wal.FS
	// SegmentBytes is the WAL segment rotation size (default 256 KiB).
	SegmentBytes int
	// Handler runs one job. Its error decides the job's fate (see package
	// doc). Required.
	Handler func(ctx context.Context, job Job) error
	// Consumers is the worker pool size (default 2; negative = none, for
	// tests that drive the queue by hand).
	Consumers int
	// StartPaused holds consumers until Resume — the loadgen uses it to
	// build a full backlog before measuring the drain.
	StartPaused bool
	// MaxAttempts dead-letters a job after this many failed runs (default 4).
	MaxAttempts int
	// RetryBase/RetryMax bound the jittered exponential backoff between
	// attempts (defaults 100ms / 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed makes retry jitter replayable (0 = 1).
	Seed int64
	// MaxDepth caps accepted-but-unfinished jobs (default 1<<20).
	MaxDepth int
	// TenantDepth caps one tenant's unfinished jobs (0 = MaxDepth).
	TenantDepth int
	// TenantWeights sets per-tenant dequeue weights (default 1 each).
	TenantWeights map[string]int
	// LeaseTTL bounds one handler run via its context (default 5m); an
	// overrun surfaces as a handler error and follows the retry path.
	LeaseTTL time.Duration
	// CompactEvery snapshots the live job set and truncates the journal
	// after this many terminal transitions (default 1024), bounding both
	// recovery time and journal size.
	CompactEvery int
	// SyncInterval is the group-commit batching window: the syncer sleeps
	// this long after the first pending append before fsyncing, so
	// concurrent enqueues share the fsync (default 1ms; negative = none).
	SyncInterval time.Duration
	// TerminalKeep bounds the in-memory terminal-state map (default 65536).
	// An evicted entry only costs a duplicate enqueue a re-verification,
	// which the vcache absorbs.
	TerminalKeep int
	// DeadKeep bounds the in-memory dead-letter tail (default 1024); the
	// dead-letter log on disk keeps everything.
	DeadKeep int
	// OnTerminal, when set, observes every terminal transition (after the
	// journal record is appended). Called outside the queue lock.
	OnTerminal func(job Job, state State)
	// Logf receives one line per notable event (default: silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = wal.OSFS{}
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 256 << 10
	}
	if c.Consumers == 0 {
		c.Consumers = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 1 << 20
	}
	if c.TenantDepth <= 0 {
		c.TenantDepth = c.MaxDepth
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Minute
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 1024
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = time.Millisecond
	}
	if c.TerminalKeep <= 0 {
		c.TerminalKeep = 65536
	}
	if c.DeadKeep <= 0 {
		c.DeadKeep = 1024
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Queue is the durable job queue. All mutable state is behind mu; the WAL
// logs are only touched under mu (MemFS, the crash-test filesystem, is not
// concurrency-safe, and the group-commit batching relies on appends queueing
// behind an in-progress fsync).
type Queue struct {
	cfg Config

	mu       sync.Mutex
	syncCond *sync.Cond // fsync progress (enqueue acks wait here)
	workCond *sync.Cond // runnable work / shutdown
	idleCond *sync.Cond // all-terminal transitions (WaitIdle)

	journal *wal.Log
	dead    *wal.Log

	jobs       map[string]*Job // every non-terminal accepted job
	pendingEnq map[string]*Job // journaled, awaiting fsync ack
	tenants    map[string]*tenantQ
	names      []string // sorted tenant names (deterministic WRR order)
	queued     int      // jobs sitting in tenant queues
	waiting    int      // jobs in retry backoff
	inflight   int

	appendSeq int64 // journal records appended
	syncSeq   int64 // journal records durable (fsync or snapshot)
	seqCtr    int64 // job acceptance order

	terminal map[string]State
	termRing []string // FIFO eviction ring over terminal
	termNext int

	deadTail []DeadLetter

	stats struct {
		enqueued, done, dead, retries, deduped, rejected int64
	}
	sinceSnap int

	rng    *rand.Rand
	timers map[string]*time.Timer

	paused bool
	closed bool
	killed bool
	broken error

	runCtx    context.Context
	runCancel context.CancelFunc
	stopCh    chan struct{}
	stopOnce  sync.Once
	syncKick  chan struct{}
	wg        sync.WaitGroup
}

// Open recovers the queue in cfg.Dir and starts the consumer pool. Jobs with
// no durable terminal record are re-queued in acceptance order.
func Open(cfg Config) (*Queue, error) {
	if cfg.Handler == nil {
		return nil, fmt.Errorf("queue: no handler")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("queue: no directory")
	}
	cfg = cfg.withDefaults()
	q := &Queue{
		cfg:        cfg,
		jobs:       map[string]*Job{},
		pendingEnq: map[string]*Job{},
		tenants:    map[string]*tenantQ{},
		terminal:   map[string]State{},
		termRing:   make([]string, 0, cfg.TerminalKeep),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		timers:     map[string]*time.Timer{},
		paused:     cfg.StartPaused,
		stopCh:     make(chan struct{}),
		syncKick:   make(chan struct{}, 1),
	}
	q.syncCond = sync.NewCond(&q.mu)
	q.workCond = sync.NewCond(&q.mu)
	q.idleCond = sync.NewCond(&q.mu)

	// The journal runs SyncNever: the enqueue path picks its own fsync
	// boundaries (group commit) and completion records ride the next batch.
	// The dead-letter log fsyncs per append — quarantine is rare and must
	// stick.
	jl, jrec, err := wal.Open(wal.Options{
		FS: cfg.FS, Dir: filepath.Join(cfg.Dir, "journal"),
		SegmentBytes: cfg.SegmentBytes, Sync: wal.SyncNever,
	})
	if err != nil {
		return nil, fmt.Errorf("queue: opening journal: %w", err)
	}
	dl, drec, err := wal.Open(wal.Options{
		FS: cfg.FS, Dir: filepath.Join(cfg.Dir, "dead"),
		SegmentBytes: cfg.SegmentBytes, Sync: wal.SyncEachAppend,
	})
	if err != nil {
		jl.Close()
		return nil, fmt.Errorf("queue: opening dead-letter log: %w", err)
	}
	q.journal, q.dead = jl, dl
	if err := q.replay(jrec, drec); err != nil {
		jl.Close()
		dl.Close()
		return nil, err
	}
	q.runCtx, q.runCancel = context.WithCancel(context.Background())
	q.wg.Add(1)
	go q.syncer()
	for i := 0; i < cfg.Consumers; i++ {
		q.wg.Add(1)
		go q.consume()
	}
	return q, nil
}

func (q *Queue) breakLocked(err error) {
	if q.broken == nil {
		q.broken = err
		q.cfg.Logf("queue: broken: %v", err)
	}
	q.syncCond.Broadcast()
	q.workCond.Broadcast()
	q.idleCond.Broadcast()
}

// usableLocked gates mutating entry points.
func (q *Queue) usableLocked() error {
	switch {
	case q.killed:
		return ErrKilled
	case q.closed:
		return ErrClosed
	case q.broken != nil:
		return q.broken
	default:
		return nil
	}
}

// Enqueue accepts one job. It returns after the job's journal record is
// fsynced (or after finding an existing job with the same content hash:
// dup=true, state tells where it got to). ErrQueueFull/ErrTenantFull mean
// the caller should shed or back off.
func (q *Queue) Enqueue(tenant string, payload []byte) (id string, st State, dup bool, err error) {
	id = JobID(tenant, payload)
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.usableLocked(); err != nil {
		return "", 0, false, err
	}
	if st, ok := q.terminal[id]; ok {
		q.stats.deduped++
		obsDeduped.Inc()
		return id, st, true, nil
	}
	if j, ok := q.jobs[id]; ok {
		q.stats.deduped++
		obsDeduped.Inc()
		return id, j.state, true, nil
	}
	if _, ok := q.pendingEnq[id]; ok {
		// A concurrent enqueue of the same content is mid-fsync; its record
		// covers this caller too (if that fsync fails the queue is broken
		// for everyone anyway).
		q.stats.deduped++
		obsDeduped.Inc()
		return id, StatePending, true, nil
	}
	if len(q.jobs)+len(q.pendingEnq) >= q.cfg.MaxDepth {
		q.stats.rejected++
		obsRejected.Inc()
		return "", 0, false, ErrQueueFull
	}
	t := q.tenantLocked(tenant)
	if t.unfinished >= q.cfg.TenantDepth {
		q.stats.rejected++
		obsRejected.Inc()
		return "", 0, false, fmt.Errorf("%w: tenant %q has %d unfinished jobs", ErrTenantFull, tenant, t.unfinished)
	}

	j := &Job{ID: id, Tenant: tenant, Payload: payload, state: StatePending}
	q.pendingEnq[id] = j
	if aerr := q.appendLocked(rec{T: recEnq, ID: id, Tenant: tenant, P: payload}); aerr != nil {
		delete(q.pendingEnq, id)
		return "", 0, false, aerr
	}
	my := q.appendSeq
	for q.syncSeq < my && q.broken == nil && !q.killed {
		q.syncCond.Wait()
	}
	delete(q.pendingEnq, id)
	if q.syncSeq < my {
		if q.killed {
			return "", 0, false, ErrKilled
		}
		return "", 0, false, q.broken
	}
	// Durable. Re-check for the concurrent-duplicate that waited alongside
	// us: only one of the two may enter the run queue.
	if st, ok := q.terminal[id]; ok {
		return id, st, true, nil
	}
	if prev, ok := q.jobs[id]; ok {
		return id, prev.state, true, nil
	}
	q.seqCtr++
	j.seq = q.seqCtr
	q.jobs[id] = j
	t.push(j)
	t.unfinished++
	q.queued++
	q.stats.enqueued++
	obsEnqueued.Inc()
	q.gaugesLocked()
	q.workCond.Signal()
	return id, StatePending, false, nil
}

// appendLocked journals one record write-behind (callers that need
// durability wait on syncCond for appendSeq to be covered).
func (q *Queue) appendLocked(r rec) error {
	data, err := encodeRec(r)
	if err != nil {
		return err
	}
	if err := q.journal.Append(data); err != nil {
		q.breakLocked(err)
		return err
	}
	q.appendSeq++
	select {
	case q.syncKick <- struct{}{}:
	default:
	}
	return nil
}

// syncer is the group-commit loop: woken by the first pending append, it
// waits out the batching window (appends accumulate) and fsyncs once for the
// whole batch.
func (q *Queue) syncer() {
	defer q.wg.Done()
	for {
		select {
		case <-q.syncKick:
		case <-q.stopCh:
			return
		}
		if d := q.cfg.SyncInterval; d > 0 {
			time.Sleep(d)
		}
		q.mu.Lock()
		if q.killed || q.closed {
			q.mu.Unlock()
			return
		}
		q.fsyncLocked()
		q.mu.Unlock()
	}
}

// fsyncLocked makes every appended record durable and wakes ack waiters.
func (q *Queue) fsyncLocked() {
	target := q.appendSeq
	if target > q.syncSeq && q.broken == nil {
		if err := q.journal.Sync(); err != nil {
			q.breakLocked(err)
			return
		}
		q.syncSeq = target
		obsFsyncBatches.Inc()
	}
	q.syncCond.Broadcast()
}

// consume is one worker: pick fairly, run, settle.
func (q *Queue) consume() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for !q.closed && !q.killed && q.broken == nil && (q.paused || q.queued == 0) {
			q.workCond.Wait()
		}
		if q.closed || q.killed || q.broken != nil {
			q.mu.Unlock()
			return
		}
		j := q.pickLocked()
		if j == nil {
			q.mu.Unlock()
			continue
		}
		j.state = StateRunning
		j.leaseAt = time.Now()
		q.queued--
		q.inflight++
		q.gaugesLocked()
		q.mu.Unlock()

		err := q.runJob(j)
		if notify := q.settle(j, err); notify != nil {
			notify()
		}
	}
}

// runJob executes the handler with the lease deadline on its context and
// panic containment: a panicking handler is a failing handler, not a dead
// consumer.
func (q *Queue) runJob(j *Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("handler panic: %v", r)
		}
	}()
	ctx, cancel := context.WithTimeout(q.runCtx, q.cfg.LeaseTTL)
	defer cancel()
	return q.cfg.Handler(ctx, *j)
}

// settle journals the outcome of one run and routes the job to its next
// state. It returns the OnTerminal notification to fire outside the lock.
func (q *Queue) settle(j *Job, herr error) (notify func()) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.inflight--
	if q.killed || q.broken != nil {
		// Simulated SIGKILL (or dead storage): nothing is written, nothing
		// transitions. Recovery re-runs the job.
		q.gaugesLocked()
		return nil
	}
	switch {
	case herr == nil:
		if err := q.appendLocked(rec{T: recDone, ID: j.ID}); err != nil {
			return nil
		}
		return q.terminalLocked(j, StateDone, "")
	case errors.Is(herr, ErrRequeue):
		// No attempt counted, but not an immediate re-push either: during a
		// drain the handler fails instantly, and an immediate requeue would
		// spin the consumer against it until Close lands.
		j.state = StateWaiting
		q.waiting++
		q.scheduleRetryLocked(j, q.cfg.RetryBase)
		q.gaugesLocked()
		return nil
	default:
		j.Attempts++
		var pe *PermanentError
		permanent := errors.As(herr, &pe)
		if permanent || j.Attempts >= q.cfg.MaxAttempts {
			return q.deadLetterLocked(j, herr.Error())
		}
		if err := q.appendLocked(rec{T: recTry, ID: j.ID, N: j.Attempts, Reason: truncReason(herr.Error())}); err != nil {
			return nil
		}
		q.stats.retries++
		obsRetries.Inc()
		j.state = StateWaiting
		q.waiting++
		q.scheduleRetryLocked(j, q.backoffLocked(j.Attempts))
		q.gaugesLocked()
		return nil
	}
}

// backoffLocked is the capped jittered exponential retry delay.
func (q *Queue) backoffLocked(attempts int) time.Duration {
	d := q.cfg.RetryBase << (attempts - 1)
	if d > q.cfg.RetryMax || d <= 0 {
		d = q.cfg.RetryMax
	}
	return d + time.Duration(q.rng.Int63n(int64(d)/2+1))
}

func (q *Queue) scheduleRetryLocked(j *Job, d time.Duration) {
	q.timers[j.ID] = time.AfterFunc(d, func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		delete(q.timers, j.ID)
		if q.closed || q.killed || q.broken != nil || j.state != StateWaiting {
			return
		}
		j.state = StatePending
		q.waiting--
		q.tenantLocked(j.Tenant).push(j)
		q.queued++
		q.gaugesLocked()
		q.workCond.Signal()
	})
}

// deadLetterLocked quarantines the job: forensic record first (fsynced), then
// the journal's terminal record. A crash between the two re-runs the job and
// dead-letters it again; the loader dedups the forensic log by job ID.
func (q *Queue) deadLetterLocked(j *Job, reason string) (notify func()) {
	reason = truncReason(reason)
	dl := DeadLetter{ID: j.ID, Tenant: j.Tenant, Payload: j.Payload, Reason: reason, Attempts: j.Attempts}
	data, err := encodeDeadLetter(dl)
	if err == nil {
		err = q.dead.Append(data)
	}
	if err != nil {
		q.breakLocked(fmt.Errorf("queue: dead-letter append: %w", err))
		return nil
	}
	if err := q.appendLocked(rec{T: recDead, ID: j.ID, N: j.Attempts, Reason: reason}); err != nil {
		return nil
	}
	q.deadTail = append(q.deadTail, dl)
	if len(q.deadTail) > q.cfg.DeadKeep {
		q.deadTail = q.deadTail[len(q.deadTail)-q.cfg.DeadKeep:]
	}
	q.cfg.Logf("queue: job %s (tenant %s) dead-lettered after %d attempts: %s", j.ID[:12], j.Tenant, j.Attempts, reason)
	return q.terminalLocked(j, StateDead, reason)
}

// terminalLocked finalizes a job in memory after its terminal record is in
// the journal.
func (q *Queue) terminalLocked(j *Job, st State, reason string) (notify func()) {
	delete(q.jobs, j.ID)
	t := q.tenantLocked(j.Tenant)
	t.unfinished--
	j.state = st
	q.rememberTerminalLocked(j.ID, st)
	if st == StateDone {
		q.stats.done++
		obsCompleted.Inc()
	} else {
		q.stats.dead++
		obsDeadLettered.Inc()
	}
	q.sinceSnap++
	if q.sinceSnap >= q.cfg.CompactEvery {
		q.compactLocked()
	}
	q.gaugesLocked()
	if len(q.jobs) == 0 && len(q.pendingEnq) == 0 {
		q.idleCond.Broadcast()
	}
	if cb := q.cfg.OnTerminal; cb != nil {
		jc := *j
		return func() { cb(jc, st) }
	}
	return nil
}

func (q *Queue) rememberTerminalLocked(id string, st State) {
	if len(q.termRing) < q.cfg.TerminalKeep {
		q.termRing = append(q.termRing, id)
	} else {
		delete(q.terminal, q.termRing[q.termNext])
		q.termRing[q.termNext] = id
		q.termNext = (q.termNext + 1) % q.cfg.TerminalKeep
	}
	q.terminal[id] = st
}

// compactLocked snapshots the live job set (queued, waiting, running, and
// mid-fsync enqueues) and truncates the journal. Everything appended so far
// is covered by the durable snapshot, so pending enqueue acks are released
// without an fsync of their own.
func (q *Queue) compactLocked() {
	state, err := q.encodeSnapshotLocked()
	if err == nil {
		err = q.journal.SaveSnapshot(state)
	}
	if err != nil {
		q.breakLocked(fmt.Errorf("queue: compaction: %w", err))
		return
	}
	q.sinceSnap = 0
	q.syncSeq = q.appendSeq
	q.syncCond.Broadcast()
	obsCompactions.Inc()
}

// Resume releases a StartPaused consumer pool.
func (q *Queue) Resume() {
	q.mu.Lock()
	q.paused = false
	q.workCond.Broadcast()
	q.mu.Unlock()
}

// JobState reports where a job got to. ok=false means the queue never saw
// the ID (or its terminal record aged out of the bounded memory map).
func (q *Queue) JobState(id string) (State, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j, ok := q.jobs[id]; ok {
		return j.state, true
	}
	if st, ok := q.terminal[id]; ok {
		return st, true
	}
	if _, ok := q.pendingEnq[id]; ok {
		return StatePending, true
	}
	return 0, false
}

// DeadLetters returns the most recent quarantined jobs (bounded tail; the
// on-disk dead-letter log keeps all of them).
func (q *Queue) DeadLetters() []DeadLetter {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]DeadLetter, len(q.deadTail))
	copy(out, q.deadTail)
	return out
}

// Status snapshots the queue.
func (q *Queue) Status() Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Status{
		Depth:    q.queued + q.waiting,
		Inflight: q.inflight,
		Waiting:  q.waiting,
		Enqueued: q.stats.enqueued,
		Done:     q.stats.done,
		Dead:     q.stats.dead,
		Retries:  q.stats.retries,
		Deduped:  q.stats.deduped,
		Rejected: q.stats.rejected,
	}
	if len(q.tenants) > 0 {
		st.PerTenant = make(map[string]int, len(q.tenants))
		for name, t := range q.tenants {
			if t.unfinished > 0 {
				st.PerTenant[name] = t.unfinished
			}
		}
	}
	oldest := time.Time{}
	for _, j := range q.jobs {
		if j.state == StateRunning && (oldest.IsZero() || j.leaseAt.Before(oldest)) {
			oldest = j.leaseAt
		}
	}
	if !oldest.IsZero() {
		st.OldestLeaseMS = time.Since(oldest).Milliseconds()
	}
	if q.broken != nil {
		st.Broken = q.broken.Error()
	}
	return st
}

// WaitIdle blocks until every accepted job has reached a terminal state.
func (q *Queue) WaitIdle(ctx context.Context) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			q.mu.Lock()
			q.idleCond.Broadcast()
			q.mu.Unlock()
		case <-stop:
		}
	}()
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.jobs) == 0 && len(q.pendingEnq) == 0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := q.usableLocked(); err != nil {
			return err
		}
		q.idleCond.Wait()
	}
}

// Kill simulates a SIGKILL for crash testing: every in-memory transition
// stops dead and nothing further is written — the unsynced journal tail is
// exactly what a real kill would leave in the page cache. The queue is
// unusable afterwards; recovery happens by Opening the directory again.
func (q *Queue) Kill() {
	q.mu.Lock()
	if q.killed {
		q.mu.Unlock()
		return
	}
	q.killed = true
	for id, t := range q.timers {
		t.Stop()
		delete(q.timers, id)
	}
	q.stopOnce.Do(func() { close(q.stopCh) })
	q.runCancel()
	q.syncCond.Broadcast()
	q.workCond.Broadcast()
	q.idleCond.Broadcast()
	q.mu.Unlock()
	// No wg.Wait: a kill does not say goodbye. Consumers still in a handler
	// observe killed at settle time and drop their outcome on the floor.
}

// Close drains gracefully: no new jobs or dequeues, running handlers finish
// and journal their outcomes, then everything is fsynced and compacted so
// the next Open replays a minimal journal.
func (q *Queue) Close() error {
	q.mu.Lock()
	if q.killed {
		q.mu.Unlock()
		return ErrKilled
	}
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	for id, t := range q.timers {
		t.Stop()
		delete(q.timers, id)
	}
	// Release enqueue ack waiters: their records go durable now, their jobs
	// are accepted (they will run on the next Open).
	q.fsyncLocked()
	q.workCond.Broadcast()
	q.idleCond.Broadcast()
	q.mu.Unlock()

	q.stopOnce.Do(func() { close(q.stopCh) })
	q.wg.Wait()
	q.runCancel()

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.broken == nil {
		// Flush the write-behind completion records from the drained
		// handlers, then compact so restart replays a snapshot, not history.
		q.fsyncLocked()
	}
	if q.broken == nil && q.sinceSnap > 0 {
		q.compactLocked()
	}
	jerr := q.journal.Close()
	derr := q.dead.Close()
	if q.broken != nil {
		return q.broken
	}
	if jerr != nil {
		return jerr
	}
	return derr
}

// truncReason bounds failure-reason strings everywhere they are stored.
func truncReason(s string) string {
	const maxReason = 512
	if len(s) > maxReason {
		return s[:maxReason] + "..."
	}
	return s
}
