package queue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
)

// testConfig returns a fast-retry config on the given MemFS with a handler
// that records every run.
type runLog struct {
	mu   sync.Mutex
	runs map[string]int
	term map[string][]State
}

func newRunLog() *runLog {
	return &runLog{runs: map[string]int{}, term: map[string][]State{}}
}

func (rl *runLog) ran(id string) {
	rl.mu.Lock()
	rl.runs[id]++
	rl.mu.Unlock()
}

func (rl *runLog) count(id string) int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.runs[id]
}

func (rl *runLog) terminal(j Job, st State) {
	rl.mu.Lock()
	rl.term[j.ID] = append(rl.term[j.ID], st)
	rl.mu.Unlock()
}

func baseConfig(fs *wal.MemFS) Config {
	return Config{
		Dir:          "q",
		FS:           fs,
		RetryBase:    time.Millisecond,
		RetryMax:     4 * time.Millisecond,
		SyncInterval: -1,
		Seed:         7,
	}
}

func waitIdleT(t *testing.T, q *Queue) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.WaitIdle(ctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
}

func TestQueueDrainAndCleanRestart(t *testing.T) {
	fs := wal.NewMemFS()
	rl := newRunLog()
	cfg := baseConfig(fs)
	cfg.Handler = func(_ context.Context, j Job) error { rl.ran(j.ID); return nil }
	cfg.OnTerminal = rl.terminal
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var ids []string
	for i := 0; i < 10; i++ {
		id, st, dup, err := q.Enqueue("t1", []byte(fmt.Sprintf("job-%d", i)))
		if err != nil || dup || st != StatePending {
			t.Fatalf("Enqueue %d: id=%s st=%v dup=%v err=%v", i, id, st, dup, err)
		}
		ids = append(ids, id)
	}
	waitIdleT(t, q)
	for _, id := range ids {
		if n := rl.count(id); n != 1 {
			t.Errorf("job %s ran %d times, want 1", id, n)
		}
		if st, ok := q.JobState(id); !ok || st != StateDone {
			t.Errorf("job %s state %v ok=%v, want done", id, st, ok)
		}
	}
	st := q.Status()
	if st.Depth != 0 || st.Inflight != 0 || st.Done != 10 || st.Enqueued != 10 {
		t.Errorf("status %+v", st)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A graceful close compacts: the restart replays terminal states without
	// re-running anything.
	q2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.Close()
	waitIdleT(t, q2)
	for _, id := range ids {
		if n := rl.count(id); n != 1 {
			t.Errorf("after restart job %s ran %d times, want 1", id, n)
		}
		if st, ok := q2.JobState(id); !ok || st != StateDone {
			t.Errorf("after restart job %s state %v ok=%v", id, st, ok)
		}
	}
}

// TestQueueReplayWriteBehindLoss hand-crafts the exact crash the write-behind
// completion discipline allows: enq records durable, one done record synced,
// a second done record torn off with the unsynced tail. Recovery must re-run
// everything except the durably-done job — and nothing twice.
func TestQueueReplayWriteBehindLoss(t *testing.T) {
	fs := wal.NewMemFS()
	jl, _, err := wal.Open(wal.Options{FS: fs, Dir: "q/journal", Sync: wal.SyncNever})
	if err != nil {
		t.Fatalf("craft journal: %v", err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		payload := []byte(fmt.Sprintf("job-%d", i))
		id := JobID("t1", payload)
		ids = append(ids, id)
		data, _ := encodeRec(rec{T: recEnq, ID: id, Tenant: "t1", P: payload})
		if err := jl.Append(data); err != nil {
			t.Fatalf("append enq: %v", err)
		}
	}
	if err := jl.Sync(); err != nil {
		t.Fatalf("sync enq: %v", err)
	}
	done0, _ := encodeRec(rec{T: recDone, ID: ids[0]})
	if err := jl.Append(done0); err != nil {
		t.Fatalf("append done0: %v", err)
	}
	if err := jl.Sync(); err != nil {
		t.Fatalf("sync done0: %v", err)
	}
	done1, _ := encodeRec(rec{T: recDone, ID: ids[1]})
	if err := jl.Append(done1); err != nil {
		t.Fatalf("append done1: %v", err)
	}
	fs.Crash(nil) // done1 was never synced: gone

	rl := newRunLog()
	cfg := baseConfig(fs)
	cfg.Handler = func(_ context.Context, j Job) error { rl.ran(j.ID); return nil }
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer q.Close()
	waitIdleT(t, q)
	if n := rl.count(ids[0]); n != 0 {
		t.Errorf("durably-done job re-ran %d times", n)
	}
	for _, id := range ids[1:] {
		if n := rl.count(id); n != 1 {
			t.Errorf("job %s ran %d times, want 1", id, n)
		}
	}
	for _, id := range ids {
		if st, ok := q.JobState(id); !ok || st != StateDone {
			t.Errorf("job %s final state %v ok=%v", id, st, ok)
		}
	}
}

func TestQueuePoisonDeadLetters(t *testing.T) {
	fs := wal.NewMemFS()
	rl := newRunLog()
	cfg := baseConfig(fs)
	cfg.MaxAttempts = 3
	cfg.Handler = func(_ context.Context, j Job) error {
		rl.ran(j.ID)
		if string(j.Payload) == "poison" {
			return Permanent(errors.New("malformed spec"))
		}
		return errors.New("transient wobble")
	}
	cfg.OnTerminal = rl.terminal
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pid, _, _, err := q.Enqueue("t1", []byte("poison"))
	if err != nil {
		t.Fatalf("enqueue poison: %v", err)
	}
	fid, _, _, err := q.Enqueue("t1", []byte("flaky-forever"))
	if err != nil {
		t.Fatalf("enqueue flaky: %v", err)
	}
	waitIdleT(t, q)
	if n := rl.count(pid); n != 1 {
		t.Errorf("poison ran %d times, want 1 (Permanent must skip retries)", n)
	}
	if n := rl.count(fid); n != 3 {
		t.Errorf("transient job ran %d times, want MaxAttempts=3", n)
	}
	for _, id := range []string{pid, fid} {
		if st, ok := q.JobState(id); !ok || st != StateDead {
			t.Errorf("job %s state %v ok=%v, want dead", id, st, ok)
		}
	}
	dls := q.DeadLetters()
	if len(dls) != 2 {
		t.Fatalf("got %d dead letters, want 2", len(dls))
	}
	for _, dl := range dls {
		if dl.Reason == "" {
			t.Errorf("dead letter %s has empty reason", dl.ID)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Quarantine survives restart: both the terminal state and the forensic
	// record come back, and a duplicate enqueue reports dead instead of
	// re-running the poison.
	q2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.Close()
	if st, ok := q2.JobState(pid); !ok || st != StateDead {
		t.Errorf("restart lost dead state: %v ok=%v", st, ok)
	}
	if got := len(q2.DeadLetters()); got != 2 {
		t.Errorf("restart lost dead letters: got %d", got)
	}
	id, st, dup, err := q2.Enqueue("t1", []byte("poison"))
	if err != nil || !dup || st != StateDead || id != pid {
		t.Errorf("re-enqueue of dead job: id=%s st=%v dup=%v err=%v", id, st, dup, err)
	}
}

func TestQueueTransientRetrySucceeds(t *testing.T) {
	fs := wal.NewMemFS()
	rl := newRunLog()
	cfg := baseConfig(fs)
	cfg.MaxAttempts = 4
	cfg.Handler = func(_ context.Context, j Job) error {
		rl.ran(j.ID)
		// Fails on attempts 0 and 1, succeeds on the third run. Keyed off
		// j.Attempts (journaled) rather than the local count so the logic
		// would hold across restarts too.
		if j.Attempts < 2 {
			return errors.New("transient")
		}
		return nil
	}
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer q.Close()
	id, _, _, err := q.Enqueue("t1", []byte("flaky"))
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	waitIdleT(t, q)
	if n := rl.count(id); n != 3 {
		t.Errorf("ran %d times, want 3", n)
	}
	if st, _ := q.JobState(id); st != StateDone {
		t.Errorf("state %v, want done", st)
	}
	if got := q.Status().Retries; got != 2 {
		t.Errorf("retries %d, want 2", got)
	}
}

func TestQueueRequeueDoesNotBurnAttempts(t *testing.T) {
	fs := wal.NewMemFS()
	var mu sync.Mutex
	requeues := 0
	cfg := baseConfig(fs)
	cfg.MaxAttempts = 2
	cfg.Handler = func(_ context.Context, j Job) error {
		mu.Lock()
		defer mu.Unlock()
		if requeues < 5 {
			requeues++
			return ErrRequeue
		}
		if j.Attempts != 0 {
			return Permanent(fmt.Errorf("requeue burned %d attempts", j.Attempts))
		}
		return nil
	}
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer q.Close()
	id, _, _, err := q.Enqueue("t1", []byte("shutdown-victim"))
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	waitIdleT(t, q)
	if st, _ := q.JobState(id); st != StateDone {
		t.Errorf("state %v, want done (5 requeues must not exhaust MaxAttempts=2)", st)
	}
}

func TestQueueFairnessSmoothWRR(t *testing.T) {
	fs := wal.NewMemFS()
	cfg := baseConfig(fs)
	cfg.Consumers = -1 // drive pickLocked by hand
	cfg.TenantWeights = map[string]int{"alpha": 3, "beta": 1}
	cfg.Handler = func(context.Context, Job) error { return nil }
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer q.Close()
	for i := 0; i < 8; i++ {
		if _, _, _, err := q.Enqueue("alpha", []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatalf("enqueue alpha: %v", err)
		}
		if _, _, _, err := q.Enqueue("beta", []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatalf("enqueue beta: %v", err)
		}
	}
	var got []string
	q.mu.Lock()
	for i := 0; i < 8; i++ {
		j := q.pickLocked()
		if j == nil {
			q.mu.Unlock()
			t.Fatalf("pick %d returned nil", i)
		}
		got = append(got, j.Tenant)
	}
	q.mu.Unlock()
	// Smooth WRR at 3:1 interleaves rather than bursting: beta appears once
	// in every window of 4, never back to back with itself.
	want := []string{"alpha", "alpha", "beta", "alpha", "alpha", "alpha", "beta", "alpha"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pick order %v, want %v", got, want)
		}
	}
}

func TestQueueDepthCaps(t *testing.T) {
	fs := wal.NewMemFS()
	cfg := baseConfig(fs)
	cfg.Consumers = -1 // nothing drains, so depth only grows
	cfg.MaxDepth = 4
	cfg.TenantDepth = 2
	cfg.Handler = func(context.Context, Job) error { return nil }
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer q.Close()
	for i := 0; i < 2; i++ {
		if _, _, _, err := q.Enqueue("greedy", []byte(fmt.Sprintf("g%d", i))); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if _, _, _, err := q.Enqueue("greedy", []byte("g2")); !errors.Is(err, ErrTenantFull) {
		t.Errorf("tenant over cap: err=%v, want ErrTenantFull", err)
	}
	// Another tenant still gets in: the cap is per tenant, not global.
	for i := 0; i < 2; i++ {
		if _, _, _, err := q.Enqueue("modest", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("enqueue modest %d: %v", i, err)
		}
	}
	if _, _, _, err := q.Enqueue("third", []byte("t0")); !errors.Is(err, ErrQueueFull) {
		t.Errorf("global over cap: err=%v, want ErrQueueFull", err)
	}
	if got := q.Status().Rejected; got != 2 {
		t.Errorf("rejected %d, want 2", got)
	}
}

func TestQueueDedupCollapsesResubmits(t *testing.T) {
	fs := wal.NewMemFS()
	block := make(chan struct{})
	cfg := baseConfig(fs)
	cfg.Handler = func(_ context.Context, j Job) error { <-block; return nil }
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer q.Close()
	id1, _, dup1, err := q.Enqueue("t1", []byte("same"))
	if err != nil || dup1 {
		t.Fatalf("first enqueue: dup=%v err=%v", dup1, err)
	}
	id2, _, dup2, err := q.Enqueue("t1", []byte("same"))
	if err != nil || !dup2 || id2 != id1 {
		t.Fatalf("second enqueue: id=%s dup=%v err=%v", id2, dup2, err)
	}
	// Same payload under another tenant is a different job: tenants must not
	// be able to poison or observe each other's entries.
	id3, _, dup3, err := q.Enqueue("t2", []byte("same"))
	if err != nil || dup3 || id3 == id1 {
		t.Fatalf("cross-tenant enqueue: id=%s dup=%v err=%v", id3, dup3, err)
	}
	close(block)
	waitIdleT(t, q)
	if got := q.Status().Deduped; got != 1 {
		t.Errorf("deduped %d, want 1", got)
	}
}

func TestQueueTornTailOnEnqueueAck(t *testing.T) {
	// A crash can tear the journal mid-frame; recovery must truncate the
	// torn tail and keep every record before it.
	fs := wal.NewMemFS()
	rl := newRunLog()
	cfg := baseConfig(fs)
	cfg.Consumers = -1 // keep jobs queued so the journal holds only enq records
	cfg.Handler = func(_ context.Context, j Job) error { rl.ran(j.ID); return nil }
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		id, _, _, err := q.Enqueue("t1", []byte(fmt.Sprintf("job-%d", i)))
		if err != nil {
			t.Fatalf("enqueue: %v", err)
		}
		ids = append(ids, id)
	}
	q.Kill()
	// Append a record that never gets synced, then tear half of it off.
	data, _ := encodeRec(rec{T: recEnq, ID: "unacked", Tenant: "t1", P: []byte("unacked")})
	q.journal.Append(data)
	fs.Crash(func(name string, unsynced int) int { return unsynced / 2 })

	cfg.Consumers = 0 // default pool this time: drain everything
	q2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer q2.Close()
	waitIdleT(t, q2)
	for _, id := range ids {
		if n := rl.count(id); n != 1 {
			t.Errorf("acked job %s ran %d times, want 1", id, n)
		}
	}
	if n := rl.count("unacked"); n != 0 {
		t.Errorf("torn unacked record ran %d times", n)
	}
}

func TestQueueWaitIdleHonorsContext(t *testing.T) {
	fs := wal.NewMemFS()
	cfg := baseConfig(fs)
	cfg.Consumers = -1 // job can never finish
	cfg.Handler = func(context.Context, Job) error { return nil }
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer q.Close()
	if _, _, _, err := q.Enqueue("t1", []byte("stuck")); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.WaitIdle(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("WaitIdle err=%v, want DeadlineExceeded", err)
	}
}

func TestQueueClosedAndKilledRefuse(t *testing.T) {
	fs := wal.NewMemFS()
	cfg := baseConfig(fs)
	cfg.Handler = func(context.Context, Job) error { return nil }
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, _, err := q.Enqueue("t1", []byte("late")); !errors.Is(err, ErrClosed) {
		t.Errorf("enqueue after close: %v, want ErrClosed", err)
	}
	if err := q.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}

	fs2 := wal.NewMemFS()
	cfg2 := baseConfig(fs2)
	cfg2.Handler = func(context.Context, Job) error { return nil }
	q2, err := Open(cfg2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	q2.Kill()
	if _, _, _, err := q2.Enqueue("t1", []byte("late")); !errors.Is(err, ErrKilled) {
		t.Errorf("enqueue after kill: %v, want ErrKilled", err)
	}
	if err := q2.Close(); !errors.Is(err, ErrKilled) {
		t.Errorf("close after kill: %v, want ErrKilled", err)
	}
}

func TestQueuePanicIsAFailureNotACrash(t *testing.T) {
	fs := wal.NewMemFS()
	cfg := baseConfig(fs)
	cfg.MaxAttempts = 2
	cfg.Handler = func(_ context.Context, j Job) error {
		panic("handler exploded")
	}
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer q.Close()
	id, _, _, err := q.Enqueue("t1", []byte("bomb"))
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	waitIdleT(t, q)
	if st, _ := q.JobState(id); st != StateDead {
		t.Errorf("state %v, want dead", st)
	}
	dls := q.DeadLetters()
	if len(dls) != 1 || dls[0].Reason == "" {
		t.Fatalf("dead letters %+v", dls)
	}
}

func TestQueuePausedBacklogThenResume(t *testing.T) {
	fs := wal.NewMemFS()
	rl := newRunLog()
	cfg := baseConfig(fs)
	cfg.StartPaused = true
	cfg.Handler = func(_ context.Context, j Job) error { rl.ran(j.ID); return nil }
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer q.Close()
	for i := 0; i < 20; i++ {
		if _, _, _, err := q.Enqueue("t1", []byte(fmt.Sprintf("job-%d", i))); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if st := q.Status(); st.Depth != 20 || st.Inflight != 0 {
		t.Fatalf("paused queue drained: %+v", st)
	}
	q.Resume()
	waitIdleT(t, q)
	if st := q.Status(); st.Done != 20 {
		t.Errorf("done %d, want 20", st.Done)
	}
}

// TestQueueCompactionCoversLiveJobs forces a compaction while jobs are still
// queued, kills the queue before anything else is written, and replays: the
// snapshot must carry the live set or compaction would be a data-loss event.
func TestQueueCompactionCoversLiveJobs(t *testing.T) {
	fs := wal.NewMemFS()
	rl := newRunLog()
	gate := make(chan struct{})
	cfg := baseConfig(fs)
	cfg.CompactEvery = 1 // every terminal transition compacts
	cfg.Consumers = 1
	cfg.Handler = func(_ context.Context, j Job) error {
		rl.ran(j.ID)
		<-gate
		return nil
	}
	q, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var ids []string
	for i := 0; i < 6; i++ {
		id, _, _, err := q.Enqueue("t1", []byte(fmt.Sprintf("job-%d", i)))
		if err != nil {
			t.Fatalf("enqueue: %v", err)
		}
		ids = append(ids, id)
	}
	gate <- struct{}{} // let exactly one job finish (and compact)
	for {
		if q.Status().Done == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	q.Kill()
	fs.Crash(nil)

	cfg2 := baseConfig(fs)
	cfg2.Handler = func(_ context.Context, j Job) error { rl.ran(j.ID); return nil }
	q2, err := Open(cfg2)
	if err != nil {
		t.Fatalf("reopen after compaction crash: %v", err)
	}
	defer q2.Close()
	waitIdleT(t, q2)
	total := 0
	for _, id := range ids {
		if st, ok := q2.JobState(id); !ok || st != StateDone {
			t.Errorf("job %s state %v ok=%v", id, st, ok)
		}
		total += rl.count(id)
	}
	// One job ran before the kill; its done record hit the post-compaction
	// journal. Depending on sync timing it may re-run once after replay, but
	// no job may be lost and no schedule may run 6 jobs more than 7 times.
	if total < 6 || total > 7 {
		t.Errorf("total runs %d, want 6..7", total)
	}
}
