// Torture is the queue's fault-injection acceptance gate, in the style of
// cluster.Torture: every run drives a seeded schedule of kills (Kill + a
// page-cache crash with a random torn tail + reopen on the same filesystem),
// tenant floods against the depth caps, and quiet lulls, against a live
// queue whose jobs are a seeded mix of clean, flaky (transient failures
// below the retry budget) and poison (permanent failures) work, submitted
// concurrently by per-tenant goroutines that re-submit anything whose ack
// was lost to a crash.
//
// The assertions are the tentpole guarantees, schedule-independent by
// construction:
//
//   - no job lost: every acknowledged job reaches a terminal state, and the
//     final queue drains to depth 0 / inflight 0;
//   - exactly one terminal state: clean and flaky jobs end Done, poison ends
//     Dead, and no job ever reports both;
//   - no double-completion: at most one terminal notification per job per
//     queue incarnation (a crash that tears an unsynced completion record
//     may re-run the job in the next incarnation — that is the write-behind
//     contract, and it is why completions must be idempotent — but within
//     one journal history a job completes once);
//   - quarantine is durable: every poison job is present in the dead-letter
//     log with a failure reason, across however many crashes the schedule
//     dealt.
package queue

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// TortureConfig shapes a campaign.
type TortureConfig struct {
	// Runs is the number of seeded schedules; BaseSeed+i seeds run i.
	Runs     int
	BaseSeed int64
	// Jobs per run (default 40), spread round-robin over Tenants (default 3).
	Jobs    int
	Tenants int
	// Consumers per queue incarnation (default 3).
	Consumers int
	// Events is the chaos-event count per run (default 6).
	Events int
	// Parallel runs schedules concurrently (0 or 1 = sequential).
	Parallel int
	// Verbose, when set, receives one line per run.
	Verbose func(format string, args ...any)
	// Stop, when set, is polled between runs; true ends the campaign early.
	Stop func() bool
}

// TortureViolation is one seed that broke a guarantee. The seed is the
// replay handle: rerun with BaseSeed=Seed, Runs=1 to reproduce.
type TortureViolation struct {
	Seed   int64
	Detail string
}

func (v TortureViolation) String() string {
	return fmt.Sprintf("seed %d: %s", v.Seed, v.Detail)
}

// TortureResult aggregates a campaign.
type TortureResult struct {
	Runs int
	// Kills counts queue kill+crash+reopen events; Recovered totals the
	// unfinished jobs those reopens re-queued — the proof the schedules
	// exercised replay, not just clean drains.
	Kills     int
	Recovered int
	Floods    int
	// Rejections counts depth-cap refusals (flood pressure that worked).
	Rejections int
	// Resubmits counts enqueue acks lost to a crash and submitted again.
	Resubmits  int
	Dead       int
	Violations []TortureViolation
	// Interrupted is set when Stop ended the campaign early; NextSeed is the
	// resume point.
	Interrupted bool
	NextSeed    int64
}

func (r TortureResult) String() string {
	return fmt.Sprintf("queue torture: %d runs, %d violations; %d kills, %d jobs recovered, %d floods, %d cap rejections, %d resubmits, %d dead-lettered",
		r.Runs, len(r.Violations), r.Kills, r.Recovered, r.Floods, r.Rejections, r.Resubmits, r.Dead)
}

// Torture runs the campaign.
func Torture(cfg TortureConfig) TortureResult {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 40
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 3
	}
	if cfg.Consumers <= 0 {
		cfg.Consumers = 3
	}
	if cfg.Events <= 0 {
		cfg.Events = 6
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}

	var (
		mu          sync.Mutex
		res         TortureResult
		interrupted atomic.Bool
	)
	sem := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
	next := cfg.BaseSeed
	for i := 0; i < cfg.Runs; i++ {
		if cfg.Stop != nil && cfg.Stop() {
			interrupted.Store(true)
			break
		}
		seed := cfg.BaseSeed + int64(i)
		next = seed + 1
		wg.Add(1)
		sem <- struct{}{}
		go func(seed int64) {
			defer wg.Done()
			defer func() { <-sem }()
			stats, detail := tortureRun(cfg, seed)
			mu.Lock()
			defer mu.Unlock()
			res.Runs++
			res.Kills += stats.kills
			res.Recovered += stats.recovered
			res.Floods += stats.floods
			res.Rejections += stats.rejections
			res.Resubmits += stats.resubmits
			res.Dead += stats.dead
			if detail != "" {
				res.Violations = append(res.Violations, TortureViolation{Seed: seed, Detail: detail})
				if cfg.Verbose != nil {
					cfg.Verbose("queue torture seed %d FAILED: %s", seed, detail)
				}
			} else if cfg.Verbose != nil {
				cfg.Verbose("queue torture seed %d ok: %d kills, %d recovered, %d floods, %d rejections, %d resubmits",
					seed, stats.kills, stats.recovered, stats.floods, stats.rejections, stats.resubmits)
			}
		}(seed)
	}
	wg.Wait()
	sort.Slice(res.Violations, func(i, k int) bool { return res.Violations[i].Seed < res.Violations[k].Seed })
	res.Interrupted = interrupted.Load()
	res.NextSeed = next
	return res
}

type tortureStats struct {
	kills, recovered, floods, rejections, resubmits, dead int
}

// Job kinds. Flaky failure counts stay strictly below MaxAttempts, so even
// a crash that loses attempt records (resetting the count) can only grant
// extra retries, never tip a flaky job into the dead-letter log — which is
// what makes the expected terminal state schedule-independent.
const (
	tortureMaxAttempts = 3
	tortureTenantDepth = 10
)

type tortureTracker struct {
	mu     sync.Mutex
	kind   map[string]string         // acked job ID → ok|flaky|poison
	notes  map[string]map[int]int    // job ID → incarnation → terminal notifications
	states map[string]map[State]bool // job ID → terminal states ever reported
}

func newTortureTracker() *tortureTracker {
	return &tortureTracker{
		kind:   map[string]string{},
		notes:  map[string]map[int]int{},
		states: map[string]map[State]bool{},
	}
}

func (tr *tortureTracker) acked(id, kind string) {
	tr.mu.Lock()
	tr.kind[id] = kind
	tr.mu.Unlock()
}

func (tr *tortureTracker) terminal(incarnation int) func(Job, State) {
	return func(j Job, st State) {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		if tr.notes[j.ID] == nil {
			tr.notes[j.ID] = map[int]int{}
		}
		tr.notes[j.ID][incarnation]++
		if tr.states[j.ID] == nil {
			tr.states[j.ID] = map[State]bool{}
		}
		tr.states[j.ID][st] = true
	}
}

// qbox hands the live queue incarnation to concurrent submitters while kill
// events swap it out underneath them.
type qbox struct {
	mu sync.Mutex
	q  *Queue
}

func (b *qbox) get() *Queue {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.q
}

// tortureHandler runs one job from its payload "kind:index:flakiness".
func tortureHandler(_ context.Context, j Job) error {
	parts := strings.SplitN(string(j.Payload), ":", 3)
	kind := parts[0]
	idx := 0
	if len(parts) > 1 {
		idx, _ = strconv.Atoi(parts[1])
	}
	// Stagger handler latency by job index (no clocks, no randomness: the
	// handler must behave identically in every incarnation) so kill windows
	// land mid-run for some jobs and between jobs for others.
	time.Sleep(time.Duration(idx%3) * 500 * time.Microsecond)
	switch kind {
	case "poison":
		return Permanent(fmt.Errorf("torture poison job %d", idx))
	case "flaky":
		f := 1
		if len(parts) > 2 {
			f, _ = strconv.Atoi(parts[2])
		}
		if j.Attempts < f {
			return fmt.Errorf("torture transient failure %d/%d", j.Attempts+1, f)
		}
		return nil
	default:
		return nil
	}
}

func tortureRun(cfg TortureConfig, seed int64) (tortureStats, string) {
	rng := rand.New(rand.NewSource(seed))
	fs := wal.NewMemFS()
	tracker := newTortureTracker()
	var stats tortureStats
	incarnation := 0

	weights := map[string]int{}
	for t := 0; t < cfg.Tenants; t++ {
		weights[fmt.Sprintf("t%d", t)] = 1 + t%3
	}
	openQueue := func() (*Queue, error) {
		incarnation++
		qc := Config{
			Dir:           "tq",
			FS:            fs,
			SegmentBytes:  1 << 12, // small segments: kills land across rotations
			Handler:       tortureHandler,
			Consumers:     cfg.Consumers,
			MaxAttempts:   tortureMaxAttempts,
			RetryBase:     time.Millisecond,
			RetryMax:      4 * time.Millisecond,
			Seed:          seed*31 + int64(incarnation),
			TenantDepth:   tortureTenantDepth,
			TenantWeights: weights,
			CompactEvery:  16, // frequent compaction: kills land around snapshots
			OnTerminal:    tracker.terminal(incarnation),
		}
		if rng.Intn(2) == 0 {
			qc.SyncInterval = -1 // immediate group commit
		} else {
			qc.SyncInterval = 500 * time.Microsecond // batching window in play
		}
		return Open(qc)
	}

	q0, err := openQueue()
	if err != nil {
		return stats, fmt.Sprintf("initial open: %v", err)
	}
	box := &qbox{q: q0}

	// Assign kinds up front from the schedule rng (the submitters must not
	// consume seeded randomness concurrently).
	type jobSpec struct{ tenant, kind, payload string }
	specs := make([]jobSpec, cfg.Jobs)
	for i := range specs {
		tenant := fmt.Sprintf("t%d", i%cfg.Tenants)
		kind, flakiness := "ok", 0
		switch r := rng.Float64(); {
		case r < 0.15:
			kind = "poison"
		case r < 0.40:
			kind = "flaky"
			flakiness = 1 + rng.Intn(tortureMaxAttempts-1)
		}
		specs[i] = jobSpec{tenant: tenant, kind: kind, payload: fmt.Sprintf("%s:%d:%d", kind, i, flakiness)}
	}

	// Per-tenant submitters: enqueue each job until some incarnation acks
	// it, re-submitting through kills, cap rejections, and lost acks.
	var resubmits, rejections atomic.Int64
	var subWG sync.WaitGroup
	for t := 0; t < cfg.Tenants; t++ {
		subWG.Add(1)
		go func(t int) {
			defer subWG.Done()
			for i := t; i < len(specs); i += cfg.Tenants {
				sp := specs[i]
				for attempt := 0; ; attempt++ {
					if attempt > 5000 {
						// Leave the job unacked; the final assertions only
						// cover acknowledged jobs, and a stuck submitter
						// must not hang the campaign.
						return
					}
					id, _, _, err := box.get().Enqueue(sp.tenant, []byte(sp.payload))
					if err == nil {
						tracker.acked(id, sp.kind)
						break
					}
					switch {
					case errors.Is(err, ErrTenantFull), errors.Is(err, ErrQueueFull):
						rejections.Add(1)
					case errors.Is(err, ErrKilled), errors.Is(err, ErrClosed):
						resubmits.Add(1)
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(t)
	}

	// The chaos schedule runs against the submitters.
	var detail string
	fail := func(format string, args ...any) {
		if detail == "" {
			detail = fmt.Sprintf(format, args...)
		}
	}
	for e := 0; e < cfg.Events && detail == ""; e++ {
		time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
		switch r := rng.Float64(); {
		case r < 0.5: // SIGKILL + page-cache crash with a random torn tail
			box.mu.Lock()
			box.q.Kill()
			fs.Crash(func(name string, unsynced int) int { return rng.Intn(unsynced + 1) })
			nq, err := openQueue()
			if err != nil {
				box.mu.Unlock()
				fail("reopen after kill %d: %v", stats.kills+1, err)
				break
			}
			stats.recovered += nq.Status().Depth
			box.q = nq
			box.mu.Unlock()
			stats.kills++
		case r < 0.8: // flood one tenant past its depth cap
			stats.floods++
			q := box.get()
			tenant := fmt.Sprintf("t%d", rng.Intn(cfg.Tenants))
			for b := 0; b < tortureTenantDepth+5; b++ {
				payload := fmt.Sprintf("ok:%d:0", 1000+stats.floods*100+b)
				id, _, _, err := q.Enqueue(tenant, []byte(payload))
				switch {
				case err == nil:
					tracker.acked(id, "ok")
				case errors.Is(err, ErrTenantFull), errors.Is(err, ErrQueueFull):
					rejections.Add(1)
				}
			}
		default: // lull: let the drain make progress
			time.Sleep(3 * time.Millisecond)
		}
	}

	subWG.Wait()
	stats.resubmits = int(resubmits.Load())
	stats.rejections += int(rejections.Load())
	if detail != "" {
		box.get().Kill()
		return stats, detail
	}

	// Drain and verify every guarantee.
	q := box.get()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	err = q.WaitIdle(ctx)
	cancel()
	if err != nil {
		q.Kill()
		return stats, fmt.Sprintf("final drain: %v", err)
	}
	st := q.Status()
	if st.Depth != 0 || st.Inflight != 0 {
		fail("drained queue not empty: depth=%d inflight=%d", st.Depth, st.Inflight)
	}
	deadByID := map[string]DeadLetter{}
	for _, dl := range q.DeadLetters() {
		deadByID[dl.ID] = dl
	}
	tracker.mu.Lock()
	for id, kind := range tracker.kind {
		want := StateDone
		if kind == "poison" {
			want = StateDead
		}
		got, ok := q.JobState(id)
		if !ok {
			fail("acked %s job %s lost: no state after drain", kind, id[:12])
			continue
		}
		if got != want {
			fail("%s job %s ended %v, want %v", kind, id[:12], got, want)
		}
		for inc, n := range tracker.notes[id] {
			if n > 1 {
				fail("job %s completed %d times in incarnation %d", id[:12], n, inc)
			}
		}
		if len(tracker.states[id]) > 1 {
			fail("job %s reported multiple terminal states %v", id[:12], tracker.states[id])
		}
		if kind == "poison" {
			dl, present := deadByID[id]
			if !present {
				fail("poison job %s missing from dead-letter log", id[:12])
			} else if dl.Reason == "" {
				fail("poison job %s dead-lettered without a reason", id[:12])
			} else {
				stats.dead++
			}
		}
	}
	tracker.mu.Unlock()
	if err := q.Close(); err != nil && detail == "" {
		fail("final close: %v", err)
	}
	return stats, detail
}
