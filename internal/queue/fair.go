// Per-tenant FIFO queues with smooth weighted round-robin dequeue: each
// pick, every tenant with runnable work gains its weight in credit and the
// richest tenant pays the total back and runs. The interleaving a weight
// ratio produces is maximally spread (3:1 gives A A B A, not A A A B), and
// tenants with nothing runnable accrue nothing, so a returning tenant gets
// its fair share but no retroactive burst.
package queue

import "sort"

type tenantQ struct {
	name   string
	weight int
	// jobs is a head-indexed FIFO; popped slots are nilled and the slice is
	// re-based once the dead prefix dominates, so a long-lived tenant does
	// not pin every payload it ever queued.
	jobs []*Job
	head int
	// unfinished counts accepted non-terminal jobs (queued + waiting +
	// running) — the quantity the per-tenant depth cap bounds.
	unfinished int
	// credit is the smooth-WRR balance.
	credit int
}

func (t *tenantQ) push(j *Job) { t.jobs = append(t.jobs, j) }

func (t *tenantQ) empty() bool { return t.head >= len(t.jobs) }

func (t *tenantQ) pop() *Job {
	j := t.jobs[t.head]
	t.jobs[t.head] = nil
	t.head++
	if t.head > 64 && t.head*2 >= len(t.jobs) {
		t.jobs = append(t.jobs[:0], t.jobs[t.head:]...)
		t.head = 0
	}
	return j
}

// tenantLocked returns (creating if needed) the tenant's queue.
func (q *Queue) tenantLocked(name string) *tenantQ {
	t, ok := q.tenants[name]
	if !ok {
		w := q.cfg.TenantWeights[name]
		if w <= 0 {
			w = 1
		}
		t = &tenantQ{name: name, weight: w}
		q.tenants[name] = t
		q.names = append(q.names, name)
		sort.Strings(q.names)
	}
	return t
}

// pickLocked dequeues the next job by smooth weighted round-robin over
// tenants with runnable work. Iteration is over the sorted name list so the
// schedule is deterministic for a given arrival order.
func (q *Queue) pickLocked() *Job {
	var best *tenantQ
	total := 0
	for _, name := range q.names {
		t := q.tenants[name]
		if t.empty() {
			continue
		}
		total += t.weight
		t.credit += t.weight
		if best == nil || t.credit > best.credit {
			best = t
		}
	}
	if best == nil {
		return nil
	}
	best.credit -= total
	return best.pop()
}
