// Journal record formats and replay. The journal is an internal/wal log of
// JSON records; the snapshot (written at compaction) is the full live job
// set. Replay = snapshot jobs + records after it, with the WAL's torn-tail
// rule deciding where durable history ends.
package queue

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/wal"
)

// Record types. Only enq must be durable before it matters (the enqueue ack
// waits for it); done/dead/try are write-behind because re-running a
// verification job is idempotent through the vcache.
const (
	recEnq  = "enq"
	recDone = "done"
	recDead = "dead"
	recTry  = "try"
)

// rec is one journal record. P is base64 via encoding/json's []byte rule.
type rec struct {
	T      string `json:"t"`
	ID     string `json:"id"`
	Tenant string `json:"tn,omitempty"`
	P      []byte `json:"p,omitempty"`
	N      int    `json:"n,omitempty"`
	Reason string `json:"r,omitempty"`
}

func encodeRec(r rec) ([]byte, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("queue: encoding %s record: %w", r.T, err)
	}
	return data, nil
}

// snapJob is one live job in a compaction snapshot, in acceptance order.
type snapJob struct {
	ID       string `json:"id"`
	Tenant   string `json:"tn"`
	P        []byte `json:"p"`
	Attempts int    `json:"n,omitempty"`
}

// snapTerm is one remembered terminal state (dedup memory), oldest first so
// replay rebuilds the eviction ring in the same order.
type snapTerm struct {
	ID string `json:"id"`
	D  bool   `json:"d,omitempty"` // true = dead, false = done
}

type snapState struct {
	Jobs []snapJob  `json:"jobs"`
	Term []snapTerm `json:"term,omitempty"`
}

// encodeSnapshotLocked serializes the live set (accepted jobs plus enqueues
// whose ack is still waiting on an fsync — their records are about to be
// truncated with the journal, so the snapshot must carry them) and the
// bounded terminal-state memory (without it a restart would forget that a
// poison job is quarantined and happily re-run it on the next resubmit).
func (q *Queue) encodeSnapshotLocked() ([]byte, error) {
	jobs, pendingEnq := q.jobs, q.pendingEnq
	all := make([]*Job, 0, len(jobs)+len(pendingEnq))
	for _, j := range jobs {
		all = append(all, j)
	}
	for id, j := range pendingEnq {
		if _, dup := jobs[id]; !dup {
			all = append(all, j)
		}
	}
	sort.Slice(all, func(i, k int) bool {
		if all[i].seq != all[k].seq {
			return all[i].seq < all[k].seq
		}
		return all[i].ID < all[k].ID
	})
	st := snapState{Jobs: make([]snapJob, len(all))}
	for i, j := range all {
		st.Jobs[i] = snapJob{ID: j.ID, Tenant: j.Tenant, P: j.Payload, Attempts: j.Attempts}
	}
	// The ring's next-evict slot is its oldest entry; emit oldest→newest.
	emit := func(id string) {
		st.Term = append(st.Term, snapTerm{ID: id, D: q.terminal[id] == StateDead})
	}
	if len(q.termRing) < q.cfg.TerminalKeep {
		for _, id := range q.termRing {
			emit(id)
		}
	} else {
		for _, id := range q.termRing[q.termNext:] {
			emit(id)
		}
		for _, id := range q.termRing[:q.termNext] {
			emit(id)
		}
	}
	data, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("queue: encoding snapshot: %w", err)
	}
	return data, nil
}

func encodeDeadLetter(dl DeadLetter) ([]byte, error) {
	data, err := json.Marshal(dl)
	if err != nil {
		return nil, fmt.Errorf("queue: encoding dead letter: %w", err)
	}
	return data, nil
}

// replay rebuilds queue state from the recovered journal and dead-letter
// log. Unfinished jobs are re-queued in acceptance order; jobs with a
// durable terminal record are remembered for dedup. Called from Open before
// any goroutine starts, so no locking.
func (q *Queue) replay(jrec, drec *wal.Recovery) error {
	type live struct {
		j   *Job
		ord int64
	}
	livejobs := map[string]*live{}
	order := int64(0)
	addLive := func(id, tenant string, payload []byte, attempts int) {
		order++
		livejobs[id] = &live{j: &Job{ID: id, Tenant: tenant, Payload: payload, Attempts: attempts, state: StatePending}, ord: order}
	}

	if len(jrec.Snapshot) > 0 {
		var st snapState
		if err := json.Unmarshal(jrec.Snapshot, &st); err != nil {
			return fmt.Errorf("queue: decoding snapshot: %w", err)
		}
		for _, tm := range st.Term {
			ts := StateDone
			if tm.D {
				ts = StateDead
				q.stats.dead++
			} else {
				q.stats.done++
			}
			q.rememberTerminalLocked(tm.ID, ts)
		}
		for _, sj := range st.Jobs {
			addLive(sj.ID, sj.Tenant, sj.P, sj.Attempts)
		}
	}
	for i, data := range jrec.Records {
		var r rec
		if err := json.Unmarshal(data, &r); err != nil {
			return fmt.Errorf("queue: decoding journal record %d: %w", i, err)
		}
		switch r.T {
		case recEnq:
			if _, ok := livejobs[r.ID]; ok {
				continue // duplicate enqueue record (concurrent dup, or re-enqueue after terminal aged out)
			}
			if _, ok := q.terminal[r.ID]; ok {
				continue
			}
			addLive(r.ID, r.Tenant, r.P, 0)
		case recTry:
			if l, ok := livejobs[r.ID]; ok && r.N > l.j.Attempts {
				l.j.Attempts = r.N
			}
		case recDone, recDead:
			if _, ok := livejobs[r.ID]; !ok {
				continue // terminal for a job outside the snapshot window
			}
			delete(livejobs, r.ID)
			st := StateDone
			if r.T == recDead {
				st = StateDead
				q.stats.dead++
			} else {
				q.stats.done++
			}
			q.rememberTerminalLocked(r.ID, st)
		default:
			return fmt.Errorf("queue: unknown journal record type %q", r.T)
		}
	}

	// Re-queue survivors in acceptance order so replay preserves FIFO.
	ids := make([]string, 0, len(livejobs))
	for id := range livejobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return livejobs[ids[i]].ord < livejobs[ids[k]].ord })
	for _, id := range ids {
		l := livejobs[id]
		q.seqCtr++
		l.j.seq = q.seqCtr
		q.jobs[id] = l.j
		t := q.tenantLocked(l.j.Tenant)
		t.push(l.j)
		t.unfinished++
		q.queued++
	}

	// Dead-letter forensics: keep the bounded tail, last record per ID wins
	// (a crash between the dead-letter append and the journal's terminal
	// record re-runs the job and quarantines it again).
	seen := map[string]int{}
	var tail []DeadLetter
	for i, data := range drec.Records {
		var dl DeadLetter
		if err := json.Unmarshal(data, &dl); err != nil {
			return fmt.Errorf("queue: decoding dead letter %d: %w", i, err)
		}
		if at, ok := seen[dl.ID]; ok {
			tail[at] = dl
			continue
		}
		seen[dl.ID] = len(tail)
		tail = append(tail, dl)
	}
	if len(tail) > q.cfg.DeadKeep {
		tail = tail[len(tail)-q.cfg.DeadKeep:]
	}
	q.deadTail = tail

	if q.queued > 0 || len(q.terminal) > 0 {
		q.cfg.Logf("queue: recovered %d unfinished job(s), %d terminal, %d dead-letter record(s), %d torn byte(s)",
			q.queued, len(q.terminal), len(tail), jrec.TornBytes+drec.TornBytes)
	}
	q.gaugesLocked()
	return nil
}
