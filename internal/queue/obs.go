// Process-wide queue metrics, surfaced through internal/obs so the service
// /metricsz endpoint exposes queue depth, in-flight count, dead-letter count
// and per-tenant depths without new plumbing.
package queue

import "repro/internal/obs"

var (
	obsDepth        = obs.Default.Gauge("queue", "depth")
	obsInflight     = obs.Default.Gauge("queue", "inflight")
	obsWaiting      = obs.Default.Gauge("queue", "retry_waiting")
	obsDeadGauge    = obs.Default.Gauge("queue", "dead_letters")
	obsEnqueued     = obs.Default.Counter("queue", "enqueued")
	obsCompleted    = obs.Default.Counter("queue", "completed")
	obsRetries      = obs.Default.Counter("queue", "retries")
	obsDeadLettered = obs.Default.Counter("queue", "dead_lettered")
	obsDeduped      = obs.Default.Counter("queue", "deduped")
	obsRejected     = obs.Default.Counter("queue", "rejected")
	obsFsyncBatches = obs.Default.Counter("queue", "fsync_batches")
	obsCompactions  = obs.Default.Counter("queue", "compactions")
)

// gaugesLocked refreshes every gauge from the queue's current state. The
// per-tenant gauges are created on first use, keyed by tenant name, so a new
// tenant shows up in /metricsz on its first enqueue.
func (q *Queue) gaugesLocked() {
	obsDepth.Set(int64(q.queued + q.waiting))
	obsInflight.Set(int64(q.inflight))
	obsWaiting.Set(int64(q.waiting))
	obsDeadGauge.Set(int64(q.stats.dead))
	for name, t := range q.tenants {
		obs.Default.Gauge("queue_tenant", name).Set(int64(t.unfinished))
	}
}
