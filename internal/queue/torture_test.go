package queue

import "testing"

// TestTortureCampaign is the acceptance gate from the issue: 100+ seeded
// kill/restart/poison/flood schedules, race-clean, every acked job reaching
// exactly one terminal state. -short trims the run count, not the coverage
// mix.
func TestTortureCampaign(t *testing.T) {
	runs := 100
	if testing.Short() {
		runs = 25
	}
	res := Torture(TortureConfig{
		Runs:     runs,
		BaseSeed: 1,
		Parallel: 2,
		Verbose: func(format string, args ...any) {
			if testing.Verbose() {
				t.Logf(format, args...)
			}
		},
	})
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
	t.Logf("%s", res)
	if res.Runs != runs {
		t.Errorf("ran %d schedules, want %d", res.Runs, runs)
	}
	// The campaign must actually have exercised the fault paths, not just
	// drained cleanly: kills with recovery, cap rejections, dead letters.
	if res.Kills == 0 || res.Recovered == 0 {
		t.Errorf("schedules forced no kill/recovery (kills=%d recovered=%d)", res.Kills, res.Recovered)
	}
	if res.Rejections == 0 {
		t.Errorf("schedules never hit a depth cap")
	}
	if res.Dead == 0 {
		t.Errorf("schedules never dead-lettered a poison job")
	}
	if res.Resubmits == 0 {
		t.Errorf("schedules never lost an enqueue ack to a crash")
	}
}
