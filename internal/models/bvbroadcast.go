// Package models contains the three threshold automata of the paper —
// the binary-value broadcast (Fig. 2), the naive Byzantine-consensus
// automaton (Fig. 3 / Table 3) and the simplified consensus automaton
// (Fig. 4) — together with their LTL properties rendered as counterexample
// queries (internal/spec) and fairness assumptions (Appendix F).
package models

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/spec"
	"repro/internal/ta"
)

// BVBroadcast builds the threshold automaton of the binary value broadcast
// (Fig. 2). Locations encode which values a correct process has broadcast
// and delivered (Table 1):
//
//	V0,V1: initial, holding input 0 resp. 1
//	B0,B1: broadcast own value
//	B01:   broadcast both values, delivered none
//	C0,C1: delivered own value (added it to contestants)
//	CB0:   delivered 0, broadcast both;  CB1 symmetric
//	C01:   delivered both values
//
// Shared variables b0, b1 count the BV messages sent by correct processes;
// the f messages Byzantine processes may contribute are folded into the
// guards (a threshold of t+1 received messages becomes b_v >= t+1-f sent by
// correct processes).
func BVBroadcast() *ta.TA {
	b := ta.NewBuilder("bv-broadcast")
	b0 := b.Shared("b0")
	b1 := b.Shared("b1")

	// Guard thresholds: t+1-f and 2t+1-f.
	tPlus1 := b.Lin(1, ta.LinTerm{Coeff: 1, Sym: b.T()}, ta.LinTerm{Coeff: -1, Sym: b.F()})
	twoTPlus1 := b.Lin(1, ta.LinTerm{Coeff: 2, Sym: b.T()}, ta.LinTerm{Coeff: -1, Sym: b.F()})

	v0 := b.Loc("V0", ta.Initial(), ta.Semantics(nil, nil))
	v1 := b.Loc("V1", ta.Initial(), ta.Semantics(nil, nil))
	b0l := b.Loc("B0", ta.Semantics([]int{0}, nil))
	b1l := b.Loc("B1", ta.Semantics([]int{1}, nil))
	b01 := b.Loc("B01", ta.Semantics([]int{0, 1}, nil))
	c0 := b.Loc("C0", ta.Semantics([]int{0}, []int{0}))
	c1 := b.Loc("C1", ta.Semantics([]int{1}, []int{1}))
	cb0 := b.Loc("CB0", ta.Semantics([]int{0, 1}, []int{0}))
	cb1 := b.Loc("CB1", ta.Semantics([]int{0, 1}, []int{1}))
	c01 := b.Loc("C01", ta.Semantics([]int{0, 1}, []int{0, 1}))

	// r1, r2: initial broadcast of the input value (Fig. 1 line 2).
	b.Rule("r1", v0, b0l, ta.Inc(b0))
	b.Rule("r2", v1, b1l, ta.Inc(b1))
	// r3: deliver 0 after 2t+1 distinct BV(0) (Fig. 1 lines 6-7).
	b.Rule("r3", b0l, c0, ta.Guarded(b.GeThreshold(b0, twoTPlus1)))
	// r4: echo 1 after t+1 distinct BV(1) (Fig. 1 lines 4-5).
	b.Rule("r4", b0l, b01, ta.Guarded(b.GeThreshold(b1, tPlus1)), ta.Inc(b1))
	// r5: echo 0.
	b.Rule("r5", b1l, b01, ta.Guarded(b.GeThreshold(b0, tPlus1)), ta.Inc(b0))
	// r6: deliver 1.
	b.Rule("r6", b1l, c1, ta.Guarded(b.GeThreshold(b1, twoTPlus1)))
	// r7: having delivered 0, echo 1.
	b.Rule("r7", c0, cb0, ta.Guarded(b.GeThreshold(b1, tPlus1)), ta.Inc(b1))
	// r8: from B01 (both echoed), deliver 0 first.
	b.Rule("r8", b01, cb0, ta.Guarded(b.GeThreshold(b0, twoTPlus1)))
	// r9: from B01, deliver 1 first.
	b.Rule("r9", b01, cb1, ta.Guarded(b.GeThreshold(b1, twoTPlus1)))
	// r10: having delivered 1, echo 0.
	b.Rule("r10", c1, cb1, ta.Guarded(b.GeThreshold(b0, tPlus1)), ta.Inc(b0))
	// r11: second delivery 1.
	b.Rule("r11", cb0, c01, ta.Guarded(b.GeThreshold(b1, twoTPlus1)))
	// r12: second delivery 0.
	b.Rule("r12", cb1, c01, ta.Guarded(b.GeThreshold(b0, twoTPlus1)))

	// The 7 self-loops of Fig. 2 model per-process asynchrony: a process may
	// linger in any location it is not forced out of by fairness.
	for _, l := range []ta.LocID{b0l, b1l, c0, c1, cb0, cb1, c01} {
		b.SelfLoop(l)
	}
	return b.MustBuild()
}

// bvLocsWithout returns Locs_v of the paper: every location a correct
// process may occupy while v is not in its contestants set.
func bvLocsWithout(a *ta.TA, v int) (ta.LocSet, error) {
	if v == 0 {
		return a.LocSetByName("V0", "V1", "B0", "B1", "B01", "C1", "CB1")
	}
	return a.LocSetByName("V0", "V1", "B0", "B1", "B01", "C0", "CB0")
}

// bvDelivered returns the set of locations where v has been delivered
// (v ∈ contestants): C_v, CB_v, C01.
func bvDelivered(a *ta.TA, v int) (ta.LocSet, error) {
	if v == 0 {
		return a.LocSetByName("C0", "CB0", "C01")
	}
	return a.LocSetByName("C1", "CB1", "C01")
}

// BVQueries returns the counterexample queries for the four bv-broadcast
// properties of Section 3.2 (both symmetric instances each for
// Justification, Obligation, Uniformity, plus Termination):
//
//	BV-Just_v:  κ[Vv]=0 ⇒ □(κ[Cv]=0 ∧ κ[CBv]=0 ∧ κ[C01]=0)
//	BV-Obl_v:   □(b_v ≥ t+1 ⇒ ◇ all correct left Locs_v)
//	BV-Unif_v:  ◇ v delivered somewhere ⇒ ◇ all correct left Locs_v
//	BV-Term:    ◇ no correct process remains in V0,V1,B0,B1,B01
func BVQueries(a *ta.TA) ([]spec.Query, error) {
	justice := a.DefaultJustice()
	var out []spec.Query
	for v := 0; v <= 1; v++ {
		vLoc, err := a.LocByName(fmt.Sprintf("V%d", v))
		if err != nil {
			return nil, err
		}
		delivered, err := bvDelivered(a, v)
		if err != nil {
			return nil, err
		}
		locsWithout, err := bvLocsWithout(a, v)
		if err != nil {
			return nil, err
		}
		bv, err := a.SharedByName(fmt.Sprintf("b%d", v))
		if err != nil {
			return nil, err
		}
		// b_v >= t+1 : t+1 correct processes bv-broadcast v.
		trigger := expr.Var(bv)
		if err := trigger.AddTerm(a.Params[1], -1); err != nil {
			return nil, err
		}
		if err := trigger.AddConst(-1); err != nil {
			return nil, err
		}

		out = append(out,
			spec.Query{
				Name:          fmt.Sprintf("BV-Just%d", v),
				Kind:          spec.Safety,
				InitEmpty:     []ta.LocID{vLoc},
				VisitNonempty: []ta.LocSet{delivered},
			},
			spec.Query{
				Name:          fmt.Sprintf("BV-Obl%d", v),
				Kind:          spec.Liveness,
				FinalShared:   []expr.Constraint{expr.GEZero(trigger)},
				FinalNonempty: []ta.LocSet{locsWithout},
				Justice:       justice,
			},
			spec.Query{
				Name:          fmt.Sprintf("BV-Unif%d", v),
				Kind:          spec.Liveness,
				VisitNonempty: []ta.LocSet{delivered},
				FinalNonempty: []ta.LocSet{locsWithout},
				Justice:       justice,
			},
		)
	}
	undelivered, err := a.LocSetByName("V0", "V1", "B0", "B1", "B01")
	if err != nil {
		return nil, err
	}
	out = append(out, spec.Query{
		Name:          "BV-Term",
		Kind:          spec.Liveness,
		FinalNonempty: []ta.LocSet{undelivered},
		Justice:       justice,
	})
	for i := range out {
		if err := out[i].Validate(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}
