package models

import (
	"repro/internal/expr"
	"repro/internal/spec"
	"repro/internal/ta"
)

// SimplifiedConsensus builds the simplified threshold automaton of the DBFT
// binary Byzantine consensus (Fig. 4). One traversal models a *superround*:
// an odd round of Algorithm 1 (first, unprimed half — decided value 1)
// followed by an even round (second, primed half — decided value 0). The
// verified bv-broadcast of Fig. 2 is replaced by the gadget locations
// M/M0/M1/M01 whose fairness properties (Appendix F) stand in for the proven
// BV properties.
//
// Locations of the first half (second half is symmetric with an "x" suffix,
// deciding 0 instead of 1):
//
//	V0,V1: start of the round with estimate 0 resp. 1
//	M:     bv-broadcast invoked, contestants still empty
//	M0,M1: contestants = {0} resp. {1}; the aux message was broadcast
//	M01:   contestants = {0,1}
//	E0:    qualifiers = {0}: estimate set to 0
//	E1:    qualifiers = {0,1}: estimate set to the round parity (1)
//	D1:    qualifiers = {1} = parity: decided 1
//
// Shared variables: bvb0/bvb1 count correct processes that bv-broadcast 0/1
// (incremented on entering M), a0/a1 count aux messages sent by correct
// processes for value 0/1.
func SimplifiedConsensus() *ta.TA {
	b := ta.NewBuilder("simplified-consensus")

	bvb0 := b.Shared("bvb0")
	bvb1 := b.Shared("bvb1")
	a0 := b.Shared("a0")
	a1 := b.Shared("a1")
	bvb0x := b.Shared("bvb0x")
	bvb1x := b.Shared("bvb1x")
	a0x := b.Shared("a0x")
	a1x := b.Shared("a1x")

	one := b.Lin(1)
	// n - t - f : aux messages needed from correct processes once the f
	// Byzantine contributions are discounted from the n-t total.
	nMinusTMinusF := b.Lin(0,
		ta.LinTerm{Coeff: 1, Sym: b.N()},
		ta.LinTerm{Coeff: -1, Sym: b.T()},
		ta.LinTerm{Coeff: -1, Sym: b.F()})

	v0 := b.Loc("V0", ta.Initial())
	v1 := b.Loc("V1", ta.Initial())
	m := b.Loc("M")
	m0 := b.Loc("M0")
	m1 := b.Loc("M1")
	m01 := b.Loc("M01")
	e0 := b.Loc("E0")
	e1 := b.Loc("E1")
	d1 := b.Loc("D1")

	v0x := b.Loc("V0x")
	v1x := b.Loc("V1x")
	mx := b.Loc("Mx")
	m0x := b.Loc("M0x")
	m1x := b.Loc("M1x")
	m01x := b.Loc("M01x")
	e0x := b.Loc("E0x")
	e1x := b.Loc("E1x")
	d0 := b.Loc("D0")

	// First (odd) half.
	b.Rule("s1", v0, m, ta.Inc(bvb0))
	b.Rule("s2", v1, m, ta.Inc(bvb1))
	// BV-Justification is baked into the structure: a value can only be
	// delivered first (M -> Mv) if some correct process bv-broadcast it.
	b.Rule("s3", m, m0, ta.Guarded(b.GeThreshold(bvb0, one)), ta.Inc(a0))
	b.Rule("s4", m, m1, ta.Guarded(b.GeThreshold(bvb1, one)), ta.Inc(a1))
	b.Rule("s5", m0, e0, ta.Guarded(b.GeThreshold(a0, nMinusTMinusF)))
	b.Rule("s6", m0, m01, ta.Guarded(b.GeThreshold(bvb1, one)))
	b.Rule("s7", m1, m01, ta.Guarded(b.GeThreshold(bvb0, one)))
	b.Rule("s8", m1, d1, ta.Guarded(b.GeThreshold(a1, nMinusTMinusF)))
	b.Rule("s9", m01, e0, ta.Guarded(b.GeThreshold(a0, nMinusTMinusF)))
	b.Rule("s10", m01, e1, ta.Guarded(b.SumGeThreshold([]expr.Sym{a0, a1}, nMinusTMinusF)))
	b.Rule("s11", m01, d1, ta.Guarded(b.GeThreshold(a1, nMinusTMinusF)))
	// Mid-superround switches into the even half (solid edges, not dotted:
	// they stay within the superround).
	b.Rule("s12", e0, v0x)
	b.Rule("s13", e1, v1x)
	b.Rule("s14", d1, v1x)

	// Second (even) half: identical with primed counters; the parity flips
	// which qualifier set decides (0) and which adopts the parity (0).
	b.Rule("s1x", v0x, mx, ta.Inc(bvb0x))
	b.Rule("s2x", v1x, mx, ta.Inc(bvb1x))
	b.Rule("s3x", mx, m0x, ta.Guarded(b.GeThreshold(bvb0x, one)), ta.Inc(a0x))
	b.Rule("s4x", mx, m1x, ta.Guarded(b.GeThreshold(bvb1x, one)), ta.Inc(a1x))
	b.Rule("s5x", m0x, d0, ta.Guarded(b.GeThreshold(a0x, nMinusTMinusF)))
	b.Rule("s6x", m0x, m01x, ta.Guarded(b.GeThreshold(bvb1x, one)))
	b.Rule("s7x", m1x, m01x, ta.Guarded(b.GeThreshold(bvb0x, one)))
	b.Rule("s8x", m1x, e1x, ta.Guarded(b.GeThreshold(a1x, nMinusTMinusF)))
	b.Rule("s9x", m01x, d0, ta.Guarded(b.GeThreshold(a0x, nMinusTMinusF)))
	b.Rule("s10x", m01x, e0x, ta.Guarded(b.SumGeThreshold([]expr.Sym{a0x, a1x}, nMinusTMinusF)))
	b.Rule("s11x", m01x, e1x, ta.Guarded(b.GeThreshold(a1x, nMinusTMinusF)))

	// Round-switch rules into the next superround (dotted in Fig. 4).
	b.Rule("rsD0", d0, v0, ta.RoundSwitch())
	b.Rule("rsE0x", e0x, v0, ta.RoundSwitch())
	b.Rule("rsE1x", e1x, v1, ta.RoundSwitch())

	// Self-loops (asynchrony); placement is semantically inert, the count
	// matches the 37-rule total of Table 2.
	for _, l := range []ta.LocID{m, m0, m1, m01, mx, m0x, m1x, m01x, d1} {
		b.SelfLoop(l)
	}
	return b.MustBuild()
}

// SimplifiedJustice returns the fairness assumptions of the simplified
// automaton, the Appendix F preconditions: the proven bv-broadcast
// properties expressed as justice requirements on the gadget locations, plus
// the reliable-communication ("business as usual") requirements on the aux
// thresholds and the round-progression locations.
//
// Crucially, the default per-rule justice of the raw bv rules s6/s7 (leave
// M0 when bvb1 >= 1) is NOT assumed — one initial broadcast does not
// guarantee delivery; only the BV-Obligation (threshold t+1) and
// BV-Uniformity (some aux sent) forms are sound, exactly as in the paper.
func SimplifiedJustice(a *ta.TA) ([]ta.Justice, error) {
	tab := a.Table
	mustSym := func(name string) expr.Sym { return tab.Lookup(name) }
	geConst := func(name string, c int64) (expr.Constraint, error) {
		l := expr.Var(mustSym(name))
		if err := l.AddConst(-c); err != nil {
			return expr.Constraint{}, err
		}
		return expr.GEZero(l), nil
	}
	// v >= t+1
	geTPlus1 := func(name string) (expr.Constraint, error) {
		l := expr.Var(mustSym(name))
		if err := l.AddTerm(a.Params[1], -1); err != nil {
			return expr.Constraint{}, err
		}
		if err := l.AddConst(-1); err != nil {
			return expr.Constraint{}, err
		}
		return expr.GEZero(l), nil
	}
	// Σ names >= n-t-f
	geNTF := func(names ...string) (expr.Constraint, error) {
		l := expr.Lin{}
		for _, nm := range names {
			if err := l.AddTerm(mustSym(nm), 1); err != nil {
				return expr.Constraint{}, err
			}
		}
		if err := l.AddTerm(a.Params[0], -1); err != nil {
			return expr.Constraint{}, err
		}
		if err := l.AddTerm(a.Params[1], 1); err != nil {
			return expr.Constraint{}, err
		}
		if err := l.AddTerm(a.Params[2], 1); err != nil {
			return expr.Constraint{}, err
		}
		return expr.GEZero(l), nil
	}

	var out []ta.Justice
	addTrivial := func(name, loc string) error {
		id, err := a.LocByName(loc)
		if err != nil {
			return err
		}
		out = append(out, ta.Justice{Name: name, Loc: id})
		return nil
	}
	addTriggered := func(name, loc string, trig expr.Constraint, terr error) error {
		if terr != nil {
			return terr
		}
		id, err := a.LocByName(loc)
		if err != nil {
			return err
		}
		out = append(out, ta.Justice{Name: name, Trigger: []expr.Constraint{trig}, Loc: id})
		return nil
	}

	for _, half := range []string{"", "x"} {
		// Processes start the round / half.
		if err := addTrivial("start_V0"+half, "V0"+half); err != nil {
			return nil, err
		}
		if err := addTrivial("start_V1"+half, "V1"+half); err != nil {
			return nil, err
		}
		// BV-Termination: contestants eventually nonempty.
		if err := addTrivial("bv_term"+half, "M"+half); err != nil {
			return nil, err
		}
		// BV-Obligation: t+1 correct broadcasts of v force delivery of v.
		c, err := geTPlus1("bvb0" + half)
		if err2 := addTriggered("bv_obl0"+half, "M1"+half, c, err); err2 != nil {
			return nil, err2
		}
		c, err = geTPlus1("bvb1" + half)
		if err2 := addTriggered("bv_obl1"+half, "M0"+half, c, err); err2 != nil {
			return nil, err2
		}
		// BV-Uniformity: one correct delivery of v forces delivery everywhere.
		c, err = geConst("a0"+half, 1)
		if err2 := addTriggered("bv_unif0"+half, "M1"+half, c, err); err2 != nil {
			return nil, err2
		}
		c, err = geConst("a1"+half, 1)
		if err2 := addTriggered("bv_unif1"+half, "M0"+half, c, err); err2 != nil {
			return nil, err2
		}
		// Business as usual: reliable communication on the aux thresholds.
		c, err = geNTF("a0" + half)
		if err2 := addTriggered("aux0"+half, "M0"+half, c, err); err2 != nil {
			return nil, err2
		}
		c, err = geNTF("a1" + half)
		if err2 := addTriggered("aux1"+half, "M1"+half, c, err); err2 != nil {
			return nil, err2
		}
		c, err = geNTF("a0"+half, "a1"+half)
		if err2 := addTriggered("aux01"+half, "M01"+half, c, err); err2 != nil {
			return nil, err2
		}
	}
	// End of the odd half: processes proceed into the even half.
	for _, loc := range []string{"E0", "E1", "D1"} {
		if err := addTrivial("advance_"+loc, loc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SimplifiedQueries returns the counterexample queries of Section 5 for the
// simplified automaton: the safety invariants Inv1/Inv2 (which imply
// Agreement and Validity), the liveness property SRoundTerm, and the
// auxiliary properties Dec and Good from which Theorem 6 derives Termination
// under the bv-fairness assumption.
func SimplifiedQueries(a *ta.TA) ([]spec.Query, error) {
	justice, err := SimplifiedJustice(a)
	if err != nil {
		return nil, err
	}
	set := func(names ...string) ta.LocSet {
		s, serr := a.LocSetByName(names...)
		if serr != nil && err == nil {
			err = serr
		}
		return s
	}
	loc := func(name string) ta.LocID {
		id, lerr := a.LocByName(name)
		if lerr != nil && err == nil {
			err = lerr
		}
		return id
	}

	nonFinal := set(
		"V0", "V1", "M", "M0", "M1", "M01", "E0", "E1", "D1",
		"V0x", "V1x", "Mx", "M0x", "M1x", "M01x",
	)

	queries := []spec.Query{
		{
			// (Inv1_0): ◇κ[D0]≠0 ⇒ □(κ[D1]=0 ∧ κ[E1x]=0)
			Name:          "Inv1_0",
			Kind:          spec.Safety,
			VisitNonempty: []ta.LocSet{set("D0"), set("D1", "E1x")},
		},
		{
			// (Inv1_1): ◇κ[D1]≠0 ⇒ □(κ[D0]=0 ∧ κ[E0x]=0)
			Name:          "Inv1_1",
			Kind:          spec.Safety,
			VisitNonempty: []ta.LocSet{set("D1"), set("D0", "E0x")},
		},
		{
			// (Inv2_0): □κ[V0]=0 ⇒ □(κ[D0]=0 ∧ κ[E0x]=0)
			Name:          "Inv2_0",
			Kind:          spec.Safety,
			InitEmpty:     []ta.LocID{loc("V0")},
			VisitNonempty: []ta.LocSet{set("D0", "E0x")},
		},
		{
			// (Inv2_1): □κ[V1]=0 ⇒ □(κ[D1]=0 ∧ κ[E1x]=0)
			Name:          "Inv2_1",
			Kind:          spec.Safety,
			InitEmpty:     []ta.LocID{loc("V1")},
			VisitNonempty: []ta.LocSet{set("D1", "E1x")},
		},
		{
			// (SRoundTerm): ◇ every correct process reaches D0, E0x or E1x.
			Name:          "SRoundTerm",
			Kind:          spec.Liveness,
			FinalNonempty: []ta.LocSet{nonFinal},
			Justice:       justice,
		},
		{
			// (Dec), first conjunct: □κ[V0]=0 ⇒ □(κ[E0]=0 ∧ κ[E1]=0)
			Name:          "Dec_0",
			Kind:          spec.Safety,
			InitEmpty:     []ta.LocID{loc("V0")},
			VisitNonempty: []ta.LocSet{set("E0", "E1")},
		},
		{
			// (Dec), second conjunct: □κ[V1]=0 ⇒ □(κ[E0x]=0 ∧ κ[E1x]=0)
			Name:          "Dec_1",
			Kind:          spec.Safety,
			InitEmpty:     []ta.LocID{loc("V1")},
			VisitNonempty: []ta.LocSet{set("E0x", "E1x")},
		},
		{
			// (Good), first conjunct: □κ[M0]=0 ⇒ □(κ[D0]=0 ∧ κ[E0x]=0)
			Name:          "Good_0",
			Kind:          spec.Safety,
			GlobalEmpty:   []ta.LocID{loc("M0")},
			VisitNonempty: []ta.LocSet{set("D0", "E0x")},
		},
		{
			// (Good), second conjunct: □κ[M1x]=0 ⇒ □κ[E1x]=0
			Name:          "Good_1",
			Kind:          spec.Safety,
			GlobalEmpty:   []ta.LocID{loc("M1x")},
			VisitNonempty: []ta.LocSet{set("E1x")},
		},
	}
	if err != nil {
		return nil, err
	}
	oneRound := a.OneRound()
	for i := range queries {
		if verr := queries[i].Validate(oneRound); verr != nil {
			return nil, verr
		}
	}
	return queries, nil
}

// Inv1CounterexampleQuery returns the Inv1_0 query with the resilience
// condition relaxed from n > 3t to n > 2t: the regime in which the paper
// reports generating a disagreement counterexample in ~4s (Section 6).
func Inv1CounterexampleQuery(a *ta.TA) (spec.Query, error) {
	queries, err := SimplifiedQueries(a)
	if err != nil {
		return spec.Query{}, err
	}
	var q spec.Query
	for _, cand := range queries {
		if cand.Name == "Inv1_0" {
			q = cand
		}
	}
	q.Name = "Inv1_0-no-resilience"
	n, t, f := a.Params[0], a.Params[1], a.Params[2]
	// n >= 2t+1, t >= f >= 0, t >= 1: Byzantine processes may now reach a
	// third of the system.
	nGe := expr.Var(n)
	if err := nGe.AddTerm(t, -2); err != nil {
		return spec.Query{}, err
	}
	if err := nGe.AddConst(-1); err != nil {
		return spec.Query{}, err
	}
	tGeF := expr.Var(t)
	if err := tGeF.AddTerm(f, -1); err != nil {
		return spec.Query{}, err
	}
	tGe1 := expr.Var(t)
	if err := tGe1.AddConst(-1); err != nil {
		return spec.Query{}, err
	}
	q.RelaxResilience = []expr.Constraint{
		expr.GEZero(nGe),
		expr.GEZero(tGeF),
		expr.GEZero(expr.Var(f)),
		expr.GEZero(tGe1),
	}
	return q, nil
}
