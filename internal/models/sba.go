package models

import (
	"repro/internal/expr"
	"repro/internal/spec"
	"repro/internal/ta"
)

// SBA builds the multi-round threshold automaton of the SBA* binary
// reduction implemented executably in internal/sba (a Turpin–Coan
// adaptation for n > 3t with a rotating round-parity default). One traversal
// models a *superround*: a parity-0 round (first, unprimed half — decide
// value 0) followed by a parity-1 round (second, "x"-suffixed half — decide
// value 1), connected by mid-superround rules; round-switch rules close the
// loop into the next superround.
//
// Locations of the first half (second half is symmetric, deciding 1):
//
//	I0,I1: start of the round with estimate 0 resp. 1
//	W:     step-1 vote broadcast, nothing locked yet
//	L0,L1: first lock on bit 0 resp. 1; the step-2 candidate was broadcast
//	L01:   both bits locked
//	D0:    chosen candidates uniformly 0 = parity: decided 0
//	E1:    chosen candidates uniformly 1: estimate set to 1
//	E01:   chosen candidates mixed: estimate set to the parity (0)
//
// Shared variables: v0/v1 count correct processes whose estimate entering
// the round is 0/1 (their step-1 votes), c0/c1 count step-2 candidates
// broadcast by correct processes for bit 0/1.
//
// The lock guards are justification-only (v_b >= 1): a lock on b needs
// n - t distinct vote senders, hence at least one correct vote of b, and
// tracing echoes back through the t+1 amplification threshold bottoms out
// at a correct process that *started* the round estimating b. The exit
// guards carry the real thresholds: n - t justified candidates minus the f
// the adversary may contribute leaves c >= n - t - f correct ones. Mixed
// exits additionally require both bits locked locally, which is the L01
// location, not a guard.
func SBA() *ta.TA {
	b := ta.NewBuilder("sba-reduction")

	v0 := b.Shared("v0")
	v1 := b.Shared("v1")
	c0 := b.Shared("c0")
	c1 := b.Shared("c1")
	v0x := b.Shared("v0x")
	v1x := b.Shared("v1x")
	c0x := b.Shared("c0x")
	c1x := b.Shared("c1x")

	one := b.Lin(1)
	// n - t - f : candidates needed from correct processes once the f
	// Byzantine contributions are discounted from the n-t exit quorum.
	nMinusTMinusF := b.Lin(0,
		ta.LinTerm{Coeff: 1, Sym: b.N()},
		ta.LinTerm{Coeff: -1, Sym: b.T()},
		ta.LinTerm{Coeff: -1, Sym: b.F()})

	i0 := b.Loc("I0", ta.Initial())
	i1 := b.Loc("I1", ta.Initial())
	w := b.Loc("W")
	l0 := b.Loc("L0")
	l1 := b.Loc("L1")
	l01 := b.Loc("L01")
	d0 := b.Loc("D0")
	e1 := b.Loc("E1")
	e01 := b.Loc("E01")

	i0x := b.Loc("I0x")
	i1x := b.Loc("I1x")
	wx := b.Loc("Wx")
	l0x := b.Loc("L0x")
	l1x := b.Loc("L1x")
	l01x := b.Loc("L01x")
	d1x := b.Loc("D1x")
	e0x := b.Loc("E0x")
	e01x := b.Loc("E01x")

	// First (parity-0) half.
	b.Rule("s1", i0, w, ta.Inc(v0))
	b.Rule("s2", i1, w, ta.Inc(v1))
	// Lock-justification is baked into the structure: a bit can only lock
	// first (W -> Lb, candidate broadcast) if some correct process entered
	// the round estimating it.
	b.Rule("s3", w, l0, ta.Guarded(b.GeThreshold(v0, one)), ta.Inc(c0))
	b.Rule("s4", w, l1, ta.Guarded(b.GeThreshold(v1, one)), ta.Inc(c1))
	b.Rule("s5", l0, l01, ta.Guarded(b.GeThreshold(v1, one)))
	b.Rule("s6", l1, l01, ta.Guarded(b.GeThreshold(v0, one)))
	b.Rule("s7", l0, d0, ta.Guarded(b.GeThreshold(c0, nMinusTMinusF)))
	b.Rule("s8", l1, e1, ta.Guarded(b.GeThreshold(c1, nMinusTMinusF)))
	b.Rule("s9", l01, d0, ta.Guarded(b.GeThreshold(c0, nMinusTMinusF)))
	b.Rule("s10", l01, e1, ta.Guarded(b.GeThreshold(c1, nMinusTMinusF)))
	b.Rule("s11", l01, e01, ta.Guarded(b.SumGeThreshold([]expr.Sym{c0, c1}, nMinusTMinusF)))
	// Mid-superround switches into the parity-1 half (solid edges: they stay
	// within the superround). A mixed exit adopts the parity (0).
	b.Rule("s12", d0, i0x)
	b.Rule("s13", e1, i1x)
	b.Rule("s14", e01, i0x)

	// Second (parity-1) half: identical with primed counters; the parity
	// flips which uniform exit decides (1) and what a mixed exit adopts (1).
	b.Rule("s1x", i0x, wx, ta.Inc(v0x))
	b.Rule("s2x", i1x, wx, ta.Inc(v1x))
	b.Rule("s3x", wx, l0x, ta.Guarded(b.GeThreshold(v0x, one)), ta.Inc(c0x))
	b.Rule("s4x", wx, l1x, ta.Guarded(b.GeThreshold(v1x, one)), ta.Inc(c1x))
	b.Rule("s5x", l0x, l01x, ta.Guarded(b.GeThreshold(v1x, one)))
	b.Rule("s6x", l1x, l01x, ta.Guarded(b.GeThreshold(v0x, one)))
	b.Rule("s7x", l0x, e0x, ta.Guarded(b.GeThreshold(c0x, nMinusTMinusF)))
	b.Rule("s8x", l1x, d1x, ta.Guarded(b.GeThreshold(c1x, nMinusTMinusF)))
	b.Rule("s9x", l01x, e0x, ta.Guarded(b.GeThreshold(c0x, nMinusTMinusF)))
	b.Rule("s10x", l01x, d1x, ta.Guarded(b.GeThreshold(c1x, nMinusTMinusF)))
	b.Rule("s11x", l01x, e01x, ta.Guarded(b.SumGeThreshold([]expr.Sym{c0x, c1x}, nMinusTMinusF)))

	// Round-switch rules into the next superround (dotted edges).
	b.Rule("rsD1x", d1x, i1, ta.RoundSwitch())
	b.Rule("rsE0x", e0x, i0, ta.RoundSwitch())
	b.Rule("rsE01x", e01x, i1, ta.RoundSwitch())

	// Self-loops (asynchrony) on the waiting locations.
	for _, l := range []ta.LocID{w, l0, l1, l01, wx, l0x, l1x, l01x, d0} {
		b.SelfLoop(l)
	}
	return b.MustBuild()
}

// SBAJustice returns the fairness assumptions of the sba automaton — the
// executable protocol's retransmission-backed delivery guarantees expressed
// as justice requirements:
//
//   - start: correct processes eventually vote their estimate.
//   - lock obligation: t+1 correct votes of b trigger the amplification
//     cascade (every correct process echoes b, so n-t distinct senders
//     accumulate) and everyone eventually locks something. Since the
//     correct processes split n-f >= 2t+1 votes over two bits, at least one
//     bit always clears t+1, so W always drains in a fair run.
//   - lock uniformity: one correct first-lock of b (c_b >= 1) means n-t
//     distinct VOTE(b) broadcasts exist, at least t+1 of them from correct
//     processes whose retransmission reaches everyone — so every process
//     eventually locks b too (L_{1-b} drains into L01).
//   - exit: once the correct candidate count clears a threshold, every
//     correct candidate is eventually received and justified (its bit locks
//     everywhere by uniformity), so the n-t exit quorum completes.
//   - advance: exits of the first half eventually enter the second.
func SBAJustice(a *ta.TA) ([]ta.Justice, error) {
	tab := a.Table
	mustSym := func(name string) expr.Sym { return tab.Lookup(name) }
	geConst := func(name string, c int64) (expr.Constraint, error) {
		l := expr.Var(mustSym(name))
		if err := l.AddConst(-c); err != nil {
			return expr.Constraint{}, err
		}
		return expr.GEZero(l), nil
	}
	// v >= t+1
	geTPlus1 := func(name string) (expr.Constraint, error) {
		l := expr.Var(mustSym(name))
		if err := l.AddTerm(a.Params[1], -1); err != nil {
			return expr.Constraint{}, err
		}
		if err := l.AddConst(-1); err != nil {
			return expr.Constraint{}, err
		}
		return expr.GEZero(l), nil
	}
	// Σ names >= n-t-f
	geNTF := func(names ...string) (expr.Constraint, error) {
		l := expr.Lin{}
		for _, nm := range names {
			if err := l.AddTerm(mustSym(nm), 1); err != nil {
				return expr.Constraint{}, err
			}
		}
		if err := l.AddTerm(a.Params[0], -1); err != nil {
			return expr.Constraint{}, err
		}
		if err := l.AddTerm(a.Params[1], 1); err != nil {
			return expr.Constraint{}, err
		}
		if err := l.AddTerm(a.Params[2], 1); err != nil {
			return expr.Constraint{}, err
		}
		return expr.GEZero(l), nil
	}

	var out []ta.Justice
	addTrivial := func(name, loc string) error {
		id, err := a.LocByName(loc)
		if err != nil {
			return err
		}
		out = append(out, ta.Justice{Name: name, Loc: id})
		return nil
	}
	addTriggered := func(name, loc string, trig expr.Constraint, terr error) error {
		if terr != nil {
			return terr
		}
		id, err := a.LocByName(loc)
		if err != nil {
			return err
		}
		out = append(out, ta.Justice{Name: name, Trigger: []expr.Constraint{trig}, Loc: id})
		return nil
	}

	for _, half := range []string{"", "x"} {
		// Processes start the round / half.
		if err := addTrivial("start_I0"+half, "I0"+half); err != nil {
			return nil, err
		}
		if err := addTrivial("start_I1"+half, "I1"+half); err != nil {
			return nil, err
		}
		// Lock obligation: t+1 correct votes of b force everyone to lock.
		c, err := geTPlus1("v0" + half)
		if err2 := addTriggered("lock_obl0"+half, "W"+half, c, err); err2 != nil {
			return nil, err2
		}
		c, err = geTPlus1("v1" + half)
		if err2 := addTriggered("lock_obl1"+half, "W"+half, c, err); err2 != nil {
			return nil, err2
		}
		// Lock uniformity: one correct first-lock of b forces lock of b
		// everywhere.
		c, err = geConst("c0"+half, 1)
		if err2 := addTriggered("lock_unif0"+half, "L1"+half, c, err); err2 != nil {
			return nil, err2
		}
		c, err = geConst("c1"+half, 1)
		if err2 := addTriggered("lock_unif1"+half, "L0"+half, c, err); err2 != nil {
			return nil, err2
		}
		// Exit: enough correct candidates complete the n-t exit quorum.
		c, err = geNTF("c0" + half)
		if err2 := addTriggered("exit0"+half, "L0"+half, c, err); err2 != nil {
			return nil, err2
		}
		c, err = geNTF("c1" + half)
		if err2 := addTriggered("exit1"+half, "L1"+half, c, err); err2 != nil {
			return nil, err2
		}
		c, err = geNTF("c0"+half, "c1"+half)
		if err2 := addTriggered("exit01"+half, "L01"+half, c, err); err2 != nil {
			return nil, err2
		}
	}
	// End of the parity-0 half: processes proceed into the parity-1 half.
	for _, loc := range []string{"D0", "E1", "E01"} {
		if err := addTrivial("advance_"+loc, loc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SBAQueries returns the counterexample queries for the sba automaton: the
// safety invariants Inv1 (agreement on the reduced bit — both decide
// locations and the opposite uniform exits are mutually unreachable), Inv2
// (strong validity — a bit nobody proposed is never decided or adopted),
// the lock-justification properties Lock0/Lock1, and the liveness property
// SBARoundTerm (every correct process finishes the superround under the
// justice assumptions).
func SBAQueries(a *ta.TA) ([]spec.Query, error) {
	justice, err := SBAJustice(a)
	if err != nil {
		return nil, err
	}
	set := func(names ...string) ta.LocSet {
		s, serr := a.LocSetByName(names...)
		if serr != nil && err == nil {
			err = serr
		}
		return s
	}
	loc := func(name string) ta.LocID {
		id, lerr := a.LocByName(name)
		if lerr != nil && err == nil {
			err = lerr
		}
		return id
	}

	nonFinal := set(
		"I0", "I1", "W", "L0", "L1", "L01", "D0", "E1", "E01",
		"I0x", "I1x", "Wx", "L0x", "L1x", "L01x",
	)

	queries := []spec.Query{
		{
			// (Inv1_0): ◇κ[D0]≠0 ⇒ □(κ[D1x]=0 ∧ κ[E1]=0)
			Name:          "Inv1_0",
			Kind:          spec.Safety,
			VisitNonempty: []ta.LocSet{set("D0"), set("D1x", "E1")},
		},
		{
			// (Inv1_1): ◇κ[D1x]≠0 ⇒ □(κ[D0]=0 ∧ κ[E0x]=0)
			Name:          "Inv1_1",
			Kind:          spec.Safety,
			VisitNonempty: []ta.LocSet{set("D1x"), set("D0", "E0x")},
		},
		{
			// (Inv2_0): □κ[I1]=0 ⇒ □(κ[D1x]=0 ∧ κ[E1]=0)
			Name:          "Inv2_0",
			Kind:          spec.Safety,
			InitEmpty:     []ta.LocID{loc("I1")},
			VisitNonempty: []ta.LocSet{set("D1x", "E1")},
		},
		{
			// (Inv2_1): □κ[I0]=0 ⇒ □(κ[D0]=0 ∧ κ[E0x]=0)
			Name:          "Inv2_1",
			Kind:          spec.Safety,
			InitEmpty:     []ta.LocID{loc("I0")},
			VisitNonempty: []ta.LocSet{set("D0", "E0x")},
		},
		{
			// (Lock_0): □κ[I0]=0 ⇒ □ no correct process ever locks 0.
			Name:          "Lock_0",
			Kind:          spec.Safety,
			InitEmpty:     []ta.LocID{loc("I0")},
			VisitNonempty: []ta.LocSet{set("L0", "L01", "L0x", "L01x")},
		},
		{
			// (Lock_1): □κ[I1]=0 ⇒ □ no correct process ever locks 1.
			Name:          "Lock_1",
			Kind:          spec.Safety,
			InitEmpty:     []ta.LocID{loc("I1")},
			VisitNonempty: []ta.LocSet{set("L1", "L01", "L1x", "L01x")},
		},
		{
			// (SBARoundTerm): ◇ every correct process reaches D1x, E0x or
			// E01x — the end of the superround.
			Name:          "SBARoundTerm",
			Kind:          spec.Liveness,
			FinalNonempty: []ta.LocSet{nonFinal},
			Justice:       justice,
		},
		{
			// (Quiet_0): □κ[L1]=0 ∧ □κ[L01]=0 ⇒ □κ[E1]=0 — a round in which
			// no correct process ever locks 1 cannot make a correct process
			// adopt 1. The GlobalEmpty form prunes the rule set, keeping this
			// lemma tractable for full schema enumeration (the incremental
			// prefix-sharing path), like simplified's Good queries.
			Name:          "Quiet_0",
			Kind:          spec.Safety,
			GlobalEmpty:   []ta.LocID{loc("L1"), loc("L01")},
			VisitNonempty: []ta.LocSet{set("E1")},
		},
		{
			// (Quiet_1): the parity-1 mirror — no lock of 0 in the second
			// half means no correct process leaves it estimating 0.
			Name:          "Quiet_1",
			Kind:          spec.Safety,
			GlobalEmpty:   []ta.LocID{loc("L0x"), loc("L01x")},
			VisitNonempty: []ta.LocSet{set("E0x")},
		},
	}
	if err != nil {
		return nil, err
	}
	oneRound := a.OneRound()
	for i := range queries {
		if verr := queries[i].Validate(oneRound); verr != nil {
			return nil, verr
		}
	}
	return queries, nil
}
