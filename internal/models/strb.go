package models

import (
	"repro/internal/spec"
	"repro/internal/ta"
)

// STReliableBroadcast builds the threshold automaton of the classic
// Srikanth-Toueg authenticated/reliable broadcast — the original benchmark
// of threshold-automata verification (John, Konnov, Schmid, Veith, Widder,
// SPIN'13; reference [33] of the paper) and an ancestor of both the
// bv-broadcast and the Bracha broadcast this repository implements
// executably (internal/rbc).
//
// Locations: a correct process starts in V1 (it received the broadcaster's
// INIT message) or V0 (it did not); SE = it has sent its ECHO; AC = it has
// accepted. The shared variable e counts ECHO messages sent by correct
// processes; the Byzantine contribution f is folded into the guards as
// usual:
//
//	V1 -> SE: true, e++            (echo upon INIT)
//	V0 -> SE: e >= t+1-f, e++      (echo upon t+1 distinct echoes)
//	SE -> AC: e >= 2t+1-f          (accept upon 2t+1 distinct echoes)
//
// The three properties are the classic ones: Unforgeability (nobody accepts
// if nobody got the INIT), Correctness (if everybody got the INIT,
// everybody accepts) and Relay (if somebody accepts, everybody accepts).
func STReliableBroadcast() *ta.TA {
	b := ta.NewBuilder("st-reliable-broadcast")
	e := b.Shared("e")

	tPlus1 := b.Lin(1, ta.LinTerm{Coeff: 1, Sym: b.T()}, ta.LinTerm{Coeff: -1, Sym: b.F()})
	twoTPlus1 := b.Lin(1, ta.LinTerm{Coeff: 2, Sym: b.T()}, ta.LinTerm{Coeff: -1, Sym: b.F()})

	v0 := b.Loc("V0", ta.Initial())
	v1 := b.Loc("V1", ta.Initial())
	se := b.Loc("SE")
	ac := b.Loc("AC")

	b.Rule("r1", v1, se, ta.Inc(e))
	b.Rule("r2", v0, se, ta.Guarded(b.GeThreshold(e, tPlus1)), ta.Inc(e))
	b.Rule("r3", se, ac, ta.Guarded(b.GeThreshold(e, twoTPlus1)))
	b.SelfLoop(se)
	b.SelfLoop(ac)
	return b.MustBuild()
}

// STRBQueries returns the counterexample queries for the three reliable
// broadcast properties.
func STRBQueries(a *ta.TA) ([]spec.Query, error) {
	justice := a.DefaultJustice()
	var err error
	set := func(names ...string) ta.LocSet {
		s, serr := a.LocSetByName(names...)
		if serr != nil && err == nil {
			err = serr
		}
		return s
	}
	loc := func(name string) ta.LocID {
		id, lerr := a.LocByName(name)
		if lerr != nil && err == nil {
			err = lerr
		}
		return id
	}
	queries := []spec.Query{
		{
			// Unforgeability: [](locV1 == 0) -> [](locAC == 0).
			Name:          "Unforgeability",
			Kind:          spec.Safety,
			InitEmpty:     []ta.LocID{loc("V1")},
			VisitNonempty: []ta.LocSet{set("AC")},
		},
		{
			// Correctness: [](locV0 == 0) -> <> all correct accepted.
			Name:          "Correctness",
			Kind:          spec.Liveness,
			InitEmpty:     []ta.LocID{loc("V0")},
			FinalNonempty: []ta.LocSet{set("V0", "V1", "SE")},
			Justice:       justice,
		},
		{
			// Relay: <>(locAC != 0) -> <> all correct accepted.
			Name:          "Relay",
			Kind:          spec.Liveness,
			VisitNonempty: []ta.LocSet{set("AC")},
			FinalNonempty: []ta.LocSet{set("V0", "V1", "SE")},
			Justice:       justice,
		},
	}
	if err != nil {
		return nil, err
	}
	for i := range queries {
		if verr := queries[i].Validate(a); verr != nil {
			return nil, verr
		}
	}
	return queries, nil
}
