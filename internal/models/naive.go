package models

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/spec"
	"repro/internal/ta"
)

// NaiveConsensus builds the naive threshold automaton of Algorithm 1
// (Fig. 3, with the rule table of Appendix D / Table 3): the full DBFT
// binary consensus with the bv-broadcast automaton of Fig. 2 embedded twice,
// once per round of the superround. This is the automaton that is too large
// for parameterized model checking — Table 2 reports that none of its
// properties could be verified within a day, even on 64 cores.
//
// The first (odd) half uses shared variables b0,b1 (BV echoes) and a0,a1
// (aux messages); the second (even) half uses the primed b0x..a1x. Entering
// a first-delivery location additionally broadcasts the corresponding aux
// message (a_v++), per line 8 of Algorithm 1 and Table 3.
func NaiveConsensus() *ta.TA {
	b := ta.NewBuilder("naive-consensus")

	tPlus1 := b.Lin(1, ta.LinTerm{Coeff: 1, Sym: b.T()}, ta.LinTerm{Coeff: -1, Sym: b.F()})
	twoTPlus1 := b.Lin(1, ta.LinTerm{Coeff: 2, Sym: b.T()}, ta.LinTerm{Coeff: -1, Sym: b.F()})
	nMinusTMinusF := b.Lin(0,
		ta.LinTerm{Coeff: 1, Sym: b.N()},
		ta.LinTerm{Coeff: -1, Sym: b.T()},
		ta.LinTerm{Coeff: -1, Sym: b.F()})

	// half holds the bv-broadcast locations of one round of the superround.
	type half struct {
		suffix                string
		v0, v1, b0l, b1l, b01 ta.LocID
		c0, c1, cb0, cb1, c01 ta.LocID
	}
	buildLocs := func(suffix string, initial bool) half {
		h := half{suffix: suffix}
		var opts []ta.LocOpt
		if initial {
			opts = append(opts, ta.Initial())
		}
		h.v0 = b.Loc("V0"+suffix, opts...)
		h.v1 = b.Loc("V1"+suffix, opts...)
		h.b0l = b.Loc("B0" + suffix)
		h.b1l = b.Loc("B1" + suffix)
		h.b01 = b.Loc("B01" + suffix)
		h.c0 = b.Loc("C0" + suffix)
		h.c1 = b.Loc("C1" + suffix)
		h.cb0 = b.Loc("CB0" + suffix)
		h.cb1 = b.Loc("CB1" + suffix)
		h.c01 = b.Loc("C01" + suffix)
		return h
	}

	first := buildLocs("", true)
	second := buildLocs("x", false)

	// Outcome locations. Odd half (round parity 1): qualifiers {0} -> E0
	// (estimate 0), {1} -> D1 (decide 1), {0,1} -> E1 (estimate = parity).
	// Even half (parity 0): {0} -> D0 (decide 0), {1} -> E1x, {0,1} -> E0x.
	e0 := b.Loc("E0")
	e1 := b.Loc("E1")
	d1 := b.Loc("D1")
	e0x := b.Loc("E0x")
	e1x := b.Loc("E1x")
	d0 := b.Loc("D0")

	// wireHalf adds the 19 non-switch rules of one half (Table 3), sending
	// singleton-zero qualifiers to qZero, singleton-one to qOne and mixed
	// qualifiers to qMix.
	wireHalf := func(h half, qZero, qOne, qMix ta.LocID) {
		s := h.suffix
		b0v := b.Shared("b0" + s)
		b1v := b.Shared("b1" + s)
		a0v := b.Shared("a0" + s)
		a1v := b.Shared("a1" + s)
		rn := func(i int) string { return fmt.Sprintf("r%d%s", i, s) }

		// Embedded bv-broadcast (dashed in Fig. 3).
		b.Rule(rn(1), h.v0, h.b0l, ta.Inc(b0v))
		b.Rule(rn(2), h.v1, h.b1l, ta.Inc(b1v))
		b.Rule(rn(3), h.b0l, h.c0, ta.Guarded(b.GeThreshold(b0v, twoTPlus1)), ta.Inc(a0v))
		b.Rule(rn(4), h.b0l, h.b01, ta.Guarded(b.GeThreshold(b1v, tPlus1)), ta.Inc(b1v))
		b.Rule(rn(5), h.b1l, h.b01, ta.Guarded(b.GeThreshold(b0v, tPlus1)), ta.Inc(b0v))
		b.Rule(rn(6), h.b1l, h.c1, ta.Guarded(b.GeThreshold(b1v, twoTPlus1)), ta.Inc(a1v))
		b.Rule(rn(8), h.c0, h.cb0, ta.Guarded(b.GeThreshold(b1v, tPlus1)), ta.Inc(b1v))
		b.Rule(rn(9), h.b01, h.cb1, ta.Guarded(b.GeThreshold(b1v, twoTPlus1)), ta.Inc(a1v))
		b.Rule(rn(10), h.b01, h.cb0, ta.Guarded(b.GeThreshold(b0v, twoTPlus1)), ta.Inc(a0v))
		b.Rule(rn(11), h.c1, h.cb1, ta.Guarded(b.GeThreshold(b0v, tPlus1)), ta.Inc(b0v))
		b.Rule(rn(12), h.cb0, h.c01, ta.Guarded(b.GeThreshold(b1v, twoTPlus1)))
		b.Rule(rn(13), h.cb1, h.c01, ta.Guarded(b.GeThreshold(b0v, twoTPlus1)))

		// Decision layer (solid in Fig. 3): wait for n-t aux messages whose
		// values all lie in contestants (line 9 of Algorithm 1).
		auxZero := b.GeThreshold(a0v, nMinusTMinusF)
		auxOne := b.GeThreshold(a1v, nMinusTMinusF)
		auxMix := b.SumGeThreshold([]expr.Sym{a0v, a1v}, nMinusTMinusF)
		b.Rule(rn(14), h.c0, qZero, ta.Guarded(auxZero))
		b.Rule(rn(15), h.cb0, qZero, ta.Guarded(auxZero))
		b.Rule(rn(16), h.c01, qZero, ta.Guarded(auxZero))
		b.Rule(rn(7), h.c1, qOne, ta.Guarded(auxOne))
		b.Rule(rn(18), h.cb1, qOne, ta.Guarded(auxOne))
		b.Rule(rn(19), h.c01, qOne, ta.Guarded(auxOne))
		b.Rule(rn(17), h.c01, qMix, ta.Guarded(auxMix))
	}

	wireHalf(first, e0, d1, e1)
	wireHalf(second, d0, e1x, e0x)

	// Transitions from the odd half into the even half (r20-r22 of Fig. 3).
	b.Rule("r20", e0, second.v0)
	b.Rule("r21", e1, second.v1)
	b.Rule("r22", d1, second.v1)

	// Dotted round-switch rules into the next superround.
	b.Rule("rsD0", d0, first.v0, ta.RoundSwitch())
	b.Rule("rsE0x", e0x, first.v0, ta.RoundSwitch())
	b.Rule("rsE1x", e1x, first.v1, ta.RoundSwitch())

	return b.MustBuild()
}

// NaiveQueries returns the Table 2 properties for the naive automaton:
// Inv1_0, Inv2_0 and SRoundTerm. Because the bv-broadcast structure is
// explicit here, the plain reliable-communication justice (DefaultJustice)
// is the appropriate fairness assumption for the liveness property.
func NaiveQueries(a *ta.TA) ([]spec.Query, error) {
	oneRound := a.OneRound()
	var err error
	set := func(names ...string) ta.LocSet {
		s, serr := a.LocSetByName(names...)
		if serr != nil && err == nil {
			err = serr
		}
		return s
	}
	loc := func(name string) ta.LocID {
		id, lerr := a.LocByName(name)
		if lerr != nil && err == nil {
			err = lerr
		}
		return id
	}

	nonFinal := make(ta.LocSet, len(a.Locations))
	for i, l := range a.Locations {
		if l.Name != "D0" && l.Name != "E0x" && l.Name != "E1x" {
			nonFinal[ta.LocID(i)] = true
		}
	}

	queries := []spec.Query{
		{
			Name:          "Inv1_0",
			Kind:          spec.Safety,
			VisitNonempty: []ta.LocSet{set("D0"), set("D1", "E1x")},
		},
		{
			Name:          "Inv2_0",
			Kind:          spec.Safety,
			InitEmpty:     []ta.LocID{loc("V0")},
			VisitNonempty: []ta.LocSet{set("D0", "E0x")},
		},
		{
			Name:          "SRoundTerm",
			Kind:          spec.Liveness,
			FinalNonempty: []ta.LocSet{nonFinal},
			Justice:       oneRound.DefaultJustice(),
		},
	}
	if err != nil {
		return nil, err
	}
	for i := range queries {
		if verr := queries[i].Validate(oneRound); verr != nil {
			return nil, verr
		}
	}
	return queries, nil
}
