package models

import (
	"repro/internal/expr"
	"repro/internal/spec"
	"repro/internal/ta"
)

// Bosco builds a threshold automaton for BOSCO, the one-step Byzantine
// asynchronous consensus of Song and van Renesse (DISC'08) — reference [63]
// of the paper and a standard benchmark of parameterized TA verification.
// Each process broadcasts its vote, waits for n-t VOTE messages and then:
//
//   - decides v if more than (n+3t)/2 of the received votes are v;
//   - otherwise adopts v for the underlying consensus if more than (n-t)/2
//     of them are v;
//   - otherwise keeps its own value (location UU).
//
// The adversary chooses which n-t of the available messages arrive, so the
// automaton's guards are the *possibility* conditions for each outcome,
// derived by quantifier elimination over the received counts cnt0, cnt1
// (cnt0 + cnt1 = n-t, cnt_v <= x_v + f, with x_v the votes sent by correct
// processes):
//
//	decide 0:  2(x0+f) >= n+3t+1   ∧  2(n-t) >= n+3t+1 (param: n > 5t)
//	adopt 0:   2(x0+f) >= n-t+1    ∧  2(x1+f) >= n-5t   (sample cannot
//	           avoid being a decide-0 sample otherwise — this conjunct is
//	           the branch priority of the algorithm: adopt fires only when
//	           some sample adopts WITHOUT satisfying the decide threshold)
//	keep own:  2(x_v+f) >= n-t for both v
//
// all conjoined with availability x0 + x1 + f >= n-t.
//
// The classic results become checkable queries (BoscoQueries):
// one-step lemma/agreement under n > 3t; weakly one-step termination in one
// communication step under n > 5t when f = 0 and inputs are unanimous;
// strongly one-step under n > 7t with any f <= t; and the gap in between,
// where the checker produces the adopt-instead-of-decide counterexample.
func Bosco() *ta.TA {
	b := ta.NewBuilder("bosco")
	x0 := b.Shared("x0")
	x1 := b.Shared("x1")
	n, t, f := b.N(), b.T(), b.F()

	v0 := b.Loc("V0", ta.Initial())
	v1 := b.Loc("V1", ta.Initial())
	s0 := b.Loc("S0")
	s1 := b.Loc("S1")
	d0 := b.Loc("D0")
	d1 := b.Loc("D1")
	u0 := b.Loc("U0")
	u1 := b.Loc("U1")
	uu := b.Loc("UU")

	// 2*x_v + [params] >= 0 builders.
	guard := func(xv expr.Sym, xCoeff int64, terms ...ta.LinTerm) expr.Constraint {
		l := expr.Term(xv, xCoeff)
		for _, tm := range terms {
			_ = l.AddTerm(tm.Sym, tm.Coeff)
		}
		return expr.GEZero(l)
	}
	addConst := func(c expr.Constraint, k int64) expr.Constraint {
		out := c.Clone()
		_ = out.L.AddConst(k)
		return out
	}

	// Availability: x0 + x1 >= n - t - f.
	avail := b.SumGeThreshold([]expr.Sym{x0, x1}, b.Lin(0,
		ta.LinTerm{Coeff: 1, Sym: n}, ta.LinTerm{Coeff: -1, Sym: t}, ta.LinTerm{Coeff: -1, Sym: f}))
	// Param-only: one-step decisions need a sample large enough,
	// 2(n-t) >= n+3t+1, i.e. n - 5t - 1 >= 0.
	sampleBigEnough := expr.GEZero(func() expr.Lin {
		l := expr.Var(n)
		_ = l.AddTerm(t, -5)
		_ = l.AddConst(-1)
		return l
	}())

	// decide v: 2x_v >= n+3t+1-2f.
	decide := func(xv expr.Sym) expr.Constraint {
		return addConst(guard(xv, 2,
			ta.LinTerm{Coeff: -1, Sym: n}, ta.LinTerm{Coeff: -3, Sym: t}, ta.LinTerm{Coeff: 2, Sym: f}), -1)
	}
	// adopt v threshold: 2x_v >= n-t+1-2f.
	adopt := func(xv expr.Sym) expr.Constraint {
		return addConst(guard(xv, 2,
			ta.LinTerm{Coeff: -1, Sym: n}, ta.LinTerm{Coeff: 1, Sym: t}, ta.LinTerm{Coeff: 2, Sym: f}), -1)
	}
	// priority conjunct for adopting v: the other value must be present
	// enough that some sample misses the decide-v threshold,
	// 2x_{1-v} >= n-5t-2f.
	spoiler := func(xOther expr.Sym) expr.Constraint {
		return guard(xOther, 2,
			ta.LinTerm{Coeff: -1, Sym: n}, ta.LinTerm{Coeff: 5, Sym: t}, ta.LinTerm{Coeff: 2, Sym: f})
	}
	// keep-own: both values fill half a sample, 2x_v >= n-t-2f.
	half := func(xv expr.Sym) expr.Constraint {
		return guard(xv, 2,
			ta.LinTerm{Coeff: -1, Sym: n}, ta.LinTerm{Coeff: 1, Sym: t}, ta.LinTerm{Coeff: 2, Sym: f})
	}

	b.Rule("i0", v0, s0, ta.Inc(x0))
	b.Rule("i1", v1, s1, ta.Inc(x1))
	for _, src := range []struct {
		loc  ta.LocID
		name string
	}{{s0, "0"}, {s1, "1"}} {
		b.Rule("d0_"+src.name, src.loc, d0, ta.Guarded(decide(x0), sampleBigEnough, avail))
		b.Rule("d1_"+src.name, src.loc, d1, ta.Guarded(decide(x1), sampleBigEnough, avail))
		b.Rule("a0_"+src.name, src.loc, u0, ta.Guarded(adopt(x0), spoiler(x1), avail))
		b.Rule("a1_"+src.name, src.loc, u1, ta.Guarded(adopt(x1), spoiler(x0), avail))
		b.Rule("uu_"+src.name, src.loc, uu, ta.Guarded(half(x0), half(x1), avail))
	}
	for _, l := range []ta.LocID{d0, d1, u0, u1, uu} {
		b.SelfLoop(l)
	}
	return b.MustBuild()
}

// BoscoQueries returns the checkable forms of BOSCO's classic results.
func BoscoQueries(a *ta.TA) ([]spec.Query, error) {
	var err error
	set := func(names ...string) ta.LocSet {
		s, serr := a.LocSetByName(names...)
		if serr != nil && err == nil {
			err = serr
		}
		return s
	}
	loc := func(name string) ta.LocID {
		id, lerr := a.LocByName(name)
		if lerr != nil && err == nil {
			err = lerr
		}
		return id
	}
	n, t, f := a.Params[0], a.Params[1], a.Params[2]
	resWith := func(extra int64, pinFZero bool) []expr.Constraint {
		// n >= extra*t + 1, t >= f >= 0, t >= 1 (+ optionally f == 0).
		nGe := expr.Var(n)
		_ = nGe.AddTerm(t, -extra)
		_ = nGe.AddConst(-1)
		tGeF := expr.Var(t)
		_ = tGeF.AddTerm(f, -1)
		tGe1 := expr.Var(t)
		_ = tGe1.AddConst(-1)
		out := []expr.Constraint{
			expr.GEZero(nGe), expr.GEZero(tGeF), expr.GEZero(expr.Var(f)), expr.GEZero(tGe1),
		}
		if pinFZero {
			out = append(out, expr.EQZero(expr.Var(f)))
		}
		return out
	}
	notD0 := set("V0", "V1", "S0", "S1", "D1", "U0", "U1", "UU")

	queries := []spec.Query{
		{
			// BOSCO Lemma 1 (n > 3t): a one-step decision for 0 forces every
			// other correct process to decide 0 or adopt 0.
			Name:          "Lemma1_0",
			Kind:          spec.Safety,
			VisitNonempty: []ta.LocSet{set("D0"), set("D1", "U1", "UU")},
		},
		{
			Name:          "Lemma1_1",
			Kind:          spec.Safety,
			VisitNonempty: []ta.LocSet{set("D1"), set("D0", "U0", "UU")},
		},
		{
			// Weakly one-step (n > 5t, f = 0): unanimous correct inputs
			// decide in one communication step.
			Name:            "WeaklyOneStep",
			Kind:            spec.Liveness,
			InitEmpty:       []ta.LocID{loc("V1")},
			FinalNonempty:   []ta.LocSet{notD0},
			Justice:         a.DefaultJustice(),
			RelaxResilience: resWith(5, true),
		},
		{
			// Strongly one-step (n > 7t): unanimous correct inputs decide in
			// one step regardless of the f <= t Byzantine votes.
			Name:            "StronglyOneStep",
			Kind:            spec.Liveness,
			InitEmpty:       []ta.LocID{loc("V1")},
			FinalNonempty:   []ta.LocSet{notD0},
			Justice:         a.DefaultJustice(),
			RelaxResilience: resWith(7, false),
		},
		{
			// The gap: with only n > 5t and real faults, Byzantine votes can
			// push a correct process into adopting instead of deciding —
			// the checker must produce this counterexample.
			Name:            "OneStepGap",
			Kind:            spec.Liveness,
			InitEmpty:       []ta.LocID{loc("V1")},
			FinalNonempty:   []ta.LocSet{notD0},
			Justice:         a.DefaultJustice(),
			RelaxResilience: resWith(5, false),
		},
	}
	if err != nil {
		return nil, err
	}
	for i := range queries {
		if verr := queries[i].Validate(a); verr != nil {
			return nil, verr
		}
	}
	return queries, nil
}
