package models

import (
	"testing"

	"repro/internal/spec"
)

func TestSTRBStructure(t *testing.T) {
	a := STReliableBroadcast()
	size := a.Size()
	if size.Locations != 4 || size.UniqueGuards != 2 {
		t.Errorf("size = %+v, want 4 locations / 2 guards", size)
	}
	if len(a.InitialLocs()) != 2 {
		t.Errorf("initial locations = %v", a.InitialLocs())
	}
	qs, err := STRBQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Errorf("queries = %d, want 3", len(qs))
	}
}

// TestSTRBPropertiesExplicitSmall: ground truth by exhaustive enumeration.
func TestSTRBPropertiesExplicitSmall(t *testing.T) {
	a := STReliableBroadcast()
	qs, err := STRBQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, params := range [][3]int64{{4, 1, 1}, {4, 1, 0}, {7, 2, 2}} {
		for _, q := range qs {
			if got := explicitCheck(t, a, q, params[0], params[1], params[2]); got != spec.Holds {
				t.Errorf("n=%d t=%d f=%d: %s = %v, want holds", params[0], params[1], params[2], q.Name, got)
			}
		}
	}
}
