package models

import (
	"testing"

	"repro/internal/spec"
)

func TestBoscoStructure(t *testing.T) {
	a := Bosco()
	size := a.Size()
	if size.Locations != 9 {
		t.Errorf("locations = %d, want 9", size.Locations)
	}
	// 2 init rules + 2x5 outcome rules + 5 self-loops.
	if size.Rules != 17 {
		t.Errorf("rules = %d, want 17", size.Rules)
	}
	qs, err := BoscoQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 5 {
		t.Errorf("queries = %d, want 5", len(qs))
	}
}

// TestBoscoLemma1ExplicitSmall: ground truth for the safety lemma.
func TestBoscoLemma1ExplicitSmall(t *testing.T) {
	a := Bosco()
	qs, err := BoscoQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Kind != spec.Safety {
			continue
		}
		for _, params := range [][3]int64{{4, 1, 1}, {6, 1, 1}, {8, 1, 1}} {
			if got := explicitCheck(t, a, q, params[0], params[1], params[2]); got != spec.Holds {
				t.Errorf("n=%d t=%d f=%d: %s = %v, want holds", params[0], params[1], params[2], q.Name, got)
			}
		}
	}
}
