package models

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

// TestSBAStructure checks the superround shape: two symmetric 9-location
// halves, with the three round-switch rules closing the parity-1 exits back
// into the parity-0 initial locations.
func TestSBAStructure(t *testing.T) {
	a := SBA()
	size := a.Size()
	if size.Locations != 18 {
		t.Errorf("locations = %d, want 18", size.Locations)
	}
	switches := 0
	for _, r := range a.Rules {
		if r.RoundSwitch {
			switches++
			name := a.Locations[r.To].Name
			if name != "I0" && name != "I1" {
				t.Errorf("round switch %s targets %s", r.Name, name)
			}
		}
	}
	if switches != 3 {
		t.Errorf("round-switch rules = %d, want 3 (from D1x, E0x, E01x)", switches)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

// TestSBAJusticeShape: 9 requirements per half (start x2, lock obligation x2,
// lock uniformity x2, exit x3) plus 3 advance requirements on the mid-round
// exits.
func TestSBAJusticeShape(t *testing.T) {
	a := SBA()
	js, err := SBAJustice(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 21 {
		t.Errorf("justice requirements = %d, want 21", len(js))
	}
	names := make(map[string]bool, len(js))
	for _, j := range js {
		names[j.Name] = true
	}
	for _, want := range []string{
		"start_I0", "lock_obl0", "lock_obl1x", "lock_unif0", "lock_unif1x",
		"exit0", "exit01x", "advance_D0", "advance_E01",
	} {
		if !names[want] {
			t.Errorf("missing justice requirement %s", want)
		}
	}
}

// TestSBAQueriesValidate: the query set builds and validates against the
// one-round automaton.
func TestSBAQueriesValidate(t *testing.T) {
	a := SBA()
	qs, err := SBAQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 9 {
		t.Errorf("sba queries = %d, want 9", len(qs))
	}
	safety, liveness := 0, 0
	for _, q := range qs {
		switch q.Kind {
		case spec.Safety:
			safety++
		case spec.Liveness:
			liveness++
		}
	}
	if safety != 8 || liveness != 1 {
		t.Errorf("kinds = %d safety / %d liveness, want 8/1", safety, liveness)
	}
}

// TestSBAPropertiesExplicitSmall verifies every sba property by exhaustive
// state enumeration for small parameter instances — the ground truth the
// parameterized (SMT) verification must agree with.
func TestSBAPropertiesExplicitSmall(t *testing.T) {
	a := SBA()
	qs, err := SBAQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, params := range [][3]int64{{4, 1, 1}, {4, 1, 0}} {
		for _, q := range qs {
			if got := explicitCheck(t, a, q, params[0], params[1], params[2]); got != spec.Holds {
				t.Errorf("n=%d t=%d f=%d: %s = %v, want holds", params[0], params[1], params[2], q.Name, got)
			}
		}
	}
}

// TestSBARendersDOT: the automaton renders for documentation tooling.
func TestSBARendersDOT(t *testing.T) {
	var sb strings.Builder
	if err := SBA().WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "L01x") {
		t.Error("DOT output does not mention L01x")
	}
}
