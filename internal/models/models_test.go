package models

import (
	"strings"
	"testing"

	"repro/internal/counter"
	"repro/internal/spec"
	"repro/internal/ta"
)

// TestBVBroadcastStructure checks the Fig. 2 / Table 2 shape: 10 locations,
// 19 rules (12 progress + 7 self-loops), 4 unique guards.
func TestBVBroadcastStructure(t *testing.T) {
	a := BVBroadcast()
	size := a.Size()
	if size.Locations != 10 {
		t.Errorf("locations = %d, want 10", size.Locations)
	}
	if size.Rules != 19 {
		t.Errorf("rules = %d, want 19", size.Rules)
	}
	if size.UniqueGuards != 4 {
		t.Errorf("unique guards = %d, want 4", size.UniqueGuards)
	}
	if got := a.NumSelfLoops(); got != 7 {
		t.Errorf("self-loops = %d, want 7", got)
	}
	init := a.InitialLocs()
	if len(init) != 2 {
		t.Errorf("initial locations = %d, want V0 and V1", len(init))
	}
}

// TestTable1LocationSemantics reproduces Table 1: the broadcast/delivered
// values attached to each location of the bv-broadcast automaton.
func TestTable1LocationSemantics(t *testing.T) {
	a := BVBroadcast()
	want := map[string]struct{ broadcast, delivered []int }{
		"V0":  {nil, nil},
		"V1":  {nil, nil},
		"B0":  {[]int{0}, nil},
		"B1":  {[]int{1}, nil},
		"B01": {[]int{0, 1}, nil},
		"C0":  {[]int{0}, []int{0}},
		"CB0": {[]int{0, 1}, []int{0}},
		"C1":  {[]int{1}, []int{1}},
		"CB1": {[]int{0, 1}, []int{1}},
		"C01": {[]int{0, 1}, []int{0, 1}},
	}
	if len(want) != len(a.Locations) {
		t.Fatalf("table has %d rows, automaton has %d locations", len(want), len(a.Locations))
	}
	for _, l := range a.Locations {
		w, ok := want[l.Name]
		if !ok {
			t.Errorf("unexpected location %s", l.Name)
			continue
		}
		if !equalInts(l.Broadcast, w.broadcast) || !equalInts(l.Delivered, w.delivered) {
			t.Errorf("%s: broadcast=%v delivered=%v, want %v %v",
				l.Name, l.Broadcast, l.Delivered, w.broadcast, w.delivered)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNaiveConsensusStructure checks the Fig. 3 shape. The paper's Table 2
// reports 24 locations / 45 rules / 14 guards; transcribing Fig. 3 and
// Table 3 literally yields 26 locations and 44 rules (the figure draws 26
// boxes), and exactly the 14 unique guards.
func TestNaiveConsensusStructure(t *testing.T) {
	a := NaiveConsensus()
	size := a.Size()
	if size.Locations != 26 {
		t.Errorf("locations = %d, want 26", size.Locations)
	}
	if size.Rules != 44 {
		t.Errorf("rules = %d, want 44", size.Rules)
	}
	if size.UniqueGuards != 14 {
		t.Errorf("unique guards = %d, want 14", size.UniqueGuards)
	}
	// Superround wiring: the odd half decides 1, the even half decides 0.
	if _, err := a.LocByName("D1"); err != nil {
		t.Error(err)
	}
	if _, err := a.LocByName("D0"); err != nil {
		t.Error(err)
	}
	// Round-switch rules lead back to the first-half initial locations.
	switches := 0
	for _, r := range a.Rules {
		if r.RoundSwitch {
			switches++
			name := a.Locations[r.To].Name
			if name != "V0" && name != "V1" {
				t.Errorf("round switch %s targets %s", r.Name, name)
			}
		}
	}
	if switches != 3 {
		t.Errorf("round-switch rules = %d, want 3 (from D0, E0x, E1x)", switches)
	}
}

// TestSimplifiedConsensusStructure checks the Fig. 4 shape. The paper's
// Table 2 reports 16 locations / 37 rules / 10 guards; Fig. 4 draws 18
// locations, and the rule count matches at 37 with the self-loops included.
func TestSimplifiedConsensusStructure(t *testing.T) {
	a := SimplifiedConsensus()
	size := a.Size()
	if size.Locations != 18 {
		t.Errorf("locations = %d, want 18", size.Locations)
	}
	if size.Rules != 37 {
		t.Errorf("rules = %d, want 37", size.Rules)
	}
	if size.UniqueGuards != 10 {
		t.Errorf("unique guards = %d, want 10", size.UniqueGuards)
	}
}

func TestQueriesValidate(t *testing.T) {
	bv := BVBroadcast()
	if _, err := BVQueries(bv); err != nil {
		t.Errorf("BVQueries: %v", err)
	}
	simp := SimplifiedConsensus()
	qs, err := SimplifiedQueries(simp)
	if err != nil {
		t.Fatalf("SimplifiedQueries: %v", err)
	}
	if len(qs) != 9 {
		t.Errorf("simplified queries = %d, want 9", len(qs))
	}
	naive := NaiveConsensus()
	nq, err := NaiveQueries(naive)
	if err != nil {
		t.Fatalf("NaiveQueries: %v", err)
	}
	if len(nq) != 3 {
		t.Errorf("naive queries = %d, want 3", len(nq))
	}
	if _, err := Inv1CounterexampleQuery(simp); err != nil {
		t.Errorf("Inv1CounterexampleQuery: %v", err)
	}
}

func TestSimplifiedJusticeShape(t *testing.T) {
	a := SimplifiedConsensus()
	js, err := SimplifiedJustice(a)
	if err != nil {
		t.Fatal(err)
	}
	// 10 per half (start x2, bv_term, obl x2, unif x2, aux x3) + 3 advance.
	if len(js) != 23 {
		t.Errorf("justice requirements = %d, want 23", len(js))
	}
	names := make(map[string]bool, len(js))
	for _, j := range js {
		names[j.Name] = true
	}
	for _, want := range []string{"bv_term", "bv_termx", "bv_obl0", "bv_unif1x", "aux01", "advance_D1"} {
		if !names[want] {
			t.Errorf("missing justice requirement %s", want)
		}
	}
	// The raw bv rules s6/s7 must NOT carry default justice (their triggers
	// bvb_v >= 1 are unsound for the algorithm).
	for _, j := range js {
		if strings.HasPrefix(j.Name, "rc_s6") || strings.HasPrefix(j.Name, "rc_s7") {
			t.Errorf("unsound default justice %s present", j.Name)
		}
	}
}

// explicitCheck runs a query against the one-round system for fixed
// parameters and returns the outcome.
func explicitCheck(t *testing.T, a *ta.TA, q spec.Query, n, tt, f int64) spec.Outcome {
	t.Helper()
	oneRound := a.OneRound()
	sys, err := counter.NewSystem(oneRound, counter.ParamsFor(oneRound, n, tt, f))
	if err != nil {
		t.Fatalf("system n=%d t=%d f=%d: %v", n, tt, f, err)
	}
	res, err := counter.CheckQueryExplicit(sys, &q, 0)
	if err != nil {
		t.Fatalf("query %s: %v", q.Name, err)
	}
	if res.Outcome == spec.Budget {
		t.Fatalf("query %s: state budget exhausted", q.Name)
	}
	return res.Outcome
}

// TestBVPropertiesExplicitSmall verifies all bv-broadcast properties by
// exhaustive state enumeration for small parameter instances: the ground
// truth the parameterized checker must agree with.
func TestBVPropertiesExplicitSmall(t *testing.T) {
	a := BVBroadcast()
	qs, err := BVQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, params := range [][3]int64{{4, 1, 1}, {4, 1, 0}, {5, 1, 1}} {
		for _, q := range qs {
			if got := explicitCheck(t, a, q, params[0], params[1], params[2]); got != spec.Holds {
				t.Errorf("n=%d t=%d f=%d: %s = %v, want holds", params[0], params[1], params[2], q.Name, got)
			}
		}
	}
}

// TestSimplifiedPropertiesExplicitSmall verifies the Section 5 properties on
// the simplified automaton for small parameters.
func TestSimplifiedPropertiesExplicitSmall(t *testing.T) {
	a := SimplifiedConsensus()
	qs, err := SimplifiedQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, params := range [][3]int64{{4, 1, 1}, {4, 1, 0}} {
		for _, q := range qs {
			if got := explicitCheck(t, a, q, params[0], params[1], params[2]); got != spec.Holds {
				t.Errorf("n=%d t=%d f=%d: %s = %v, want holds", params[0], params[1], params[2], q.Name, got)
			}
		}
	}
}

// TestInv1ViolatedWithoutResilience reproduces the Section 6 counterexample:
// once Byzantine processes may reach a third of the system (n = 3t), two
// correct processes can decide different values.
func TestInv1ViolatedWithoutResilience(t *testing.T) {
	a := SimplifiedConsensus()
	q, err := Inv1CounterexampleQuery(a)
	if err != nil {
		t.Fatal(err)
	}
	relaxed := a.WithResilience(q.RelaxResilience)
	if got := explicitCheck(t, relaxed, q, 3, 1, 1); got != spec.Violated {
		t.Errorf("Inv1_0 with n=3,t=1,f=1: %v, want violated", got)
	}
	// Under proper resilience the same query holds.
	if got := explicitCheck(t, a, q, 4, 1, 1); got != spec.Violated {
		// q still carries the relaxed resilience but the system uses the
		// original; with n=4,t=1,f=1 disagreement must be impossible.
		if got != spec.Holds {
			t.Errorf("Inv1_0 with n=4,t=1,f=1: %v, want holds", got)
		}
	} else {
		t.Error("Inv1_0 must hold for n=4,t=1,f=1")
	}
}

// TestNaivePropertiesExplicitSmall verifies Inv1_0 and Inv2_0 on the naive
// automaton for the smallest instance — demonstrating that the naive model
// is checkable explicitly for fixed parameters even though its parameterized
// verification explodes.
func TestNaivePropertiesExplicitSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("naive explicit exploration is slow")
	}
	a := NaiveConsensus()
	qs, err := NaiveQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Kind != spec.Safety {
			continue // liveness state space is the same; skip duplicate work
		}
		if got := explicitCheck(t, a, q, 4, 1, 1); got != spec.Holds {
			t.Errorf("n=4 t=1 f=1: %s = %v, want holds", q.Name, got)
		}
	}
}

func TestModelsRenderDOT(t *testing.T) {
	for _, a := range []*ta.TA{BVBroadcast(), NaiveConsensus(), SimplifiedConsensus()} {
		var sb strings.Builder
		if err := a.WriteDOT(&sb); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if len(sb.String()) < 100 {
			t.Errorf("%s: implausibly short DOT output", a.Name)
		}
	}
}
