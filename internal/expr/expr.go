// Package expr provides linear integer expressions and constraints over a
// shared symbol table. It is the common arithmetic substrate for threshold
// automata guards (internal/ta), the schema encoder (internal/schema) and the
// SMT core (internal/smt).
//
// All arithmetic is exact: coefficients are int64 and every operation that
// could overflow reports an error instead of wrapping.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Sym identifies a symbol (variable) in a Table.
type Sym int

// NoSym is the zero value returned when a lookup fails.
const NoSym Sym = -1

// Table interns symbol names and assigns them dense indices. The zero value
// is ready to use. Tables are safe for concurrent use: the schema checker
// interns fresh encoding variables from parallel property checks.
type Table struct {
	mu    sync.RWMutex
	names []string
	index map[string]Sym
}

// NewTable returns an empty symbol table.
func NewTable() *Table {
	return &Table{index: make(map[string]Sym)}
}

// Intern returns the symbol for name, creating it if necessary.
func (t *Table) Intern(name string) Sym {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.index == nil {
		t.index = make(map[string]Sym)
	}
	if s, ok := t.index[name]; ok {
		return s
	}
	s := Sym(len(t.names))
	t.names = append(t.names, name)
	t.index[name] = s
	return s
}

// Lookup returns the symbol for name, or NoSym if it has not been interned.
func (t *Table) Lookup(name string) Sym {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.index == nil {
		return NoSym
	}
	if s, ok := t.index[name]; ok {
		return s
	}
	return NoSym
}

// Name returns the name of s. It panics if s is out of range, which always
// indicates a programming error (symbols are only produced by Intern).
func (t *Table) Name(s Sym) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.names[s]
}

// Snapshot returns a new independent table containing the first n interned
// symbols of t (clamped to its current length). The schema encoder gives
// each per-schema solver a private snapshot for its fresh variables: symbol
// ids feed simplex pivoting order, so ids racing through a shared table
// would make solver effort depend on worker interleaving. With snapshots,
// identical encodings get identical ids regardless of concurrency — and the
// shared table is never grown by a solve.
func (t *Table) Snapshot(n int) *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if n > len(t.names) {
		n = len(t.names)
	}
	if n < 0 {
		n = 0
	}
	nt := &Table{names: make([]string, n), index: make(map[string]Sym, n)}
	copy(nt.names, t.names[:n])
	for i, name := range nt.names {
		nt.index[name] = Sym(i)
	}
	return nt
}

// Truncate removes every symbol interned after the first n, so the next
// Intern reuses the freed ids. The incremental schema walker calls this when
// backtracking: symbols interned while exploring one subtree are discarded
// before a sibling subtree interns its own, which keeps the id assigned to
// any name a function of the tree path alone (ids feed simplex pivoting
// order, so leaking ids across siblings would make solver effort depend on
// visit history). Truncating below symbols still referenced by live
// expressions is a caller bug.
func (t *Table) Truncate(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(t.names) {
		return
	}
	for _, name := range t.names[n:] {
		delete(t.index, name)
	}
	t.names = t.names[:n]
}

// Len reports the number of interned symbols.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}

// Names returns a copy of all interned names in symbol order.
func (t *Table) Names() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// Lin is a linear expression Const + Σ Coeffs[s]·s. The zero value is the
// constant 0. Lin values are mutable; use Clone before sharing.
type Lin struct {
	Coeffs map[Sym]int64
	Const  int64
}

// NewLin returns the constant expression c.
func NewLin(c int64) Lin {
	return Lin{Const: c}
}

// Var returns the expression 1·s.
func Var(s Sym) Lin {
	return Lin{Coeffs: map[Sym]int64{s: 1}}
}

// Term returns the expression coeff·s.
func Term(s Sym, coeff int64) Lin {
	if coeff == 0 {
		return Lin{}
	}
	return Lin{Coeffs: map[Sym]int64{s: coeff}}
}

// Clone returns a deep copy of l.
func (l Lin) Clone() Lin {
	out := Lin{Const: l.Const}
	if len(l.Coeffs) > 0 {
		out.Coeffs = make(map[Sym]int64, len(l.Coeffs))
		for s, c := range l.Coeffs {
			out.Coeffs[s] = c
		}
	}
	return out
}

// Coeff returns the coefficient of s (0 if absent).
func (l Lin) Coeff(s Sym) int64 {
	return l.Coeffs[s]
}

func addChecked(a, b int64) (int64, error) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, fmt.Errorf("expr: int64 overflow adding %d and %d", a, b)
	}
	return s, nil
}

func mulChecked(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) {
		return 0, fmt.Errorf("expr: int64 overflow multiplying %d and %d", a, b)
	}
	return p, nil
}

// AddTerm adds coeff·s to l in place.
func (l *Lin) AddTerm(s Sym, coeff int64) error {
	if coeff == 0 {
		return nil
	}
	if l.Coeffs == nil {
		l.Coeffs = make(map[Sym]int64)
	}
	c, err := addChecked(l.Coeffs[s], coeff)
	if err != nil {
		return err
	}
	if c == 0 {
		delete(l.Coeffs, s)
	} else {
		l.Coeffs[s] = c
	}
	return nil
}

// AddConst adds c to l's constant term in place.
func (l *Lin) AddConst(c int64) error {
	s, err := addChecked(l.Const, c)
	if err != nil {
		return err
	}
	l.Const = s
	return nil
}

// Add adds other to l in place.
func (l *Lin) Add(other Lin) error {
	if err := l.AddConst(other.Const); err != nil {
		return err
	}
	for s, c := range other.Coeffs {
		if err := l.AddTerm(s, c); err != nil {
			return err
		}
	}
	return nil
}

// AddScaled adds k·other to l in place.
func (l *Lin) AddScaled(other Lin, k int64) error {
	kc, err := mulChecked(other.Const, k)
	if err != nil {
		return err
	}
	if err := l.AddConst(kc); err != nil {
		return err
	}
	for s, c := range other.Coeffs {
		p, err := mulChecked(c, k)
		if err != nil {
			return err
		}
		if err := l.AddTerm(s, p); err != nil {
			return err
		}
	}
	return nil
}

// Sub subtracts other from l in place.
func (l *Lin) Sub(other Lin) error {
	return l.AddScaled(other, -1)
}

// Neg returns -l as a new expression.
func (l Lin) Neg() Lin {
	out := Lin{Const: -l.Const}
	if len(l.Coeffs) > 0 {
		out.Coeffs = make(map[Sym]int64, len(l.Coeffs))
		for s, c := range l.Coeffs {
			out.Coeffs[s] = -c
		}
	}
	return out
}

// IsConst reports whether l has no variable terms.
func (l Lin) IsConst() bool { return len(l.Coeffs) == 0 }

// Eval evaluates l under the given valuation.
func (l Lin) Eval(val func(Sym) int64) (int64, error) {
	acc := l.Const
	for s, c := range l.Coeffs {
		p, err := mulChecked(c, val(s))
		if err != nil {
			return 0, err
		}
		acc, err = addChecked(acc, p)
		if err != nil {
			return 0, err
		}
	}
	return acc, nil
}

// Substitute replaces every occurrence of s in l by repl, in place.
func (l *Lin) Substitute(s Sym, repl Lin) error {
	c, ok := l.Coeffs[s]
	if !ok {
		return nil
	}
	delete(l.Coeffs, s)
	return l.AddScaled(repl, c)
}

// String renders l using names from tab (or raw symbol numbers when tab is
// nil), with deterministic term ordering.
func (l Lin) String(tab *Table) string {
	syms := make([]Sym, 0, len(l.Coeffs))
	for s := range l.Coeffs {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	var b strings.Builder
	first := true
	for _, s := range syms {
		c := l.Coeffs[s]
		name := fmt.Sprintf("x%d", s)
		if tab != nil {
			name = tab.Name(s)
		}
		switch {
		case first && c == 1:
			b.WriteString(name)
		case first && c == -1:
			b.WriteString("-" + name)
		case first:
			fmt.Fprintf(&b, "%d*%s", c, name)
		case c == 1:
			b.WriteString(" + " + name)
		case c == -1:
			b.WriteString(" - " + name)
		case c > 0:
			fmt.Fprintf(&b, " + %d*%s", c, name)
		default:
			fmt.Fprintf(&b, " - %d*%s", -c, name)
		}
		first = false
	}
	switch {
	case first:
		fmt.Fprintf(&b, "%d", l.Const)
	case l.Const > 0:
		fmt.Fprintf(&b, " + %d", l.Const)
	case l.Const < 0:
		fmt.Fprintf(&b, " - %d", -l.Const)
	}
	return b.String()
}

// Op is a constraint operator. Constraints are canonicalized to compare a
// linear expression against zero.
type Op int

const (
	// GE means L >= 0.
	GE Op = iota + 1
	// EQ means L == 0.
	EQ
)

func (o Op) String() string {
	switch o {
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Constraint is the atomic relation L Op 0.
type Constraint struct {
	L  Lin
	Op Op
}

// GEZero returns the constraint l >= 0.
func GEZero(l Lin) Constraint { return Constraint{L: l, Op: GE} }

// EQZero returns the constraint l == 0.
func EQZero(l Lin) Constraint { return Constraint{L: l, Op: EQ} }

// Ge returns the constraint a >= b.
func Ge(a, b Lin) (Constraint, error) {
	l := a.Clone()
	if err := l.Sub(b); err != nil {
		return Constraint{}, err
	}
	return Constraint{L: l, Op: GE}, nil
}

// Le returns the constraint a <= b.
func Le(a, b Lin) (Constraint, error) {
	l := b.Clone()
	if err := l.Sub(a); err != nil {
		return Constraint{}, err
	}
	return Constraint{L: l, Op: GE}, nil
}

// Eq returns the constraint a == b.
func Eq(a, b Lin) (Constraint, error) {
	l := a.Clone()
	if err := l.Sub(b); err != nil {
		return Constraint{}, err
	}
	return Constraint{L: l, Op: EQ}, nil
}

// Negate returns the integer negation of c. For L >= 0 this is -L-1 >= 0
// (that is, L <= -1). Negating an equality is not representable as a single
// constraint and returns an error.
func (c Constraint) Negate() (Constraint, error) {
	if c.Op != GE {
		return Constraint{}, fmt.Errorf("expr: cannot negate %s constraint into a single constraint", c.Op)
	}
	l := c.L.Neg()
	if err := l.AddConst(-1); err != nil {
		return Constraint{}, err
	}
	return Constraint{L: l, Op: GE}, nil
}

// Clone returns a deep copy of c.
func (c Constraint) Clone() Constraint {
	return Constraint{L: c.L.Clone(), Op: c.Op}
}

// Holds evaluates c under the valuation.
func (c Constraint) Holds(val func(Sym) int64) (bool, error) {
	v, err := c.L.Eval(val)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case GE:
		return v >= 0, nil
	case EQ:
		return v == 0, nil
	default:
		return false, fmt.Errorf("expr: unknown operator %v", c.Op)
	}
}

// String renders c, e.g. "b0 - 2*t - 1 + f >= 0".
func (c Constraint) String(tab *Table) string {
	return c.L.String(tab) + " " + c.Op.String() + " 0"
}
