package expr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIntern(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("n")
	b := tab.Intern("t")
	if a == b {
		t.Fatalf("distinct names interned to same symbol %v", a)
	}
	if got := tab.Intern("n"); got != a {
		t.Errorf("re-interning n: got %v want %v", got, a)
	}
	if got := tab.Lookup("t"); got != b {
		t.Errorf("Lookup(t) = %v, want %v", got, b)
	}
	if got := tab.Lookup("missing"); got != NoSym {
		t.Errorf("Lookup(missing) = %v, want NoSym", got)
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
	if tab.Name(a) != "n" || tab.Name(b) != "t" {
		t.Errorf("Name mismatch: %q %q", tab.Name(a), tab.Name(b))
	}
}

func TestTableZeroValue(t *testing.T) {
	var tab Table
	if got := tab.Lookup("x"); got != NoSym {
		t.Errorf("zero-value Lookup = %v, want NoSym", got)
	}
	s := tab.Intern("x")
	if got := tab.Lookup("x"); got != s {
		t.Errorf("zero-value Intern then Lookup = %v, want %v", got, s)
	}
}

func TestLinArithmetic(t *testing.T) {
	tab := NewTable()
	x := tab.Intern("x")
	y := tab.Intern("y")

	l := NewLin(3)
	if err := l.AddTerm(x, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.AddTerm(y, -1); err != nil {
		t.Fatal(err)
	}
	// l = 2x - y + 3
	val := func(s Sym) int64 {
		if s == x {
			return 5
		}
		return 4
	}
	got, err := l.Eval(val)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2*5-4+3 {
		t.Errorf("Eval = %d, want %d", got, 2*5-4+3)
	}

	m := Var(y)
	if err := m.AddScaled(l, 2); err != nil {
		t.Fatal(err)
	}
	// m = y + 2(2x - y + 3) = 4x - y + 6
	gm, err := m.Eval(val)
	if err != nil {
		t.Fatal(err)
	}
	if gm != 4*5-4+6 {
		t.Errorf("AddScaled Eval = %d, want %d", gm, 4*5-4+6)
	}
}

func TestAddTermCancellation(t *testing.T) {
	tab := NewTable()
	x := tab.Intern("x")
	l := Var(x)
	if err := l.AddTerm(x, -1); err != nil {
		t.Fatal(err)
	}
	if !l.IsConst() {
		t.Errorf("x - x should be constant, got %v", l.Coeffs)
	}
}

func TestSubstitute(t *testing.T) {
	tab := NewTable()
	x := tab.Intern("x")
	y := tab.Intern("y")
	z := tab.Intern("z")

	l := Term(x, 3) // 3x
	if err := l.AddTerm(y, 1); err != nil {
		t.Fatal(err)
	}
	// substitute x := 2z + 1  ->  6z + y + 3
	repl := Term(z, 2)
	if err := repl.AddConst(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Substitute(x, repl); err != nil {
		t.Fatal(err)
	}
	if c := l.Coeff(z); c != 6 {
		t.Errorf("coeff z = %d, want 6", c)
	}
	if c := l.Coeff(y); c != 1 {
		t.Errorf("coeff y = %d, want 1", c)
	}
	if l.Const != 3 {
		t.Errorf("const = %d, want 3", l.Const)
	}
	if c := l.Coeff(x); c != 0 {
		t.Errorf("coeff x = %d, want 0", c)
	}
}

func TestOverflowDetection(t *testing.T) {
	tab := NewTable()
	x := tab.Intern("x")
	l := Term(x, math.MaxInt64)
	if err := l.AddTerm(x, 1); err == nil {
		t.Error("expected overflow error adding to MaxInt64 coefficient")
	}
	m := NewLin(math.MaxInt64)
	if err := m.AddConst(1); err == nil {
		t.Error("expected overflow error on constant")
	}
	k := Term(x, math.MaxInt64/2+1)
	if err := k.AddScaled(k.Clone(), 2); err == nil {
		t.Error("expected overflow error on AddScaled")
	}
}

func TestConstraintBuilders(t *testing.T) {
	tab := NewTable()
	x := tab.Intern("x")
	y := tab.Intern("y")
	val := func(s Sym) int64 {
		if s == x {
			return 7
		}
		return 3
	}

	ge, err := Ge(Var(x), Var(y)) // x >= y
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ge.Holds(val)
	if err != nil || !ok {
		t.Errorf("x>=y under x=7,y=3: ok=%v err=%v", ok, err)
	}

	le, err := Le(Var(x), Var(y)) // x <= y
	if err != nil {
		t.Fatal(err)
	}
	ok, err = le.Holds(val)
	if err != nil || ok {
		t.Errorf("x<=y under x=7,y=3 should fail: ok=%v err=%v", ok, err)
	}

	eq, err := Eq(Var(x), Var(y))
	if err != nil {
		t.Fatal(err)
	}
	ok, err = eq.Holds(val)
	if err != nil || ok {
		t.Errorf("x==y under x=7,y=3 should fail: ok=%v err=%v", ok, err)
	}
}

func TestNegate(t *testing.T) {
	tab := NewTable()
	x := tab.Intern("x")
	c, err := Ge(Var(x), NewLin(5)) // x >= 5
	if err != nil {
		t.Fatal(err)
	}
	neg, err := c.Negate() // x <= 4
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v <= 10; v++ {
		val := func(Sym) int64 { return v }
		a, _ := c.Holds(val)
		b, _ := neg.Holds(val)
		if a == b {
			t.Errorf("x=%d: constraint and negation both %v", v, a)
		}
	}

	eq := EQZero(Var(x))
	if _, err := eq.Negate(); err == nil {
		t.Error("negating an equality should error")
	}
}

func TestString(t *testing.T) {
	tab := NewTable()
	b0 := tab.Intern("b0")
	tt := tab.Intern("t")
	f := tab.Intern("f")

	// b0 - 2t - 1 + f >= 0  (the guard b0 >= 2t+1-f)
	l := Var(b0)
	if err := l.AddTerm(tt, -2); err != nil {
		t.Fatal(err)
	}
	if err := l.AddTerm(f, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.AddConst(-1); err != nil {
		t.Fatal(err)
	}
	got := GEZero(l).String(tab)
	want := "b0 - 2*t + f - 1 >= 0"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if s := NewLin(0).String(nil); s != "0" {
		t.Errorf("zero Lin String = %q, want 0", s)
	}
}

// Property: Add then Sub of the same expression is identity (on evaluation).
func TestQuickAddSubIdentity(t *testing.T) {
	tab := NewTable()
	syms := []Sym{tab.Intern("a"), tab.Intern("b"), tab.Intern("c")}
	prop := func(ca, cb, cc int8, k int8, va, vb, vc int8) bool {
		l := Lin{}
		_ = l.AddTerm(syms[0], int64(ca))
		_ = l.AddTerm(syms[1], int64(cb))
		_ = l.AddTerm(syms[2], int64(cc))
		_ = l.AddConst(int64(k))
		orig := l.Clone()
		other := Term(syms[0], int64(vb))
		_ = other.AddConst(int64(vc))
		if err := l.Add(other); err != nil {
			return true // overflow paths are allowed to bail
		}
		if err := l.Sub(other); err != nil {
			return true
		}
		vals := []int64{int64(va), int64(vb), int64(vc)}
		val := func(s Sym) int64 { return vals[int(s)] }
		g1, err1 := l.Eval(val)
		g2, err2 := orig.Eval(val)
		return err1 == nil && err2 == nil && g1 == g2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Negate flips Holds for GE constraints over small integer points.
func TestQuickNegateFlips(t *testing.T) {
	tab := NewTable()
	x := tab.Intern("x")
	y := tab.Intern("y")
	prop := func(cx, cy, k int8, vx, vy int8) bool {
		l := Term(x, int64(cx))
		_ = l.AddTerm(y, int64(cy))
		_ = l.AddConst(int64(k))
		c := GEZero(l)
		neg, err := c.Negate()
		if err != nil {
			return false
		}
		vals := map[Sym]int64{x: int64(vx), y: int64(vy)}
		val := func(s Sym) int64 { return vals[s] }
		a, err1 := c.Holds(val)
		b, err2 := neg.Holds(val)
		return err1 == nil && err2 == nil && a != b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestTableTruncate pins the backtracking contract the incremental schema
// walker relies on: truncation frees ids for reuse, so re-interning after a
// truncate assigns the same dense ids a fresh walk would, and truncated
// names are genuinely gone from the index.
func TestTableTruncate(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("ta")
	tab.Intern("tb")
	tab.Intern("tc")
	if tab.Len() != 3 {
		t.Fatalf("len = %d, want 3", tab.Len())
	}

	tab.Truncate(1)
	if tab.Len() != 1 {
		t.Fatalf("after truncate: len = %d, want 1", tab.Len())
	}
	if got := tab.Lookup("tb"); got != NoSym {
		t.Errorf("Lookup(tb) = %v after truncate, want NoSym", got)
	}
	if got := tab.Lookup("tc"); got != NoSym {
		t.Errorf("Lookup(tc) = %v after truncate, want NoSym", got)
	}
	if got := tab.Lookup("ta"); got != a {
		t.Errorf("Lookup(ta) = %v, want %v (survivors keep their ids)", got, a)
	}

	// Re-interning in a different order reuses the freed ids densely: the id
	// of a name is a function of intern order from the truncation point, not
	// of the discarded history.
	c2 := tab.Intern("tc")
	b2 := tab.Intern("tb")
	if c2 != Sym(1) || b2 != Sym(2) {
		t.Errorf("re-intern ids = %v, %v, want 1, 2", c2, b2)
	}
	if tab.Name(c2) != "tc" || tab.Name(b2) != "tb" {
		t.Errorf("names = %q, %q, want tc, tb", tab.Name(c2), tab.Name(b2))
	}

	// Out-of-range arguments clamp: beyond the length is a no-op, negative
	// empties the table.
	tab.Truncate(99)
	if tab.Len() != 3 {
		t.Errorf("truncate beyond len changed table to %d", tab.Len())
	}
	tab.Truncate(-5)
	if tab.Len() != 0 {
		t.Errorf("negative truncate left len %d, want 0", tab.Len())
	}
	if tab.Intern("ta") != Sym(0) {
		t.Error("intern after full truncate did not restart at id 0")
	}
}
