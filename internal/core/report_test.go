package core

import (
	"encoding/json"
	"testing"
)

func TestJSONCertificateRoundTrip(t *testing.T) {
	rep, err := HolisticVerification(Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back HolisticJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("certificate does not parse: %v", err)
	}
	if !back.Agreement || !back.Validity || !back.Termination {
		t.Errorf("certificate flags: %+v", back)
	}
	if back.Inner.Model != "bv-broadcast" || len(back.Inner.Results) != 7 {
		t.Errorf("inner block: %+v", back.Inner)
	}
	if back.Outer.Model != "simplified-consensus" || len(back.Outer.Results) != 9 {
		t.Errorf("outer block: %+v", back.Outer)
	}
	for _, r := range append(back.Inner.Results, back.Outer.Results...) {
		if r.Outcome != "holds" {
			t.Errorf("%s: %s", r.Property, r.Outcome)
		}
		if r.CE != nil {
			t.Errorf("%s: unexpected counterexample in certificate", r.Property)
		}
	}
}

func TestJSONCounterexampleSerialized(t *testing.T) {
	res, err := GenerateInv1Counterexample(Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := resultJSON(res)
	if j.Outcome != "violated" || j.CE == nil {
		t.Fatalf("result json: %+v", j)
	}
	if j.CE.Params["n"] == 0 || j.CE.Params["t"] == 0 {
		t.Errorf("counterexample parameters missing: %+v", j.CE.Params)
	}
	if len(j.CE.Steps) == 0 {
		t.Error("counterexample has no steps")
	}
	total := int64(0)
	for _, k := range j.CE.Init {
		total += k
	}
	if total != j.CE.Params["n"]-j.CE.Params["f"] {
		t.Errorf("initial distribution sums to %d, want n-f = %d",
			total, j.CE.Params["n"]-j.CE.Params["f"])
	}
}
