package core

import (
	"strings"
	"testing"

	"repro/internal/models"
)

// TestGadgetJusticeTraceability pins down the soundness argument of the
// decomposition: every fairness assumption the outer (simplified) automaton
// makes about its bv-broadcast gadget corresponds to a property that phase 1
// actually verified on the inner automaton — or to the paper's generic
// progress assumptions (reliable communication / scheduling), which need no
// inner proof. A justice requirement without a documented source would be an
// unjustified assumption.
func TestGadgetJusticeTraceability(t *testing.T) {
	// The documented mapping: justice-name prefix -> discharging source.
	source := map[string]string{
		"bv_term":  "BV-Term",  // verified in phase 1
		"bv_obl0":  "BV-Obl0",  // verified in phase 1
		"bv_obl1":  "BV-Obl1",  // verified in phase 1
		"bv_unif0": "BV-Unif0", // verified in phase 1
		"bv_unif1": "BV-Unif1", // verified in phase 1
		"aux0":     "reliable", // reliable communication on aux quorums
		"aux1":     "reliable", // (the paper's generic progress assumption)
		"aux01":    "reliable",
		"start_":   "scheduling", // every process eventually takes a step
		"advance_": "scheduling",
	}

	simp := models.SimplifiedConsensus()
	justice, err := models.SimplifiedJustice(simp)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := VerifyBVBroadcast(Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, j := range justice {
		matched := ""
		for prefix, src := range source {
			if strings.HasPrefix(j.Name, prefix) {
				matched = src
				break
			}
		}
		switch {
		case matched == "":
			t.Errorf("justice requirement %q has no documented source", j.Name)
		case matched == "reliable" || matched == "scheduling":
			// generic assumptions, nothing to discharge
		default:
			res, ok := inner.Result(matched)
			if !ok {
				t.Errorf("justice %q claims inner property %q, which phase 1 did not check", j.Name, matched)
				continue
			}
			if res.Outcome.String() != "holds" {
				t.Errorf("justice %q rests on %q, which did not verify: %v", j.Name, matched, res.Outcome)
			}
		}
	}

	// And the converse sanity: phase 1 covers all four BV properties.
	for _, want := range []string{"BV-Just0", "BV-Just1", "BV-Obl0", "BV-Obl1", "BV-Unif0", "BV-Unif1", "BV-Term"} {
		if _, ok := inner.Result(want); !ok {
			t.Errorf("phase 1 missing %s", want)
		}
	}
}
