package core

import (
	"encoding/json"
	"time"

	"repro/internal/schema"
)

// JSON certificates: machine-readable verification reports for archiving
// and regression comparison (`holistic pipeline -json`).

// ResultJSON is one property verdict.
type ResultJSON struct {
	Property  string  `json:"property"`
	Outcome   string  `json:"outcome"`
	Mode      string  `json:"mode"`
	Schemas   int     `json:"schemas"`
	AvgLen    float64 `json:"avg_len"`
	ElapsedMS float64 `json:"elapsed_ms"`

	// Counterexample, when the property is violated.
	CE *CEJSON `json:"counterexample,omitempty"`
}

// CEJSON is a certified counterexample: concrete parameters, the initial
// distribution and the accelerated steps.
type CEJSON struct {
	Params map[string]int64 `json:"params"`
	Init   map[string]int64 `json:"init"` // location -> processes
	Steps  []CEStepJSON     `json:"steps"`
}

// CEStepJSON is one accelerated firing.
type CEStepJSON struct {
	Rule   string `json:"rule"`
	Factor int64  `json:"factor"`
}

// ReportJSON is the verdict set for one automaton.
type ReportJSON struct {
	Model        string       `json:"model"`
	Locations    int          `json:"locations"`
	Rules        int          `json:"rules"`
	UniqueGuards int          `json:"unique_guards"`
	Results      []ResultJSON `json:"results"`
	ElapsedMS    float64      `json:"elapsed_ms"`
}

// HolisticJSON is the full pipeline certificate.
type HolisticJSON struct {
	Inner       ReportJSON `json:"inner"`
	Outer       ReportJSON `json:"outer"`
	Agreement   bool       `json:"agreement_verified"`
	Validity    bool       `json:"validity_verified"`
	Termination bool       `json:"termination_verified"`
	ElapsedMS   float64    `json:"elapsed_ms"`
}

func resultJSON(r schema.Result) ResultJSON {
	out := ResultJSON{
		Property:  r.Query,
		Outcome:   r.Outcome.String(),
		Mode:      r.Mode.String(),
		Schemas:   r.Schemas,
		AvgLen:    r.AvgLen,
		ElapsedMS: float64(r.Elapsed) / float64(time.Millisecond),
	}
	if r.CE != nil {
		a := r.CE.System.TA
		ce := &CEJSON{Params: map[string]int64{}, Init: map[string]int64{}}
		for _, p := range a.Params {
			ce.Params[a.Table.Name(p)] = r.CE.Params[p]
		}
		for l, k := range r.CE.Run.Init.K {
			if k > 0 {
				ce.Init[a.Locations[l].Name] = k
			}
		}
		for _, st := range r.CE.Run.Steps {
			ce.Steps = append(ce.Steps, CEStepJSON{Rule: a.Rules[st.Rule].Name, Factor: st.Factor})
		}
		out.CE = ce
	}
	return out
}

// JSON converts the report.
func (r Report) JSON() ReportJSON {
	out := ReportJSON{
		Model:        r.Model,
		Locations:    r.Size.Locations,
		Rules:        r.Size.Rules,
		UniqueGuards: r.Size.UniqueGuards,
		ElapsedMS:    float64(r.Elapsed) / float64(time.Millisecond),
	}
	for _, res := range r.Results {
		out.Results = append(out.Results, resultJSON(res))
	}
	return out
}

// JSON converts the holistic report.
func (h HolisticReport) JSON() HolisticJSON {
	return HolisticJSON{
		Inner:       h.Inner.JSON(),
		Outer:       h.Outer.JSON(),
		Agreement:   h.AgreementVerified,
		Validity:    h.ValidityVerified,
		Termination: h.TerminationVerified,
		ElapsedMS:   float64(h.Elapsed) / float64(time.Millisecond),
	}
}

// MarshalIndent renders the holistic certificate as indented JSON.
func (h HolisticReport) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(h.JSON(), "", "  ")
}
