// Package core is the top of the library: the holistic verification
// pipeline of the paper. It wires the models (internal/models), the
// parameterized schema checker (internal/schema) and the LTL specifications
// (internal/ltl) into the paper's two-phase method:
//
//  1. verify the inner binary-value broadcast automaton (Fig. 2) — its four
//     properties BV-Justification/Obligation/Uniformity/Termination, for any
//     n > 3t >= 3f;
//  2. verify the outer simplified consensus automaton (Fig. 4), whose gadget
//     replaces the inner automaton and whose fairness assumptions are
//     exactly the properties proven in phase 1 (Appendix F);
//  3. conclude (Theorem 6): Agreement and Validity hold unconditionally
//     (Inv1 ∧ Inv2), and Termination holds under the bv-broadcast fairness
//     assumption of Section 3.3 (SRoundTerm ∧ Dec ∧ Good).
//
// The package also regenerates Table 2 and the Section 6 counterexample.
package core

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/spec"
	"repro/internal/ta"
	"repro/internal/vcache"
)

// Options tunes the verification back-end.
type Options struct {
	// Mode selects the schema strategy (default schema.Staged).
	Mode schema.Mode
	// MaxSchemas is the full-enumeration cutoff (default 100,000 — the
	// paper's reporting threshold for the naive automaton).
	MaxSchemas int
	// Timeout bounds each property check (0 = none).
	Timeout time.Duration
	// Stop, when set, is polled inside every check; a true return winds the
	// check down with a Budget outcome. Signal handlers use it to interrupt
	// a long verification while keeping the finished verdicts.
	Stop func() bool
	// Parallel is the total worker budget (0 or 1 = fully sequential). The
	// paper ran ByMC MPI-parallel on 64 cores; here the budget is split
	// between the two levels of parallelism so they never oversubscribe the
	// machine: up to min(Parallel, #queries) properties check concurrently,
	// with the budget divided between those slots as schema-enumeration
	// workers (schema.Options.Workers). Verdicts are deterministic at any
	// budget.
	Parallel int
	// Trace, when non-nil, receives structured span events from every
	// engine (see schema.Options.Trace). Observational only.
	Trace *obs.Tracer
	// Cache, when non-nil, memoizes verdicts content-addressed by the
	// canonical (automaton, query, engine config, engine version) hash
	// (internal/vcache). Hits skip the engine entirely after re-certifying
	// any counterexample by replay; Budget outcomes are never cached.
	Cache *vcache.Cache
}

func (o Options) engine(a *ta.TA, schemaWorkers int) (*schema.Engine, error) {
	return schema.New(a, schema.Options{
		Mode:       o.Mode,
		MaxSchemas: o.MaxSchemas,
		Timeout:    o.Timeout,
		Stop:       o.Stop,
		Workers:    schemaWorkers,
		Trace:      o.Trace,
	})
}

// splitBudget divides the total worker budget between query-level
// concurrency and per-query schema workers: queries first (they are the
// coarser, better-isolated unit), remaining capacity to the enumeration.
// It returns one slot per concurrently-checked query; slot i's value is the
// schema-worker count of the engine serving it. The values always sum to
// the (min-1-clamped) budget: the old floor division stranded the remainder
// — budget 6 over 4 queries ran 4 slots of 1 worker each and idled 2 cores
// — so the remainder is now spread one extra worker over the first slots.
func splitBudget(budget, queries int) []int {
	if budget < 1 {
		budget = 1
	}
	slots := budget
	if queries >= 1 && slots > queries {
		slots = queries
	}
	base := budget / slots
	rem := budget % slots
	out := make([]int, slots)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Report collects the verdicts for one automaton.
type Report struct {
	Model   string
	Size    ta.Size
	Results []schema.Result
	Elapsed time.Duration
}

// AllHold reports whether every property verified.
func (r Report) AllHold() bool {
	for _, res := range r.Results {
		if res.Outcome != spec.Holds {
			return false
		}
	}
	return len(r.Results) > 0
}

// Result returns the named property's result.
func (r Report) Result(name string) (schema.Result, bool) {
	for _, res := range r.Results {
		if res.Query == name {
			return res, true
		}
	}
	return schema.Result{}, false
}

// checker abstracts the schema engine for the worker pool (and for testing
// its panic containment).
type checker interface {
	Check(q *spec.Query) (schema.Result, error)
}

// safeCheck runs one property check, converting a panic in the engine into
// an error: a misbehaving check must fail its own query, not kill the whole
// verification run — the remaining workers' results are still reported.
func safeCheck(c checker, q *spec.Query) (res schema.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic in query %s: %v\n%s", q.Name, r, debug.Stack())
		}
	}()
	return c.Check(q)
}

// CachedCheck is the single cache lookup/fill path every caller shares
// (pipeline, verify, table2, the serving plane): consult the cache under the
// engine's canonical key, fall back to a real check on a miss or a failed
// re-certification, and fill the cache with any non-Budget verdict. A hit
// reports the lookup's own (tiny) wall clock in Elapsed; all deterministic
// fields are the stored ones, so reports built from hits are byte-identical
// to reports built from cold runs.
func CachedCheck(cache *vcache.Cache, engine *schema.Engine, q *spec.Query) (schema.Result, bool, error) {
	if cache == nil {
		res, err := safeCheck(engine, q)
		return res, false, err
	}
	start := time.Now()
	key := vcache.Key(engine.TA(), q, vcache.ConfigOf(engine.Opts()), vcache.EngineVersion)
	if ent, ok := cache.Get(key); ok {
		if res, err := ent.ToResult(engine.TA(), q); err == nil {
			res.Elapsed = time.Since(start)
			return res, true, nil
		}
		// Re-certification failed: fall through to a real check, which
		// overwrites the bad entry.
	}
	res, err := safeCheck(engine, q)
	if err == nil && res.Outcome != spec.Budget {
		if ent, eerr := vcache.FromResult(engine.TA(), key, res); eerr == nil {
			_ = cache.Put(ent) // disk failures are logged by the cache; never fail a verdict
		}
	}
	return res, false, err
}

func runQueries(a *ta.TA, queries []spec.Query, opts Options) (Report, error) {
	start := time.Now()
	slots := splitBudget(opts.Parallel, len(queries))
	// One engine per slot, each sized to its slot's schema-worker share, so
	// the whole budget is in play even when it doesn't divide evenly. Which
	// slot a query lands on cannot affect its verdict: results are
	// deterministic at any worker count (see internal/schema/parallel.go).
	engines := make([]*schema.Engine, len(slots))
	for si, w := range slots {
		var err error
		engines[si], err = opts.engine(a, w)
		if err != nil {
			return Report{}, err
		}
	}
	rep := Report{Model: a.Name, Size: a.Size()}
	results := make([]schema.Result, len(queries))
	errs := make([]error, len(queries))

	slotCh := make(chan int, len(slots))
	for si := range slots {
		slotCh <- si
	}
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		si := <-slotCh
		go func(i, si int) {
			defer wg.Done()
			defer func() { slotCh <- si }()
			results[i], _, errs[i] = CachedCheck(opts.Cache, engines[si], &queries[i])
		}(i, si)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Report{}, fmt.Errorf("core: checking %s on %s: %w", queries[i].Name, a.Name, err)
		}
	}
	rep.Results = results
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// VerifyBVBroadcast checks the four bv-broadcast properties of Section 3.2
// for all parameters.
func VerifyBVBroadcast(opts Options) (Report, error) {
	a := models.BVBroadcast()
	qs, err := models.BVQueries(a)
	if err != nil {
		return Report{}, err
	}
	return runQueries(a, qs, opts)
}

// VerifySimplifiedConsensus checks the Section 5 properties of the
// simplified consensus automaton for all parameters.
func VerifySimplifiedConsensus(opts Options) (Report, error) {
	a := models.SimplifiedConsensus()
	qs, err := models.SimplifiedQueries(a)
	if err != nil {
		return Report{}, err
	}
	return runQueries(a, qs, opts)
}

// VerifyNaiveConsensus attempts the monolithic verification the paper shows
// to be infeasible (with full enumeration it exceeds the schema budget).
func VerifyNaiveConsensus(opts Options) (Report, error) {
	a := models.NaiveConsensus()
	qs, err := models.NaiveQueries(a)
	if err != nil {
		return Report{}, err
	}
	return runQueries(a, qs, opts)
}

// HolisticReport is the outcome of the full two-phase pipeline.
type HolisticReport struct {
	Inner Report // bv-broadcast (Fig. 2)
	Outer Report // simplified consensus (Fig. 4)

	// AgreementVerified and ValidityVerified follow from Inv1 ∧ Inv2
	// ([10, Proposition 2] as used in Section 5.1); they hold without any
	// fairness assumption.
	AgreementVerified bool
	ValidityVerified  bool
	// TerminationVerified follows from SRoundTerm ∧ Dec ∧ Good under the
	// fairness assumption of Section 3.3 (Theorem 6).
	TerminationVerified bool

	Elapsed time.Duration
}

// Verified reports whether the whole consensus algorithm is verified
// (safety unconditionally, liveness under bv-fairness).
func (h HolisticReport) Verified() bool {
	return h.AgreementVerified && h.ValidityVerified && h.TerminationVerified
}

// HolisticVerification runs the paper's pipeline end to end. The outer phase
// is only meaningful if the inner phase succeeded: the simplified
// automaton's justice assumptions are the inner automaton's proven
// properties.
func HolisticVerification(opts Options) (HolisticReport, error) {
	start := time.Now()
	inner, err := VerifyBVBroadcast(opts)
	if err != nil {
		return HolisticReport{}, err
	}
	rep := HolisticReport{Inner: inner}
	if !inner.AllHold() {
		rep.Elapsed = time.Since(start)
		return rep, nil
	}
	outer, err := VerifySimplifiedConsensus(opts)
	if err != nil {
		return HolisticReport{}, err
	}
	rep.Outer = outer

	holds := func(names ...string) bool {
		for _, n := range names {
			res, ok := outer.Result(n)
			if !ok || res.Outcome != spec.Holds {
				return false
			}
		}
		return true
	}
	rep.AgreementVerified = holds("Inv1_0", "Inv1_1")
	rep.ValidityVerified = holds("Inv2_0", "Inv2_1")
	rep.TerminationVerified = holds("SRoundTerm", "Dec_0", "Dec_1", "Good_0", "Good_1")
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// GenerateInv1Counterexample reproduces the Section 6 experiment: with the
// resilience condition relaxed to n > 2t, the checker produces a concrete
// disagreement execution (certified by replay).
func GenerateInv1Counterexample(opts Options) (schema.Result, error) {
	a := models.SimplifiedConsensus()
	q, err := models.Inv1CounterexampleQuery(a)
	if err != nil {
		return schema.Result{}, err
	}
	// A single query: the whole worker budget goes to schema enumeration.
	engine, err := opts.engine(a, opts.Parallel)
	if err != nil {
		return schema.Result{}, err
	}
	res, _, err := CachedCheck(opts.Cache, engine, &q)
	return res, err
}

// Format renders a report as text.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d locations, %d rules, %d unique guards)\n",
		r.Model, r.Size.Locations, r.Size.Rules, r.Size.UniqueGuards)
	for _, res := range r.Results {
		fmt.Fprintf(&b, "  %-14s %-16s %8d schemas  avg len %6.1f  %v\n",
			res.Query, res.Outcome, res.Schemas, res.AvgLen, res.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}

// Format renders the holistic report.
func (h HolisticReport) Format() string {
	var b strings.Builder
	b.WriteString("Phase 1 — inner automaton (binary value broadcast):\n")
	b.WriteString(h.Inner.Format())
	b.WriteString("Phase 2 — outer automaton (simplified consensus):\n")
	b.WriteString(h.Outer.Format())
	fmt.Fprintf(&b, "Agreement:   %v\nValidity:    %v\nTermination: %v (under bv-broadcast fairness)\nTotal: %v\n",
		h.AgreementVerified, h.ValidityVerified, h.TerminationVerified, h.Elapsed.Round(time.Millisecond))
	return b.String()
}
