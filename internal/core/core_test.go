package core

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/spec"
)

// TestHolisticVerification runs the paper's headline pipeline end to end:
// both phases verify every property and Theorem 6's conclusions follow.
func TestHolisticVerification(t *testing.T) {
	rep, err := HolisticVerification(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Inner.AllHold() {
		t.Errorf("inner phase failed:\n%s", rep.Inner.Format())
	}
	if !rep.Outer.AllHold() {
		t.Errorf("outer phase failed:\n%s", rep.Outer.Format())
	}
	if !rep.Verified() {
		t.Errorf("holistic verification did not conclude:\n%s", rep.Format())
	}
	if len(rep.Inner.Results) != 7 {
		t.Errorf("inner results = %d, want 7", len(rep.Inner.Results))
	}
	if len(rep.Outer.Results) != 9 {
		t.Errorf("outer results = %d, want 9", len(rep.Outer.Results))
	}
	out := rep.Format()
	for _, want := range []string{"Agreement:   true", "Validity:    true", "Termination: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateInv1Counterexample(t *testing.T) {
	res, err := GenerateInv1Counterexample(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != spec.Violated {
		t.Fatalf("outcome = %v, want violated", res.Outcome)
	}
	if res.CE == nil {
		t.Fatal("no counterexample attached")
	}
	out := res.CE.Format()
	if !strings.Contains(out, "n=") {
		t.Errorf("counterexample format missing parameters:\n%s", out)
	}
}

func TestTable2SkipNaive(t *testing.T) {
	rows, err := Table2(Table2Options{SkipNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	// 4 bv rows + 5 simplified rows.
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, r := range rows {
		if r.Outcome != spec.Holds {
			t.Errorf("%s/%s: %v, want holds", r.TA, r.Property, r.Outcome)
		}
	}
	out := FormatTable2(rows)
	for _, want := range []string{"bv-broadcast", "simplified-consensus", "BV-Unif0", "SRoundTerm"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestTable2NaiveBudget includes the naive block: its rows must report
// budget exhaustion with schema counts beyond the cutoff.
func TestTable2NaiveBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("naive schema counting takes a few seconds")
	}
	rows, err := Table2(Table2Options{})
	if err != nil {
		t.Fatal(err)
	}
	naiveRows := 0
	for _, r := range rows {
		if r.TA == "naive-consensus" {
			naiveRows++
			if r.Outcome != spec.Budget {
				t.Errorf("naive %s: %v, want budget-exceeded", r.Property, r.Outcome)
			}
			if r.Schemas <= 100_000 {
				t.Errorf("naive %s: schemas = %d, want > 100,000", r.Property, r.Schemas)
			}
		}
	}
	if naiveRows != 3 {
		t.Errorf("naive rows = %d, want 3", naiveRows)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, ">100000") || !strings.Contains(out, "timeout") {
		t.Errorf("naive rows not rendered as timeouts:\n%s", out)
	}
}

// panicChecker stands in for a schema engine whose Check blows up.
type panicChecker struct{}

func (panicChecker) Check(q *spec.Query) (schema.Result, error) {
	panic("engine exploded on " + q.Name)
}

// TestSafeCheckContainsPanics: a panicking engine fails its own query with a
// descriptive error instead of killing the verification run.
func TestSafeCheckContainsPanics(t *testing.T) {
	q := spec.Query{Name: "inv1"}
	_, err := safeCheck(panicChecker{}, &q)
	if err == nil {
		t.Fatal("panic was not converted into an error")
	}
	if !strings.Contains(err.Error(), "inv1") || !strings.Contains(err.Error(), "engine exploded") {
		t.Errorf("error %q does not identify the query and the panic", err)
	}
}
