package core

import (
	"testing"

	"repro/internal/spec"
)

// TestParallelMatchesSequential runs the whole pipeline with property-level
// parallelism and compares every verdict and effort statistic against the
// sequential run (the engine must be deterministic regardless of
// scheduling).
func TestParallelMatchesSequential(t *testing.T) {
	seq, err := HolisticVerification(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := HolisticVerification(Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Verified() {
		t.Fatalf("parallel pipeline did not verify:\n%s", par.Format())
	}
	compare := func(name string, a, b Report) {
		if len(a.Results) != len(b.Results) {
			t.Fatalf("%s: result counts differ", name)
		}
		for i := range a.Results {
			ra, rb := a.Results[i], b.Results[i]
			if ra.Query != rb.Query || ra.Outcome != rb.Outcome {
				t.Errorf("%s/%s: sequential %v vs parallel %v", name, ra.Query, ra.Outcome, rb.Outcome)
			}
			// Effort counters (schemas/splits) are allowed to differ
			// slightly under parallelism: concurrent engines intern fresh
			// solver symbols in interleaved order, which changes Bland-rule
			// tie-breaking and hence the case-split order — never the
			// verdict. Guard only against order-of-magnitude drift.
			if rb.Schemas > 4*ra.Schemas+16 || ra.Schemas > 4*rb.Schemas+16 {
				t.Errorf("%s/%s: effort diverged: %d vs %d splits",
					name, ra.Query, ra.Schemas, rb.Schemas)
			}
		}
	}
	compare("inner", seq.Inner, par.Inner)
	compare("outer", seq.Outer, par.Outer)
}

// TestSplitBudgetUsesWholeBudget sweeps budgets 1..16 against query counts
// 1..8 and requires the slot worker counts to sum to exactly the budget:
// the old floor division stranded budget mod slots workers (budget 6 over 4
// queries used only 4). Also pins the shape invariants the scheduler relies
// on: at most one slot per query, every slot at least one worker, and the
// remainder spread so slot sizes differ by at most one.
func TestSplitBudgetUsesWholeBudget(t *testing.T) {
	for budget := 0; budget <= 16; budget++ {
		for queries := 1; queries <= 8; queries++ {
			slots := splitBudget(budget, queries)
			want := budget
			if want < 1 {
				want = 1
			}
			sum := 0
			for _, w := range slots {
				if w < 1 {
					t.Errorf("budget=%d queries=%d: slot with %d workers", budget, queries, w)
				}
				sum += w
			}
			if sum != want {
				t.Errorf("budget=%d queries=%d: slots %v sum to %d, want %d", budget, queries, slots, sum, want)
			}
			if len(slots) > queries {
				t.Errorf("budget=%d queries=%d: %d slots exceed query count", budget, queries, len(slots))
			}
			if len(slots) == 0 {
				t.Fatalf("budget=%d queries=%d: no slots", budget, queries)
			}
			min, max := slots[0], slots[0]
			for _, w := range slots {
				if w < min {
					min = w
				}
				if w > max {
					max = w
				}
			}
			if max-min > 1 {
				t.Errorf("budget=%d queries=%d: uneven slots %v", budget, queries, slots)
			}
		}
	}
}

// TestParallelRace exercises the concurrent path under -race (the dedicated
// race run happens in CI via `go test -race`); here we simply ensure a
// heavily parallel run stays correct.
func TestParallelRace(t *testing.T) {
	rep, err := VerifySimplifiedConsensus(Options{Parallel: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.Outcome != spec.Holds {
			t.Errorf("%s: %v", res.Query, res.Outcome)
		}
	}
}
