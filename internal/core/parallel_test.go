package core

import (
	"testing"

	"repro/internal/spec"
)

// TestParallelMatchesSequential runs the whole pipeline with property-level
// parallelism and compares every verdict and effort statistic against the
// sequential run (the engine must be deterministic regardless of
// scheduling).
func TestParallelMatchesSequential(t *testing.T) {
	seq, err := HolisticVerification(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := HolisticVerification(Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Verified() {
		t.Fatalf("parallel pipeline did not verify:\n%s", par.Format())
	}
	compare := func(name string, a, b Report) {
		if len(a.Results) != len(b.Results) {
			t.Fatalf("%s: result counts differ", name)
		}
		for i := range a.Results {
			ra, rb := a.Results[i], b.Results[i]
			if ra.Query != rb.Query || ra.Outcome != rb.Outcome {
				t.Errorf("%s/%s: sequential %v vs parallel %v", name, ra.Query, ra.Outcome, rb.Outcome)
			}
			// Effort counters (schemas/splits) are allowed to differ
			// slightly under parallelism: concurrent engines intern fresh
			// solver symbols in interleaved order, which changes Bland-rule
			// tie-breaking and hence the case-split order — never the
			// verdict. Guard only against order-of-magnitude drift.
			if rb.Schemas > 4*ra.Schemas+16 || ra.Schemas > 4*rb.Schemas+16 {
				t.Errorf("%s/%s: effort diverged: %d vs %d splits",
					name, ra.Query, ra.Schemas, rb.Schemas)
			}
		}
	}
	compare("inner", seq.Inner, par.Inner)
	compare("outer", seq.Outer, par.Outer)
}

// TestParallelRace exercises the concurrent path under -race (the dedicated
// race run happens in CI via `go test -race`); here we simply ensure a
// heavily parallel run stays correct.
func TestParallelRace(t *testing.T) {
	rep, err := VerifySimplifiedConsensus(Options{Parallel: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.Outcome != spec.Holds {
			t.Errorf("%s: %v", res.Query, res.Outcome)
		}
	}
}
