package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/ta"
	"repro/internal/vcache"
)

// Table2Row is one line of the paper's Table 2, extended with the solver
// effort behind the verdict and the per-phase wall-clock breakdown (the
// latter observational: see schema.PhaseTimings).
type Table2Row struct {
	TA       string
	Size     ta.Size
	Property string
	Outcome  spec.Outcome
	Schemas  int
	AvgLen   float64
	Elapsed  time.Duration
	Mode     schema.Mode
	Solver   smt.Stats
	Phases   schema.PhaseTimings
}

// Table2Options selects which blocks to run.
type Table2Options struct {
	// NaiveTimeout bounds the naive block; the schema budget usually fires
	// first (default 30s).
	NaiveTimeout time.Duration
	// SkipNaive drops the naive rows entirely (for quick runs).
	SkipNaive bool
	// Stop, when set, is polled inside every check; a true return winds the
	// remaining checks down with Budget outcomes (signal handlers use it).
	Stop func() bool
	// Workers is the schema-enumeration worker count per check (0 or 1 =
	// sequential). Table 2 rows run one at a time so the timing column stays
	// meaningful; the enumeration inside each row parallelizes, with
	// deterministic schema counts and outcomes.
	Workers int
	// Trace, when non-nil, receives span events from every check.
	Trace *obs.Tracer
	// Cache, when non-nil, memoizes verdicts (see Options.Cache).
	Cache *vcache.Cache
}

// Table2 regenerates the paper's Table 2:
//
//   - the bv-broadcast block runs with FULL schema enumeration, the mode
//     whose schema counts the paper reports (BV-Just/Obl/Unif/Term);
//   - the naive consensus block runs with full enumeration and reports
//     budget exhaustion (>100,000 schemas — the paper's >24h timeout);
//   - the simplified consensus block runs with the staged engine, the
//     optimized mode corresponding to ByMC's few-schema results.
func Table2(opts Table2Options) ([]Table2Row, error) {
	if opts.NaiveTimeout == 0 {
		opts.NaiveTimeout = 30 * time.Second
	}
	var rows []Table2Row

	add := func(a *ta.TA, queries []spec.Query, names []string, mode schema.Mode, timeout time.Duration) error {
		engine, err := schema.New(a, schema.Options{Mode: mode, Timeout: timeout, Stop: opts.Stop, Workers: opts.Workers, Trace: opts.Trace})
		if err != nil {
			return err
		}
		size := a.Size()
		for i := range queries {
			if names != nil && !contains(names, queries[i].Name) {
				continue
			}
			res, _, err := CachedCheck(opts.Cache, engine, &queries[i])
			if err != nil {
				return fmt.Errorf("core: table2 %s/%s: %w", a.Name, queries[i].Name, err)
			}
			rows = append(rows, Table2Row{
				TA: a.Name, Size: size, Property: res.Query, Outcome: res.Outcome,
				Schemas: res.Schemas, AvgLen: res.AvgLen, Elapsed: res.Elapsed, Mode: mode,
				Solver: res.Solver, Phases: res.Phases,
			})
		}
		return nil
	}

	// Block 1: bv-broadcast — the four properties the paper reports.
	bv := models.BVBroadcast()
	bvq, err := models.BVQueries(bv)
	if err != nil {
		return nil, err
	}
	if err := add(bv, bvq, []string{"BV-Just0", "BV-Obl0", "BV-Unif0", "BV-Term"},
		schema.FullEnumeration, 0); err != nil {
		return nil, err
	}

	// Block 2: naive consensus — full enumeration explodes.
	if !opts.SkipNaive {
		naive := models.NaiveConsensus()
		nq, err := models.NaiveQueries(naive)
		if err != nil {
			return nil, err
		}
		if err := add(naive, nq, []string{"Inv1_0", "Inv2_0", "SRoundTerm"},
			schema.FullEnumeration, opts.NaiveTimeout); err != nil {
			return nil, err
		}
	}

	// Block 3: simplified consensus — the staged engine verifies every
	// property in well under a second each.
	simp := models.SimplifiedConsensus()
	sq, err := models.SimplifiedQueries(simp)
	if err != nil {
		return nil, err
	}
	if err := add(simp, sq, []string{"Inv1_0", "Inv2_0", "SRoundTerm", "Good_0", "Dec_0"},
		schema.Staged, 0); err != nil {
		return nil, err
	}
	return rows, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// FormatTable2 renders the rows in the layout of the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-28s %-14s %10s %10s %12s\n",
		"TA", "Size", "Property", "# schemas", "Avg len", "Time")
	b.WriteString(strings.Repeat("-", 100) + "\n")
	lastTA := ""
	for _, r := range rows {
		taCol, sizeCol := "", ""
		if r.TA != lastTA {
			taCol = r.TA
			sizeCol = fmt.Sprintf("%dg/%dloc/%drules", r.Size.UniqueGuards, r.Size.Locations, r.Size.Rules)
			lastTA = r.TA
		}
		schemas := fmt.Sprintf("%d", r.Schemas)
		avg := fmt.Sprintf("%.0f", r.AvgLen)
		elapsed := r.Elapsed.Round(time.Millisecond).String()
		if r.Outcome == spec.Budget {
			schemas = fmt.Sprintf(">%d", r.Schemas-1)
			avg = "-"
			elapsed = "timeout"
		}
		fmt.Fprintf(&b, "%-22s %-28s %-14s %10s %10s %12s\n",
			taCol, sizeCol, r.Property, schemas, avg, elapsed)
	}
	return b.String()
}
