package cluster

import "repro/internal/obs"

// Cluster metrics are observational by construction: how many leases
// expired or shards were reissued depends on wall-clock schedules and kill
// timing, never on the verdict. The deterministic report section stays
// schedule-independent; these counters land in the observational section.
var (
	obsShardsClaimed   = obs.Default.Counter("cluster", "shards_claimed")
	obsShardsDone      = obs.Default.Counter("cluster", "shards_done")
	obsShardsLocal     = obs.Default.Counter("cluster", "shards_local")
	obsShardsCancelled = obs.Default.Counter("cluster", "shards_cancelled")
	obsLeasesExpired   = obs.Default.Counter("cluster", "leases_expired")
	obsShardsReissued  = obs.Default.Counter("cluster", "shards_reissued")
	obsDuplicateReport = obs.Default.Counter("cluster", "duplicate_reports")
	obsJobsCompleted   = obs.Default.Counter("cluster", "jobs_completed")
)
