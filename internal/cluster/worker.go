package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/schema"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/ta"
	"repro/internal/vcache"
	"repro/internal/wal"
)

// Worker is one shard-solving daemon: claim, solve, heartbeat, report,
// repeat. It holds no durable state — a worker crash loses nothing but the
// lease, which the coordinator's sweeper reclaims. Solved shards are cached
// in memory by content hash behind a singleflight gate, so a reissued
// duplicate of a shard this worker already solved (or is solving) costs a
// lookup, not a re-solve; with CacheDir set the cache also persists, so even
// a restarted worker answers reissues of its old shards from disk.
type Worker struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// ID names this worker in leases and journal records.
	ID string
	// Workers is the solver thread count per shard (default 1).
	Workers int
	// Client is the shared retrying HTTP client (default: RetryTransport on
	// — a worker must ride out a coordinator restart, not die with it).
	Client *service.HTTPClient
	// PollInterval paces claim attempts when there is no work (default
	// 200ms; the coordinator's Retry-After hint stretches it).
	PollInterval time.Duration
	// Stop ends the run loop at the next poll when it returns true.
	Stop func() bool
	// Logf receives progress lines (default: silent).
	Logf func(format string, args ...any)
	// CacheDir, when set, persists solved shards as CRC-framed files keyed
	// by shard content hash, so the cache survives worker restarts. Disk
	// failures degrade to the in-memory cache; a corrupt entry is deleted
	// and re-solved.
	CacheDir string

	mu      sync.Mutex
	jobs    map[string]*workerJob
	results map[string][]WireRecord
	flight  map[string]chan struct{}

	// ShardsSolved counts shards this worker solved (not cache hits); the
	// torture harness uses it to prove work actually distributed.
	ShardsSolved atomic.Int64
}

// workerJob caches one job's resolved plan.
type workerJob struct {
	a    *ta.TA
	q    *spec.Query
	plan *schema.FullPlan
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) client() *service.HTTPClient {
	if w.Client == nil {
		w.Client = &service.HTTPClient{RetryTransport: true, Logf: w.Logf}
	}
	return w.Client
}

func (w *Worker) poll() time.Duration {
	if w.PollInterval > 0 {
		return w.PollInterval
	}
	return 200 * time.Millisecond
}

func (w *Worker) stopping(ctx context.Context) bool {
	if ctx.Err() != nil {
		return true
	}
	return w.Stop != nil && w.Stop()
}

// Run claims and solves shards until the context ends or Stop trips.
// Transport failures never kill the loop: the claim just retries on the poll
// cadence, which is what lets a worker outlive coordinator restarts and
// network partitions.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" {
		w.ID = fmt.Sprintf("worker-%d", time.Now().UnixNano())
	}
	w.mu.Lock()
	if w.jobs == nil {
		w.jobs = make(map[string]*workerJob)
		w.results = make(map[string][]WireRecord)
		w.flight = make(map[string]chan struct{})
	}
	w.mu.Unlock()
	if w.CacheDir != "" {
		if err := os.MkdirAll(w.CacheDir, 0o755); err != nil {
			w.logf("work %s: shard cache at %s unavailable (%v); running memory-only", w.ID, w.CacheDir, err)
			w.CacheDir = ""
		}
	}
	for {
		if w.stopping(ctx) {
			return ctx.Err()
		}
		var cr ClaimResponse
		status, err := w.client().PostJSON(ctx, w.Coordinator+"/v1/cluster/claim", claimRequest{Worker: w.ID}, &cr)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case err != nil:
			w.logf("work %s: claim failed (%v); repolling", w.ID, err)
			fallthrough
		case status == http.StatusNoContent:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.poll()):
			}
			continue
		}
		if err := w.solveShard(ctx, &cr); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Abandoning the shard is always safe: the lease expires and the
			// coordinator reissues it.
			w.logf("work %s: job %s shard %d abandoned: %v", w.ID, cr.Job, cr.Shard, err)
		}
	}
}

// jobFor resolves (once) the plan for a job, validating that this worker's
// analysis reproduces the coordinator's guard alphabet — a mismatched
// fingerprint means the two binaries would disagree on what every context
// index denotes, and solving anything would be silent corruption.
func (w *Worker) jobFor(ctx context.Context, jobID string) (*workerJob, error) {
	w.mu.Lock()
	wj, ok := w.jobs[jobID]
	w.mu.Unlock()
	if ok {
		return wj, nil
	}
	var pr PayloadResponse
	if _, err := w.client().GetJSON(ctx, w.Coordinator+"/v1/cluster/jobs/"+jobID+"/payload", &pr); err != nil {
		return nil, fmt.Errorf("fetching payload: %w", err)
	}
	a, _, q, err := pr.Payload.Resolve()
	if err != nil {
		return nil, err
	}
	workers := w.Workers
	if workers < 1 {
		workers = 1
	}
	eng, err := schema.New(a, schema.Options{Mode: schema.FullEnumeration, Workers: workers})
	if err != nil {
		return nil, err
	}
	plan, err := eng.PlanFull(q)
	if err != nil {
		return nil, err
	}
	keys := plan.AlphabetKeys()
	if len(keys) != len(pr.Alphabet) {
		return nil, fmt.Errorf("alphabet fingerprint mismatch: %d guards here, %d at coordinator", len(keys), len(pr.Alphabet))
	}
	for i := range keys {
		if keys[i] != pr.Alphabet[i] {
			return nil, fmt.Errorf("alphabet fingerprint mismatch at %d: %q here, %q at coordinator", i, keys[i], pr.Alphabet[i])
		}
	}
	wj = &workerJob{a: eng.TA(), q: q, plan: plan}
	w.mu.Lock()
	w.jobs[jobID] = wj
	w.mu.Unlock()
	return wj, nil
}

// solveShard runs one claimed shard end to end: validate, solve under a
// heartbeat, report by content hash.
func (w *Worker) solveShard(ctx context.Context, cr *ClaimResponse) error {
	wj, err := w.jobFor(ctx, cr.Job)
	if err != nil {
		return err
	}
	if got := shardHash(cr.Job, cr.Base, cr.Contexts); got != cr.Hash {
		return fmt.Errorf("shard content hashes to %s, claim says %s", got, cr.Hash)
	}
	if err := wj.plan.ValidContexts(cr.Contexts); err != nil {
		return err
	}

	wrecs, err := w.solveCached(ctx, wj, cr)
	if err != nil || wrecs == nil {
		return err
	}
	status, err := w.client().PostJSON(ctx, w.Coordinator+"/v1/cluster/result", &resultRequest{
		Job: cr.Job, Shard: cr.Shard, Hash: cr.Hash,
		Lease: cr.Lease, Worker: w.ID, Records: wrecs,
	}, nil)
	if err != nil {
		return fmt.Errorf("reporting (status %d): %w", status, err)
	}
	w.logf("work %s: job %s shard %d reported (%d records)", w.ID, cr.Job, cr.Shard, len(wrecs))
	return nil
}

// solveCached returns the shard's records from the content-addressed cache,
// joins an in-flight solve of the same hash, or solves. A nil, nil return
// means the solve was abandoned (lease lost or stop).
func (w *Worker) solveCached(ctx context.Context, wj *workerJob, cr *ClaimResponse) ([]WireRecord, error) {
	w.mu.Lock()
	if recs, ok := w.results[cr.Hash]; ok {
		w.mu.Unlock()
		return recs, nil
	}
	if recs, ok := w.diskLoad(cr.Hash); ok {
		w.results[cr.Hash] = recs
		w.mu.Unlock()
		return recs, nil
	}
	if ch, ok := w.flight[cr.Hash]; ok {
		w.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		w.mu.Lock()
		recs := w.results[cr.Hash]
		w.mu.Unlock()
		return recs, nil // nil if the first flight abandoned; caller drops too
	}
	ch := make(chan struct{})
	w.flight[cr.Hash] = ch
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.flight, cr.Hash)
		w.mu.Unlock()
		close(ch)
	}()

	// Heartbeat at TTL/3 while solving. A Gone lease stops the solve: the
	// shard was reissued, cancelled, or completed elsewhere, so finishing it
	// here buys nothing. (A *partitioned* worker is different: heartbeats
	// fail at the transport, lost stays false, and the worker solves on and
	// reports late — the coordinator accepts the records by content hash.)
	var lost atomic.Bool
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	ttl := time.Duration(cr.TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = 3 * time.Second
	}
	go func() {
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				status, _ := w.client().PostJSON(hbCtx, w.Coordinator+"/v1/cluster/heartbeat", &heartbeatRequest{
					Job: cr.Job, Shard: cr.Shard, Lease: cr.Lease,
				}, nil)
				if status == http.StatusGone {
					lost.Store(true)
					return
				}
			}
		}
	}()

	workers := w.Workers
	if workers < 1 {
		workers = 1
	}
	stop := func() bool { return lost.Load() || w.stopping(ctx) }
	recs, interrupted, err := wj.plan.SolveRange(cr.Contexts, cr.Base, workers, stop)
	if err != nil {
		return nil, fmt.Errorf("solving: %w", err)
	}
	if interrupted {
		if lost.Load() {
			w.logf("work %s: job %s shard %d lease gone; abandoning", w.ID, cr.Job, cr.Shard)
			return nil, nil
		}
		return nil, fmt.Errorf("solve interrupted")
	}
	wrecs := encodeRecords(wj.a, recs)
	w.mu.Lock()
	w.results[cr.Hash] = wrecs
	w.mu.Unlock()
	w.ShardsSolved.Add(1)
	w.diskStore(cr.Hash, wrecs)
	return wrecs, nil
}

func (w *Worker) shardPath(hash string) string {
	return filepath.Join(w.CacheDir, hash+".shard")
}

// diskLoad reads a persisted shard by content hash. The caller holds w.mu;
// the read is cheap and a worker restart is exactly when it pays off. Any
// damage (torn write, bit rot, wrong shape) deletes the entry and reports a
// miss — the shard is simply re-solved.
func (w *Worker) diskLoad(hash string) ([]WireRecord, bool) {
	if w.CacheDir == "" {
		return nil, false
	}
	data, err := os.ReadFile(w.shardPath(hash))
	if err != nil {
		return nil, false
	}
	payload, err := wal.ParseRecord(data)
	if err == nil {
		var recs []WireRecord
		if jerr := json.Unmarshal(payload, &recs); jerr == nil {
			return recs, true
		}
		err = fmt.Errorf("decoding records: invalid JSON payload")
	}
	w.logf("work %s: shard cache entry %s corrupt (%v); re-solving", w.ID, hash, err)
	os.Remove(w.shardPath(hash))
	return nil, false
}

// diskStore persists one solved shard. Failures cost durability, not
// correctness, so they log and move on.
func (w *Worker) diskStore(hash string, recs []WireRecord) {
	if w.CacheDir == "" {
		return
	}
	payload, err := json.Marshal(recs)
	if err == nil {
		err = vcache.AtomicWrite(w.CacheDir, w.shardPath(hash), wal.FrameRecord(payload))
	}
	if err != nil {
		w.logf("work %s: persisting shard %s failed: %v", w.ID, hash, err)
	}
}
