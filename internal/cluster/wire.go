package cluster

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/ta"
	"repro/internal/vcache"
)

// WireRecord is the JSON form of one schema.IndexRecord as it crosses the
// worker→coordinator boundary and enters the journal. Counterexamples travel
// in the vcache.CEData shape (parameters by name, positional init/steps) and
// are re-certified by replay on decode — neither a worker's report nor a
// journal frame is ever trusted to carry a violation without proof.
type WireRecord struct {
	Done   bool               `json:"done"`
	Status string             `json:"status,omitempty"`
	Slots  int                `json:"slots,omitempty"`
	Stats  vcache.SolverStats `json:"stats"`
	CE     *vcache.CEData     `json:"ce,omitempty"`
}

func statusLabel(st smt.Status) string {
	switch st {
	case smt.Sat:
		return "sat"
	case smt.Unsat:
		return "unsat"
	case smt.Unknown:
		return "unknown"
	default:
		return ""
	}
}

func parseStatus(s string) (smt.Status, error) {
	switch s {
	case "sat":
		return smt.Sat, nil
	case "unsat":
		return smt.Unsat, nil
	case "unknown":
		return smt.Unknown, nil
	default:
		return 0, fmt.Errorf("cluster: unknown solver status %q", s)
	}
}

// encodeRecords serializes a shard's per-index records for reporting or
// journaling. The automaton is needed to name counterexample parameters.
func encodeRecords(a *ta.TA, recs []schema.IndexRecord) []WireRecord {
	out := make([]WireRecord, len(recs))
	for i, r := range recs {
		if !r.Done {
			continue
		}
		out[i] = WireRecord{
			Done:   true,
			Status: statusLabel(r.Status),
			Slots:  r.Slots,
			Stats: vcache.SolverStats{
				LPChecks:  r.Stats.LPChecks,
				Pivots:    r.Stats.Pivots,
				Rebuilds:  r.Stats.Rebuilds,
				BBNodes:   r.Stats.BBNodes,
				CaseSplit: r.Stats.CaseSplit,
			},
		}
		if r.CE != nil {
			ce := &vcache.CEData{
				Params: make(map[string]int64, len(a.Params)),
				InitK:  append([]int64(nil), r.CE.Run.Init.K...),
				InitV:  append([]int64(nil), r.CE.Run.Init.V...),
				Schema: append([]string(nil), r.CE.Schema...),
			}
			for _, p := range a.Params {
				ce.Params[a.Table.Name(p)] = r.CE.Params[p]
			}
			for _, st := range r.CE.Run.Steps {
				ce.Steps = append(ce.Steps, vcache.CEStep{Rule: st.Rule, Factor: st.Factor})
			}
			out[i].CE = ce
		}
	}
	return out
}

// decodeRecords rebuilds per-index records from the wire, re-certifying any
// Sat record's counterexample against the automaton and query by concrete
// replay (schema.Certify). A Sat record without a replayable counterexample
// is rejected outright: accepting it would let a faulty worker or a corrupt
// journal frame fabricate a Violated verdict.
func decodeRecords(a *ta.TA, q *spec.Query, wrecs []WireRecord) ([]schema.IndexRecord, error) {
	recs := make([]schema.IndexRecord, len(wrecs))
	for i, wr := range wrecs {
		if !wr.Done {
			continue
		}
		st, err := parseStatus(wr.Status)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		recs[i] = schema.IndexRecord{
			Done:   true,
			Status: st,
			Slots:  wr.Slots,
			Stats: smt.Stats{
				LPChecks:  wr.Stats.LPChecks,
				Pivots:    wr.Stats.Pivots,
				Rebuilds:  wr.Stats.Rebuilds,
				BBNodes:   wr.Stats.BBNodes,
				CaseSplit: wr.Stats.CaseSplit,
			},
		}
		if st == smt.Sat {
			if wr.CE == nil {
				return nil, fmt.Errorf("record %d: sat without a counterexample", i)
			}
			ce, err := decodeCE(a, q, wr.CE)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i, err)
			}
			recs[i].CE = ce
		}
	}
	return recs, nil
}

func decodeCE(a *ta.TA, q *spec.Query, d *vcache.CEData) (*schema.Counterexample, error) {
	params := make(map[expr.Sym]int64, len(d.Params))
	for name, v := range d.Params {
		s := a.Table.Lookup(name)
		if s == expr.NoSym {
			return nil, fmt.Errorf("counterexample parameter %q unknown to automaton %s", name, a.Name)
		}
		params[s] = v
	}
	run := counter.Run{
		Init: counter.Config{
			K: append([]int64(nil), d.InitK...),
			V: append([]int64(nil), d.InitV...),
		},
	}
	for _, st := range d.Steps {
		run.Steps = append(run.Steps, counter.Step{Rule: st.Rule, Factor: st.Factor})
	}
	sys, err := schema.Certify(a, q, params, run)
	if err != nil {
		return nil, fmt.Errorf("counterexample failed re-certification: %w", err)
	}
	return &schema.Counterexample{
		Params: params,
		Run:    run,
		System: sys,
		Schema: append([]string(nil), d.Schema...),
	}, nil
}
