package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/vcache"
)

// Wire types of the coordinator's HTTP plane. Everything here is
// coordination metadata plus WireRecords; the verdict-bearing records are
// re-certified on arrival, so the transport carries no trusted state.

type claimRequest struct {
	Worker string `json:"worker"`
}

// ClaimResponse hands a worker one leased shard: the contexts to solve, the
// content hash to report under, and the lease to heartbeat.
type ClaimResponse struct {
	Job      string  `json:"job"`
	Shard    int     `json:"shard"`
	Base     int     `json:"base"`
	Attempt  int     `json:"attempt"`
	Contexts [][]int `json:"contexts"`
	Hash     string  `json:"hash"`
	Lease    string  `json:"lease"`
	TTLMS    int64   `json:"ttl_ms"`
}

type heartbeatRequest struct {
	Job   string `json:"job"`
	Shard int    `json:"shard"`
	Lease string `json:"lease"`
}

type resultRequest struct {
	Job     string       `json:"job"`
	Shard   int          `json:"shard"`
	Hash    string       `json:"hash"`
	Lease   string       `json:"lease"`
	Worker  string       `json:"worker"`
	Records []WireRecord `json:"records"`
}

// PayloadResponse describes a job to a worker: the payload to resolve and
// the alphabet fingerprint the worker must reproduce before trusting any
// guard-index context from this coordinator.
type PayloadResponse struct {
	Job       string     `json:"job"`
	Payload   JobPayload `json:"payload"`
	Alphabet  []string   `json:"alphabet"`
	Shards    int        `json:"shards"`
	Contexts  int        `json:"contexts"`
	Truncated bool       `json:"truncated"`
}

// JobStatus is the poll surface for submitters and smoke tests.
type JobStatus struct {
	Job             string `json:"job"`
	Model           string `json:"model"`
	Query           string `json:"query"`
	Done            bool   `json:"done"`
	Error           string `json:"error,omitempty"`
	ShardsTotal     int    `json:"shards_total"`
	ShardsDone      int    `json:"shards_done"`
	ShardsCancelled int    `json:"shards_cancelled"`
	Reissues        int    `json:"reissues"`

	Outcome string             `json:"outcome,omitempty"`
	Schemas int                `json:"schemas,omitempty"`
	AvgLen  float64            `json:"avg_len,omitempty"`
	Solver  vcache.SolverStats `json:"solver,omitempty"`
	CEText  string             `json:"ce_text,omitempty"`
}

var (
	errNoJob        = errors.New("unknown job")
	errNoShard      = errors.New("unknown shard")
	errHashMismatch = errors.New("shard content hash mismatch")
	errBadRecords   = errors.New("malformed shard records")
)

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

// Handler mounts the cluster coordination API:
//
//	POST /v1/cluster/jobs        submit a payload (idempotent), returns {"job": id}
//	GET  /v1/cluster/jobs/{id}          job status and, once done, the verdict
//	GET  /v1/cluster/jobs/{id}/payload  payload + alphabet fingerprint
//	POST /v1/cluster/claim       claim a shard (200) or nothing to do (204)
//	POST /v1/cluster/heartbeat   extend a lease (200) or learn it is gone (410)
//	POST /v1/cluster/result      report a solved shard's records
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/cluster/jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/cluster/jobs/{id}/payload", c.handlePayload)
	mux.HandleFunc("POST /v1/cluster/claim", c.handleClaim)
	mux.HandleFunc("POST /v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/cluster/result", c.handleResult)
	return mux
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var p JobPayload
	if !decodeBody(w, r, &p) {
		return
	}
	id, err := c.Submit(p)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"job": id})
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "claim names no worker")
		return
	}
	resp := c.claim(req.Worker)
	if resp == nil {
		// Nothing claimable right now (all leased, backing off, or no jobs).
		// 204 + Retry-After is the poll contract; the shared client treats
		// 204 as success, so workers sleep rather than burn the retry budget.
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if c.heartbeat(req.Job, req.Lease, req.Shard) {
		w.WriteHeader(http.StatusOK)
		return
	}
	writeError(w, http.StatusGone, "lease %s on job %s shard %d is gone", req.Lease, req.Job, req.Shard)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if !decodeBody(w, r, &req) {
		return
	}
	switch err := c.report(&req); {
	case err == nil:
		w.WriteHeader(http.StatusOK)
	case errors.Is(err, errNoJob) || errors.Is(err, errNoShard):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, errHashMismatch):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (c *Coordinator) handlePayload(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	writeJSON(w, http.StatusOK, PayloadResponse{
		Job: j.id, Payload: j.payload,
		Alphabet: j.plan.AlphabetKeys(),
		Shards:   len(j.shards), Contexts: len(j.ctxs), Truncated: j.truncated,
	})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := c.StatusOf(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
