package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"testing"
	"time"

	"repro/internal/schema"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/wal"
)

// toyTA is a deliberately broken automaton whose BAD location is reachable
// through one guard unlock: full enumeration yields exactly two contexts
// ([] and [x>=1]) with a certified Sat at preorder index 1 — the cheapest
// possible full-mode Violated, used to exercise the counterexample wire
// round-trip (encode → re-certify → fold) end to end.
const toyTA = `automaton toy {
  parameters n, t, f;
  resilience n >= 3*t + 1, t >= f, f >= 0, t >= 1;
  correct n - f;
  shared x;
  initial A, Z;
  locations B, BAD;

  rule r1: A -> B do x += 1;
  rule r2: B -> BAD when x >= 1;
  self B;
  self BAD;
}`

// The premise pins the unused initial location Z empty (the compiler wants
// safety properties as implications); the conclusion is plainly violated.
const toySpec = `bad_unreach: [](locZ == 0) -> [](locBAD == 0);`

// localReference computes the single-box `-j N` result the cluster must
// reproduce byte-identically.
func localReference(t *testing.T, p JobPayload) (schema.Result, string) {
	t.Helper()
	a, label, q, err := p.Resolve()
	if err != nil {
		t.Fatalf("resolving payload: %v", err)
	}
	eng, err := schema.New(a, schema.Options{
		Mode:       schema.FullEnumeration,
		MaxSchemas: p.MaxSchemas,
		Workers:    runtime.NumCPU(),
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	res, err := eng.Check(q)
	if err != nil {
		t.Fatalf("local reference check: %v", err)
	}
	return res, label
}

// serveCoordinator exposes a coordinator over a real TCP listener.
func serveCoordinator(t *testing.T, c *Coordinator) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := service.HardenServer(&http.Server{Handler: c.Handler()})
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return "http://" + ln.Addr().String()
}

func startWorker(t *testing.T, base, id string, threads int) (*Worker, context.CancelFunc) {
	t.Helper()
	w := &Worker{
		Coordinator:  base,
		ID:           id,
		Workers:      threads,
		PollInterval: 10 * time.Millisecond,
		Client: &service.HTTPClient{
			MaxAttempts: 3, BaseDelay: 5 * time.Millisecond,
			MaxDelay: 20 * time.Millisecond, RetryTransport: true,
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return w, cancel
}

// The headline guarantee on the happy path: a 3-worker cluster reproduces
// the single-box result byte for byte (report row + counterexample), for a
// Holds query and for a Violated one.
func TestClusterMatchesLocal(t *testing.T) {
	for _, tc := range []struct {
		name    string
		payload JobPayload
	}{
		{"bv-holds", JobPayload{Model: "bv", Prop: "BV-Just0"}},
		{"toy-violated", JobPayload{TA: toyTA, Spec: toySpec, Prop: "bad_unreach"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, label := localReference(t, tc.payload)
			c, err := New(Config{
				LeaseTTL:       time.Second,
				ShardSize:      8,
				Seed:           7,
				IdleLocalAfter: time.Hour, // workers must do the work
			})
			if err != nil {
				t.Fatalf("coordinator: %v", err)
			}
			defer c.Close()
			base := serveCoordinator(t, c)
			for i := 0; i < 3; i++ {
				startWorker(t, base, fmt.Sprintf("w%d", i), 2)
			}
			id, err := c.Submit(tc.payload)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			got, err := c.Wait(ctx, id)
			if err != nil {
				t.Fatalf("cluster job failed: %v", err)
			}
			if diff := CompareResults(label, ref, got); diff != "" {
				t.Fatalf("cluster verdict diverged from single-box:\n%s", diff)
			}
			if tc.name == "toy-violated" {
				if got.Outcome != spec.Violated || got.CE == nil {
					t.Fatalf("toy job: outcome %v, CE %v; want a certified violation", got.Outcome, got.CE)
				}
			}
		})
	}
}

// A worker that claims a shard and dies mid-solve must lose its lease; the
// shard is reissued and the verdict is byte-identical to an uninterrupted
// run. The journal must prove the reissue: assign(attempt 1) → expire →
// assign(attempt 2) for the abandoned shard.
func TestLeaseExpiryReissueDeterminism(t *testing.T) {
	payload := JobPayload{Model: "bv", Prop: "BV-Just0"}
	ref, label := localReference(t, payload)
	memfs := wal.NewMemFS()
	c, err := New(Config{
		LeaseTTL:       120 * time.Millisecond,
		SweepEvery:     20 * time.Millisecond,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       20 * time.Millisecond,
		ShardSize:      16,
		Seed:           11,
		MaxAttempts:    5,
		IdleLocalAfter: time.Hour,
		JournalDir:     "j",
		JournalFS:      memfs,
		JournalSync:    wal.SyncNever,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()

	id, err := c.Submit(payload)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// The doomed worker: claims one shard and is never heard from again —
	// the coordinator cannot tell this from a crash, a hang, or a partition,
	// which is the point.
	doomed := c.claim("doomed")
	if doomed == nil {
		t.Fatalf("no shard claimable")
	}
	// Wait out the lease.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		state := c.jobs[id].shards[doomed.Shard].state
		c.mu.Unlock()
		if state == shardPending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}

	base := serveCoordinator(t, c)
	startWorker(t, base, "healthy", 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatalf("cluster job failed: %v", err)
	}
	if diff := CompareResults(label, ref, got); diff != "" {
		t.Fatalf("verdict after kill-mid-shard diverged:\n%s", diff)
	}
	if st, _ := c.StatusOf(id); st.Reissues < 1 {
		t.Fatalf("status reports %d reissues, want >= 1", st.Reissues)
	}

	// Journal assertion: the doomed shard's history must read
	// assign(doomed, attempt 1) → expire → assign(attempt 2).
	recs, err := ReadJournal(memfs, "j")
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	var history []string
	for _, r := range recs {
		if r.Job == id && r.Shard == doomed.Shard && (r.T == recAssign || r.T == recExpire) {
			history = append(history, fmt.Sprintf("%s:%d", r.T, r.Attempt))
		}
	}
	if len(history) < 3 || history[0] != "assign:1" || history[1] != "expire:1" || history[2] != "assign:2" {
		t.Fatalf("journal does not prove the reissue: shard %d history %v", doomed.Shard, history)
	}
}

// A coordinator killed mid-job must resume from its journal: completed
// shards stay completed (their records are re-integrated, counterexamples
// re-certified), leases are void, and finishing the job yields the
// single-box verdict.
func TestCoordinatorRestartResume(t *testing.T) {
	payload := JobPayload{Model: "bv", Prop: "BV-Just0"}
	ref, label := localReference(t, payload)
	memfs := wal.NewMemFS()
	cfg := Config{
		LeaseTTL:       200 * time.Millisecond,
		SweepEvery:     20 * time.Millisecond,
		ShardSize:      16,
		Seed:           13,
		IdleLocalAfter: time.Hour,
		JournalDir:     "j",
		JournalFS:      memfs,
		JournalSync:    wal.SyncNever,
	}
	c1, err := New(cfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	id, err := c1.Submit(payload)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Solve exactly two shards through the real claim/report path, then
	// "crash" (close without finishing).
	a, _, q, _ := payload.Resolve()
	eng, _ := schema.New(a, schema.Options{Mode: schema.FullEnumeration, Workers: 2})
	plan, _ := eng.PlanFull(q)
	for i := 0; i < 2; i++ {
		cr := c1.claim("prequake")
		if cr == nil {
			t.Fatalf("claim %d failed", i)
		}
		recs, _, err := plan.SolveRange(cr.Contexts, cr.Base, 2, nil)
		if err != nil {
			t.Fatalf("solving shard: %v", err)
		}
		if err := c1.report(&resultRequest{
			Job: cr.Job, Shard: cr.Shard, Hash: cr.Hash,
			Lease: cr.Lease, Worker: "prequake", Records: encodeRecords(eng.TA(), recs),
		}); err != nil {
			t.Fatalf("reporting shard: %v", err)
		}
	}
	// A third shard is claimed but never reported: its lease must be void
	// after the restart.
	if cr := c1.claim("prequake"); cr == nil {
		t.Fatalf("third claim failed")
	}
	c1.Close()

	c2, err := New(cfg)
	if err != nil {
		t.Fatalf("reopening coordinator from journal: %v", err)
	}
	defer c2.Close()
	st, ok := c2.StatusOf(id)
	if !ok {
		t.Fatalf("job %s lost across restart", id)
	}
	if st.ShardsDone != 2 {
		t.Fatalf("resumed job has %d done shards, want 2", st.ShardsDone)
	}
	c2.mu.Lock()
	for _, s := range c2.jobs[id].shards {
		if s.state == shardLeased {
			c2.mu.Unlock()
			t.Fatalf("shard %d still leased after restart; leases must be void", s.idx)
		}
	}
	c2.mu.Unlock()

	base := serveCoordinator(t, c2)
	startWorker(t, base, "postquake", 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := c2.Wait(ctx, id)
	if err != nil {
		t.Fatalf("resumed job failed: %v", err)
	}
	if diff := CompareResults(label, ref, got); diff != "" {
		t.Fatalf("verdict after coordinator restart diverged:\n%s", diff)
	}
}

// The bottom of the degradation ladder: no worker ever connects, and the
// coordinator notices the silent pool and solves everything itself — same
// verdict.
func TestDegradesToLocalWithoutWorkers(t *testing.T) {
	payload := JobPayload{TA: toyTA, Spec: toySpec, Prop: "bad_unreach"}
	ref, label := localReference(t, payload)
	c, err := New(Config{
		LeaseTTL:       100 * time.Millisecond,
		SweepEvery:     10 * time.Millisecond,
		ShardSize:      1,
		Seed:           17,
		IdleLocalAfter: 50 * time.Millisecond,
		LocalWorkers:   2,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()
	id, err := c.Submit(payload)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatalf("degraded job failed: %v", err)
	}
	if diff := CompareResults(label, ref, got); diff != "" {
		t.Fatalf("degraded-local verdict diverged:\n%s", diff)
	}
}

// Truncated prefix jobs: a Sat inside the prefix is a certified Violated
// identical to the untruncated run; a Sat-free prefix folds to the same
// Budget row (zeroed volatile fields) the structural cutoff produces.
func TestTruncatedJobs(t *testing.T) {
	// Sat at preorder index 1 < truncate: full violation survives truncation.
	vp := JobPayload{TA: toyTA, Spec: toySpec, Prop: "bad_unreach", Truncate: 2}
	ref, label := localReference(t, JobPayload{TA: toyTA, Spec: toySpec, Prop: "bad_unreach"})
	c, err := New(Config{ShardSize: 1, Seed: 19, IdleLocalAfter: 20 * time.Millisecond, LocalWorkers: 2})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()
	id, err := c.Submit(vp)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatalf("truncated job failed: %v", err)
	}
	if diff := CompareResults(label, ref, got); diff != "" {
		t.Fatalf("truncated-with-Sat verdict diverged from full run:\n%s", diff)
	}

	// Sat-free prefix: bv BV-Just0 truncated to 16 of its 65 contexts must
	// report Budget with the cutoff's "limit+1" schema count.
	bp := JobPayload{Model: "bv", Prop: "BV-Just0", Truncate: 16}
	id2, err := c.Submit(bp)
	if err != nil {
		t.Fatalf("submit truncated bv: %v", err)
	}
	got2, err := c.Wait(ctx, id2)
	if err != nil {
		t.Fatalf("truncated bv job failed: %v", err)
	}
	if got2.Outcome != spec.Budget || got2.Schemas != 17 {
		t.Fatalf("truncated bv: outcome %v schemas %d, want budget-exceeded/17", got2.Outcome, got2.Schemas)
	}
}

// Submitting a payload twice lands on the same content-addressed job.
func TestSubmitIdempotent(t *testing.T) {
	c, err := New(Config{ShardSize: 8, IdleLocalAfter: time.Hour})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()
	p := JobPayload{Model: "bv", Prop: "BV-Just0"}
	id1, err := c.Submit(p)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	id2, err := c.Submit(p)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if id1 != id2 {
		t.Fatalf("resubmission created a new job: %s vs %s", id1, id2)
	}
}

// A report under a wrong content hash must be rejected, and a duplicate
// report of a completed shard must be acknowledged without corrupting state.
func TestReportHashAndDuplicates(t *testing.T) {
	payload := JobPayload{TA: toyTA, Spec: toySpec, Prop: "bad_unreach"}
	c, err := New(Config{ShardSize: 1, Seed: 23, IdleLocalAfter: time.Hour})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer c.Close()
	if _, err := c.Submit(payload); err != nil {
		t.Fatalf("submit: %v", err)
	}
	cr := c.claim("w")
	if cr == nil {
		t.Fatalf("claim failed")
	}
	a, _, q, _ := payload.Resolve()
	eng, _ := schema.New(a, schema.Options{Mode: schema.FullEnumeration})
	plan, _ := eng.PlanFull(q)
	recs, _, err := plan.SolveRange(cr.Contexts, cr.Base, 1, nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	wrecs := encodeRecords(eng.TA(), recs)
	bad := &resultRequest{Job: cr.Job, Shard: cr.Shard, Hash: "s-bogus", Worker: "w", Records: wrecs}
	if err := c.report(bad); err == nil {
		t.Fatalf("report under a bogus content hash was accepted")
	}
	good := &resultRequest{Job: cr.Job, Shard: cr.Shard, Hash: cr.Hash, Worker: "w", Records: wrecs}
	if err := c.report(good); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
	if err := c.report(good); err != nil {
		t.Fatalf("duplicate report not acknowledged: %v", err)
	}
	if n := obsDuplicateReport.Load(); n < 1 {
		t.Fatalf("duplicate report not counted (%d)", n)
	}
}

// A restarted worker with the same CacheDir answers reissues of shards it
// already solved from disk: the second incarnation solves nothing, and the
// verdict still byte-matches the single-box reference.
func TestWorkerCacheDirSurvivesRestart(t *testing.T) {
	payload := JobPayload{Model: "bv", Prop: "BV-Just0"}
	ref, label := localReference(t, payload)
	cacheDir := t.TempDir()
	run := func(name string) (*Worker, schema.Result) {
		c, err := New(Config{
			LeaseTTL: time.Second, ShardSize: 8, Seed: 7,
			IdleLocalAfter: time.Hour,
		})
		if err != nil {
			t.Fatalf("%s coordinator: %v", name, err)
		}
		defer c.Close()
		base := serveCoordinator(t, c)
		w := &Worker{
			Coordinator: base, ID: name, Workers: 2,
			PollInterval: 10 * time.Millisecond,
			CacheDir:     cacheDir,
			Client: &service.HTTPClient{
				MaxAttempts: 3, BaseDelay: 5 * time.Millisecond,
				MaxDelay: 20 * time.Millisecond, RetryTransport: true,
			},
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { defer close(done); w.Run(ctx) }()
		defer func() { cancel(); <-done }()
		id, err := c.Submit(payload)
		if err != nil {
			t.Fatalf("%s submit: %v", name, err)
		}
		wctx, wcancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer wcancel()
		got, err := c.Wait(wctx, id)
		if err != nil {
			t.Fatalf("%s job failed: %v", name, err)
		}
		return w, got
	}

	w1, got1 := run("cold")
	if diff := CompareResults(label, ref, got1); diff != "" {
		t.Fatalf("cold verdict diverged:\n%s", diff)
	}
	if w1.ShardsSolved.Load() == 0 {
		t.Fatalf("cold worker solved nothing; the cache was never populated")
	}

	// Same payload → same content-addressed job ID, same shard boundaries
	// (ShardSize and Seed match) → same shard hashes: a fresh worker process
	// on the same CacheDir must serve every shard from disk.
	w2, got2 := run("warm")
	if diff := CompareResults(label, ref, got2); diff != "" {
		t.Fatalf("warm verdict diverged:\n%s", diff)
	}
	if n := w2.ShardsSolved.Load(); n != 0 {
		t.Fatalf("restarted worker re-solved %d shards despite a warm CacheDir", n)
	}
}
