package cluster

import (
	"testing"
)

// TestTortureCampaign drives seeded kill/restart/partition/coordinator-crash
// schedules against a live cluster and requires every run's verdict to be
// byte-identical to the single-box reference. Short mode runs a dozen
// schedules; the full run covers 100+ so lease expiry, reissue backoff, and
// journal resume all see real traffic. Each violation logs its seed — rerun
// with BaseSeed=<seed>, Runs=1 to replay that schedule exactly.
func TestTortureCampaign(t *testing.T) {
	cfg := TortureConfig{
		Payload:  JobPayload{Model: "bv", Prop: "BV-Just0"},
		Runs:     100,
		BaseSeed: 1,
		Parallel: 8,
		Verbose:  t.Logf,
	}
	if testing.Short() {
		cfg.Runs, cfg.Parallel = 12, 4
	}
	res, err := Torture(cfg)
	if err != nil {
		t.Fatalf("torture campaign: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("cluster torture violation: %s (replay: BaseSeed=%d Runs=1)", v, v.Seed)
	}
	if res.Reissues == 0 {
		t.Errorf("campaign drove no shard reissues; schedules never exercised lease recovery")
	}
	t.Log(res.String())
}

// TestTortureToyWithCE runs a smaller campaign against the toy model whose
// verdict is Violated: this pins counterexample bytes (params, run, schema
// text) across crash schedules, not just the Unsat fold.
func TestTortureToyWithCE(t *testing.T) {
	cfg := TortureConfig{
		Payload:   JobPayload{TA: toyTA, Spec: toySpec, Prop: "bad_unreach"},
		Runs:      24,
		BaseSeed:  7_000,
		ShardSize: 1,
		Parallel:  4,
	}
	if testing.Short() {
		cfg.Runs = 6
	}
	res, err := Torture(cfg)
	if err != nil {
		t.Fatalf("torture campaign: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("toy torture violation: %s (replay: BaseSeed=%d Runs=1)", v, v.Seed)
	}
	t.Log(res.String())
}
