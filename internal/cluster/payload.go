// Package cluster is the fault-tolerant distributed verification plane: a
// coordinator that serializes the deterministic preorder context list of one
// full-enumeration query into content-addressed shards, and worker daemons
// that claim those shards over HTTP under time-bounded leases, solve them,
// and report per-index records. The join reuses the CAS-min first-Sat +
// prefix-fold logic of internal/schema, so the cluster verdict — outcome,
// schema count, average length, solver statistics, counterexample — is
// byte-identical to a single-box `-j N` run at any worker count and under
// any kill schedule. Robustness is the point: assignments are WAL-journaled
// (coordinator restarts resume), expired leases reissue shards with capped
// retries and jittered backoff, and an emptied worker pool degrades to
// solving the leftovers locally.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/ltl"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/ta"
	"repro/internal/taformat"
)

// JobPayload names one full-enumeration verification job: a bundled model or
// an inline automaton+spec, and exactly one property. It is the unit of
// content addressing — the job ID is a hash of this struct — so a resubmitted
// payload lands on the same job and a journal replay provably rebuilds the
// same work.
type JobPayload struct {
	// Model is a bundled model name (bv, naive, simplified, strb, bosco).
	// Mutually exclusive with TA.
	Model string `json:"model,omitempty"`
	// TA and Spec carry an inline automaton and LTL property file.
	TA   string `json:"ta,omitempty"`
	Spec string `json:"spec,omitempty"`
	// Prop selects the one property this job checks.
	Prop string `json:"prop"`
	// MaxSchemas bounds the enumeration like schema.Options.MaxSchemas
	// (0 = the paper's 100k cutoff). Exceeding it completes the job
	// immediately with the same Budget verdict a single box reports.
	MaxSchemas int `json:"max_schemas,omitempty"`
	// Truncate, when positive, solves only the first Truncate contexts of
	// the preorder instead of giving up at the structural cutoff (see
	// schema.EnumeratePrefix): the verdict can refute (a Sat in the prefix
	// is a certified violation) but never prove, so a Sat-free prefix folds
	// to the same Budget row the cutoff produces. This is how the cluster
	// bench pushes the naive automaton past its 100k-schema budget.
	Truncate int `json:"truncate,omitempty"`
}

// ID derives the job's content address: equal payloads get equal IDs on any
// coordinator, which makes Submit idempotent and journal replay verifiable.
func (p *JobPayload) ID() string {
	data, _ := json.Marshal(p)
	sum := sha256.Sum256(data)
	return "j" + hex.EncodeToString(sum[:8])
}

// Resolve turns the payload into the automaton, model label, and the single
// query it names.
func (p *JobPayload) Resolve() (*ta.TA, string, *spec.Query, error) {
	var (
		a       *ta.TA
		queries []spec.Query
		label   string
		err     error
	)
	switch {
	case p.Model != "" && p.TA != "":
		return nil, "", nil, fmt.Errorf("cluster: payload sets both model and ta; pick one")
	case p.Model != "":
		label = p.Model
		a, queries, err = service.BuiltinModel(p.Model)
		if err != nil {
			return nil, "", nil, err
		}
	case p.TA != "":
		if p.Spec == "" {
			return nil, "", nil, fmt.Errorf("cluster: a ta payload requires a spec payload")
		}
		a, err = taformat.Parse(p.TA)
		if err != nil {
			return nil, "", nil, fmt.Errorf("cluster: parsing ta: %w", err)
		}
		label = a.Name
		pf, perr := ltl.ParseFile(p.Spec)
		if perr != nil {
			return nil, "", nil, fmt.Errorf("cluster: parsing spec: %w", perr)
		}
		queries, err = ltl.CompileFile(pf, a)
		if err != nil {
			return nil, "", nil, fmt.Errorf("cluster: compiling spec: %w", err)
		}
	default:
		return nil, "", nil, fmt.Errorf("cluster: payload names no model and carries no ta")
	}
	if p.Prop == "" {
		return nil, "", nil, fmt.Errorf("cluster: payload names no property (a job checks exactly one)")
	}
	for i := range queries {
		if queries[i].Name == p.Prop {
			return a, label, &queries[i], nil
		}
	}
	return nil, "", nil, fmt.Errorf("cluster: no property %q in model %s", p.Prop, label)
}

// shardHash content-addresses one work unit: the job it belongs to, its base
// preorder index, and the exact guard-index contexts. Results are accepted by
// this hash rather than by lease — per-index records are deterministic, so a
// late report from a lease-lost worker is identical to the reissued one and
// integrating either is safe.
func shardHash(jobID string, base int, ctxs [][]int) string {
	h := sha256.New()
	h.Write([]byte(jobID))
	var buf [8]byte
	put := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(base)
	put(len(ctxs))
	for _, ctx := range ctxs {
		put(len(ctx))
		for _, gi := range ctx {
			put(gi)
		}
	}
	return "s" + hex.EncodeToString(h.Sum(nil)[:12])
}
