package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/schema"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/ta"
	"repro/internal/vcache"
	"repro/internal/wal"
)

// Config tunes one Coordinator.
type Config struct {
	// LeaseTTL bounds how long a claimed shard stays assigned without a
	// heartbeat before it is reissued (default 3s).
	LeaseTTL time.Duration
	// SweepEvery is the expiry-scan cadence (default LeaseTTL/4).
	SweepEvery time.Duration
	// MaxAttempts caps remote issues per shard; past it the shard is only
	// solved locally — a shard that kills every worker it touches must not
	// cycle through the pool forever (default 5).
	MaxAttempts int
	// ShardSize is the contexts-per-shard granule (default 64).
	ShardSize int
	// RetryBase/RetryMax shape the jittered exponential backoff before a
	// reissued shard becomes claimable again (defaults 200ms / 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed drives lease IDs and reissue jitter (0 = 1). Timing never feeds
	// verdicts; the seed exists so torture schedules replay exactly.
	Seed int64
	// JournalDir, when set, WAL-journals job submissions, assignments,
	// expiries, and completed shards so a coordinator restart resumes
	// instead of restarting. JournalFS defaults to the OS filesystem;
	// JournalSync to fsync-per-append.
	JournalDir  string
	JournalFS   wal.FS
	JournalSync wal.SyncMode
	// LocalWorkers sets the solver threads used when the coordinator
	// degrades to solving shards itself (default NumCPU).
	LocalWorkers int
	// IdleLocalAfter is how long the pool must be silent — no live leases
	// and no claim traffic — before the coordinator starts draining pending
	// shards locally (default 2×LeaseTTL).
	IdleLocalAfter time.Duration
	// Now and Logf are test/observability hooks.
	Now  func() time.Time
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 3 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.LeaseTTL / 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.ShardSize <= 0 {
		c.ShardSize = 64
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 200 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LocalWorkers <= 0 {
		c.LocalWorkers = runtime.NumCPU()
	}
	if c.IdleLocalAfter <= 0 {
		c.IdleLocalAfter = 2 * c.LeaseTTL
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Shard lifecycle. A shard leaves done/cancelled never; pending→leased on
// claim, leased→pending on lease expiry (the reissue path), and any open
// state →cancelled when a Sat earlier in the preorder makes it unneeded.
const (
	shardPending = iota
	shardLeased
	shardDone
	shardCancelled
)

const localWorkerID = "local"

type shard struct {
	idx      int
	base     int // first preorder index (inclusive)
	end      int // past-the-end preorder index
	hash     string
	state    int
	attempt  int // remote issues so far
	lease    string
	worker   string
	expiry   time.Time // lease deadline (leased shards)
	eligible time.Time // reissue backoff gate (pending shards)
	// localOnly marks a shard past MaxAttempts: never claimable remotely
	// again, drained by the coordinator's local loop.
	localOnly bool
}

type job struct {
	id      string
	payload JobPayload
	label   string
	query   *spec.Query
	a       *ta.TA
	plan    *schema.FullPlan
	ctxs    [][]int
	// truncated: the context list is an EnumeratePrefix prefix, so a
	// Sat-free fold yields Budget (see FoldTruncatedRecords).
	truncated bool
	shards    []*shard
	recs      []schema.IndexRecord
	// minSat is the least preorder index with a certified Sat so far
	// (math.MaxInt = none); shards based beyond it are cancelled.
	minSat int
	open   int // shards neither done nor cancelled
	// reissues counts assignments past a shard's first (the robustness
	// headline number: how much work the fault schedule forced us to redo).
	reissues int
	finished bool
	res      schema.Result
	err      error
	doneCh   chan struct{}
	started  time.Time
}

// Coordinator owns the job table, the lease ledger, and the journal. All
// state transitions happen under mu; solving never does (the local loop
// solves outside the lock and re-enters to integrate).
type Coordinator struct {
	cfg     Config
	mu      sync.Mutex
	jobs    map[string]*job
	order   []string
	journal *wal.Log
	rng     *rand.Rand
	// lastClaim and leases drive pool-empty detection for the degradation
	// ladder; leases counts live *remote* leases only.
	lastClaim time.Time
	leases    int
	replaying bool
	leaseSeq  uint64

	stopCh  chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// New builds a coordinator, replays its journal when one is configured, and
// starts the sweep and local-drain loops.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:    cfg,
		jobs:   make(map[string]*job),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		stopCh: make(chan struct{}),
	}
	c.lastClaim = cfg.Now()
	if cfg.JournalDir != "" {
		log, rec, err := wal.Open(wal.Options{
			FS:   cfg.JournalFS,
			Dir:  cfg.JournalDir,
			Sync: cfg.JournalSync,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: opening journal: %w", err)
		}
		c.journal = log
		if err := c.replay(rec); err != nil {
			log.Close()
			return nil, err
		}
	}
	c.wg.Add(2)
	go c.sweepLoop()
	go c.localLoop()
	return c, nil
}

// Close stops the background loops and closes the journal. In-flight local
// solving winds down at the next stop poll.
func (c *Coordinator) Close() error {
	if c.stopped.Swap(true) {
		return nil
	}
	close(c.stopCh)
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal != nil {
		return c.journal.Close()
	}
	return nil
}

// Submit registers a job, enumerating its contexts and cutting shards. It is
// idempotent by content address: resubmitting a payload returns the existing
// job. The heavy work (analysis, enumeration, hashing) happens outside the
// lock so a long enumeration cannot stall heartbeats for running jobs.
func (c *Coordinator) Submit(p JobPayload) (string, error) {
	id := p.ID()
	c.mu.Lock()
	if _, ok := c.jobs[id]; ok {
		c.mu.Unlock()
		return id, nil
	}
	c.mu.Unlock()

	j, exceeded, err := c.buildJob(id, p, 0)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[id]; ok {
		return id, nil // lost a submit race; the jobs are identical by construction
	}
	c.journalRec(&JournalRecord{
		T: recJob, Job: id, Payload: &p,
		ShardSize: c.cfg.ShardSize, Contexts: len(j.ctxs),
		Truncated: j.truncated, Exceeded: exceeded,
	})
	c.installJob(j, exceeded)
	return id, nil
}

// buildJob resolves, enumerates, and shards one payload. shardSize == 0 uses
// the config; journal replay passes the journaled size so shard boundaries
// (and hence hashes) match the done-records on disk even if the config
// changed between runs.
func (c *Coordinator) buildJob(id string, p JobPayload, shardSize int) (*job, bool, error) {
	a, label, q, err := p.Resolve()
	if err != nil {
		return nil, false, err
	}
	eng, err := schema.New(a, schema.Options{
		Mode:       schema.FullEnumeration,
		MaxSchemas: p.MaxSchemas,
		Workers:    c.cfg.LocalWorkers,
		Stop:       c.stopped.Load,
	})
	if err != nil {
		return nil, false, err
	}
	plan, err := eng.PlanFull(q)
	if err != nil {
		return nil, false, err
	}
	j := &job{
		id: id, payload: p, label: label, query: q,
		a: eng.TA(), plan: plan,
		minSat: math.MaxInt,
		doneCh: make(chan struct{}),
	}
	if p.Truncate > 0 {
		j.ctxs, j.truncated = plan.EnumeratePrefix(p.Truncate, c.stopped.Load)
	} else {
		ctxs, exceeded, interrupted := plan.Enumerate()
		if interrupted {
			return nil, false, fmt.Errorf("cluster: enumeration of %s/%s interrupted", label, q.Name)
		}
		if exceeded {
			// Same instant Budget verdict a single-box run reports when the
			// structural cutoff fires: MaxSchemas+1 enumerated, none solved.
			return j, true, nil
		}
		j.ctxs = ctxs
	}
	if c.stopped.Load() {
		return nil, false, fmt.Errorf("cluster: coordinator stopped during enumeration")
	}
	if shardSize <= 0 {
		shardSize = c.cfg.ShardSize
	}
	j.recs = make([]schema.IndexRecord, len(j.ctxs))
	for base := 0; base < len(j.ctxs); base += shardSize {
		end := base + shardSize
		if end > len(j.ctxs) {
			end = len(j.ctxs)
		}
		j.shards = append(j.shards, &shard{
			idx:  len(j.shards),
			base: base, end: end,
			hash: shardHash(id, base, j.ctxs[base:end]),
		})
	}
	j.open = len(j.shards)
	return j, false, nil
}

// installJob (mu held) makes a built job claimable, or finalizes it at once
// when its enumeration exceeded the schema budget.
func (c *Coordinator) installJob(j *job, exceeded bool) {
	j.started = c.cfg.Now()
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	if exceeded {
		j.res = schema.Result{
			Query:   j.query.Name,
			Mode:    schema.FullEnumeration,
			Outcome: spec.Budget,
			Schemas: j.plan.MaxSchemas() + 1,
		}
		c.finishJob(j)
		return
	}
	if j.open == 0 {
		// A query with an empty alphabet still has the root context, so this
		// cannot happen for a well-formed plan; guard anyway.
		c.finalize(j)
	}
	c.cfg.Logf("cluster: job %s %s/%s: %d contexts in %d shards (truncated=%v)",
		j.id, j.label, j.query.Name, len(j.ctxs), len(j.shards), j.truncated)
}

// Wait blocks until the job completes, the context is done, or the
// coordinator closes.
func (c *Coordinator) Wait(ctx context.Context, id string) (schema.Result, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return schema.Result{}, fmt.Errorf("cluster: no job %s", id)
	}
	select {
	case <-j.doneCh:
	case <-ctx.Done():
		return schema.Result{}, ctx.Err()
	case <-c.stopCh:
		return schema.Result{}, fmt.Errorf("cluster: coordinator closed while waiting for %s", id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return j.res, j.err
}

// Result peeks at a job's verdict without blocking; done=false while shards
// are still out.
func (c *Coordinator) Result(id string) (res schema.Result, done bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return schema.Result{}, false, fmt.Errorf("cluster: no job %s", id)
	}
	if !j.finished {
		return schema.Result{}, false, nil
	}
	return j.res, true, j.err
}

// StatusOf snapshots a job's coordination state (the HTTP status surface).
func (c *Coordinator) StatusOf(id string) (JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	st := JobStatus{
		Job: j.id, Model: j.label, Query: j.query.Name,
		Done: j.finished, ShardsTotal: len(j.shards), Reissues: j.reissues,
	}
	for _, s := range j.shards {
		switch s.state {
		case shardDone:
			st.ShardsDone++
		case shardCancelled:
			st.ShardsCancelled++
		}
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.finished && j.err == nil {
		st.Outcome = j.res.Outcome.String()
		st.Schemas = j.res.Schemas
		st.AvgLen = j.res.AvgLen
		st.Solver = vcache.SolverStats{
			LPChecks:  j.res.Solver.LPChecks,
			Pivots:    j.res.Solver.Pivots,
			Rebuilds:  j.res.Solver.Rebuilds,
			BBNodes:   j.res.Solver.BBNodes,
			CaseSplit: j.res.Solver.CaseSplit,
		}
		if j.res.CE != nil {
			st.CEText = j.res.CE.Format()
		}
	}
	return st, true
}

// newLease mints a lease ID from the seeded stream (replayable schedules).
func (c *Coordinator) newLease() string {
	c.leaseSeq++
	return fmt.Sprintf("L%06d-%08x", c.leaseSeq, c.rng.Uint32())
}

// reissueBackoff is the eligibility delay before attempt n+1, exponential
// with jitter so a flapping worker pool doesn't reclaim a poisoned shard in
// lockstep.
func (c *Coordinator) reissueBackoff(attempt int) time.Duration {
	d := c.cfg.RetryBase << (attempt - 1)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	return d + time.Duration(c.rng.Int63n(int64(d)/2+1))
}

// claim issues the next needed shard to a worker, or returns nil when
// nothing is claimable right now. Jobs are served in submission order and
// shards in preorder — the order that lets the CAS-min early exit cancel the
// most downstream work.
func (c *Coordinator) claim(workerID string) *ClaimResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	c.lastClaim = now
	for _, id := range c.order {
		j := c.jobs[id]
		if j.finished {
			continue
		}
		for _, s := range j.shards {
			if s.state != shardPending || s.localOnly || s.base > j.minSat || now.Before(s.eligible) {
				continue
			}
			s.state = shardLeased
			s.attempt++
			s.lease = c.newLease()
			s.worker = workerID
			s.expiry = now.Add(c.cfg.LeaseTTL)
			c.leases++
			if s.attempt > 1 {
				j.reissues++
				obsShardsReissued.Inc()
				c.cfg.Logf("cluster: job %s shard %d reissued to %s (attempt %d)", j.id, s.idx, workerID, s.attempt)
			}
			obsShardsClaimed.Inc()
			c.journalRec(&JournalRecord{
				T: recAssign, Job: j.id, Shard: s.idx,
				Worker: workerID, Lease: s.lease, Attempt: s.attempt,
			})
			return &ClaimResponse{
				Job: j.id, Shard: s.idx, Base: s.base, Attempt: s.attempt,
				Contexts: j.ctxs[s.base:s.end], Hash: s.hash,
				Lease: s.lease, TTLMS: c.cfg.LeaseTTL.Milliseconds(),
			}
		}
	}
	return nil
}

// heartbeat extends a live lease; false means the lease is gone — expired
// and reissued, cancelled, or already completed — and the worker should
// abandon the shard.
func (c *Coordinator) heartbeat(jobID, lease string, shardIdx int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[jobID]
	if !ok || shardIdx < 0 || shardIdx >= len(j.shards) {
		return false
	}
	s := j.shards[shardIdx]
	if s.state != shardLeased || s.lease != lease {
		return false
	}
	s.expiry = c.cfg.Now().Add(c.cfg.LeaseTTL)
	return true
}

// report integrates a worker's completed shard. Acceptance is by content
// hash, not lease: records are deterministic, so a report from a worker
// whose lease expired mid-solve is byte-identical to the reissue's and
// integrating whichever lands first is safe. Duplicate and post-cancel
// reports are acknowledged and dropped.
func (c *Coordinator) report(req *resultRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[req.Job]
	if !ok {
		return errNoJob
	}
	if req.Shard < 0 || req.Shard >= len(j.shards) {
		return errNoShard
	}
	s := j.shards[req.Shard]
	if req.Hash != s.hash {
		return errHashMismatch
	}
	if j.finished || s.state == shardDone || s.state == shardCancelled {
		obsDuplicateReport.Inc()
		return nil
	}
	if len(req.Records) != s.end-s.base {
		return errBadRecords
	}
	recs, err := decodeRecords(j.a, j.query, req.Records)
	if err != nil {
		// An undecodable or uncertifiable report is the worker's fault, not
		// the shard's: reject it and leave the lease to expire and reissue.
		return fmt.Errorf("%w: %v", errBadRecords, err)
	}
	c.integrate(j, s, recs, req.Records, req.Worker)
	return nil
}

// integrate (mu held) commits a solved shard: records, first-Sat CAS-min,
// downstream cancellation, journal, and job finalization.
func (c *Coordinator) integrate(j *job, s *shard, recs []schema.IndexRecord, wrecs []WireRecord, worker string) {
	// Local leases are never counted in c.leases (they must not suppress the
	// pool-idle signal), so only a remote lease holder releases one.
	if s.state == shardLeased && s.worker != localWorkerID {
		c.leases--
	}
	s.state = shardDone
	s.worker = worker
	j.open--
	copy(j.recs[s.base:s.end], recs)
	obsShardsDone.Inc()
	for i := range recs {
		if recs[i].Done && recs[i].Status == smt.Sat {
			if s.base+i < j.minSat {
				j.minSat = s.base + i
			}
			break
		}
	}
	// A certified Sat at minSat makes every shard based beyond it dead
	// weight: the fold only consumes the prefix [0..minSat].
	for _, s2 := range j.shards {
		if s2.base > j.minSat && (s2.state == shardPending || s2.state == shardLeased) {
			if s2.state == shardLeased && s2.worker != localWorkerID {
				c.leases--
			}
			s2.state = shardCancelled
			j.open--
			obsShardsCancelled.Inc()
		}
	}
	c.journalRec(&JournalRecord{
		T: recDone, Job: j.id, Shard: s.idx,
		Hash: s.hash, Worker: worker, Records: wrecs,
	})
	if j.open == 0 {
		c.finalize(j)
	}
}

// finalize (mu held) folds the records into the job's verdict.
func (c *Coordinator) finalize(j *job) {
	var res schema.Result
	var err error
	if j.truncated {
		res, err = schema.FoldTruncatedRecords(j.query.Name, j.recs)
	} else {
		res, err = schema.FoldRecords(j.query.Name, j.recs)
	}
	j.res, j.err = res, err
	c.finishJob(j)
}

// finishJob (mu held) stamps observational fields and releases waiters.
func (c *Coordinator) finishJob(j *job) {
	j.res.Elapsed = c.cfg.Now().Sub(j.started)
	j.finished = true
	close(j.doneCh)
	obsJobsCompleted.Inc()
	c.journalRec(&JournalRecord{T: recJobDone, Job: j.id})
	c.cfg.Logf("cluster: job %s %s/%s finished: %v (%d schemas, %d reissues)",
		j.id, j.label, j.query.Name, j.res.Outcome, j.res.Schemas, j.reissues)
}

// sweepLoop expires dead leases on a timer.
func (c *Coordinator) sweepLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.sweep()
		}
	}
}

// sweep reclaims every lease past its deadline: the shard returns to pending
// behind a jittered backoff gate, and a shard past MaxAttempts becomes
// local-only. This is the crash/hang/partition recovery path — a worker that
// stops heartbeating for any reason loses the shard, no diagnosis needed.
func (c *Coordinator) sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	for _, id := range c.order {
		j := c.jobs[id]
		if j.finished {
			continue
		}
		for _, s := range j.shards {
			if s.state != shardLeased || s.worker == localWorkerID || now.Before(s.expiry) {
				continue
			}
			c.leases--
			s.state = shardPending
			obsLeasesExpired.Inc()
			c.journalRec(&JournalRecord{
				T: recExpire, Job: j.id, Shard: s.idx,
				Worker: s.worker, Lease: s.lease, Attempt: s.attempt,
			})
			c.cfg.Logf("cluster: job %s shard %d lease %s (worker %s, attempt %d) expired",
				j.id, s.idx, s.lease, s.worker, s.attempt)
			s.lease = ""
			if s.attempt >= c.cfg.MaxAttempts {
				s.localOnly = true
				c.cfg.Logf("cluster: job %s shard %d exhausted %d remote attempts; local-only",
					j.id, s.idx, s.attempt)
			} else {
				s.eligible = now.Add(c.reissueBackoff(s.attempt))
			}
		}
	}
}

// localLoop is the bottom of the degradation ladder: shards that exhausted
// their remote attempts, and — once the worker pool has been silent for
// IdleLocalAfter — any leftover shard, are solved in-process. A cluster
// whose every worker died finishes anyway, with the exact verdict the
// workers would have produced.
func (c *Coordinator) localLoop() {
	defer c.wg.Done()
	for {
		j, s := c.claimLocal()
		if s == nil {
			select {
			case <-c.stopCh:
				return
			case <-time.After(c.cfg.SweepEvery):
			}
			continue
		}
		recs, interrupted, err := j.plan.SolveRange(j.ctxs[s.base:s.end], s.base, c.cfg.LocalWorkers, c.stopped.Load)
		c.mu.Lock()
		switch {
		case err != nil:
			// A solver error is deterministic for the shard's contexts;
			// retrying remotely would hit it too. Fail the job.
			s.state = shardPending
			if !j.finished {
				j.err = fmt.Errorf("cluster: local solve of job %s shard %d: %w", j.id, s.idx, err)
				c.finishJob(j)
			}
		case interrupted:
			s.state = shardPending
		default:
			if !j.finished && s.state == shardLeased {
				obsShardsLocal.Inc()
				c.integrate(j, s, recs, encodeRecords(j.a, recs), localWorkerID)
			}
		}
		c.mu.Unlock()
	}
}

// claimLocal picks the next shard the coordinator itself should solve.
func (c *Coordinator) claimLocal() (*job, *shard) {
	// Once Close has tripped the stop flag every solve would return
	// interrupted and the shard would come straight back to pending; claiming
	// again would spin localLoop forever and deadlock Close's wg.Wait. Return
	// nothing so the loop falls through to the stopCh select.
	if c.stopped.Load() {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Now()
	poolIdle := c.leases == 0 && now.Sub(c.lastClaim) > c.cfg.IdleLocalAfter
	for _, id := range c.order {
		j := c.jobs[id]
		if j.finished {
			continue
		}
		for _, s := range j.shards {
			if s.state != shardPending || s.base > j.minSat {
				continue
			}
			if !s.localOnly && !poolIdle {
				continue
			}
			s.state = shardLeased
			s.lease = c.newLease()
			s.worker = localWorkerID
			// No expiry pressure: the local solver shares the coordinator's
			// fate, and replay voids the lease if the process dies.
			s.expiry = now.Add(24 * time.Hour)
			c.journalRec(&JournalRecord{
				T: recAssign, Job: j.id, Shard: s.idx,
				Worker: localWorkerID, Lease: s.lease, Attempt: s.attempt,
			})
			return j, s
		}
	}
	return nil, nil
}
