package cluster

import (
	"encoding/json"
	"fmt"

	"repro/internal/wal"
)

// Journal record types. The journal is the coordinator's crash story: every
// state transition that must survive a restart is one JSON payload inside a
// WAL frame (internal/wal supplies the length+CRC32C framing and the
// torn-tail truncation rule). Contexts themselves are never journaled — the
// preorder enumeration is deterministic, so the job record stores only the
// payload plus the shard geometry and replay re-derives the rest, validating
// the counts to catch an engine that no longer enumerates the same tree.
const (
	// recJob: a submitted job (payload + shard geometry).
	recJob = "job"
	// recAssign: a lease issued (remote or local). Leases are void across
	// restart — replay keeps only the attempt count.
	recAssign = "assign"
	// recExpire: a lease reclaimed by the sweeper.
	recExpire = "expire"
	// recDone: a shard's integrated records (the only bulky record).
	recDone = "done"
	// recJobDone: the job folded to a verdict (informational; replay
	// re-folds from the done records).
	recJobDone = "jobdone"
)

// JournalRecord is the union of all journal payloads, exported so tests and
// tooling can assert on reissue histories (a killed worker's shard must show
// assign → expire → assign in order).
type JournalRecord struct {
	T     string `json:"t"`
	Job   string `json:"job,omitempty"`
	Shard int    `json:"shard,omitempty"`

	Worker  string `json:"worker,omitempty"`
	Lease   string `json:"lease,omitempty"`
	Attempt int    `json:"attempt,omitempty"`

	Hash    string       `json:"hash,omitempty"`
	Records []WireRecord `json:"records,omitempty"`

	Payload   *JobPayload `json:"payload,omitempty"`
	ShardSize int         `json:"shard_size,omitempty"`
	Contexts  int         `json:"contexts,omitempty"`
	Truncated bool        `json:"truncated,omitempty"`
	Exceeded  bool        `json:"exceeded,omitempty"`
}

// journalRec appends one record (mu held). Replay suppresses re-journaling:
// applying a journal must not grow it. A journal write error poisons the
// coordinator loudly rather than continuing with a silent durability hole.
func (c *Coordinator) journalRec(r *JournalRecord) {
	if c.journal == nil || c.replaying {
		return
	}
	data, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("cluster: journal marshal: %v", err))
	}
	if err := c.journal.Append(data); err != nil {
		c.cfg.Logf("cluster: JOURNAL APPEND FAILED (%v); restart durability lost", err)
	}
}

// replay rebuilds coordinator state from a recovered journal. Jobs are
// rebuilt by re-resolving their content-addressed payloads and re-enumerating
// (validated against the journaled geometry); done shards are re-integrated
// through the same code path as live reports, counterexamples re-certified
// and all; leases are void (their workers are gone with the old process), so
// assigned-but-unfinished shards return to pending with their attempt counts
// intact — a shard that exhausted MaxAttempts before the crash stays
// local-only after it.
func (c *Coordinator) replay(rec *wal.Recovery) error {
	if rec == nil || len(rec.Records) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replaying = true
	defer func() { c.replaying = false }()
	for i, payload := range rec.Records {
		var r JournalRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("cluster: journal record %d: %w", i+1, err)
		}
		if err := c.apply(&r); err != nil {
			return fmt.Errorf("cluster: journal record %d (%s): %w", i+1, r.T, err)
		}
	}
	// Post-replay invariants: no leases survive a restart, and exhausted
	// shards stay off the remote pool.
	for _, id := range c.order {
		j := c.jobs[id]
		for _, s := range j.shards {
			if s.state == shardLeased {
				s.state = shardPending
				s.lease = ""
			}
			if s.state == shardPending && s.attempt >= c.cfg.MaxAttempts {
				s.localOnly = true
			}
		}
	}
	// The lease ledger must read zero now: replayed assigns never counted, but
	// replayed dones ran through integrate, whose release would otherwise
	// leave the counter negative and pin poolIdle false — a restarted
	// coordinator with a dead worker pool would then never degrade to local.
	c.leases = 0
	c.cfg.Logf("cluster: journal replayed %d records, %d jobs", len(rec.Records), len(c.order))
	return nil
}

func (c *Coordinator) apply(r *JournalRecord) error {
	switch r.T {
	case recJob:
		if r.Payload == nil {
			return fmt.Errorf("job record carries no payload")
		}
		if _, ok := c.jobs[r.Job]; ok {
			return fmt.Errorf("duplicate job %s", r.Job)
		}
		if got := r.Payload.ID(); got != r.Job {
			return fmt.Errorf("payload hashes to %s, journal says %s", got, r.Job)
		}
		j, exceeded, err := c.buildJob(r.Job, *r.Payload, r.ShardSize)
		if err != nil {
			return err
		}
		if exceeded != r.Exceeded {
			return fmt.Errorf("job %s: enumeration exceeded=%v, journal says %v", r.Job, exceeded, r.Exceeded)
		}
		if !exceeded && (len(j.ctxs) != r.Contexts || j.truncated != r.Truncated) {
			return fmt.Errorf("job %s: re-enumeration yields %d contexts (truncated=%v), journal says %d (%v) — engine drift, journal unusable",
				r.Job, len(j.ctxs), j.truncated, r.Contexts, r.Truncated)
		}
		c.installJob(j, exceeded)
		return nil
	case recAssign:
		j, s, err := c.lookup(r)
		if err != nil {
			return err
		}
		_ = j
		if s.state == shardPending {
			s.state = shardLeased // normalized back to pending post-replay
			s.worker = r.Worker
			s.lease = r.Lease
		}
		if r.Worker != localWorkerID {
			s.attempt = r.Attempt
		}
		return nil
	case recExpire:
		_, s, err := c.lookup(r)
		if err != nil {
			return err
		}
		if s.state == shardLeased {
			s.state = shardPending
			s.lease = ""
		}
		return nil
	case recDone:
		j, s, err := c.lookup(r)
		if err != nil {
			return err
		}
		if s.state == shardDone || s.state == shardCancelled || j.finished {
			return nil
		}
		if r.Hash != s.hash {
			return fmt.Errorf("job %s shard %d: journaled hash %s, rebuilt %s", j.id, s.idx, r.Hash, s.hash)
		}
		if len(r.Records) != s.end-s.base {
			return fmt.Errorf("job %s shard %d: %d records for %d contexts", j.id, s.idx, len(r.Records), s.end-s.base)
		}
		recs, err := decodeRecords(j.a, j.query, r.Records)
		if err != nil {
			return fmt.Errorf("job %s shard %d: %w", j.id, s.idx, err)
		}
		c.integrate(j, s, recs, r.Records, r.Worker)
		return nil
	case recJobDone:
		return nil // verdicts are re-folded from done records, never read back
	default:
		return fmt.Errorf("unknown record type %q", r.T)
	}
}

func (c *Coordinator) lookup(r *JournalRecord) (*job, *shard, error) {
	j, ok := c.jobs[r.Job]
	if !ok {
		return nil, nil, fmt.Errorf("unknown job %s", r.Job)
	}
	if r.Shard < 0 || r.Shard >= len(j.shards) {
		return nil, nil, fmt.Errorf("job %s has no shard %d", r.Job, r.Shard)
	}
	return j, j.shards[r.Shard], nil
}

// ReadJournal decodes every record of a coordinator journal — the assertion
// surface for reissue tests and the post-mortem tool for torture failures.
func ReadJournal(fs wal.FS, dir string) ([]JournalRecord, error) {
	log, rec, err := wal.Open(wal.Options{FS: fs, Dir: dir, Sync: wal.SyncNever})
	if err != nil {
		return nil, err
	}
	defer log.Close()
	out := make([]JournalRecord, 0, len(rec.Records))
	for i, payload := range rec.Records {
		var r JournalRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return nil, fmt.Errorf("cluster: journal record %d: %w", i+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}
