package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/service"
	"repro/internal/spec"
	"repro/internal/vcache"
	"repro/internal/wal"
)

// Torture is the cluster's fault-injection acceptance gate, in the style of
// faults.TortureCampaign: every run spins up a real coordinator (in-memory
// WAL journal) and real workers over real HTTP, then drives a seeded
// schedule of worker kills, worker restarts, network partitions, and
// coordinator restarts against it. The single assertion is the tentpole
// guarantee — the cluster verdict, schema count, average length, solver
// statistics, and counterexample are byte-identical to a single-box run no
// matter what the schedule killed. Every event draws from
// rand.New(rand.NewSource(seed)), so a failing seed replays exactly; no
// global math/rand state is ever consulted.
type TortureConfig struct {
	// Payload is the job every run verifies (a full-mode query).
	Payload JobPayload
	// Runs is the number of seeded schedules; BaseSeed+i seeds run i.
	Runs     int
	BaseSeed int64
	// Workers is the starting worker-pool size per run (default 3).
	Workers int
	// SolverThreads is each worker's solver parallelism (default 2).
	SolverThreads int
	// Events is the chaos-event count per run (default 4).
	Events int
	// ShardSize overrides the coordinator's shard granule (default 8 — small
	// shards so kill windows land mid-job).
	ShardSize int
	// Parallel runs schedules concurrently (0 or 1 = sequential). Runs are
	// independent; violations are collected in seed order.
	Parallel int
	// Verbose, when set, receives one line per run.
	Verbose func(format string, args ...any)
	// Stop, when set, is polled between runs; true ends the campaign early.
	Stop func() bool
}

// TortureViolation is one seed whose cluster verdict diverged (or never
// arrived). The seed is the replay handle: rerun the campaign with
// BaseSeed=Seed, Runs=1 to reproduce the schedule exactly.
type TortureViolation struct {
	Seed   int64
	Detail string
}

func (v TortureViolation) String() string {
	return fmt.Sprintf("seed %d: %s", v.Seed, v.Detail)
}

// TortureResult aggregates a campaign.
type TortureResult struct {
	Runs       int
	Kills      int
	Restarts   int
	Partitions int
	// CoordRestarts counts coordinator kill+journal-resume events.
	CoordRestarts int
	// Reissues totals shard reissues observed across runs — the proof that
	// the schedules actually forced lease-expiry recovery, not just clean
	// runs.
	Reissues   int
	Violations []TortureViolation
	// Interrupted is set when Stop ended the campaign early; NextSeed is the
	// resume point.
	Interrupted bool
	NextSeed    int64
}

func (r TortureResult) String() string {
	return fmt.Sprintf("cluster torture: %d runs, %d violations; %d kills, %d restarts, %d partitions, %d coordinator restarts, %d reissues",
		r.Runs, len(r.Violations), r.Kills, r.Restarts, r.Partitions, r.CoordRestarts, r.Reissues)
}

// DeterministicRow renders the obs deterministic report row for a result,
// with the same Budget zeroing rule the CLI applies — the byte-comparison
// surface of the determinism tests and the verify.sh cluster smoke leg.
func DeterministicRow(model string, res schema.Result) obs.QueryMetrics {
	qm := obs.QueryMetrics{
		Model:   model,
		Query:   res.Query,
		Mode:    res.Mode.String(),
		Outcome: vcache.OutcomeLabel(res.Outcome),
		Schemas: res.Schemas,
		AvgLen:  res.AvgLen,
		Solver: obs.SolverMetrics{
			LPChecks:   int64(res.Solver.LPChecks),
			Pivots:     int64(res.Solver.Pivots),
			Rebuilds:   int64(res.Solver.Rebuilds),
			BBNodes:    int64(res.Solver.BBNodes),
			CaseSplits: int64(res.Solver.CaseSplit),
		},
	}
	if res.Outcome == spec.Budget {
		qm.Schemas, qm.AvgLen, qm.Solver = 0, 0, obs.SolverMetrics{}
	}
	return qm
}

// CompareResults byte-compares the deterministic slice of two results — the
// obs report row plus the full counterexample — and describes the first
// divergence ("" = identical).
func CompareResults(model string, want, got schema.Result) string {
	wantRow, _ := json.Marshal(DeterministicRow(model, want))
	gotRow, _ := json.Marshal(DeterministicRow(model, got))
	if string(wantRow) != string(gotRow) {
		return fmt.Sprintf("deterministic report row diverged:\n  want %s\n  got  %s", wantRow, gotRow)
	}
	if (want.CE == nil) != (got.CE == nil) {
		return fmt.Sprintf("counterexample presence diverged: want %v, got %v", want.CE != nil, got.CE != nil)
	}
	if want.CE != nil {
		if want.CE.Format() != got.CE.Format() {
			return fmt.Sprintf("counterexample diverged:\n  want %s\n  got  %s", want.CE.Format(), got.CE.Format())
		}
		if fmt.Sprint(want.CE.Schema) != fmt.Sprint(got.CE.Schema) {
			return fmt.Sprintf("counterexample schema context diverged: want %v, got %v", want.CE.Schema, got.CE.Schema)
		}
	}
	return ""
}

// chaosTransport fails every request while partitioned — the worker's view
// of a network partition (the coordinator side just sees silence, exactly
// like a crash, which is the point of lease-based recovery).
type chaosTransport struct {
	base        http.RoundTripper
	partitioned atomic.Bool
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.partitioned.Load() {
		return nil, fmt.Errorf("chaos: partitioned")
	}
	return t.base.RoundTrip(req)
}

// tortureWorker is one worker process stand-in: its own transport (so it can
// be partitioned alone) and its own cancel (so it can be killed alone).
type tortureWorker struct {
	w      *Worker
	cancel context.CancelFunc
	trans  *chaosTransport
	done   chan struct{}
}

// Torture runs the campaign. The reference verdict is computed once on a
// single box; every schedule must reproduce it.
func Torture(cfg TortureConfig) (TortureResult, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.SolverThreads <= 0 {
		cfg.SolverThreads = 2
	}
	if cfg.Events <= 0 {
		cfg.Events = 4
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = 8
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}

	ref, label, err := tortureReference(cfg.Payload)
	if err != nil {
		return TortureResult{}, err
	}

	var (
		mu          sync.Mutex
		res         TortureResult
		interrupted atomic.Bool
	)
	sem := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
	next := cfg.BaseSeed
	for i := 0; i < cfg.Runs; i++ {
		if cfg.Stop != nil && cfg.Stop() {
			interrupted.Store(true)
			break
		}
		seed := cfg.BaseSeed + int64(i)
		next = seed + 1
		wg.Add(1)
		sem <- struct{}{}
		go func(seed int64) {
			defer wg.Done()
			defer func() { <-sem }()
			stats, detail := tortureRun(cfg, label, ref, seed)
			mu.Lock()
			defer mu.Unlock()
			res.Runs++
			res.Kills += stats.kills
			res.Restarts += stats.restarts
			res.Partitions += stats.partitions
			res.CoordRestarts += stats.coordRestarts
			res.Reissues += stats.reissues
			if detail != "" {
				res.Violations = append(res.Violations, TortureViolation{Seed: seed, Detail: detail})
				if cfg.Verbose != nil {
					cfg.Verbose("cluster torture seed %d FAILED: %s", seed, detail)
				}
			} else if cfg.Verbose != nil {
				cfg.Verbose("cluster torture seed %d ok: %d kills, %d partitions, %d coord restarts, %d reissues",
					seed, stats.kills, stats.partitions, stats.coordRestarts, stats.reissues)
			}
		}(seed)
	}
	wg.Wait()
	res.Interrupted = interrupted.Load()
	res.NextSeed = next
	return res, nil
}

func tortureReference(p JobPayload) (schema.Result, string, error) {
	a, label, q, err := p.Resolve()
	if err != nil {
		return schema.Result{}, "", err
	}
	eng, err := schema.New(a, schema.Options{
		Mode:       schema.FullEnumeration,
		MaxSchemas: p.MaxSchemas,
		Workers:    runtime.NumCPU(),
	})
	if err != nil {
		return schema.Result{}, "", err
	}
	res, err := eng.Check(q)
	if err != nil {
		return schema.Result{}, "", err
	}
	return res, label, nil
}

type tortureStats struct {
	kills, restarts, partitions, coordRestarts, reissues int
}

// tortureRun executes one seeded schedule and returns the divergence detail
// ("" = verdict identical to the reference).
func tortureRun(cfg TortureConfig, label string, ref schema.Result, seed int64) (tortureStats, string) {
	var stats tortureStats
	rng := rand.New(rand.NewSource(seed))
	memfs := wal.NewMemFS()

	newCoord := func() (*Coordinator, error) {
		return New(Config{
			LeaseTTL:       150 * time.Millisecond,
			SweepEvery:     20 * time.Millisecond,
			MaxAttempts:    8,
			ShardSize:      cfg.ShardSize,
			RetryBase:      5 * time.Millisecond,
			RetryMax:       50 * time.Millisecond,
			Seed:           seed,
			JournalDir:     "torture",
			JournalFS:      memfs,
			JournalSync:    wal.SyncNever,
			LocalWorkers:   2,
			IdleLocalAfter: 500 * time.Millisecond,
		})
	}

	coord, err := newCoord()
	if err != nil {
		return stats, fmt.Sprintf("starting coordinator: %v", err)
	}
	var cur atomic.Pointer[Coordinator]
	cur.Store(coord)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		coord.Close()
		return stats, fmt.Sprintf("listening: %v", err)
	}
	// swapMu models the process boundary of a real coordinator kill: requests
	// in flight on the old incarnation must finish (or fail) before the new
	// incarnation replays the journal. Without it a zombie handler could
	// append to the journal WAL concurrently with the successor's replay —
	// impossible for separate processes, a data race in this in-process
	// harness.
	var swapMu sync.RWMutex
	hs := service.HardenServer(&http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		swapMu.RLock()
		defer swapMu.RUnlock()
		cur.Load().Handler().ServeHTTP(w, r)
	})})
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	jobID, err := coord.Submit(cfg.Payload)
	if err != nil {
		coord.Close()
		return stats, fmt.Sprintf("submitting: %v", err)
	}

	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()

	var wmu sync.Mutex
	var workers []*tortureWorker
	var workerSeq int
	spawn := func() {
		wmu.Lock()
		defer wmu.Unlock()
		workerSeq++
		trans := &chaosTransport{base: http.DefaultTransport}
		w := &Worker{
			Coordinator: base,
			ID:          fmt.Sprintf("tw%d-%d", seed, workerSeq),
			Workers:     cfg.SolverThreads,
			Client: &service.HTTPClient{
				HTTP:           &http.Client{Transport: trans, Timeout: 10 * time.Second},
				MaxAttempts:    2,
				BaseDelay:      5 * time.Millisecond,
				MaxDelay:       20 * time.Millisecond,
				Seed:           seed,
				RetryTransport: true,
			},
			PollInterval: 10 * time.Millisecond,
		}
		ctx, cancel := context.WithCancel(runCtx)
		tw := &tortureWorker{w: w, cancel: cancel, trans: trans, done: make(chan struct{})}
		go func() {
			defer close(tw.done)
			w.Run(ctx)
		}()
		workers = append(workers, tw)
	}
	pickLive := func() *tortureWorker {
		wmu.Lock()
		defer wmu.Unlock()
		live := make([]*tortureWorker, 0, len(workers))
		for _, tw := range workers {
			select {
			case <-tw.done:
			default:
				live = append(live, tw)
			}
		}
		if len(live) == 0 {
			return nil
		}
		return live[rng.Intn(len(live))]
	}
	for i := 0; i < cfg.Workers; i++ {
		spawn()
	}

	// The seeded chaos schedule. Sleeps, victims, and actions all come from
	// rng, so the schedule is a pure function of the seed.
	for e := 0; e < cfg.Events; e++ {
		time.Sleep(time.Duration(5+rng.Intn(60)) * time.Millisecond)
		if _, done, _ := cur.Load().Result(jobID); done {
			break
		}
		switch rng.Intn(4) {
		case 0: // kill a worker (SIGKILL equivalent: no report, lease dies)
			if tw := pickLive(); tw != nil {
				tw.cancel()
				stats.kills++
			}
		case 1: // kill, then restart a fresh worker after a delay
			if tw := pickLive(); tw != nil {
				tw.cancel()
				stats.kills++
				stats.restarts++
				delay := time.Duration(10+rng.Intn(100)) * time.Millisecond
				go func() {
					time.Sleep(delay)
					if runCtx.Err() == nil {
						spawn()
					}
				}()
			}
		case 2: // partition a worker for a window, then heal
			if tw := pickLive(); tw != nil {
				tw.trans.partitioned.Store(true)
				stats.partitions++
				window := time.Duration(50+rng.Intn(200)) * time.Millisecond
				go func() {
					time.Sleep(window)
					tw.trans.partitioned.Store(false)
				}()
			}
		case 3: // kill the coordinator, resume from the journal
			swapMu.Lock()
			old := cur.Load()
			old.Close()
			nc, err := newCoord()
			if err != nil {
				swapMu.Unlock()
				return stats, fmt.Sprintf("coordinator restart: %v", err)
			}
			cur.Store(nc)
			swapMu.Unlock()
			stats.coordRestarts++
		}
	}

	// Await the verdict. The degradation ladder guarantees completion even
	// if the schedule killed everything, so a deadline miss is a bug.
	deadline := time.Now().Add(60 * time.Second)
	var got schema.Result
	var done bool
	var jerr error
	for time.Now().Before(deadline) {
		got, done, jerr = cur.Load().Result(jobID)
		if done {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st, ok := cur.Load().StatusOf(jobID); ok {
		stats.reissues += st.Reissues
	}
	cancelRun()
	cur.Load().Close()
	switch {
	case !done:
		return stats, "job did not complete within 60s"
	case jerr != nil:
		return stats, fmt.Sprintf("job failed: %v", jerr)
	}
	if diff := CompareResults(label, ref, got); diff != "" {
		return stats, diff
	}
	return stats, ""
}
