package counter

import (
	"errors"
	"testing"

	"repro/internal/expr"
	"repro/internal/ta"
)

// chainTA builds the one-round automaton
//
//	A --r1[true]/x++--> B --r2[x >= t+1-f]--> C
//
// with initial A. With n-f correct processes, r2 unlocks once t+1-f
// processes have fired r1.
func chainTA(t *testing.T) *ta.TA {
	t.Helper()
	b := ta.NewBuilder("chain")
	x := b.Shared("x")
	locA := b.Loc("A", ta.Initial())
	locB := b.Loc("B")
	locC := b.Loc("C")
	b.Rule("r1", locA, locB, ta.Inc(x))
	b.Rule("r2", locB, locC,
		ta.Guarded(b.GeThreshold(x, b.Lin(1, ta.LinTerm{Coeff: 1, Sym: b.T()}, ta.LinTerm{Coeff: -1, Sym: b.F()}))))
	b.SelfLoop(locC)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func sys(t *testing.T, a *ta.TA, n, tt, f int64) *System {
	t.Helper()
	params := map[expr.Sym]int64{a.Params[0]: n, a.Params[1]: tt, a.Params[2]: f}
	s, err := NewSystem(a, params)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemChecksResilience(t *testing.T) {
	a := chainTA(t)
	params := map[expr.Sym]int64{a.Params[0]: 3, a.Params[1]: 1, a.Params[2]: 1}
	if _, err := NewSystem(a, params); err == nil {
		t.Error("n=3,t=1 violates n>3t; expected error")
	}
	params[a.Params[0]] = 4
	if _, err := NewSystem(a, params); err != nil {
		t.Errorf("n=4,t=1,f=1: %v", err)
	}
	delete(params, a.Params[2])
	if _, err := NewSystem(a, params); err == nil {
		t.Error("missing parameter should error")
	}
}

func TestNewSystemRejectsRoundSwitch(t *testing.T) {
	b := ta.NewBuilder("rs")
	locA := b.Loc("A", ta.Initial())
	locB := b.Loc("B")
	b.Rule("r1", locA, locB)
	b.Rule("rs", locB, locA, ta.RoundSwitch())
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	params := map[expr.Sym]int64{a.Params[0]: 4, a.Params[1]: 1, a.Params[2]: 0}
	if _, err := NewSystem(a, params); err == nil {
		t.Error("multi-round TA should be rejected")
	}
}

func TestApplySemantics(t *testing.T) {
	a := chainTA(t)
	s := sys(t, a, 4, 1, 1) // 3 correct processes; r2 needs x >= t+1-f = 1

	init := Config{K: []int64{3, 0, 0}, V: []int64{0}}

	// r2 is locked initially (x=0 < 1).
	if _, err := s.Apply(init, 1, 1); err == nil {
		t.Error("r2 should be blocked while x=0")
	}
	// r1 fires with acceleration 2.
	c1, err := s.Apply(init, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c1.K[0] != 1 || c1.K[1] != 2 || c1.V[0] != 2 {
		t.Errorf("after r1 x2: %s", s.String(c1))
	}
	// Over-accelerating beyond the source counter fails.
	if _, err := s.Apply(c1, 0, 2); err == nil {
		t.Error("r1 x2 with only 1 process at A should fail")
	}
	// r2 now unlocked.
	c2, err := s.Apply(c1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.K[2] != 2 {
		t.Errorf("after r2 x2: %s", s.String(c2))
	}
	// factor 0 is a no-op clone.
	c3, err := s.Apply(c2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Key() != c2.Key() {
		t.Error("factor 0 should not change the configuration")
	}
	if _, err := s.Apply(c2, 0, -1); err == nil {
		t.Error("negative factor should error")
	}
}

func TestReplayValidation(t *testing.T) {
	a := chainTA(t)
	s := sys(t, a, 4, 1, 1)

	good := Run{
		Init:  Config{K: []int64{3, 0, 0}, V: []int64{0}},
		Steps: []Step{{Rule: 0, Factor: 3}, {Rule: 1, Factor: 3}},
	}
	trace, err := s.Replay(good)
	if err != nil {
		t.Fatalf("valid run rejected: %v", err)
	}
	if len(trace) != 3 {
		t.Errorf("trace length = %d, want 3", len(trace))
	}
	final := trace[len(trace)-1]
	if final.K[2] != 3 {
		t.Errorf("final config %s, want all in C", s.String(final))
	}

	// Wrong process count.
	bad := good
	bad.Init = Config{K: []int64{2, 0, 0}, V: []int64{0}}
	if _, err := s.Replay(bad); err == nil {
		t.Error("wrong total should be rejected")
	}
	// Processes in non-initial location.
	bad.Init = Config{K: []int64{2, 1, 0}, V: []int64{0}}
	if _, err := s.Replay(bad); err == nil {
		t.Error("non-initial start should be rejected")
	}
	// Nonzero initial shared variable.
	bad.Init = Config{K: []int64{3, 0, 0}, V: []int64{1}}
	if _, err := s.Replay(bad); err == nil {
		t.Error("nonzero initial shared variable should be rejected")
	}
	// Premature r2.
	bad = Run{
		Init:  Config{K: []int64{3, 0, 0}, V: []int64{0}},
		Steps: []Step{{Rule: 1, Factor: 1}},
	}
	if _, err := s.Replay(bad); err == nil {
		t.Error("firing r2 before its guard unlocks should be rejected")
	}
	// Unknown rule index.
	bad.Steps = []Step{{Rule: 99, Factor: 1}}
	if _, err := s.Replay(bad); err == nil {
		t.Error("unknown rule index should be rejected")
	}
}

func TestEnumerateInitial(t *testing.T) {
	b := ta.NewBuilder("two-init")
	locA := b.Loc("A", ta.Initial())
	locB := b.Loc("B", ta.Initial())
	locC := b.Loc("C")
	b.Rule("r1", locA, locC)
	b.Rule("r2", locB, locC)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := sys(t, a, 4, 1, 0) // 4 correct processes

	count := 0
	err = s.EnumerateInitial(func(c Config) error {
		count++
		if c.K[locA]+c.K[locB] != 4 {
			t.Errorf("bad distribution %v", c.K)
		}
		if c.K[locC] != 0 {
			t.Errorf("process in non-initial location: %v", c.K)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 { // (0,4),(1,3),(2,2),(3,1),(4,0)
		t.Errorf("enumerated %d initial configs, want 5", count)
	}
}

func TestBFSReachability(t *testing.T) {
	a := chainTA(t)
	s := sys(t, a, 4, 1, 1)
	e := &Explorer{Sys: s}

	seenAllInC := false
	stats, err := e.BFS(func(c Config, frozen bool) error {
		if c.K[2] == 3 {
			seenAllInC = true
			if !frozen {
				t.Error("all-in-C configuration should be frozen")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !seenAllInC {
		t.Error("BFS never reached the all-in-C configuration")
	}
	if stats.States == 0 || stats.Transitions == 0 {
		t.Errorf("implausible stats %+v", stats)
	}
}

func TestFindViolationProducesReplayableRun(t *testing.T) {
	a := chainTA(t)
	s := sys(t, a, 4, 1, 1)
	e := &Explorer{Sys: s}

	run, _, err := e.FindViolation(func(c Config) bool { return c.K[2] >= 2 })
	if err != nil {
		t.Fatal(err)
	}
	if run == nil {
		t.Fatal("expected to find a configuration with 2 processes in C")
	}
	trace, err := s.Replay(*run)
	if err != nil {
		t.Fatalf("violation run does not replay: %v\n%s", err, s.Format(*run))
	}
	if final := trace[len(trace)-1]; final.K[2] < 2 {
		t.Errorf("replayed run ends at %s, want >=2 in C", s.String(final))
	}

	run, _, err = e.FindViolation(func(c Config) bool { return c.V[0] > 3 })
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		t.Errorf("x can never exceed 3 with 3 correct processes, got run:\n%s", s.Format(*run))
	}
}

func TestFindStableViolation(t *testing.T) {
	a := chainTA(t)
	s := sys(t, a, 4, 1, 1)
	e := &Explorer{Sys: s}

	// Liveness "eventually everyone reaches C" holds under default justice:
	// every configuration with a process outside C violates some justice
	// requirement (r1's or r2's source must drain).
	run, _, err := e.FindStableViolation(
		func(c Config) bool { return c.K[0]+c.K[1] > 0 },
		a.DefaultJustice(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		t.Errorf("unexpected liveness counterexample:\n%s", s.Format(*run))
	}

	// Without any justice, stuttering forever in the initial configuration
	// is fair, so the same goal is violated.
	run, _, err = e.FindStableViolation(
		func(c Config) bool { return c.K[0]+c.K[1] > 0 },
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if run == nil {
		t.Error("with no justice at all, staying at A forever should violate the goal")
	}

	// Dropping only r1's justice is not enough: r2's justice still forces B
	// to drain once x >= 1, and A-dwellers violate nothing... they do:
	// keeping justice only for r2 means a process may stay at A forever, so
	// a violation must exist with all processes still at A.
	var justR2 []ta.Justice
	for _, j := range a.DefaultJustice() {
		if j.Name == "rc_r2" {
			justR2 = append(justR2, j)
		}
	}
	run, _, err = e.FindStableViolation(
		func(c Config) bool { return c.K[0] > 0 },
		justR2,
	)
	if err != nil {
		t.Fatal(err)
	}
	if run == nil {
		t.Error("without r1's justice, processes may legitimately stay at A")
	}
}

func TestBFSBudget(t *testing.T) {
	a := chainTA(t)
	s := sys(t, a, 7, 2, 0) // 7 correct processes -> more states
	e := &Explorer{Sys: s, MaxStates: 3}
	_, err := e.BFS(nil)
	if !errors.Is(err, ErrStateBudget) {
		t.Errorf("err = %v, want ErrStateBudget", err)
	}
}

func TestBFSEarlyStop(t *testing.T) {
	a := chainTA(t)
	s := sys(t, a, 4, 1, 1)
	e := &Explorer{Sys: s}
	visits := 0
	_, err := e.BFS(func(Config, bool) error {
		visits++
		return Stop()
	})
	if err != nil {
		t.Fatal(err)
	}
	if visits != 1 {
		t.Errorf("visits = %d, want 1", visits)
	}
}

func TestSortedRules(t *testing.T) {
	a := chainTA(t)
	order, err := SortedRules(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("order = %v, want 2 progress rules", order)
	}
	// r1 (depth 0 source) before r2 (depth 1 source).
	if a.Rules[order[0]].Name != "r1" || a.Rules[order[1]].Name != "r2" {
		t.Errorf("order = [%s %s], want [r1 r2]", a.Rules[order[0]].Name, a.Rules[order[1]].Name)
	}
}

func TestConfigKeyDistinguishes(t *testing.T) {
	c1 := Config{K: []int64{1, 2}, V: []int64{3}}
	c2 := Config{K: []int64{12}, V: []int64{3}}
	if c1.Key() == c2.Key() {
		t.Error("keys must distinguish different shapes")
	}
	c3 := c1.Clone()
	if c1.Key() != c3.Key() {
		t.Error("clone must have identical key")
	}
	c3.K[0] = 9
	if c1.K[0] == 9 {
		t.Error("clone must be deep")
	}
}
