package counter

import (
	"testing"

	"repro/internal/spec"
	"repro/internal/ta"
)

// specTA builds A --r1[true]/x++--> B --r2[x>=t+1-f]--> C with initial A.
func specTA(t *testing.T) *ta.TA {
	t.Helper()
	b := ta.NewBuilder("specexec")
	x := b.Shared("x")
	locA := b.Loc("A", ta.Initial())
	locB := b.Loc("B")
	locC := b.Loc("C")
	b.Rule("r1", locA, locB, ta.Inc(x))
	b.Rule("r2", locB, locC,
		ta.Guarded(b.GeThreshold(x, b.Lin(1, ta.LinTerm{Coeff: 1, Sym: b.T()}, ta.LinTerm{Coeff: -1, Sym: b.F()}))))
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCheckQueryExplicitWitnessRunReplays(t *testing.T) {
	a := specTA(t)
	s, err := NewSystem(a, ParamsFor(a, 4, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	q := spec.Query{
		Name:          "reach-C",
		Kind:          spec.Safety,
		VisitNonempty: []ta.LocSet{ta.NewLocSet(a.MustLoc("C"))},
	}
	res, err := CheckQueryExplicit(s, &q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != spec.Violated {
		t.Fatalf("outcome = %v, want violated (C is reachable)", res.Outcome)
	}
	if res.Run == nil {
		t.Fatal("no witness run attached")
	}
	trace, err := s.Replay(*res.Run)
	if err != nil {
		t.Fatalf("witness run does not replay: %v\n%s", err, s.Format(*res.Run))
	}
	reached := false
	for _, c := range trace {
		if c.K[a.MustLoc("C")] > 0 {
			reached = true
		}
	}
	if !reached {
		t.Errorf("witness run never reaches C:\n%s", s.Format(*res.Run))
	}
}

func TestCheckQueryExplicitHoldsHasNoRun(t *testing.T) {
	a := specTA(t)
	s, err := NewSystem(a, ParamsFor(a, 4, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// With A empty initially, nothing ever moves: C stays unreachable.
	q := spec.Query{
		Name:          "reach-C-empty",
		Kind:          spec.Safety,
		InitEmpty:     []ta.LocID{a.MustLoc("A")},
		VisitNonempty: []ta.LocSet{ta.NewLocSet(a.MustLoc("C"))},
	}
	res, err := CheckQueryExplicit(s, &q, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A is the only initial location, so emptiness contradicts n-f > 0:
	// no admissible initial configuration exists and the property holds.
	if res.Outcome != spec.Holds {
		t.Fatalf("outcome = %v, want holds", res.Outcome)
	}
	if res.Run != nil {
		t.Error("holds verdict must not attach a run")
	}
}
