package counter

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/spec"
	"repro/internal/ta"
)

// ExplicitResult is the outcome of checking one query for fixed parameters.
type ExplicitResult struct {
	Outcome spec.Outcome
	// Witness is a configuration witnessing the violation (zero-value when
	// the property holds).
	Witness Config
	// Run is the full violating execution, replayable with System.Replay
	// (nil when the property holds).
	Run    *Run
	States int
}

// CheckQueryExplicit decides a spec.Query by explicit-state search over the
// counter system: the fixed-parameter baseline against which the
// parameterized schema checker is cross-validated.
//
// Visit witnesses are tracked with per-set "visited" flags folded into the
// explored state, so the search is exact even for location sets that a
// process can leave again.
func CheckQueryExplicit(sys *System, q *spec.Query, maxStates int) (ExplicitResult, error) {
	if err := q.Validate(sys.TA); err != nil {
		return ExplicitResult{}, err
	}
	if maxStates <= 0 {
		maxStates = 2_000_000
	}

	globalEmpty := make(map[ta.LocID]bool, len(q.GlobalEmpty))
	for _, l := range q.GlobalEmpty {
		globalEmpty[l] = true
	}
	initEmpty := make(map[ta.LocID]bool, len(q.InitEmpty))
	for _, l := range q.InitEmpty {
		initEmpty[l] = true
	}

	type state struct {
		c     Config
		flags uint32
	}
	if len(q.VisitNonempty) > 31 {
		return ExplicitResult{}, fmt.Errorf("counter: too many visit witnesses (%d)", len(q.VisitNonempty))
	}
	allFlags := uint32(1)<<len(q.VisitNonempty) - 1

	flagsOf := func(base uint32, c Config) uint32 {
		f := base
		for i, set := range q.VisitNonempty {
			if f&(1<<i) == 0 && SumLocs(c, set) > 0 {
				f |= 1 << i
			}
		}
		return f
	}

	sharedHold := func(c Config) (bool, error) {
		val := sys.valuation(c)
		for _, sc := range q.FinalShared {
			ok, err := sc.Holds(val)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}

	justiceStable := func(c Config) (bool, error) {
		val := sys.valuation(c)
		for _, j := range q.Justice {
			triggered := true
			for _, t := range j.Trigger {
				ok, err := t.Holds(val)
				if err != nil {
					return false, err
				}
				if !ok {
					triggered = false
					break
				}
			}
			if triggered && c.K[j.Loc] > 0 {
				return false, nil
			}
		}
		return true, nil
	}

	finalNonempty := func(c Config) bool {
		for _, set := range q.FinalNonempty {
			if SumLocs(c, set) == 0 {
				return false
			}
		}
		return true
	}

	isViolation := func(s state) (bool, error) {
		if s.flags != allFlags || !finalNonempty(s.c) {
			return false, nil
		}
		ok, err := sharedHold(s.c)
		if err != nil || !ok {
			return ok, err
		}
		if q.Kind == spec.Liveness {
			return justiceStable(s.c)
		}
		return true, nil
	}

	type parentLink struct {
		key  string
		rule int
	}
	visited := make(map[string]bool)
	parents := make(map[string]parentLink)
	initials := make(map[string]Config)
	var queue []state
	res := ExplicitResult{Outcome: spec.Holds}

	stateKey := func(s state) string {
		return fmt.Sprintf("%s#%d", s.c.Key(), s.flags)
	}
	push := func(s state, from string, rule int) {
		key := stateKey(s)
		if visited[key] {
			return
		}
		visited[key] = true
		if from == "" {
			initials[key] = s.c
		} else {
			parents[key] = parentLink{key: from, rule: rule}
		}
		queue = append(queue, s)
	}
	reconstruct := func(s state) (*Run, error) {
		var steps []Step
		key := stateKey(s)
		for {
			if init, ok := initials[key]; ok {
				for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
					steps[i], steps[j] = steps[j], steps[i]
				}
				return &Run{Init: init, Steps: steps}, nil
			}
			link, ok := parents[key]
			if !ok {
				return nil, fmt.Errorf("counter: broken parent chain")
			}
			steps = append(steps, Step{Rule: link.rule, Factor: 1})
			key = link.key
		}
	}

	err := sys.EnumerateInitial(func(c Config) error {
		for l := range initEmpty {
			if c.K[l] != 0 {
				return nil
			}
		}
		for l := range globalEmpty {
			if c.K[l] != 0 {
				return nil
			}
		}
		push(state{c: c, flags: flagsOf(0, c)}, "", -1)
		return nil
	})
	if err != nil {
		return ExplicitResult{}, err
	}

	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		res.States++
		if res.States > maxStates {
			res.Outcome = spec.Budget
			return res, nil
		}
		hit, err := isViolation(s)
		if err != nil {
			return ExplicitResult{}, err
		}
		if hit {
			res.Outcome = spec.Violated
			res.Witness = s.c
			run, err := reconstruct(s)
			if err != nil {
				return ExplicitResult{}, err
			}
			res.Run = run
			return res, nil
		}
		sKey := stateKey(s)
		for ri, r := range sys.TA.Rules {
			if r.SelfLoop() {
				continue
			}
			if globalEmpty[r.To] {
				continue // runs violating the □-premise are not counterexamples
			}
			en, err := sys.Enabled(s.c, ri)
			if err != nil {
				return ExplicitResult{}, err
			}
			if !en {
				continue
			}
			next, err := sys.Apply(s.c, ri, 1)
			if err != nil {
				return ExplicitResult{}, err
			}
			push(state{c: next, flags: flagsOf(s.flags, next)}, sKey, ri)
		}
	}
	return res, nil
}

// ParamsFor builds a parameter valuation for the conventional n, t, f
// parameters of a TA.
func ParamsFor(a *ta.TA, n, t, f int64) map[expr.Sym]int64 {
	return map[expr.Sym]int64{a.Params[0]: n, a.Params[1]: t, a.Params[2]: f}
}
