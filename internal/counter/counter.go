// Package counter implements the counter-system semantics Sys(TA) of
// threshold automata (Section 2 of the paper): configurations count how many
// processes occupy each location, transitions move processes along rules and
// apply shared-variable updates. It provides
//
//   - exact replay of (accelerated) runs, used to validate every
//     counterexample the schema checker produces, and
//   - an explicit-state breadth-first checker for fixed parameters, the
//     TLC/SPIN-style baseline that the paper's related-work section contrasts
//     with parameterized model checking.
package counter

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/ta"
)

// System is a one-round counter system with fixed parameter values.
type System struct {
	TA     *ta.TA
	Params map[expr.Sym]int64

	sharedIdx map[expr.Sym]int
}

// NewSystem builds the counter system of a one-round TA under concrete
// parameters. The parameters must satisfy the automaton's resilience
// condition; the automaton must not contain round-switch rules.
func NewSystem(a *ta.TA, params map[expr.Sym]int64) (*System, error) {
	for _, r := range a.Rules {
		if r.RoundSwitch {
			return nil, fmt.Errorf("counter: %s has round-switch rules; call OneRound first", a.Name)
		}
	}
	for _, p := range a.Params {
		if _, ok := params[p]; !ok {
			return nil, fmt.Errorf("counter: missing value for parameter %s", a.Table.Name(p))
		}
	}
	val := func(s expr.Sym) int64 { return params[s] }
	for _, rc := range a.Resilience {
		ok, err := rc.Holds(val)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("counter: parameters violate resilience condition %s", rc.String(a.Table))
		}
	}
	idx := make(map[expr.Sym]int, len(a.Shared))
	for i, s := range a.Shared {
		idx[s] = i
	}
	return &System{TA: a, Params: params, sharedIdx: idx}, nil
}

// NumCorrect evaluates the correct-process count (conventionally n-f).
func (s *System) NumCorrect() (int64, error) {
	return s.TA.CorrectCount.Eval(func(sym expr.Sym) int64 { return s.Params[sym] })
}

// Config is a configuration of the counter system: location counters K
// (indexed by ta.LocID) and shared-variable values V (indexed by the
// position of the variable in TA.Shared).
type Config struct {
	K []int64
	V []int64
}

// Clone deep-copies the configuration.
func (c Config) Clone() Config {
	out := Config{K: make([]int64, len(c.K)), V: make([]int64, len(c.V))}
	copy(out.K, c.K)
	copy(out.V, c.V)
	return out
}

// Key returns a canonical string identity for visited-set hashing.
func (c Config) Key() string {
	var b strings.Builder
	b.Grow(4 * (len(c.K) + len(c.V)))
	for _, k := range c.K {
		fmt.Fprintf(&b, "%d,", k)
	}
	b.WriteByte('|')
	for _, v := range c.V {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// String renders the configuration with location and variable names.
func (s *System) String(c Config) string {
	var parts []string
	for i, k := range c.K {
		if k != 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", s.TA.Locations[i].Name, k))
		}
	}
	for i, v := range c.V {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", s.TA.Table.Name(s.TA.Shared[i]), v))
		}
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}

// valuation builds the symbol valuation of c (parameters plus shared vars).
func (s *System) valuation(c Config) func(expr.Sym) int64 {
	return func(sym expr.Sym) int64 {
		if i, ok := s.sharedIdx[sym]; ok {
			return c.V[i]
		}
		return s.Params[sym]
	}
}

// GuardHolds evaluates a rule's guard in c.
func (s *System) GuardHolds(c Config, ruleIdx int) (bool, error) {
	r := s.TA.Rules[ruleIdx]
	val := s.valuation(c)
	for _, g := range r.Guard {
		ok, err := g.Holds(val)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Enabled reports whether the rule can fire at least once in c.
func (s *System) Enabled(c Config, ruleIdx int) (bool, error) {
	r := s.TA.Rules[ruleIdx]
	if c.K[r.From] < 1 {
		return false, nil
	}
	return s.GuardHolds(c, ruleIdx)
}

// Apply fires the rule factor times (acceleration). Because guards are
// rising and updates are nonnegative, a rule whose guard holds before the
// burst stays enabled throughout it; Apply checks the guard once and that
// the source holds at least factor processes.
func (s *System) Apply(c Config, ruleIdx int, factor int64) (Config, error) {
	if factor < 0 {
		return Config{}, fmt.Errorf("counter: negative factor %d", factor)
	}
	if factor == 0 {
		return c.Clone(), nil
	}
	r := s.TA.Rules[ruleIdx]
	if c.K[r.From] < factor {
		return Config{}, fmt.Errorf("counter: rule %s needs %d processes at %s but only %d are there",
			r.Name, factor, s.TA.Locations[r.From].Name, c.K[r.From])
	}
	ok, err := s.GuardHolds(c, ruleIdx)
	if err != nil {
		return Config{}, err
	}
	if !ok {
		return Config{}, fmt.Errorf("counter: rule %s guard %s does not hold in %s",
			r.Name, s.TA.GuardString(r), s.String(c))
	}
	out := c.Clone()
	out.K[r.From] -= factor
	out.K[r.To] += factor
	for sym, d := range r.Update {
		out.V[s.sharedIdx[sym]] += d * factor
	}
	return out, nil
}

// Step is one accelerated firing of a rule.
type Step struct {
	Rule   int
	Factor int64
}

// Run is an initial configuration together with a sequence of steps.
type Run struct {
	Init  Config
	Steps []Step
}

// Replay validates and executes the run, returning every intermediate
// configuration (len(Steps)+1 entries). It fails if any step is illegal, if
// the initial configuration places processes outside initial locations, or
// if the total process count does not match n-f.
func (s *System) Replay(run Run) ([]Config, error) {
	if len(run.Init.K) != len(s.TA.Locations) || len(run.Init.V) != len(s.TA.Shared) {
		return nil, fmt.Errorf("counter: initial configuration has wrong dimensions")
	}
	var total int64
	for i, k := range run.Init.K {
		if k < 0 {
			return nil, fmt.Errorf("counter: negative counter at %s", s.TA.Locations[i].Name)
		}
		if k > 0 && !s.TA.Locations[i].Initial {
			return nil, fmt.Errorf("counter: %d processes start in non-initial location %s",
				k, s.TA.Locations[i].Name)
		}
		total += k
	}
	want, err := s.NumCorrect()
	if err != nil {
		return nil, err
	}
	if total != want {
		return nil, fmt.Errorf("counter: initial configuration has %d processes, want n-f = %d", total, want)
	}
	for i, v := range run.Init.V {
		if v != 0 {
			return nil, fmt.Errorf("counter: shared variable %s starts at %d, want 0",
				s.TA.Table.Name(s.TA.Shared[i]), v)
		}
	}
	trace := make([]Config, 0, len(run.Steps)+1)
	cur := run.Init.Clone()
	trace = append(trace, cur)
	for i, st := range run.Steps {
		if st.Rule < 0 || st.Rule >= len(s.TA.Rules) {
			return nil, fmt.Errorf("counter: step %d references unknown rule %d", i, st.Rule)
		}
		next, err := s.Apply(cur, st.Rule, st.Factor)
		if err != nil {
			return nil, fmt.Errorf("counter: step %d: %w", i, err)
		}
		cur = next
		trace = append(trace, cur)
	}
	return trace, nil
}

// Format renders a run for diagnostics: initial configuration and each
// non-trivial step.
func (s *System) Format(run Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "init: %s\n", s.String(run.Init))
	cur := run.Init
	for _, st := range run.Steps {
		if st.Factor == 0 {
			continue
		}
		r := s.TA.Rules[st.Rule]
		next, err := s.Apply(cur, st.Rule, st.Factor)
		if err != nil {
			fmt.Fprintf(&b, "  %s x%d: INVALID (%v)\n", r.Name, st.Factor, err)
			return b.String()
		}
		fmt.Fprintf(&b, "  %s x%d (%s -> %s): %s\n", r.Name, st.Factor,
			s.TA.Locations[r.From].Name, s.TA.Locations[r.To].Name, s.String(next))
		cur = next
	}
	return b.String()
}

// EnumerateInitial calls fn for every initial configuration: all
// distributions of the n-f correct processes over the initial locations.
// Enumeration stops early if fn returns an error.
func (s *System) EnumerateInitial(fn func(Config) error) error {
	inits := s.TA.InitialLocs()
	nproc, err := s.NumCorrect()
	if err != nil {
		return err
	}
	k := make([]int64, len(s.TA.Locations))
	var rec func(i int, left int64) error
	rec = func(i int, left int64) error {
		if i == len(inits)-1 {
			k[inits[i]] = left
			c := Config{K: append([]int64(nil), k...), V: make([]int64, len(s.TA.Shared))}
			k[inits[i]] = 0
			return fn(c)
		}
		for take := int64(0); take <= left; take++ {
			k[inits[i]] = take
			if err := rec(i+1, left-take); err != nil {
				return err
			}
			k[inits[i]] = 0
		}
		return nil
	}
	if len(inits) == 0 {
		return fmt.Errorf("counter: no initial locations")
	}
	return rec(0, nproc)
}

// SumLocs returns Σ K[l] over the set.
func SumLocs(c Config, set ta.LocSet) int64 {
	var sum int64
	for id := range set {
		sum += c.K[id]
	}
	return sum
}

// SortedRules returns rule indices ordered by source-location depth then rule
// index: the topological firing order used by schema segments.
func SortedRules(a *ta.TA) ([]int, error) {
	depth, err := a.Depth()
	if err != nil {
		return nil, err
	}
	var idx []int
	for i, r := range a.Rules {
		if r.SelfLoop() || r.RoundSwitch {
			continue
		}
		idx = append(idx, i)
	}
	sort.SliceStable(idx, func(x, y int) bool {
		rx, ry := a.Rules[idx[x]], a.Rules[idx[y]]
		if depth[rx.From] != depth[ry.From] {
			return depth[rx.From] < depth[ry.From]
		}
		return idx[x] < idx[y]
	})
	return idx, nil
}
