package counter

import (
	"errors"
	"fmt"

	"repro/internal/ta"
)

// Explorer performs explicit-state breadth-first exploration of a counter
// system for fixed parameters. This is the baseline verification method
// (à la TLC/SPIN) that the paper's related work contrasts with parameterized
// model checking: exact for one parameter instance, but subject to state
// explosion as n grows.
type Explorer struct {
	Sys *System
	// MaxStates bounds exploration (0 = default 2,000,000).
	MaxStates int
}

// ErrStateBudget is returned when exploration exceeds MaxStates.
var ErrStateBudget = errors.New("counter: state budget exhausted")

// Stats describes an exploration.
type Stats struct {
	States      int
	Transitions int
	Frozen      int // states with no enabled progress rule
}

// errStop is the internal sentinel used to end exploration early.
var errStop = errors.New("stop exploration")

// BFS explores all reachable configurations, invoking visit for each newly
// discovered one (frozen reports whether no progress rule is enabled there).
// Returning a non-nil error from visit aborts the search; the sentinel
// returned by Stop() aborts without error.
func (e *Explorer) BFS(visit func(c Config, frozen bool) error) (Stats, error) {
	_, stats, err := e.search(func(c Config, frozen bool) (bool, error) {
		if visit == nil {
			return false, nil
		}
		if err := visit(c, frozen); err != nil {
			if errors.Is(err, errStop) {
				return true, nil
			}
			return false, err
		}
		return false, nil
	})
	return stats, err
}

// Stop returns the sentinel that ends a BFS early without error.
func Stop() error { return errStop }

type parentLink struct {
	key  string
	rule int
}

// search runs BFS and returns the run reaching the first configuration for
// which found returns true (nil if none).
func (e *Explorer) search(found func(c Config, frozen bool) (bool, error)) (*Run, Stats, error) {
	maxStates := e.MaxStates
	if maxStates <= 0 {
		maxStates = 2_000_000
	}
	sys := e.Sys

	visited := make(map[string]bool)
	parents := make(map[string]parentLink)
	initKeys := make(map[string]Config)
	var queue []Config
	var stats Stats

	err := sys.EnumerateInitial(func(c Config) error {
		key := c.Key()
		if visited[key] {
			return nil
		}
		visited[key] = true
		initKeys[key] = c
		queue = append(queue, c)
		return nil
	})
	if err != nil {
		return nil, stats, err
	}

	reconstruct := func(c Config) (*Run, error) {
		var steps []Step
		key := c.Key()
		for {
			if init, ok := initKeys[key]; ok {
				// reverse steps
				for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
					steps[i], steps[j] = steps[j], steps[i]
				}
				return &Run{Init: init, Steps: steps}, nil
			}
			link, ok := parents[key]
			if !ok {
				return nil, fmt.Errorf("counter: broken parent chain at %s", key)
			}
			steps = append(steps, Step{Rule: link.rule, Factor: 1})
			key = link.key
		}
	}

	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		stats.States++
		if stats.States > maxStates {
			return nil, stats, ErrStateBudget
		}

		frozen := true
		cKey := c.Key()
		for ri, r := range sys.TA.Rules {
			en, err := sys.Enabled(c, ri)
			if err != nil {
				return nil, stats, err
			}
			if !en {
				continue
			}
			if !r.SelfLoop() {
				frozen = false
				next, err := sys.Apply(c, ri, 1)
				if err != nil {
					return nil, stats, err
				}
				nKey := next.Key()
				if !visited[nKey] {
					visited[nKey] = true
					parents[nKey] = parentLink{key: cKey, rule: ri}
					queue = append(queue, next)
					stats.Transitions++
				}
			}
		}
		if frozen {
			stats.Frozen++
		}
		hit, err := found(c, frozen)
		if err != nil {
			return nil, stats, err
		}
		if hit {
			run, err := reconstruct(c)
			return run, stats, err
		}
	}
	return nil, stats, nil
}

// FindViolation searches for a reachable configuration satisfying bad and
// returns the run reaching it (nil if the predicate is unreachable).
func (e *Explorer) FindViolation(bad func(Config) bool) (*Run, Stats, error) {
	return e.search(func(c Config, _ bool) (bool, error) {
		return bad(c), nil
	})
}

// FindStableViolation searches for a reachable configuration that satisfies
// every justice requirement yet violates the goal. Extending the run by
// stuttering there forever yields a fair infinite execution on which the goal
// never holds, so such a configuration witnesses a liveness violation; nil
// means the liveness property holds for these parameters under the given
// justice assumptions.
//
// Pass the automaton's DefaultJustice (possibly extended with gadget
// requirements) to obtain the reliable-communication semantics of the paper;
// note that a configuration with an enabled rule is justice-stable only if no
// justice requirement forces that rule's source to drain.
func (e *Explorer) FindStableViolation(goalViolated func(Config) bool, justice []ta.Justice) (*Run, Stats, error) {
	return e.search(func(c Config, _ bool) (bool, error) {
		if !goalViolated(c) {
			return false, nil
		}
		ok, err := e.justiceHolds(c, justice)
		if err != nil {
			return false, err
		}
		return ok, nil
	})
}

// justiceHolds reports whether the frozen configuration is consistent with
// every justice requirement: a triggered requirement must have an empty
// location (otherwise the frozen continuation would be unfair and is not a
// legitimate counterexample).
func (e *Explorer) justiceHolds(c Config, justice []ta.Justice) (bool, error) {
	val := e.Sys.valuation(c)
	for _, j := range justice {
		triggered := true
		for _, t := range j.Trigger {
			ok, err := t.Holds(val)
			if err != nil {
				return false, err
			}
			if !ok {
				triggered = false
				break
			}
		}
		if triggered && c.K[j.Loc] > 0 {
			return false, nil
		}
	}
	return true, nil
}
