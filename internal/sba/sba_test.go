package sba

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/network"
)

func buildSystem(t *testing.T, cfg Config, inputs []int, byzFactory func(id network.ProcID, all []network.ProcID) network.Process, sched network.Scheduler) (*network.System, []*Process) {
	t.Helper()
	all := AllIDs(cfg.N)
	correct, err := Processes(cfg, inputs, all)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]network.Process, 0, cfg.N)
	for _, p := range correct {
		procs = append(procs, p)
	}
	for id := len(inputs); id < cfg.N; id++ {
		procs = append(procs, byzFactory(network.ProcID(id), all))
	}
	sys, err := network.NewSystem(procs, sched)
	if err != nil {
		t.Fatal(err)
	}
	return sys, correct
}

func silentFactory(id network.ProcID, _ []network.ProcID) network.Process {
	return &Silent{Id: id}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{N: 0, T: 0, MaxRounds: 5},
		{N: 4, T: -1, MaxRounds: 5},
		{N: 4, T: 1, MaxRounds: 0},
		{N: 6, T: 2, MaxRounds: 5}, // n <= 3t
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", bad)
		}
	}
	if _, err := NewProcess(0, 2, Config{N: 4, T: 1, MaxRounds: 5}, AllIDs(4)); err == nil {
		t.Error("non-binary input should be rejected")
	}
}

// TestUnanimousReducesToOwnValue: with all correct processes proposing v and
// no Byzantine interference the reduction returns v at the first round with
// parity v (strong validity + termination).
func TestUnanimousReducesToOwnValue(t *testing.T) {
	for v := 0; v <= 1; v++ {
		cfg := Config{N: 4, T: 1, MaxRounds: 10}
		inputs := []int{v, v, v}
		sys, correct := buildSystem(t, cfg, inputs, silentFactory, network.FIFOScheduler{})
		if _, err := sys.Run(100000, func() bool { return AllDecided(correct) }); err != nil {
			t.Fatal(err)
		}
		if !AllDecided(correct) {
			t.Fatalf("v=%d: not all decided:\n%s", v, Describe(correct))
		}
		for _, p := range correct {
			got, round, _ := p.Decided()
			if got != v {
				t.Errorf("v=%d: process %d reduced to %d:\n%s", v, p.ID(), got, Describe(correct))
			}
			// Under unanimity only v ever locks, so the first v-parity round
			// decides: round v itself.
			if round != v {
				t.Errorf("v=%d: process %d decided at round %d, want %d", v, p.ID(), round, v)
			}
		}
		if err := Agreement(correct); err != nil {
			t.Error(err)
		}
		if err := Validity(correct, inputs); err != nil {
			t.Error(err)
		}
	}
}

// TestDecidedRoundParityMatchesBit: a process only decides b at a round with
// parity b — the rotating-default decide rule.
func TestDecidedRoundParityMatchesBit(t *testing.T) {
	prop := func(seed int64, inputBits uint8) bool {
		cfg := Config{N: 4, T: 1, MaxRounds: 8}
		rng := rand.New(rand.NewSource(seed))
		inputs := []int{int(inputBits) & 1, int(inputBits>>1) & 1, int(inputBits>>2) & 1}
		sys, correct := buildSystem(t, cfg, inputs, silentFactory, network.RandomScheduler{Rng: rng})
		if _, err := sys.Run(200000, func() bool { return AllDecided(correct) }); err != nil {
			t.Fatal(err)
		}
		for _, p := range correct {
			if v, r, ok := p.Decided(); ok && v != r%2 {
				t.Logf("process %d decided %d at round %d", p.ID(), v, r)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSplitInputsSafetyUnderRandomSchedules fuzzes schedules and Byzantine
// strategies: agreement and validity must hold on every run with f <= t.
func TestSplitInputsSafetyUnderRandomSchedules(t *testing.T) {
	prop := func(seed int64, inputBits uint8, strategy uint8) bool {
		cfg := Config{N: 4, T: 1, MaxRounds: 6}
		rng := rand.New(rand.NewSource(seed))
		inputs := []int{int(inputBits) & 1, int(inputBits>>1) & 1, int(inputBits>>2) & 1}
		all := AllIDs(cfg.N)

		var byz network.Process
		switch strategy % 3 {
		case 0:
			byz = &Silent{Id: 3}
		case 1:
			byz = &Equivocator{Id: 3, All: all, ZeroSide: func(p network.ProcID) bool { return p%2 == 0 }}
		default:
			byz = &RandomLiar{Id: 3, All: all, Rng: rng}
		}
		correct, err := Processes(cfg, inputs, all)
		if err != nil {
			t.Fatal(err)
		}
		procs := []network.Process{correct[0], correct[1], correct[2], byz}
		sys, err := network.NewSystem(procs, network.RandomScheduler{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(200000, func() bool { return AllDecided(correct) }); err != nil {
			t.Fatal(err)
		}
		ok := Agreement(correct) == nil && Validity(correct, inputs) == nil
		if !ok {
			t.Logf("replay with: seed=%d inputBits=%d strategy=%d", seed, inputBits, strategy)
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLargerSystemSafety repeats the fuzzing at n=7, t=2, f=2.
func TestLargerSystemSafety(t *testing.T) {
	prop := func(seed int64, inputBits uint8) bool {
		cfg := Config{N: 7, T: 2, MaxRounds: 6}
		rng := rand.New(rand.NewSource(seed))
		inputs := make([]int, 5)
		for i := range inputs {
			inputs[i] = int(inputBits>>i) & 1
		}
		all := AllIDs(cfg.N)
		correct, err := Processes(cfg, inputs, all)
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]network.Process, 0, cfg.N)
		for _, p := range correct {
			procs = append(procs, p)
		}
		procs = append(procs,
			&Equivocator{Id: 5, All: all, ZeroSide: func(p network.ProcID) bool { return p < 3 }},
			&RandomLiar{Id: 6, All: all, Rng: rng},
		)
		sys, err := network.NewSystem(procs, network.RandomScheduler{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(400000, func() bool { return AllDecided(correct) }); err != nil {
			t.Fatal(err)
		}
		ok := Agreement(correct) == nil && Validity(correct, inputs) == nil
		if !ok {
			t.Logf("replay with: seed=%d inputBits=%d", seed, inputBits)
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDisagreementBeyondResilience: with two coordinated equivocators
// against two correct processes (f = 2 > t = 1) the reduction can return
// different bits — the simulator counterpart of the violated-resilience TA
// counterexample, and the reason Config.Validate pins n > 3t for correct
// deployments.
func TestDisagreementBeyondResilience(t *testing.T) {
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		cfg := Config{N: 4, T: 1, MaxRounds: 8}
		all := AllIDs(cfg.N)
		inputs := []int{0, 1}
		correct, err := Processes(cfg, inputs, all)
		if err != nil {
			t.Fatal(err)
		}
		zeroSide := func(p network.ProcID) bool { return p == 0 }
		rng := rand.New(rand.NewSource(seed))
		procs := []network.Process{
			correct[0], correct[1],
			&Equivocator{Id: 2, All: all, ZeroSide: zeroSide},
			&Equivocator{Id: 3, All: all, ZeroSide: zeroSide},
		}
		sys, err := network.NewSystem(procs, network.RandomScheduler{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(100000, func() bool { return AllDecided(correct) }); err != nil {
			t.Fatal(err)
		}
		if AllDecided(correct) && Agreement(correct) != nil {
			found = true
		}
	}
	if !found {
		t.Error("expected at least one disagreement schedule with f=2 > t=1")
	}
}

// TestMalformedContentIgnored: out-of-range values and unknown kinds do not
// corrupt state or panic.
func TestMalformedContentIgnored(t *testing.T) {
	cfg := Config{N: 4, T: 1, MaxRounds: 5}
	p, err := NewProcess(0, 1, cfg, AllIDs(4))
	if err != nil {
		t.Fatal(err)
	}
	drop := func(network.Message) {}
	p.Start(drop)
	for _, m := range []network.Message{
		{From: 1, Round: 0, Kind: network.MsgVote, Value: 2},
		{From: 1, Round: 0, Kind: network.MsgVote, Value: -1},
		{From: 1, Round: 0, Kind: network.MsgCand, Value: 7},
		{From: 1, Round: -3, Kind: network.MsgVote, Value: 1},
		{From: 1, Round: 99, Kind: network.MsgVote, Value: 1},
		{From: 1, Round: 0, Kind: network.MsgBV, Value: 1},
	} {
		p.Deliver(m, drop)
	}
	st := p.state(0)
	if len(st.voteSenders[0]) != 0 || len(st.voteSenders[1]) != 0 || len(st.candidates) != 0 {
		t.Errorf("malformed messages mutated round state: %+v", st)
	}
}

// TestSnapshotRestoreEquivalence: a process restored from its snapshot
// behaves identically — drive two copies through the same suffix and
// compare canonical encodings.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	cfg := Config{N: 4, T: 1, MaxRounds: 6}
	all := AllIDs(4)
	mk := func() *Process {
		p, err := NewProcess(0, 1, cfg, all)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	drop := func(network.Message) {}
	script := []network.Message{
		{From: 1, Round: 0, Kind: network.MsgVote, Value: 1},
		{From: 2, Round: 0, Kind: network.MsgVote, Value: 1},
		{From: 3, Round: 0, Kind: network.MsgVote, Value: 0},
		{From: 1, Round: 0, Kind: network.MsgCand, Value: 1},
		{From: 2, Round: 0, Kind: network.MsgCand, Value: 1},
		{From: 3, Round: 1, Kind: network.MsgVote, Value: 0},
	}
	a, b := mk(), mk()
	a.Start(drop)
	b.Start(drop)
	for i, m := range script {
		a.Deliver(m, drop)
		b.Deliver(m, drop)
		if i == 2 { // crash/recover b mid-run
			b2 := mk()
			b2.Restore(b.Snapshot())
			b = b2
		}
	}
	ea, eb := EncodeSnapshot(a.Snapshot()), EncodeSnapshot(b.Snapshot())
	if string(ea) != string(eb) {
		t.Errorf("restored process diverged:\n a=%x\n b=%x", ea, eb)
	}
}
