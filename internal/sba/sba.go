// Package sba is an executable SBA*-style binary reduction protocol — the
// Turpin–Coan two-step reduction for n > 3t as adapted by the Dusk SBA*
// agreement loop. Each round runs two reduction steps: step 1 votes the
// current estimate and threshold-collects votes until a bit is *locked*
// (n-t distinct senders), step 2 propagates a single candidate bit (the
// first-locked one) and collects n-t candidates that are justified by a
// local lock. A uniform candidate set reduces the round to that bit; a mixed
// set falls back to the round's default.
//
// Two deliberate adaptations keep the reduction sound in full asynchrony,
// where Turpin–Coan's synchronous-round counting argument is unavailable:
//
//   - Step 1 amplifies votes Bracha-style (echo a bit once t+1 distinct
//     senders vote it), so a locked bit is always justified by a correct
//     vote and locks propagate to every correct process.
//   - The default value rotates with the round parity (round r defaults to
//     r mod 2) instead of being a fixed "empty block": a process decides the
//     reduced bit only when it equals the round default, so processes that
//     saw a mixed candidate set and fell back to the default adopt exactly
//     the bit any uniform-set process decided. A fixed default would let a
//     decided bit and the fallback diverge, which is safe only under
//     synchronous rounds.
//
// Processes run over the asynchronous simulated network of internal/network
// and are cross-validated against the multi-round threshold automaton
// specs/sba.ta (internal/models.SBA) the same way dbft is validated against
// its specs.
package sba

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// Config carries the static parameters of a run.
type Config struct {
	N int // total number of processes
	T int // tolerated Byzantine processes (algorithm constant)
	// MaxRounds caps execution; a correct process stops advancing past it.
	MaxRounds int
}

// Validate checks the configuration. The reduction thresholds require
// n > 3t (quorum intersection of two n-t quorums contains a correct
// process).
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("sba: n must be positive, got %d", c.N)
	}
	if c.T < 0 {
		return fmt.Errorf("sba: t must be nonnegative, got %d", c.T)
	}
	if c.N <= 3*c.T {
		return fmt.Errorf("sba: reduction requires n > 3t, got n=%d t=%d", c.N, c.T)
	}
	if c.MaxRounds <= 0 {
		return fmt.Errorf("sba: MaxRounds must be positive, got %d", c.MaxRounds)
	}
	return nil
}

// roundState holds the per-round message state. Communication closure is
// implemented exactly as in dbft: one state per round, early messages
// accumulate here and take effect once the process enters the round.
type roundState struct {
	// voteSenders[v] = distinct processes from which VOTE(v) was received.
	voteSenders [2]map[network.ProcID]bool
	// voted[v] reports whether this process has broadcast VOTE(v).
	voted [2]bool
	// locked[v] reports whether v reached n-t distinct vote senders — the
	// step-1 threshold-collect output.
	locked [2]bool
	// lockOrder records the bits in lock order; the first entry is the
	// step-2 candidate.
	lockOrder []int
	candSent  bool
	// candidates[q] = the candidate bit announced by q's first CAND message.
	candidates map[network.ProcID]int
	candOrder  []network.ProcID
	// justified counts candidates whose bit is locked locally — the ones the
	// step-2 exit scan would accept. Locks only grow, so the count is bumped
	// per arrival and recounted on the (<= 2 per round) lock additions.
	justified int
}

func newRoundState() *roundState {
	return &roundState{
		voteSenders: [2]map[network.ProcID]bool{make(map[network.ProcID]bool), make(map[network.ProcID]bool)},
		candidates:  make(map[network.ProcID]int),
	}
}

// recountJustified recomputes justified from scratch; called when a bit
// locks (which can turn previously blocked candidates justified) and when a
// round state is rebuilt from a clone or a decoded snapshot.
func (st *roundState) recountJustified() {
	c := 0
	for _, q := range st.candOrder {
		if st.locked[st.candidates[q]] {
			c++
		}
	}
	st.justified = c
}

// Process is a correct SBA reduction process.
type Process struct {
	id  network.ProcID
	cfg Config
	all []network.ProcID // broadcast targets

	est    int
	round  int
	rounds map[int]*roundState

	decided      bool
	decision     int
	decidedRound int

	// outbox records every logical broadcast (vote echoes and candidates,
	// all rounds) for verbatim retransmission — re-sending recorded content
	// is what keeps a crash-recovered replica from equivocating against its
	// pre-crash messages.
	outbox []network.Message
	// Activity-gated retransmission backoff, the dbft regime: a tick period
	// that delivered new information skips the countdown; the wait doubles
	// up to retxBackoffCap and resets on round entry.
	retxWait   int
	retxLeft   int
	sawTraffic bool

	// EstimateHistory[r] is the estimate held at the START of round r.
	EstimateHistory []int
	// LockOrder[r] lists the bits in step-1 lock order for round r
	// (diagnostics; the first entry is the candidate the process propagated).
	LockOrder map[int][]int
}

var _ network.Process = (*Process)(nil)
var _ network.Ticker = (*Process)(nil)

// NewProcess builds a correct process with the given input bit.
func NewProcess(id network.ProcID, input int, cfg Config, all []network.ProcID) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if input != 0 && input != 1 {
		return nil, fmt.Errorf("sba: input must be binary, got %d", input)
	}
	return &Process{
		id:        id,
		cfg:       cfg,
		all:       append([]network.ProcID(nil), all...),
		est:       input,
		rounds:    map[int]*roundState{},
		LockOrder: map[int][]int{},
	}, nil
}

// ID implements network.Process.
func (p *Process) ID() network.ProcID { return p.id }

// Decided reports the reduced bit, if any.
func (p *Process) Decided() (value int, round int, ok bool) {
	return p.decision, p.decidedRound, p.decided
}

// Round returns the current round.
func (p *Process) Round() int { return p.round }

// Estimate returns the current estimate.
func (p *Process) Estimate() int { return p.est }

func (p *Process) state(r int) *roundState {
	st, ok := p.rounds[r]
	if !ok {
		st = newRoundState()
		p.rounds[r] = st
	}
	return st
}

// Start implements network.Process: enter round 0 and vote the input.
func (p *Process) Start(send network.Sender) {
	p.EstimateHistory = append(p.EstimateHistory, p.est)
	p.vote(p.round, p.est, send)
}

// vote emits VOTE(r, v) once per (round, bit).
func (p *Process) vote(round, v int, send network.Sender) {
	st := p.state(round)
	if st.voted[v] {
		return
	}
	st.voted[v] = true
	p.broadcast(send, network.Message{
		From: p.id, Round: round, Kind: network.MsgVote, Value: v,
	})
}

// broadcast sends m to all and records it in the outbox for retransmission.
func (p *Process) broadcast(send network.Sender, m network.Message) {
	p.outbox = append(p.outbox, m)
	network.Broadcast(send, p.all, m)
}

// Deliver implements network.Process. Only a message carrying new
// information counts as traffic for the retransmission heuristic (see the
// dbft.Process.Deliver comment for the liveness wedge this avoids).
func (p *Process) Deliver(m network.Message, send network.Sender) {
	if m.Round < 0 || m.Round > p.cfg.MaxRounds {
		return
	}
	if m.Value != 0 && m.Value != 1 {
		return // malformed (Byzantine) content is ignored
	}
	st := p.state(m.Round)
	switch m.Kind {
	case network.MsgVote:
		if st.voteSenders[m.Value][m.From] {
			return // duplicate: nothing new, no traffic credit
		}
		st.voteSenders[m.Value][m.From] = true
	case network.MsgCand:
		if _, dup := st.candidates[m.From]; dup {
			return // only the first candidate per sender counts
		}
		st.candidates[m.From] = m.Value
		st.candOrder = append(st.candOrder, m.From)
		if st.locked[m.Value] {
			st.justified++
		}
	default:
		return
	}
	p.sawTraffic = true
	p.progress(m.Round, send)
}

// progress re-evaluates the guarded statements of both reduction steps for a
// round. Vote amplification and locking fire for any round (they only
// depend on that round's messages); the candidate broadcast and the exit
// evaluation only fire for the process's current round.
func (p *Process) progress(round int, send network.Sender) {
	st := p.state(round)

	// Step 1 amplification: echo v after t+1 distinct VOTE(v) — a locked
	// bit is thereby always justified by a correct vote.
	for v := 0; v <= 1; v++ {
		if len(st.voteSenders[v]) >= p.cfg.T+1 && !st.voted[v] {
			p.vote(round, v, send)
		}
	}
	// Step 1 threshold-collect: lock v after n-t distinct VOTE(v).
	for v := 0; v <= 1; v++ {
		if len(st.voteSenders[v]) >= p.cfg.N-p.cfg.T && !st.locked[v] {
			st.locked[v] = true
			st.lockOrder = append(st.lockOrder, v)
			p.LockOrder[round] = append(p.LockOrder[round], v)
			st.recountJustified()
		}
	}

	if round != p.round {
		return
	}
	// Step 2 propagate: once some bit is locked, announce the first-locked
	// bit as this process's candidate (once).
	if !st.candSent && len(st.lockOrder) > 0 {
		st.candSent = true
		p.broadcast(send, network.Message{
			From: p.id, Round: round, Kind: network.MsgCand, Value: st.lockOrder[0],
		})
	}
	p.tryExit(send)
}

// tryExit implements the step-2 exit: wait until n-t candidates justified by
// local locks, reduce to the uniform bit (deciding it when it matches the
// round default) or fall back to the default on a mixed set.
func (p *Process) tryExit(send network.Sender) {
	st := p.state(p.round)
	if !st.candSent {
		return // a process propagates before it evaluates
	}
	if st.justified < p.cfg.N-p.cfg.T {
		return // the scan below cannot reach n-t chosen yet
	}
	var seen [2]bool
	chosen := 0
	for _, q := range st.candOrder {
		b := st.candidates[q]
		if !st.locked[b] {
			continue
		}
		seen[b] = true
		chosen++
		if chosen == p.cfg.N-p.cfg.T {
			break
		}
	}
	if chosen < p.cfg.N-p.cfg.T {
		return
	}

	def := p.round % 2
	switch {
	case seen[0] != seen[1]: // uniform candidate set {b}
		b := 0
		if seen[1] {
			b = 1
		}
		p.est = b
		if b == def && !p.decided {
			p.decided = true
			p.decision = b
			p.decidedRound = p.round
		}
	default: // mixed: no uniform-value consensus, fall back to the default
		p.est = def
	}
	p.advance(send)
}

// advance enters the next round and replays its buffered messages.
func (p *Process) advance(send network.Sender) {
	if p.round >= p.cfg.MaxRounds {
		return
	}
	p.round++
	p.EstimateHistory = append(p.EstimateHistory, p.est)
	p.retxWait, p.retxLeft = 0, 0 // entering a round resets the backoff
	p.vote(p.round, p.est, send)
	// Guards over already-buffered messages of the new round re-fire.
	p.progress(p.round, send)
}

// retxBackoffCap bounds the retransmission backoff (in ticks).
const retxBackoffCap = 8

// OnTick implements network.Ticker: periodic retransmission with capped
// exponential backoff, gated on quiet periods — the dbft regime. The whole
// outbox is re-broadcast so a replica recovering from a crash or partition
// gets the old-round vote and candidate quorums replayed; every handler is
// idempotent (distinct-sender sets, first-candidate-wins).
func (p *Process) OnTick(step int, send network.Sender) {
	if p.sawTraffic {
		p.sawTraffic = false
		return
	}
	if p.retxLeft > 0 {
		p.retxLeft--
		return
	}
	p.Retransmit(send)
	if p.retxWait < retxBackoffCap {
		if p.retxWait == 0 {
			p.retxWait = 1
		} else {
			p.retxWait *= 2
		}
	}
	p.retxLeft = p.retxWait
}

// Retransmit immediately re-broadcasts every recorded logical broadcast.
func (p *Process) Retransmit(send network.Sender) {
	for _, m := range p.outbox {
		network.Broadcast(send, p.all, m)
	}
}

// Processes builds correct processes with the given inputs and ids
// 0..len(inputs)-1; ids beyond are left to Byzantine strategies.
func Processes(cfg Config, inputs []int, all []network.ProcID) ([]*Process, error) {
	out := make([]*Process, 0, len(inputs))
	for i, in := range inputs {
		p, err := NewProcess(network.ProcID(i), in, cfg, all)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// AllIDs returns the id slice [0, n).
func AllIDs(n int) []network.ProcID {
	out := make([]network.ProcID, n)
	for i := range out {
		out[i] = network.ProcID(i)
	}
	return out
}

// Agreement checks that no two decided processes reduced to different bits,
// returning the offending pair otherwise.
func Agreement(procs []*Process) error {
	decidedVal := -1
	var who network.ProcID
	for _, p := range procs {
		v, _, ok := p.Decided()
		if !ok {
			continue
		}
		if decidedVal == -1 {
			decidedVal, who = v, p.ID()
		} else if v != decidedVal {
			return fmt.Errorf("sba: agreement violated: process %d reduced to %d, process %d reduced to %d",
				who, decidedVal, p.ID(), v)
		}
	}
	return nil
}

// Validity checks that every reduced bit was proposed by some correct
// process: under unanimity the reduction must return the unanimous bit, and
// a binary decision is always one of the proposed values otherwise.
func Validity(procs []*Process, inputs []int) error {
	proposed := map[int]bool{}
	for _, in := range inputs {
		proposed[in] = true
	}
	for _, p := range procs {
		if v, _, ok := p.Decided(); ok && !proposed[v] {
			return fmt.Errorf("sba: validity violated: process %d reduced to %d, which no correct process proposed",
				p.ID(), v)
		}
	}
	return nil
}

// AllDecided reports whether every process in the slice decided.
func AllDecided(procs []*Process) bool {
	for _, p := range procs {
		if _, _, ok := p.Decided(); !ok {
			return false
		}
	}
	return true
}

// Describe summarizes the processes' outcomes.
func Describe(procs []*Process) string {
	type row struct {
		id      network.ProcID
		est     int
		round   int
		decided string
	}
	rows := make([]row, len(procs))
	for i, p := range procs {
		r := row{id: p.ID(), est: p.Estimate(), round: p.Round(), decided: "-"}
		if v, rd, ok := p.Decided(); ok {
			r.decided = fmt.Sprintf("%d@r%d", v, rd)
		}
		rows[i] = r
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	s := ""
	for _, r := range rows {
		s += fmt.Sprintf("p%d: est=%d round=%d decided=%s\n", r.id, r.est, r.round, r.decided)
	}
	return s
}
