package sba

import "repro/internal/network"

// Snapshot is a deep copy of a Process's durable state, the unit the fault
// plane persists for crash-recovery (volatile crash-recovery for sba: the
// plane captures a snapshot after every delivery and hands it back on
// revival). As with dbft, synchronous persistence is a safety requirement:
// a replica that crashed after broadcasting CAND and recovered from an older
// state could lock the bits in a different order and announce a conflicting
// candidate for the same round — equivocation, which only Byzantine
// processes are budgeted for.
type Snapshot struct {
	est      int
	round    int
	rounds   map[int]*roundState
	decided  bool
	decision int
	decRound int

	estimateHistory []int
	lockOrder       map[int][]int
	outbox          []network.Message
}

func cloneRoundState(st *roundState) *roundState {
	c := newRoundState()
	for v := 0; v <= 1; v++ {
		for id := range st.voteSenders[v] {
			c.voteSenders[v][id] = true
		}
		c.voted[v] = st.voted[v]
		c.locked[v] = st.locked[v]
	}
	c.lockOrder = append([]int(nil), st.lockOrder...)
	c.candSent = st.candSent
	for id, b := range st.candidates {
		c.candidates[id] = b
	}
	c.candOrder = append([]network.ProcID(nil), st.candOrder...)
	c.recountJustified()
	return c
}

func cloneLockOrder(d map[int][]int) map[int][]int {
	out := make(map[int][]int, len(d))
	for r, vs := range d {
		out[r] = append([]int(nil), vs...)
	}
	return out
}

// Snapshot captures the process's state.
func (p *Process) Snapshot() *Snapshot {
	s := &Snapshot{
		est:             p.est,
		round:           p.round,
		rounds:          make(map[int]*roundState, len(p.rounds)),
		decided:         p.decided,
		decision:        p.decision,
		decRound:        p.decidedRound,
		estimateHistory: append([]int(nil), p.EstimateHistory...),
		lockOrder:       cloneLockOrder(p.LockOrder),
		outbox:          append([]network.Message(nil), p.outbox...),
	}
	for r, st := range p.rounds {
		s.rounds[r] = cloneRoundState(st)
	}
	return s
}

// Restore replaces the process's in-memory state with the snapshot,
// simulating a reboot. Volatile retransmission backoff resets, so a
// recovered replica re-announces its outbox promptly.
func (p *Process) Restore(s *Snapshot) {
	p.est = s.est
	p.round = s.round
	p.rounds = make(map[int]*roundState, len(s.rounds))
	for r, st := range s.rounds {
		p.rounds[r] = cloneRoundState(st)
	}
	p.decided = s.decided
	p.decision = s.decision
	p.decidedRound = s.decRound
	p.EstimateHistory = append([]int(nil), s.estimateHistory...)
	p.LockOrder = cloneLockOrder(s.lockOrder)
	p.outbox = append([]network.Message(nil), s.outbox...)
	p.retxWait, p.retxLeft, p.sawTraffic = 0, 0, false
}
