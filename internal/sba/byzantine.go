package sba

import (
	"math/rand"

	"repro/internal/network"
)

// Silent is the crash-like Byzantine strategy: it never sends anything.
type Silent struct {
	Id network.ProcID
}

var _ network.Process = (*Silent)(nil)

// ID implements network.Process.
func (s *Silent) ID() network.ProcID { return s.Id }

// Start implements network.Process.
func (s *Silent) Start(network.Sender) {}

// Deliver implements network.Process.
func (s *Silent) Deliver(network.Message, network.Sender) {}

// Equivocator is the split-brain strategy for the reduction: for every round
// it observes, it sends VOTE 0 and CAND 0 to the processes selected by
// ZeroSide and VOTE 1 / CAND 1 to the rest, pushing the two sides toward
// locking and choosing opposite bits. With f <= t it cannot break safety;
// with f > n/3 it drives disagreement.
type Equivocator struct {
	Id       network.ProcID
	All      []network.ProcID
	ZeroSide func(network.ProcID) bool

	sent map[int]bool
}

var _ network.Process = (*Equivocator)(nil)

// ID implements network.Process.
func (e *Equivocator) ID() network.ProcID { return e.Id }

// Start implements network.Process.
func (e *Equivocator) Start(send network.Sender) {
	e.emit(0, send)
}

// Deliver implements network.Process: the first message of each round
// triggers that round's equivocation.
func (e *Equivocator) Deliver(m network.Message, send network.Sender) {
	e.emit(m.Round, send)
}

func (e *Equivocator) emit(round int, send network.Sender) {
	if e.sent == nil {
		e.sent = make(map[int]bool)
	}
	if e.sent[round] {
		return
	}
	e.sent[round] = true
	for _, to := range e.All {
		if to == e.Id {
			continue
		}
		v := 1
		if e.ZeroSide != nil && e.ZeroSide(to) {
			v = 0
		}
		send(network.Message{From: e.Id, To: to, Round: round, Kind: network.MsgVote, Value: v})
		send(network.Message{From: e.Id, To: to, Round: round, Kind: network.MsgCand, Value: v})
	}
}

// RandomLiar sends uniformly random votes and candidates to every process
// for every round it observes — the fuzzing adversary for property-based
// tests. Candidate values are drawn from {0, 1, 2} so the receiver's
// malformed-content sanitization is exercised too.
//
// Rng must be private to this process: in the bus's native drain mode each
// Byzantine process runs on its partition's goroutine, so a *rand.Rand
// shared between two liars is a data race (and nondeterministic even when
// the race detector stays quiet). Construction sites derive one seeded PRNG
// per liar id.
type RandomLiar struct {
	Id  network.ProcID
	All []network.ProcID
	Rng *rand.Rand

	sent map[int]bool
}

var _ network.Process = (*RandomLiar)(nil)

// ID implements network.Process.
func (l *RandomLiar) ID() network.ProcID { return l.Id }

// Start implements network.Process.
func (l *RandomLiar) Start(send network.Sender) { l.emit(0, send) }

// Deliver implements network.Process.
func (l *RandomLiar) Deliver(m network.Message, send network.Sender) { l.emit(m.Round, send) }

func (l *RandomLiar) emit(round int, send network.Sender) {
	if l.sent == nil {
		l.sent = make(map[int]bool)
	}
	if l.sent[round] {
		return
	}
	l.sent[round] = true
	for _, to := range l.All {
		if to == l.Id {
			continue
		}
		send(network.Message{From: l.Id, To: to, Round: round, Kind: network.MsgVote, Value: l.Rng.Intn(2)})
		if l.Rng.Intn(2) == 0 { // sometimes vote both bits — legal even for correct processes
			send(network.Message{From: l.Id, To: to, Round: round, Kind: network.MsgVote, Value: l.Rng.Intn(2)})
		}
		send(network.Message{From: l.Id, To: to, Round: round, Kind: network.MsgCand, Value: l.Rng.Intn(3)})
	}
}
