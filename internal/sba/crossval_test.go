package sba_test

// Cross-validation of the executable sba simulator against the shipped
// threshold-automaton spec, dbft-style: the TA verdicts are computed once
// from specs/sba.ta (the literal file the verification plane consumes, parsed
// back through taformat — not the in-memory builder), and every outcome of a
// seeded chaos campaign is then checked for consistency with them:
//
//   - TA agreement holds  ⇒ no simulator run may report an agreement error.
//   - TA validity holds   ⇒ no simulator run may report a validity error.
//   - TA termination holds ⇒ every fair-delivery plan must decide.
//   - The automaton's round structure (parity-0 half decides 0, parity-1
//     half decides 1) must show in every decision: decidedRound % 2 == bit.
//
// The same campaign also pins replay determinism: each seed must produce
// byte-identical fingerprints on the event-bus backend and the flat
// compatibility shim.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/models"
	"repro/internal/schema"
	"repro/internal/spec"
	"repro/internal/taformat"
)

const crossvalSeeds = 120

// taVerdicts solves every sba query against the shipped spec file and
// returns name -> outcome.
func taVerdicts(t *testing.T) map[string]spec.Outcome {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "specs", "sba.ta"))
	if err != nil {
		t.Fatalf("shipped spec missing: %v (regenerate with `holistic export -model sba`)", err)
	}
	a, err := taformat.Parse(string(data))
	if err != nil {
		t.Fatalf("specs/sba.ta does not parse: %v", err)
	}
	qs, err := models.SBAQueries(a)
	if err != nil {
		t.Fatalf("building queries against the parsed spec: %v", err)
	}
	engine, err := schema.New(a, schema.Options{Mode: schema.Staged})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make(map[string]spec.Outcome, len(qs))
	for i := range qs {
		res, err := engine.Check(&qs[i])
		if err != nil {
			t.Fatalf("%s: %v", qs[i].Name, err)
		}
		verdicts[qs[i].Name] = res.Outcome
	}
	return verdicts
}

func TestCrossValidateSimulatorAgainstSpec(t *testing.T) {
	verdicts := taVerdicts(t)
	for _, name := range []string{"Inv1_0", "Inv1_1", "Inv2_0", "Inv2_1", "SBARoundTerm"} {
		if verdicts[name] != spec.Holds {
			t.Fatalf("TA verdict for %s is %v; the cross-validation below assumes it holds", name, verdicts[name])
		}
	}
	agreement := verdicts["Inv1_0"] == spec.Holds && verdicts["Inv1_1"] == spec.Holds
	validity := verdicts["Inv2_0"] == spec.Holds && verdicts["Inv2_1"] == spec.Holds
	termination := verdicts["SBARoundTerm"] == spec.Holds

	c := faults.Campaign{Protocol: "sba", N: 4, T: 1}
	decided := 0
	for seed := int64(9000); seed < 9000+crossvalSeeds; seed++ {
		sc := c.RandomScenario(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: generated scenario invalid: %v", seed, err)
		}
		out := sc.Run()
		if out.Err != nil {
			t.Fatalf("seed %d: %v", seed, out.Err)
		}

		// Safety: the simulator may never contradict a Holds verdict.
		if agreement && out.AgreementErr != nil {
			t.Errorf("seed %d: TA proves agreement but the simulator violated it: %v", seed, out.AgreementErr)
		}
		if validity && out.ValidityErr != nil {
			t.Errorf("seed %d: TA proves validity but the simulator violated it: %v", seed, out.ValidityErr)
		}
		// Liveness: fair-delivery plans must terminate.
		if termination && sc.Plan.FairDelivery() && !out.Decided {
			t.Errorf("seed %d: TA proves round termination and the plan is fair, but the run stalled after %d steps", seed, out.Steps)
		}
		// Round structure: decisions happen in the half whose parity matches
		// the bit (D0 in parity-0 rounds, D1x in parity-1 rounds).
		unanimous := -1
		if v := sc.Inputs[0]; len(sc.Byz) == 0 {
			unanimous = v
			for _, w := range sc.Inputs {
				if w != v {
					unanimous = -1
					break
				}
			}
		}
		for _, p := range out.SBAParticipating {
			v, round, ok := p.Decided()
			if !ok {
				continue
			}
			if v != 0 && v != 1 {
				t.Errorf("seed %d: p%d decided non-binary value %d", seed, p.ID(), v)
			}
			if round%2 != v {
				t.Errorf("seed %d: p%d decided %d in round %d — parity contradicts the automaton's half structure", seed, p.ID(), v, round)
			}
			if unanimous >= 0 && v != unanimous {
				t.Errorf("seed %d: unanimous input %d but p%d decided %d", seed, unanimous, p.ID(), v)
			}
		}
		if out.Decided {
			decided++
		}

		// Replay determinism: flat shim and event bus must agree byte-for-byte.
		flat := sc
		flat.Sim = &faults.SimOptions{Backend: "flat"}
		flatOut := flat.Run()
		if flatOut.Err != nil {
			t.Fatalf("seed %d: flat backend: %v", seed, flatOut.Err)
		}
		if got, want := flat.Fingerprint(&flatOut), sc.Fingerprint(&out); got != want {
			t.Errorf("seed %d: flat fingerprint %s != bus fingerprint %s", seed, got, want)
		}
	}
	if decided == 0 {
		t.Error("no run decided across the campaign; the harness is not exercising the protocol")
	}
	t.Logf("cross-validated %d seeded schedules (%d decided) against specs/sba.ta verdicts", crossvalSeeds, decided)
}
