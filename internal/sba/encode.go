package sba

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/network"
)

// Canonical encoding of Snapshot, mirroring internal/dbft/encode.go: map
// keys are sorted, so two state-identical snapshots always encode to the
// same bytes. The fault plane's Fingerprint uses this as the per-process
// state digest; the byte-identity tests (-j1 vs -j8, flat vs bus) lean on
// the canonical property.

// snapshotVersion guards the layout; bump on any change.
const snapshotVersion = 1

// maxDecodeLen caps every decoded length field so a hostile (or fuzzed)
// input cannot demand gigabytes.
const maxDecodeLen = 1 << 20

type encBuf struct{ b []byte }

func (e *encBuf) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *encBuf) varint(v int)     { e.b = binary.AppendVarint(e.b, int64(v)) }
func (e *encBuf) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *encBuf) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *encBuf) ints(vs []int) {
	e.uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.varint(v)
	}
}
func (e *encBuf) procs(ids []network.ProcID) {
	e.uvarint(uint64(len(ids)))
	for _, id := range ids {
		e.varint(int(id))
	}
}

type decBuf struct {
	b   []byte
	off int
	err error
}

func (d *decBuf) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("sba: decode: "+format, args...)
	}
}

func (d *decBuf) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decBuf) varint() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at %d", d.off)
		return 0
	}
	d.off += n
	return int(v)
}

func (d *decBuf) length() int {
	v := d.uvarint()
	if v > maxDecodeLen {
		d.fail("length %d exceeds cap", v)
		return 0
	}
	return int(v)
}

func (d *decBuf) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail("bool past end")
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

func (d *decBuf) str() string {
	n := d.length()
	if d.err != nil {
		return ""
	}
	if d.off+n > len(d.b) {
		d.fail("string of %d past end", n)
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decBuf) ints() []int {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		out = append(out, d.varint())
		if d.err != nil {
			return nil
		}
	}
	return out
}

func (d *decBuf) procIDs() []network.ProcID {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]network.ProcID, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		out = append(out, network.ProcID(d.varint()))
		if d.err != nil {
			return nil
		}
	}
	return out
}

func encodeMessage(e *encBuf, m network.Message) {
	e.varint(int(m.From))
	e.varint(int(m.To))
	e.varint(m.Round)
	e.str(string(m.Kind))
	e.varint(m.Value)
	e.ints(m.Set)
	e.varint(m.Instance)
	e.varint(int(m.Proposer))
	e.str(m.Payload)
	// Seq is per-copy fault-layer metadata, deliberately not persisted.
}

func decodeMessage(d *decBuf) network.Message {
	var m network.Message
	m.From = network.ProcID(d.varint())
	m.To = network.ProcID(d.varint())
	m.Round = d.varint()
	m.Kind = network.MsgKind(d.str())
	m.Value = d.varint()
	m.Set = d.ints()
	m.Instance = d.varint()
	m.Proposer = network.ProcID(d.varint())
	m.Payload = d.str()
	return m
}

// EncodeSnapshot renders the snapshot canonically: state-identical
// snapshots yield identical bytes.
func EncodeSnapshot(s *Snapshot) []byte {
	e := &encBuf{b: make([]byte, 0, 256)}
	e.b = append(e.b, snapshotVersion)
	e.varint(s.est)
	e.varint(s.round)
	e.bool(s.decided)
	e.varint(s.decision)
	e.varint(s.decRound)
	e.ints(s.estimateHistory)

	rounds := make([]int, 0, len(s.lockOrder))
	for r := range s.lockOrder {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	e.uvarint(uint64(len(rounds)))
	for _, r := range rounds {
		e.varint(r)
		e.ints(s.lockOrder[r])
	}

	rounds = rounds[:0]
	for r := range s.rounds {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	e.uvarint(uint64(len(rounds)))
	for _, r := range rounds {
		e.varint(r)
		encodeRoundState(e, s.rounds[r])
	}

	e.uvarint(uint64(len(s.outbox)))
	for _, m := range s.outbox {
		encodeMessage(e, m)
	}
	return e.b
}

func encodeRoundState(e *encBuf, st *roundState) {
	for v := 0; v <= 1; v++ {
		ids := make([]network.ProcID, 0, len(st.voteSenders[v]))
		for id := range st.voteSenders[v] {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		e.procs(ids)
	}
	// Bit-pack the five flags.
	var flags byte
	if st.voted[0] {
		flags |= 1
	}
	if st.voted[1] {
		flags |= 2
	}
	if st.locked[0] {
		flags |= 4
	}
	if st.locked[1] {
		flags |= 8
	}
	if st.candSent {
		flags |= 16
	}
	e.b = append(e.b, flags)
	e.ints(st.lockOrder)
	// Candidates in arrival order (candOrder), preserving
	// first-candidate-wins semantics across a recovery.
	e.uvarint(uint64(len(st.candOrder)))
	for _, q := range st.candOrder {
		e.varint(int(q))
		e.varint(st.candidates[q])
	}
}

// DecodeSnapshot parses a snapshot previously rendered by EncodeSnapshot.
// It never panics on malformed input (fuzzed in encode_test.go).
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("sba: decode: empty snapshot")
	}
	if b[0] != snapshotVersion {
		return nil, fmt.Errorf("sba: decode: unknown snapshot version %d", b[0])
	}
	d := &decBuf{b: b, off: 1}
	s := &Snapshot{
		rounds:    map[int]*roundState{},
		lockOrder: map[int][]int{},
	}
	s.est = d.varint()
	s.round = d.varint()
	s.decided = d.bool()
	s.decision = d.varint()
	s.decRound = d.varint()
	s.estimateHistory = d.ints()

	n := d.length()
	for i := 0; i < n && d.err == nil; i++ {
		r := d.varint()
		vs := d.ints()
		if d.err == nil {
			if _, dup := s.lockOrder[r]; dup {
				d.fail("duplicate lock-order round %d", r)
				break
			}
			s.lockOrder[r] = vs
		}
	}

	n = d.length()
	for i := 0; i < n && d.err == nil; i++ {
		r := d.varint()
		st := decodeRoundState(d)
		if d.err == nil {
			if _, dup := s.rounds[r]; dup {
				d.fail("duplicate round %d", r)
				break
			}
			s.rounds[r] = st
		}
	}

	n = d.length()
	for i := 0; i < n && d.err == nil; i++ {
		s.outbox = append(s.outbox, decodeMessage(d))
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("sba: decode: %d trailing bytes after snapshot", len(b)-d.off)
	}
	return s, nil
}

func decodeRoundState(d *decBuf) *roundState {
	st := newRoundState()
	for v := 0; v <= 1; v++ {
		for _, id := range d.procIDs() {
			if st.voteSenders[v][id] {
				d.fail("duplicate vote sender %d", id)
				return st
			}
			st.voteSenders[v][id] = true
		}
	}
	if d.err != nil {
		return st
	}
	if d.off >= len(d.b) {
		d.fail("flags past end")
		return st
	}
	flags := d.b[d.off]
	d.off++
	st.voted[0] = flags&1 != 0
	st.voted[1] = flags&2 != 0
	st.locked[0] = flags&4 != 0
	st.locked[1] = flags&8 != 0
	st.candSent = flags&16 != 0
	st.lockOrder = d.ints()

	n := d.length()
	for i := 0; i < n && d.err == nil; i++ {
		q := network.ProcID(d.varint())
		b := d.varint()
		if d.err == nil {
			if _, dup := st.candidates[q]; dup {
				d.fail("duplicate candidate %d", q)
				return st
			}
			st.candidates[q] = b
			st.candOrder = append(st.candOrder, q)
		}
	}
	st.recountJustified()
	return st
}
