package sba

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/network"
)

// snapshotAfterSteps runs a 4-process reduction under a seeded random
// scheduler for at most maxSteps deliveries and returns the live processes —
// a generator of realistic mid-protocol states (buffered future rounds,
// partial quorums, nonempty outboxes).
func snapshotAfterSteps(t *testing.T, seed int64, maxSteps int) []*Process {
	t.Helper()
	cfg := Config{N: 4, T: 1, MaxRounds: 8}
	rng := rand.New(rand.NewSource(seed))
	inputs := []int{int(seed) & 1, int(seed>>1) & 1, int(seed>>2) & 1}
	all := AllIDs(cfg.N)
	correct, err := Processes(cfg, inputs, all)
	if err != nil {
		t.Fatal(err)
	}
	procs := []network.Process{correct[0], correct[1], correct[2],
		&RandomLiar{Id: 3, All: all, Rng: rng}}
	sys, err := network.NewSystem(procs, network.RandomScheduler{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(maxSteps, nil); err != nil {
		t.Fatal(err)
	}
	return correct
}

// TestSnapshotCodecRoundTrip: for many seeded mid-protocol states,
// Restore(decode(encode(Snapshot()))) must be state-identical — same
// canonical bytes, same outbox order — for both the on-disk codec and the
// in-memory clone path.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		for _, p := range snapshotAfterSteps(t, seed, 40+int(seed)*17%300) {
			snap := p.Snapshot()
			enc := EncodeSnapshot(snap)

			dec, err := DecodeSnapshot(enc)
			if err != nil {
				t.Fatalf("seed %d p%d: decode: %v", seed, p.ID(), err)
			}
			if !bytes.Equal(EncodeSnapshot(dec), enc) {
				t.Fatalf("seed %d p%d: encode(decode(enc)) != enc", seed, p.ID())
			}

			// Disk path: restore the decoded snapshot into a fresh process.
			fresh, err := NewProcess(p.ID(), 0, Config{N: 4, T: 1, MaxRounds: 8}, AllIDs(4))
			if err != nil {
				t.Fatal(err)
			}
			fresh.Restore(dec)
			restored := fresh.Snapshot()
			if !bytes.Equal(EncodeSnapshot(restored), enc) {
				t.Fatalf("seed %d p%d: disk round-trip not state-identical", seed, p.ID())
			}
			if !reflect.DeepEqual(restored.outbox, snap.outbox) {
				t.Fatalf("seed %d p%d: outbox order changed across disk round-trip", seed, p.ID())
			}

			// In-memory clone path: Restore(Snapshot()) on the live process.
			p.Restore(snap)
			if !bytes.Equal(EncodeSnapshot(p.Snapshot()), enc) {
				t.Fatalf("seed %d p%d: in-memory round-trip not state-identical", seed, p.ID())
			}
		}
	}
}

// TestSnapshotCanonicalEncoding: two snapshots of the same state encode to
// identical bytes even though map iteration order differs between them.
func TestSnapshotCanonicalEncoding(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		for _, p := range snapshotAfterSteps(t, seed, 200) {
			a := EncodeSnapshot(p.Snapshot())
			b := EncodeSnapshot(p.Snapshot())
			if !bytes.Equal(a, b) {
				t.Fatalf("seed %d p%d: same state, different bytes", seed, p.ID())
			}
		}
	}
}

// TestRestoreIsolation: mutating the process after Restore must not leak
// into the snapshot it was restored from.
func TestRestoreIsolation(t *testing.T) {
	p := snapshotAfterSteps(t, 7, 150)[0]
	snap := p.Snapshot()
	enc := EncodeSnapshot(snap)
	// Drive the process further; the captured snapshot must not change.
	send := func(network.Message) {}
	p.Deliver(network.Message{From: 1, To: p.ID(), Round: p.Round(), Kind: network.MsgVote, Value: 1}, send)
	p.Deliver(network.Message{From: 2, To: p.ID(), Round: p.Round(), Kind: network.MsgVote, Value: 1}, send)
	if !bytes.Equal(EncodeSnapshot(snap), enc) {
		t.Fatal("snapshot mutated by post-capture deliveries")
	}
	p.Restore(snap)
	if !bytes.Equal(EncodeSnapshot(p.Snapshot()), enc) {
		t.Fatal("restore did not reproduce the captured state")
	}
}

func TestDecodeSnapshotRejectsJunk(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},             // bad version
		{0x01},             // truncated after version
		{0x01, 0x80},       // dangling varint
		{0x01, 0x00, 0x80}, // dangling varint later
	}
	for i, b := range cases {
		if _, err := DecodeSnapshot(b); err == nil {
			t.Errorf("case %d: decode accepted junk %v", i, b)
		}
	}
	// Trailing garbage after a valid snapshot must be rejected too.
	p := snapshotAfterSteps(t, 3, 100)[0]
	enc := EncodeSnapshot(p.Snapshot())
	if _, err := DecodeSnapshot(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Error("decode accepted trailing garbage")
	}
}

// FuzzSnapshotDecode: DecodeSnapshot must never panic, and any bytes it
// accepts must re-encode to a fixed point (decode∘encode is the identity on
// canonical forms).
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{snapshotVersion})
	for seed := int64(1); seed <= 5; seed++ {
		cfg := Config{N: 4, T: 1, MaxRounds: 8}
		rng := rand.New(rand.NewSource(seed))
		inputs := []int{1, 0, 1}
		all := AllIDs(cfg.N)
		correct, err := Processes(cfg, inputs, all)
		if err != nil {
			f.Fatal(err)
		}
		procs := []network.Process{correct[0], correct[1], correct[2], &Silent{Id: 3}}
		sys, err := network.NewSystem(procs, network.RandomScheduler{Rng: rng})
		if err != nil {
			f.Fatal(err)
		}
		if _, err := sys.Run(int(seed)*60, nil); err != nil {
			f.Fatal(err)
		}
		for _, p := range correct {
			f.Add(EncodeSnapshot(p.Snapshot()))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		c1 := EncodeSnapshot(s)
		s2, err := DecodeSnapshot(c1)
		if err != nil {
			t.Fatalf("re-decode of canonical form failed: %v", err)
		}
		if !bytes.Equal(EncodeSnapshot(s2), c1) {
			t.Fatal("canonical form is not a fixed point")
		}
		// Restore must accept anything the decoder admits without panicking.
		p, err := NewProcess(0, 0, Config{N: 4, T: 1, MaxRounds: 8}, AllIDs(4))
		if err != nil {
			t.Fatal(err)
		}
		p.Restore(s)
	})
}
