package dbft_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dbft"
	"repro/internal/fairness"
	"repro/internal/network"
)

func vectorSystem(t *testing.T, cfg dbft.Config, proposals []string, byz []network.Process, sched network.Scheduler) (*network.System, []*dbft.VectorProcess) {
	t.Helper()
	all := dbft.AllIDs(cfg.N)
	var correct []*dbft.VectorProcess
	procs := make([]network.Process, 0, cfg.N)
	for i, prop := range proposals {
		p, err := dbft.NewVectorProcess(network.ProcID(i), prop, cfg, all)
		if err != nil {
			t.Fatal(err)
		}
		correct = append(correct, p)
		procs = append(procs, p)
	}
	procs = append(procs, byz...)
	sys, err := network.NewSystem(procs, sched)
	if err != nil {
		t.Fatal(err)
	}
	return sys, correct
}

func fairSched(byzIDs ...network.ProcID) network.Scheduler {
	m := map[network.ProcID]bool{}
	for _, id := range byzIDs {
		m[id] = true
	}
	return fairness.Scheduler{Byzantine: m}
}

// TestVectorAllCorrect: with every process correct, the decided vector
// contains at least n-t proposals and all processes agree.
func TestVectorAllCorrect(t *testing.T) {
	cfg := dbft.Config{N: 4, T: 1, MaxRounds: 14}
	proposals := []string{"tx-a", "tx-b", "tx-c", "tx-d"}
	sys, correct := vectorSystem(t, cfg, proposals, nil, fairSched())
	if _, err := sys.Run(2_000_000, func() bool { return dbft.AllVectorDecided(correct) }); err != nil {
		t.Fatal(err)
	}
	if !dbft.AllVectorDecided(correct) {
		t.Fatalf("not all decided; inflight=%d", sys.Inflight())
	}
	if err := dbft.VectorAgreement(correct); err != nil {
		t.Fatal(err)
	}
	if err := dbft.VectorValidity(correct, proposals, nil); err != nil {
		t.Fatal(err)
	}
	out, _ := correct[0].Decided()
	if len(out) < cfg.N-cfg.T {
		t.Errorf("output %v has %d entries, want >= n-t = %d", out, len(out), cfg.N-cfg.T)
	}
}

// TestVectorWithSilentByzantine: a silent proposer's instance decides 0 and
// its slot is simply absent from the output.
func TestVectorWithSilentByzantine(t *testing.T) {
	cfg := dbft.Config{N: 4, T: 1, MaxRounds: 14}
	proposals := []string{"a", "b", "c"}
	sys, correct := vectorSystem(t, cfg, proposals,
		[]network.Process{&dbft.Silent{Id: 3}}, fairSched(3))
	if _, err := sys.Run(2_000_000, func() bool { return dbft.AllVectorDecided(correct) }); err != nil {
		t.Fatal(err)
	}
	if !dbft.AllVectorDecided(correct) {
		t.Fatal("not all decided")
	}
	if err := dbft.VectorAgreement(correct); err != nil {
		t.Fatal(err)
	}
	if err := dbft.VectorValidity(correct, proposals, nil); err != nil {
		t.Fatal(err)
	}
	out, _ := correct[0].Decided()
	if len(out) < 3 {
		t.Errorf("output %v, want the three correct proposals", out)
	}
}

// TestVectorAgreementUnderRandomSchedules fuzzes the vector consensus with
// random schedules: whatever terminates must agree, and outputs contain only
// proposed values.
func TestVectorAgreementUnderRandomSchedules(t *testing.T) {
	prop := func(seed int64) bool {
		cfg := dbft.Config{N: 4, T: 1, MaxRounds: 10}
		proposals := []string{"p0", "p1", "p2", "p3"}
		rng := rand.New(rand.NewSource(seed))
		sys, correct := vectorSystem(t, cfg, proposals, nil, network.RandomScheduler{Rng: rng})
		if _, err := sys.Run(400_000, func() bool { return dbft.AllVectorDecided(correct) }); err != nil {
			t.Fatal(err)
		}
		ok := dbft.VectorAgreement(correct) == nil &&
			dbft.VectorValidity(correct, proposals, nil) == nil
		if !ok {
			t.Logf("replay with: seed=%d", seed)
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestVectorLargerSystem runs n=7, t=2 with one silent and one equivocating
// Byzantine process.
func TestVectorLargerSystem(t *testing.T) {
	cfg := dbft.Config{N: 7, T: 2, MaxRounds: 16}
	proposals := []string{"a", "b", "c", "d", "e"}
	all := dbft.AllIDs(cfg.N)
	byz := []network.Process{
		&dbft.Silent{Id: 5},
		&dbft.Equivocator{Id: 6, All: all, ZeroSide: func(p network.ProcID) bool { return p < 3 }},
	}
	sys, correct := vectorSystem(t, cfg, proposals, byz, fairSched(5, 6))
	if _, err := sys.Run(5_000_000, func() bool { return dbft.AllVectorDecided(correct) }); err != nil {
		t.Fatal(err)
	}
	if !dbft.AllVectorDecided(correct) {
		t.Fatal("not all decided")
	}
	if err := dbft.VectorAgreement(correct); err != nil {
		t.Fatal(err)
	}
	if err := dbft.VectorValidity(correct, proposals, func(string) bool { return false }); err != nil {
		t.Fatal(err)
	}
	out, _ := correct[0].Decided()
	if len(out) < cfg.N-cfg.T-2 { // the two Byzantine slots may be absent
		t.Errorf("output %v too small", out)
	}
}

// TestVectorWithEquivocatingProposer exercises the RBC echo quorum through
// the full vector consensus at n=5 (where a 2t+1 echo threshold would split
// deliveries): an equivocating Byzantine proposer must not produce
// disagreeing vectors.
func TestVectorWithEquivocatingProposer(t *testing.T) {
	cfg := dbft.Config{N: 5, T: 1, MaxRounds: 14}
	proposals := []string{"a", "b", "c", "d"}
	all := dbft.AllIDs(cfg.N)
	byz := []network.Process{
		&dbft.Equivocator{Id: 4, All: all, ZeroSide: func(p network.ProcID) bool { return p < 2 }},
	}
	sys, correct := vectorSystem(t, cfg, proposals, byz, fairSched(4))
	if _, err := sys.Run(5_000_000, func() bool { return dbft.AllVectorDecided(correct) }); err != nil {
		t.Fatal(err)
	}
	if !dbft.AllVectorDecided(correct) {
		t.Fatal("not all decided")
	}
	if err := dbft.VectorAgreement(correct); err != nil {
		t.Fatal(err)
	}
	if err := dbft.VectorValidity(correct, proposals, func(string) bool { return false }); err != nil {
		t.Fatal(err)
	}
}
