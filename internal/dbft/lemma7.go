package dbft

import (
	"fmt"

	"repro/internal/network"
)

// Lemma7Result records one round of the Appendix B non-termination
// execution.
type Lemma7Result struct {
	Round     int
	Estimates []int // estimate of each correct process at the END of the round
}

// RunLemma7 reproduces Lemma 7 (Appendix B): without the fairness assumption
// of Section 3.3, Algorithm 1 does not terminate. It drives three correct
// processes (n = 4, t = 1, the fourth process Byzantine) through the
// adversarial schedule of the proof for the given number of rounds: the
// correct estimates cycle with period two and nobody ever decides.
//
// Per round with parity q and w = 1-q, two correct processes hold w and one
// holds q. The adversary and the message schedule arrange that
//
//   - one w-holder ("singleton") bv-delivers only w and sees n-t aux
//     messages {w}: qualifiers = {w}, w != q, so it keeps estimate w
//     without deciding;
//   - the other w-holder ("mixed") and the q-holder bv-deliver both values
//     and see mixed aux messages: qualifiers = {0,1}, so they adopt the
//     parity q.
//
// The multiset of estimates flips between {w,q,q} and {q,w,w} forever.
func RunLemma7(rounds int) ([]Lemma7Result, error) {
	const (
		n   = 4
		t   = 1
		byz = network.ProcID(3)
	)
	if rounds < 1 {
		return nil, fmt.Errorf("dbft: rounds must be positive")
	}
	cfg := Config{N: n, T: t, MaxRounds: rounds + 1}
	all := AllIDs(n)

	// Round 0 has parity q=0, w=1: inputs give two w-holders (p0, p1) and
	// one q-holder (p2).
	procs, err := Processes(cfg, []int{1, 1, 0}, all)
	if err != nil {
		return nil, err
	}
	byID := map[network.ProcID]*Process{}
	for _, p := range procs {
		byID[p.ID()] = p
	}

	// The message pool: every send by a correct process is captured here and
	// delivered under the adversary's schedule. Reliability holds — every
	// message is eventually delivered (leftovers drain at the end of each
	// round).
	type key struct {
		from, to network.ProcID
		round    int
		kind     network.MsgKind
		value    int // BV value; -1 for aux
	}
	pool := map[key][]network.Message{}
	var send network.Sender
	send = func(m network.Message) {
		if m.To == byz {
			return // the adversary needs no input
		}
		v := m.Value
		if m.Kind == network.MsgAux {
			v = -1
		}
		k := key{m.From, m.To, m.Round, m.Kind, v}
		pool[k] = append(pool[k], m)
	}
	// deliver hands one pooled message to its target (erroring loudly if the
	// schedule asks for a message that was never sent — a script bug).
	deliver := func(from, to network.ProcID, round int, kind network.MsgKind, value int) error {
		k := key{from, to, round, kind, value}
		msgs := pool[k]
		if len(msgs) == 0 {
			return fmt.Errorf("dbft: lemma7 schedule expected %v(%d) %d->%d in round %d but none is in flight",
				kind, value, from, to, round)
		}
		m := msgs[0]
		pool[k] = msgs[1:]
		byID[to].Deliver(m, send)
		return nil
	}
	// byzSend injects an adversary message directly.
	byzSend := func(to network.ProcID, round int, kind network.MsgKind, value int, set []int) {
		byID[to].Deliver(network.Message{
			From: byz, To: to, Round: round, Kind: kind, Value: value, Set: set,
		}, send)
	}

	for _, p := range procs {
		p.Start(send)
	}

	// Role assignment for round 0.
	ps, pm, pq := network.ProcID(0), network.ProcID(1), network.ProcID(2)

	var results []Lemma7Result
	for r := 0; r < rounds; r++ {
		q := r % 2
		w := 1 - q

		// Phase A: the singleton delivers w (its own broadcast, the mixed
		// holder's, and the adversary's) and broadcasts aux {w}.
		byzSend(ps, r, network.MsgBV, w, nil)
		if err := deliver(ps, ps, r, network.MsgBV, w); err != nil {
			return nil, err
		}
		if err := deliver(pm, ps, r, network.MsgBV, w); err != nil {
			return nil, err
		}

		// Phase B: the mixed holder delivers w the same way.
		byzSend(pm, r, network.MsgBV, w, nil)
		if err := deliver(ps, pm, r, network.MsgBV, w); err != nil {
			return nil, err
		}
		if err := deliver(pm, pm, r, network.MsgBV, w); err != nil {
			return nil, err
		}

		// Phase C: the mixed holder sees t+1 distinct (BV, q) — from the
		// q-holder and the adversary — echoes q, and delivers it on its own
		// echo; then the q-holder delivers q (q-holder, adversary, echo).
		if err := deliver(pq, pm, r, network.MsgBV, q); err != nil {
			return nil, err
		}
		byzSend(pm, r, network.MsgBV, q, nil)
		if err := deliver(pm, pm, r, network.MsgBV, q); err != nil {
			return nil, err
		}
		byzSend(pq, r, network.MsgBV, q, nil)
		if err := deliver(pq, pq, r, network.MsgBV, q); err != nil {
			return nil, err
		}
		if err := deliver(pm, pq, r, network.MsgBV, q); err != nil {
			return nil, err
		}

		// The q-holder also delivers w so mixed aux sets qualify later.
		byzSend(pq, r, network.MsgBV, w, nil)
		if err := deliver(ps, pq, r, network.MsgBV, w); err != nil {
			return nil, err
		}
		if err := deliver(pm, pq, r, network.MsgBV, w); err != nil {
			return nil, err
		}

		// Phase D: aux deliveries. The singleton sees {w} three times
		// (itself, the mixed holder, the adversary): qualifiers {w}.
		if err := deliver(ps, ps, r, network.MsgAux, -1); err != nil {
			return nil, err
		}
		if err := deliver(pm, ps, r, network.MsgAux, -1); err != nil {
			return nil, err
		}
		byzSend(ps, r, network.MsgAux, -1, []int{w})

		// The mixed holder sees {w},{w},{q}: qualifiers {0,1}.
		if err := deliver(pm, pm, r, network.MsgAux, -1); err != nil {
			return nil, err
		}
		if err := deliver(ps, pm, r, network.MsgAux, -1); err != nil {
			return nil, err
		}
		if err := deliver(pq, pm, r, network.MsgAux, -1); err != nil {
			return nil, err
		}

		// The q-holder sees {q},{w},{w}: qualifiers {0,1}.
		if err := deliver(pq, pq, r, network.MsgAux, -1); err != nil {
			return nil, err
		}
		if err := deliver(ps, pq, r, network.MsgAux, -1); err != nil {
			return nil, err
		}
		if err := deliver(pm, pq, r, network.MsgAux, -1); err != nil {
			return nil, err
		}

		// All three must have advanced.
		for _, p := range procs {
			if p.Round() != r+1 {
				return nil, fmt.Errorf("dbft: lemma7 round %d: process %d stuck in round %d", r, p.ID(), p.Round())
			}
			if _, _, decided := p.Decided(); decided {
				return nil, fmt.Errorf("dbft: lemma7 round %d: process %d decided — schedule broken", r, p.ID())
			}
		}

		// Reliability: drain every leftover message of rounds <= r (their
		// deliveries only touch closed rounds).
		for drained := true; drained; {
			drained = false
			for k, msgs := range pool {
				if k.round > r || len(msgs) == 0 {
					continue
				}
				m := msgs[0]
				pool[k] = msgs[1:]
				byID[k.to].Deliver(m, send)
				drained = true
			}
		}

		results = append(results, Lemma7Result{
			Round:     r,
			Estimates: []int{byID[0].Estimate(), byID[1].Estimate(), byID[2].Estimate()},
		})

		// Rotate roles: the singleton kept w (the next round's parity), the
		// other two adopted q (the next round's 1-parity): they are the new
		// w-holders.
		ps, pm, pq = pm, pq, ps
	}
	return results, nil
}
