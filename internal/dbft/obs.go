package dbft

import "repro/internal/obs"

// obsRetransmissions counts outbox re-broadcasts across every process in
// the process (observational only — campaign verdicts fold per-seed event
// counts deterministically, see internal/faults).
var obsRetransmissions = obs.Default.Counter("dbft", "retransmissions")
