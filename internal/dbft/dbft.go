// Package dbft is an executable implementation of the algorithms the paper
// verifies: the binary value broadcast (Fig. 1) and the DBFT binary
// Byzantine consensus (Algorithm 1) — the coordinator-free variant used by
// the Red Belly Blockchain, which is safe unconditionally and live under the
// bv-broadcast fairness assumption of Section 3.3.
//
// Processes run over the asynchronous simulated network of internal/network;
// the package is the ground-truth substrate against which the
// threshold-automata models are cross-validated.
package dbft

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// Config carries the static parameters of a run.
type Config struct {
	N int // total number of processes
	T int // tolerated Byzantine processes (algorithm constant)
	// MaxRounds caps execution; a correct process stops advancing past it.
	// The decision rule itself needs no cap (Alg. 1 loops forever to help
	// laggards; the cap keeps simulations finite).
	MaxRounds int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("dbft: n must be positive, got %d", c.N)
	}
	if c.T < 0 {
		return fmt.Errorf("dbft: t must be nonnegative, got %d", c.T)
	}
	if c.MaxRounds <= 0 {
		return fmt.Errorf("dbft: MaxRounds must be positive, got %d", c.MaxRounds)
	}
	return nil
}

// roundState holds the per-round message state. Communication closure
// (Section 2) is implemented by keeping one state per round: early messages
// accumulate here and take effect once the process enters the round.
type roundState struct {
	// bvSenders[v] = distinct processes from which (BV, v) was received.
	bvSenders [2]map[network.ProcID]bool
	// echoed[v] reports whether this process has broadcast (BV, v).
	echoed [2]bool
	// contestants is the bv-delivered value set (Fig. 1 line 7; the paper's
	// global-scope variable shared between bv-broadcast and propose).
	contestants [2]bool
	auxSent     bool
	// favorites[q] = the contestant set announced by q's aux message
	// (Alg. 1 line 8), in arrival order.
	favorites map[network.ProcID][]int
	favOrder  []network.ProcID
	// validFavorites counts senders whose announced set is contained in
	// contestants — the candidates tryDecide's scan would accept. Contestants
	// only grow, so validity is monotone: the count is bumped per aux arrival
	// and recounted on the (≤2 per round) contestant additions. It lets
	// tryDecide skip its O(n) scan until the n-t threshold is actually
	// reachable; without the gate that scan runs on every delivery, which at
	// thousands of replicas dominates the whole simulation.
	validFavorites int
}

func newRoundState() *roundState {
	return &roundState{
		bvSenders: [2]map[network.ProcID]bool{make(map[network.ProcID]bool), make(map[network.ProcID]bool)},
		favorites: make(map[network.ProcID][]int),
	}
}

// favoriteValid reports whether every value in set is a contestant.
func (st *roundState) favoriteValid(set []int) bool {
	for _, v := range set {
		if !st.contestants[v] {
			return false
		}
	}
	return true
}

// recountValidFavorites recomputes validFavorites from scratch; called when
// contestants grows (which can turn previously blocked favorites valid) and
// when a round state is rebuilt from a clone or a decoded snapshot.
func (st *roundState) recountValidFavorites() {
	c := 0
	for _, q := range st.favOrder {
		if st.favoriteValid(st.favorites[q]) {
			c++
		}
	}
	st.validFavorites = c
}

// Process is a correct DBFT process.
type Process struct {
	id       network.ProcID
	cfg      Config
	all      []network.ProcID // broadcast targets
	instance int              // protocol instance (vector consensus multiplexing)

	est    int
	round  int
	rounds map[int]*roundState

	decided      bool
	decision     int
	decidedRound int

	// outbox records every logical broadcast this process has made (one
	// template per bv-echo and per aux, all rounds). The retransmission
	// layer re-broadcasts it verbatim: handlers are idempotent, and
	// re-sending the *recorded* content (rather than recomputing it) is what
	// keeps a crash-recovered replica from equivocating against its
	// pre-crash messages.
	outbox []network.Message
	// Retransmission backoff, counted in ticks: retxWait doubles up to
	// retxBackoffCap after each firing and resets when the round advances.
	// Retransmission is activity-gated: a tick period in which this process
	// delivered at least one message skips the countdown entirely, so the
	// timer only fires once the process has gone quiet — i.e. once the
	// in-flight traffic that should have driven it forward has drained. This
	// keeps retransmission from flooding a healthy network (and from starving
	// lower-priority traffic under deterministic schedulers) while still
	// guaranteeing a re-send whenever a needed message was lost.
	retxWait   int
	retxLeft   int
	sawTraffic bool

	// EstimateHistory[r] is the estimate held at the START of round r
	// (diagnostics for the Lemma 7 reproduction).
	EstimateHistory []int
	// DeliveryOrder[r] lists the values in bv-delivery order for round r
	// (used to detect v-good executions, Def. 2).
	DeliveryOrder map[int][]int
}

var _ network.Process = (*Process)(nil)
var _ network.Ticker = (*Process)(nil)

// NewProcess builds a correct process with the given input value.
func NewProcess(id network.ProcID, input int, cfg Config, all []network.ProcID) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if input != 0 && input != 1 {
		return nil, fmt.Errorf("dbft: input must be binary, got %d", input)
	}
	return &Process{
		id:            id,
		cfg:           cfg,
		all:           append([]network.ProcID(nil), all...),
		est:           input,
		rounds:        map[int]*roundState{},
		DeliveryOrder: map[int][]int{},
	}, nil
}

// NewProcessInstance builds a correct process bound to a protocol instance:
// it tags outgoing messages with the instance and ignores messages of other
// instances. The vector consensus runs one instance per proposer.
func NewProcessInstance(id network.ProcID, input int, cfg Config, all []network.ProcID, instance int) (*Process, error) {
	p, err := NewProcess(id, input, cfg, all)
	if err != nil {
		return nil, err
	}
	p.instance = instance
	return p, nil
}

// ID implements network.Process.
func (p *Process) ID() network.ProcID { return p.id }

// Decided reports the decision, if any.
func (p *Process) Decided() (value int, round int, ok bool) {
	return p.decision, p.decidedRound, p.decided
}

// Round returns the current round.
func (p *Process) Round() int { return p.round }

// Estimate returns the current estimate.
func (p *Process) Estimate() int { return p.est }

func (p *Process) state(r int) *roundState {
	st, ok := p.rounds[r]
	if !ok {
		st = newRoundState()
		p.rounds[r] = st
	}
	return st
}

// Start implements network.Process: propose(est) — enter round 0 and
// bv-broadcast the input estimate (Alg. 1 lines 4-6, Fig. 1 line 2).
func (p *Process) Start(send network.Sender) {
	p.EstimateHistory = append(p.EstimateHistory, p.est)
	p.bvBroadcast(p.round, p.est, send)
}

// bvBroadcast emits (BV, v) for the round and marks it echoed.
func (p *Process) bvBroadcast(round, v int, send network.Sender) {
	st := p.state(round)
	if st.echoed[v] {
		return
	}
	st.echoed[v] = true
	p.broadcast(send, network.Message{
		From: p.id, Round: round, Kind: network.MsgBV, Value: v, Instance: p.instance,
	})
}

// broadcast sends m to all and records it in the outbox for retransmission.
func (p *Process) broadcast(send network.Sender, m network.Message) {
	p.outbox = append(p.outbox, m)
	network.Broadcast(send, p.all, m)
}

// Deliver implements network.Process.
//
// Only a message that carries *new* information counts as traffic for the
// retransmission heuristic. A stale duplicate — a laggard re-flooding its
// outbox, or Byzantine chatter — must not reset sawTraffic, or a steady
// stream of no-op deliveries silences every correct replica's retransmission
// and a recovering process can never be caught up (a liveness wedge the
// storage torture campaign actually found).
func (p *Process) Deliver(m network.Message, send network.Sender) {
	if m.Instance != p.instance {
		return
	}
	if m.Round < 0 || m.Round > p.cfg.MaxRounds {
		return
	}
	st := p.state(m.Round)
	switch m.Kind {
	case network.MsgBV:
		if m.Value != 0 && m.Value != 1 {
			return // malformed (Byzantine) content is ignored
		}
		if st.bvSenders[m.Value][m.From] {
			return // duplicate: nothing new, no traffic credit
		}
		st.bvSenders[m.Value][m.From] = true
	case network.MsgAux:
		if _, dup := st.favorites[m.From]; dup {
			return // only the first aux message per sender counts
		}
		set := sanitizeSet(m.Set)
		if set == nil {
			return
		}
		st.favorites[m.From] = set
		st.favOrder = append(st.favOrder, m.From)
		if st.favoriteValid(set) {
			st.validFavorites++
		}
	default:
		return
	}
	p.sawTraffic = true
	p.progress(m.Round, send)
}

func sanitizeSet(set []int) []int {
	var has [2]bool
	for _, v := range set {
		if v != 0 && v != 1 {
			return nil
		}
		has[v] = true
	}
	var out []int
	if has[0] {
		out = append(out, 0)
	}
	if has[1] {
		out = append(out, 1)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// progress re-evaluates the guarded statements of Fig. 1 and Alg. 1 for a
// round. Echo rules (Fig. 1 lines 4-5) fire for any round (they only depend
// on that round's messages); the aux broadcast and the decision step only
// fire for the process's current round.
func (p *Process) progress(round int, send network.Sender) {
	st := p.state(round)

	// Fig. 1 line 4-5: echo v after t+1 distinct (BV, v).
	for v := 0; v <= 1; v++ {
		if len(st.bvSenders[v]) >= p.cfg.T+1 && !st.echoed[v] {
			p.bvBroadcast(round, v, send)
		}
	}
	// Fig. 1 lines 6-7: deliver v after 2t+1 distinct (BV, v).
	for v := 0; v <= 1; v++ {
		if len(st.bvSenders[v]) >= 2*p.cfg.T+1 && !st.contestants[v] {
			st.contestants[v] = true
			p.DeliveryOrder[round] = append(p.DeliveryOrder[round], v)
			st.recountValidFavorites()
		}
	}

	if round != p.round {
		return
	}
	// Alg. 1 lines 7-8: once contestants is nonempty, broadcast it (once).
	if !st.auxSent && (st.contestants[0] || st.contestants[1]) {
		st.auxSent = true
		p.broadcast(send, network.Message{
			From: p.id, Round: round, Kind: network.MsgAux, Value: -1,
			Set: contestantSlice(st), Instance: p.instance,
		})
	}
	p.tryDecide(send)
}

func contestantSlice(st *roundState) []int {
	var out []int
	if st.contestants[0] {
		out = append(out, 0)
	}
	if st.contestants[1] {
		out = append(out, 1)
	}
	return out
}

// tryDecide implements Alg. 1 lines 9-14: wait until n-t aux messages whose
// values are all contestants, compute qualifiers as their union, then decide
// or adopt an estimate based on the round parity.
func (p *Process) tryDecide(send network.Sender) {
	st := p.state(p.round)
	if !st.auxSent {
		return // line 8 precedes line 9
	}
	if st.validFavorites < p.cfg.N-p.cfg.T {
		return // the scan below cannot reach n-t chosen yet
	}
	var chosen []network.ProcID
	for _, q := range st.favOrder {
		ok := true
		for _, v := range st.favorites[q] {
			if !st.contestants[v] {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, q)
			if len(chosen) == p.cfg.N-p.cfg.T {
				break
			}
		}
	}
	if len(chosen) < p.cfg.N-p.cfg.T {
		return
	}
	var qualifiers [2]bool
	for _, q := range chosen {
		for _, v := range st.favorites[q] {
			qualifiers[v] = true
		}
	}

	parity := p.round % 2
	switch {
	case qualifiers[0] != qualifiers[1]: // singleton {v}
		v := 0
		if qualifiers[1] {
			v = 1
		}
		p.est = v
		if v == parity && !p.decided {
			p.decided = true
			p.decision = v
			p.decidedRound = p.round
		}
	default: // both values
		p.est = parity
	}
	p.advance(send)
}

// advance enters the next round (Alg. 1 line 14) and replays its buffered
// messages.
func (p *Process) advance(send network.Sender) {
	if p.round >= p.cfg.MaxRounds {
		return
	}
	p.round++
	p.EstimateHistory = append(p.EstimateHistory, p.est)
	p.retxWait, p.retxLeft = 0, 0 // entering a round resets the backoff
	p.bvBroadcast(p.round, p.est, send)
	// Guards over already-buffered messages of the new round re-fire.
	p.progress(p.round, send)
}

// retxBackoffCap bounds the retransmission backoff (in ticks).
const retxBackoffCap = 8

// OnTick implements network.Ticker: periodic retransmission with capped
// exponential backoff. The whole outbox — not just the current round — is
// re-broadcast, matching the help-the-laggards loop of Alg. 1: a replica
// recovering from a crash (or emerging from a partition) may be many rounds
// behind and needs the old-round BV/AUX quorums replayed. Safe because every
// handler is idempotent (distinct-sender sets, first-aux-wins).
func (p *Process) OnTick(step int, send network.Sender) {
	if p.sawTraffic {
		p.sawTraffic = false // traffic flowed this period: no need to re-send
		return
	}
	if p.retxLeft > 0 {
		p.retxLeft--
		return
	}
	p.Retransmit(send)
	if p.retxWait < retxBackoffCap {
		if p.retxWait == 0 {
			p.retxWait = 1
		} else {
			p.retxWait *= 2
		}
	}
	p.retxLeft = p.retxWait
}

// Retransmit immediately re-broadcasts every recorded logical broadcast.
func (p *Process) Retransmit(send network.Sender) {
	obsRetransmissions.Inc()
	for _, m := range p.outbox {
		network.Broadcast(send, p.all, m)
	}
}

// Processes builds n-f correct processes with the given inputs and ids
// 0..len(inputs)-1; ids beyond are left to Byzantine strategies.
func Processes(cfg Config, inputs []int, all []network.ProcID) ([]*Process, error) {
	out := make([]*Process, 0, len(inputs))
	for i, in := range inputs {
		p, err := NewProcess(network.ProcID(i), in, cfg, all)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// AllIDs returns the id slice [0, n).
func AllIDs(n int) []network.ProcID {
	out := make([]network.ProcID, n)
	for i := range out {
		out[i] = network.ProcID(i)
	}
	return out
}

// GoodValue reports, for Def. 2, whether the round-r bv-broadcast execution
// recorded by the processes was v-good: every correct process delivered v
// first.
func GoodValue(procs []*Process, round int) (v int, good bool) {
	first := -1
	for _, p := range procs {
		order := p.DeliveryOrder[round]
		if len(order) == 0 {
			return 0, false
		}
		if first == -1 {
			first = order[0]
		} else if order[0] != first {
			return 0, false
		}
	}
	return first, first != -1
}

// Agreement checks that no two decided processes decided differently,
// returning the offending pair otherwise.
func Agreement(procs []*Process) error {
	decidedVal := -1
	var who network.ProcID
	for _, p := range procs {
		v, _, ok := p.Decided()
		if !ok {
			continue
		}
		if decidedVal == -1 {
			decidedVal, who = v, p.ID()
		} else if v != decidedVal {
			return fmt.Errorf("dbft: agreement violated: process %d decided %d, process %d decided %d",
				who, decidedVal, p.ID(), v)
		}
	}
	return nil
}

// Validity checks that every decision was proposed by some correct process.
func Validity(procs []*Process, inputs []int) error {
	proposed := map[int]bool{}
	for _, in := range inputs {
		proposed[in] = true
	}
	for _, p := range procs {
		if v, _, ok := p.Decided(); ok && !proposed[v] {
			return fmt.Errorf("dbft: validity violated: process %d decided %d, which no correct process proposed",
				p.ID(), v)
		}
	}
	return nil
}

// AllDecided reports whether every process in the slice decided.
func AllDecided(procs []*Process) bool {
	for _, p := range procs {
		if _, _, ok := p.Decided(); !ok {
			return false
		}
	}
	return true
}

// Describe summarizes the processes' outcomes.
func Describe(procs []*Process) string {
	type row struct {
		id      network.ProcID
		est     int
		round   int
		decided string
	}
	rows := make([]row, len(procs))
	for i, p := range procs {
		r := row{id: p.ID(), est: p.Estimate(), round: p.Round(), decided: "-"}
		if v, rd, ok := p.Decided(); ok {
			r.decided = fmt.Sprintf("%d@r%d", v, rd)
		}
		rows[i] = r
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	s := ""
	for _, r := range rows {
		s += fmt.Sprintf("p%d: est=%d round=%d decided=%s\n", r.id, r.est, r.round, r.decided)
	}
	return s
}
