package dbft

import "repro/internal/network"

// Snapshot is a deep copy of a Process's durable state, the unit of
// persistence for crash-recovery. The fault plane (internal/faults) persists
// a snapshot after every delivery — the synchronous write-ahead model — and
// hands it back via Restore when the replica reboots.
//
// Synchronous persistence is not an implementation shortcut but a safety
// requirement: if a replica persisted less often (say at round boundaries),
// a crash after broadcasting AUX but before persisting would let the
// recovered replica recompute a *different* contestant set and broadcast a
// conflicting AUX for the same round — equivocation, which only Byzantine
// processes are budgeted for. Persisting before the effects of a delivery
// become visible keeps a crash-recovery replica inside the "correct process"
// envelope of the proofs.
type Snapshot struct {
	est      int
	round    int
	rounds   map[int]*roundState
	decided  bool
	decision int
	decRound int

	estimateHistory []int
	deliveryOrder   map[int][]int
	outbox          []network.Message
}

func cloneRoundState(st *roundState) *roundState {
	c := newRoundState()
	for v := 0; v <= 1; v++ {
		for id := range st.bvSenders[v] {
			c.bvSenders[v][id] = true
		}
		c.echoed[v] = st.echoed[v]
		c.contestants[v] = st.contestants[v]
	}
	c.auxSent = st.auxSent
	for id, set := range st.favorites {
		c.favorites[id] = append([]int(nil), set...)
	}
	c.favOrder = append([]network.ProcID(nil), st.favOrder...)
	c.recountValidFavorites()
	return c
}

func cloneDeliveryOrder(d map[int][]int) map[int][]int {
	out := make(map[int][]int, len(d))
	for r, vs := range d {
		out[r] = append([]int(nil), vs...)
	}
	return out
}

// Snapshot captures the process's state.
func (p *Process) Snapshot() *Snapshot {
	s := &Snapshot{
		est:             p.est,
		round:           p.round,
		rounds:          make(map[int]*roundState, len(p.rounds)),
		decided:         p.decided,
		decision:        p.decision,
		decRound:        p.decidedRound,
		estimateHistory: append([]int(nil), p.EstimateHistory...),
		deliveryOrder:   cloneDeliveryOrder(p.DeliveryOrder),
		outbox:          append([]network.Message(nil), p.outbox...),
	}
	for r, st := range p.rounds {
		s.rounds[r] = cloneRoundState(st)
	}
	return s
}

// Restore replaces the process's in-memory state with the snapshot,
// simulating a reboot from stable storage. Volatile retransmission backoff
// resets, so a recovered replica re-announces its outbox promptly.
func (p *Process) Restore(s *Snapshot) {
	p.est = s.est
	p.round = s.round
	p.rounds = make(map[int]*roundState, len(s.rounds))
	for r, st := range s.rounds {
		p.rounds[r] = cloneRoundState(st)
	}
	p.decided = s.decided
	p.decision = s.decision
	p.decidedRound = s.decRound
	p.EstimateHistory = append([]int(nil), s.estimateHistory...)
	p.DeliveryOrder = cloneDeliveryOrder(s.deliveryOrder)
	p.outbox = append([]network.Message(nil), s.outbox...)
	p.retxWait, p.retxLeft, p.sawTraffic = 0, 0, false
}
