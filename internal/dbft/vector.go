package dbft

import (
	"fmt"
	"sort"

	"repro/internal/network"
	"repro/internal/rbc"
)

// VectorProcess implements the DBFT vector (multivalued) consensus that the
// Red Belly Blockchain runs on top of the verified binary consensus: every
// process reliably broadcasts a proposal, one binary consensus instance per
// proposer decides whether that proposal enters the output, and the decision
// is the vector of accepted proposals.
//
// Protocol (Crain et al., "DBFT: Efficient leaderless Byzantine consensus"):
//
//  1. reliably broadcast your proposal (Bracha RBC, internal/rbc);
//  2. on RBC-delivery of proposer i's value, input 1 to binary instance i;
//  3. once n-t instances have decided 1, input 0 to every instance not yet
//     started;
//  4. when all n instances have decided and every accepted proposal has been
//     RBC-delivered (RBC totality guarantees it will be), output the
//     proposals of the 1-deciding instances, ordered by proposer id.
//
// Safety is inherited: binary agreement per instance plus RBC agreement per
// proposer imply that all correct processes output the same vector, and
// every output value was proposed. Liveness holds under the bv-broadcast
// fairness assumption, instance-wise.
type VectorProcess struct {
	id  network.ProcID
	cfg Config
	all []network.ProcID

	rbc           *rbc.RBC
	proposalValue string
	proposals     map[int]string // instance (proposer id) -> delivered payload

	instances map[int]*Process
	pending   map[int][]network.Message // buffered BV/AUX per unstarted instance
	zeroFill  bool                      // step 3 executed

	output  []string
	decided bool

	// Retransmission backoff, in ticks; activity-gated like Process (see the
	// field comments there).
	retxWait   int
	retxLeft   int
	sawTraffic bool
}

var _ network.Process = (*VectorProcess)(nil)
var _ network.Ticker = (*VectorProcess)(nil)

// NewVectorProcess builds a correct vector-consensus participant proposing
// the given payload.
func NewVectorProcess(id network.ProcID, proposal string, cfg Config, all []network.ProcID) (*VectorProcess, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	v := &VectorProcess{
		id:        id,
		cfg:       cfg,
		all:       append([]network.ProcID(nil), all...),
		proposals: make(map[int]string),
		instances: make(map[int]*Process),
		pending:   make(map[int][]network.Message),
	}
	v.rbc = &rbc.RBC{
		Me: id, N: cfg.N, T: cfg.T, All: v.all,
		OnDeliver: func(proposer network.ProcID, payload string, send network.Sender) {
			v.proposals[int(proposer)] = payload
			v.startInstance(int(proposer), 1, send)
			v.checkProgress(send)
		},
	}
	v.proposalValue = proposal
	return v, nil
}

// ID implements network.Process.
func (v *VectorProcess) ID() network.ProcID { return v.id }

// Decided returns the output vector once every instance has decided.
func (v *VectorProcess) Decided() ([]string, bool) {
	return v.output, v.decided
}

// Start implements network.Process: reliably broadcast the proposal.
func (v *VectorProcess) Start(send network.Sender) {
	v.rbc.Propose(v.proposalValue, send)
}

// OnTick implements network.Ticker: one capped-backoff timer drives
// retransmission of the RBC dissemination layer and of every started binary
// instance, so the whole vector consensus tolerates lossy links.
func (v *VectorProcess) OnTick(step int, send network.Sender) {
	if v.sawTraffic {
		v.sawTraffic = false // traffic flowed this period: no need to re-send
		return
	}
	if v.retxLeft > 0 {
		v.retxLeft--
		return
	}
	v.rbc.Retransmit(send)
	// Deterministic instance order: map iteration would scramble the enqueue
	// order and break replayability.
	keys := make([]int, 0, len(v.instances))
	for k := range v.instances {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		v.instances[k].Retransmit(send)
	}
	if v.retxWait < retxBackoffCap {
		if v.retxWait == 0 {
			v.retxWait = 1
		} else {
			v.retxWait *= 2
		}
	}
	v.retxLeft = v.retxWait
}

// Deliver implements network.Process.
func (v *VectorProcess) Deliver(m network.Message, send network.Sender) {
	v.sawTraffic = true
	handled, err := v.rbc.Handle(m, send)
	if err != nil {
		// A delivery with no handler is a programming error; surface it by
		// refusing further progress (tests assert on Decided).
		return
	}
	if handled {
		v.checkProgress(send)
		return
	}
	switch m.Kind {
	case network.MsgBV, network.MsgAux:
		inst, ok := v.instances[m.Instance]
		if !ok {
			if m.Instance >= 0 && m.Instance < v.cfg.N {
				v.pending[m.Instance] = append(v.pending[m.Instance], m)
			}
			return
		}
		inst.Deliver(m, send)
		v.checkProgress(send)
	}
}

// startInstance launches binary instance i with the given input and replays
// its buffered messages.
func (v *VectorProcess) startInstance(i, input int, send network.Sender) {
	if _, ok := v.instances[i]; ok || i < 0 || i >= v.cfg.N {
		return
	}
	inst, err := NewProcessInstance(v.id, input, v.cfg, v.all, i)
	if err != nil {
		return // cfg was validated; unreachable
	}
	v.instances[i] = inst
	inst.Start(send)
	for _, m := range v.pending[i] {
		inst.Deliver(m, send)
	}
	delete(v.pending, i)
}

// checkProgress applies steps 3 and 4.
func (v *VectorProcess) checkProgress(send network.Sender) {
	if v.decided {
		return
	}
	ones := 0
	for _, inst := range v.instances {
		if val, _, ok := inst.Decided(); ok && val == 1 {
			ones++
		}
	}
	// Step 3: enough accepted instances — stop waiting for the stragglers.
	if ones >= v.cfg.N-v.cfg.T && !v.zeroFill {
		v.zeroFill = true
		for i := 0; i < v.cfg.N; i++ {
			v.startInstance(i, 0, send)
		}
	}
	// Step 4: all instances decided and accepted proposals delivered.
	if len(v.instances) < v.cfg.N {
		return
	}
	var accepted []int
	for i := 0; i < v.cfg.N; i++ {
		val, _, ok := v.instances[i].Decided()
		if !ok {
			return
		}
		if val == 1 {
			accepted = append(accepted, i)
		}
	}
	for _, i := range accepted {
		if _, ok := v.proposals[i]; !ok {
			return // RBC totality will deliver it eventually
		}
	}
	sort.Ints(accepted)
	v.output = v.output[:0]
	for _, i := range accepted {
		v.output = append(v.output, v.proposals[i])
	}
	v.decided = true
}

// VectorAgreement checks that all decided processes output identical
// vectors.
func VectorAgreement(procs []*VectorProcess) error {
	var ref []string
	var refID network.ProcID
	for _, p := range procs {
		out, ok := p.Decided()
		if !ok {
			continue
		}
		if ref == nil {
			ref, refID = out, p.ID()
			continue
		}
		if len(out) != len(ref) {
			return fmt.Errorf("dbft: vector agreement violated: %d decided %v, %d decided %v",
				refID, ref, p.ID(), out)
		}
		for i := range out {
			if out[i] != ref[i] {
				return fmt.Errorf("dbft: vector agreement violated: %d decided %v, %d decided %v",
					refID, ref, p.ID(), out)
			}
		}
	}
	return nil
}

// VectorValidity checks that every output value was proposed by some
// process (correct proposals given; Byzantine proposers may contribute any
// RBC-delivered payload, listed in byzantine).
func VectorValidity(procs []*VectorProcess, correctProposals []string, byzantineOK func(string) bool) error {
	proposed := map[string]bool{}
	for _, p := range correctProposals {
		proposed[p] = true
	}
	for _, p := range procs {
		out, ok := p.Decided()
		if !ok {
			continue
		}
		for _, v := range out {
			if !proposed[v] && (byzantineOK == nil || !byzantineOK(v)) {
				return fmt.Errorf("dbft: vector validity violated: process %d output unproposed value %q", p.ID(), v)
			}
		}
	}
	return nil
}

// AllVectorDecided reports whether every process decided.
func AllVectorDecided(procs []*VectorProcess) bool {
	for _, p := range procs {
		if _, ok := p.Decided(); !ok {
			return false
		}
	}
	return true
}
