package dbft

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/network"
)

func buildSystem(t *testing.T, cfg Config, inputs []int, byzFactory func(id network.ProcID, all []network.ProcID) network.Process, sched network.Scheduler) (*network.System, []*Process) {
	t.Helper()
	all := AllIDs(cfg.N)
	correct, err := Processes(cfg, inputs, all)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]network.Process, 0, cfg.N)
	for _, p := range correct {
		procs = append(procs, p)
	}
	for id := len(inputs); id < cfg.N; id++ {
		procs = append(procs, byzFactory(network.ProcID(id), all))
	}
	sys, err := network.NewSystem(procs, sched)
	if err != nil {
		t.Fatal(err)
	}
	return sys, correct
}

func silentFactory(id network.ProcID, _ []network.ProcID) network.Process {
	return &Silent{Id: id}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{N: 0, T: 0, MaxRounds: 5},
		{N: 4, T: -1, MaxRounds: 5},
		{N: 4, T: 1, MaxRounds: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", bad)
		}
	}
	if _, err := NewProcess(0, 2, Config{N: 4, T: 1, MaxRounds: 5}, AllIDs(4)); err == nil {
		t.Error("non-binary input should be rejected")
	}
}

// TestUnanimousDecidesOwnValue: with all correct processes proposing v and
// no Byzantine interference, everyone decides v (validity + termination).
func TestUnanimousDecidesOwnValue(t *testing.T) {
	for v := 0; v <= 1; v++ {
		cfg := Config{N: 4, T: 1, MaxRounds: 10}
		inputs := []int{v, v, v}
		sys, correct := buildSystem(t, cfg, inputs, silentFactory, network.FIFOScheduler{})
		if _, err := sys.Run(100000, func() bool { return AllDecided(correct) }); err != nil {
			t.Fatal(err)
		}
		if !AllDecided(correct) {
			t.Fatalf("v=%d: not all decided:\n%s", v, Describe(correct))
		}
		for _, p := range correct {
			if got, _, _ := p.Decided(); got != v {
				t.Errorf("v=%d: process %d decided %d:\n%s", v, p.ID(), got, Describe(correct))
			}
		}
		if err := Agreement(correct); err != nil {
			t.Error(err)
		}
		if err := Validity(correct, inputs); err != nil {
			t.Error(err)
		}
	}
}

// TestSplitInputsSafetyUnderRandomSchedules fuzzes schedules and Byzantine
// strategies: agreement and validity must hold on every run with f <= t.
func TestSplitInputsSafetyUnderRandomSchedules(t *testing.T) {
	prop := func(seed int64, inputBits uint8, strategy uint8) bool {
		cfg := Config{N: 4, T: 1, MaxRounds: 6}
		rng := rand.New(rand.NewSource(seed))
		inputs := []int{int(inputBits) & 1, int(inputBits>>1) & 1, int(inputBits>>2) & 1}
		all := AllIDs(cfg.N)

		var byz network.Process
		switch strategy % 3 {
		case 0:
			byz = &Silent{Id: 3}
		case 1:
			byz = &Equivocator{Id: 3, All: all, ZeroSide: func(p network.ProcID) bool { return p%2 == 0 }}
		default:
			byz = &RandomLiar{Id: 3, All: all, Rng: rng}
		}
		correct, err := Processes(cfg, inputs, all)
		if err != nil {
			t.Fatal(err)
		}
		procs := []network.Process{correct[0], correct[1], correct[2], byz}
		sys, err := network.NewSystem(procs, network.RandomScheduler{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(200000, func() bool { return AllDecided(correct) }); err != nil {
			t.Fatal(err)
		}
		ok := Agreement(correct) == nil && Validity(correct, inputs) == nil
		if !ok {
			t.Logf("replay with: seed=%d inputBits=%d strategy=%d", seed, inputBits, strategy)
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLargerSystemSafety repeats the fuzzing at n=7, t=2, f=2.
func TestLargerSystemSafety(t *testing.T) {
	prop := func(seed int64, inputBits uint8) bool {
		cfg := Config{N: 7, T: 2, MaxRounds: 6}
		rng := rand.New(rand.NewSource(seed))
		inputs := make([]int, 5)
		for i := range inputs {
			inputs[i] = int(inputBits>>i) & 1
		}
		all := AllIDs(cfg.N)
		correct, err := Processes(cfg, inputs, all)
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]network.Process, 0, cfg.N)
		for _, p := range correct {
			procs = append(procs, p)
		}
		procs = append(procs,
			&Equivocator{Id: 5, All: all, ZeroSide: func(p network.ProcID) bool { return p < 3 }},
			&RandomLiar{Id: 6, All: all, Rng: rng},
		)
		sys, err := network.NewSystem(procs, network.RandomScheduler{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(400000, func() bool { return AllDecided(correct) }); err != nil {
			t.Fatal(err)
		}
		ok := Agreement(correct) == nil && Validity(correct, inputs) == nil
		if !ok {
			t.Logf("replay with: seed=%d inputBits=%d", seed, inputBits)
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDisagreementBeyondResilience demonstrates the attack the model checker
// finds when n <= 3t is allowed: with two coordinated equivocators against
// two correct processes (f = 2 > t = 1), the correct processes decide
// different values — the simulator counterpart of the Inv1_0
// counterexample of Section 6.
func TestDisagreementBeyondResilience(t *testing.T) {
	cfg := Config{N: 4, T: 1, MaxRounds: 8}
	all := AllIDs(cfg.N)
	inputs := []int{0, 1}
	correct, err := Processes(cfg, inputs, all)
	if err != nil {
		t.Fatal(err)
	}
	zeroSide := func(p network.ProcID) bool { return p == 0 }
	procs := []network.Process{
		correct[0], correct[1],
		&Equivocator{Id: 2, All: all, ZeroSide: zeroSide},
		&Equivocator{Id: 3, All: all, ZeroSide: zeroSide},
	}
	sys, err := network.NewSystem(procs, network.FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(100000, func() bool { return AllDecided(correct) }); err != nil {
		t.Fatal(err)
	}
	if !AllDecided(correct) {
		t.Fatalf("attack did not complete:\n%s", Describe(correct))
	}
	if err := Agreement(correct); err == nil {
		t.Errorf("expected disagreement with f=2 > t=1:\n%s", Describe(correct))
	}
}

// TestLemma7NonTermination replays the Appendix B execution: without
// fairness the correct estimates cycle forever and nobody decides.
func TestLemma7NonTermination(t *testing.T) {
	const rounds = 20
	results, err := RunLemma7(rounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != rounds {
		t.Fatalf("got %d rounds, want %d", len(results), rounds)
	}
	for _, r := range results {
		// At the end of round r, exactly one correct process holds the
		// NEXT round's 1-parity... concretely: one process holds w = 1-q,
		// two hold q, where q = r%2.
		q := r.Round % 2
		countQ := 0
		for _, e := range r.Estimates {
			if e == q {
				countQ++
			}
		}
		if countQ != 2 {
			t.Errorf("round %d: estimates %v, want two processes holding parity %d",
				r.Round, r.Estimates, q)
		}
	}
	// Period-2 cycling of the estimate multisets.
	for i := 2; i < rounds; i++ {
		if multiset(results[i].Estimates) != multiset(results[i-2].Estimates) {
			t.Errorf("round %d multiset %v differs from round %d %v",
				i, results[i].Estimates, i-2, results[i-2].Estimates)
		}
	}
}

func multiset(es []int) [2]int {
	var m [2]int
	for _, e := range es {
		m[e]++
	}
	return m
}

// TestDeliveryOrderRecorded checks the Def. 2 instrumentation.
func TestDeliveryOrderRecorded(t *testing.T) {
	cfg := Config{N: 4, T: 1, MaxRounds: 5}
	inputs := []int{1, 1, 1}
	sys, correct := buildSystem(t, cfg, inputs, silentFactory, network.FIFOScheduler{})
	if _, err := sys.Run(100000, func() bool { return AllDecided(correct) }); err != nil {
		t.Fatal(err)
	}
	v, good := GoodValue(correct, 0)
	if !good || v != 1 {
		t.Errorf("round 0 should be 1-good (unanimous inputs), got v=%d good=%v", v, good)
	}
}

func TestSanitizeSet(t *testing.T) {
	cases := []struct {
		in   []int
		want []int
	}{
		{[]int{0}, []int{0}},
		{[]int{1, 0, 1}, []int{0, 1}},
		{[]int{0, 0, 1}, []int{0, 1}}, // duplicates collapse
		{[]int{2}, nil},
		{[]int{-1}, nil}, // negative values are malformed, not an index panic
		{[]int{}, nil},
		{nil, nil},
		{[]int{1, 7}, nil},
		{[]int{0, 1, 2}, nil}, // one bad value poisons the whole set
	}
	for _, c := range cases {
		got := sanitizeSet(c.in)
		if len(got) != len(c.want) {
			t.Errorf("sanitizeSet(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("sanitizeSet(%v) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

// TestDuplicateAuxIgnored: only a sender's first aux message counts, so a
// Byzantine process cannot stuff the favorites array.
func TestDuplicateAuxIgnored(t *testing.T) {
	cfg := Config{N: 4, T: 1, MaxRounds: 3}
	p, err := NewProcess(0, 0, cfg, AllIDs(4))
	if err != nil {
		t.Fatal(err)
	}
	drop := func(network.Message) {}
	p.Start(drop)
	p.Deliver(network.Message{From: 3, To: 0, Round: 0, Kind: network.MsgAux, Set: []int{0}}, drop)
	p.Deliver(network.Message{From: 3, To: 0, Round: 0, Kind: network.MsgAux, Set: []int{1}}, drop)
	st := p.state(0)
	if len(st.favorites) != 1 || len(st.favorites[3]) != 1 || st.favorites[3][0] != 0 {
		t.Errorf("favorites = %v, want only the first aux from 3", st.favorites)
	}
}

// TestHandlersIdempotentUnderDuplication proves the retransmission layer's
// core assumption: delivering every message twice changes nothing. A system
// whose send path duplicates every copy must reach exactly the decisions of
// the unmodified system.
func TestHandlersIdempotentUnderDuplication(t *testing.T) {
	run := func(duplicate bool) []*Process {
		cfg := Config{N: 4, T: 1, MaxRounds: 8}
		all := AllIDs(cfg.N)
		inputs := []int{0, 1, 1}
		correct, err := Processes(cfg, inputs, all)
		if err != nil {
			t.Fatal(err)
		}
		procs := []network.Process{correct[0], correct[1], correct[2], &Silent{Id: 3}}
		sys, err := network.NewSystem(procs, network.FIFOScheduler{})
		if err != nil {
			t.Fatal(err)
		}
		if duplicate {
			sys.SendTap = func(m network.Message) []network.Message {
				return []network.Message{m, m}
			}
		}
		if _, err := sys.Run(500_000, func() bool { return AllDecided(correct) }); err != nil {
			t.Fatal(err)
		}
		if !AllDecided(correct) {
			t.Fatalf("duplicate=%v: not all decided", duplicate)
		}
		return correct
	}
	base := run(false)
	doubled := run(true)
	for i := range base {
		bv, br, _ := base[i].Decided()
		dv, dr, _ := doubled[i].Decided()
		if bv != dv {
			t.Errorf("p%d: decision %d with duplication, %d without", i, dv, bv)
		}
		if br != dr {
			t.Errorf("p%d: decision round %d with duplication, %d without", i, dr, br)
		}
	}
	if err := Agreement(doubled); err != nil {
		t.Error(err)
	}
}
