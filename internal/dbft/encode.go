package dbft

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/network"
)

// This file defines the canonical on-disk encoding of Snapshot and of
// network.Message — the payloads the durability layer (internal/wal via
// internal/faults) appends and replays. The encoding is *canonical*: map
// keys are sorted, so two state-identical snapshots always encode to the
// same bytes. That is what lets the torture harness assert "recovered state
// equals a fresh replay of the log" by comparing byte strings, and what
// makes EncodeSnapshot a usable state fingerprint.

// snapshotVersion guards the layout; bump on any change.
const snapshotVersion = 1

// maxDecodeLen caps every decoded length field so a hostile (or fuzzed)
// input cannot demand gigabytes.
const maxDecodeLen = 1 << 20

type encBuf struct{ b []byte }

func (e *encBuf) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *encBuf) varint(v int)     { e.b = binary.AppendVarint(e.b, int64(v)) }
func (e *encBuf) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *encBuf) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *encBuf) ints(vs []int) {
	e.uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.varint(v)
	}
}
func (e *encBuf) procs(ids []network.ProcID) {
	e.uvarint(uint64(len(ids)))
	for _, id := range ids {
		e.varint(int(id))
	}
}

type decBuf struct {
	b   []byte
	off int
	err error
}

func (d *decBuf) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("dbft: decode: "+format, args...)
	}
}

func (d *decBuf) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decBuf) varint() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at %d", d.off)
		return 0
	}
	d.off += n
	return int(v)
}

func (d *decBuf) length() int {
	v := d.uvarint()
	if v > maxDecodeLen {
		d.fail("length %d exceeds cap", v)
		return 0
	}
	return int(v)
}

func (d *decBuf) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail("bool past end")
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

func (d *decBuf) str() string {
	n := d.length()
	if d.err != nil {
		return ""
	}
	if d.off+n > len(d.b) {
		d.fail("string of %d past end", n)
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decBuf) ints() []int {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		out = append(out, d.varint())
		if d.err != nil {
			return nil
		}
	}
	return out
}

func (d *decBuf) procIDs() []network.ProcID {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]network.ProcID, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		out = append(out, network.ProcID(d.varint()))
		if d.err != nil {
			return nil
		}
	}
	return out
}

// EncodeMessage renders one message in the canonical form.
func EncodeMessage(m network.Message) []byte {
	var e encBuf
	encodeMessage(&e, m)
	return e.b
}

func encodeMessage(e *encBuf, m network.Message) {
	e.varint(int(m.From))
	e.varint(int(m.To))
	e.varint(m.Round)
	e.str(string(m.Kind))
	e.varint(m.Value)
	e.ints(m.Set)
	e.varint(m.Instance)
	e.varint(int(m.Proposer))
	e.str(m.Payload)
	// Seq is per-copy fault-layer metadata, not message content: it is
	// deliberately not persisted, so retransmitted copies of a recovered
	// outbox re-enter the network unstamped, exactly like fresh sends.
}

// DecodeMessage parses a message previously rendered by EncodeMessage.
func DecodeMessage(b []byte) (network.Message, error) {
	d := &decBuf{b: b}
	m := decodeMessage(d)
	if d.err != nil {
		return network.Message{}, d.err
	}
	if d.off != len(b) {
		return network.Message{}, fmt.Errorf("dbft: decode: %d trailing bytes after message", len(b)-d.off)
	}
	return m, nil
}

func decodeMessage(d *decBuf) network.Message {
	var m network.Message
	m.From = network.ProcID(d.varint())
	m.To = network.ProcID(d.varint())
	m.Round = d.varint()
	m.Kind = network.MsgKind(d.str())
	m.Value = d.varint()
	m.Set = d.ints()
	m.Instance = d.varint()
	m.Proposer = network.ProcID(d.varint())
	m.Payload = d.str()
	return m
}

// EncodeSnapshot renders the snapshot canonically: state-identical
// snapshots yield identical bytes.
func EncodeSnapshot(s *Snapshot) []byte {
	e := &encBuf{b: make([]byte, 0, 256)}
	e.b = append(e.b, snapshotVersion)
	e.varint(s.est)
	e.varint(s.round)
	e.bool(s.decided)
	e.varint(s.decision)
	e.varint(s.decRound)
	e.ints(s.estimateHistory)

	rounds := make([]int, 0, len(s.deliveryOrder))
	for r := range s.deliveryOrder {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	e.uvarint(uint64(len(rounds)))
	for _, r := range rounds {
		e.varint(r)
		e.ints(s.deliveryOrder[r])
	}

	rounds = rounds[:0]
	for r := range s.rounds {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	e.uvarint(uint64(len(rounds)))
	for _, r := range rounds {
		e.varint(r)
		encodeRoundState(e, s.rounds[r])
	}

	e.uvarint(uint64(len(s.outbox)))
	for _, m := range s.outbox {
		encodeMessage(e, m)
	}
	return e.b
}

func encodeRoundState(e *encBuf, st *roundState) {
	for v := 0; v <= 1; v++ {
		ids := make([]network.ProcID, 0, len(st.bvSenders[v]))
		for id := range st.bvSenders[v] {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		e.procs(ids)
	}
	// Bit-pack the five flags.
	var flags byte
	if st.echoed[0] {
		flags |= 1
	}
	if st.echoed[1] {
		flags |= 2
	}
	if st.contestants[0] {
		flags |= 4
	}
	if st.contestants[1] {
		flags |= 8
	}
	if st.auxSent {
		flags |= 16
	}
	e.b = append(e.b, flags)
	// favorites in arrival order (favOrder), preserving first-aux-wins
	// semantics across a recovery.
	e.uvarint(uint64(len(st.favOrder)))
	for _, q := range st.favOrder {
		e.varint(int(q))
		e.ints(st.favorites[q])
	}
}

// DecodeSnapshot parses a snapshot previously rendered by EncodeSnapshot.
// It never panics on malformed input (fuzzed in encode_test.go).
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("dbft: decode: empty snapshot")
	}
	if b[0] != snapshotVersion {
		return nil, fmt.Errorf("dbft: decode: unknown snapshot version %d", b[0])
	}
	d := &decBuf{b: b, off: 1}
	s := &Snapshot{
		rounds:        map[int]*roundState{},
		deliveryOrder: map[int][]int{},
	}
	s.est = d.varint()
	s.round = d.varint()
	s.decided = d.bool()
	s.decision = d.varint()
	s.decRound = d.varint()
	s.estimateHistory = d.ints()

	n := d.length()
	for i := 0; i < n && d.err == nil; i++ {
		r := d.varint()
		vs := d.ints()
		if d.err == nil {
			if _, dup := s.deliveryOrder[r]; dup {
				d.fail("duplicate delivery-order round %d", r)
				break
			}
			s.deliveryOrder[r] = vs
		}
	}

	n = d.length()
	for i := 0; i < n && d.err == nil; i++ {
		r := d.varint()
		st := decodeRoundState(d)
		if d.err == nil {
			if _, dup := s.rounds[r]; dup {
				d.fail("duplicate round %d", r)
				break
			}
			s.rounds[r] = st
		}
	}

	n = d.length()
	for i := 0; i < n && d.err == nil; i++ {
		s.outbox = append(s.outbox, decodeMessage(d))
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("dbft: decode: %d trailing bytes after snapshot", len(b)-d.off)
	}
	return s, nil
}

func decodeRoundState(d *decBuf) *roundState {
	st := newRoundState()
	for v := 0; v <= 1; v++ {
		for _, id := range d.procIDs() {
			if st.bvSenders[v][id] {
				d.fail("duplicate bv sender %d", id)
				return st
			}
			st.bvSenders[v][id] = true
		}
	}
	if d.err != nil {
		return st
	}
	if d.off >= len(d.b) {
		d.fail("flags past end")
		return st
	}
	flags := d.b[d.off]
	d.off++
	st.echoed[0] = flags&1 != 0
	st.echoed[1] = flags&2 != 0
	st.contestants[0] = flags&4 != 0
	st.contestants[1] = flags&8 != 0
	st.auxSent = flags&16 != 0

	n := d.length()
	for i := 0; i < n && d.err == nil; i++ {
		q := network.ProcID(d.varint())
		set := d.ints()
		if d.err == nil {
			if _, dup := st.favorites[q]; dup {
				d.fail("duplicate favorite %d", q)
				return st
			}
			st.favorites[q] = set
			st.favOrder = append(st.favOrder, q)
		}
	}
	st.recountValidFavorites()
	return st
}
