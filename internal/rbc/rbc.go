// Package rbc implements Bracha's reliable broadcast, the classic
// t < n/3 Byzantine-tolerant broadcast primitive that blockchain consensus
// protocols (including Red Belly's vector consensus) use to disseminate
// proposals. Its guarantees mirror the bv-broadcast properties the paper
// verifies:
//
//   - validity: if a correct proposer broadcasts v, every correct process
//     delivers v for that proposer;
//   - agreement: no two correct processes deliver different payloads for the
//     same proposer (even a Byzantine one);
//   - integrity: at most one delivery per proposer.
//
// The protocol: the proposer sends PROP(v); on the first PROP from a
// proposer a process echoes ECHO(v); on an echo quorum of ⌈(n+t+1)/2⌉
// matching ECHOs (or t+1 matching READYs) it sends READY(v); on 2t+1
// matching READYs it delivers v. The echo quorum is what guarantees
// agreement for an equivocating proposer: two quorums for different
// payloads would have to intersect in a correct process, which echoes at
// most once per proposer. (At the minimal n = 3t+1 the quorum equals 2t+1;
// for larger n it is strictly larger, and using 2t+1 there would be a
// classic split-brain bug.)
package rbc

import (
	"fmt"

	"repro/internal/network"
)

type key struct {
	proposer network.ProcID
	payload  string
}

// RBC is the reliable-broadcast component of one host process. It is not a
// network.Process itself: the host forwards PROP/ECHO/READY messages to
// Handle and receives deliveries through the OnDeliver callback.
type RBC struct {
	Me  network.ProcID
	N   int
	T   int
	All []network.ProcID
	// OnDeliver is invoked exactly once per proposer, with the delivered
	// payload.
	OnDeliver func(proposer network.ProcID, payload string, send network.Sender)

	echoed    map[network.ProcID]bool // echoed some payload of this proposer
	readied   map[key]bool
	echoes    map[key]map[network.ProcID]bool
	readies   map[key]map[network.ProcID]bool
	delivered map[network.ProcID]bool

	// outbox holds one template per logical broadcast (PROP/ECHO/READY) for
	// retransmission over lossy links. Re-broadcasting recorded content is
	// idempotent at every receiver: echo/ready quorums are distinct-sender
	// sets and maybeEcho/maybeReady are latched.
	outbox []network.Message
}

func (r *RBC) init() {
	if r.echoes == nil {
		r.echoed = make(map[network.ProcID]bool)
		r.readied = make(map[key]bool)
		r.echoes = make(map[key]map[network.ProcID]bool)
		r.readies = make(map[key]map[network.ProcID]bool)
		r.delivered = make(map[network.ProcID]bool)
	}
}

// Delivered reports whether a payload was delivered for the proposer.
func (r *RBC) Delivered(proposer network.ProcID) bool {
	r.init()
	return r.delivered[proposer]
}

// Propose reliably broadcasts the payload with this process as proposer.
func (r *RBC) Propose(payload string, send network.Sender) {
	r.init()
	r.broadcast(send, network.Message{
		From: r.Me, Kind: network.MsgProp, Proposer: r.Me, Payload: payload,
	})
}

func (r *RBC) broadcast(send network.Sender, m network.Message) {
	r.outbox = append(r.outbox, m)
	network.Broadcast(send, r.All, m)
}

// Retransmit re-broadcasts every PROP/ECHO/READY this process has sent.
// Callers (e.g. the vector consensus tick handler) own the backoff policy.
func (r *RBC) Retransmit(send network.Sender) {
	for _, m := range r.outbox {
		network.Broadcast(send, r.All, m)
	}
}

// Handle consumes a reliable-broadcast message; it reports whether the
// message belonged to the protocol (false = not an RBC message).
func (r *RBC) Handle(m network.Message, send network.Sender) (bool, error) {
	r.init()
	switch m.Kind {
	case network.MsgProp:
		// Only the proposer itself may introduce its payload.
		if m.From != m.Proposer {
			return true, nil // forged introduction: ignored
		}
		r.maybeEcho(key{m.Proposer, m.Payload}, send)
	case network.MsgEcho:
		k := key{m.Proposer, m.Payload}
		r.record(r.echoes, k, m.From)
		if len(r.echoes[k]) >= r.echoQuorum() {
			r.maybeReady(k, send)
		}
	case network.MsgReady:
		k := key{m.Proposer, m.Payload}
		r.record(r.readies, k, m.From)
		// Ready amplification: t+1 READYs prove a correct process saw an
		// echo quorum, so it is safe to join.
		if len(r.readies[k]) >= r.T+1 {
			r.maybeReady(k, send)
		}
		if len(r.readies[k]) >= 2*r.T+1 && !r.delivered[k.proposer] {
			r.delivered[k.proposer] = true
			if r.OnDeliver == nil {
				return true, fmt.Errorf("rbc: delivery with no OnDeliver handler")
			}
			r.OnDeliver(k.proposer, k.payload, send)
		}
	default:
		return false, nil
	}
	return true, nil
}

// echoQuorum is ⌈(n+t+1)/2⌉: any two echo quorums intersect in a correct
// process.
func (r *RBC) echoQuorum() int {
	return (r.N+r.T)/2 + 1
}

func (r *RBC) record(m map[key]map[network.ProcID]bool, k key, from network.ProcID) {
	if m[k] == nil {
		m[k] = make(map[network.ProcID]bool)
	}
	m[k][from] = true
}

// maybeEcho sends ECHO for the proposer's payload, once per proposer (a
// Byzantine proposer sending two payloads gets at most one echo from each
// correct process, which is what prevents two ready quorums).
func (r *RBC) maybeEcho(k key, send network.Sender) {
	if r.echoed[k.proposer] {
		return
	}
	r.echoed[k.proposer] = true
	r.broadcast(send, network.Message{
		From: r.Me, Kind: network.MsgEcho, Proposer: k.proposer, Payload: k.payload,
	})
}

func (r *RBC) maybeReady(k key, send network.Sender) {
	if r.readied[k] {
		return
	}
	r.readied[k] = true
	r.broadcast(send, network.Message{
		From: r.Me, Kind: network.MsgReady, Proposer: k.proposer, Payload: k.payload,
	})
}
