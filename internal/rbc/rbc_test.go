package rbc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/network"
)

// host wraps an RBC instance as a network.Process for the tests.
type host struct {
	id        network.ProcID
	rbc       *RBC
	proposal  string
	delivered map[network.ProcID]string
}

func newHost(id network.ProcID, n, t int, all []network.ProcID, proposal string) *host {
	h := &host{id: id, proposal: proposal, delivered: map[network.ProcID]string{}}
	h.rbc = &RBC{
		Me: id, N: n, T: t, All: all,
		OnDeliver: func(p network.ProcID, payload string, _ network.Sender) {
			h.delivered[p] = payload
		},
	}
	return h
}

func (h *host) ID() network.ProcID { return h.id }
func (h *host) Start(send network.Sender) {
	if h.proposal != "" {
		h.rbc.Propose(h.proposal, send)
	}
}
func (h *host) Deliver(m network.Message, send network.Sender) {
	_, _ = h.rbc.Handle(m, send)
}

func ids(n int) []network.ProcID {
	out := make([]network.ProcID, n)
	for i := range out {
		out[i] = network.ProcID(i)
	}
	return out
}

// TestAllCorrectDeliverAll: with correct proposers only, every process
// delivers every proposal (validity + totality).
func TestAllCorrectDeliverAll(t *testing.T) {
	const n, tt = 4, 1
	all := ids(n)
	hosts := make([]*host, n)
	procs := make([]network.Process, n)
	for i := range hosts {
		hosts[i] = newHost(all[i], n, tt, all, string(rune('a'+i)))
		procs[i] = hosts[i]
	}
	sys, err := network.NewSystem(procs, network.FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(100000, nil); err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts {
		if len(h.delivered) != n {
			t.Errorf("process %d delivered %d proposals, want %d: %v", h.id, len(h.delivered), n, h.delivered)
		}
		for p, payload := range h.delivered {
			if want := string(rune('a' + int(p))); payload != want {
				t.Errorf("process %d delivered %q for proposer %d, want %q", h.id, payload, p, want)
			}
		}
	}
}

// equivocator sends PROP("x") to half the processes and PROP("y") to the
// rest, echoing nothing itself.
type equivocator struct {
	id  network.ProcID
	all []network.ProcID
}

func (e *equivocator) ID() network.ProcID { return e.id }
func (e *equivocator) Start(send network.Sender) {
	for _, to := range e.all {
		if to == e.id {
			continue
		}
		payload := "x"
		if to%2 == 0 {
			payload = "y"
		}
		send(network.Message{From: e.id, To: to, Kind: network.MsgProp, Proposer: e.id, Payload: payload})
	}
}
func (e *equivocator) Deliver(network.Message, network.Sender) {}

// TestEquivocatingProposerAgreement: a Byzantine proposer sending different
// payloads to different processes cannot make two correct processes deliver
// different values for it (agreement), under randomized schedules.
func TestEquivocatingProposerAgreement(t *testing.T) {
	prop := func(seed int64) bool {
		const n, tt = 4, 1
		all := ids(n)
		hosts := make([]*host, 3)
		procs := make([]network.Process, 0, n)
		for i := 0; i < 3; i++ {
			hosts[i] = newHost(all[i], n, tt, all, "") // no own proposal
			procs = append(procs, hosts[i])
		}
		procs = append(procs, &equivocator{id: 3, all: all})
		rng := rand.New(rand.NewSource(seed))
		sys, err := network.NewSystem(procs, network.RandomScheduler{Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(100000, nil); err != nil {
			t.Fatal(err)
		}
		seen := ""
		for _, h := range hosts {
			if v, ok := h.delivered[3]; ok {
				if seen == "" {
					seen = v
				} else if v != seen {
					t.Logf("replay with: seed=%d", seed)
					return false // disagreement!
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestForgedIntroductionIgnored: a PROP message whose From differs from the
// claimed proposer is discarded, so a Byzantine process cannot speak for a
// correct one.
func TestForgedIntroductionIgnored(t *testing.T) {
	const n, tt = 4, 1
	all := ids(n)
	h := newHost(0, n, tt, all, "")
	var sent []network.Message
	send := func(m network.Message) { sent = append(sent, m) }
	h.Deliver(network.Message{From: 3, Kind: network.MsgProp, Proposer: 1, Payload: "forged"}, send)
	if len(sent) != 0 {
		t.Errorf("forged introduction triggered %d messages", len(sent))
	}
}

// TestReadyAmplification: t+1 READYs are enough to join the ready quorum,
// 2t+1 to deliver — even without receiving the PROP at all.
func TestReadyAmplification(t *testing.T) {
	const n, tt = 4, 1
	all := ids(n)
	h := newHost(0, n, tt, all, "")
	var sent []network.Message
	send := func(m network.Message) { sent = append(sent, m) }

	h.Deliver(network.Message{From: 1, Kind: network.MsgReady, Proposer: 2, Payload: "v"}, send)
	if len(sent) != 0 {
		t.Fatalf("one READY should not trigger anything, got %d messages", len(sent))
	}
	h.Deliver(network.Message{From: 2, Kind: network.MsgReady, Proposer: 2, Payload: "v"}, send)
	// t+1 = 2 READYs: the host joins with its own READY broadcast (n copies).
	if len(sent) != n {
		t.Fatalf("after t+1 READYs: %d messages, want %d (own READY broadcast)", len(sent), n)
	}
	if h.rbc.Delivered(2) {
		t.Fatal("must not deliver before 2t+1 READYs")
	}
	h.Deliver(network.Message{From: 3, Kind: network.MsgReady, Proposer: 2, Payload: "v"}, send)
	if !h.rbc.Delivered(2) {
		t.Fatal("2t+1 READYs must deliver")
	}
	if got := h.delivered[2]; got != "v" {
		t.Errorf("delivered %q, want v", got)
	}
	// Integrity: a second quorum for a different payload cannot deliver.
	for _, from := range []network.ProcID{0, 1, 2} {
		h.Deliver(network.Message{From: from, Kind: network.MsgReady, Proposer: 2, Payload: "other"}, send)
	}
	if got := h.delivered[2]; got != "v" {
		t.Errorf("second delivery changed payload to %q", got)
	}
}

// splitBrainAdversary mounts the n=5 attack that a 2t+1 echo quorum would
// fall for: it PROPoses, ECHOes and READYs payload "x" to processes {0,1}
// and payload "y" to {2,3}. With the correct ⌈(n+t+1)/2⌉ quorum the echo
// counts (3 of 4 needed) never reach READY and nobody delivers.
type splitBrainAdversary struct {
	id  network.ProcID
	all []network.ProcID
}

func (a *splitBrainAdversary) ID() network.ProcID { return a.id }
func (a *splitBrainAdversary) Start(send network.Sender) {
	for _, to := range a.all {
		if to == a.id {
			continue
		}
		payload := "x"
		if to >= 2 {
			payload = "y"
		}
		for _, kind := range []network.MsgKind{network.MsgProp, network.MsgEcho, network.MsgReady} {
			send(network.Message{From: a.id, To: to, Kind: kind, Proposer: a.id, Payload: payload})
		}
	}
}
func (a *splitBrainAdversary) Deliver(network.Message, network.Sender) {}

// TestEchoQuorumPreventsSplitBrain is the regression test for the echo
// quorum: at n=5, t=1, a fully equivocating proposer (who also echoes and
// readies both payloads) must not make correct processes deliver different
// values. With the buggy 2t+1 threshold processes {0,1} delivered "x" while
// {2,3} delivered "y".
func TestEchoQuorumPreventsSplitBrain(t *testing.T) {
	const n, tt = 5, 1
	all := ids(n)
	hosts := make([]*host, 4)
	procs := make([]network.Process, 0, n)
	for i := 0; i < 4; i++ {
		hosts[i] = newHost(all[i], n, tt, all, "")
		procs = append(procs, hosts[i])
	}
	procs = append(procs, &splitBrainAdversary{id: 4, all: all})
	sys, err := network.NewSystem(procs, network.FIFOScheduler{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(100000, nil); err != nil {
		t.Fatal(err)
	}
	seen := ""
	for _, h := range hosts {
		if v, ok := h.delivered[4]; ok {
			if seen == "" {
				seen = v
			} else if v != seen {
				t.Fatalf("split brain: %q and %q both delivered for proposer 4", seen, v)
			}
		}
	}
}

// TestEchoQuorumValue pins the quorum formula at a few sizes.
func TestEchoQuorumValue(t *testing.T) {
	cases := []struct{ n, t, want int }{
		{4, 1, 3}, // minimal n: equals 2t+1
		{5, 1, 4}, // larger n: strictly more than 2t+1
		{7, 2, 5},
		{8, 2, 6},
	}
	for _, c := range cases {
		r := &RBC{N: c.n, T: c.t}
		if got := r.echoQuorum(); got != c.want {
			t.Errorf("n=%d t=%d: quorum %d, want %d", c.n, c.t, got, c.want)
		}
	}
}
