package ltl

import (
	"fmt"
	"strconv"
)

// PropertyFile is a parsed ByMC-style property file: named formulas in
// declaration order.
type PropertyFile struct {
	Names    []string
	Formulas map[string]Formula
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

// next consumes a token; the trailing EOF token is sticky so that error
// paths deep in expression parsing cannot run past the token slice.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.Kind != tokEOF {
		p.pos++
	}
	return t
}
func (p *parser) at(text string) bool {
	t := p.peek()
	return t.Kind == tokOp && t.Text == text
}
func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}
func (p *parser) expect(text string) error {
	if !p.accept(text) {
		t := p.peek()
		return fmt.Errorf("ltl: line %d: expected %q, found %q", t.Line, text, t.Text)
	}
	return nil
}

// ParseFile parses a property file of the form "name: formula; ...".
func ParseFile(src string) (*PropertyFile, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	out := &PropertyFile{Formulas: make(map[string]Formula)}
	for p.peek().Kind != tokEOF {
		name := p.next()
		if name.Kind != tokIdent {
			return nil, fmt.Errorf("ltl: line %d: expected property name, found %q", name.Line, name.Text)
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if _, dup := out.Formulas[name.Text]; dup {
			return nil, fmt.Errorf("ltl: line %d: duplicate property %q", name.Line, name.Text)
		}
		out.Names = append(out.Names, name.Text)
		out.Formulas[name.Text] = f
	}
	return out, nil
}

// ParseFormula parses a single formula.
func ParseFormula(src string) (Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != tokEOF {
		t := p.peek()
		return nil, fmt.Errorf("ltl: line %d: trailing input %q", t.Line, t.Text)
	}
	return f, nil
}

// parseFormula implements -> (right-associative, lowest precedence).
func (p *parser) parseFormula() (Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.accept("->") {
		r, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		return Binary{Op: OpImplies, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Formula, error) {
	switch {
	case p.accept("<>"):
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: OpEventually, Sub: sub}, nil
	case p.accept("[]"):
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: OpAlways, Sub: sub}, nil
	case p.accept("!"):
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: OpNot, Sub: sub}, nil
	case p.at("("):
		// Parenthesized formula (expressions may not contain parentheses,
		// so '(' always opens a formula).
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseAtom() (Formula, error) {
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	var op CmpOp
	switch {
	case p.accept("=="):
		op = OpEq
	case p.accept("!="):
		op = OpNe
	case p.accept("<="):
		op = OpLe
	case p.accept(">="):
		op = OpGe
	case p.accept("<"):
		op = OpLt
	case p.accept(">"):
		op = OpGt
	default:
		return nil, fmt.Errorf("ltl: line %d: expected comparison operator, found %q", t.Line, t.Text)
	}
	right, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return Atom{Left: left, Op: op, Right: right}, nil
}

// parseExpr parses a linear expression: terms joined by + and -.
func (p *parser) parseExpr() (Expr, error) {
	var e Expr
	neg := false
	if p.accept("-") {
		neg = true
	}
	t, err := p.parseTerm(neg)
	if err != nil {
		return Expr{}, err
	}
	e.Terms = append(e.Terms, t)
	for {
		switch {
		case p.accept("+"):
			t, err := p.parseTerm(false)
			if err != nil {
				return Expr{}, err
			}
			e.Terms = append(e.Terms, t)
		case p.accept("-"):
			t, err := p.parseTerm(true)
			if err != nil {
				return Expr{}, err
			}
			e.Terms = append(e.Terms, t)
		default:
			return e, nil
		}
	}
}

// parseTerm parses NUMBER, IDENT, NUMBER '*' IDENT or IDENT '*' NUMBER.
func (p *parser) parseTerm(neg bool) (Term, error) {
	sign := int64(1)
	if neg {
		sign = -1
	}
	t := p.next()
	switch t.Kind {
	case tokNumber:
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return Term{}, fmt.Errorf("ltl: line %d: %v", t.Line, err)
		}
		if p.accept("*") {
			id := p.next()
			if id.Kind != tokIdent {
				return Term{}, fmt.Errorf("ltl: line %d: expected identifier after *", id.Line)
			}
			return Term{Coeff: sign * v, Name: id.Text}, nil
		}
		return Term{Coeff: sign * v}, nil
	case tokIdent:
		if p.accept("*") {
			num := p.next()
			if num.Kind != tokNumber {
				return Term{}, fmt.Errorf("ltl: line %d: expected number after *", num.Line)
			}
			v, err := strconv.ParseInt(num.Text, 10, 64)
			if err != nil {
				return Term{}, fmt.Errorf("ltl: line %d: %v", num.Line, err)
			}
			return Term{Coeff: sign * v, Name: t.Text}, nil
		}
		return Term{Coeff: sign, Name: t.Text}, nil
	default:
		return Term{}, fmt.Errorf("ltl: line %d: expected term, found %q", t.Line, t.Text)
	}
}
