package ltl

// BVBroadcastSpec renders the four bv-broadcast properties of Section 3.2
// in the ByMC-style property syntax: BV-Justification, BV-Obligation,
// BV-Uniformity (both symmetric instances each) and BV-Termination.
// Locs_v of the paper — the locations a process may occupy while v is not in
// its contestants set — appears expanded in the goals.
const BVBroadcastSpec = `
/* BV-Justification: only values bv-broadcast by correct processes are
   delivered. */
bv_just0: [](locV0 == 0) -> [](locC0 == 0 && locCB0 == 0 && locC01 == 0);
bv_just1: [](locV1 == 0) -> [](locC1 == 0 && locCB1 == 0 && locC01 == 0);

/* BV-Obligation: t+1 correct broadcasts of v force delivery of v at every
   correct process. */
bv_obl0: []( b0 >= T + 1 -> <>( locV0 == 0 && locV1 == 0 && locB0 == 0 &&
	locB1 == 0 && locB01 == 0 && locC1 == 0 && locCB1 == 0 ) );
bv_obl1: []( b1 >= T + 1 -> <>( locV0 == 0 && locV1 == 0 && locB0 == 0 &&
	locB1 == 0 && locB01 == 0 && locC0 == 0 && locCB0 == 0 ) );

/* BV-Uniformity: one delivery of v forces delivery of v everywhere. */
bv_unif0: <>( locC0 != 0 || locCB0 != 0 || locC01 != 0 ) ->
	<>( locV0 == 0 && locV1 == 0 && locB0 == 0 && locB1 == 0 &&
	    locB01 == 0 && locC1 == 0 && locCB1 == 0 );
bv_unif1: <>( locC1 != 0 || locCB1 != 0 || locC01 != 0 ) ->
	<>( locV0 == 0 && locV1 == 0 && locB0 == 0 && locB1 == 0 &&
	    locB01 == 0 && locC0 == 0 && locCB0 == 0 );

/* BV-Termination: every correct process eventually delivers something. */
bv_term: <>( locV0 == 0 && locV1 == 0 && locB0 == 0 && locB1 == 0 &&
	locB01 == 0 );
`

// SimplifiedConsensusSpec is the Appendix F specification of the simplified
// consensus automaton, adapted to this module's naming (shared variables
// a0/a1 for the paper's aux0/aux1, location suffix x for the primed second
// half) and with the "business as usual" thresholds written as N - T - F —
// the form matching the Fig. 4 guards, which count only messages from
// correct processes (the paper's file writes N - T over counters that
// include the f Byzantine contributions; see EXPERIMENTS.md).
//
// The <>[] premise lists the justice preconditions: the proven bv-broadcast
// properties (BV-Termination, BV-Obligation, BV-Uniformity) standing in for
// the verified inner automaton, plus reliable communication on the aux
// thresholds. BV-Justification needs no precondition — it is baked into the
// structure of the gadget (guards of M -> M0/M1).
const SimplifiedConsensusSpec = `
s_round_termination:
<>[](
	(locV0 == 0) &&
	(locV1 == 0) &&

	/* BV-Termination */
	(locM == 0) &&
	/* BV-Obligation */
	(locM1 == 0 || bvb0 < T + 1) &&
	(locM0 == 0 || bvb1 < T + 1) &&
	/* BV-Uniformity */
	(locM1 == 0 || a0 == 0) &&
	(locM0 == 0 || a1 == 0) &&

	/* Business as usual */
	(locM1 == 0 || a1 < N - T - F) &&
	(locM0 == 0 || a0 < N - T - F) &&
	(locM01 == 0 || a0 + a1 < N - T - F) &&

	(locD1 == 0) &&
	(locE0 == 0) &&
	(locE1 == 0) &&

	(locV0x == 0) &&
	(locV1x == 0) &&

	/* BV-Termination */
	(locMx == 0) &&
	/* BV-Obligation */
	(locM1x == 0 || bvb0x < T + 1) &&
	(locM0x == 0 || bvb1x < T + 1) &&
	/* BV-Uniformity */
	(locM1x == 0 || a0x == 0) &&
	(locM0x == 0 || a1x == 0) &&

	(locM1x == 0 || a1x < N - T - F) &&
	(locM0x == 0 || a0x < N - T - F) &&
	(locM01x == 0 || a0x + a1x < N - T - F)
)
->
<>(
	locV0 == 0 &&
	locV1 == 0 &&
	locM == 0 &&
	locM0 == 0 &&
	locM1 == 0 &&
	locM01 == 0 &&
	locE0 == 0 &&
	locE1 == 0 &&
	locD1 == 0 &&
	locV0x == 0 &&
	locV1x == 0 &&
	locMx == 0 &&
	locM0x == 0 &&
	locM1x == 0 &&
	locM01x == 0
);

inv1_0: <>(locD0 != 0) -> [](locD1 == 0 && locE1x == 0);

inv2_0: [](locV0 == 0) -> [](locD0 == 0 && locE0x == 0);

inv1_1: <>(locD1 != 0) -> [](locD0 == 0 && locE0x == 0);

inv2_1: [](locV1 == 0) -> [](locD1 == 0 && locE1x == 0);

dec_0: [](locV0 == 0) -> [](locE0 == 0 && locE1 == 0);

dec_1: [](locV1 == 0) -> [](locE0x == 0 && locE1x == 0);

good_0: [](locM0 == 0) -> [](locD0 == 0 && locE0x == 0);

good_1: [](locM1x == 0) -> [](locE1x == 0);
`

// STRBSpec renders the three Srikanth-Toueg reliable broadcast properties
// (the original threshold-automata benchmark, reference [33]).
const STRBSpec = `
/* Unforgeability: if no correct process received the INIT message, no
   correct process ever accepts. */
unforgeability: [](locV1 == 0) -> [](locAC == 0);

/* Correctness: if every correct process received the INIT message, every
   correct process eventually accepts. */
correctness: [](locV0 == 0) -> <>( locV0 == 0 && locV1 == 0 && locSE == 0 );

/* Relay: if some correct process accepts, every correct process eventually
   accepts. */
relay: <>(locAC != 0) -> <>( locV0 == 0 && locV1 == 0 && locSE == 0 );
`
