// Package ltl provides the linear temporal logic surface syntax of the
// paper's specifications: an AST, a lexer/parser for the ByMC-style property
// files of Appendix F (`<>` eventually, `[]` always, `->`, `&&`, `||`,
// comparisons over location counters and shared variables), and a compiler
// from the checkable fragment into spec.Query counterexample problems.
package ltl

import (
	"fmt"
	"strings"
)

// Formula is an LTL formula node.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// CmpOp is a comparison operator in an atomic proposition.
type CmpOp string

// Comparison operators of the surface syntax.
const (
	OpEq CmpOp = "=="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Term is one summand of a linear expression: Coeff * Name, or a constant
// when Name is empty.
type Term struct {
	Coeff int64
	Name  string
}

// Expr is a linear expression over named symbols.
type Expr struct {
	Terms []Term
}

func (e Expr) String() string {
	if len(e.Terms) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, t := range e.Terms {
		c := t.Coeff
		switch {
		case i == 0 && c < 0:
			b.WriteString("-")
			c = -c
		case i > 0 && c < 0:
			b.WriteString(" - ")
			c = -c
		case i > 0:
			b.WriteString(" + ")
		}
		switch {
		case t.Name == "":
			fmt.Fprintf(&b, "%d", c)
		case c == 1:
			b.WriteString(t.Name)
		default:
			fmt.Fprintf(&b, "%d * %s", c, t.Name)
		}
	}
	return b.String()
}

// Atom is the comparison Left Op Right.
type Atom struct {
	Left  Expr
	Op    CmpOp
	Right Expr
}

func (Atom) isFormula() {}
func (a Atom) String() string {
	return fmt.Sprintf("%s %s %s", a.Left, a.Op, a.Right)
}

// UnOp is a unary operator.
type UnOp string

// Unary operators.
const (
	OpNot        UnOp = "!"
	OpEventually UnOp = "<>"
	OpAlways     UnOp = "[]"
)

// Unary applies a unary operator.
type Unary struct {
	Op  UnOp
	Sub Formula
}

func (Unary) isFormula() {}
func (u Unary) String() string {
	return fmt.Sprintf("%s(%s)", u.Op, u.Sub)
}

// BinOp is a binary operator.
type BinOp string

// Binary operators.
const (
	OpAnd     BinOp = "&&"
	OpOr      BinOp = "||"
	OpImplies BinOp = "->"
)

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Formula
}

func (Binary) isFormula() {}
func (b Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// conjuncts flattens nested && into a list.
func conjuncts(f Formula) []Formula {
	if b, ok := f.(Binary); ok && b.Op == OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []Formula{f}
}

// disjuncts flattens nested || into a list.
func disjuncts(f Formula) []Formula {
	if b, ok := f.(Binary); ok && b.Op == OpOr {
		return append(disjuncts(b.L), disjuncts(b.R)...)
	}
	return []Formula{f}
}
