package ltl

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/spec"
	"repro/internal/ta"
)

// Compile translates a formula of the checkable fragment into the
// counterexample query for its negation, resolved against the automaton.
//
// Identifiers resolve as follows: `locX` refers to location X's counter
// κ[X], bare identifiers refer to shared variables or (upper-cased per ByMC
// convention, e.g. N, T, F) parameters.
//
// Supported shapes (exactly those the paper's properties use):
//
//	[](P) -> [](G)      safety with a □-premise        (Inv2, Dec, Good)
//	<>(W) -> [](G)      safety with a ◇-witness        (Inv1)
//	<>(W) -> <>(D)      liveness, conditional           (BV-Unif)
//	[](A -> <>(D))      liveness, threshold-triggered   (BV-Obl)
//	<>(D)               liveness, unconditional         (BV-Term)
//	<>[](J) -> <>(D)    liveness with justice premises  (Appendix F)
//
// where P and G are conjunctions of `locX == 0`, W is a disjunction of
// `locX != 0`, A is a rising threshold comparison, D is a conjunction of
// `locX == 0`, and J is a conjunction of justice preconditions
// (`locX == 0` or `locX == 0 || threshold-still-locked`).
//
// Liveness shapes other than <>[] -> <> take the automaton's default
// (reliable-communication) justice; the <>[] premise *replaces* it.
func Compile(name string, f Formula, a *ta.TA) (spec.Query, error) {
	c := &compiler{a: a}
	q, err := c.compile(f)
	if err != nil {
		return spec.Query{}, fmt.Errorf("ltl: property %s: %w", name, err)
	}
	q.Name = name
	oneRound := a.OneRound()
	if err := q.Validate(oneRound); err != nil {
		return spec.Query{}, err
	}
	return q, nil
}

// CompileFile compiles every property of a parsed file.
func CompileFile(pf *PropertyFile, a *ta.TA) ([]spec.Query, error) {
	out := make([]spec.Query, 0, len(pf.Names))
	for _, name := range pf.Names {
		q, err := Compile(name, pf.Formulas[name], a)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

type compiler struct {
	a *ta.TA
}

func (c *compiler) compile(f Formula) (spec.Query, error) {
	if b, ok := f.(Binary); ok && b.Op == OpImplies {
		return c.compileImplication(b)
	}
	if u, ok := f.(Unary); ok {
		switch u.Op {
		case OpEventually:
			// <>(D): unconditional liveness under default justice.
			goal, err := c.emptyLocs(u.Sub)
			if err != nil {
				return spec.Query{}, err
			}
			return spec.Query{
				Kind:          spec.Liveness,
				FinalNonempty: []ta.LocSet{goal},
				Justice:       c.a.OneRound().DefaultJustice(),
			}, nil
		case OpAlways:
			// [](A -> <>(D)): threshold-triggered liveness.
			impl, ok := u.Sub.(Binary)
			if !ok || impl.Op != OpImplies {
				return spec.Query{}, fmt.Errorf("[] must wrap an implication or appear in a premise")
			}
			trigger, err := c.risingConstraint(impl.L)
			if err != nil {
				return spec.Query{}, err
			}
			ev, ok := impl.R.(Unary)
			if !ok || ev.Op != OpEventually {
				return spec.Query{}, fmt.Errorf("[](A -> ...) must have an eventuality on the right")
			}
			goal, err := c.emptyLocs(ev.Sub)
			if err != nil {
				return spec.Query{}, err
			}
			return spec.Query{
				Kind:          spec.Liveness,
				FinalShared:   []expr.Constraint{trigger},
				FinalNonempty: []ta.LocSet{goal},
				Justice:       c.a.OneRound().DefaultJustice(),
			}, nil
		}
	}
	return spec.Query{}, fmt.Errorf("unsupported top-level formula %s", f)
}

func (c *compiler) compileImplication(b Binary) (spec.Query, error) {
	prem, ok := b.L.(Unary)
	if !ok {
		return spec.Query{}, fmt.Errorf("implication premise must be temporal, got %s", b.L)
	}
	concl, ok := b.R.(Unary)
	if !ok {
		return spec.Query{}, fmt.Errorf("implication conclusion must be temporal, got %s", b.R)
	}

	var q spec.Query
	switch prem.Op {
	case OpAlways:
		// [](P): locations empty forever.
		locs, err := c.emptyLocs(prem.Sub)
		if err != nil {
			return spec.Query{}, err
		}
		oneRound := c.a.OneRound()
		for l := range locs {
			if oneRound.NoIncoming(l) {
				q.InitEmpty = append(q.InitEmpty, l)
			} else {
				q.GlobalEmpty = append(q.GlobalEmpty, l)
			}
		}
	case OpEventually:
		if inner, ok := prem.Sub.(Unary); ok && inner.Op == OpAlways {
			// <>[](J): justice premises replacing default fairness.
			justice, err := c.justicePremises(inner.Sub)
			if err != nil {
				return spec.Query{}, err
			}
			q.Justice = justice
		} else {
			// <>(W): a visit witness.
			set, err := c.nonemptyLocs(prem.Sub)
			if err != nil {
				return spec.Query{}, err
			}
			q.VisitNonempty = append(q.VisitNonempty, set)
		}
	default:
		return spec.Query{}, fmt.Errorf("unsupported premise %s", prem)
	}

	switch concl.Op {
	case OpAlways:
		// [](G): the counterexample visits the complement.
		if len(q.Justice) > 0 {
			return spec.Query{}, fmt.Errorf("<>[] premises require an eventuality conclusion")
		}
		locs, err := c.emptyLocs(concl.Sub)
		if err != nil {
			return spec.Query{}, err
		}
		q.Kind = spec.Safety
		q.VisitNonempty = append(q.VisitNonempty, locs)
	case OpEventually:
		// <>(D): liveness.
		goal, err := c.emptyLocs(concl.Sub)
		if err != nil {
			return spec.Query{}, err
		}
		q.Kind = spec.Liveness
		q.FinalNonempty = []ta.LocSet{goal}
		if q.Justice == nil {
			q.Justice = c.a.OneRound().DefaultJustice()
		}
	default:
		return spec.Query{}, fmt.Errorf("unsupported conclusion %s", concl)
	}
	return q, nil
}

// emptyLocs interprets a conjunction of `locX == 0` atoms as a location set.
func (c *compiler) emptyLocs(f Formula) (ta.LocSet, error) {
	set := make(ta.LocSet)
	for _, conj := range conjuncts(f) {
		atom, ok := conj.(Atom)
		if !ok {
			return nil, fmt.Errorf("expected location atoms, got %s", conj)
		}
		loc, zero, err := c.locAtom(atom)
		if err != nil {
			return nil, err
		}
		if !zero {
			return nil, fmt.Errorf("expected locX == 0, got %s", atom)
		}
		set[loc] = true
	}
	return set, nil
}

// nonemptyLocs interprets a disjunction of `locX != 0` atoms.
func (c *compiler) nonemptyLocs(f Formula) (ta.LocSet, error) {
	set := make(ta.LocSet)
	for _, disj := range disjuncts(f) {
		atom, ok := disj.(Atom)
		if !ok {
			return nil, fmt.Errorf("expected location atoms, got %s", disj)
		}
		loc, zero, err := c.locAtom(atom)
		if err != nil {
			return nil, err
		}
		if zero {
			return nil, fmt.Errorf("expected locX != 0, got %s", atom)
		}
		set[loc] = true
	}
	return set, nil
}

// justicePremises interprets a conjunction of justice preconditions:
// `locX == 0` (unconditional drain) or `locX == 0 || cmp` where cmp is the
// negation of a rising trigger.
func (c *compiler) justicePremises(f Formula) ([]ta.Justice, error) {
	var out []ta.Justice
	for i, conj := range conjuncts(f) {
		name := fmt.Sprintf("justice_%d", i)
		ds := disjuncts(conj)
		var loc ta.LocID = -1
		var triggers []expr.Constraint
		for _, d := range ds {
			atom, ok := d.(Atom)
			if !ok {
				return nil, fmt.Errorf("expected atoms in justice precondition, got %s", d)
			}
			if l, zero, err := c.locAtom(atom); err == nil {
				if !zero {
					return nil, fmt.Errorf("justice precondition needs locX == 0, got %s", atom)
				}
				if loc != -1 {
					return nil, fmt.Errorf("justice precondition with two locations: %s", conj)
				}
				loc = l
				continue
			}
			// Otherwise: the negation of a rising trigger.
			neg, err := c.constraint(atom)
			if err != nil {
				return nil, err
			}
			trig, err := neg.Negate()
			if err != nil {
				return nil, err
			}
			triggers = append(triggers, trig)
		}
		if loc == -1 {
			return nil, fmt.Errorf("justice precondition without a location: %s", conj)
		}
		out = append(out, ta.Justice{Name: name, Trigger: triggers, Loc: loc})
	}
	return out, nil
}

// locAtom recognizes `locX == 0` / `locX != 0`.
func (c *compiler) locAtom(a Atom) (ta.LocID, bool, error) {
	if len(a.Left.Terms) != 1 || a.Left.Terms[0].Coeff != 1 {
		return 0, false, fmt.Errorf("not a location atom: %s", a)
	}
	name := a.Left.Terms[0].Name
	if !strings.HasPrefix(name, "loc") {
		return 0, false, fmt.Errorf("not a location atom: %s", a)
	}
	if len(a.Right.Terms) != 1 || a.Right.Terms[0].Name != "" || a.Right.Terms[0].Coeff != 0 {
		return 0, false, fmt.Errorf("location atoms compare against 0: %s", a)
	}
	loc, err := c.a.LocByName(strings.TrimPrefix(name, "loc"))
	if err != nil {
		return 0, false, err
	}
	switch a.Op {
	case OpEq:
		return loc, true, nil
	case OpNe:
		return loc, false, nil
	default:
		return 0, false, fmt.Errorf("location atoms use == or !=: %s", a)
	}
}

// risingConstraint compiles an atom over shared variables/parameters that is
// rising in the shared variables (used for ◇-premises asserted at the final
// frame).
func (c *compiler) risingConstraint(f Formula) (expr.Constraint, error) {
	atom, ok := f.(Atom)
	if !ok {
		return expr.Constraint{}, fmt.Errorf("expected a comparison, got %s", f)
	}
	return c.constraint(atom)
}

// constraint compiles a comparison atom into a single GE constraint.
// Equality and strict operators are normalized over the integers.
func (c *compiler) constraint(a Atom) (expr.Constraint, error) {
	l, err := c.expr(a.Left)
	if err != nil {
		return expr.Constraint{}, err
	}
	r, err := c.expr(a.Right)
	if err != nil {
		return expr.Constraint{}, err
	}
	diff := l.Clone()
	if err := diff.Sub(r); err != nil {
		return expr.Constraint{}, err
	}
	switch a.Op {
	case OpGe: // l - r >= 0
		return expr.GEZero(diff), nil
	case OpGt: // l - r - 1 >= 0
		if err := diff.AddConst(-1); err != nil {
			return expr.Constraint{}, err
		}
		return expr.GEZero(diff), nil
	case OpLe: // r - l >= 0
		neg := diff.Neg()
		return expr.GEZero(neg), nil
	case OpLt: // r - l - 1 >= 0
		neg := diff.Neg()
		if err := neg.AddConst(-1); err != nil {
			return expr.Constraint{}, err
		}
		return expr.GEZero(neg), nil
	case OpEq:
		// Over nonnegative counters, `x == 0` is `-x >= 0`.
		if isZero(a.Right) {
			return expr.GEZero(diff.Neg()), nil
		}
		return expr.Constraint{}, fmt.Errorf("equalities other than == 0 are not in the fragment: %s", a)
	default:
		return expr.Constraint{}, fmt.Errorf("unsupported comparison %s", a)
	}
}

func isZero(e Expr) bool {
	return len(e.Terms) == 1 && e.Terms[0].Name == "" && e.Terms[0].Coeff == 0
}

// expr resolves names: shared variables by exact name, parameters
// case-insensitively (ByMC files use N, T, F).
func (c *compiler) expr(e Expr) (expr.Lin, error) {
	out := expr.Lin{}
	for _, t := range e.Terms {
		if t.Name == "" {
			if err := out.AddConst(t.Coeff); err != nil {
				return expr.Lin{}, err
			}
			continue
		}
		sym, err := c.resolve(t.Name)
		if err != nil {
			return expr.Lin{}, err
		}
		if err := out.AddTerm(sym, t.Coeff); err != nil {
			return expr.Lin{}, err
		}
	}
	return out, nil
}

func (c *compiler) resolve(name string) (expr.Sym, error) {
	if s, err := c.a.SharedByName(name); err == nil {
		return s, nil
	}
	lower := strings.ToLower(name)
	for _, p := range c.a.Params {
		if c.a.Table.Name(p) == lower {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown variable %q", name)
}
