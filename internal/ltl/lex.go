package ltl

import (
	"fmt"

	lexer "repro/internal/lex"
)

// The parser-side aliases keep internal/ltl decoupled from the shared
// tokenizer's identifiers.
type (
	token   = lexer.Token
	tokKind = lexer.Kind
)

const (
	tokEOF    = lexer.EOF
	tokIdent  = lexer.Ident
	tokNumber = lexer.Number
	tokOp     = lexer.Op
)

// lex tokenizes a property file: ByMC-style temporal operators (<> and []),
// boolean connectives, comparisons and linear arithmetic.
func lex(src string) ([]token, error) {
	toks, err := lexer.Tokens(src, lexer.Config{
		MultiOps:  []string{"<>", "[]", "&&", "||", "->", "==", "!=", "<=", ">="},
		SingleOps: "()<>!+-*:;",
	})
	if err != nil {
		return nil, fmt.Errorf("ltl: %w", err)
	}
	return toks, nil
}
