package ltl

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/spec"
	"repro/internal/ta"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("<>[]( locV0 == 0 && b0 < T + 1 ) -> x != 2*y; // c\n/* block */ a:b<=1;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind != tokEOF {
			texts = append(texts, tk.Text)
		}
	}
	want := "<> [] ( locV0 == 0 && b0 < T + 1 ) -> x != 2 * y ; a : b <= 1 ;"
	if got := strings.Join(texts, " "); got != want {
		t.Errorf("tokens = %q\nwant     %q", got, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("a @ b"); err == nil {
		t.Error("expected error for @")
	}
	if _, err := lex("/* unterminated"); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestParseFormulaShapes(t *testing.T) {
	cases := []string{
		"locA == 0",
		"<>(locA != 0) -> [](locB == 0)",
		"[]( a0 >= N - T - F -> <>(locA == 0) )",
		"<>[]( (locA == 0 || x < T + 1) && locB == 0 ) -> <>(locC == 0)",
		"!(locA == 0) || locB != 0 && locC == 0",
	}
	for _, src := range cases {
		f, err := ParseFormula(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		// Round-trip: the rendering must parse again to the same rendering.
		f2, err := ParseFormula(f.String())
		if err != nil {
			t.Errorf("%q: reparse of %q: %v", src, f.String(), err)
			continue
		}
		if f.String() != f2.String() {
			t.Errorf("%q: not stable: %q vs %q", src, f.String(), f2.String())
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := ParseFormula("locA == 0 && locB == 0 || locC == 0 -> locD == 0")
	if err != nil {
		t.Fatal(err)
	}
	// -> binds loosest, || looser than &&.
	b, ok := f.(Binary)
	if !ok || b.Op != OpImplies {
		t.Fatalf("top = %v, want implication", f)
	}
	l, ok := b.L.(Binary)
	if !ok || l.Op != OpOr {
		t.Fatalf("premise = %v, want ||", b.L)
	}
	if ll, ok := l.L.(Binary); !ok || ll.Op != OpAnd {
		t.Fatalf("left of || = %v, want &&", l.L)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"locA ==",
		"(locA == 0",
		"locA == 0 &&",
		"<> -> locA == 0",
		"locA = 0",
	}
	for _, src := range bad {
		if _, err := ParseFormula(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseFile(t *testing.T) {
	pf, err := ParseFile("p1: locA == 0; p2: <>(locB != 0) -> [](locA == 0);")
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Names) != 2 || pf.Names[0] != "p1" || pf.Names[1] != "p2" {
		t.Errorf("names = %v", pf.Names)
	}
	if _, err := ParseFile("p1: locA == 0; p1: locA == 0;"); err == nil {
		t.Error("expected duplicate-name error")
	}
	if _, err := ParseFile("p1 locA == 0;"); err == nil {
		t.Error("expected missing-colon error")
	}
}

func TestBVSpecParsesAndCompiles(t *testing.T) {
	a := models.BVBroadcast()
	pf, err := ParseFile(BVBroadcastSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Names) != 7 {
		t.Fatalf("parsed %d properties, want 7", len(pf.Names))
	}
	qs, err := CompileFile(pf, a)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]spec.Query)
	for _, q := range qs {
		byName[q.Name] = q
	}

	// Compare against the programmatic queries of the models package.
	mqs, err := models.BVQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[string]string{
		"BV-Just0": "bv_just0", "BV-Just1": "bv_just1",
		"BV-Obl0": "bv_obl0", "BV-Obl1": "bv_obl1",
		"BV-Unif0": "bv_unif0", "BV-Unif1": "bv_unif1",
		"BV-Term": "bv_term",
	}
	for _, mq := range mqs {
		lq, ok := byName[pairs[mq.Name]]
		if !ok {
			t.Errorf("no compiled property for %s", mq.Name)
			continue
		}
		if lq.Kind != mq.Kind {
			t.Errorf("%s: kind %v vs %v", mq.Name, lq.Kind, mq.Kind)
		}
		if !sameLocSets(lq.VisitNonempty, mq.VisitNonempty) {
			t.Errorf("%s: VisitNonempty differs: %v vs %v", mq.Name, lq.VisitNonempty, mq.VisitNonempty)
		}
		if !sameLocSets(lq.FinalNonempty, mq.FinalNonempty) {
			t.Errorf("%s: FinalNonempty differs: %v vs %v", mq.Name, lq.FinalNonempty, mq.FinalNonempty)
		}
		if !sameLocIDs(lq.InitEmpty, mq.InitEmpty) {
			t.Errorf("%s: InitEmpty differs: %v vs %v", mq.Name, lq.InitEmpty, mq.InitEmpty)
		}
		if len(lq.FinalShared) != len(mq.FinalShared) {
			t.Errorf("%s: FinalShared count differs", mq.Name)
		} else {
			for i := range lq.FinalShared {
				if lq.FinalShared[i].String(a.Table) != mq.FinalShared[i].String(a.Table) {
					t.Errorf("%s: FinalShared[%d]: %s vs %s", mq.Name, i,
						lq.FinalShared[i].String(a.Table), mq.FinalShared[i].String(a.Table))
				}
			}
		}
		if len(lq.Justice) != len(mq.Justice) {
			t.Errorf("%s: justice count %d vs %d", mq.Name, len(lq.Justice), len(mq.Justice))
		}
	}
}

func TestSimplifiedSpecParsesAndCompiles(t *testing.T) {
	a := models.SimplifiedConsensus()
	pf, err := ParseFile(SimplifiedConsensusSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Names) != 9 {
		t.Fatalf("parsed %d properties, want 9", len(pf.Names))
	}
	qs, err := CompileFile(pf, a)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]spec.Query)
	for _, q := range qs {
		byName[q.Name] = q
	}

	mqs, err := models.SimplifiedQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[string]string{
		"Inv1_0": "inv1_0", "Inv1_1": "inv1_1",
		"Inv2_0": "inv2_0", "Inv2_1": "inv2_1",
		"SRoundTerm": "s_round_termination",
		"Dec_0":      "dec_0", "Dec_1": "dec_1",
		"Good_0": "good_0", "Good_1": "good_1",
	}
	for _, mq := range mqs {
		lq, ok := byName[pairs[mq.Name]]
		if !ok {
			t.Errorf("no compiled property for %s", mq.Name)
			continue
		}
		if lq.Kind != mq.Kind {
			t.Errorf("%s: kind %v vs %v", mq.Name, lq.Kind, mq.Kind)
		}
		if !sameLocSets(lq.VisitNonempty, mq.VisitNonempty) {
			t.Errorf("%s: VisitNonempty differs", mq.Name)
		}
		if !sameLocSets(lq.FinalNonempty, mq.FinalNonempty) {
			t.Errorf("%s: FinalNonempty differs", mq.Name)
		}
		if !sameLocIDs(lq.InitEmpty, mq.InitEmpty) || !sameLocIDs(lq.GlobalEmpty, mq.GlobalEmpty) {
			t.Errorf("%s: premise locations differ", mq.Name)
		}
		if mq.Name == "SRoundTerm" {
			// The Appendix F premise must reproduce the 23 justice
			// requirements of the programmatic model.
			if len(lq.Justice) != len(mq.Justice) {
				t.Errorf("SRoundTerm: justice count %d vs %d", len(lq.Justice), len(mq.Justice))
			}
			if !sameJustice(a, lq.Justice, mq.Justice) {
				t.Errorf("SRoundTerm: justice requirements differ")
			}
		}
	}
}

func sameLocIDs(a, b []ta.LocID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]ta.LocID(nil), a...)
	bs := append([]ta.LocID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func sameLocSets(a, b []ta.LocSet) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(s ta.LocSet) string {
		var ids []int
		for l := range s {
			ids = append(ids, int(l))
		}
		sort.Ints(ids)
		var sb strings.Builder
		for _, id := range ids {
			sb.WriteString(",")
			sb.WriteByte(byte('0' + id%10))
			sb.WriteString(strings.Repeat("#", id/10))
		}
		return sb.String()
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = key(a[i])
		kb[i] = key(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// sameJustice compares justice lists as multisets of (trigger,loc) pairs.
func sameJustice(a *ta.TA, x, y []ta.Justice) bool {
	key := func(j ta.Justice) string {
		var parts []string
		for _, t := range j.Trigger {
			parts = append(parts, t.String(a.Table))
		}
		sort.Strings(parts)
		return strings.Join(parts, "&") + "@" + a.Locations[j.Loc].Name
	}
	kx := make([]string, len(x))
	ky := make([]string, len(y))
	for i, j := range x {
		kx[i] = key(j)
	}
	for i, j := range y {
		ky[i] = key(j)
	}
	sort.Strings(kx)
	sort.Strings(ky)
	if len(kx) != len(ky) {
		return false
	}
	for i := range kx {
		if kx[i] != ky[i] {
			return false
		}
	}
	return true
}

func TestCompileRejectsUnsupported(t *testing.T) {
	a := models.BVBroadcast()
	bad := []string{
		"locV0 != 0",                         // bare atom
		"[](locV0 == 0) -> <>[](locC0 == 0)", // nested temporal conclusion
		"<>(b0 >= 1) -> [](locC0 == 0)",      // non-location witness
		"[](locNOPE == 0) -> [](locC0 == 0)",
	}
	for _, src := range bad {
		f, err := ParseFormula(src)
		if err != nil {
			t.Fatalf("%q should parse: %v", src, err)
		}
		if _, err := Compile("bad", f, a); err == nil {
			t.Errorf("%q: expected compile error", src)
		}
	}
}
