package ltl

import (
	"strings"
	"testing"
)

// FuzzParseFormula checks that the parser never panics and that successful
// parses are render-stable (parse → String → parse → String is a fixpoint).
func FuzzParseFormula(f *testing.F) {
	seeds := []string{
		"locV0 == 0",
		"<>(locD0 != 0) -> [](locD1 == 0 && locE1x == 0)",
		"[]( b0 >= T + 1 -> <>( locV0 == 0 ) )",
		"<>[]( (locM1 == 0 || bvb0 < T + 1) && locM == 0 ) -> <>(locM == 0)",
		"!(locA == 0) || locB != 0",
		"a0 + a1 < N - T - F -> locM01 == 0",
		"-1 <= 2*x",
		"((((locA == 0))))",
		"<><><>locA == 0",
		"x == 0 &&",
		"/*",
		"p: q;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		formula, err := ParseFormula(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := formula.String()
		again, err := ParseFormula(rendered)
		if err != nil {
			t.Fatalf("rendering %q of %q does not reparse: %v", rendered, src, err)
		}
		if again.String() != rendered {
			t.Fatalf("render not stable: %q -> %q", rendered, again.String())
		}
	})
}

// FuzzParseFile checks the property-file parser on arbitrary inputs.
func FuzzParseFile(f *testing.F) {
	f.Add("p1: locA == 0; p2: <>(locB != 0) -> [](locA == 0);")
	f.Add(BVBroadcastSpec)
	f.Add(SimplifiedConsensusSpec)
	f.Add(":;:;")
	f.Fuzz(func(t *testing.T, src string) {
		pf, err := ParseFile(src)
		if err != nil {
			return
		}
		if len(pf.Names) != len(pf.Formulas) {
			t.Fatalf("names/formulas mismatch: %d vs %d", len(pf.Names), len(pf.Formulas))
		}
		for _, name := range pf.Names {
			if strings.TrimSpace(name) == "" {
				t.Fatal("empty property name accepted")
			}
			if pf.Formulas[name] == nil {
				t.Fatalf("nil formula for %q", name)
			}
		}
	})
}
