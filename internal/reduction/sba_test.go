package reduction

// Communication-closure and round-rigidity of the multi-round sba automaton:
// the Appendix A reduction argument must apply to the new front-end's spec
// exactly as it does to the consensus automata, or its round-switch
// structure would not justify the one-round verification the schema plane
// performs.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/counter"
	"repro/internal/models"
	"repro/internal/ta"
)

func sbaSystem(t *testing.T, rounds int) (*System, *ta.TA) {
	t.Helper()
	a := models.SBA()
	params := counter.ParamsFor(a, 4, 1, 1)
	s, err := NewSystem(a, params, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

// TestSBACommClosed: the sba automaton satisfies the structural
// communication-closure conditions (guards over per-round shared variables
// only; unguarded, update-free round switches).
func TestSBACommClosed(t *testing.T) {
	a := models.SBA()
	if err := CheckCommClosed(a); err != nil {
		t.Error(err)
	}
	if err := EnlargedInitials(a); err != nil {
		t.Error(err)
	}
}

// TestSBAMutatedRoundSwitchRejected: communication closure is not vacuous —
// grafting a guard or an update onto one of sba's round-switch rules must
// make the structural check fail.
func TestSBAMutatedRoundSwitchRejected(t *testing.T) {
	findRule := func(a *ta.TA, name string) int {
		for i, r := range a.Rules {
			if r.Name == name {
				return i
			}
		}
		t.Fatalf("no rule %s", name)
		return -1
	}

	a := models.SBA()
	rs := findRule(a, "rsD1x")
	donor := findRule(a, "s3") // guarded rule with an update
	a.Rules[rs].Guard = a.Rules[donor].Guard
	if err := CheckCommClosed(a); err == nil {
		t.Error("guarded round-switch rule accepted")
	}

	a = models.SBA()
	rs = findRule(a, "rsE0x")
	donor = findRule(a, "s3")
	a.Rules[rs].Update = a.Rules[donor].Update
	if err := CheckCommClosed(a); err == nil {
		t.Error("round-switch rule with updates accepted")
	}
}

// TestSBARoundRigidReduction: every random asynchronous multi-round sba run
// reorders into a valid round-rigid run with the same final configuration —
// the empirical form of the Appendix A theorem for the new automaton.
func TestSBARoundRigidReduction(t *testing.T) {
	s, a := sbaSystem(t, 3)
	i0, i1 := a.MustLoc("I0"), a.MustLoc("I1")

	prop := func(seed int64, split uint8) bool {
		k0 := int64(split % 4)
		init, err := s.InitialConfig(map[ta.LocID]int64{i0: k0, i1: 3 - k0})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		steps := randomRun(t, s, init, rng, 120)
		rigid, err := s.Verify(init, steps)
		if err != nil {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		return IsRoundRigid(rigid)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSBARoundSwitchCrossesRounds drives a unanimous-1 superround through
// the automaton and checks the decide-1 exit switches the population into
// round 1's I1.
func TestSBARoundSwitchCrossesRounds(t *testing.T) {
	s, a := sbaSystem(t, 2)
	i1 := a.MustLoc("I1")
	init, err := s.InitialConfig(map[ta.LocID]int64{i1: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Unanimous 1: vote, lock 1, exit uniform-1 (estimate stays 1), enter the
	// parity-1 half, decide 1 there, then switch rounds.
	script := []string{"s2", "s4", "s8", "s13", "s2x", "s4x", "s8x", "rsD1x"}
	cur := init
	for _, name := range script {
		ri := -1
		for i, r := range a.Rules {
			if r.Name == name {
				ri = i
			}
		}
		if ri == -1 {
			t.Fatalf("no rule %s", name)
		}
		next, err := s.Apply(cur, Step{Round: 0, Rule: ri, Factor: 3})
		if err != nil {
			t.Fatalf("rule %s: %v", name, err)
		}
		cur = next
	}
	if cur.K[1][i1] != 3 {
		t.Errorf("after round switch: round-1 I1 = %d, want 3", cur.K[1][i1])
	}
	if cur.K[0][a.MustLoc("D1x")] != 0 {
		t.Error("round-0 D1x should have drained")
	}
}
