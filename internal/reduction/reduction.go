// Package reduction implements the multi-round machinery of Appendix A: the
// counter-system semantics of multi-round threshold automata (per-round
// location counters and shared variables, round-switch rules), the
// communication-closure check that licenses the reduction, and the
// round-rigid reordering itself — every asynchronous multi-round run can be
// reordered, by swapping independent adjacent steps, into a run in which all
// round-r steps precede all round-(r+1) steps while preserving every
// per-round observation (and hence all LTL-X properties, [Bertrand et al.,
// CONCUR'19, Theorem 6]).
package reduction

import (
	"fmt"
	"sort"

	"repro/internal/expr"
	"repro/internal/ta"
)

// Step is one accelerated firing in a multi-round run. Round is the round
// the rule fires in; a round-switch rule moves the processes from Round to
// Round+1.
type Step struct {
	Round  int
	Rule   int
	Factor int64
}

// Config is a multi-round configuration: K[r][loc] processes, V[r][shared]
// message counts, for every round r < len(K).
type Config struct {
	K [][]int64
	V [][]int64
}

// Clone deep-copies the configuration.
func (c Config) Clone() Config {
	out := Config{K: make([][]int64, len(c.K)), V: make([][]int64, len(c.V))}
	for i := range c.K {
		out.K[i] = append([]int64(nil), c.K[i]...)
	}
	for i := range c.V {
		out.V[i] = append([]int64(nil), c.V[i]...)
	}
	return out
}

// Equal reports deep equality.
func (c Config) Equal(o Config) bool {
	if len(c.K) != len(o.K) || len(c.V) != len(o.V) {
		return false
	}
	for r := range c.K {
		for l := range c.K[r] {
			if c.K[r][l] != o.K[r][l] {
				return false
			}
		}
	}
	for r := range c.V {
		for v := range c.V[r] {
			if c.V[r][v] != o.V[r][v] {
				return false
			}
		}
	}
	return true
}

// System is the counter system of a multi-round TA under fixed parameters.
type System struct {
	TA        *ta.TA
	Params    map[expr.Sym]int64
	MaxRounds int

	sharedIdx map[expr.Sym]int
}

// NewSystem validates the automaton for multi-round use and builds the
// system. CheckCommClosed must succeed: the reduction is only sound for
// communication-closed automata.
func NewSystem(a *ta.TA, params map[expr.Sym]int64, maxRounds int) (*System, error) {
	if maxRounds < 1 {
		return nil, fmt.Errorf("reduction: need at least one round")
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := CheckCommClosed(a); err != nil {
		return nil, err
	}
	for _, p := range a.Params {
		if _, ok := params[p]; !ok {
			return nil, fmt.Errorf("reduction: missing parameter %s", a.Table.Name(p))
		}
	}
	val := func(s expr.Sym) int64 { return params[s] }
	for _, rc := range a.Resilience {
		ok, err := rc.Holds(val)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("reduction: parameters violate resilience %s", rc.String(a.Table))
		}
	}
	idx := make(map[expr.Sym]int, len(a.Shared))
	for i, s := range a.Shared {
		idx[s] = i
	}
	return &System{TA: a, Params: params, MaxRounds: maxRounds, sharedIdx: idx}, nil
}

// CheckCommClosed verifies the structural conditions of Section 2 /
// Appendix A: guards mention only shared variables (whose instances are
// per-round) and parameters, and round-switch rules are unguarded and
// update-free — a step in round r can then never depend on or influence a
// different round's state, which is exactly what makes adjacent steps of
// different rounds swappable.
func CheckCommClosed(a *ta.TA) error {
	hasSwitch := false
	for _, r := range a.Rules {
		if r.RoundSwitch {
			hasSwitch = true
			if len(r.Guard) != 0 {
				return fmt.Errorf("reduction: round-switch rule %s is guarded", r.Name)
			}
			if len(r.Update) != 0 {
				return fmt.Errorf("reduction: round-switch rule %s has updates", r.Name)
			}
		}
	}
	if !hasSwitch {
		return fmt.Errorf("reduction: %s has no round-switch rules; use the one-round machinery", a.Name)
	}
	return nil // guard shape over shared+params is enforced by ta.Validate
}

// NumCorrect evaluates the correct-process count.
func (s *System) NumCorrect() (int64, error) {
	return s.TA.CorrectCount.Eval(func(sym expr.Sym) int64 { return s.Params[sym] })
}

// InitialConfig places the given distribution over initial locations in
// round 0.
func (s *System) InitialConfig(k map[ta.LocID]int64) (Config, error) {
	want, err := s.NumCorrect()
	if err != nil {
		return Config{}, err
	}
	var total int64
	cfg := Config{K: make([][]int64, s.MaxRounds), V: make([][]int64, s.MaxRounds)}
	for r := 0; r < s.MaxRounds; r++ {
		cfg.K[r] = make([]int64, len(s.TA.Locations))
		cfg.V[r] = make([]int64, len(s.TA.Shared))
	}
	for loc, n := range k {
		if n < 0 {
			return Config{}, fmt.Errorf("reduction: negative count")
		}
		if n > 0 && !s.TA.Locations[loc].Initial {
			return Config{}, fmt.Errorf("reduction: %s is not initial", s.TA.Locations[loc].Name)
		}
		cfg.K[0][loc] = n
		total += n
	}
	if total != want {
		return Config{}, fmt.Errorf("reduction: %d processes, want n-f = %d", total, want)
	}
	return cfg, nil
}

// guardHolds evaluates a rule's guard against round r of the configuration.
func (s *System) guardHolds(c Config, round, ruleIdx int) (bool, error) {
	rule := s.TA.Rules[ruleIdx]
	val := func(sym expr.Sym) int64 {
		if i, ok := s.sharedIdx[sym]; ok {
			return c.V[round][i]
		}
		return s.Params[sym]
	}
	for _, g := range rule.Guard {
		ok, err := g.Holds(val)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Enabled reports whether the rule can fire in the round.
func (s *System) Enabled(c Config, round, ruleIdx int) (bool, error) {
	rule := s.TA.Rules[ruleIdx]
	if round < 0 || round >= s.MaxRounds {
		return false, nil
	}
	if rule.RoundSwitch && round+1 >= s.MaxRounds {
		return false, nil
	}
	if c.K[round][rule.From] < 1 {
		return false, nil
	}
	return s.guardHolds(c, round, ruleIdx)
}

// Apply fires the rule in the round with the given acceleration factor.
func (s *System) Apply(c Config, st Step) (Config, error) {
	rule := s.TA.Rules[st.Rule]
	if st.Factor < 0 {
		return Config{}, fmt.Errorf("reduction: negative factor")
	}
	if st.Round < 0 || st.Round >= s.MaxRounds {
		return Config{}, fmt.Errorf("reduction: round %d out of range", st.Round)
	}
	if rule.RoundSwitch && st.Round+1 >= s.MaxRounds {
		return Config{}, fmt.Errorf("reduction: round switch out of the last round")
	}
	if c.K[st.Round][rule.From] < st.Factor {
		return Config{}, fmt.Errorf("reduction: rule %s x%d in round %d: only %d processes at %s",
			rule.Name, st.Factor, st.Round, c.K[st.Round][rule.From], s.TA.Locations[rule.From].Name)
	}
	ok, err := s.guardHolds(c, st.Round, st.Rule)
	if err != nil {
		return Config{}, err
	}
	if !ok {
		return Config{}, fmt.Errorf("reduction: rule %s guard fails in round %d", rule.Name, st.Round)
	}
	out := c.Clone()
	out.K[st.Round][rule.From] -= st.Factor
	if rule.RoundSwitch {
		out.K[st.Round+1][rule.To] += st.Factor
	} else {
		out.K[st.Round][rule.To] += st.Factor
		for sym, d := range rule.Update {
			out.V[st.Round][s.sharedIdx[sym]] += d * st.Factor
		}
	}
	return out, nil
}

// Replay validates a run and returns every intermediate configuration.
func (s *System) Replay(init Config, steps []Step) ([]Config, error) {
	cur := init.Clone()
	out := []Config{cur}
	for i, st := range steps {
		next, err := s.Apply(cur, st)
		if err != nil {
			return nil, fmt.Errorf("reduction: step %d: %w", i, err)
		}
		cur = next
		out = append(out, cur)
	}
	return out, nil
}

// RoundRigid reorders a run into its round-rigid form: steps sorted stably
// by round, so that all round-r steps (including the switches out of r)
// precede every round-(r+1) step, with the original relative order preserved
// within each round. By the reduction theorem this is again a valid run with
// the same final configuration; Verify replays it to certify that.
func RoundRigid(steps []Step) []Step {
	out := append([]Step(nil), steps...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	return out
}

// IsRoundRigid reports whether the run's rounds are nondecreasing.
func IsRoundRigid(steps []Step) bool {
	for i := 1; i < len(steps); i++ {
		if steps[i].Round < steps[i-1].Round {
			return false
		}
	}
	return true
}

// Verify replays both the original and the reordered run and checks they
// reach the same final configuration. It returns the reordered run.
func (s *System) Verify(init Config, steps []Step) ([]Step, error) {
	orig, err := s.Replay(init, steps)
	if err != nil {
		return nil, fmt.Errorf("reduction: original run invalid: %w", err)
	}
	rigid := RoundRigid(steps)
	re, err := s.Replay(init, rigid)
	if err != nil {
		return nil, fmt.Errorf("reduction: round-rigid reordering broke the run (communication-closure violated?): %w", err)
	}
	if !orig[len(orig)-1].Equal(re[len(re)-1]) {
		return nil, fmt.Errorf("reduction: reordered run reaches a different final configuration")
	}
	return rigid, nil
}

// EnlargedInitials checks the structural side of the Appendix A reduction:
// every location a round-switch rule targets is an initial location of the
// one-round projection, so checking the one-round automaton with enlarged
// initial configurations covers every round's entry states.
func EnlargedInitials(a *ta.TA) error {
	oneRound := a.OneRound()
	for _, r := range a.Rules {
		if !r.RoundSwitch {
			continue
		}
		if !oneRound.Locations[r.To].Initial {
			return fmt.Errorf("reduction: round-switch target %s is not initial in the one-round projection",
				a.Locations[r.To].Name)
		}
	}
	return nil
}
