package reduction

import (
	"fmt"

	"repro/internal/ta"
)

// Explorer performs explicit-state search over the multi-round counter
// system. It decides visit-style reachability queries that span rounds —
// exactly the shape of the full Agreement and Validity properties
// ((Agree_v) and (Valid_v) of Section 5.1, with their two independent round
// quantifiers), which the paper reduces to the one-superround invariants
// Inv1/Inv2. The explorer verifies that reduction's conclusion directly for
// fixed parameters.
type Explorer struct {
	Sys *System
	// MaxStates bounds the search (0 = default 4,000,000).
	MaxStates int
}

// MultiQuery is a cross-round reachability query: a violation is a run from
// some admissible initial configuration that, for every entry of
// VisitAnyRound, has some process in the set in *some* round at some time.
type MultiQuery struct {
	// InitEmptyRound0 lists locations that must be empty in the initial
	// (round 0) configuration.
	InitEmptyRound0 []ta.LocID
	// VisitAnyRound lists location sets; each must be visited in at least
	// one round for a violation.
	VisitAnyRound []ta.LocSet
}

// FindViolation searches all reachable configurations (over all initial
// distributions) with per-set visited flags folded into the state. It
// returns whether a violation exists.
func (e *Explorer) FindViolation(q MultiQuery) (bool, int, error) {
	maxStates := e.MaxStates
	if maxStates <= 0 {
		maxStates = 4_000_000
	}
	if len(q.VisitAnyRound) > 30 {
		return false, 0, fmt.Errorf("reduction: too many visit sets")
	}
	s := e.Sys
	allFlags := uint32(1)<<len(q.VisitAnyRound) - 1

	flagsOf := func(base uint32, c Config) uint32 {
		f := base
		for i, set := range q.VisitAnyRound {
			if f&(1<<i) != 0 {
				continue
			}
			for r := 0; r < s.MaxRounds; r++ {
				sum := int64(0)
				for l := range set {
					sum += c.K[r][l]
				}
				if sum > 0 {
					f |= 1 << i
					break
				}
			}
		}
		return f
	}

	key := func(c Config, flags uint32) string {
		out := fmt.Sprintf("%d#", flags)
		for r := range c.K {
			out += fmt.Sprint(c.K[r], c.V[r])
		}
		return out
	}

	type state struct {
		c     Config
		flags uint32
	}
	visited := map[string]bool{}
	var queue []state
	push := func(st state) {
		k := key(st.c, st.flags)
		if !visited[k] {
			visited[k] = true
			queue = append(queue, st)
		}
	}

	// Enumerate initial distributions over the initial locations.
	inits := s.TA.InitialLocs()
	nproc, err := s.NumCorrect()
	if err != nil {
		return false, 0, err
	}
	emptySet := map[ta.LocID]bool{}
	for _, l := range q.InitEmptyRound0 {
		emptySet[l] = true
	}
	counts := make(map[ta.LocID]int64, len(inits))
	var rec func(i int, left int64) error
	rec = func(i int, left int64) error {
		if i == len(inits)-1 {
			counts[inits[i]] = left
			ok := true
			for l := range emptySet {
				if counts[l] > 0 {
					ok = false
				}
			}
			if ok {
				cfg, err := s.InitialConfig(counts)
				if err != nil {
					return err
				}
				push(state{c: cfg, flags: flagsOf(0, cfg)})
			}
			counts[inits[i]] = 0
			return nil
		}
		for take := int64(0); take <= left; take++ {
			counts[inits[i]] = take
			if err := rec(i+1, left-take); err != nil {
				return err
			}
			counts[inits[i]] = 0
		}
		return nil
	}
	if err := rec(0, nproc); err != nil {
		return false, 0, err
	}

	states := 0
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		states++
		if states > maxStates {
			return false, states, fmt.Errorf("reduction: state budget exhausted")
		}
		if st.flags == allFlags {
			return true, states, nil
		}
		for r := 0; r < s.MaxRounds; r++ {
			for ri, rule := range s.TA.Rules {
				if rule.SelfLoop() {
					continue
				}
				en, err := s.Enabled(st.c, r, ri)
				if err != nil {
					return false, states, err
				}
				if !en {
					continue
				}
				next, err := s.Apply(st.c, Step{Round: r, Rule: ri, Factor: 1})
				if err != nil {
					return false, states, err
				}
				push(state{c: next, flags: flagsOf(st.flags, next)})
			}
		}
	}
	return false, states, nil
}
