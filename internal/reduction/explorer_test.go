package reduction

import (
	"testing"

	"repro/internal/counter"
	"repro/internal/models"
	"repro/internal/ta"
)

// TestAgreementAcrossSuperrounds verifies the FULL (Agree_v) property of
// Section 5.1 — with its two independent superround quantifiers — by
// explicit multi-round search: across two consecutive superrounds of the
// simplified automaton, no execution both decides 0 (visits D0 in any
// superround) and decides 1 (visits D1 in any superround). The paper
// obtains this from the one-superround invariants Inv1/Inv2 via the
// reduction; here it is confirmed directly for small parameters.
func TestAgreementAcrossSuperrounds(t *testing.T) {
	a := models.SimplifiedConsensus()
	sys, err := NewSystem(a, counter.ParamsFor(a, 4, 1, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	e := &Explorer{Sys: sys}

	d0, err := a.LocSetByName("D0")
	if err != nil {
		t.Fatal(err)
	}
	d1, err := a.LocSetByName("D1")
	if err != nil {
		t.Fatal(err)
	}
	violated, states, err := e.FindViolation(MultiQuery{
		VisitAnyRound: []ta.LocSet{d0, d1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Error("cross-superround disagreement found — Agreement broken")
	}
	if states == 0 {
		t.Error("no states explored")
	}
	t.Logf("explored %d multi-round states", states)

	// Within ONE superround the stronger Inv1 shape (D1 or E1x) must be
	// unreachable together with D0 — but across superrounds E1x in an early
	// superround may legitimately precede a D0 decision later (E1x is an
	// estimate, not a decision), so only the D-locations enter the
	// cross-round property, exactly as in (Agree_v).
	e1x, err := a.LocSetByName("E1x")
	if err != nil {
		t.Fatal(err)
	}
	violated, _, err = e.FindViolation(MultiQuery{
		VisitAnyRound: []ta.LocSet{d0, e1x},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !violated {
		t.Error("E1x in an early superround followed by D0 later should be reachable")
	}
}

// TestValidityAcrossSuperrounds verifies the full (Valid_v): if no process
// starts superround 1 with value 0, no process decides 0 in ANY superround.
func TestValidityAcrossSuperrounds(t *testing.T) {
	a := models.SimplifiedConsensus()
	sys, err := NewSystem(a, counter.ParamsFor(a, 4, 1, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	e := &Explorer{Sys: sys}
	d0, err := a.LocSetByName("D0", "E0x")
	if err != nil {
		t.Fatal(err)
	}
	violated, _, err := e.FindViolation(MultiQuery{
		InitEmptyRound0: []ta.LocID{a.MustLoc("V0")},
		VisitAnyRound:   []ta.LocSet{d0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Error("decided 0 although nobody proposed 0 — Validity broken")
	}
}

// TestAgreementBreaksWithoutResilience: the same cross-superround search
// with n = 3t finds the disagreement — the multi-round counterpart of the
// Section 6 counterexample.
func TestAgreementBreaksWithoutResilience(t *testing.T) {
	a := models.SimplifiedConsensus()
	q, err := models.Inv1CounterexampleQuery(a)
	if err != nil {
		t.Fatal(err)
	}
	relaxed := a.WithResilience(q.RelaxResilience)
	sys, err := NewSystem(relaxed, counter.ParamsFor(relaxed, 3, 1, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	e := &Explorer{Sys: sys}
	d0, err := relaxed.LocSetByName("D0")
	if err != nil {
		t.Fatal(err)
	}
	d1, err := relaxed.LocSetByName("D1")
	if err != nil {
		t.Fatal(err)
	}
	violated, _, err := e.FindViolation(MultiQuery{
		VisitAnyRound: []ta.LocSet{d0, d1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !violated {
		t.Error("expected cross-superround disagreement at n=3t")
	}
}

// TestDecisionsSurviveRoundSwitch: a sanity check that a decision in
// superround 1 can coexist with processes progressing in superround 2
// (decided processes keep participating, as Algorithm 1 prescribes).
func TestDecisionsSurviveRoundSwitch(t *testing.T) {
	a := models.SimplifiedConsensus()
	sys, err := NewSystem(a, counter.ParamsFor(a, 4, 1, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	e := &Explorer{Sys: sys}
	d0, err := a.LocSetByName("D0")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := a.LocSetByName("M")
	if err != nil {
		t.Fatal(err)
	}
	// Reaching D0 in some round AND having someone in M in some round is
	// trivially possible (M is traversed on the way); the point is that the
	// machinery finds satisfiable multi-set queries too.
	violated, _, err := e.FindViolation(MultiQuery{
		VisitAnyRound: []ta.LocSet{d0, m2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !violated {
		t.Error("expected a run reaching both D0 and M")
	}
}
