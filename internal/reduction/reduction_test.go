package reduction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/counter"
	"repro/internal/models"
	"repro/internal/ta"
)

func simplifiedSystem(t *testing.T, rounds int) (*System, *ta.TA) {
	t.Helper()
	a := models.SimplifiedConsensus()
	params := counter.ParamsFor(a, 4, 1, 1)
	s, err := NewSystem(a, params, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

func TestCheckCommClosed(t *testing.T) {
	for _, a := range []*ta.TA{models.SimplifiedConsensus(), models.NaiveConsensus()} {
		if err := CheckCommClosed(a); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
	if err := CheckCommClosed(models.BVBroadcast()); err == nil {
		t.Error("bv-broadcast has no round switches; expected error")
	}
}

func TestEnlargedInitials(t *testing.T) {
	for _, a := range []*ta.TA{models.SimplifiedConsensus(), models.NaiveConsensus()} {
		if err := EnlargedInitials(a); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestInitialConfigValidation(t *testing.T) {
	s, a := simplifiedSystem(t, 2)
	v0 := a.MustLoc("V0")
	v1 := a.MustLoc("V1")
	if _, err := s.InitialConfig(map[ta.LocID]int64{v0: 2, v1: 1}); err != nil {
		t.Errorf("valid initial config rejected: %v", err)
	}
	if _, err := s.InitialConfig(map[ta.LocID]int64{v0: 1}); err == nil {
		t.Error("wrong total should be rejected")
	}
	if _, err := s.InitialConfig(map[ta.LocID]int64{a.MustLoc("M"): 3}); err == nil {
		t.Error("non-initial placement should be rejected")
	}
}

// randomRun drives the multi-round system with a seeded random scheduler
// (one process step at a time) and returns the generated steps.
func randomRun(t *testing.T, s *System, init Config, rng *rand.Rand, maxSteps int) []Step {
	t.Helper()
	var steps []Step
	cur := init.Clone()
	for i := 0; i < maxSteps; i++ {
		type cand struct {
			round, rule int
		}
		var cands []cand
		for r := 0; r < s.MaxRounds; r++ {
			for ri, rule := range s.TA.Rules {
				if rule.SelfLoop() {
					continue
				}
				en, err := s.Enabled(cur, r, ri)
				if err != nil {
					t.Fatal(err)
				}
				if en {
					cands = append(cands, cand{r, ri})
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		pick := cands[rng.Intn(len(cands))]
		st := Step{Round: pick.round, Rule: pick.rule, Factor: 1}
		next, err := s.Apply(cur, st)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
		steps = append(steps, st)
	}
	return steps
}

// TestRoundRigidReduction is the empirical Appendix A theorem: every random
// asynchronous multi-round run of the (communication-closed) consensus
// automata reorders into a valid round-rigid run with the same final
// configuration.
func TestRoundRigidReduction(t *testing.T) {
	models := []func() *ta.TA{models.SimplifiedConsensus, models.NaiveConsensus}
	for _, mk := range models {
		a := mk()
		params := counter.ParamsFor(a, 4, 1, 1)
		s, err := NewSystem(a, params, 3)
		if err != nil {
			t.Fatal(err)
		}
		v0, v1 := a.MustLoc("V0"), a.MustLoc("V1")

		prop := func(seed int64, split uint8) bool {
			k0 := int64(split % 4)
			init, err := s.InitialConfig(map[ta.LocID]int64{v0: k0, v1: 3 - k0})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			steps := randomRun(t, s, init, rng, 120)
			rigid, err := s.Verify(init, steps)
			if err != nil {
				t.Logf("%s seed=%d: %v", a.Name, seed, err)
				return false
			}
			return IsRoundRigid(rigid)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

// TestRoundRigidPreservesPerRoundEffects: beyond final-configuration
// equality, the per-round shared-variable totals are identical — the basis
// for LTL-X preservation.
func TestRoundRigidPreservesPerRoundEffects(t *testing.T) {
	s, a := simplifiedSystem(t, 3)
	v0, v1 := a.MustLoc("V0"), a.MustLoc("V1")
	init, err := s.InitialConfig(map[ta.LocID]int64{v0: 2, v1: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	steps := randomRun(t, s, init, rng, 200)

	origTrace, err := s.Replay(init, steps)
	if err != nil {
		t.Fatal(err)
	}
	rigid := RoundRigid(steps)
	rigidTrace, err := s.Replay(init, rigid)
	if err != nil {
		t.Fatal(err)
	}
	of := origTrace[len(origTrace)-1]
	rf := rigidTrace[len(rigidTrace)-1]
	for r := range of.V {
		for i := range of.V[r] {
			if of.V[r][i] != rf.V[r][i] {
				t.Errorf("round %d shared %d: %d vs %d", r, i, of.V[r][i], rf.V[r][i])
			}
		}
	}
}

func TestIsRoundRigid(t *testing.T) {
	if !IsRoundRigid([]Step{{Round: 0}, {Round: 0}, {Round: 1}}) {
		t.Error("nondecreasing rounds should be rigid")
	}
	if IsRoundRigid([]Step{{Round: 1}, {Round: 0}}) {
		t.Error("decreasing rounds should not be rigid")
	}
}

func TestRoundSwitchCrossesRounds(t *testing.T) {
	s, a := simplifiedSystem(t, 2)
	v1 := a.MustLoc("V1")
	init, err := s.InitialConfig(map[ta.LocID]int64{v1: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Drive all three processes to D1 -> V1x ... second half -> E1x, then
	// switch into round 1. Unanimous value 1: V1 -> M -> M1 -> D1.
	script := []string{"s2", "s4", "s8", "s14", "s2x", "s4x", "s8x", "rsE1x"}
	cur := init
	for _, name := range script {
		ri := -1
		for i, r := range a.Rules {
			if r.Name == name {
				ri = i
			}
		}
		if ri == -1 {
			t.Fatalf("no rule %s", name)
		}
		next, err := s.Apply(cur, Step{Round: 0, Rule: ri, Factor: 3})
		if err != nil {
			t.Fatalf("rule %s: %v", name, err)
		}
		cur = next
	}
	if cur.K[1][v1] != 3 {
		t.Errorf("after round switch: round-1 V1 = %d, want 3", cur.K[1][v1])
	}
	if cur.K[0][a.MustLoc("E1x")] != 0 {
		t.Error("round-0 E1x should have drained")
	}
}
