package vcache

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/taformat"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_hashes.txt from the current specs/")

// goldenSpecs are the bundled automata whose canonical hashes are pinned.
var goldenSpecs = []string{"bosco.ta", "bvbroadcast.ta", "naive.ta", "sba.ta", "simplified.ta", "strb.ta"}

const goldenPath = "testdata/golden_hashes.txt"

func computeSpecHashes(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string, len(goldenSpecs))
	for _, name := range goldenSpecs {
		data, err := os.ReadFile(filepath.Join("..", "..", "specs", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, err := taformat.Parse(string(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = TAHash(a)
	}
	return out
}

func renderGolden(hashes map[string]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine %s\n", EngineVersion)
	for _, name := range goldenSpecs {
		fmt.Fprintf(&b, "%s %s\n", name, hashes[name])
	}
	return b.String()
}

// TestGoldenSpecHashes pins the canonical hash of every bundled spec. The
// contract: the canonical serialization (hence every cache key) may only
// change together with an EngineVersion bump. Drift at the same engine
// version fails the test — it would silently invalidate or, worse, alias
// cache entries. After an intentional serialization change, bump
// EngineVersion and regenerate with:
//
//	go test ./internal/vcache -run TestGoldenSpecHashes -update-golden
func TestGoldenSpecHashes(t *testing.T) {
	hashes := computeSpecHashes(t)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(renderGolden(hashes)), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten for engine %s", EngineVersion)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update-golden): %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(goldenSpecs)+1 {
		t.Fatalf("golden file has %d lines, want %d", len(lines), len(goldenSpecs)+1)
	}
	var goldenEngine string
	if _, err := fmt.Sscanf(lines[0], "engine %s", &goldenEngine); err != nil {
		t.Fatalf("golden file header %q unparsable: %v", lines[0], err)
	}
	golden := make(map[string]string, len(goldenSpecs))
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("golden line %q unparsable", line)
		}
		golden[fields[0]] = fields[1]
	}
	if goldenEngine != EngineVersion {
		// The version was bumped but the golden file was not regenerated:
		// that is the legitimate moment for hashes to move, so require the
		// regeneration rather than comparing stale pins.
		t.Fatalf("golden file pins engine %s but EngineVersion is %s; regenerate with -update-golden",
			goldenEngine, EngineVersion)
	}
	for _, name := range goldenSpecs {
		want, ok := golden[name]
		if !ok {
			t.Errorf("%s: missing from golden file", name)
			continue
		}
		if got := hashes[name]; got != want {
			t.Errorf("%s: canonical hash drifted at engine version %s:\n  got  %s\n  want %s\n"+
				"a serialization change must come with an EngineVersion bump (then -update-golden)",
				name, EngineVersion, got, want)
		}
	}
}
