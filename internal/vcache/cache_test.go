package vcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/schema"
	"repro/internal/spec"
)

func testKey(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func testEntry(key string) *Entry {
	return &Entry{
		Key: key, Engine: EngineVersion, Query: "Inv1_0", Mode: "staged",
		Outcome: "holds", Schemas: 7, AvgLen: 12.5,
		Solver: SolverStats{LPChecks: 3, Pivots: 11},
	}
}

func TestPutGetRoundTripDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	if err := c.Put(testEntry(key)); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same directory must serve the entry from disk.
	c2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok {
		t.Fatal("disk entry not found by fresh cache")
	}
	if got.Schemas != 7 || got.Outcome != "holds" || got.AvgLen != 12.5 || got.Solver.Pivots != 11 {
		t.Fatalf("round-trip mutated the entry: %+v", got)
	}
	if _, ok := c2.Get(testKey(1)); ok {
		t.Fatal("made-up key reported as hit")
	}
}

// Every single-byte truncation and every single-byte flip of an entry file
// must be detected and downgraded to a miss — the WAL plane's byte-flip
// sweep, applied to the cache frame.
func TestCorruptEntrySweepIsMissNeverWrongVerdict(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(2)
	if err := c.Put(testEntry(key)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".vce")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	reopen := func() *Cache {
		nc, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return nc
	}
	// Truncations (including the empty file).
	for cut := 0; cut < len(pristine); cut += 7 {
		if err := os.WriteFile(path, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := reopen().Get(key); ok {
			t.Fatalf("truncation to %d bytes served as a hit", cut)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("truncated entry (%d bytes) not deleted on detection", cut)
		}
	}
	// Bit flips across the whole frame (header and payload).
	for pos := 0; pos < len(pristine); pos += 3 {
		mut := append([]byte(nil), pristine...)
		mut[pos] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		e, ok := reopen().Get(key)
		if ok {
			// A flip that still validates must decode to the identical entry
			// (e.g. a flip inside a JSON value would fail the CRC; nothing
			// that alters the payload may survive).
			if e.Schemas != 7 || e.Outcome != "holds" {
				t.Fatalf("flip at byte %d served a DIFFERENT verdict: %+v", pos, e)
			}
			t.Fatalf("flip at byte %d unexpectedly passed CRC validation", pos)
		}
	}
}

func TestCorruptEntryIsLoggedAndRecounted(t *testing.T) {
	dir := t.TempDir()
	var logged []string
	logf := func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	c, err := Open(Options{Dir: dir, Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(3)
	if err := c.Put(testEntry(key)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".vce")
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	before := mCorrupt.Load()
	c2, _ := Open(Options{Dir: dir, Logf: logf})
	if _, ok := c2.Get(key); ok {
		t.Fatal("torn entry served as hit")
	}
	if mCorrupt.Load() != before+1 {
		t.Fatalf("corrupt counter not incremented (%d -> %d)", before, mCorrupt.Load())
	}
	found := false
	for _, l := range logged {
		if strings.Contains(l, "corrupt entry") && strings.Contains(l, "miss") {
			found = true
		}
	}
	if !found {
		t.Fatalf("corruption not logged; log lines: %v", logged)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := Open(Options{MemEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Put(testEntry(testKey(i))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("LRU holds %d entries, want 3", c.Len())
	}
	// Memory-only cache: evicted entries are gone, recent ones present.
	if _, ok := c.Get(testKey(0)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.Get(testKey(4)); !ok {
		t.Fatal("newest entry evicted")
	}
	// Touch the now-oldest surviving entry, then insert: the untouched one
	// must be the victim.
	if _, ok := c.Get(testKey(2)); !ok {
		t.Fatal("entry 2 missing")
	}
	if err := c.Put(testEntry(testKey(5))); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(testKey(3)); ok {
		t.Fatal("LRU order ignored: untouched entry 3 survived over touched entry 2")
	}
	if _, ok := c.Get(testKey(2)); !ok {
		t.Fatal("recently-touched entry 2 evicted")
	}
}

// A full round trip through the engine: verify, cache, rebuild, compare —
// including a Violated result whose counterexample must re-certify by
// replay, and a tampered counterexample that must be rejected.
func TestResultRoundTripWithCounterexample(t *testing.T) {
	a := models.SimplifiedConsensus()
	q, err := models.Inv1CounterexampleQuery(a)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := schema.New(a, schema.Options{Mode: schema.Staged})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Check(&q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != spec.Violated || res.CE == nil {
		t.Fatalf("expected a violated result with CE, got %v", res.Outcome)
	}
	key := Key(eng.TA(), &q, ConfigOf(eng.Opts()), EngineVersion)
	ent, err := FromResult(eng.TA(), key, res)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ent.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := dec.ToResult(eng.TA(), &q)
	if err != nil {
		t.Fatalf("rebuild failed: %v", err)
	}
	if back.Outcome != res.Outcome || back.Schemas != res.Schemas ||
		back.AvgLen != res.AvgLen || back.Solver != res.Solver {
		t.Fatalf("deterministic fields drifted:\n got %+v\nwant %+v", back, res)
	}
	if back.CE.Format() != res.CE.Format() {
		t.Fatalf("counterexample drifted:\n got %s\nwant %s", back.CE.Format(), res.CE.Format())
	}

	// Tamper with the run: the replay certification must reject it.
	bad := *dec
	badCE := *dec.CE
	badCE.Steps = append([]CEStep(nil), dec.CE.Steps...)
	if len(badCE.Steps) == 0 {
		t.Fatal("counterexample has no steps to tamper with")
	}
	badCE.Steps[0].Factor += 1000
	bad.CE = &badCE
	if _, err := bad.ToResult(eng.TA(), &q); err == nil {
		t.Fatal("tampered counterexample passed re-certification")
	}
}

// Budget outcomes must never enter the cache.
func TestBudgetNeverCached(t *testing.T) {
	a := models.SimplifiedConsensus()
	eng, err := schema.New(a, schema.Options{Mode: schema.Staged})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromResult(eng.TA(), testKey(9), schema.Result{Query: "x", Mode: schema.Staged, Outcome: spec.Budget}); err == nil {
		t.Fatal("FromResult accepted a budget outcome")
	}
}
