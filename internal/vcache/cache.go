package vcache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"repro/internal/obs"
)

// Metrics (observational, process-wide): exported through /metricsz and the
// -report registry snapshot.
var (
	mHits      = obs.Default.Counter("vcache", "hits")
	mMisses    = obs.Default.Counter("vcache", "misses")
	mPuts      = obs.Default.Counter("vcache", "puts")
	mEvictions = obs.Default.Counter("vcache", "evictions")
	mCorrupt   = obs.Default.Counter("vcache", "corrupt_entries")
	mDiskHits  = obs.Default.Counter("vcache", "disk_hits")
	mMemAlive  = obs.Default.Gauge("vcache", "mem_entries")
)

// Options configures a Cache.
type Options struct {
	// Dir is the on-disk store directory ("" = memory-only). Created if
	// missing.
	Dir string
	// MemEntries bounds the in-memory LRU (default 256 entries). Disk is
	// unbounded: entries are a few hundred bytes and verification is seconds.
	MemEntries int
	// Logf, when set, receives one line per notable event (corrupt entry
	// dropped, disk write failure). Default: silent.
	Logf func(format string, args ...any)
}

// Cache is a content-addressed verdict store: an in-memory LRU over an
// on-disk directory of CRC-framed entries written with the atomic-rename
// discipline (write temp, fsync, rename), so a crash mid-write leaves
// either the old entry or a temp file — never a torn entry at the
// addressable path. A torn or bit-flipped entry that does appear (storage
// fault) fails frame validation on read and is deleted and treated as a
// miss: the cache can cost re-verification time, never a wrong verdict.
type Cache struct {
	opts Options

	mu    sync.Mutex
	lru   *list.List // front = most recently used; values are *Entry
	byKey map[string]*list.Element
}

var keyRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// Open creates the cache, creating the directory when configured.
func Open(opts Options) (*Cache, error) {
	if opts.MemEntries <= 0 {
		opts.MemEntries = 256
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("vcache: %w", err)
		}
	}
	return &Cache{
		opts:  opts,
		lru:   list.New(),
		byKey: make(map[string]*list.Element),
	}, nil
}

// Dir returns the on-disk store directory ("" for memory-only caches).
func (c *Cache) Dir() string { return c.opts.Dir }

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.opts.Dir, key+".vce")
}

// Get looks the key up, memory first, then disk. A disk hit is validated
// (frame CRC, stored key, engine version) before being promoted into the
// LRU; any validation failure deletes the file and reports a miss.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		mHits.Inc()
		return el.Value.(*Entry), true
	}
	if c.opts.Dir == "" || !keyRE.MatchString(key) {
		mMisses.Inc()
		return nil, false
	}
	path := c.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		mMisses.Inc()
		return nil, false
	}
	e, err := DecodeEntry(data)
	if err == nil && e.Key != key {
		err = fmt.Errorf("%w: stored key %s does not match path", ErrCorrupt, e.Key)
	}
	if err == nil && e.Engine != EngineVersion {
		// Unreachable through Key() (the version is hashed into the key);
		// defends against hand-copied entry files.
		err = fmt.Errorf("%w: entry from engine %s, want %s", ErrCorrupt, e.Engine, EngineVersion)
	}
	if err != nil {
		mCorrupt.Inc()
		mMisses.Inc()
		c.opts.Logf("vcache: corrupt entry %s treated as miss, re-verifying: %v", filepath.Base(path), err)
		os.Remove(path)
		return nil, false
	}
	mHits.Inc()
	mDiskHits.Inc()
	c.insertLocked(key, e)
	return e, true
}

// Put stores the entry in memory and, when configured, on disk. Disk write
// failures are logged and ignored: the cache is an accelerator, not a
// durability contract.
func (c *Cache) Put(e *Entry) error {
	if e == nil || e.Key == "" {
		return fmt.Errorf("vcache: entry has no key")
	}
	mPuts.Inc()
	c.mu.Lock()
	c.insertLocked(e.Key, e)
	c.mu.Unlock()
	if c.opts.Dir == "" {
		return nil
	}
	data, err := e.Encode()
	if err != nil {
		return err
	}
	if err := atomicWrite(c.opts.Dir, c.entryPath(e.Key), data); err != nil {
		c.opts.Logf("vcache: disk write for %s failed: %v", e.Key, err)
		return err
	}
	return nil
}

// insertLocked adds or refreshes the LRU slot, evicting beyond capacity.
func (c *Cache) insertLocked(key string, e *Entry) {
	if el, ok := c.byKey[key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(e)
	for c.lru.Len() > c.opts.MemEntries {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*Entry).Key)
		mEvictions.Inc()
	}
	mMemAlive.Set(int64(c.lru.Len()))
}

// Len reports the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// AtomicWrite writes data to path via a temp file in dir (which must be on
// the same filesystem), fsyncing before the rename so the addressable name
// never exposes a partially-written frame. Exported for sibling planes that
// persist content-addressed artifacts with the same discipline (the cluster
// worker's shard cache).
func AtomicWrite(dir, path string, data []byte) error {
	return atomicWrite(dir, path, data)
}

// atomicWrite writes data to path via a temp file in the same directory,
// fsyncing before the rename so the addressable name never exposes a
// partially-written frame.
func atomicWrite(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".vce-tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}
