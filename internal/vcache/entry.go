package vcache

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/counter"
	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/ta"
)

// On-disk entry frame, reusing the WAL plane's checksum discipline
// (internal/wal): a 4-byte magic, a 4-byte little-endian payload length, a
// 4-byte CRC32C (Castagnoli) of the payload, then the JSON payload. A torn
// tail fails the length check, a flipped byte fails the checksum, and either
// way the entry is classified corrupt and treated as a miss — never decoded
// into a verdict.
var entryMagic = [4]byte{'V', 'C', 'E', '1'}

const entryHeader = 12

// maxEntryBytes bounds one entry's payload; a parsed length beyond it cannot
// come from a legitimate write and is classified as corruption.
const maxEntryBytes = 1 << 24

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks an entry that failed structural validation: bad magic,
// torn frame, checksum mismatch, or undecodable payload. Callers treat it as
// a miss and re-verify.
var ErrCorrupt = errors.New("vcache: corrupt entry")

// Entry is the cached deterministic slice of one verification result. It
// deliberately excludes everything observational (elapsed time, phase
// timings): a cache hit reports its own, much smaller, wall clock.
type Entry struct {
	// Key is the content address the entry was stored under; validated
	// against the request key on load.
	Key string `json:"key"`
	// Engine is the EngineVersion that produced the verdict.
	Engine  string  `json:"engine"`
	Query   string  `json:"query"`
	Mode    string  `json:"mode"`
	Outcome string  `json:"outcome"`
	Schemas int     `json:"schemas"`
	AvgLen  float64 `json:"avg_len"`
	// Solver is the folded SMT effort (deterministic at any worker count).
	Solver SolverStats `json:"solver"`
	// CE is the certified counterexample when Outcome == "violated".
	CE *CEData `json:"ce,omitempty"`
}

// SolverStats mirrors smt.Stats with stable JSON names.
type SolverStats struct {
	LPChecks  int `json:"lp_checks"`
	Pivots    int `json:"pivots"`
	Rebuilds  int `json:"rebuilds"`
	BBNodes   int `json:"bb_nodes"`
	CaseSplit int `json:"case_splits"`
}

// CEData serializes a counterexample run positionally against the automaton
// the key was derived from: location and rule indices are stable because any
// reordering changes the canonical serialization, hence the key.
type CEData struct {
	// Params maps parameter names to the concrete valuation.
	Params map[string]int64 `json:"params"`
	// InitK / InitV are the initial configuration (location counters indexed
	// by ta.LocID, shared values indexed by position in TA.Shared).
	InitK []int64 `json:"init_k"`
	InitV []int64 `json:"init_v"`
	// Steps are the accelerated firings (rule index + factor).
	Steps []CEStep `json:"steps"`
	// Schema is the ordered guard context of full-enumeration
	// counterexamples (nil for staged).
	Schema []string `json:"schema,omitempty"`
}

// CEStep is one accelerated firing.
type CEStep struct {
	Rule   int   `json:"rule"`
	Factor int64 `json:"factor"`
}

// FromResult converts a finished check into a cacheable entry. Budget
// outcomes are rejected: a timeout or interrupt cuts the search at a
// wall-clock-dependent point, so nothing about them is stable enough to
// reuse. The automaton must be the engine's one-round form.
func FromResult(a *ta.TA, key string, res schema.Result) (*Entry, error) {
	if res.Outcome == spec.Budget {
		return nil, fmt.Errorf("vcache: refusing to cache a budget outcome for %s", res.Query)
	}
	e := &Entry{
		Key:     key,
		Engine:  EngineVersion,
		Query:   res.Query,
		Mode:    res.Mode.String(),
		Outcome: OutcomeLabel(res.Outcome),
		Schemas: res.Schemas,
		AvgLen:  res.AvgLen,
		Solver: SolverStats{
			LPChecks:  res.Solver.LPChecks,
			Pivots:    res.Solver.Pivots,
			Rebuilds:  res.Solver.Rebuilds,
			BBNodes:   res.Solver.BBNodes,
			CaseSplit: res.Solver.CaseSplit,
		},
	}
	if res.Outcome == spec.Violated {
		if res.CE == nil {
			return nil, fmt.Errorf("vcache: violated result for %s has no counterexample", res.Query)
		}
		ce := &CEData{
			Params: make(map[string]int64, len(a.Params)),
			InitK:  append([]int64(nil), res.CE.Run.Init.K...),
			InitV:  append([]int64(nil), res.CE.Run.Init.V...),
			Schema: append([]string(nil), res.CE.Schema...),
		}
		for _, p := range a.Params {
			ce.Params[a.Table.Name(p)] = res.CE.Params[p]
		}
		for _, st := range res.CE.Run.Steps {
			ce.Steps = append(ce.Steps, CEStep{Rule: st.Rule, Factor: st.Factor})
		}
		e.CE = ce
	}
	return e, nil
}

// ToResult rebuilds a schema.Result from the entry, re-certifying any
// counterexample by replay on the concrete counter system before trusting
// it. The caller must pass the same one-round automaton and query the key
// was derived from; Elapsed is left zero for the caller to stamp.
func (e *Entry) ToResult(a *ta.TA, q *spec.Query) (schema.Result, error) {
	outcome, err := ParseOutcome(e.Outcome)
	if err != nil {
		return schema.Result{}, err
	}
	var mode schema.Mode
	switch e.Mode {
	case "full":
		mode = schema.FullEnumeration
	case "staged":
		mode = schema.Staged
	default:
		return schema.Result{}, fmt.Errorf("vcache: unknown mode %q", e.Mode)
	}
	res := schema.Result{
		Query:   e.Query,
		Mode:    mode,
		Outcome: outcome,
		Schemas: e.Schemas,
		AvgLen:  e.AvgLen,
		Solver: smt.Stats{
			LPChecks:  e.Solver.LPChecks,
			Pivots:    e.Solver.Pivots,
			Rebuilds:  e.Solver.Rebuilds,
			BBNodes:   e.Solver.BBNodes,
			CaseSplit: e.Solver.CaseSplit,
		},
	}
	if outcome == spec.Violated {
		if e.CE == nil {
			return schema.Result{}, fmt.Errorf("vcache: violated entry for %s has no counterexample", e.Query)
		}
		params := make(map[expr.Sym]int64, len(e.CE.Params))
		for name, v := range e.CE.Params {
			s := a.Table.Lookup(name)
			if s == expr.NoSym {
				return schema.Result{}, fmt.Errorf("vcache: counterexample parameter %q unknown to automaton %s", name, a.Name)
			}
			params[s] = v
		}
		run := counter.Run{
			Init: counter.Config{
				K: append([]int64(nil), e.CE.InitK...),
				V: append([]int64(nil), e.CE.InitV...),
			},
		}
		for _, st := range e.CE.Steps {
			run.Steps = append(run.Steps, counter.Step{Rule: st.Rule, Factor: st.Factor})
		}
		sys, err := schema.Certify(a, q, params, run)
		if err != nil {
			return schema.Result{}, fmt.Errorf("vcache: cached counterexample for %s failed re-certification: %w", e.Query, err)
		}
		res.CE = &schema.Counterexample{
			Params: params,
			Run:    run,
			System: sys,
			Schema: append([]string(nil), e.CE.Schema...),
		}
	}
	return res, nil
}

// Encode frames the entry for disk: magic, length, CRC32C, JSON payload.
func (e *Entry) Encode() ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxEntryBytes {
		return nil, fmt.Errorf("vcache: entry payload too large (%d bytes)", len(payload))
	}
	buf := make([]byte, entryHeader+len(payload))
	copy(buf[0:4], entryMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(payload, castagnoli))
	copy(buf[entryHeader:], payload)
	return buf, nil
}

// DecodeEntry parses a framed entry, classifying any structural damage —
// short header, bad magic, torn payload, checksum mismatch, undecodable
// JSON — as ErrCorrupt.
func DecodeEntry(data []byte) (*Entry, error) {
	if len(data) < entryHeader {
		return nil, fmt.Errorf("%w: short frame (%d bytes)", ErrCorrupt, len(data))
	}
	if [4]byte(data[0:4]) != entryMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(data[4:8])
	if n > maxEntryBytes || int(n) != len(data)-entryHeader {
		return nil, fmt.Errorf("%w: torn frame (%d payload bytes of %d declared)",
			ErrCorrupt, len(data)-entryHeader, n)
	}
	payload := data[entryHeader:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[8:12]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var e Entry
	if err := json.Unmarshal(payload, &e); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &e, nil
}
