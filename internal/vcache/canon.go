// Package vcache is the verification result cache: a content-addressed
// store of property verdicts keyed by a structural hash of the
// (threshold automaton, query, engine configuration, engine version)
// quadruple.
//
// The paper's pitch is that holistic verification is cheap enough to rerun —
// Table 2 re-checks the same fixed (automaton, property) pairs in seconds —
// yet every invocation of the checker re-enumerates and re-solves from
// scratch. Verdicts are deterministic at any worker count (see
// internal/schema/parallel.go), so a verdict computed once is a verdict
// forever, for the same inputs and the same engine: this package makes
// "same inputs" precise (a canonical serialization independent of process
// boundaries, map iteration order and symbol-table internals) and makes
// "same engine" explicit (EngineVersion participates in every key, so an
// engine change invalidates the whole corpus wholesale rather than serving
// stale verdicts).
//
// Trust model. A cache hit is only trusted after structural validation:
// the stored key and engine version must match the request, the frame CRC
// must verify (see entry.go), and a Violated entry must re-certify by
// replaying its counterexample on the concrete counter system. Any failure
// downgrades the hit to a miss and the property is re-verified — a corrupt
// or stale cache can cost time, never a wrong verdict.
package vcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/schema"
	"repro/internal/spec"
	"repro/internal/ta"
)

// EngineVersion identifies the verification engine embedded in every cache
// key. Bump it whenever a change can alter any deterministic result field
// (verdicts, schema counts, average lengths, solver effort, counterexample
// selection): the golden-hash test in golden_test.go pins the canonical
// automaton hashes against it, and a bump invalidates every cached entry by
// changing every key.
// 1.1.0: incremental prefix-sharing full-mode solver — verdicts, schema
// counts and counterexamples are unchanged, but per-schema solver effort is
// attributed by the canonical-walk rule (Unsat-subtree pruning, warm-started
// prefixes), so cached Solver stats from 1.0.0 no longer describe what the
// engine would report.
// 1.2.0: the sba-reduction automaton joins the bundled spec set; existing
// verdicts are unchanged, but the golden-hash table gains a row and mixing
// 1.1.0 caches with the grown bundle would leave sba entries unpinned.
const EngineVersion = "1.2.0"

// canonLin renders a linear expression with terms sorted by symbol *name*,
// so the form is independent of symbol-table intern order.
func canonLin(tab *expr.Table, l expr.Lin) string {
	type term struct {
		name  string
		coeff int64
	}
	terms := make([]term, 0, len(l.Coeffs))
	for s, c := range l.Coeffs {
		if c == 0 {
			continue
		}
		terms = append(terms, term{tab.Name(s), c})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].name < terms[j].name })
	var b strings.Builder
	fmt.Fprintf(&b, "%d", l.Const)
	for _, t := range terms {
		fmt.Fprintf(&b, "%+d*%s", t.coeff, t.name)
	}
	return b.String()
}

func canonConstraint(tab *expr.Table, c expr.Constraint) string {
	return canonLin(tab, c.L) + " " + c.Op.String() + " 0"
}

func canonConstraints(tab *expr.Table, cs []expr.Constraint) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = canonConstraint(tab, c)
	}
	return strings.Join(parts, "; ")
}

// canonLocSet renders a location set with member names sorted: LocSet is a
// map, and its iteration order must never leak into a key.
func canonLocSet(a *ta.TA, s ta.LocSet) string {
	names := make([]string, 0, len(s))
	for l, in := range s {
		if in {
			names = append(names, a.Locations[l].Name)
		}
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}

// CanonicalTA renders the automaton in a canonical textual form: stable
// across process runs and map iteration order, sensitive to everything the
// checker's semantics depend on (location and rule order included — rule
// indices appear in cached counterexamples).
func CanonicalTA(a *ta.TA) string {
	tab := a.Table
	names := func(syms []expr.Sym) string {
		out := make([]string, len(syms))
		for i, s := range syms {
			out[i] = tab.Name(s)
		}
		return strings.Join(out, ",")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ta %s\n", a.Name)
	fmt.Fprintf(&b, "params %s\n", names(a.Params))
	fmt.Fprintf(&b, "shared %s\n", names(a.Shared))
	fmt.Fprintf(&b, "resilience %s\n", canonConstraints(tab, a.Resilience))
	fmt.Fprintf(&b, "correct %s\n", canonLin(tab, a.CorrectCount))
	for _, l := range a.Locations {
		fmt.Fprintf(&b, "loc %s initial=%t broadcast=%v delivered=%v\n",
			l.Name, l.Initial, l.Broadcast, l.Delivered)
	}
	for _, r := range a.Rules {
		fmt.Fprintf(&b, "rule %s %s->%s switch=%t guard=[%s] update=[",
			r.Name, a.Locations[r.From].Name, a.Locations[r.To].Name,
			r.RoundSwitch, canonConstraints(tab, r.Guard))
		// Update is a map: sort increments by variable name.
		ups := make([]string, 0, len(r.Update))
		for s, d := range r.Update {
			ups = append(ups, fmt.Sprintf("%s+=%d", tab.Name(s), d))
		}
		sort.Strings(ups)
		b.WriteString(strings.Join(ups, ","))
		b.WriteString("]\n")
	}
	return b.String()
}

// CanonicalQuery renders the query in a canonical textual form over the
// automaton's location and symbol names.
func CanonicalQuery(a *ta.TA, q *spec.Query) string {
	tab := a.Table
	locNames := func(ls []ta.LocID) string {
		out := make([]string, len(ls))
		for i, l := range ls {
			out[i] = a.Locations[l].Name
		}
		return strings.Join(out, ",")
	}
	sets := func(ss []ta.LocSet) string {
		out := make([]string, len(ss))
		for i, s := range ss {
			out[i] = canonLocSet(a, s)
		}
		return strings.Join(out, ";")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query %s kind=%s\n", q.Name, q.Kind)
	fmt.Fprintf(&b, "init_empty %s\n", locNames(q.InitEmpty))
	fmt.Fprintf(&b, "global_empty %s\n", locNames(q.GlobalEmpty))
	fmt.Fprintf(&b, "visit %s\n", sets(q.VisitNonempty))
	fmt.Fprintf(&b, "final_shared %s\n", canonConstraints(tab, q.FinalShared))
	fmt.Fprintf(&b, "final_nonempty %s\n", sets(q.FinalNonempty))
	for _, j := range q.Justice {
		fmt.Fprintf(&b, "justice %s trigger=[%s] loc=%s\n",
			j.Name, canonConstraints(tab, j.Trigger), a.Locations[j.Loc].Name)
	}
	if q.RelaxResilience != nil {
		fmt.Fprintf(&b, "relax_resilience %s\n", canonConstraints(tab, q.RelaxResilience))
	}
	return b.String()
}

// Config is the slice of the engine configuration that participates in a
// cache key: every option that can change a deterministic result field.
// Workers is deliberately absent (results are deterministic at any count)
// and so is Timeout (budget outcomes are never cached, and non-budget
// results do not depend on the wall clock).
type Config struct {
	Mode        string
	MaxSchemas  int
	MaxSplits   int
	ExtraPasses int
}

// ConfigOf extracts the key-relevant configuration from resolved schema
// options (use schema.Engine.Opts(), which has the defaults applied).
func ConfigOf(o schema.Options) Config {
	return Config{
		Mode:        o.Mode.String(),
		MaxSchemas:  o.MaxSchemas,
		MaxSplits:   o.MaxSplits,
		ExtraPasses: o.ExtraPasses,
	}
}

func (c Config) canon() string {
	return fmt.Sprintf("mode %s max_schemas %d max_splits %d extra_passes %d\n",
		c.Mode, c.MaxSchemas, c.MaxSplits, c.ExtraPasses)
}

// Key derives the content address of one (automaton, query, configuration,
// engine version) quadruple: the hex SHA-256 of the canonical serialization.
// The automaton must be the one-round form the engine actually checks
// (schema.Engine.TA()).
func Key(a *ta.TA, q *spec.Query, cfg Config, engineVersion string) string {
	h := sha256.New()
	fmt.Fprintf(h, "vcache/1\nengine %s\n", engineVersion)
	io.WriteString(h, cfg.canon())
	io.WriteString(h, CanonicalTA(a))
	io.WriteString(h, CanonicalQuery(a, q))
	return hex.EncodeToString(h.Sum(nil))
}

// TAHash is the canonical structural hash of one automaton alone, the
// quantity pinned by the golden-hash test: it must only change together
// with an EngineVersion bump.
func TAHash(a *ta.TA) string {
	h := sha256.New()
	io.WriteString(h, "vcache/1\n")
	io.WriteString(h, CanonicalTA(a))
	return hex.EncodeToString(h.Sum(nil))
}

// OutcomeLabel is the string form outcomes take in reports and cache
// entries. It matches the obs report schema ("budget", not the
// spec.Outcome.String() long form "budget-exceeded").
func OutcomeLabel(o spec.Outcome) string {
	if o == spec.Budget {
		return "budget"
	}
	return o.String()
}

// ParseOutcome inverts OutcomeLabel (accepting the long budget form too).
func ParseOutcome(s string) (spec.Outcome, error) {
	switch s {
	case "holds":
		return spec.Holds, nil
	case "violated":
		return spec.Violated, nil
	case "budget", "budget-exceeded":
		return spec.Budget, nil
	default:
		return 0, fmt.Errorf("vcache: unknown outcome %q", s)
	}
}
