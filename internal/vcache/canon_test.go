package vcache

import (
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/schema"
	"repro/internal/spec"
	"repro/internal/ta"
)

func simplifiedEngine(t *testing.T) (*schema.Engine, []spec.Query) {
	t.Helper()
	a := models.SimplifiedConsensus()
	qs, err := models.SimplifiedQueries(a)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := schema.New(a, schema.Options{Mode: schema.Staged})
	if err != nil {
		t.Fatal(err)
	}
	return eng, qs
}

// Keys must be stable across independent constructions of the same model
// (fresh symbol tables, fresh builders): the whole point of the canonical
// serialization.
func TestKeyStableAcrossConstructions(t *testing.T) {
	e1, q1 := simplifiedEngine(t)
	e2, q2 := simplifiedEngine(t)
	for i := range q1 {
		k1 := Key(e1.TA(), &q1[i], ConfigOf(e1.Opts()), EngineVersion)
		k2 := Key(e2.TA(), &q2[i], ConfigOf(e2.Opts()), EngineVersion)
		if k1 != k2 {
			t.Errorf("%s: key differs across constructions:\n%s\n%s", q1[i].Name, k1, k2)
		}
		if len(k1) != 64 || strings.Trim(k1, "0123456789abcdef") != "" {
			t.Errorf("%s: key is not lowercase hex sha256: %q", q1[i].Name, k1)
		}
	}
}

// Distinct queries, modes and engine versions must produce distinct keys.
func TestKeyDiscriminates(t *testing.T) {
	eng, qs := simplifiedEngine(t)
	cfg := ConfigOf(eng.Opts())
	seen := map[string]string{}
	for i := range qs {
		k := Key(eng.TA(), &qs[i], cfg, EngineVersion)
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision between %s and %s", prev, qs[i].Name)
		}
		seen[k] = qs[i].Name
	}
	q := &qs[0]
	base := Key(eng.TA(), q, cfg, EngineVersion)
	fullCfg := cfg
	fullCfg.Mode = schema.FullEnumeration.String()
	if Key(eng.TA(), q, fullCfg, EngineVersion) == base {
		t.Error("mode change did not change the key")
	}
	if Key(eng.TA(), q, cfg, EngineVersion+"-next") == base {
		t.Error("engine version bump did not change the key")
	}
	bumped := cfg
	bumped.MaxSchemas++
	if Key(eng.TA(), q, bumped, EngineVersion) == base {
		t.Error("MaxSchemas change did not change the key")
	}
}

// An engine-version bump must invalidate every cached entry: the version is
// hashed into the key, so entries stored under the old version are simply
// unreachable (and a hand-copied file fails the stored-version check).
func TestVersionBumpInvalidatesEntries(t *testing.T) {
	eng, qs := simplifiedEngine(t)
	cfg := ConfigOf(eng.Opts())
	q := &qs[0]

	c, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	oldKey := Key(eng.TA(), q, cfg, "0.9.0")
	newKey := Key(eng.TA(), q, cfg, EngineVersion)
	if oldKey == newKey {
		t.Fatal("version did not affect the key")
	}
	if err := c.Put(&Entry{Key: oldKey, Engine: "0.9.0", Query: q.Name, Mode: "staged", Outcome: "holds"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(newKey); ok {
		t.Fatal("entry cached under the old engine version was served for the new version's key")
	}
}

// The canonical TA form must not depend on symbol intern order beyond the
// semantic slices: re-parsing a model through the textual format (different
// table, same structure) yields the same hash.
func TestTAHashMatchesModelsAndSpecs(t *testing.T) {
	for _, mk := range []func() *ta.TA{models.BVBroadcast, models.SimplifiedConsensus} {
		a := mk()
		h1 := TAHash(a)
		h2 := TAHash(mk())
		if h1 != h2 {
			t.Errorf("%s: hash differs across constructions", a.Name)
		}
	}
}

func TestOutcomeLabelRoundTrip(t *testing.T) {
	for _, o := range []spec.Outcome{spec.Holds, spec.Violated, spec.Budget} {
		got, err := ParseOutcome(OutcomeLabel(o))
		if err != nil || got != o {
			t.Errorf("%v: round-trip gave %v, %v", o, got, err)
		}
	}
	if lbl := OutcomeLabel(spec.Budget); lbl != "budget" {
		t.Errorf("budget label = %q, want the obs report schema's short form", lbl)
	}
	if _, err := ParseOutcome("budget-exceeded"); err != nil {
		t.Errorf("long budget form rejected: %v", err)
	}
	if _, err := ParseOutcome("maybe"); err == nil {
		t.Error("unknown outcome accepted")
	}
}
