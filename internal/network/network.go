// Package network simulates the system model of Section 2: n asynchronous
// sequential processes exchanging messages over a reliable fully-connected
// point-to-point network. Message delays are unbounded but finite; at each
// step exactly one in-flight message is delivered, chosen by a pluggable
// Scheduler (the adversary). Up to t processes may be Byzantine: they are
// ordinary Process implementations free to send arbitrary messages.
//
// The package drives the *executable* DBFT implementation of internal/dbft,
// cross-validating the threshold-automata models: agreement and validity
// hold for every schedule when f <= t, termination holds under the fairness
// assumption of Section 3.3, and both fail in the regimes the paper
// identifies (f > n/3, unfair schedules — Appendix B).
package network

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"
)

// ProcID identifies a process (0-based).
type ProcID int

// MsgKind distinguishes the two message types of Algorithm 1.
type MsgKind string

// Message kinds.
const (
	// MsgBV is a binary-value broadcast message (Fig. 1): carries Value.
	MsgBV MsgKind = "BV"
	// MsgAux is an auxiliary message (Alg. 1 line 8): carries Set, the
	// sender's contestants at broadcast time.
	MsgAux MsgKind = "AUX"
	// MsgProp, MsgEcho and MsgReady implement the Bracha reliable broadcast
	// used by the vector consensus for proposals: they carry Proposer and
	// Payload.
	MsgProp  MsgKind = "PROP"
	MsgEcho  MsgKind = "ECHO"
	MsgReady MsgKind = "READY"
)

// Message is a point-to-point message. Round tags implement
// communication-closure: receivers buffer future rounds and never act on
// past ones.
type Message struct {
	From  ProcID
	To    ProcID
	Round int
	Kind  MsgKind
	Value int   // MsgBV
	Set   []int // MsgAux (sorted)

	// Instance multiplexes independent protocol instances over one network
	// (the vector consensus runs one binary consensus per proposer).
	Instance int
	// Proposer and Payload carry reliable-broadcast content
	// (MsgProp/MsgEcho/MsgReady).
	Proposer ProcID
	Payload  string

	// Seq tags one enqueued copy of a message. The base reliable network
	// leaves it zero; a fault layer installed via SendTap may stamp it to
	// track per-copy metadata (delays, duplicates) across the in-flight
	// multiset. Two copies of the same logical message differ only in Seq.
	Seq int64
}

// Key returns the message's content identity: everything except the per-copy
// Seq tag. Retransmitted or duplicated copies of one logical message share a
// key, which is what per-message fault budgets are counted against.
func (m Message) Key() Message {
	m.Seq = 0
	return m
}

func (m Message) String() string {
	switch m.Kind {
	case MsgBV:
		return fmt.Sprintf("BV(r%d,%d) %d->%d", m.Round, m.Value, m.From, m.To)
	case MsgProp, MsgEcho, MsgReady:
		return fmt.Sprintf("%s(p%d,%q) %d->%d", m.Kind, m.Proposer, m.Payload, m.From, m.To)
	default:
		vals := make([]string, len(m.Set))
		for i, v := range m.Set {
			vals[i] = fmt.Sprintf("%d", v)
		}
		return fmt.Sprintf("AUX(r%d,{%s}) %d->%d", m.Round, strings.Join(vals, ","), m.From, m.To)
	}
}

// Sender lets a process emit messages during Start or Deliver.
type Sender func(m Message)

// Process is a participant: correct processes implement Algorithm 1,
// Byzantine processes implement an attack strategy.
type Process interface {
	ID() ProcID
	// Start is invoked once before any delivery.
	Start(send Sender)
	// Deliver handles one incoming message.
	Deliver(m Message, send Sender)
}

// Scheduler resolves asynchrony: given the in-flight messages, it picks the
// index of the next one to deliver. It fully determines the adversarial
// message ordering. Returning Tick delivers nothing but still advances
// simulated time — the escape hatch a fault layer uses while every in-flight
// message is held behind a partition or a delivery delay.
type Scheduler interface {
	Next(inflight []Message, step int) int
}

// Tick is the sentinel a Scheduler returns to advance time without a
// delivery.
const Tick = -1

// Ticker is implemented by processes that want periodic timer events (the
// hook retransmission layers are built on). The System invokes OnTick every
// TickInterval steps; sends made during OnTick enter the network normally.
type Ticker interface {
	OnTick(step int, send Sender)
}

// System wires processes, the in-flight message multiset and a scheduler.
type System struct {
	procs map[ProcID]Process
	order []ProcID
	sched Scheduler

	inflight []Message
	started  bool
	sender   ProcID // process currently executing Start/Deliver

	// Trace records every delivered message when enabled.
	Trace       []Message
	RecordTrace bool
	Steps       int
	DroppedPast int // deliveries to finished processes etc. (diagnostics)

	// SendTap, when non-nil, interposes on the send path after the sender
	// identity is stamped: the returned copies are enqueued instead of the
	// original (nil = the message is dropped). It is the fault-injection
	// hook of internal/faults; the base network is reliable.
	SendTap func(m Message) []Message

	// TickInterval > 0 invokes OnTick on every Ticker process each
	// TickInterval steps (delivery steps and scheduler Tick steps alike).
	// With ticks enabled the system no longer quiesces on an empty in-flight
	// set — time keeps passing so retransmission timers can fire — and a run
	// ends only via its stop predicate or step budget.
	TickInterval int
}

// NewSystem builds a system over the given processes.
func NewSystem(procs []Process, sched Scheduler) (*System, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("network: no processes")
	}
	if sched == nil {
		return nil, fmt.Errorf("network: no scheduler")
	}
	s := &System{procs: make(map[ProcID]Process, len(procs)), sched: sched}
	for _, p := range procs {
		if _, dup := s.procs[p.ID()]; dup {
			return nil, fmt.Errorf("network: duplicate process id %d", p.ID())
		}
		s.procs[p.ID()] = p
		s.order = append(s.order, p.ID())
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	return s, nil
}

// send enqueues a message (reliable: it stays in flight until delivered).
// Channels are authenticated point-to-point links (Section 2 of the paper):
// the sender identity is stamped by the network, so even a Byzantine process
// cannot forge another process's From — forging would defeat every
// distinct-sender threshold of the protocols above.
func (s *System) send(m Message) {
	if _, ok := s.procs[m.To]; !ok {
		s.DroppedPast++
		return
	}
	m.From = s.sender
	if s.SendTap != nil {
		for _, c := range s.SendTap(m) {
			c.From = m.From // the tap may copy but not forge the sender
			s.inflight = append(s.inflight, c)
		}
		return
	}
	s.inflight = append(s.inflight, m)
}

// Inflight returns the number of undelivered messages.
func (s *System) Inflight() int { return len(s.inflight) }

// Inject enqueues a message from outside any handler (scripted adversaries,
// fault-plane tests). Unlike in-handler sends the sender identity is taken
// from the message itself; the message still passes through SendTap.
func (s *System) Inject(m Message) {
	s.sender = m.From
	s.send(m)
}

// Step delivers exactly one message (after starting all processes on the
// first call). It reports whether a delivery happened (false = quiescent).
func (s *System) Step() (bool, error) {
	if !s.started {
		s.started = true
		for _, id := range s.order {
			s.sender = id
			s.procs[id].Start(s.send)
		}
	}
	if len(s.inflight) == 0 {
		if s.TickInterval > 0 {
			// Time passes even with nothing in flight: retransmission
			// timers must be able to repopulate the network (e.g. after a
			// crash window swallowed every copy).
			s.Steps++
			s.tick()
			return true, nil
		}
		return false, nil
	}
	idx := s.sched.Next(s.inflight, s.Steps)
	if idx == Tick {
		s.Steps++
		s.tick()
		return true, nil
	}
	if idx < 0 || idx >= len(s.inflight) {
		return false, fmt.Errorf("network: scheduler chose out-of-range message %d of %d", idx, len(s.inflight))
	}
	m := s.inflight[idx]
	s.inflight = append(s.inflight[:idx], s.inflight[idx+1:]...)
	s.Steps++
	if s.RecordTrace {
		s.Trace = append(s.Trace, m)
	}
	s.sender = m.To
	s.procs[m.To].Deliver(m, s.send)
	s.tick()
	return true, nil
}

// tick fires the periodic timer when the step count crosses a TickInterval
// boundary.
func (s *System) tick() {
	if s.TickInterval <= 0 || s.Steps%s.TickInterval != 0 {
		return
	}
	for _, id := range s.order {
		if t, ok := s.procs[id].(Ticker); ok {
			s.sender = id
			t.OnTick(s.Steps, s.send)
		}
	}
}

// Run steps until quiescence, the stop predicate fires, or maxSteps is
// reached. It returns the number of steps taken. A panic in a process
// handler or scheduler is converted into an error (annotated with the step
// at which it fired) so that property campaigns survive a misbehaving
// worker instead of crashing wholesale.
func (s *System) Run(maxSteps int, stop func() bool) (steps int, err error) {
	defer func() {
		if r := recover(); r != nil {
			steps = s.Steps
			err = fmt.Errorf("network: panic at step %d: %v\n%s", s.Steps, r, debug.Stack())
		}
	}()
	for i := 0; maxSteps <= 0 || i < maxSteps; i++ {
		if stop != nil && stop() {
			return s.Steps, nil
		}
		progressed, err := s.Step()
		if err != nil {
			return s.Steps, err
		}
		if !progressed {
			return s.Steps, nil
		}
	}
	return s.Steps, nil
}

// Broadcast sends m to every process (including the sender, per the
// paper's broadcast primitive).
func Broadcast(send Sender, procs []ProcID, m Message) {
	for _, to := range procs {
		mm := m
		mm.To = to
		send(mm)
	}
}

// --- Schedulers ---

// FIFOScheduler delivers messages in send order: the synchronous-friendly
// baseline.
type FIFOScheduler struct{}

// Next implements Scheduler.
func (FIFOScheduler) Next(inflight []Message, _ int) int { return 0 }

// RandomScheduler delivers a uniformly random in-flight message: the
// standard asynchrony model for property-based testing.
type RandomScheduler struct {
	Rng *rand.Rand
}

// Next implements Scheduler.
func (r RandomScheduler) Next(inflight []Message, _ int) int {
	return r.Rng.Intn(len(inflight))
}

// PriorityScheduler delivers the in-flight message with the smallest key.
// Ties break by queue position (send order).
type PriorityScheduler struct {
	Key func(m Message) int
}

// Next implements Scheduler.
func (p PriorityScheduler) Next(inflight []Message, _ int) int {
	best := 0
	bestKey := p.Key(inflight[0])
	for i := 1; i < len(inflight); i++ {
		if k := p.Key(inflight[i]); k < bestKey {
			best, bestKey = i, k
		}
	}
	return best
}

// FuncScheduler adapts a plain function.
type FuncScheduler func(inflight []Message, step int) int

// Next implements Scheduler.
func (f FuncScheduler) Next(inflight []Message, step int) int { return f(inflight, step) }
